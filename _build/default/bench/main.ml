(* Thin runner over the experiment library: no arguments = every table;
   otherwise the experiment ids to regenerate (f1..f6, c3, a1..a3). *)
let () = Experiments.run (List.tl (Array.to_list Sys.argv))
