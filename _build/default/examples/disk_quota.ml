(* Resource quotas through the accounting service (paper Section 4).

   Disk blocks are a currency. Alice's quota is her balance of "blocks" at
   the bank; she hands the disk server a STANDING DEBIT AUTHORITY — a
   restricted delegate proxy capped at 8 blocks, valid only for the blocks
   currency, her account, and this bank. Every write transfers blocks into
   the disk server's escrow; every delete transfers them back. The disk
   server can never overdraw the authority, and it cannot touch her money.

   Run with: dune exec examples/disk_quota.exe *)

let blocks = Disk_server.blocks_currency

let () =
  Demo.section "Setup: bank with a blocks currency, disk server, alice";
  let w = Demo.create_world ~seed:"disk quota" () in
  let alice, _, alice_rsa = Demo.enrol_pk w "alice" in
  let bank_p, bank_key, bank_rsa = Demo.enrol_pk w "bank" in
  let disk_p, disk_key = Demo.enrol w "disk" in
  let lookup = Demo.lookup w in
  let bank =
    match
      Accounting_server.create w.Demo.net ~me:bank_p ~my_key:bank_key ~kdc:w.Demo.kdc_name
        ~signing_key:bank_rsa ~lookup ()
    with
    | Ok b -> b
    | Error e -> failwith e
  in
  Accounting_server.install bank;
  let tgt_a = Demo.login w alice in
  let creds_ab = Demo.credentials_for w ~tgt:tgt_a bank_p in
  ignore
    (Demo.expect_ok "alice opens an account"
       (Accounting_server.open_account w.Demo.net ~creds:creds_ab ~name:"alice"));
  ignore (Ledger.mint (Accounting_server.ledger bank) ~name:"alice" ~currency:blocks 20);
  ignore
    (Ledger.mint (Accounting_server.ledger bank) ~name:"alice" ~currency:"usd" 1_000_000);
  Demo.step "alice holds 20 blocks of disk quota (and a million usd the disk server must never see)";
  let tgt_d = Demo.login w disk_p in
  let creds_db = Demo.credentials_for w ~tgt:tgt_d bank_p in
  ignore
    (Demo.expect_ok "disk server opens its escrow account"
       (Accounting_server.open_account w.Demo.net ~creds:creds_db ~name:"disk-escrow"));
  let disk =
    match
      Disk_server.create w.Demo.net ~me:disk_p ~my_key:disk_key ~kdc:w.Demo.kdc_name
        ~bank:bank_p ~escrow_account:"disk-escrow" ()
    with
    | Ok d -> d
    | Error e -> failwith e
  in
  Disk_server.install disk;

  Demo.section "Alice grants the disk server a standing authority for 8 blocks";
  let now = Sim.Net.now w.Demo.net in
  let authority =
    Standing.grant ~drbg:(Sim.Net.drbg w.Demo.net) ~now ~expires:(now + (24 * Demo.hour))
      ~owner:alice ~owner_key:alice_rsa
      ~account:(Accounting_server.account bank "alice") ~holder:disk_p ~currency:blocks
      ~limit:8 ()
  in
  let creds_ad = Demo.credentials_for w ~tgt:tgt_a disk_p in
  ignore (Demo.expect_ok "attach" (Disk_server.attach w.Demo.net ~creds:creds_ad ~authority));
  Demo.step "the authority: grantee=disk, quota=(blocks,8), issued-for=bank, debit alice only";

  let show () =
    Demo.step "balances: alice %d blocks, escrow %d blocks"
      (Ledger.balance (Accounting_server.ledger bank) ~name:"alice" ~currency:blocks)
      (Ledger.balance (Accounting_server.ledger bank) ~name:"disk-escrow" ~currency:blocks)
  in

  Demo.section "Writes draw quota; deletes return it";
  let n =
    Demo.expect_ok "write report.dat (3 blocks)"
      (Disk_server.write_file w.Demo.net ~creds:creds_ad ~path:"report.dat"
         (String.make 1400 'r'))
  in
  Demo.step "charged %d blocks" n;
  show ();
  let n =
    Demo.expect_ok "write big.dat (5 blocks)"
      (Disk_server.write_file w.Demo.net ~creds:creds_ad ~path:"big.dat" (String.make 2100 'b'))
  in
  Demo.step "charged %d blocks — the authority is now fully drawn (8/8)" n;
  show ();
  Demo.expect_err "a 9th block is refused (cumulative quota)"
    (Disk_server.write_file w.Demo.net ~creds:creds_ad ~path:"more.dat" "x");
  ignore
    (Demo.expect_ok "delete report.dat"
       (Disk_server.delete_file w.Demo.net ~creds:creds_ad ~path:"report.dat"));
  Demo.step "3 blocks released back to alice";
  show ();
  ignore
    (Demo.expect_ok "now the small file fits"
       (Disk_server.write_file w.Demo.net ~creds:creds_ad ~path:"more.dat" "x"));

  Demo.section "The authority's boundaries hold";
  Demo.step "alice's usd balance after all this: %d (untouched — wrong currency for the authority)"
    (Ledger.balance (Accounting_server.ledger bank) ~name:"alice" ~currency:"usd");
  let total =
    Ledger.balance (Accounting_server.ledger bank) ~name:"alice" ~currency:blocks
    + Ledger.balance (Accounting_server.ledger bank) ~name:"disk-escrow" ~currency:blocks
  in
  Demo.step "blocks conserved across account+escrow: %d = 20" total;
  assert (total = 20);
  Demo.show_trace ~last:8 w;
  print_endline "\ndisk_quota: allocation and release through restricted proxies, as Section 4 prescribes."
