(* Federation: TGS proxies (Section 6.3) and cross-realm authentication.

   A conventional proxy binds to one end-server. The paper's remedy is a
   proxy for the ticket-granting service itself: alice derives a restricted
   TGT and hands it to her batch daemon, which can then mint credentials
   for ANY server — every one of them carrying alice's restrictions.

   The second act crosses administrative domains: engineering.example and
   production.example share an inter-realm key, and a production file
   server's ACL names alice@engineering directly.

   Run with: dune exec examples/federated_delegation.exe *)

module R = Restriction

let () =
  Demo.section "Setup: realm ENGINEERING with two file servers";
  let w = Demo.create_world ~seed:"federation" ~realm:"engineering" () in
  let alice, _ = Demo.enrol w "alice" in
  let make_fs name =
    let fs_p, fs_key = Demo.enrol w name in
    let acl = Acl.create () in
    Acl.add acl ~target:"*" { Acl.subject = Acl.Principal_is alice; rights = []; restrictions = [] };
    let fs = File_server.create w.Demo.net ~me:fs_p ~my_key:fs_key ~acl () in
    File_server.install fs;
    File_server.put_direct fs ~path:"build.log" "ok ok ok";
    File_server.put_direct fs ~path:"secrets.env" "API_KEY=hunter2";
    fs_p
  in
  let fs1 = make_fs "fs-east" in
  let fs2 = make_fs "fs-west" in

  Demo.section "A TGS proxy: one grant, every server, restrictions riding along";
  let tgt = Demo.login w alice in
  let restricted_tgt =
    Demo.expect_ok "alice derives a TGT restricted to [read build.log]"
      (Tgs_proxy.grant w.Demo.net ~kdc:w.Demo.kdc_name ~tgt
         ~restrictions:[ R.Authorized [ { R.target = "build.log"; ops = [ "read" ] } ] ]
         ())
  in
  Demo.step "alice hands the restricted credential to her batch daemon (sealed channel)";
  List.iter
    (fun fs ->
      let creds =
        Demo.expect_ok
          (Printf.sprintf "daemon mints credentials for %s" (Principal.to_string fs))
          (Tgs_proxy.use w.Demo.net ~kdc:w.Demo.kdc_name ~proxy_tgt:restricted_tgt ~service:fs)
      in
      ignore
        (Demo.expect_ok "  reads build.log"
           (File_server.read w.Demo.net ~creds ~path:"build.log" ()));
      Demo.expect_err "  secrets.env refused"
        (File_server.read w.Demo.net ~creds ~path:"secrets.env" ());
      Demo.expect_err "  write refused"
        (File_server.write w.Demo.net ~creds ~path:"build.log" "defaced"))
    [ fs1; fs2 ];

  Demo.section "Cross-realm: PRODUCTION trusts ENGINEERING";
  (* Build the production realm on the same simulated network. *)
  let dir_prod = Directory.create () in
  let kdc_prod_name = Principal.make ~realm:"production" "kdc" in
  Directory.add_symmetric dir_prod kdc_prod_name (Sim.Net.fresh_key w.Demo.net);
  let kdc_prod = Kdc.create w.Demo.net ~name:kdc_prod_name ~directory:dir_prod () in
  Kdc.install kdc_prod;
  (* Fetch engineering's KDC object: Demo does not expose it, so federate
     via explicit keys. *)
  let inter_realm_key = Sim.Net.fresh_key w.Demo.net in
  Kdc.add_cross_realm kdc_prod ~peer_realm:"engineering" ~key:inter_realm_key;
  let eng_kdc_handle =
    (* Reconstruct a handle over the same directory the world installed. *)
    Kdc.create w.Demo.net ~name:w.Demo.kdc_name ~directory:w.Demo.dir ()
  in
  Kdc.add_cross_realm eng_kdc_handle ~peer_realm:"production" ~key:inter_realm_key;
  Kdc.install eng_kdc_handle;
  Demo.step "inter-realm key installed in both KDCs";

  let prod_fs = Principal.make ~realm:"production" "fileserver" in
  let prod_fs_key = Sim.Net.fresh_key w.Demo.net in
  Directory.add_symmetric dir_prod prod_fs prod_fs_key;
  let acl = Acl.create () in
  Acl.add acl ~target:"deploy.log"
    { Acl.subject = Acl.Principal_is alice; rights = [ "read" ]; restrictions = [] };
  let pfs = File_server.create w.Demo.net ~me:prod_fs ~my_key:prod_fs_key ~acl () in
  File_server.install pfs;
  File_server.put_direct pfs ~path:"deploy.log" "deployed at dawn";
  Demo.step "production fileserver ACL names engineering/alice directly";

  let cross_tgt =
    Demo.expect_ok "alice gets a cross-realm TGT from her own KDC"
      (Kdc.Client.derive w.Demo.net ~kdc:w.Demo.kdc_name ~tgt ~target:kdc_prod_name ())
  in
  let creds =
    Demo.expect_ok "production's TGS accepts it and issues a service ticket"
      (Kdc.Client.derive w.Demo.net ~kdc:kdc_prod_name ~tgt:cross_tgt ~target:prod_fs ())
  in
  let content =
    Demo.expect_ok "alice@engineering reads in production"
      (File_server.read w.Demo.net ~creds ~path:"deploy.log" ())
  in
  Demo.step "got: %S" content;

  (* A principal from an unfederated realm has no path. *)
  let mallory_kdc = Principal.make ~realm:"mallory-land" "kdc" in
  Demo.expect_err "no trust path to an unfederated realm"
    (Kdc.Client.derive w.Demo.net ~kdc:w.Demo.kdc_name ~tgt ~target:mallory_kdc ());

  Demo.section "Summary";
  Demo.show_metrics w [ "net.messages"; "kdc.as_req"; "kdc.tgs_req" ];
  print_endline
    "\nfederated_delegation: one restricted grant spans servers and realms; unfederated realms stay out."
