(* Electronic commerce with proxy checks: the full Figure 5 walkthrough.

   Carol buys from a web shop. Her account lives at First Bank ($2 in the
   figure); the shop banks at Shore Bank ($1). Carol draws a check — a
   numbered delegate proxy — payable to the shop. The shop endorses it to
   Shore Bank and deposits; Shore Bank endorses onward and collects from
   First Bank, which validates the whole endorsement chain offline and
   debits Carol. A second deposit of the same check number bounces, a forged
   check never clears, and a certified check is guaranteed before the goods
   ship.

   Run with: dune exec examples/ecommerce_checks.exe *)

let usd = "usd"

let () =
  Demo.section "Setup: two banks, a shopper, a shop";
  let w = Demo.create_world ~seed:"ecommerce" () in
  let carol, _, carol_rsa = Demo.enrol_pk w "carol" in
  let shop, _, shop_rsa = Demo.enrol_pk w "shop" in
  let first_bank_p, first_key, first_rsa = Demo.enrol_pk w "first-bank" in
  let shore_bank_p, shore_key, shore_rsa = Demo.enrol_pk w "shore-bank" in
  let lookup = Demo.lookup w in
  let first_bank =
    match
      Accounting_server.create w.Demo.net ~me:first_bank_p ~my_key:first_key
        ~kdc:w.Demo.kdc_name ~signing_key:first_rsa ~lookup ()
    with
    | Ok b -> b
    | Error e -> failwith e
  in
  let shore_bank =
    match
      Accounting_server.create w.Demo.net ~me:shore_bank_p ~my_key:shore_key
        ~kdc:w.Demo.kdc_name ~signing_key:shore_rsa ~lookup ()
    with
    | Ok b -> b
    | Error e -> failwith e
  in
  Accounting_server.install first_bank;
  Accounting_server.install shore_bank;

  let tgt_c = Demo.login w carol in
  let creds_c_first = Demo.credentials_for w ~tgt:tgt_c first_bank_p in
  ignore
    (Demo.expect_ok "carol opens an account at First Bank"
       (Accounting_server.open_account w.Demo.net ~creds:creds_c_first ~name:"carol"));
  ignore (Ledger.mint (Accounting_server.ledger first_bank) ~name:"carol" ~currency:usd 500);
  Demo.step "carol's account funded with 500 usd";
  let tgt_s = Demo.login w shop in
  let creds_s_shore = Demo.credentials_for w ~tgt:tgt_s shore_bank_p in
  ignore
    (Demo.expect_ok "shop opens an account at Shore Bank"
       (Accounting_server.open_account w.Demo.net ~creds:creds_s_shore ~name:"shop"));

  let balances label =
    Demo.step "%s: carol=%d usd (held %d), shop=%d usd" label
      (Ledger.balance (Accounting_server.ledger first_bank) ~name:"carol" ~currency:usd)
      (Ledger.held (Accounting_server.ledger first_bank) ~name:"carol" ~currency:usd)
      (Ledger.balance (Accounting_server.ledger shore_bank) ~name:"shop" ~currency:usd)
  in

  Demo.section "An ordinary check clears across banks (Fig. 5)";
  let now = Sim.Net.now w.Demo.net in
  let check =
    Check.write ~drbg:(Sim.Net.drbg w.Demo.net) ~now ~expires:(now + (24 * Demo.hour))
      ~payor:carol ~payor_key:carol_rsa
      ~account:(Accounting_server.account first_bank "carol") ~payee:shop ~currency:usd
      ~amount:120 ()
  in
  Demo.step "carol draws check %s for 120 usd payable to the shop"
    (String.sub check.Check.number 0 8);
  balances "before";
  let amount =
    Demo.expect_ok "shop endorses to Shore Bank and deposits"
      (Accounting_server.deposit w.Demo.net ~creds:creds_s_shore ~endorser_key:shop_rsa ~check
         ~to_account:"shop")
  in
  Demo.step "cleared %d usd through the endorsement chain carol -> shop -> shore-bank" amount;
  balances "after";

  Demo.section "Replay: depositing the same check twice";
  Demo.expect_err "second deposit of the same check number"
    (Accounting_server.deposit w.Demo.net ~creds:creds_s_shore ~endorser_key:shop_rsa ~check
       ~to_account:"shop");

  Demo.section "Forgery: eve signs a check against carol's account";
  let eve, _, eve_rsa = Demo.enrol_pk w "eve" in
  ignore eve;
  let forged =
    Check.write ~drbg:(Sim.Net.drbg w.Demo.net) ~now:(Sim.Net.now w.Demo.net)
      ~expires:(Sim.Net.now w.Demo.net + Demo.hour) ~payor:carol ~payor_key:eve_rsa
      ~account:(Accounting_server.account first_bank "carol") ~payee:shop ~currency:usd
      ~amount:99 ()
  in
  Demo.expect_err "forged check"
    (Accounting_server.deposit w.Demo.net ~creds:creds_s_shore ~endorser_key:shop_rsa
       ~check:forged ~to_account:"shop");

  Demo.section "A certified check: guaranteed funds before the goods ship";
  let now = Sim.Net.now w.Demo.net in
  let big_order =
    Check.write ~drbg:(Sim.Net.drbg w.Demo.net) ~now ~expires:(now + (24 * Demo.hour))
      ~payor:carol ~payor_key:carol_rsa
      ~account:(Accounting_server.account first_bank "carol") ~payee:shop ~currency:usd
      ~amount:300 ()
  in
  let certification =
    Demo.expect_ok "first bank certifies (places a hold)"
      (Accounting_server.certify w.Demo.net ~creds:creds_c_first ~check:big_order)
  in
  balances "hold placed";
  let verdict =
    Accounting_server.verify_certification ~lookup ~now:(Sim.Net.now w.Demo.net)
      ~server:first_bank_p ~check_number:big_order.Check.number certification
  in
  Demo.outcome "shop verifies the certification OFFLINE (no bank round-trip)" verdict;
  ignore
    (Demo.expect_ok "shop ships, then deposits the certified check"
       (Accounting_server.deposit w.Demo.net ~creds:creds_s_shore ~endorser_key:shop_rsa
          ~check:big_order ~to_account:"shop"));
  balances "after certified clearing";

  Demo.section "A cashier's check: the bank is its own drawee";
  let cashier =
    Demo.expect_ok "carol buys a cashier's check for 50 usd"
      (Accounting_server.cashier_check w.Demo.net ~creds:creds_c_first ~from_account:"carol"
         ~payee:shop ~currency:usd ~amount:50)
  in
  ignore
    (Demo.expect_ok "shop deposits the cashier's check"
       (Accounting_server.deposit w.Demo.net ~creds:creds_s_shore ~endorser_key:shop_rsa
          ~check:cashier ~to_account:"shop"));
  balances "final";

  Demo.section "Conservation and audit";
  let total =
    Ledger.total (Accounting_server.ledger first_bank) ~currency:usd
    + Ledger.total (Accounting_server.ledger shore_bank) ~currency:usd
  in
  Demo.step "sum over both ledgers: %d usd (exactly the 500 minted)" total;
  assert (total = 500);
  Demo.show_metrics w
    [ "net.messages"; "accounting.deposits"; "accounting.collects"; "accounting.endorsements" ];
  Demo.show_trace ~last:10 w;
  print_endline "\necommerce_checks: every transfer behaved as Section 4 prescribes."
