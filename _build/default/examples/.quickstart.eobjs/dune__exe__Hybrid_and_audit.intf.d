examples/hybrid_and_audit.mli:
