examples/disk_quota.ml: Accounting_server Demo Disk_server Ledger Sim Standing String
