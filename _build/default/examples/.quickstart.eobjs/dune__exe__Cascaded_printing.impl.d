examples/cascaded_printing.ml: Accounting_server Acl Capability Check Demo File_server Ledger List Pipeline Print_server Printf Sim String
