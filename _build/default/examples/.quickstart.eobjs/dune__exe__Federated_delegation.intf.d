examples/federated_delegation.mli:
