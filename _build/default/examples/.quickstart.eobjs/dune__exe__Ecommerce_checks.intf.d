examples/ecommerce_checks.mli:
