examples/hybrid_and_audit.ml: Acl Audit Crypto Demo Directory Format Guard List Principal Proxy Restriction Sim String Ticket
