examples/cascaded_printing.mli:
