examples/disk_quota.mli:
