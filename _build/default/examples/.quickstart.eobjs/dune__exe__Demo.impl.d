examples/demo.ml: Crypto Directory Format Kdc List Option Principal Printf Sim String
