examples/federated_delegation.ml: Acl Demo Directory File_server Kdc List Principal Printf Restriction Sim Tgs_proxy
