examples/quickstart.ml: Acl Capability Demo File_server Principal
