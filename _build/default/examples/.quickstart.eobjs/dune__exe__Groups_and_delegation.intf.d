examples/groups_and_delegation.mli:
