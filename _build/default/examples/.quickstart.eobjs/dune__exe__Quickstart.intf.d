examples/quickstart.mli:
