examples/ecommerce_checks.ml: Accounting_server Check Demo Ledger Sim String
