examples/groups_and_delegation.ml: Acl Authz_server Capability Demo Group_server Guard Restriction Sim
