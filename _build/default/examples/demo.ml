(* Shared scaffolding for the example programs: a simulated world with a
   KDC, plus narration helpers. *)

type world = {
  net : Sim.Net.t;
  dir : Directory.t;
  kdc_name : Principal.t;
  realm : string;
}

let create_world ?(seed = "example") ?(realm = "example.org") () =
  let net = Sim.Net.create ~seed () in
  let dir = Directory.create () in
  let kdc_name = Principal.make ~realm "kdc" in
  Directory.add_symmetric dir kdc_name (Sim.Net.fresh_key net);
  let kdc = Kdc.create net ~name:kdc_name ~directory:dir () in
  Kdc.install kdc;
  { net; dir; kdc_name; realm }

let enrol w name =
  let p = Principal.make ~realm:w.realm name in
  let key = Sim.Net.fresh_key w.net in
  Directory.add_symmetric w.dir p key;
  (p, key)

let enrol_pk w name =
  let p, key = enrol w name in
  let rsa = Crypto.Rsa.generate (Sim.Net.drbg w.net) ~bits:512 in
  Directory.add_public w.dir p rsa.Crypto.Rsa.pub;
  (p, key, rsa)

let lookup w p = Directory.public w.dir p

let login w p =
  match
    Kdc.Client.authenticate w.net ~kdc:w.kdc_name ~client:p
      ~client_key:(Option.get (Directory.symmetric w.dir p))
      ~service:w.kdc_name ()
  with
  | Ok tgt -> tgt
  | Error e -> failwith ("login failed: " ^ e)

let credentials_for w ~tgt service =
  match Kdc.Client.derive w.net ~kdc:w.kdc_name ~tgt ~target:service () with
  | Ok creds -> creds
  | Error e -> failwith ("derive failed: " ^ e)

let hour = 3_600_000_000

(* --- narration --- *)

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let step fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n%!" s) fmt

let outcome label = function
  | Ok _ -> Printf.printf "  [ok]   %s\n%!" label
  | Error e -> Printf.printf "  [err]  %s: %s\n%!" label e

let expect_ok label = function
  | Ok v ->
      Printf.printf "  [ok]   %s\n%!" label;
      v
  | Error e -> failwith (Printf.sprintf "%s unexpectedly failed: %s" label e)

let expect_err label = function
  | Ok _ -> failwith (Printf.sprintf "%s unexpectedly succeeded" label)
  | Error e -> Printf.printf "  [deny] %s: %s\n%!" label e

let show_metrics w keys =
  let m = Sim.Net.metrics w.net in
  Printf.printf "  -- metrics: %s\n%!"
    (String.concat ", "
       (List.map (fun k -> Printf.sprintf "%s=%d" k (Sim.Metrics.get m k)) keys))

let show_trace ?(last = 8) w =
  let entries = Sim.Trace.entries (Sim.Net.trace w.net) in
  let n = List.length entries in
  let tail = if n <= last then entries else List.filteri (fun i _ -> i >= n - last) entries in
  Printf.printf "  -- audit trail (last %d of %d):\n" (List.length tail) n;
  List.iter (fun e -> Format.printf "     %a@." Sim.Trace.pp_entry e) tail
