(* Centralized authorization: the authorization server (Fig. 3), the group
   server (Sec. 3.3), and compound principals (Sec. 3.5).

   A build farm delegates all authorization decisions to an authorization
   server; the machine-room door trusts a group server's "operators" group;
   and firing the layoff script needs BOTH a manager and an HR
   representative to concur.

   Run with: dune exec examples/groups_and_delegation.exe *)

let () =
  Demo.section "Setup";
  let w = Demo.create_world ~seed:"groups" () in
  let carol, _ = Demo.enrol w "carol" in
  let dave, _ = Demo.enrol w "dave" in
  let hr_rep, _ = Demo.enrol w "hr-rep" in
  let authz_p, authz_key = Demo.enrol w "authz-server" in
  let groups_p, groups_key = Demo.enrol w "group-server" in
  let farm_p, farm_key = Demo.enrol w "buildfarm" in
  let door_p, door_key = Demo.enrol w "door" in
  let payroll_p, payroll_key = Demo.enrol w "payroll" in

  (* Authorization server: its database says carol may run jobs, capped at
     100 cpu-minutes (the restriction is copied into every proxy it
     grants). *)
  let db = Acl.create () in
  Acl.add db ~target:"build-job"
    {
      Acl.subject = Acl.Principal_is carol;
      rights = [ "run" ];
      restrictions = [ Restriction.Quota ("cpu-minutes", 100) ];
    };
  let authz =
    match
      Authz_server.create w.Demo.net ~me:authz_p ~my_key:authz_key ~kdc:w.Demo.kdc_name
        ~database:db ()
    with
    | Ok s -> s
    | Error e -> failwith e
  in
  Authz_server.install authz;

  (* The build farm's own ACL holds exactly one entry: trust the
     authorization server. *)
  let farm_acl = Acl.create () in
  Acl.add farm_acl ~target:"*"
    { Acl.subject = Acl.Principal_is authz_p; rights = []; restrictions = [] };
  let farm = Guard.create w.Demo.net ~me:farm_p ~my_key:farm_key ~acl:farm_acl () in

  (* Group server with an "operators" group; the door trusts it. *)
  let gsrv =
    match
      Group_server.create w.Demo.net ~me:groups_p ~my_key:groups_key ~kdc:w.Demo.kdc_name ()
    with
    | Ok s -> s
    | Error e -> failwith e
  in
  Group_server.install gsrv;
  Group_server.add_member gsrv ~group:"operators" dave;
  let door_acl = Acl.create () in
  Acl.add door_acl ~target:"machine-room"
    {
      Acl.subject = Acl.Group (Group_server.group_name gsrv "operators");
      rights = [ "open" ];
      restrictions = [];
    };
  let door = Guard.create w.Demo.net ~me:door_p ~my_key:door_key ~acl:door_acl () in

  (* Payroll requires a compound principal: manager AND hr. *)
  let payroll_acl = Acl.create () in
  Acl.add payroll_acl ~target:"layoff-script"
    {
      Acl.subject = Acl.Compound [ Acl.Principal_is carol; Acl.Principal_is hr_rep ];
      rights = [ "execute" ];
      restrictions = [];
    };
  let payroll = Guard.create w.Demo.net ~me:payroll_p ~my_key:payroll_key ~acl:payroll_acl () in

  Demo.section "Figure 3: carol obtains an authorization proxy and uses it at the farm";
  let tgt_c = Demo.login w carol in
  let creds_authz = Demo.credentials_for w ~tgt:tgt_c authz_p in
  let proxy =
    Demo.expect_ok "authorization server grants [run build-job only + cpu quota]"
      (Authz_server.request_authorization w.Demo.net ~creds:creds_authz ~end_server:farm_p
         ~target:"build-job" ~operation:"run" ())
  in
  let present op ?spend () =
    Guard.present ~proxy ~time:(Sim.Net.now w.Demo.net) ~server:farm_p ~operation:op
      ~target:"build-job" ?spend ()
  in
  Demo.outcome "farm accepts: run build-job (20 cpu-minutes)"
    (Guard.decide farm ~operation:"run" ~target:"build-job" ~presenter:carol
       ~proxies:[ present "run" ~spend:("cpu-minutes", 20) () ]
       ~spend:("cpu-minutes", 20) ());
  Demo.expect_err "farm refuses: 5000 cpu-minutes exceeds the copied quota"
    (Guard.decide farm ~operation:"run" ~target:"build-job" ~presenter:carol
       ~proxies:[ present "run" ~spend:("cpu-minutes", 5000) () ]
       ~spend:("cpu-minutes", 5000) ());
  Demo.expect_err "farm refuses dave (authorization server never granted him a proxy)"
    (Guard.decide farm ~operation:"run" ~target:"build-job" ~presenter:dave ());

  Demo.section "Section 3.3: dave proves group membership at the door";
  let tgt_d = Demo.login w dave in
  let creds_groups = Demo.credentials_for w ~tgt:tgt_d groups_p in
  let gproxy =
    Demo.expect_ok "group server issues a membership proxy (delegate, names dave)"
      (Group_server.request_membership_proxy w.Demo.net ~creds:creds_groups ~group:"operators"
         ~end_server:door_p ())
  in
  let gpresented =
    Guard.present ~proxy:gproxy ~time:(Sim.Net.now w.Demo.net) ~server:door_p
      ~operation:"assert-membership" ~target:"operators" ()
  in
  Demo.outcome "door opens for dave"
    (Guard.decide door ~operation:"open" ~target:"machine-room" ~presenter:dave
       ~group_proxies:[ gpresented ] ());
  Demo.expect_err "carol cannot use dave's membership proxy"
    (Guard.decide door ~operation:"open" ~target:"machine-room" ~presenter:carol
       ~group_proxies:[ gpresented ] ());

  Demo.section "Section 3.5: separation of privilege on the payroll server";
  Demo.expect_err "carol alone cannot run the layoff script"
    (Guard.decide payroll ~operation:"execute" ~target:"layoff-script" ~presenter:carol ());
  (* HR concurs by granting carol a proxy for exactly this operation. *)
  let tgt_hr = Demo.login w hr_rep in
  let hr_proxy =
    Demo.expect_ok "hr-rep grants a concurrence proxy"
      (Capability.mint_via_kdc w.Demo.net ~kdc:w.Demo.kdc_name ~tgt:tgt_hr ~end_server:payroll_p
         ~target:"layoff-script" ~ops:[ "execute" ] ())
  in
  let hr_presented =
    Guard.present ~proxy:hr_proxy ~time:(Sim.Net.now w.Demo.net) ~server:payroll_p
      ~operation:"execute" ~target:"layoff-script" ()
  in
  Demo.outcome "carol + hr concurrence executes"
    (Guard.decide payroll ~operation:"execute" ~target:"layoff-script" ~presenter:carol
       ~proxies:[ hr_presented ] ());

  Demo.section "Summary";
  Demo.show_metrics w [ "net.messages"; "kdc.as_req"; "kdc.tgs_req" ];
  Demo.show_trace ~last:10 w;
  print_endline "\ngroups_and_delegation: all three authorization styles combined on one ACL model."
