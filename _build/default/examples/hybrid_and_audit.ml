(* The three cryptographic realizations side by side, and the audit trail.

   Alice grants the same read capability three ways — conventional
   (Kerberos-style seals), public-key (RSA chain), hybrid (Section 6.1:
   signed certificate, symmetric proxy key encrypted to the end-server) —
   and the same guard accepts all three. Then a delegate cascade shows the
   audit trail: every intermediate that extended the chain is identified,
   while a bearer cascade stays anonymous.

   Run with: dune exec examples/hybrid_and_audit.exe *)

module R = Restriction

let () =
  Demo.section "Setup";
  let w = Demo.create_world ~seed:"hybrid audit" () in
  let alice, _, alice_rsa = Demo.enrol_pk w "alice" in
  let bob, _, bob_rsa = Demo.enrol_pk w "bob" in
  let courier, _, courier_rsa = Demo.enrol_pk w "courier" in
  let fs_name, fs_key = Demo.enrol w "fileserver" in
  let fs_rsa = Crypto.Rsa.generate (Sim.Net.drbg w.Demo.net) ~bits:512 in
  Directory.add_public w.Demo.dir fs_name fs_rsa.Crypto.Rsa.pub;
  let acl = Acl.create () in
  Acl.add acl ~target:"report.txt"
    { Acl.subject = Acl.Principal_is alice; rights = []; restrictions = [] };
  let guard =
    Guard.create w.Demo.net ~me:fs_name ~my_key:fs_key ~lookup_pub:(Demo.lookup w)
      ~my_rsa:fs_rsa ~acl ()
  in
  let now () = Sim.Net.now w.Demo.net in
  let try_read proxy label =
    let presented =
      Guard.present ~proxy ~time:(now ()) ~server:fs_name ~operation:"read" ~target:"report.txt"
        ()
    in
    Demo.outcome label
      (Guard.decide guard ~operation:"read" ~target:"report.txt" ~proxies:[ presented ] ())
  in

  Demo.section "One model, three realizations";
  (* Conventional: rooted in alice's ticket for the file server. *)
  let tgt = Demo.login w alice in
  let creds = Demo.credentials_for w ~tgt fs_name in
  let conventional =
    Proxy.grant_conventional ~drbg:(Sim.Net.drbg w.Demo.net) ~now:(now ())
      ~expires:(now () + Demo.hour) ~grantor:alice ~session_key:creds.Ticket.session_key
      ~base:creds.Ticket.ticket_blob
      ~restrictions:[ R.Authorized [ { R.target = "report.txt"; ops = [ "read" ] } ] ]
  in
  try_read conventional "conventional (AEAD-sealed, HMAC possession)";
  (* Public-key: RSA chain, verifiable by anyone who knows alice's key. *)
  let pk =
    Proxy.grant_pk ~drbg:(Sim.Net.drbg w.Demo.net) ~now:(now ()) ~expires:(now () + Demo.hour)
      ~grantor:alice ~grantor_key:alice_rsa
      ~restrictions:[ R.Authorized [ { R.target = "report.txt"; ops = [ "read" ] } ] ]
      ()
  in
  try_read pk "public-key (RSA-signed chain, RSA possession)";
  (* Hybrid: signed like pk, cheap symmetric possession, pinned to this
     server by encryption. *)
  let hybrid =
    match
      Proxy.grant_hybrid ~drbg:(Sim.Net.drbg w.Demo.net) ~now:(now ())
        ~expires:(now () + Demo.hour) ~grantor:alice ~grantor_key:alice_rsa ~end_server:fs_name
        ~end_server_pub:fs_rsa.Crypto.Rsa.pub
        ~restrictions:[ R.Authorized [ { R.target = "report.txt"; ops = [ "read" ] } ] ]
        ()
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  try_read hybrid "hybrid (signed cert, sym key sealed to the server)";

  Demo.section "Audit: delegate cascades identify every intermediate";
  let delegated =
    Proxy.grant_pk ~drbg:(Sim.Net.drbg w.Demo.net) ~now:(now ()) ~expires:(now () + Demo.hour)
      ~grantor:alice ~grantor_key:alice_rsa
      ~restrictions:
        [ R.Grantee ([ bob ], 1);
          R.Authorized [ { R.target = "report.txt"; ops = [ "read" ] } ] ]
      ()
  in
  let via_bob =
    match
      Proxy.delegate_pk ~drbg:(Sim.Net.drbg w.Demo.net) ~now:(now ())
        ~expires:(now () + Demo.hour) ~intermediate:bob ~intermediate_key:bob_rsa
        ~restrictions:[ R.Grantee ([ courier ], 1) ]
        delegated
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let via_courier =
    match
      Proxy.delegate_pk ~drbg:(Sim.Net.drbg w.Demo.net) ~now:(now ())
        ~expires:(now () + Demo.hour) ~intermediate:courier ~intermediate_key:courier_rsa
        ~restrictions:[] via_bob
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let pres = Proxy.presentation via_courier in
  Format.printf "  delegation chain as the end-server sees it:@.%a@." Audit.pp_chain
    (Audit.chain_of_presentation pres);
  let intermediates = Audit.identified_intermediates pres in
  Demo.step "identified intermediates: %s"
    (String.concat ", " (List.map Principal.to_string intermediates));
  assert (List.length intermediates = 2);

  Demo.section "Bearer cascades stay anonymous (the other side of the trade)";
  let bearer =
    match
      Proxy.restrict_pk ~drbg:(Sim.Net.drbg w.Demo.net) ~now:(now ())
        ~expires:(now () + Demo.hour) ~restrictions:[ R.Quota ("pages", 1) ] pk
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  Demo.step "bearer cascade intermediates identified: %d"
    (List.length (Audit.identified_intermediates (Proxy.presentation bearer)));
  print_endline
    "\nhybrid_and_audit: one verification engine, three cryptosystems, and an audit trail\n\
     exactly where the paper says delegate proxies leave one."
