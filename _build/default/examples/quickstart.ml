(* Quickstart: restricted proxies as capabilities.

   Alice owns a file on a file server. She mints a read capability — a
   bearer proxy restricted to (report.txt, read) — and hands it to Bob, who
   has no rights of his own. Bob reads the file. An eavesdropper who watched
   every message learns nothing it can reuse, and revoking Alice's entry in
   the ACL kills the capability.

   Run with: dune exec examples/quickstart.exe *)

let () =
  Demo.section "Setup: a realm with a KDC, a file server, and two users";
  let w = Demo.create_world ~seed:"quickstart" () in
  let alice, _ = Demo.enrol w "alice" in
  let bob, _ = Demo.enrol w "bob" in
  let fs_name, fs_key = Demo.enrol w "fileserver" in
  let acl = Acl.create () in
  Acl.add acl ~target:"report.txt"
    { Acl.subject = Acl.Principal_is alice; rights = []; restrictions = [] };
  let fs = File_server.create w.Demo.net ~me:fs_name ~my_key:fs_key ~acl () in
  File_server.install fs;
  File_server.put_direct fs ~path:"report.txt" "quarterly numbers: all fine";
  Demo.step "file server ACL: only %s may touch report.txt" (Principal.to_string alice);

  Demo.section "Alice reads her own file (plain Kerberos-authenticated RPC)";
  let tgt_a = Demo.login w alice in
  let creds_a = Demo.credentials_for w ~tgt:tgt_a fs_name in
  let content =
    Demo.expect_ok "alice reads report.txt"
      (File_server.read w.Demo.net ~creds:creds_a ~path:"report.txt" ())
  in
  Demo.step "content: %S" content;

  Demo.section "Bob alone is refused";
  let tgt_b = Demo.login w bob in
  let creds_b = Demo.credentials_for w ~tgt:tgt_b fs_name in
  Demo.expect_err "bob reads without a capability"
    (File_server.read w.Demo.net ~creds:creds_b ~path:"report.txt" ());

  Demo.section "Alice mints a read capability and passes it to Bob";
  let cap =
    Demo.expect_ok "mint capability (restricted bearer proxy)"
      (Capability.mint_via_kdc w.Demo.net ~kdc:w.Demo.kdc_name ~tgt:tgt_a ~end_server:fs_name
         ~target:"report.txt" ~ops:[ "read" ] ())
  in
  Demo.step "the capability's certificate chain crosses the network; its proxy key never does";
  let attach op =
    File_server.attach w.Demo.net ~proxy:cap ~server:fs_name ~operation:op ~path:"report.txt"
  in
  let via_cap =
    Demo.expect_ok "bob reads with the capability"
      (File_server.read w.Demo.net ~creds:creds_b ~proxies:[ attach "read" ] ~path:"report.txt"
         ())
  in
  Demo.step "bob got: %S" via_cap;
  Demo.expect_err "bob tries to WRITE with the read capability"
    (File_server.write w.Demo.net ~creds:creds_b ~proxies:[ attach "write" ] ~path:"report.txt"
       "defaced");

  Demo.section "An eavesdropper captures a presentation and replays it for another operation";
  (* The capture is literally the presentation bob used; the proof of
     possession is bound to (server, read, report.txt), so it cannot be
     re-purposed. *)
  let stolen = attach "read" in
  Demo.expect_err "mallory replays the capture to delete the file"
    (File_server.write w.Demo.net ~creds:creds_b ~proxies:[ stolen ] ~path:"report.txt" "");

  Demo.section "Revocation: removing the grantor revokes every capability she issued";
  Acl.remove_subject (File_server.acl fs) ~target:"report.txt" (Acl.Principal_is alice);
  Demo.expect_err "bob's capability after revocation"
    (File_server.read w.Demo.net ~creds:creds_b ~proxies:[ attach "read" ] ~path:"report.txt" ());

  Demo.section "Summary";
  Demo.show_metrics w [ "net.messages"; "net.bytes"; "kdc.as_req"; "kdc.tgs_req" ];
  Demo.show_trace w;
  print_endline "\nquickstart: all scenario steps behaved as the paper prescribes."
