(* Cascaded authorization and pay-per-page printing.

   Alice wants a word count of her report without shipping the file around:
   she delegates a read capability to a processing pipeline, which NARROWS
   it (read-only, this file, single use) before exercising it at the file
   server — Figure 4's cascade, verified offline in one presentation.

   She then prints the report on a print server that charges per page
   through the accounting service: an ordinary check for a small job, a
   certified check when the server demands guaranteed funds.

   Run with: dune exec examples/cascaded_printing.exe *)

let usd = "usd"

let () =
  Demo.section "Setup: file server, pipeline, print server, bank";
  let w = Demo.create_world ~seed:"cascaded printing" () in
  let alice, _, alice_rsa = Demo.enrol_pk w "alice" in
  let fs_name, fs_key = Demo.enrol w "fileserver" in
  let pl_name, pl_key = Demo.enrol w "pipeline" in
  let printer_p, printer_key, printer_rsa = Demo.enrol_pk w "printer" in
  let bank_p, bank_key, bank_rsa = Demo.enrol_pk w "bank" in
  let lookup = Demo.lookup w in

  let acl = Acl.create () in
  Acl.add acl ~target:"*" { Acl.subject = Acl.Principal_is alice; rights = []; restrictions = [] };
  let fs = File_server.create w.Demo.net ~me:fs_name ~my_key:fs_key ~acl () in
  File_server.install fs;
  let report = String.concat " " (List.init 400 (fun i -> Printf.sprintf "word%d" i)) in
  File_server.put_direct fs ~path:"report.txt" report;

  let pipeline =
    match
      Pipeline.create w.Demo.net ~me:pl_name ~my_key:pl_key ~kdc:w.Demo.kdc_name
        ~fileserver:fs_name
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  Pipeline.install pipeline;

  let bank =
    match
      Accounting_server.create w.Demo.net ~me:bank_p ~my_key:bank_key ~kdc:w.Demo.kdc_name
        ~signing_key:bank_rsa ~lookup ()
    with
    | Ok b -> b
    | Error e -> failwith e
  in
  Accounting_server.install bank;
  let tgt_a = Demo.login w alice in
  let creds_ab = Demo.credentials_for w ~tgt:tgt_a bank_p in
  ignore
    (Demo.expect_ok "alice opens a bank account"
       (Accounting_server.open_account w.Demo.net ~creds:creds_ab ~name:"alice"));
  ignore (Ledger.mint (Accounting_server.ledger bank) ~name:"alice" ~currency:usd 40);
  let tgt_p = Demo.login w printer_p in
  let creds_pb = Demo.credentials_for w ~tgt:tgt_p bank_p in
  ignore
    (Demo.expect_ok "printer opens a bank account"
       (Accounting_server.open_account w.Demo.net ~creds:creds_pb ~name:"printer")) ;
  let printer =
    match
      Print_server.create w.Demo.net ~me:printer_p ~my_key:printer_key ~kdc:w.Demo.kdc_name
        ~bank:bank_p ~account:"printer" ~signing_key:printer_rsa ~lookup ()
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  Print_server.install printer;

  Demo.section "Cascade: alice delegates a narrowed capability to the pipeline";
  let cap =
    Demo.expect_ok "alice mints a read capability for report.txt"
      (Capability.mint_via_kdc w.Demo.net ~kdc:w.Demo.kdc_name ~tgt:tgt_a ~end_server:fs_name
         ~target:"report.txt" ~ops:[ "read" ] ())
  in
  let creds_pl = Demo.credentials_for w ~tgt:tgt_a pl_name in
  let words =
    Demo.expect_ok "pipeline narrows the capability and reads on alice's behalf"
      (Pipeline.word_count w.Demo.net ~creds:creds_pl ~path:"report.txt" ~capability:cap)
  in
  Demo.step "word count: %d (the file server verified a depth-2 chain OFFLINE)" words;

  Demo.section "Printing with an ordinary check";
  let creds_apr = Demo.credentials_for w ~tgt:tgt_a printer_p in
  let price =
    Demo.expect_ok "quote"
      (Print_server.price w.Demo.net ~creds:creds_apr ~content_length:(String.length report))
  in
  Demo.step "the job costs %d usd" price;
  let now = Sim.Net.now w.Demo.net in
  let check =
    Check.write ~drbg:(Sim.Net.drbg w.Demo.net) ~now ~expires:(now + (24 * Demo.hour))
      ~payor:alice ~payor_key:alice_rsa ~account:(Accounting_server.account bank "alice")
      ~payee:printer_p ~currency:usd ~amount:price ()
  in
  let pages =
    Demo.expect_ok "print, pay by check"
      (Print_server.print w.Demo.net ~creds:creds_apr ~document:"report.txt" ~content:report
         ~check ())
  in
  Demo.step "printed %d pages; printer balance is now %d usd" pages
    (Ledger.balance (Accounting_server.ledger bank) ~name:"printer" ~currency:usd);

  Demo.section "Printing with a certified check (guaranteed funds)";
  let now = Sim.Net.now w.Demo.net in
  let check2 =
    Check.write ~drbg:(Sim.Net.drbg w.Demo.net) ~now ~expires:(now + (24 * Demo.hour))
      ~payor:alice ~payor_key:alice_rsa ~account:(Accounting_server.account bank "alice")
      ~payee:printer_p ~currency:usd ~amount:2 ()
  in
  let certification =
    Demo.expect_ok "bank certifies (hold placed)"
      (Accounting_server.certify w.Demo.net ~creds:creds_ab ~check:check2)
  in
  ignore
    (Demo.expect_ok "print with guaranteed payment"
       (Print_server.print w.Demo.net ~creds:creds_apr ~document:"memo" ~content:"short memo"
          ~check:check2 ~certification ()));

  Demo.section "An unpayable job is refused";
  let now = Sim.Net.now w.Demo.net in
  let rubber =
    Check.write ~drbg:(Sim.Net.drbg w.Demo.net) ~now ~expires:(now + Demo.hour) ~payor:alice
      ~payor_key:alice_rsa ~account:(Accounting_server.account bank "alice") ~payee:printer_p
      ~currency:usd ~amount:1000 ()
  in
  Demo.expect_err "a 1000-usd check against a nearly empty account"
    (Print_server.print w.Demo.net ~creds:creds_apr ~document:"extravagant"
       ~content:(String.make 100_000 'z') ~check:rubber ());

  Demo.section "Summary";
  Demo.step "alice ends with %d usd; the printer printed %d pages total"
    (Ledger.balance (Accounting_server.ledger bank) ~name:"alice" ~currency:usd)
    (Print_server.pages_printed printer);
  Demo.show_metrics w [ "net.messages"; "accounting.deposits"; "crypto.rsa_verify" ];
  Demo.show_trace ~last:10 w;
  print_endline "\ncascaded_printing: delegation, narrowing, and payment all enforced."
