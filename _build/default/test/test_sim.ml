(* Simulator substrate: clock, metrics, trace, network with adversary tap. *)

module Clock = Sim.Clock
module Metrics = Sim.Metrics
module Trace = Sim.Trace
module Net = Sim.Net

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check int) "starts at 0" 0 (Clock.now c);
  Clock.advance c 100;
  Clock.advance c 50;
  Alcotest.(check int) "advances" 150 (Clock.now c);
  Alcotest.(check_raises "negative" (Invalid_argument "Clock.advance: negative step")
      (fun () -> Clock.advance c (-1)));
  let c2 = Clock.create ~start:1000 () in
  Alcotest.(check int) "custom start" 1000 (Clock.now c2)

let test_metrics () =
  let m = Metrics.create () in
  Alcotest.(check int) "missing is 0" 0 (Metrics.get m "x");
  Metrics.incr m "x";
  Metrics.add m "x" 4;
  Metrics.add m "y" 10;
  Alcotest.(check int) "x" 5 (Metrics.get m "x");
  Alcotest.(check (list (pair string int))) "sorted list" [ ("x", 5); ("y", 10) ] (Metrics.to_list m);
  let before = Metrics.snapshot m in
  Metrics.add m "x" 2;
  Metrics.incr m "z";
  Alcotest.(check (list (pair string int))) "diff"
    [ ("x", 2); ("z", 1) ]
    (List.sort compare (Metrics.diff ~before ~after:(Metrics.snapshot m)));
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.get m "x")

let test_trace () =
  let t = Trace.create () in
  Trace.record t ~time:1 ~actor:"kdc" "issued ticket for alice";
  Trace.record t ~time:2 ~actor:"fileserver" "granted read";
  Alcotest.(check int) "two entries" 2 (List.length (Trace.entries t));
  (match Trace.find t ~actor:"kdc" ~substring:"alice" with
  | Some e -> Alcotest.(check int) "time" 1 e.Trace.time
  | None -> Alcotest.fail "expected to find entry");
  Alcotest.(check bool) "no match" true (Trace.find t ~actor:"kdc" ~substring:"bob" = None);
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.entries t))

let echo_net () =
  let net = Net.create ~seed:"test" ~default_latency_us:100 () in
  Net.register net ~name:"server" (fun req -> "echo:" ^ req);
  net

let test_rpc_basic () =
  let net = echo_net () in
  (match Net.rpc net ~src:"client" ~dst:"server" "hi" with
  | Ok resp -> Alcotest.(check string) "response" "echo:hi" resp
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "2 messages" 2 (Metrics.get (Net.metrics net) "net.messages");
  Alcotest.(check int) "bytes counted"
    (String.length "hi" + String.length "echo:hi")
    (Metrics.get (Net.metrics net) "net.bytes");
  Alcotest.(check int) "latency applied both ways" 200 (Net.now net);
  Alcotest.(check bool) "unknown node" true
    (Result.is_error (Net.rpc net ~src:"client" ~dst:"nobody" "hi"))

let test_rpc_latency_override () =
  let net = echo_net () in
  Net.set_latency net ~src:"client" ~dst:"server" 1000;
  Net.set_latency net ~src:"server" ~dst:"client" 3000;
  ignore (Net.rpc net ~src:"client" ~dst:"server" "x");
  Alcotest.(check int) "asymmetric link" 4000 (Net.now net)

let test_tap_drop_and_tamper () =
  let net = echo_net () in
  Net.set_tap net (fun ~dir ~src:_ ~dst:_ _ ->
      match dir with `Request -> Net.Drop | `Response -> Net.Deliver);
  Alcotest.(check bool) "dropped" true (Result.is_error (Net.rpc net ~src:"c" ~dst:"server" "x"));
  Alcotest.(check int) "drop counted" 1 (Metrics.get (Net.metrics net) "net.dropped");
  Net.set_tap net (fun ~dir ~src:_ ~dst:_ payload ->
      match dir with `Request -> Net.Replace ("evil:" ^ payload) | `Response -> Net.Deliver);
  (match Net.rpc net ~src:"c" ~dst:"server" "x" with
  | Ok resp -> Alcotest.(check string) "tampered" "echo:evil:x" resp
  | Error e -> Alcotest.fail e);
  Net.clear_tap net;
  match Net.rpc net ~src:"c" ~dst:"server" "x" with
  | Ok resp -> Alcotest.(check string) "tap cleared" "echo:x" resp
  | Error e -> Alcotest.fail e

let test_tap_eavesdrop () =
  let net = echo_net () in
  let seen = ref [] in
  Net.set_tap net (fun ~dir:_ ~src:_ ~dst:_ payload ->
      seen := payload :: !seen;
      Net.Deliver);
  ignore (Net.rpc net ~src:"c" ~dst:"server" "secret");
  Alcotest.(check (list string)) "observed both directions" [ "echo:secret"; "secret" ] !seen

let test_fresh_material () =
  let net = Net.create ~seed:"a" () in
  let k1 = Net.fresh_key net and k2 = Net.fresh_key net in
  Alcotest.(check int) "key size" 32 (String.length k1);
  Alcotest.(check bool) "keys differ" true (k1 <> k2);
  Alcotest.(check int) "nonce size" 12 (String.length (Net.fresh_nonce net));
  let net' = Net.create ~seed:"a" () in
  Alcotest.(check string) "seeded reproducibility" k1 (Net.fresh_key net')

let test_unregister () =
  let net = echo_net () in
  Net.unregister net ~name:"server";
  Alcotest.(check bool) "gone" true (Result.is_error (Net.rpc net ~src:"c" ~dst:"server" "x"))

let () =
  Alcotest.run "sim"
    [ ("clock", [ ("advance", `Quick, test_clock) ]);
      ("metrics", [ ("counters", `Quick, test_metrics) ]);
      ("trace", [ ("audit log", `Quick, test_trace) ]);
      ( "net",
        [ ("rpc", `Quick, test_rpc_basic);
          ("latency override", `Quick, test_rpc_latency_override);
          ("adversary drop/tamper", `Quick, test_tap_drop_and_tamper);
          ("adversary eavesdrop", `Quick, test_tap_eavesdrop);
          ("fresh material", `Quick, test_fresh_material);
          ("unregister", `Quick, test_unregister) ] ) ]
