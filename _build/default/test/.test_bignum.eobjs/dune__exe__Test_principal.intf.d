test/test_principal.mli:
