test/test_sim.ml: Alcotest List Result Sim String
