test/test_accounting.ml: Accounting_server Alcotest Check Crypto Directory Ledger List Principal QCheck QCheck_alcotest Result Sim Testkit
