test/test_pki.mli:
