test/test_kdc.ml: Acl Alcotest Bytes Char Crypto Directory Guard Kdc List Option Principal Printf QCheck QCheck_alcotest Result Sim String Ticket Wire
