test/test_baselines.ml: Alcotest Amoeba_bank Dssa Ecma_pac Grapevine List Principal Result Sim Sollins
