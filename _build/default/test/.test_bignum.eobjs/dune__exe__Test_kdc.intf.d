test/test_kdc.mli:
