test/test_wire.ml: Alcotest Buffer Format List QCheck QCheck_alcotest Result String Wire
