test/test_marketplace.ml: Accounting_server Alcotest Check Crypto Directory Hashtbl Ledger List Option Principal Result Sim Testkit
