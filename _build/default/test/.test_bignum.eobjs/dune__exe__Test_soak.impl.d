test/test_soak.ml: Accounting_server Acl Alcotest Array Buffer Check Crypto Directory File_server Group_server Ledger Principal Printf Proxy Restriction Result Sim Testkit Ticket
