test/test_pki.ml: Alcotest Bytes Ca Char Crypto Name_server Principal Resolver Result Sim
