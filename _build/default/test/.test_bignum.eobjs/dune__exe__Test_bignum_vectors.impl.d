test/test_bignum_vectors.ml: Alcotest Bignum Crypto List
