test/test_accounting.mli:
