test/test_groups_nested.ml: Acl Alcotest Authz_server Group_server Guard List Principal Result Testkit
