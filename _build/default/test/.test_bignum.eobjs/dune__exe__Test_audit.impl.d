test/test_audit.ml: Alcotest Audit Crypto Format List Principal Proxy Restriction Result Sim String
