test/test_restriction.mli:
