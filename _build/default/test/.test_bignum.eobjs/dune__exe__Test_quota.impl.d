test/test_quota.ml: Accounting_server Alcotest Crypto Directory Disk_server Ledger Principal Result Sim Standing String Testkit
