test/test_marketplace.mli:
