test/test_principal.ml: Alcotest Crypto Directory List Principal Result Wire
