test/test_hybrid.ml: Acl Alcotest Bytes Char Crypto Guard List Presentation Principal Proxy Proxy_cert QCheck QCheck_alcotest Restriction Result Sim String Verifier Wire
