test/test_federation.ml: Accounting_server Acl Alcotest Check Crypto Directory File_server Kdc Ledger List Principal Restriction Result Sim Testkit Tgs_proxy Ticket
