test/test_authz.ml: Acl Alcotest Authz_server Capability Group_server Guard List Principal Proxy Restriction Result Secure_rpc Sim Testkit Ticket Wire
