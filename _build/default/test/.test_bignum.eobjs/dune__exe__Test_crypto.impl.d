test/test_crypto.ml: Alcotest Buffer Bytes Char Crypto List QCheck QCheck_alcotest String
