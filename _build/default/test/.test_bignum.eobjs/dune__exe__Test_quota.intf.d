test/test_quota.mli:
