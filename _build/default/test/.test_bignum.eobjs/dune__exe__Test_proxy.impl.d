test/test_proxy.ml: Alcotest Bytes Char Crypto List Presentation Principal Proxy Proxy_cert QCheck QCheck_alcotest Replay_cache Restriction Result String Verifier Wire
