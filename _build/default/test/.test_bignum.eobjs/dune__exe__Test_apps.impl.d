test/test_apps.ml: Accounting_server Acl Alcotest Capability Check Crypto Directory File_server Ledger Pipeline Principal Print_server Proxy Restriction Result Sim String Testkit
