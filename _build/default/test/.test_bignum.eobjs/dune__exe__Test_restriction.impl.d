test/test_restriction.ml: Alcotest Format List Principal Printf QCheck QCheck_alcotest Restriction Result Wire
