test/test_bignum.ml: Alcotest Bignum Char List Printf QCheck QCheck_alcotest String
