test/test_groups_nested.mli:
