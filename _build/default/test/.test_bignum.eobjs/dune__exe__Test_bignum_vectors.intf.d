test/test_bignum_vectors.mli:
