(* End-to-end application servers: the file server, the pay-per-page print
   server, and the cascaded word-count pipeline. *)

module W = Testkit
let usd = "usd"

type app_world = {
  w : W.world;
  alice : Principal.t;
  bob : Principal.t;
  fs : File_server.t;
  fs_name : Principal.t;
}

let app_world ?(seed = "apps tests") () =
  let w = W.create ~seed () in
  let alice, _ = W.enrol w "alice" in
  let bob, _ = W.enrol w "bob" in
  let fs_name, fs_key = W.enrol w "fileserver" in
  let acl = Acl.create () in
  Acl.add acl ~target:"*" { Acl.subject = Acl.Principal_is alice; rights = []; restrictions = [] };
  let fs = File_server.create w.W.net ~me:fs_name ~my_key:fs_key ~acl () in
  File_server.install fs;
  File_server.put_direct fs ~path:"report.txt" "the quick brown fox\njumps over the lazy dog";
  { w; alice; bob; fs; fs_name }

let test_file_server_direct () =
  let aw = app_world () in
  let tgt = W.login aw.w aw.alice in
  let creds = W.credentials_for aw.w ~tgt aw.fs_name in
  (match File_server.read aw.w.W.net ~creds ~path:"report.txt" () with
  | Ok content -> Alcotest.(check bool) "content" true (String.length content > 0)
  | Error e -> Alcotest.fail e);
  (match File_server.stat aw.w.W.net ~creds ~path:"report.txt" () with
  | Ok n -> Alcotest.(check int) "size" 43 n
  | Error e -> Alcotest.fail e);
  (match File_server.write aw.w.W.net ~creds ~path:"new.txt" "hello" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (option string)) "written" (Some "hello")
    (File_server.get_direct aw.fs ~path:"new.txt");
  (* Bob has no rights. *)
  let tgt_b = W.login aw.w aw.bob in
  let creds_b = W.credentials_for aw.w ~tgt:tgt_b aw.fs_name in
  match File_server.read aw.w.W.net ~creds:creds_b ~path:"report.txt" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unauthorized read"

let test_file_server_capability () =
  let aw = app_world () in
  let tgt = W.login aw.w aw.alice in
  let cap =
    Result.get_ok
      (Capability.mint_via_kdc aw.w.W.net ~kdc:aw.w.W.kdc_name ~tgt ~end_server:aw.fs_name
         ~target:"report.txt" ~ops:[ "read" ] ())
  in
  let tgt_b = W.login aw.w aw.bob in
  let creds_b = W.credentials_for aw.w ~tgt:tgt_b aw.fs_name in
  let attach op =
    File_server.attach aw.w.W.net ~proxy:cap ~server:aw.fs_name ~operation:op ~path:"report.txt"
  in
  (match File_server.read aw.w.W.net ~creds:creds_b ~proxies:[ attach "read" ] ~path:"report.txt" () with
  | Ok content -> Alcotest.(check bool) "read via capability" true (String.length content > 0)
  | Error e -> Alcotest.fail e);
  match
    File_server.write aw.w.W.net ~creds:creds_b ~proxies:[ attach "write" ] ~path:"report.txt" "x"
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "write via read capability"

let test_pipeline_cascade () =
  let aw = app_world () in
  let pl_name, pl_key = W.enrol aw.w "pipeline" in
  let pl =
    Result.get_ok
      (Pipeline.create aw.w.W.net ~me:pl_name ~my_key:pl_key ~kdc:aw.w.W.kdc_name
         ~fileserver:aw.fs_name)
  in
  Pipeline.install pl;
  let tgt = W.login aw.w aw.alice in
  let cap =
    Result.get_ok
      (Capability.mint_via_kdc aw.w.W.net ~kdc:aw.w.W.kdc_name ~tgt ~end_server:aw.fs_name
         ~target:"report.txt" ~ops:[ "read" ] ())
  in
  let creds_pl = W.credentials_for aw.w ~tgt pl_name in
  (match Pipeline.word_count aw.w.W.net ~creds:creds_pl ~path:"report.txt" ~capability:cap with
  | Ok n -> Alcotest.(check int) "nine words" 9 n
  | Error e -> Alcotest.fail e);
  (* The file server saw a depth-2 chain: the trace records the access as
     granted via alice's authority. *)
  Alcotest.(check bool) "fileserver traced grant" true
    (Sim.Trace.find (Sim.Net.trace aw.w.W.net) ~actor:(Principal.to_string aw.fs_name)
       ~substring:"acting-for"
    <> None);
  (* A capability for a different file does not let the pipeline read this
     one. *)
  File_server.put_direct aw.fs ~path:"secret.txt" "classified";
  let wrong_cap =
    Result.get_ok
      (Capability.mint_via_kdc aw.w.W.net ~kdc:aw.w.W.kdc_name ~tgt ~end_server:aw.fs_name
         ~target:"report.txt" ~ops:[ "read" ] ())
  in
  match Pipeline.word_count aw.w.W.net ~creds:creds_pl ~path:"secret.txt" ~capability:wrong_cap with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pipeline read beyond the delegated capability"

(* --- print server + accounting --- *)

type print_world = {
  pw : W.world;
  carol : Principal.t;
  carol_rsa : Crypto.Rsa.private_;
  bank : Accounting_server.t;
  bank_name : Principal.t;
  printer : Print_server.t;
  printer_name : Principal.t;
}

let print_world ?(seed = "print tests") () =
  let pw = W.create ~seed () in
  let drbg = Sim.Net.drbg pw.W.net in
  let carol, _ = W.enrol pw "carol" in
  let bank_p, bank_key = W.enrol pw "bank" in
  let printer_p, printer_key = W.enrol pw "printer" in
  let carol_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  let bank_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  let printer_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public pw.W.dir carol carol_rsa.Crypto.Rsa.pub;
  Directory.add_public pw.W.dir bank_p bank_rsa.Crypto.Rsa.pub;
  Directory.add_public pw.W.dir printer_p printer_rsa.Crypto.Rsa.pub;
  let lookup p = Directory.public pw.W.dir p in
  let bank =
    Result.get_ok
      (Accounting_server.create pw.W.net ~me:bank_p ~my_key:bank_key ~kdc:pw.W.kdc_name
         ~signing_key:bank_rsa ~lookup ())
  in
  Accounting_server.install bank;
  let tgt_c = W.login pw carol in
  let creds_cb = W.credentials_for pw ~tgt:tgt_c bank_p in
  (match Accounting_server.open_account pw.W.net ~creds:creds_cb ~name:"carol" with
  | Ok () -> ()
  | Error e -> failwith e);
  ignore (Ledger.mint (Accounting_server.ledger bank) ~name:"carol" ~currency:usd 100);
  let tgt_p = W.login pw printer_p in
  let creds_pb = W.credentials_for pw ~tgt:tgt_p bank_p in
  (match Accounting_server.open_account pw.W.net ~creds:creds_pb ~name:"printer" with
  | Ok () -> ()
  | Error e -> failwith e);
  let printer =
    Result.get_ok
      (Print_server.create pw.W.net ~me:printer_p ~my_key:printer_key ~kdc:pw.W.kdc_name
         ~bank:bank_p ~account:"printer" ~signing_key:printer_rsa ~lookup ())
  in
  Print_server.install printer;
  { pw; carol; carol_rsa; bank; bank_name = bank_p; printer; printer_name = printer_p }

let carol_check prw ~amount =
  let now = W.now prw.pw in
  Check.write ~drbg:(Sim.Net.drbg prw.pw.W.net) ~now ~expires:(now + (24 * W.hour))
    ~payor:prw.carol ~payor_key:prw.carol_rsa
    ~account:(Accounting_server.account prw.bank "carol") ~payee:prw.printer_name ~currency:usd
    ~amount ()

let test_print_with_check () =
  let prw = print_world () in
  let tgt = W.login prw.pw prw.carol in
  let creds = W.credentials_for prw.pw ~tgt prw.printer_name in
  let content = String.make 2500 'x' in
  (match Print_server.price prw.pw.W.net ~creds ~content_length:(String.length content) with
  | Ok price -> Alcotest.(check int) "3 pages at 2 usd" 6 price
  | Error e -> Alcotest.fail e);
  let check = carol_check prw ~amount:6 in
  (match Print_server.print prw.pw.W.net ~creds ~document:"thesis" ~content ~check () with
  | Ok pages -> Alcotest.(check int) "printed" 3 pages
  | Error e -> Alcotest.fail e);
  let ledger = Accounting_server.ledger prw.bank in
  Alcotest.(check int) "carol paid" 94 (Ledger.balance ledger ~name:"carol" ~currency:usd);
  Alcotest.(check int) "printer earned" 6 (Ledger.balance ledger ~name:"printer" ~currency:usd)

let test_print_underpaid () =
  let prw = print_world () in
  let tgt = W.login prw.pw prw.carol in
  let creds = W.credentials_for prw.pw ~tgt prw.printer_name in
  let content = String.make 5000 'y' in
  let check = carol_check prw ~amount:1 in
  match Print_server.print prw.pw.W.net ~creds ~document:"cheap" ~content ~check () with
  | Error _ -> Alcotest.(check int) "nothing printed" 0 (Print_server.pages_printed prw.printer)
  | Ok _ -> Alcotest.fail "underpaid job printed"

let test_print_bounced_check () =
  let prw = print_world () in
  let tgt = W.login prw.pw prw.carol in
  let creds = W.credentials_for prw.pw ~tgt prw.printer_name in
  let check = carol_check prw ~amount:500 in
  (* Face value is fine, but carol has only 100. *)
  (match Print_server.print prw.pw.W.net ~creds ~document:"big" ~content:"tiny" ~check () with
  | Error e -> Alcotest.(check bool) "reports non-clearing" true (e <> "")
  | Ok _ -> Alcotest.fail "bounced check accepted");
  Alcotest.(check int) "carol not charged" 100
    (Ledger.balance (Accounting_server.ledger prw.bank) ~name:"carol" ~currency:usd)

let test_print_certified () =
  let prw = print_world () in
  let tgt = W.login prw.pw prw.carol in
  let creds_bank = W.credentials_for prw.pw ~tgt prw.bank_name in
  let check = carol_check prw ~amount:2 in
  let certification =
    Result.get_ok (Accounting_server.certify prw.pw.W.net ~creds:creds_bank ~check)
  in
  let creds = W.credentials_for prw.pw ~tgt prw.printer_name in
  (match
     Print_server.print prw.pw.W.net ~creds ~document:"note" ~content:"hi" ~check ~certification
       ()
   with
  | Ok pages -> Alcotest.(check int) "one page" 1 pages
  | Error e -> Alcotest.fail e);
  let ledger = Accounting_server.ledger prw.bank in
  Alcotest.(check int) "cleared from hold" 98 (Ledger.balance ledger ~name:"carol" ~currency:usd);
  Alcotest.(check int) "no residual hold" 0 (Ledger.held ledger ~name:"carol" ~currency:usd)

let test_print_forged_certification () =
  let prw = print_world () in
  let tgt = W.login prw.pw prw.carol in
  let creds = W.credentials_for prw.pw ~tgt prw.printer_name in
  let check = carol_check prw ~amount:2 in
  (* Carol forges a certification proxy under her own key. *)
  let now = W.now prw.pw in
  let forged =
    Proxy.grant_pk ~drbg:(Sim.Net.drbg prw.pw.W.net) ~now ~expires:(now + W.hour)
      ~grantor:prw.bank_name ~grantor_key:prw.carol_rsa
      ~restrictions:
        [ Restriction.Authorized
            [ { Restriction.target = "certified:" ^ check.Check.number; ops = [ "verify" ] } ] ]
      ()
  in
  match
    Print_server.print prw.pw.W.net ~creds ~document:"forged" ~content:"hi" ~check
      ~certification:forged ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forged certification accepted"

let () =
  Alcotest.run "apps"
    [ ( "file-server",
        [ ("direct access", `Quick, test_file_server_direct);
          ("capability access", `Quick, test_file_server_capability) ] );
      ("pipeline", [ ("cascaded word count", `Quick, test_pipeline_cascade) ]);
      ( "print-server",
        [ ("pay by check", `Slow, test_print_with_check);
          ("underpaid refused", `Slow, test_print_underpaid);
          ("bounced check", `Slow, test_print_bounced_check);
          ("certified payment", `Slow, test_print_certified);
          ("forged certification", `Slow, test_print_forged_certification) ] ) ]
