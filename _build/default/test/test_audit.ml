(* The audit trail: chain inspection and the bearer/delegate contrast of
   Section 3.4. *)

module R = Restriction

let realm = "a"
let p name = Principal.make ~realm name
let alice = p "alice"
let bob = p "bob"
let carol = p "carol"

let drbg = Crypto.Drbg.create ~seed:"audit tests"
let alice_rsa = Crypto.Rsa.generate drbg ~bits:512
let bob_rsa = Crypto.Rsa.generate drbg ~bits:512
let carol_rsa = Crypto.Rsa.generate drbg ~bits:512

let test_delegate_chain_identifies_intermediates () =
  (* alice -> bob -> carol, both hops delegate-style. *)
  let proxy =
    Proxy.grant_pk ~drbg ~now:0 ~expires:1000 ~grantor:alice ~grantor_key:alice_rsa
      ~proxy_bits:512
      ~restrictions:[ R.Grantee ([ bob ], 1) ]
      ()
  in
  let proxy =
    Result.get_ok
      (Proxy.delegate_pk ~drbg ~now:0 ~expires:1000 ~intermediate:bob ~intermediate_key:bob_rsa
         ~proxy_bits:512
         ~restrictions:[ R.Grantee ([ carol ], 1) ]
         proxy)
  in
  let proxy =
    Result.get_ok
      (Proxy.delegate_pk ~drbg ~now:0 ~expires:1000 ~intermediate:carol
         ~intermediate_key:carol_rsa ~proxy_bits:512 ~restrictions:[] proxy)
  in
  let pres = Proxy.presentation proxy in
  let intermediates = Audit.identified_intermediates pres in
  Alcotest.(check int) "both intermediates identified" 2 (List.length intermediates);
  Alcotest.(check bool) "bob named" true (List.exists (Principal.equal bob) intermediates);
  Alcotest.(check bool) "carol named" true (List.exists (Principal.equal carol) intermediates);
  let chain = Audit.chain_of_presentation pres in
  Alcotest.(check int) "three links" 3 (List.length chain);
  Alcotest.(check string) "head kind" "signed-by-grantor" (List.hd chain).Audit.kind;
  (* The rendering is total. *)
  let rendered = Format.asprintf "%a" Audit.pp_chain chain in
  Alcotest.(check bool) "renders" true (String.length rendered > 0)

let test_bearer_chain_is_anonymous () =
  let proxy =
    Proxy.grant_pk ~drbg ~now:0 ~expires:1000 ~grantor:alice ~grantor_key:alice_rsa
      ~proxy_bits:512 ~restrictions:[] ()
  in
  let proxy =
    Result.get_ok
      (Proxy.restrict_pk ~drbg ~now:0 ~expires:1000 ~proxy_bits:512
         ~restrictions:[ R.Quota ("x", 1) ] proxy)
  in
  Alcotest.(check int) "no identified intermediates" 0
    (List.length (Audit.identified_intermediates (Proxy.presentation proxy)))

let test_conventional_chain_is_opaque () =
  let session_key = Crypto.Drbg.generate drbg 32 in
  let proxy =
    Proxy.grant_conventional ~drbg ~now:0 ~expires:1000 ~grantor:alice ~session_key ~base:"b"
      ~restrictions:[]
  in
  let proxy =
    Result.get_ok (Proxy.restrict_conventional ~drbg ~now:0 ~expires:1000 ~restrictions:[] proxy)
  in
  let chain = Audit.chain_of_presentation (Proxy.presentation proxy) in
  Alcotest.(check int) "base + two sealed" 3 (List.length chain);
  Alcotest.(check bool) "sealed links are opaque" true
    (List.for_all
       (fun (l : Audit.link) -> l.Audit.restriction_count = None)
       (List.tl chain))

let test_trace_search () =
  let trace = Sim.Trace.create () in
  Sim.Trace.record trace ~time:1 ~actor:"fs" "granted read via serial deadbeef12345678";
  Sim.Trace.record trace ~time:2 ~actor:"fs" "granted write via serial cafebabe00000000";
  Alcotest.(check int) "finds one" 1 (List.length (Audit.find_grants trace ~serial_prefix:"deadbeef"));
  Alcotest.(check int) "finds none" 0 (List.length (Audit.find_grants trace ~serial_prefix:"feedface"))

let () =
  Alcotest.run "audit"
    [ ( "audit",
        [ ("delegate chain identifies intermediates", `Slow,
           test_delegate_chain_identifies_intermediates);
          ("bearer chain is anonymous", `Slow, test_bearer_chain_is_anonymous);
          ("conventional chain is opaque", `Quick, test_conventional_chain_is_opaque);
          ("trace search", `Quick, test_trace_search) ] ) ]
