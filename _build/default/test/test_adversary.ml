(* Adversarial robustness of the whole stack.

   A production authorization service faces hostile bytes, not unit tests:
   every handler must respond (never raise) to garbage, truncation, and
   bit-flips, and no such interference may ever turn into unauthorized
   effects. The paper's security arguments (Section 3.1's eavesdropper,
   tampered restrictions) are exercised here at the message level. *)

module W = Testkit

(* A fully populated world: KDC, file server with an ACL, group server,
   authorization server, two banks with a funded account. *)
type full_world = {
  w : W.world;
  alice : Principal.t;
  alice_rsa : Crypto.Rsa.private_;
  fs : File_server.t;
  fs_name : Principal.t;
  bank_name : Principal.t;
  bank : Accounting_server.t;
  nodes : string list; (* every installed node name *)
}

let full_world ?(seed = "adversary") () =
  let w = W.create ~seed () in
  let drbg = Sim.Net.drbg w.W.net in
  let alice, _ = W.enrol w "alice" in
  let alice_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public w.W.dir alice alice_rsa.Crypto.Rsa.pub;
  let fs_name, fs_key = W.enrol w "fs" in
  let acl = Acl.create () in
  Acl.add acl ~target:"*" { Acl.subject = Acl.Principal_is alice; rights = []; restrictions = [] };
  let fs = File_server.create w.W.net ~me:fs_name ~my_key:fs_key ~acl () in
  File_server.install fs;
  File_server.put_direct fs ~path:"f" "payload";
  let groups_p, groups_key = W.enrol w "groups" in
  let gsrv =
    Result.get_ok (Group_server.create w.W.net ~me:groups_p ~my_key:groups_key ~kdc:w.W.kdc_name ())
  in
  Group_server.install gsrv;
  Group_server.add_member gsrv ~group:"g" alice;
  let authz_p, authz_key = W.enrol w "authz" in
  let db = Acl.create () in
  Acl.add db ~target:"t" { Acl.subject = Acl.Principal_is alice; rights = []; restrictions = [] };
  let authz =
    Result.get_ok
      (Authz_server.create w.W.net ~me:authz_p ~my_key:authz_key ~kdc:w.W.kdc_name ~database:db ())
  in
  Authz_server.install authz;
  let bank_p, bank_key = W.enrol w "bank" in
  let bank_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public w.W.dir bank_p bank_rsa.Crypto.Rsa.pub;
  let bank =
    Result.get_ok
      (Accounting_server.create w.W.net ~me:bank_p ~my_key:bank_key ~kdc:w.W.kdc_name
         ~signing_key:bank_rsa
         ~lookup:(fun p -> Directory.public w.W.dir p)
         ())
  in
  Accounting_server.install bank;
  let tgt = W.login w alice in
  let creds = W.credentials_for w ~tgt bank_p in
  Result.get_ok (Accounting_server.open_account w.W.net ~creds ~name:"alice");
  ignore (Ledger.mint (Accounting_server.ledger bank) ~name:"alice" ~currency:"usd" 100);
  {
    w; alice; alice_rsa; fs; fs_name; bank_name = bank_p; bank;
    nodes =
      List.map Principal.to_string [ w.W.kdc_name; fs_name; groups_p; authz_p; bank_p ];
  }

(* Deterministic pseudo-random bytes for fuzz inputs. *)
let fuzz_drbg = Crypto.Drbg.create ~seed:"fuzz inputs"

let test_garbage_to_every_node () =
  let fw = full_world () in
  List.iter
    (fun node ->
      for i = 1 to 50 do
        let len = 1 + Crypto.Drbg.uniform_int fuzz_drbg 300 in
        let junk = Crypto.Drbg.generate fuzz_drbg len in
        match Sim.Net.rpc fw.w.W.net ~src:"fuzzer" ~dst:node junk with
        | Ok _ | Error _ -> () (* the only requirement: no exception *)
        | exception e ->
            Alcotest.failf "node %s raised on garbage #%d: %s" node i (Printexc.to_string e)
      done)
    fw.nodes

let test_valid_prefix_garbage () =
  (* Truncations and extensions of real requests. *)
  let fw = full_world () in
  let tgt = W.login fw.w fw.alice in
  let creds = W.credentials_for fw.w ~tgt fw.fs_name in
  (* Capture one real request. *)
  let captured = ref None in
  Sim.Net.set_tap fw.w.W.net (fun ~dir ~src:_ ~dst:_ payload ->
      (match dir with `Request when !captured = None -> captured := Some payload | _ -> ());
      Sim.Net.Deliver);
  ignore (File_server.read fw.w.W.net ~creds ~path:"f" ());
  Sim.Net.clear_tap fw.w.W.net;
  let real = Option.get !captured in
  let dst = Principal.to_string fw.fs_name in
  for cut = 0 to min 64 (String.length real - 1) do
    let truncated = String.sub real 0 (String.length real - 1 - cut) in
    match Sim.Net.rpc fw.w.W.net ~src:"fuzzer" ~dst truncated with
    | Ok _ | Error _ -> ()
    | exception e -> Alcotest.failf "truncation raised: %s" (Printexc.to_string e)
  done;
  (match Sim.Net.rpc fw.w.W.net ~src:"fuzzer" ~dst (real ^ "extra") with
  | Ok _ | Error _ -> ()
  | exception e -> Alcotest.failf "extension raised: %s" (Printexc.to_string e))

let test_bitflips_never_authorize () =
  (* Flip one byte of the capability presentation at every position: the
     file server must refuse every variant (and never crash). *)
  let fw = full_world () in
  let tgt = W.login fw.w fw.alice in
  let cap =
    Result.get_ok
      (Capability.mint_via_kdc fw.w.W.net ~kdc:fw.w.W.kdc_name ~tgt ~end_server:fw.fs_name
         ~target:"f" ~ops:[ "read" ] ())
  in
  let presented =
    Guard.present ~proxy:cap ~time:(W.now fw.w) ~server:fw.fs_name ~operation:"write" ~target:"f"
      ()
  in
  let bytes = Wire.encode (Guard.presented_to_wire presented) in
  let tamper_positions =
    (* every 7th byte to keep runtime sane, plus the first and last *)
    0 :: (String.length bytes - 1)
    :: List.filter (fun i -> i mod 7 = 0) (List.init (String.length bytes) Fun.id)
  in
  List.iter
    (fun pos ->
      let b = Bytes.of_string bytes in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5a));
      match Wire.decode (Bytes.to_string b) with
      | Error _ -> () (* structurally dead: fine *)
      | Ok v -> (
          match Guard.presented_of_wire v with
          | Error _ -> ()
          | Ok p -> (
              (* A tampered WRITE presentation must never authorize a
                 write: the underlying capability is read-only. *)
              match
                Guard.decide
                  (Guard.create fw.w.W.net ~me:fw.fs_name
                     ~my_key:(W.key_of fw.w fw.fs_name)
                     ~acl:(File_server.acl fw.fs) ())
                  ~operation:"write" ~target:"f" ~proxies:[ p ] ()
              with
              | Error _ -> ()
              | Ok _ -> Alcotest.failf "byte flip at %d authorized a write" pos)))
    tamper_positions

let test_mitm_on_live_flows () =
  (* Random request/response tampering while real clients run: operations
     fail cleanly or succeed intact; balances never corrupt. *)
  let fw = full_world () in
  let flip = ref 0 in
  Sim.Net.set_tap fw.w.W.net (fun ~dir:_ ~src:_ ~dst:_ payload ->
      incr flip;
      if !flip mod 3 = 0 && String.length payload > 10 then begin
        let pos = Crypto.Drbg.uniform_int fuzz_drbg (String.length payload) in
        let b = Bytes.of_string payload in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
        Sim.Net.Replace (Bytes.to_string b)
      end
      else Sim.Net.Deliver);
  let attempts = ref 0 and clean_failures = ref 0 and successes = ref 0 in
  for _ = 1 to 20 do
    incr attempts;
    match
      let tgt = W.login fw.w fw.alice in
      let creds = W.credentials_for fw.w ~tgt fw.fs_name in
      File_server.read fw.w.W.net ~creds ~path:"f" ()
    with
    | Ok content ->
        if content = "payload" then incr successes
        else Alcotest.fail "tampered read returned corrupt content as success"
    | Error _ -> incr clean_failures
    | exception Failure _ -> incr clean_failures (* login/derive refused *)
  done;
  Sim.Net.clear_tap fw.w.W.net;
  Alcotest.(check int) "all attempts accounted" !attempts (!clean_failures + !successes);
  (* Balance unaffected by all that noise. *)
  Alcotest.(check int) "ledger intact" 100
    (Ledger.balance (Accounting_server.ledger fw.bank) ~name:"alice" ~currency:"usd")

let test_check_fuzz_never_pays () =
  (* Byte-flipped checks either bounce or (if the flip misses sealed parts)
     clear exactly once with the correct amount; total never exceeds the
     face value. *)
  let fw = full_world () in
  let shop, _ = W.enrol fw.w "shop" in
  let shop_rsa = Crypto.Rsa.generate (Sim.Net.drbg fw.w.W.net) ~bits:512 in
  Directory.add_public fw.w.W.dir shop shop_rsa.Crypto.Rsa.pub;
  let tgt_s = W.login fw.w shop in
  let creds_s = W.credentials_for fw.w ~tgt:tgt_s fw.bank_name in
  Result.get_ok (Accounting_server.open_account fw.w.W.net ~creds:creds_s ~name:"shop");
  let now = W.now fw.w in
  let check =
    Check.write ~drbg:(Sim.Net.drbg fw.w.W.net) ~now ~expires:(now + (24 * W.hour))
      ~payor:fw.alice ~payor_key:fw.alice_rsa
      ~account:(Accounting_server.account fw.bank "alice") ~payee:shop ~currency:"usd"
      ~amount:10 ()
  in
  let check_bytes = Wire.encode (Check.to_wire check) in
  for trial = 1 to 40 do
    let pos = Crypto.Drbg.uniform_int fuzz_drbg (String.length check_bytes) in
    let b = Bytes.of_string check_bytes in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 + Crypto.Drbg.uniform_int fuzz_drbg 254)));
    match Result.bind (Wire.decode (Bytes.to_string b)) Check.of_wire with
    | Error _ -> ()
    | Ok mutant -> (
        match
          Accounting_server.deposit fw.w.W.net ~creds:creds_s ~endorser_key:shop_rsa
            ~check:mutant ~to_account:"shop"
        with
        | Error _ -> ()
        | Ok amount ->
            (* Only an unmodified-semantics check can clear, and only once
               (accept-once); any clearing must be for the true amount. *)
            if amount <> 10 then Alcotest.failf "trial %d cleared wrong amount %d" trial amount)
  done;
  let shop_balance = Ledger.balance (Accounting_server.ledger fw.bank) ~name:"shop" ~currency:"usd" in
  let alice_balance =
    Ledger.balance (Accounting_server.ledger fw.bank) ~name:"alice" ~currency:"usd"
  in
  Alcotest.(check bool) "at most one clearing" true (shop_balance = 0 || shop_balance = 10);
  Alcotest.(check int) "conservation" 100 (shop_balance + alice_balance)

let test_response_substitution () =
  (* Swap in a previously captured (valid) response for a different
     request: the client's nonce/seal check must reject it. *)
  let fw = full_world () in
  let tgt = W.login fw.w fw.alice in
  let stale = ref None in
  Sim.Net.set_tap fw.w.W.net (fun ~dir ~src:_ ~dst:_ payload ->
      match dir with
      | `Response when !stale = None ->
          stale := Some payload;
          Sim.Net.Deliver
      | _ -> Sim.Net.Deliver);
  ignore (W.credentials_for fw.w ~tgt fw.fs_name);
  Sim.Net.clear_tap fw.w.W.net;
  let stale = Option.get !stale in
  (* Now substitute that stale reply for the next derivation. *)
  Sim.Net.set_tap fw.w.W.net (fun ~dir ~src:_ ~dst:_ _payload ->
      match dir with `Response -> Sim.Net.Replace stale | `Request -> Sim.Net.Deliver);
  (match
     Kdc.Client.derive fw.w.W.net ~kdc:fw.w.W.kdc_name ~tgt ~target:fw.bank_name ()
   with
  | Error _ -> ()
  | Ok creds ->
      (* Even if parsing succeeded, the credentials must not be for the
         requested service with a usable key — but nonce checking should
         already have refused. *)
      Alcotest.(check bool) "substituted reply rejected" false
        (Principal.equal creds.Ticket.cred_service fw.bank_name));
  Sim.Net.clear_tap fw.w.W.net

let () =
  Alcotest.run "adversary"
    [ ( "robustness",
        [ ("garbage to every node", `Slow, test_garbage_to_every_node);
          ("truncation/extension", `Slow, test_valid_prefix_garbage);
          ("bitflips never authorize", `Slow, test_bitflips_never_authorize);
          ("MITM on live flows", `Slow, test_mitm_on_live_flows);
          ("fuzzed checks never overpay", `Slow, test_check_fuzz_never_pays);
          ("response substitution", `Slow, test_response_substitution) ] ) ]
