(* The hybrid realization (Section 6.1): RSA-signed certificates carrying a
   symmetric proxy key encrypted to the end-server. *)

module R = Restriction

let realm = "h"
let p name = Principal.make ~realm name
let alice = p "alice"
let server = p "server"
let other_server = p "other"

let drbg = Crypto.Drbg.create ~seed:"hybrid tests"
let alice_rsa = Crypto.Rsa.generate drbg ~bits:512
let server_rsa = Crypto.Rsa.generate drbg ~bits:512
let other_rsa = Crypto.Rsa.generate drbg ~bits:512

let lookup q = if Principal.equal q alice then Some alice_rsa.Crypto.Rsa.pub else None
let decrypt_server = Crypto.Rsa.decrypt server_rsa
let decrypt_other = Crypto.Rsa.decrypt other_rsa

let t_exp = 10_000_000

let read_obj = [ R.Authorized [ { R.target = "obj"; ops = [ "read" ] } ] ]

let grant ?(restrictions = read_obj) () =
  Result.get_ok
    (Proxy.grant_hybrid ~drbg ~now:0 ~expires:t_exp ~grantor:alice ~grantor_key:alice_rsa
       ~end_server:server ~end_server_pub:server_rsa.Crypto.Rsa.pub ~restrictions ())

let parts proxy =
  match proxy.Proxy.flavor with
  | Proxy.Hybrid (head, blobs) -> (head, blobs)
  | Proxy.Conventional _ | Proxy.Public_key _ -> Alcotest.fail "expected hybrid"

let verify ?(decrypt = decrypt_server) ?me proxy =
  Verifier.verify_hybrid ~lookup ~decrypt ?me ~now:100 (parts proxy)

let req ?(operation = "read") ?(target = "obj") () =
  R.request ~server ~time:100 ~operation ~target ()

let prove proxy r =
  Some
    (Presentation.prove ~key:proxy.Proxy.key ~time:100
       ~request_digest:(Presentation.digest_request r))

let test_grant_verify () =
  let proxy = grant () in
  match verify proxy with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check bool) "grantor" true (Principal.equal v.Verifier.grantor alice);
      Alcotest.(check int) "chain of 1" 1 v.Verifier.chain_length;
      (* Possession proof is a cheap HMAC under the recovered sym key. *)
      let r = req () in
      Alcotest.(check bool) "authorize with PoP" true
        (Verifier.authorize v ~req:r ~proof:(prove proxy r) ~max_skew:1_000_000 = Ok ());
      Alcotest.(check bool) "restriction enforced" true
        (Result.is_error
           (Verifier.authorize v
              ~req:(req ~operation:"write" ())
              ~proof:(prove proxy (req ~operation:"write" ()))
              ~max_skew:1_000_000))

let test_only_named_server_can_use () =
  let proxy = grant () in
  (* A different server's key cannot recover the proxy key. *)
  Alcotest.(check bool) "other server fails to decrypt" true
    (Result.is_error (verify ~decrypt:decrypt_other proxy));
  (* And the me check pins the certificate to its named target. *)
  Alcotest.(check bool) "me mismatch refused" true
    (Result.is_error (verify ~me:other_server proxy));
  Alcotest.(check bool) "me match accepted" true (Result.is_ok (verify ~me:server proxy))

let test_third_party_verifiable () =
  (* Anyone can check the SIGNATURE without decrypting (world-readable
     certificate) — but cannot produce the commitment. *)
  let proxy = grant () in
  let head, _ = parts proxy in
  Alcotest.(check bool) "signature verifies publicly" true
    (Proxy_cert.verify_hybrid_signature alice_rsa.Crypto.Rsa.pub head = Ok ());
  (* The certificate bytes do not contain the proxy key in clear. *)
  (match proxy.Proxy.key with
  | Proxy.Sym k ->
      let bytes = Wire.encode (Proxy_cert.hybrid_cert_to_wire head) in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "proxy key not in clear" false (contains bytes k)
  | Proxy.Keypair _ -> Alcotest.fail "sym expected")

let test_forged_signature () =
  let mallory = Crypto.Rsa.generate drbg ~bits:512 in
  let forged =
    Result.get_ok
      (Proxy.grant_hybrid ~drbg ~now:0 ~expires:t_exp ~grantor:alice ~grantor_key:mallory
         ~end_server:server ~end_server_pub:server_rsa.Crypto.Rsa.pub ~restrictions:read_obj ())
  in
  Alcotest.(check bool) "forged grantor rejected" true (Result.is_error (verify forged))

let test_tampered_ciphertext () =
  let proxy = grant () in
  let head, blobs = parts proxy in
  let bad_key = Bytes.of_string head.Proxy_cert.h_enc_key in
  Bytes.set bad_key 3 (Char.chr (Char.code (Bytes.get bad_key 3) lxor 1));
  let tampered = { head with Proxy_cert.h_enc_key = Bytes.to_string bad_key } in
  Alcotest.(check bool) "ciphertext tamper breaks the signature" true
    (Result.is_error (Verifier.verify_hybrid ~lookup ~decrypt:decrypt_server ~now:100 (tampered, blobs)))

let test_cascade () =
  let proxy = grant () in
  let narrowed =
    Result.get_ok
      (Proxy.restrict_hybrid ~drbg ~now:0 ~expires:(t_exp / 2)
         ~restrictions:[ R.Quota ("pages", 2) ] proxy)
  in
  match verify narrowed with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check int) "chain of 2" 2 v.Verifier.chain_length;
      Alcotest.(check int) "restrictions accumulate" 2 (List.length v.Verifier.restrictions);
      Alcotest.(check int) "expiry tightens" (t_exp / 2) v.Verifier.expires;
      let r = req () in
      Alcotest.(check bool) "new key proves" true
        (Verifier.authorize v ~req:r ~proof:(prove narrowed r) ~max_skew:1_000_000 = Ok ());
      let stale_proof =
        Presentation.prove ~key:proxy.Proxy.key ~time:100
          ~request_digest:(Presentation.digest_request r)
      in
      Alcotest.(check bool) "old key refused" true
        (Result.is_error
           (Verifier.authorize v ~req:r ~proof:(Some stale_proof) ~max_skew:1_000_000));
      (* Cross-flavor cascading is refused. *)
      Alcotest.(check bool) "restrict_conventional refuses hybrid" true
        (Result.is_error
           (Proxy.restrict_conventional ~drbg ~now:0 ~expires:t_exp ~restrictions:[] narrowed));
      Alcotest.(check bool) "restrict_pk refuses hybrid" true
        (Result.is_error
           (Proxy.restrict_pk ~drbg ~now:0 ~expires:t_exp ~restrictions:[] narrowed))

let test_wire_roundtrip () =
  let proxy =
    Result.get_ok
      (Proxy.restrict_hybrid ~drbg ~now:0 ~expires:t_exp ~restrictions:[ R.Accept_once "x" ]
         (grant ()))
  in
  let pres = Proxy.presentation proxy in
  (match Proxy.presentation_of_wire (Proxy.presentation_to_wire pres) with
  | Ok pres' ->
      Alcotest.(check bool) "roundtrip verifies" true
        (Result.is_ok
           (Verifier.verify
              ~open_base:(fun _ -> Error "no base")
              ~lookup ~decrypt:decrypt_server ~now:100 pres'))
  | Error e -> Alcotest.fail e);
  (* Transfer (with key) roundtrips too. *)
  match Proxy.transfer_of_wire (Proxy.transfer_to_wire proxy) with
  | Ok proxy' ->
      let v = Result.get_ok (verify proxy') in
      let r = req () in
      Alcotest.(check bool) "transferred key proves" true
        (Verifier.authorize v ~req:r ~proof:(prove proxy' r) ~max_skew:1_000_000 = Ok ())
  | Error e -> Alcotest.fail e

let test_guard_integration () =
  (* A guard equipped with its RSA key accepts hybrid capabilities like any
     other; one without refuses them. *)
  let net = Sim.Net.create ~seed:"hybrid guard" () in
  let acl = Acl.create () in
  Acl.add acl ~target:"obj" { Acl.subject = Acl.Principal_is alice; rights = []; restrictions = [] };
  let guard_with =
    Guard.create net ~me:server ~my_key:(Sim.Net.fresh_key net) ~lookup_pub:lookup
      ~my_rsa:server_rsa ~acl ()
  in
  let guard_without =
    Guard.create net ~me:server ~my_key:(Sim.Net.fresh_key net) ~lookup_pub:lookup ~acl ()
  in
  let proxy = grant () in
  let presented =
    Guard.present ~proxy ~time:100 ~server ~operation:"read" ~target:"obj" ()
  in
  (match Guard.decide guard_with ~operation:"read" ~target:"obj" ~proxies:[ presented ] () with
  | Ok d -> Alcotest.(check bool) "acting for alice" true
      (List.exists (Principal.equal alice) d.Guard.acting_for)
  | Error e -> Alcotest.fail e);
  match Guard.decide guard_without ~operation:"read" ~target:"obj" ~proxies:[ presented ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "guard without a decryption key accepted a hybrid proxy"

let prop_hybrid_tamper =
  QCheck.Test.make ~name:"hybrid: any byte flip is detected" ~count:60
    (QCheck.pair (QCheck.int_bound 100_000) (QCheck.int_range 1 255))
    (fun (pos_seed, delta) ->
      let proxy = grant () in
      let head, _ = parts proxy in
      let bytes = Wire.encode (Proxy_cert.hybrid_cert_to_wire head) in
      let pos = pos_seed mod String.length bytes in
      let b = Bytes.of_string bytes in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor delta));
      match Proxy_cert.hybrid_cert_of_wire (Result.get_ok (Wire.decode bytes)) with
      | exception _ -> true
      | Ok _ -> (
          match Wire.decode (Bytes.to_string b) with
          | Error _ -> true
          | Ok v -> (
              match Proxy_cert.hybrid_cert_of_wire v with
              | Error _ -> true
              | Ok mutant ->
                  Result.is_error
                    (Verifier.verify_hybrid ~lookup ~decrypt:decrypt_server ~now:100 (mutant, []))))
      | Error _ -> true)

let () =
  Alcotest.run "hybrid"
    [ ( "hybrid realization",
        [ ("grant/verify", `Slow, test_grant_verify);
          ("pinned to the named server", `Slow, test_only_named_server_can_use);
          ("third-party verifiable, key confidential", `Slow, test_third_party_verifiable);
          ("forged signature", `Slow, test_forged_signature);
          ("tampered ciphertext", `Slow, test_tampered_ciphertext);
          ("cascade", `Slow, test_cascade);
          ("wire roundtrips", `Slow, test_wire_roundtrip);
          ("guard integration", `Slow, test_guard_integration) ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_hybrid_tamper ]) ]
