(* TGS proxies (Section 6.3) and cross-realm authentication: the two
   mechanisms that turn per-server conventional proxies into realm- and
   server-spanning delegation. *)

module R = Restriction
module W = Testkit

(* --- TGS proxies --- *)

type tgs_world = { w : W.world; alice : Principal.t; fs1 : Principal.t; fs2 : Principal.t }

let make_fileserver w owner name =
  let fs_name, fs_key = W.enrol w name in
  let acl = Acl.create () in
  Acl.add acl ~target:"*" { Acl.subject = Acl.Principal_is owner; rights = []; restrictions = [] };
  let fs = File_server.create w.W.net ~me:fs_name ~my_key:fs_key ~acl () in
  File_server.install fs;
  File_server.put_direct fs ~path:"report.txt" "contents";
  File_server.put_direct fs ~path:"secret.txt" "hidden";
  fs_name

let tgs_world () =
  let w = W.create ~seed:"tgs proxy tests" () in
  let alice, _ = W.enrol w "alice" in
  let fs1 = make_fileserver w alice "fs1" in
  let fs2 = make_fileserver w alice "fs2" in
  { w; alice; fs1; fs2 }

let read_only_report = [ R.Authorized [ { R.target = "report.txt"; ops = [ "read" ] } ] ]

let test_tgs_proxy_spans_servers () =
  let tw = tgs_world () in
  let tgt = W.login tw.w tw.alice in
  (* Alice grants a TGS proxy restricted to reading report.txt; the grantee
     can mint service tickets for ANY server, all carrying the
     restriction. *)
  let proxy_tgt =
    Result.get_ok
      (Tgs_proxy.grant tw.w.W.net ~kdc:tw.w.W.kdc_name ~tgt ~restrictions:read_only_report ())
  in
  Alcotest.(check int) "restrictions visible" 1 (List.length (Tgs_proxy.restrictions_of proxy_tgt));
  List.iter
    (fun fs ->
      let creds =
        Result.get_ok (Tgs_proxy.use tw.w.W.net ~kdc:tw.w.W.kdc_name ~proxy_tgt ~service:fs)
      in
      (match File_server.read tw.w.W.net ~creds ~path:"report.txt" () with
      | Ok content -> Alcotest.(check string) "reads report" "contents" content
      | Error e -> Alcotest.fail e);
      (match File_server.read tw.w.W.net ~creds ~path:"secret.txt" () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "restriction did not carry to the end-server");
      match File_server.write tw.w.W.net ~creds ~path:"report.txt" "defaced" with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "write allowed through a read-only TGS proxy")
    [ tw.fs1; tw.fs2 ]

let test_tgs_proxy_cannot_widen () =
  let tw = tgs_world () in
  let tgt = W.login tw.w tw.alice in
  let proxy_tgt =
    Result.get_ok
      (Tgs_proxy.grant tw.w.W.net ~kdc:tw.w.W.kdc_name ~tgt ~restrictions:read_only_report ())
  in
  (* The grantee re-derives through the TGS "adding" a permissive
     restriction; the original must still bind (restrictions are unioned,
     and check_all requires every one to pass). *)
  let widened =
    Result.get_ok
      (Tgs_proxy.grant tw.w.W.net ~kdc:tw.w.W.kdc_name ~tgt:proxy_tgt
         ~restrictions:[ R.Authorized [ { R.target = "secret.txt"; ops = [] } ] ]
         ())
  in
  let creds =
    Result.get_ok (Tgs_proxy.use tw.w.W.net ~kdc:tw.w.W.kdc_name ~proxy_tgt:widened ~service:tw.fs1)
  in
  (match File_server.read tw.w.W.net ~creds ~path:"secret.txt" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "grantee widened a TGS proxy");
  (* Even the originally-allowed file is now blocked: the two Authorized
     restrictions intersect to nothing that satisfies both. *)
  match File_server.read tw.w.W.net ~creds ~path:"report.txt" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "intersection semantics violated"

let test_tgs_proxy_transfer_encoding () =
  let tw = tgs_world () in
  let tgt = W.login tw.w tw.alice in
  let proxy_tgt =
    Result.get_ok
      (Tgs_proxy.grant tw.w.W.net ~kdc:tw.w.W.kdc_name ~tgt ~restrictions:read_only_report ())
  in
  match Ticket.credentials_of_wire (Ticket.credentials_to_wire proxy_tgt) with
  | Error e -> Alcotest.fail e
  | Ok creds' ->
      let creds =
        Result.get_ok (Tgs_proxy.use tw.w.W.net ~kdc:tw.w.W.kdc_name ~proxy_tgt:creds' ~service:tw.fs1)
      in
      (match File_server.read tw.w.W.net ~creds ~path:"report.txt" () with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)

let test_transport_restrictions_on_accounting () =
  (* A TGS proxy with a spending quota: the grantee can move small amounts
     from alice's account but not large ones. *)
  let w = W.create ~seed:"tgs accounting" () in
  let alice, _ = W.enrol w "alice" in
  let bank_p, bank_key = W.enrol w "bank" in
  let bank_rsa = Crypto.Rsa.generate (Sim.Net.drbg w.W.net) ~bits:512 in
  let bank =
    Result.get_ok
      (Accounting_server.create w.W.net ~me:bank_p ~my_key:bank_key ~kdc:w.W.kdc_name
         ~signing_key:bank_rsa
         ~lookup:(fun p -> Directory.public w.W.dir p)
         ())
  in
  Accounting_server.install bank;
  let tgt = W.login w alice in
  let creds_direct = W.credentials_for w ~tgt bank_p in
  Result.get_ok (Accounting_server.open_account w.W.net ~creds:creds_direct ~name:"alice");
  Result.get_ok (Accounting_server.open_account w.W.net ~creds:creds_direct ~name:"petty-cash");
  ignore (Ledger.mint (Accounting_server.ledger bank) ~name:"alice" ~currency:"usd" 1000);
  let proxy_tgt =
    Result.get_ok
      (Tgs_proxy.grant w.W.net ~kdc:w.W.kdc_name ~tgt
         ~restrictions:[ R.Quota ("usd", 50) ] ())
  in
  let creds =
    Result.get_ok (Tgs_proxy.use w.W.net ~kdc:w.W.kdc_name ~proxy_tgt ~service:bank_p)
  in
  (match
     Accounting_server.transfer w.W.net ~creds ~from_:"alice" ~to_:"petty-cash" ~currency:"usd"
       ~amount:30
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match
    Accounting_server.transfer w.W.net ~creds ~from_:"alice" ~to_:"petty-cash" ~currency:"usd"
      ~amount:51
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "quota on TGS proxy ignored by the accounting server"

(* --- cross-realm --- *)

type realms = {
  wa : W.world; (* realm A, with its own KDC *)
  wb : W.world;
  alice_a : Principal.t; (* alice@A *)
  fs_b : Principal.t; (* file server in realm B *)
}

(* Two realms sharing one simulated network: build B's KDC on A's net. *)
let two_realms () =
  let wa = W.create ~seed:"realm A" ~realm:"realm-a" () in
  let net = wa.W.net in
  let dir_b = Directory.create () in
  let kdc_b_name = Principal.make ~realm:"realm-b" "kdc" in
  Directory.add_symmetric dir_b kdc_b_name (Sim.Net.fresh_key net);
  let kdc_b = Kdc.create net ~name:kdc_b_name ~directory:dir_b () in
  Kdc.install kdc_b;
  Kdc.federate wa.W.kdc kdc_b;
  let alice_a, _ = W.enrol wa "alice" in
  (* A file server in realm B whose ACL names alice@A. *)
  let fs_b = Principal.make ~realm:"realm-b" "fileserver" in
  let fs_key = Sim.Net.fresh_key net in
  Directory.add_symmetric dir_b fs_b fs_key;
  let acl = Acl.create () in
  Acl.add acl ~target:"*" { Acl.subject = Acl.Principal_is alice_a; rights = [ "read" ]; restrictions = [] };
  let fs = File_server.create net ~me:fs_b ~my_key:fs_key ~acl () in
  File_server.install fs;
  File_server.put_direct fs ~path:"doc" "cross-realm data";
  let wb = { wa with W.dir = dir_b; W.kdc = kdc_b; W.kdc_name = kdc_b_name; W.realm = "realm-b" } in
  { wa; wb; alice_a; fs_b }

let test_cross_realm_access () =
  let r = two_realms () in
  let tgt_a = W.login r.wa r.alice_a in
  (* Cross-realm TGT: A's TGS issues a ticket for B's KDC. *)
  let cross_tgt =
    match
      Kdc.Client.derive r.wa.W.net ~kdc:r.wa.W.kdc_name ~tgt:tgt_a ~target:r.wb.W.kdc_name ()
    with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "names B's KDC" true
    (Principal.equal cross_tgt.Ticket.cred_service r.wb.W.kdc_name);
  (* Present it to B's TGS for a service ticket in realm B. *)
  let creds =
    match
      Kdc.Client.derive r.wa.W.net ~kdc:r.wb.W.kdc_name ~tgt:cross_tgt ~target:r.fs_b ()
    with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  match File_server.read r.wa.W.net ~creds ~path:"doc" () with
  | Ok content -> Alcotest.(check string) "read across realms" "cross-realm data" content
  | Error e -> Alcotest.fail e

let test_cross_realm_requires_trust () =
  (* Without federation, A's TGS refuses to mint a ticket for B's KDC. *)
  let wa = W.create ~seed:"lonely realm" ~realm:"realm-a" () in
  let alice, _ = W.enrol wa "alice" in
  let tgt = W.login wa alice in
  let foreign_kdc = Principal.make ~realm:"realm-b" "kdc" in
  match Kdc.Client.derive wa.W.net ~kdc:wa.W.kdc_name ~tgt ~target:foreign_kdc () with
  | Error e -> Alcotest.(check bool) "mentions trust" true (e <> "")
  | Ok _ -> Alcotest.fail "ticket issued without a trust path"

let test_cross_realm_restrictions_survive () =
  (* Restrictions placed in realm A bind in realm B: additive across the
     boundary. *)
  let r = two_realms () in
  let tgt_a = W.login r.wa r.alice_a in
  let restricted =
    Result.get_ok
      (Tgs_proxy.grant r.wa.W.net ~kdc:r.wa.W.kdc_name ~tgt:tgt_a
         ~restrictions:[ R.Authorized [ { R.target = "other"; ops = [ "read" ] } ] ]
         ())
  in
  let cross =
    Result.get_ok
      (Kdc.Client.derive r.wa.W.net ~kdc:r.wa.W.kdc_name ~tgt:restricted
         ~target:r.wb.W.kdc_name ())
  in
  let creds =
    Result.get_ok (Kdc.Client.derive r.wa.W.net ~kdc:r.wb.W.kdc_name ~tgt:cross ~target:r.fs_b ())
  in
  match File_server.read r.wa.W.net ~creds ~path:"doc" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "restriction dropped at the realm boundary"

let test_cross_realm_ticket_not_tgt_elsewhere () =
  (* A service ticket for B's file server is not accepted by B's TGS as a
     TGT. *)
  let r = two_realms () in
  let tgt_a = W.login r.wa r.alice_a in
  let cross =
    Result.get_ok
      (Kdc.Client.derive r.wa.W.net ~kdc:r.wa.W.kdc_name ~tgt:tgt_a ~target:r.wb.W.kdc_name ())
  in
  let service_creds =
    Result.get_ok (Kdc.Client.derive r.wa.W.net ~kdc:r.wb.W.kdc_name ~tgt:cross ~target:r.fs_b ())
  in
  match
    Kdc.Client.derive r.wa.W.net ~kdc:r.wb.W.kdc_name ~tgt:service_creds ~target:r.fs_b ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "service ticket worked as a TGT"

let test_cross_realm_check_clearing () =
  (* Accounting across administrative domains: carol banks in realm A, the
     shop banks in realm B; the shop's bank collects from the drawee through
     the federation (its granter walks the cross-realm TGS path). *)
  let r = two_realms () in
  let net = r.wa.W.net in
  let drbg = Sim.Net.drbg net in
  (* Shared public-key directory so both banks can verify signatures. *)
  let pk_dir = Directory.create () in
  let lookup p = Directory.public pk_dir p in
  let carol, _ = W.enrol r.wa "carol" in
  let carol_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public pk_dir carol carol_rsa.Crypto.Rsa.pub;
  (* Bank in realm A (drawee). *)
  let bank_a = Principal.make ~realm:"realm-a" "bank" in
  let bank_a_key = Sim.Net.fresh_key net in
  Directory.add_symmetric r.wa.W.dir bank_a bank_a_key;
  let bank_a_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public pk_dir bank_a bank_a_rsa.Crypto.Rsa.pub;
  let drawee =
    Result.get_ok
      (Accounting_server.create net ~me:bank_a ~my_key:bank_a_key ~kdc:r.wa.W.kdc_name
         ~signing_key:bank_a_rsa ~lookup ())
  in
  Accounting_server.install drawee;
  (* Bank in realm B (the shop's). *)
  let bank_b = Principal.make ~realm:"realm-b" "bank" in
  let bank_b_key = Sim.Net.fresh_key net in
  Directory.add_symmetric r.wb.W.dir bank_b bank_b_key;
  let bank_b_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public pk_dir bank_b bank_b_rsa.Crypto.Rsa.pub;
  let payee_bank =
    Result.get_ok
      (Accounting_server.create net ~me:bank_b ~my_key:bank_b_key ~kdc:r.wb.W.kdc_name
         ~signing_key:bank_b_rsa ~lookup ())
  in
  Accounting_server.install payee_bank;
  (* Shop lives in realm B. *)
  let shop = Principal.make ~realm:"realm-b" "shop" in
  let shop_key = Sim.Net.fresh_key net in
  Directory.add_symmetric r.wb.W.dir shop shop_key;
  let shop_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public pk_dir shop shop_rsa.Crypto.Rsa.pub;
  (* Fund carol at the realm-A bank. *)
  let tgt_c = W.login r.wa carol in
  let creds_ca = W.credentials_for r.wa ~tgt:tgt_c bank_a in
  Result.get_ok (Accounting_server.open_account net ~creds:creds_ca ~name:"carol");
  ignore (Ledger.mint (Accounting_server.ledger drawee) ~name:"carol" ~currency:"usd" 300);
  (* Shop account at the realm-B bank. *)
  let tgt_s =
    match
      Kdc.Client.authenticate net ~kdc:r.wb.W.kdc_name ~client:shop ~client_key:shop_key
        ~service:r.wb.W.kdc_name ()
    with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let creds_sb =
    Result.get_ok (Kdc.Client.derive net ~kdc:r.wb.W.kdc_name ~tgt:tgt_s ~target:bank_b ())
  in
  Result.get_ok (Accounting_server.open_account net ~creds:creds_sb ~name:"shop");
  (* The purchase. *)
  let now = W.now r.wa in
  let check =
    Check.write ~drbg ~now ~expires:(now + (24 * W.hour)) ~payor:carol ~payor_key:carol_rsa
      ~account:(Accounting_server.account drawee "carol") ~payee:shop ~currency:"usd"
      ~amount:120 ()
  in
  (match
     Accounting_server.deposit net ~creds:creds_sb ~endorser_key:shop_rsa ~check
       ~to_account:"shop"
   with
  | Ok amount -> Alcotest.(check int) "cleared across realms" 120 amount
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "carol debited in realm A" 180
    (Ledger.balance (Accounting_server.ledger drawee) ~name:"carol" ~currency:"usd");
  Alcotest.(check int) "shop credited in realm B" 120
    (Ledger.balance (Accounting_server.ledger payee_bank) ~name:"shop" ~currency:"usd")

let () =
  Alcotest.run "federation"
    [ ( "tgs-proxy",
        [ ("spans end-servers", `Quick, test_tgs_proxy_spans_servers);
          ("cannot widen", `Quick, test_tgs_proxy_cannot_widen);
          ("transfer encoding", `Quick, test_tgs_proxy_transfer_encoding);
          ("quota binds accounting ops", `Slow, test_transport_restrictions_on_accounting) ] );
      ( "cross-realm",
        [ ("access across realms", `Quick, test_cross_realm_access);
          ("requires trust", `Quick, test_cross_realm_requires_trust);
          ("restrictions survive", `Quick, test_cross_realm_restrictions_survive);
          ("service ticket is not a TGT", `Quick, test_cross_realm_ticket_not_tgt_elsewhere);
          ("check clears across realms", `Slow, test_cross_realm_check_clearing) ] ) ]
