(* KDC: ticket sealing, AS/TGS exchanges, additive restrictions, expiry,
   and what the adversary can and cannot do. *)

module Net = Sim.Net

let realm = "test.realm"
let p name = Principal.make ~realm name

type world = {
  net : Net.t;
  dir : Directory.t;
  kdc : Kdc.t;
  kdc_name : Principal.t;
  alice : Principal.t;
  alice_key : string;
  fileserver : Principal.t;
}

let setup ?(seed = "kdc tests") () =
  let net = Net.create ~seed () in
  let dir = Directory.create () in
  let kdc_name = p "kdc" in
  let alice = p "alice" and fileserver = p "fileserver" in
  let alice_key = Net.fresh_key net in
  Directory.add_symmetric dir kdc_name (Net.fresh_key net);
  Directory.add_symmetric dir alice alice_key;
  Directory.add_symmetric dir fileserver (Net.fresh_key net);
  let kdc = Kdc.create net ~name:kdc_name ~directory:dir () in
  Kdc.install kdc;
  { net; dir; kdc; kdc_name; alice; alice_key; fileserver }

let authenticate w ?auth_data service =
  Kdc.Client.authenticate w.net ~kdc:w.kdc_name ~client:w.alice ~client_key:w.alice_key ~service
    ?auth_data ()

let test_ticket_seal_roundtrip () =
  let w = setup () in
  let key = Net.fresh_key w.net in
  let body =
    {
      Ticket.client = w.alice;
      service = w.fileserver;
      session_key = Net.fresh_key w.net;
      auth_time = 0;
      expires = 1000;
      authorization_data = [ Wire.S "r1" ];
    }
  in
  let blob = Ticket.seal ~service_key:key ~nonce:(Net.fresh_nonce w.net) body in
  (match Ticket.open_ ~service_key:key blob with
  | Ok b ->
      Alcotest.(check bool) "client" true (Principal.equal b.Ticket.client w.alice);
      Alcotest.(check string) "session key" body.Ticket.session_key b.Ticket.session_key;
      Alcotest.(check int) "auth data" 1 (List.length b.Ticket.authorization_data)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "wrong key" true
    (Result.is_error (Ticket.open_ ~service_key:(Net.fresh_key w.net) blob));
  Alcotest.(check bool) "garbage" true (Result.is_error (Ticket.open_ ~service_key:key "junk"))

let test_authenticator_roundtrip () =
  let w = setup () in
  let sk = Net.fresh_key w.net in
  let a =
    { Ticket.auth_client = w.alice; timestamp = 42; subkey = Some (Net.fresh_key w.net);
      auth_data = [ Wire.I 1 ] }
  in
  let blob = Ticket.seal_authenticator ~session_key:sk ~nonce:(Net.fresh_nonce w.net) a in
  (match Ticket.open_authenticator ~session_key:sk blob with
  | Ok a' ->
      Alcotest.(check int) "timestamp" 42 a'.Ticket.timestamp;
      Alcotest.(check bool) "subkey" true (a'.Ticket.subkey = a.Ticket.subkey)
  | Error e -> Alcotest.fail e);
  let no_sub = { a with Ticket.subkey = None } in
  let blob2 = Ticket.seal_authenticator ~session_key:sk ~nonce:(Net.fresh_nonce w.net) no_sub in
  match Ticket.open_authenticator ~session_key:sk blob2 with
  | Ok a' -> Alcotest.(check bool) "no subkey" true (a'.Ticket.subkey = None)
  | Error e -> Alcotest.fail e

let test_as_exchange () =
  let w = setup () in
  match authenticate w w.fileserver with
  | Error e -> Alcotest.fail e
  | Ok creds ->
      Alcotest.(check bool) "service" true (Principal.equal creds.Ticket.cred_service w.fileserver);
      Alcotest.(check bool) "expires in future" true (creds.Ticket.cred_expires > Net.now w.net);
      (* The ticket itself opens under the file server's key. *)
      let fs_key = Option.get (Directory.symmetric w.dir w.fileserver) in
      (match Ticket.open_ ~service_key:fs_key creds.Ticket.ticket_blob with
      | Ok body ->
          Alcotest.(check string) "session key matches" creds.Ticket.session_key
            body.Ticket.session_key;
          Alcotest.(check bool) "names client" true (Principal.equal body.Ticket.client w.alice)
      | Error e -> Alcotest.fail e);
      Alcotest.(check int) "one AS request counted" 1
        (Sim.Metrics.get (Net.metrics w.net) "kdc.as_req")

let test_as_unknown_principals () =
  let w = setup () in
  (match
     Kdc.Client.authenticate w.net ~kdc:w.kdc_name ~client:(p "mallory") ~client_key:"k"
       ~service:w.fileserver ()
   with
  | Error e -> Alcotest.(check bool) "unknown client" true (e <> "")
  | Ok _ -> Alcotest.fail "expected error");
  match authenticate w (p "no-such-service") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_as_restrictions_carried () =
  let w = setup () in
  let auth_data = [ Wire.L [ Wire.S "authorized"; Wire.S "read" ] ] in
  match authenticate w ~auth_data w.fileserver with
  | Error e -> Alcotest.fail e
  | Ok creds ->
      Alcotest.(check int) "client copy" 1 (List.length creds.Ticket.cred_auth_data);
      let fs_key = Option.get (Directory.symmetric w.dir w.fileserver) in
      let body = Result.get_ok (Ticket.open_ ~service_key:fs_key creds.Ticket.ticket_blob) in
      Alcotest.(check int) "in ticket" 1 (List.length body.Ticket.authorization_data)

let test_tgs_derivation () =
  let w = setup () in
  let tgt = Result.get_ok (authenticate w w.kdc_name) in
  let subkey = Net.fresh_key w.net in
  let added = [ Wire.L [ Wire.S "authorized"; Wire.S "read-only" ] ] in
  match
    Kdc.Client.derive w.net ~kdc:w.kdc_name ~tgt ~target:w.fileserver ~subkey ~auth_data:added ()
  with
  | Error e -> Alcotest.fail e
  | Ok creds ->
      Alcotest.(check bool) "for fileserver" true
        (Principal.equal creds.Ticket.cred_service w.fileserver);
      Alcotest.(check int) "restriction added" 1 (List.length creds.Ticket.cred_auth_data);
      let fs_key = Option.get (Directory.symmetric w.dir w.fileserver) in
      let body = Result.get_ok (Ticket.open_ ~service_key:fs_key creds.Ticket.ticket_blob) in
      Alcotest.(check bool) "still alice" true (Principal.equal body.Ticket.client w.alice);
      Alcotest.(check bool) "fresh session key" true
        (body.Ticket.session_key <> tgt.Ticket.session_key)

let test_tgs_restrictions_additive () =
  let w = setup () in
  (* Restrictions requested at login survive through TGS derivation. *)
  let login_restriction = [ Wire.L [ Wire.S "issued-for"; Wire.S "fileserver" ] ] in
  let tgt = Result.get_ok (authenticate w ~auth_data:login_restriction w.kdc_name) in
  let added = [ Wire.L [ Wire.S "authorized"; Wire.S "read" ] ] in
  let creds =
    Result.get_ok
      (Kdc.Client.derive w.net ~kdc:w.kdc_name ~tgt ~target:w.fileserver ~auth_data:added ())
  in
  let fs_key = Option.get (Directory.symmetric w.dir w.fileserver) in
  let body = Result.get_ok (Ticket.open_ ~service_key:fs_key creds.Ticket.ticket_blob) in
  Alcotest.(check int) "union of restrictions" 2 (List.length body.Ticket.authorization_data)

let test_tgs_rejects_non_tgt () =
  let w = setup () in
  let creds = Result.get_ok (authenticate w w.fileserver) in
  match Kdc.Client.derive w.net ~kdc:w.kdc_name ~tgt:creds ~target:w.fileserver () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a service ticket must not work as a TGT"

let test_tgs_rejects_expired_tgt () =
  let w = setup () in
  let tgt = Result.get_ok (authenticate w w.kdc_name) in
  Sim.Clock.advance (Net.clock w.net) (9 * 3600 * 1_000_000);
  match Kdc.Client.derive w.net ~kdc:w.kdc_name ~tgt ~target:w.fileserver () with
  | Error e -> Alcotest.(check bool) "mentions expiry" true (e = "tgs: TGT expired")
  | Ok _ -> Alcotest.fail "expired TGT accepted"

let test_tgs_expiry_capped_by_tgt () =
  let w = setup () in
  let tgt = Result.get_ok (authenticate w w.kdc_name) in
  Sim.Clock.advance (Net.clock w.net) (7 * 3600 * 1_000_000);
  let creds =
    Result.get_ok (Kdc.Client.derive w.net ~kdc:w.kdc_name ~tgt ~target:w.fileserver ())
  in
  Alcotest.(check bool) "derived expiry never exceeds TGT's" true
    (creds.Ticket.cred_expires <= tgt.Ticket.cred_expires)

let test_reply_not_readable_by_others () =
  let w = setup () in
  (* An eavesdropper who captures the AS reply cannot extract the session
     key: parsing with the wrong client key fails. *)
  let captured = ref None in
  Net.set_tap w.net (fun ~dir ~src:_ ~dst:_ payload ->
      (match dir with `Response -> captured := Some payload | `Request -> ());
      Net.Deliver);
  ignore (authenticate w w.fileserver);
  Net.clear_tap w.net;
  match !captured with
  | None -> Alcotest.fail "no reply captured"
  | Some reply ->
      (* Replaying the whole reply bytes as mallory: decryption must fail. *)
      let open Wire in
      let v = Result.get_ok (decode reply) in
      let sealed = Result.get_ok (Result.bind (field v 2) to_string) in
      let box = Option.get (Crypto.Aead.decode sealed) in
      Alcotest.(check bool) "sealed part opaque" true
        (Crypto.Aead.open_ ~key:(Net.fresh_key w.net) ~ad:"as-rep" box = None)

let test_tampered_request_rejected () =
  let w = setup () in
  Net.set_tap w.net (fun ~dir ~src:_ ~dst:_ payload ->
      match dir with
      | `Request ->
          let b = Bytes.of_string payload in
          if Bytes.length b > 10 then
            Bytes.set b 10 (Char.chr (Char.code (Bytes.get b 10) lxor 0xff));
          Net.Replace (Bytes.to_string b)
      | `Response -> Net.Deliver);
  (match authenticate w w.fileserver with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered exchange should not yield credentials");
  Net.clear_tap w.net

let test_preauth_required () =
  (* A KDC demanding pre-authentication refuses requests that do not prove
     knowledge of the client key up front. *)
  let net = Sim.Net.create ~seed:"preauth" () in
  let dir = Directory.create () in
  let kdc_name = p "kdc" in
  let alice = p "alice" and fs = p "fs" in
  let alice_key = Net.fresh_key net in
  Directory.add_symmetric dir kdc_name (Net.fresh_key net);
  Directory.add_symmetric dir alice alice_key;
  Directory.add_symmetric dir fs (Net.fresh_key net);
  let kdc = Kdc.create net ~name:kdc_name ~directory:dir ~require_preauth:true () in
  Kdc.install kdc;
  (* The genuine client pre-authenticates automatically. *)
  (match Kdc.Client.authenticate net ~kdc:kdc_name ~client:alice ~client_key:alice_key ~service:fs () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* A raw AS request without the preauth field is refused. *)
  let nonce = 42 in
  let bare =
    Wire.encode
      (Wire.L
         [ Wire.S "as"; Principal.to_wire alice; Principal.to_wire fs; Wire.I nonce; Wire.L [] ])
  in
  (match Sim.Net.rpc net ~src:"mallory" ~dst:(Principal.to_string kdc_name) bare with
  | Error e -> Alcotest.fail e
  | Ok reply ->
      let open Wire in
      let v = Result.get_ok (decode reply) in
      let tag = Result.get_ok (Result.bind (field v 0) to_string) in
      Alcotest.(check string) "refused" "err" tag);
  (* A stale pre-authentication timestamp is refused. *)
  let stale_preauth =
    Crypto.Aead.encode
      (Crypto.Aead.seal ~key:alice_key ~ad:"preauth" ~nonce:(Net.fresh_nonce net)
         (Wire.encode (Wire.I (-10 * 60 * 1_000_000))))
  in
  Sim.Clock.advance (Net.clock net) (60 * 60 * 1_000_000);
  let with_stale =
    Wire.encode
      (Wire.L
         [ Wire.S "as"; Principal.to_wire alice; Principal.to_wire fs; Wire.I nonce; Wire.L [];
           Wire.S stale_preauth ])
  in
  match Sim.Net.rpc net ~src:"mallory" ~dst:(Principal.to_string kdc_name) with_stale with
  | Error e -> Alcotest.fail e
  | Ok reply ->
      let open Wire in
      let v = Result.get_ok (decode reply) in
      let tag = Result.get_ok (Result.bind (field v 0) to_string) in
      Alcotest.(check string) "stale refused" "err" tag

let test_determinism () =
  let run () =
    let w = setup ~seed:"fixed" () in
    let creds = Result.get_ok (authenticate w w.fileserver) in
    creds.Ticket.session_key
  in
  Alcotest.(check string) "same seed, same run" (run ()) (run ())

(* Property: however a chain of TGS derivations is arranged, every
   restriction added at any step is present in the final ticket. *)
let prop_derivation_monotone =
  QCheck.Test.make ~name:"TGS derivations only accumulate restrictions" ~count:20
    (QCheck.list_of_size (QCheck.Gen.int_range 0 4) (QCheck.int_range 0 1000))
    (fun steps ->
      let w = setup ~seed:("monotone" ^ String.concat "," (List.map string_of_int steps)) () in
      let tgt = ref (Result.get_ok (authenticate w w.kdc_name)) in
      List.iter
        (fun marker ->
          let added = [ Wire.L [ Wire.S "accept-once"; Wire.S (string_of_int marker) ] ] in
          tgt :=
            Result.get_ok
              (Kdc.Client.derive w.net ~kdc:w.kdc_name ~tgt:!tgt ~target:w.kdc_name
                 ~auth_data:added ()))
        steps;
      let creds =
        Result.get_ok (Kdc.Client.derive w.net ~kdc:w.kdc_name ~tgt:!tgt ~target:w.fileserver ())
      in
      let fs_key = Option.get (Directory.symmetric w.dir w.fileserver) in
      let body = Result.get_ok (Ticket.open_ ~service_key:fs_key creds.Ticket.ticket_blob) in
      List.length body.Ticket.authorization_data = List.length steps
      && List.for_all
           (fun marker ->
             List.exists
               (fun v -> v = Wire.L [ Wire.S "accept-once"; Wire.S (string_of_int marker) ])
               body.Ticket.authorization_data)
           steps)

(* Property: shrinking the ACL never grants a request that was denied. *)
let prop_guard_monotone =
  QCheck.Test.make ~name:"removing ACL entries never grants more" ~count:25
    (QCheck.pair (QCheck.int_range 1 4) (QCheck.int_range 0 3))
    (fun (entries, drop) ->
      let w = setup ~seed:(Printf.sprintf "guardmono-%d-%d" entries drop) () in
      let acl = Acl.create () in
      let people =
        List.init entries (fun i ->
            let who = p (Printf.sprintf "user%d" i) in
            Acl.add acl ~target:"obj"
              { Acl.subject = Acl.Principal_is who; rights = [ "read" ]; restrictions = [] };
            who)
      in
      let guard =
        Guard.create w.net ~me:w.fileserver
          ~my_key:(Option.get (Directory.symmetric w.dir w.fileserver))
          ~acl ()
      in
      let decisions () =
        List.map
          (fun who ->
            Result.is_ok (Guard.decide guard ~operation:"read" ~target:"obj" ~presenter:who ()))
          people
      in
      let before = decisions () in
      (* Drop up to [drop] entries. *)
      List.iteri
        (fun i who -> if i < drop then Acl.remove_subject acl ~target:"obj" (Acl.Principal_is who))
        people;
      let after = decisions () in
      List.for_all2 (fun b a -> (not a) || b) before after)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_derivation_monotone; prop_guard_monotone ]

let () =
  Alcotest.run "kdc"
    [ ( "ticket",
        [ ("seal roundtrip", `Quick, test_ticket_seal_roundtrip);
          ("authenticator roundtrip", `Quick, test_authenticator_roundtrip) ] );
      ( "as",
        [ ("exchange", `Quick, test_as_exchange);
          ("unknown principals", `Quick, test_as_unknown_principals);
          ("restrictions carried", `Quick, test_as_restrictions_carried) ] );
      ( "tgs",
        [ ("derivation", `Quick, test_tgs_derivation);
          ("restrictions additive", `Quick, test_tgs_restrictions_additive);
          ("rejects non-TGT", `Quick, test_tgs_rejects_non_tgt);
          ("rejects expired TGT", `Quick, test_tgs_rejects_expired_tgt);
          ("expiry capped", `Quick, test_tgs_expiry_capped_by_tgt) ] );
      ( "adversary",
        [ ("reply opaque to others", `Quick, test_reply_not_readable_by_others);
          ("tampered request rejected", `Quick, test_tampered_request_rejected);
          ("pre-authentication", `Quick, test_preauth_required) ] );
      ("determinism", [ ("seeded runs agree", `Quick, test_determinism) ]);
      ("properties", props) ]
