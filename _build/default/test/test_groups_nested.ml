(* Nested groups across group servers, and group-backed authorization-server
   databases (Sections 3.2/3.3: group names appear anywhere a principal
   might, including on other group servers and in authz databases). *)

module W = Testkit

type nested_world = {
  w : W.world;
  alice : Principal.t;
  bob : Principal.t;
  eng : Group_server.t; (* maintains "engineers" *)
  eng_name : Principal.t;
  site : Group_server.t; (* maintains "badge-holders" ⊇ engineers@eng *)
  site_name : Principal.t;
  door : Guard.t;
  door_name : Principal.t;
}

let nested_world () =
  let w = W.create ~seed:"nested groups" () in
  let alice, _ = W.enrol w "alice" in
  let bob, _ = W.enrol w "bob" in
  let eng_p, eng_key = W.enrol w "eng-groups" in
  let site_p, site_key = W.enrol w "site-groups" in
  let door_p, door_key = W.enrol w "door" in
  let eng =
    Result.get_ok (Group_server.create w.W.net ~me:eng_p ~my_key:eng_key ~kdc:w.W.kdc_name ())
  in
  Group_server.install eng;
  Group_server.add_member eng ~group:"engineers" alice;
  let site =
    Result.get_ok (Group_server.create w.W.net ~me:site_p ~my_key:site_key ~kdc:w.W.kdc_name ())
  in
  Group_server.install site;
  (* badge-holders contains the engineers group from the OTHER server. *)
  Group_server.add_group_member site ~group:"badge-holders"
    (Group_server.group_name eng "engineers");
  let acl = Acl.create () in
  Acl.add acl ~target:"gate"
    {
      Acl.subject = Acl.Group (Group_server.group_name site "badge-holders");
      rights = [ "open" ];
      restrictions = [];
    };
  let door = Guard.create w.W.net ~me:door_p ~my_key:door_key ~acl () in
  { w; alice; bob; eng; eng_name = eng_p; site; site_name = site_p; door; door_name = door_p }

(* Alice's full path: prove engineers@eng to the site server, get a
   badge-holders proxy, open the door. *)
let alice_badge nw =
  let tgt = W.login nw.w nw.alice in
  let creds_eng = W.credentials_for nw.w ~tgt nw.eng_name in
  (* Evidence proxy: membership of engineers, presented AT the site group
     server. *)
  let eng_proxy =
    Result.get_ok
      (Group_server.request_membership_proxy nw.w.W.net ~creds:creds_eng ~group:"engineers"
         ~end_server:nw.site_name ())
  in
  let evidence =
    Guard.present ~proxy:eng_proxy ~time:(W.now nw.w) ~server:nw.site_name
      ~operation:"assert-membership" ~target:"engineers" ()
  in
  let creds_site = W.credentials_for nw.w ~tgt nw.site_name in
  Group_server.request_membership_proxy nw.w.W.net ~creds:creds_site ~group:"badge-holders"
    ~end_server:nw.door_name ~evidence:[ evidence ] ()

let test_nested_membership () =
  let nw = nested_world () in
  match alice_badge nw with
  | Error e -> Alcotest.fail e
  | Ok badge -> (
      let presented =
        Guard.present ~proxy:badge ~time:(W.now nw.w) ~server:nw.door_name
          ~operation:"assert-membership" ~target:"badge-holders" ()
      in
      match
        Guard.decide nw.door ~operation:"open" ~target:"gate" ~presenter:nw.alice
          ~group_proxies:[ presented ] ()
      with
      | Ok d -> Alcotest.(check int) "one group used" 1 (List.length d.Guard.via_groups)
      | Error e -> Alcotest.fail e)

let test_nested_requires_evidence () =
  let nw = nested_world () in
  let tgt = W.login nw.w nw.alice in
  let creds_site = W.credentials_for nw.w ~tgt nw.site_name in
  (* Without the engineers proxy, the site server must refuse — alice is
     not a direct member. *)
  match
    Group_server.request_membership_proxy nw.w.W.net ~creds:creds_site ~group:"badge-holders"
      ~end_server:nw.door_name ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nested membership granted without evidence"

let test_nested_nonmember_refused () =
  let nw = nested_world () in
  let tgt = W.login nw.w nw.bob in
  (* Bob is not an engineer, so he cannot even get the evidence proxy. *)
  let creds_eng = W.credentials_for nw.w ~tgt nw.eng_name in
  (match
     Group_server.request_membership_proxy nw.w.W.net ~creds:creds_eng ~group:"engineers"
       ~end_server:nw.site_name ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bob is not an engineer");
  (* And alice's evidence proxy does not help bob: it names alice as
     grantee. *)
  let tgt_a = W.login nw.w nw.alice in
  let creds_eng_a = W.credentials_for nw.w ~tgt:tgt_a nw.eng_name in
  let eng_proxy =
    Result.get_ok
      (Group_server.request_membership_proxy nw.w.W.net ~creds:creds_eng_a ~group:"engineers"
         ~end_server:nw.site_name ())
  in
  let evidence =
    Guard.present ~proxy:eng_proxy ~time:(W.now nw.w) ~server:nw.site_name
      ~operation:"assert-membership" ~target:"engineers" ()
  in
  let creds_site_b = W.credentials_for nw.w ~tgt nw.site_name in
  match
    Group_server.request_membership_proxy nw.w.W.net ~creds:creds_site_b ~group:"badge-holders"
      ~end_server:nw.door_name ~evidence:[ evidence ] ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bob rode alice's evidence"

(* --- authz server with a group-backed database --- *)

let test_authz_with_group_entry () =
  let w = W.create ~seed:"authz groups" () in
  let alice, _ = W.enrol w "alice" in
  let mallory, _ = W.enrol w "mallory" in
  let groups_p, groups_key = W.enrol w "groups" in
  let authz_p, authz_key = W.enrol w "authz" in
  let app_p, app_key = W.enrol w "app" in
  let gsrv =
    Result.get_ok (Group_server.create w.W.net ~me:groups_p ~my_key:groups_key ~kdc:w.W.kdc_name ())
  in
  Group_server.install gsrv;
  Group_server.add_member gsrv ~group:"operators" alice;
  (* The authz database authorizes the WHOLE group, not individuals. *)
  let db = Acl.create () in
  Acl.add db ~target:"reactor"
    {
      Acl.subject = Acl.Group (Group_server.group_name gsrv "operators");
      rights = [ "scram" ];
      restrictions = [];
    };
  let authz =
    Result.get_ok
      (Authz_server.create w.W.net ~me:authz_p ~my_key:authz_key ~kdc:w.W.kdc_name ~database:db
         ())
  in
  Authz_server.install authz;
  let acl = Acl.create () in
  Acl.add acl ~target:"*" { Acl.subject = Acl.Principal_is authz_p; rights = []; restrictions = [] };
  let app_guard = Guard.create w.W.net ~me:app_p ~my_key:app_key ~acl () in
  (* Alice: group proxy (for the AUTHZ server) -> authorization proxy (for
     the app). *)
  let tgt = W.login w alice in
  let creds_g = W.credentials_for w ~tgt groups_p in
  let gproxy =
    Result.get_ok
      (Group_server.request_membership_proxy w.W.net ~creds:creds_g ~group:"operators"
         ~end_server:authz_p ())
  in
  let evidence =
    Guard.present ~proxy:gproxy ~time:(W.now w) ~server:authz_p
      ~operation:"assert-membership" ~target:"operators" ()
  in
  let creds_a = W.credentials_for w ~tgt authz_p in
  let proxy =
    match
      Authz_server.request_authorization w.W.net ~creds:creds_a ~end_server:app_p
        ~target:"reactor" ~operation:"scram" ~evidence:[ evidence ] ()
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let presented =
    Guard.present ~proxy ~time:(W.now w) ~server:app_p ~operation:"scram" ~target:"reactor" ()
  in
  (match
     Guard.decide app_guard ~operation:"scram" ~target:"reactor" ~presenter:alice
       ~proxies:[ presented ] ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* Without evidence the authz server refuses. *)
  (match
     Authz_server.request_authorization w.W.net ~creds:creds_a ~end_server:app_p
       ~target:"reactor" ~operation:"scram" ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "authorized without membership evidence");
  (* Mallory has no group proxy at all. *)
  let tgt_m = W.login w mallory in
  let creds_m = W.credentials_for w ~tgt:tgt_m authz_p in
  match
    Authz_server.request_authorization w.W.net ~creds:creds_m ~end_server:app_p
      ~target:"reactor" ~operation:"scram" ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mallory authorized"

let () =
  Alcotest.run "groups-nested"
    [ ( "nested",
        [ ("membership via remote group", `Quick, test_nested_membership);
          ("evidence required", `Quick, test_nested_requires_evidence);
          ("non-member refused", `Quick, test_nested_nonmember_refused) ] );
      ("authz+groups", [ ("group-backed database", `Quick, test_authz_with_group_entry) ]) ]
