(* The related-work baselines the paper compares against (Sections 3.4, 5):
   behaviour plus the message-count characteristics the benches rely on. *)

let realm = "base.test"
let p name = Principal.make ~realm name

(* --- Sollins cascaded authentication --- *)

let sollins_world () =
  let net = Sim.Net.create ~seed:"sollins" () in
  let as_name = p "auth-server" in
  let srv = Sollins.create net ~name:as_name in
  Sollins.install srv;
  (net, as_name, srv)

let test_sollins_chain () =
  let net, as_name, srv = sollins_world () in
  let alice = p "alice" and inter = p "intermediate" and fs = p "fileserver" in
  let ka = Sollins.register srv alice in
  let ki = Sollins.register srv inter in
  ignore (Sollins.register srv fs);
  let passport = Sollins.initiate ~key:ka ~from_:alice ~to_:inter ~restrictions:[ "read-only" ] in
  let passport =
    Sollins.extend ~key:ki ~from_:inter ~to_:fs ~restrictions:[ "file1-only" ] passport
  in
  let m0 = Sim.Metrics.get (Sim.Net.metrics net) "net.messages" in
  (match Sollins.verify_online net ~server:as_name ~caller:"fileserver" passport with
  | Ok (originator, restrictions) ->
      Alcotest.(check bool) "originator" true (Principal.equal originator alice);
      Alcotest.(check (list string)) "restrictions accumulate" [ "read-only"; "file1-only" ]
        restrictions
  | Error e -> Alcotest.fail e);
  (* The defining cost: verification is ONLINE — two messages per use. *)
  Alcotest.(check int) "verification needs the network" 2
    (Sim.Metrics.get (Sim.Net.metrics net) "net.messages" - m0)

let test_sollins_rejects_forgery () =
  let net, as_name, srv = sollins_world () in
  let alice = p "alice" and inter = p "intermediate" and fs = p "fileserver" in
  ignore (Sollins.register srv alice);
  let ki = Sollins.register srv inter in
  ignore (Sollins.register srv fs);
  (* Intermediate forges the first link with its own key. *)
  let forged = Sollins.initiate ~key:ki ~from_:alice ~to_:inter ~restrictions:[] in
  (match Sollins.verify_online net ~server:as_name ~caller:"fs" forged with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forged link accepted");
  (* A broken handoff chain is refused. *)
  let ka = Sollins.register srv alice in
  let passport = Sollins.initiate ~key:ka ~from_:alice ~to_:(p "someone-else") ~restrictions:[] in
  let passport = Sollins.extend ~key:ki ~from_:inter ~to_:fs ~restrictions:[] passport in
  match Sollins.verify_online net ~server:as_name ~caller:"fs" passport with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "broken handoff accepted"

let test_sollins_wire () =
  let _, _, srv = sollins_world () in
  let alice = p "alice" in
  let ka = Sollins.register srv alice in
  let passport = Sollins.initiate ~key:ka ~from_:alice ~to_:(p "b") ~restrictions:[ "r" ] in
  match Sollins.passport_of_wire (Sollins.passport_to_wire passport) with
  | Ok passport' -> Alcotest.(check int) "roundtrip" 1 (List.length passport')
  | Error e -> Alcotest.fail e

(* --- Amoeba bank --- *)

let test_amoeba_prepay_flow () =
  let net = Sim.Net.create ~seed:"amoeba" () in
  let bank_name = p "bank" in
  let bank = Amoeba_bank.create net ~name:bank_name in
  Amoeba_bank.install bank;
  Amoeba_bank.open_account bank "client";
  Amoeba_bank.open_account bank "server";
  Amoeba_bank.mint bank ~account:"client" ~currency:"usd" 100;
  (* The client must pre-pay before service. *)
  (match
     Amoeba_bank.transfer net ~bank:bank_name ~caller:"client" ~from_:"client" ~to_:"server"
       ~currency:"usd" ~amount:30
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Amoeba_bank.balance net ~bank:bank_name ~caller:"server" ~account:"server" ~currency:"usd" with
  | Ok b -> Alcotest.(check int) "prepaid visible" 30 b
  | Error e -> Alcotest.fail e);
  (* Service consumes the pre-paid funds. *)
  (match
     Amoeba_bank.withdraw net ~bank:bank_name ~caller:"server" ~account:"server" ~currency:"usd"
       ~amount:30
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "consumed" 0 (Amoeba_bank.balance_direct bank ~account:"server" ~currency:"usd");
  (* Overdraft refused. *)
  match
    Amoeba_bank.transfer net ~bank:bank_name ~caller:"client" ~from_:"client" ~to_:"server"
      ~currency:"usd" ~amount:1000
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overdraft"

(* --- DSSA roles --- *)

let test_dssa_roles () =
  let net = Sim.Net.create ~seed:"dssa" () in
  let drbg = Sim.Net.drbg net in
  let ca_name = p "dssa-ca" in
  let ca = Dssa.create net ~name:ca_name ~drbg ~bits:512 in
  Dssa.install ca;
  let alice = p "alice" and bob = p "bob" in
  let m0 = Sim.Metrics.get (Sim.Net.metrics net) "net.messages" in
  let cert, role_key =
    Result.get_ok
      (Dssa.create_role net ~ca:ca_name ~caller:"alice" ~owner:alice ~rights:[ "read:file1" ])
  in
  (* The defining cost: restricting a delegation needs a round-trip and
     registers state at the CA. *)
  Alcotest.(check int) "role creation is online" 2
    (Sim.Metrics.get (Sim.Net.metrics net) "net.messages" - m0);
  Alcotest.(check int) "CA accumulates roles" 1 (Dssa.role_count ca);
  let delegation = Dssa.delegate ~role_key ~to_:bob cert in
  (match Dssa.verify ~ca_pub:(Dssa.ca_pub ca) ~presenter:bob delegation with
  | Ok rights -> Alcotest.(check (list string)) "rights" [ "read:file1" ] rights
  | Error e -> Alcotest.fail e);
  (* The wrong presenter is refused. *)
  (match Dssa.verify ~ca_pub:(Dssa.ca_pub ca) ~presenter:(p "eve") delegation with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "delegation usable by non-delegate");
  (* A forged role certificate is refused. *)
  let bad = { cert with Dssa.role_rights = [ "all" ] } in
  let forged = Dssa.delegate ~role_key ~to_:bob bad in
  match Dssa.verify ~ca_pub:(Dssa.ca_pub ca) ~presenter:bob forged with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered rights accepted"

(* --- Grapevine --- *)

let test_grapevine_queries () =
  let net = Sim.Net.create ~seed:"grapevine" () in
  let reg_name = p "registry" in
  let reg = Grapevine.create net ~name:reg_name in
  Grapevine.install reg;
  let alice = p "alice" in
  Grapevine.add_member reg ~group:"admins" alice;
  let m0 = Sim.Metrics.get (Sim.Net.metrics net) "net.messages" in
  (match Grapevine.is_member net ~server:reg_name ~caller:"fs" ~group:"admins" alice with
  | Ok b -> Alcotest.(check bool) "member" true b
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "each check is online" 2
    (Sim.Metrics.get (Sim.Net.metrics net) "net.messages" - m0);
  (match Grapevine.is_member net ~server:reg_name ~caller:"fs" ~group:"admins" (p "bob") with
  | Ok b -> Alcotest.(check bool) "non-member" false b
  | Error e -> Alcotest.fail e);
  Grapevine.remove_member reg ~group:"admins" alice;
  match Grapevine.is_member net ~server:reg_name ~caller:"fs" ~group:"admins" alice with
  | Ok b -> Alcotest.(check bool) "removed" false b
  | Error e -> Alcotest.fail e

(* --- ECMA PAC --- *)

let test_ecma_pac () =
  let net = Sim.Net.create ~seed:"pac" () in
  let auth_name = p "pac-authority" in
  let authority = Ecma_pac.create net ~name:auth_name ~drbg:(Sim.Net.drbg net) ~bits:512 in
  Ecma_pac.install authority;
  let alice = p "alice" in
  Ecma_pac.entitle authority alice "print";
  Ecma_pac.entitle authority alice "scan";
  let m0 = Sim.Metrics.get (Sim.Net.metrics net) "net.messages" in
  let pac =
    Result.get_ok
      (Ecma_pac.request net ~authority:auth_name ~caller:alice ~privileges:[ "print" ] ())
  in
  Alcotest.(check int) "issuance is online" 2 (Sim.Metrics.get (Sim.Net.metrics net) "net.messages" - m0);
  (* Offline verification works for the named subject. *)
  (match
     Ecma_pac.verify ~authority_pub:(Ecma_pac.authority_pub authority) ~now:0
       ~presenter:(Some alice) pac
   with
  | Ok privileges -> Alcotest.(check (list string)) "privileges" [ "print" ] privileges
  | Error e -> Alcotest.fail e);
  (* ...but not for anyone else. *)
  (match
     Ecma_pac.verify ~authority_pub:(Ecma_pac.authority_pub authority) ~now:0
       ~presenter:(Some (p "bob")) pac
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "named PAC used by a stranger");
  (* Unentitled privileges are refused at issuance. *)
  (match Ecma_pac.request net ~authority:auth_name ~caller:alice ~privileges:[ "erase" ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unentitled privilege certified");
  (* The defining limitation: narrowing is NOT an offline operation — the
     holder must return to the authority (another 2 messages). *)
  let m1 = Sim.Metrics.get (Sim.Net.metrics net) "net.messages" in
  ignore
    (Result.get_ok
       (Ecma_pac.request net ~authority:auth_name ~caller:alice ~privileges:[ "print" ] ()));
  Alcotest.(check int) "narrowing is online too" 2
    (Sim.Metrics.get (Sim.Net.metrics net) "net.messages" - m1);
  (* A tampered privilege list is caught. *)
  let forged = { pac with Ecma_pac.pac_privileges = [ "print"; "erase" ] } in
  match
    Ecma_pac.verify ~authority_pub:(Ecma_pac.authority_pub authority) ~now:0
      ~presenter:(Some alice) forged
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered PAC verified"

let () =
  Alcotest.run "baselines"
    [ ( "sollins",
        [ ("chain verification is online", `Quick, test_sollins_chain);
          ("rejects forgery", `Quick, test_sollins_rejects_forgery);
          ("wire roundtrip", `Quick, test_sollins_wire) ] );
      ("amoeba", [ ("pre-pay flow", `Quick, test_amoeba_prepay_flow) ]);
      ("dssa", [ ("role-based delegation", `Slow, test_dssa_roles) ]);
      ("grapevine", [ ("per-request queries", `Quick, test_grapevine_queries) ]);
      ("ecma-pac", [ ("privilege certificates", `Slow, test_ecma_pac) ]) ]
