module P = Principal

let principal = Alcotest.testable P.pp P.equal

let alice = P.make ~realm:"isi.edu" "alice"
let bob = P.make ~realm:"mit.edu" "bob"

let test_make () =
  Alcotest.(check string) "to_string" "isi.edu/alice" (P.to_string alice);
  Alcotest.(check bool) "make rejects empty" true
    (try
       ignore (P.make ~realm:"" "x");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "make rejects slash" true
    (try
       ignore (P.make ~realm:"a" "b/c");
       false
     with Invalid_argument _ -> true)

let test_of_string () =
  Alcotest.(check (result principal string)) "parses" (Ok alice) (P.of_string "isi.edu/alice");
  Alcotest.(check bool) "no slash" true (Result.is_error (P.of_string "nope"));
  Alcotest.(check bool) "empty name" true (Result.is_error (P.of_string "realm/"));
  Alcotest.(check bool) "second slash" true (Result.is_error (P.of_string "a/b/c"))

let test_ordering () =
  Alcotest.(check bool) "equal" true (P.equal alice alice);
  Alcotest.(check bool) "not equal" false (P.equal alice bob);
  Alcotest.(check bool) "total order" true (P.compare alice bob <> 0);
  Alcotest.(check int) "reflexive" 0 (P.compare bob bob)

let test_wire () =
  (match P.of_wire (P.to_wire alice) with
  | Ok p -> Alcotest.check principal "roundtrip" alice p
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "bad wire" true (Result.is_error (P.of_wire (Wire.I 3)))

let test_group () =
  let g = P.Group.make ~server:bob "admins" in
  Alcotest.(check string) "global name" "mit.edu/bob$admins" (P.Group.to_string g);
  (match P.Group.of_wire (P.Group.to_wire g) with
  | Ok g' -> Alcotest.(check bool) "roundtrip" true (P.Group.equal g g')
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "same name different server differs" false
    (P.Group.equal g (P.Group.make ~server:alice "admins"))

let test_account () =
  let a = P.Account.make ~server:alice "savings" in
  Alcotest.(check string) "global name" "isi.edu/alice:savings" (P.Account.to_string a);
  match P.Account.of_wire (P.Account.to_wire a) with
  | Ok a' -> Alcotest.(check bool) "roundtrip" true (P.Account.equal a a')
  | Error e -> Alcotest.fail e

let test_directory () =
  let d = Directory.create () in
  Alcotest.(check bool) "empty" true (Directory.symmetric d alice = None);
  Directory.add_symmetric d alice "key-a";
  Directory.add_symmetric d bob "key-b";
  Alcotest.(check (option string)) "lookup" (Some "key-a") (Directory.symmetric d alice);
  let drbg = Crypto.Drbg.create ~seed:"dir" in
  let rsa = Crypto.Rsa.generate drbg ~bits:256 in
  Directory.add_public d alice rsa.Crypto.Rsa.pub;
  Alcotest.(check bool) "public key" true (Directory.public d alice <> None);
  Alcotest.(check bool) "no public for bob" true (Directory.public d bob = None);
  Alcotest.(check int) "two principals" 2 (List.length (Directory.principals d));
  Directory.remove d alice;
  Alcotest.(check bool) "removed sym" true (Directory.symmetric d alice = None);
  Alcotest.(check bool) "removed pub" true (Directory.public d alice = None)

let () =
  Alcotest.run "principal"
    [ ( "principal",
        [ ("make/to_string", `Quick, test_make);
          ("of_string", `Quick, test_of_string);
          ("ordering", `Quick, test_ordering);
          ("wire", `Quick, test_wire) ] );
      ("group", [ ("group names", `Quick, test_group) ]);
      ("account", [ ("account names", `Quick, test_account) ]);
      ("directory", [ ("key directory", `Quick, test_directory) ]) ]
