(* Availability: what keeps working when infrastructure fails.

   Offline verifiability is the structural advantage the paper claims for
   restricted proxies over online schemes (Sections 3.4, 5): once granted, a
   proxy needs no authority on the critical path. These tests kill servers
   mid-run and check that exactly the right things degrade. *)

module W = Testkit
module R = Restriction

let test_capability_survives_kdc_outage () =
  let w = W.create ~seed:"kdc outage" () in
  let alice, _ = W.enrol w "alice" in
  let bob, _ = W.enrol w "bob" in
  let fs_name, fs_key = W.enrol w "fs" in
  let acl = Acl.create () in
  Acl.add acl ~target:"*" { Acl.subject = Acl.Principal_is alice; rights = []; restrictions = [] };
  let fs = File_server.create w.W.net ~me:fs_name ~my_key:fs_key ~acl () in
  File_server.install fs;
  File_server.put_direct fs ~path:"f" "still here";
  (* Everything bob needs is acquired while the KDC is up. *)
  let tgt_a = W.login w alice in
  let cap =
    Result.get_ok
      (Capability.mint_via_kdc w.W.net ~kdc:w.W.kdc_name ~tgt:tgt_a ~end_server:fs_name
         ~target:"f" ~ops:[ "read" ] ())
  in
  let tgt_b = W.login w bob in
  let creds_b = W.credentials_for w ~tgt:tgt_b fs_name in
  (* The KDC goes down. *)
  Sim.Net.unregister w.W.net ~name:(Principal.to_string w.W.kdc_name);
  (* Proxy-based access still works: verification is offline. *)
  let presented =
    File_server.attach w.W.net ~proxy:cap ~server:fs_name ~operation:"read" ~path:"f"
  in
  (match File_server.read w.W.net ~creds:creds_b ~proxies:[ presented ] ~path:"f" () with
  | Ok content -> Alcotest.(check string) "reads during outage" "still here" content
  | Error e -> Alcotest.fail e);
  (* New logins fail cleanly (no exception). *)
  let carol, carol_key = W.enrol w "carol" in
  match
    Kdc.Client.authenticate w.W.net ~kdc:w.W.kdc_name ~client:carol ~client_key:carol_key
      ~service:fs_name ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "login succeeded against a dead KDC"

let test_sollins_dies_with_its_authority () =
  (* The contrast: Sollins verification NEEDS the authentication server on
     every use. *)
  let net = Sim.Net.create ~seed:"sollins outage" () in
  let as_name = Principal.make ~realm:"r" "as" in
  let srv = Sollins.create net ~name:as_name in
  Sollins.install srv;
  let alice = Principal.make ~realm:"r" "alice" in
  let fs = Principal.make ~realm:"r" "fs" in
  let ka = Sollins.register srv alice in
  ignore (Sollins.register srv fs);
  let passport = Sollins.initiate ~key:ka ~from_:alice ~to_:fs ~restrictions:[] in
  (match Sollins.verify_online net ~server:as_name ~caller:"fs" passport with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Sim.Net.unregister net ~name:(Principal.to_string as_name);
  match Sollins.verify_online net ~server:as_name ~caller:"fs" passport with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Sollins verified without its authority"

let test_pk_survives_name_server_outage_via_cache () =
  (* A public-key proxy verifies through the resolver's cache while the name
     server is down; a never-seen grantor cannot be resolved. *)
  let net = Sim.Net.create ~seed:"ns outage" () in
  let drbg = Sim.Net.drbg net in
  let ca = Ca.create drbg ~name:(Principal.make ~realm:"r" "ca") ~bits:512 in
  let ns_name = Principal.make ~realm:"r" "ns" in
  let ns = Name_server.create net ~name:ns_name ~ca_pub:(Ca.ca_pub ca) in
  Name_server.install ns;
  let alice = Principal.make ~realm:"r" "alice" in
  let alice_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Name_server.publish ns (Ca.issue ca ~now:0 ~lifetime:max_int alice alice_rsa.Crypto.Rsa.pub);
  let stranger = Principal.make ~realm:"r" "stranger" in
  let stranger_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Name_server.publish ns
    (Ca.issue ca ~now:0 ~lifetime:max_int stranger stranger_rsa.Crypto.Rsa.pub);
  let resolver =
    Resolver.create net ~name_server:ns_name ~ca_pub:(Ca.ca_pub ca) ~caller:"server" ()
  in
  (* Warm the cache with alice only. *)
  Alcotest.(check bool) "warm" true (Resolver.lookup resolver alice <> None);
  Sim.Net.unregister net ~name:(Principal.to_string ns_name);
  let proxy =
    Proxy.grant_pk ~drbg ~now:0 ~expires:max_int ~grantor:alice ~grantor_key:alice_rsa
      ~proxy_bits:512 ~restrictions:[] ()
  in
  let certs = match proxy.Proxy.flavor with Proxy.Public_key c -> c | _ -> assert false in
  (match Verifier.verify_pk ~lookup:(Resolver.lookup resolver) ~now:1 certs with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("cached grantor should verify: " ^ e));
  (* A proxy from the never-cached stranger cannot be verified now. *)
  let proxy2 =
    Proxy.grant_pk ~drbg ~now:0 ~expires:max_int ~grantor:stranger ~grantor_key:stranger_rsa
      ~proxy_bits:512 ~restrictions:[] ()
  in
  let certs2 = match proxy2.Proxy.flavor with Proxy.Public_key c -> c | _ -> assert false in
  match Verifier.verify_pk ~lookup:(Resolver.lookup resolver) ~now:1 certs2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unresolvable grantor verified"

let test_group_removal_vs_live_proxy () =
  (* The revocation-timing trade the paper accepts: removing a member stops
     NEW proxies immediately, but an already-issued proxy lives until it
     expires. *)
  let w = W.create ~seed:"group timing" () in
  let alice, _ = W.enrol w "alice" in
  let gsrv_p, gsrv_key = W.enrol w "groups" in
  let door_p, door_key = W.enrol w "door" in
  let gsrv =
    Result.get_ok
      (Group_server.create w.W.net ~me:gsrv_p ~my_key:gsrv_key ~kdc:w.W.kdc_name
         ~proxy_lifetime_us:W.hour ())
  in
  Group_server.install gsrv;
  Group_server.add_member gsrv ~group:"ops" alice;
  let acl = Acl.create () in
  Acl.add acl ~target:"rack"
    { Acl.subject = Acl.Group (Group_server.group_name gsrv "ops"); rights = []; restrictions = [] };
  let door = Guard.create w.W.net ~me:door_p ~my_key:door_key ~acl () in
  let tgt = W.login w alice in
  let creds = W.credentials_for w ~tgt gsrv_p in
  let gproxy =
    Result.get_ok
      (Group_server.request_membership_proxy w.W.net ~creds ~group:"ops" ~end_server:door_p ())
  in
  Group_server.remove_member gsrv ~group:"ops" alice;
  (* The live proxy still asserts membership... *)
  let present () =
    Guard.present ~proxy:gproxy ~time:(W.now w) ~server:door_p ~operation:"assert-membership"
      ~target:"ops" ()
  in
  (match
     Guard.decide door ~operation:"open" ~target:"rack" ~presenter:alice
       ~group_proxies:[ present () ] ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("live proxy should still work: " ^ e));
  (* ...no new proxy can be obtained... *)
  (match
     Group_server.request_membership_proxy w.W.net ~creds ~group:"ops" ~end_server:door_p ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "removed member re-certified");
  (* ...and expiry ends it. *)
  Sim.Clock.advance (Sim.Net.clock w.W.net) (2 * W.hour);
  match
    Guard.decide door ~operation:"open" ~target:"rack" ~presenter:alice
      ~group_proxies:[ present () ] ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expired membership proxy accepted"

let test_bank_outage_degrades_cleanly () =
  (* When the drawee bank is down, deposits fail with an error (the check
     can be re-presented later) and no money moves anywhere. *)
  let w = W.create ~seed:"bank outage" () in
  let drbg = Sim.Net.drbg w.W.net in
  let carol, _ = W.enrol w "carol" in
  let shop, _ = W.enrol w "shop" in
  let carol_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  let shop_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public w.W.dir carol carol_rsa.Crypto.Rsa.pub;
  Directory.add_public w.W.dir shop shop_rsa.Crypto.Rsa.pub;
  let lookup p = Directory.public w.W.dir p in
  let mk_bank name =
    let p, key = W.enrol w name in
    let rsa = Crypto.Rsa.generate drbg ~bits:512 in
    Directory.add_public w.W.dir p rsa.Crypto.Rsa.pub;
    let b =
      Result.get_ok
        (Accounting_server.create w.W.net ~me:p ~my_key:key ~kdc:w.W.kdc_name ~signing_key:rsa
           ~lookup ())
    in
    Accounting_server.install b;
    (p, b)
  in
  let drawee_p, drawee = mk_bank "drawee" in
  let payee_p, payee_bank = mk_bank "payee-bank" in
  let tgt_c = W.login w carol in
  let creds_cd = W.credentials_for w ~tgt:tgt_c drawee_p in
  Result.get_ok (Accounting_server.open_account w.W.net ~creds:creds_cd ~name:"carol");
  ignore (Ledger.mint (Accounting_server.ledger drawee) ~name:"carol" ~currency:"usd" 100);
  let tgt_s = W.login w shop in
  let creds_sb = W.credentials_for w ~tgt:tgt_s payee_p in
  Result.get_ok (Accounting_server.open_account w.W.net ~creds:creds_sb ~name:"shop");
  let now = W.now w in
  let check =
    Check.write ~drbg ~now ~expires:(now + (24 * W.hour)) ~payor:carol ~payor_key:carol_rsa
      ~account:(Accounting_server.account drawee "carol") ~payee:shop ~currency:"usd"
      ~amount:40 ()
  in
  Sim.Net.unregister w.W.net ~name:(Principal.to_string drawee_p);
  (match
     Accounting_server.deposit w.W.net ~creds:creds_sb ~endorser_key:shop_rsa ~check
       ~to_account:"shop"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cleared against a dead drawee");
  Alcotest.(check int) "nothing credited" 0
    (Ledger.balance (Accounting_server.ledger payee_bank) ~name:"shop" ~currency:"usd");
  Alcotest.(check int) "nothing debited" 100
    (Ledger.balance (Accounting_server.ledger drawee) ~name:"carol" ~currency:"usd");
  (* The drawee comes back; the same check clears (accept-once was never
     consumed). *)
  Accounting_server.install drawee;
  match
    Accounting_server.deposit w.W.net ~creds:creds_sb ~endorser_key:shop_rsa ~check
      ~to_account:"shop"
  with
  | Ok amount -> Alcotest.(check int) "cleared after recovery" 40 amount
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "availability"
    [ ( "outages",
        [ ("capability survives KDC outage", `Quick, test_capability_survives_kdc_outage);
          ("Sollins dies with its authority", `Quick, test_sollins_dies_with_its_authority);
          ("pk survives name-server outage via cache", `Slow,
           test_pk_survives_name_server_outage_via_cache);
          ("group removal vs live proxy", `Quick, test_group_removal_vs_live_proxy);
          ("bank outage degrades cleanly", `Slow, test_bank_outage_degrades_cleanly) ] ) ]
