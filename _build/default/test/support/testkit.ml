(* Shared world-building for integration tests and benches: a simulated
   network with a KDC, a key directory, and helpers to enrol users and
   services. *)

type world = {
  net : Sim.Net.t;
  dir : Directory.t;
  kdc : Kdc.t;
  kdc_name : Principal.t;
  realm : string;
}

let create ?(seed = "testkit") ?(realm = "example.org") () =
  let net = Sim.Net.create ~seed () in
  let dir = Directory.create () in
  let kdc_name = Principal.make ~realm "kdc" in
  Directory.add_symmetric dir kdc_name (Sim.Net.fresh_key net);
  let kdc = Kdc.create net ~name:kdc_name ~directory:dir () in
  Kdc.install kdc;
  { net; dir; kdc; kdc_name; realm }

(* Enrol a principal with a fresh long-term key; returns (principal, key). *)
let enrol w name =
  let p = Principal.make ~realm:w.realm name in
  let key = Sim.Net.fresh_key w.net in
  Directory.add_symmetric w.dir p key;
  (p, key)

let key_of w p =
  match Directory.symmetric w.dir p with
  | Some k -> k
  | None -> failwith ("no key enrolled for " ^ Principal.to_string p)

(* Obtain a TGT for an enrolled principal. *)
let login w p =
  match
    Kdc.Client.authenticate w.net ~kdc:w.kdc_name ~client:p ~client_key:(key_of w p)
      ~service:w.kdc_name ()
  with
  | Ok tgt -> tgt
  | Error e -> failwith ("login failed for " ^ Principal.to_string p ^ ": " ^ e)

(* Derive service credentials from a TGT. *)
let credentials_for w ~tgt service =
  match Kdc.Client.derive w.net ~kdc:w.kdc_name ~tgt ~target:service () with
  | Ok creds -> creds
  | Error e -> failwith ("derive failed: " ^ e)

let now w = Sim.Net.now w.net
let hour = 3_600_000_000
