(* Marketplace: a randomized end-to-end differential test.

   Three buyers bank at First Bank, two shops at Shore Bank. A seeded
   stream of operations — ordinary checks, certified checks, cashier's
   checks, local transfers, and deliberate overdrafts — runs against the
   real distributed stack AND a trivial reference model. After every step
   the two must agree exactly, and the grand total must be conserved. *)

module W = Testkit

let usd = "usd"

(* --- reference model: plain per-account balances --- *)

module Model = struct
  type t = (string, int) Hashtbl.t

  let create () = Hashtbl.create 16
  let get m k = Option.value (Hashtbl.find_opt m k) ~default:0
  let add m k v = Hashtbl.replace m k (get m k + v)

  (* A payment of [amount] from [payor] to [payee] succeeds iff the payor
     can cover it (available = balance - held is tracked implicitly: holds
     move value to a "hold" pseudo-account). *)
  let try_pay m ~payor ~payee amount =
    if get m payor >= amount then begin
      add m payor (-amount);
      add m payee amount;
      true
    end
    else false

end

type actor = { name : string; principal : Principal.t; rsa : Crypto.Rsa.private_ }

type market = {
  w : W.world;
  bank_a : Accounting_server.t;
  bank_a_name : Principal.t;
  bank_b : Accounting_server.t;
  bank_b_name : Principal.t;
  buyers : actor list; (* accounts at bank A *)
  shops : actor list; (* accounts at bank B *)
  model : Model.t;
}

let setup ?(seed = "marketplace") () =
  let w = W.create ~seed () in
  let drbg = Sim.Net.drbg w.W.net in
  let mk_actor name =
    let principal, _ = W.enrol w name in
    let rsa = Crypto.Rsa.generate drbg ~bits:512 in
    Directory.add_public w.W.dir principal rsa.Crypto.Rsa.pub;
    { name; principal; rsa }
  in
  let mk_bank name =
    let p, key = W.enrol w name in
    let rsa = Crypto.Rsa.generate drbg ~bits:512 in
    Directory.add_public w.W.dir p rsa.Crypto.Rsa.pub;
    let b =
      Result.get_ok
        (Accounting_server.create w.W.net ~me:p ~my_key:key ~kdc:w.W.kdc_name ~signing_key:rsa
           ~lookup:(fun q -> Directory.public w.W.dir q)
           ())
    in
    Accounting_server.install b;
    (p, b)
  in
  let bank_a_name, bank_a = mk_bank "first-bank" in
  let bank_b_name, bank_b = mk_bank "shore-bank" in
  let model = Model.create () in
  let open_at bank bank_name actor funds =
    let tgt = W.login w actor.principal in
    let creds = W.credentials_for w ~tgt bank_name in
    Result.get_ok (Accounting_server.open_account w.W.net ~creds ~name:actor.name);
    if funds > 0 then
      Result.get_ok
        (Ledger.mint (Accounting_server.ledger bank) ~name:actor.name ~currency:usd funds);
    Model.add model actor.name funds
  in
  let buyers = List.map mk_actor [ "buyer1"; "buyer2"; "buyer3" ] in
  let shops = List.map mk_actor [ "shop1"; "shop2" ] in
  List.iter (fun b -> open_at bank_a bank_a_name b 500) buyers;
  List.iter (fun s -> open_at bank_b bank_b_name s 0) shops;
  { w; bank_a; bank_a_name; bank_b; bank_b_name; buyers; shops; model }

let real_balance m who =
  Ledger.balance (Accounting_server.ledger m.bank_a) ~name:who ~currency:usd
  + Ledger.balance (Accounting_server.ledger m.bank_b) ~name:who ~currency:usd
  + Ledger.held (Accounting_server.ledger m.bank_a) ~name:who ~currency:usd

let assert_agrees m step =
  List.iter
    (fun (a : actor) ->
      let want = Model.get m.model a.name in
      let got = real_balance m a.name in
      if want <> got then
        Alcotest.failf "step %d: %s model=%d real=%d" step a.name want got)
    (m.buyers @ m.shops)

let grand_total m =
  Ledger.total (Accounting_server.ledger m.bank_a) ~currency:usd
  + Ledger.total (Accounting_server.ledger m.bank_b) ~currency:usd

let creds_for m (a : actor) service =
  let tgt = W.login m.w a.principal in
  W.credentials_for m.w ~tgt service

let write_check m (buyer : actor) (shop : actor) amount =
  let now = W.now m.w in
  Check.write ~drbg:(Sim.Net.drbg m.w.W.net) ~now ~expires:(now + (24 * W.hour))
    ~payor:buyer.principal ~payor_key:buyer.rsa
    ~account:(Accounting_server.account m.bank_a buyer.name) ~payee:shop.principal ~currency:usd
    ~amount ()

let deposit m (shop : actor) check =
  Accounting_server.deposit m.w.W.net ~creds:(creds_for m shop m.bank_b_name)
    ~endorser_key:shop.rsa ~check ~to_account:shop.name

let test_marketplace () =
  let m = setup () in
  let rng = Crypto.Drbg.create ~seed:"marketplace ops" in
  let pick l = List.nth l (Crypto.Drbg.uniform_int rng (List.length l)) in
  let total0 = grand_total m in
  for step = 1 to 60 do
    let buyer = pick m.buyers and shop = pick m.shops in
    let amount = 1 + Crypto.Drbg.uniform_int rng 150 in
    (match Crypto.Drbg.uniform_int rng 4 with
    | 0 | 1 -> (
        (* Ordinary check purchase. *)
        let check = write_check m buyer shop amount in
        let expect = Model.try_pay m.model ~payor:buyer.name ~payee:shop.name amount in
        match deposit m shop check with
        | Ok cleared ->
            if not expect then Alcotest.failf "step %d: model said bounce, bank cleared" step;
            if cleared <> amount then Alcotest.failf "step %d: wrong amount" step
        | Error _ -> if expect then Alcotest.failf "step %d: model said clear, bank bounced" step)
    | 2 -> (
        (* Certified purchase: certification succeeds iff funds available;
           the deposit of a certified check always clears. *)
        let check = write_check m buyer shop amount in
        let creds_buyer = creds_for m buyer m.bank_a_name in
        match Accounting_server.certify m.w.W.net ~creds:creds_buyer ~check with
        | Ok _certification ->
            if not (Model.try_pay m.model ~payor:buyer.name ~payee:shop.name amount) then
              Alcotest.failf "step %d: certified beyond model funds" step;
            (match deposit m shop check with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "step %d: certified check bounced: %s" step e)
        | Error _ ->
            if Model.get m.model buyer.name >= amount then
              Alcotest.failf "step %d: certification refused despite funds" step)
    | 3 -> (
        (* Cashier's check purchase: buyer pays the bank up front. *)
        let creds_buyer = creds_for m buyer m.bank_a_name in
        match
          Accounting_server.cashier_check m.w.W.net ~creds:creds_buyer ~from_account:buyer.name
            ~payee:shop.principal ~currency:usd ~amount
        with
        | Ok check ->
            if Model.get m.model buyer.name < amount then
              Alcotest.failf "step %d: cashier's check beyond model funds" step;
            ignore (Model.try_pay m.model ~payor:buyer.name ~payee:shop.name amount);
            (match deposit m shop check with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "step %d: cashier's check bounced: %s" step e)
        | Error _ ->
            if Model.get m.model buyer.name >= amount then
              Alcotest.failf "step %d: cashier refused despite funds" step)
    | _ -> assert false);
    assert_agrees m step;
    if grand_total m <> total0 then Alcotest.failf "step %d: conservation violated" step
  done;
  (* Every shop income is backed by buyer spending. *)
  let spent =
    List.fold_left (fun acc (b : actor) -> acc + (500 - Model.get m.model b.name)) 0 m.buyers
  in
  let earned = List.fold_left (fun acc (s : actor) -> acc + Model.get m.model s.name) 0 m.shops in
  Alcotest.(check int) "buyers' spending equals shops' earnings" spent earned

let test_double_spend_storm () =
  (* The same check deposited at both shops concurrently-ish: exactly one
     clearing. *)
  let m = setup ~seed:"double spend" () in
  let buyer = List.hd m.buyers in
  let shop1 = List.nth m.shops 0 and shop2 = List.nth m.shops 1 in
  (* A check payable to shop1; shop2 also gets the bytes (stolen). *)
  let check = write_check m buyer shop1 100 in
  let r1 = deposit m shop1 check in
  let r2 =
    Accounting_server.deposit m.w.W.net ~creds:(creds_for m shop2 m.bank_b_name)
      ~endorser_key:shop2.rsa ~check ~to_account:shop2.name
  in
  Alcotest.(check bool) "first deposit clears" true (Result.is_ok r1);
  Alcotest.(check bool) "second is refused" true (Result.is_error r2);
  Alcotest.(check int) "buyer charged once" 400 (real_balance m buyer.name)

let () =
  Alcotest.run "marketplace"
    [ ( "differential",
        [ ("random purchases vs model", `Slow, test_marketplace);
          ("double-spend storm", `Slow, test_double_spend_storm) ] ) ]
