(* Resource quotas via standing debit authorities (Section 4): cumulative
   enforcement, release on free, isolation between users, and conservation
   of the resource currency. *)

module W = Testkit

let blocks = Disk_server.blocks_currency

type qw = {
  w : W.world;
  alice : Principal.t;
  alice_rsa : Crypto.Rsa.private_;
  bob : Principal.t;
  bob_rsa : Crypto.Rsa.private_;
  bank : Accounting_server.t;
  bank_name : Principal.t;
  disk : Disk_server.t;
  disk_name : Principal.t;
}

let quota_world ?(seed = "quota tests") () =
  let w = W.create ~seed () in
  let drbg = Sim.Net.drbg w.W.net in
  let alice, _ = W.enrol w "alice" in
  let bob, _ = W.enrol w "bob" in
  let bank_p, bank_key = W.enrol w "bank" in
  let disk_p, disk_key = W.enrol w "disk" in
  let alice_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  let bob_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  let bank_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public w.W.dir alice alice_rsa.Crypto.Rsa.pub;
  Directory.add_public w.W.dir bob bob_rsa.Crypto.Rsa.pub;
  Directory.add_public w.W.dir bank_p bank_rsa.Crypto.Rsa.pub;
  let bank =
    Result.get_ok
      (Accounting_server.create w.W.net ~me:bank_p ~my_key:bank_key ~kdc:w.W.kdc_name
         ~signing_key:bank_rsa
         ~lookup:(fun p -> Directory.public w.W.dir p)
         ())
  in
  Accounting_server.install bank;
  (* Accounts: alice and bob each provisioned with block quota; the disk
     server's escrow. *)
  let open_funded who blocks_amount =
    let tgt = W.login w who in
    let creds = W.credentials_for w ~tgt bank_p in
    let name = who.Principal.name in
    Result.get_ok (Accounting_server.open_account w.W.net ~creds ~name);
    if blocks_amount > 0 then
      Result.get_ok (Ledger.mint (Accounting_server.ledger bank) ~name ~currency:blocks blocks_amount)
  in
  open_funded alice 10;
  open_funded bob 4;
  open_funded disk_p 0;
  let disk =
    Result.get_ok
      (Disk_server.create w.W.net ~me:disk_p ~my_key:disk_key ~kdc:w.W.kdc_name ~bank:bank_p
         ~escrow_account:"disk" ())
  in
  Disk_server.install disk;
  { w; alice; alice_rsa; bob; bob_rsa; bank; bank_name = bank_p; disk; disk_name = disk_p }

let attach qw who who_rsa limit =
  let now = W.now qw.w in
  let authority =
    Standing.grant ~drbg:(Sim.Net.drbg qw.w.W.net) ~now ~expires:(now + (24 * W.hour))
      ~owner:who ~owner_key:who_rsa
      ~account:(Accounting_server.account qw.bank who.Principal.name)
      ~holder:qw.disk_name ~currency:blocks ~limit ()
  in
  let tgt = W.login qw.w who in
  let creds = W.credentials_for qw.w ~tgt qw.disk_name in
  (match Disk_server.attach qw.w.W.net ~creds ~authority with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  creds

let balance qw name = Ledger.balance (Accounting_server.ledger qw.bank) ~name ~currency:blocks

let test_write_charges_blocks () =
  let qw = quota_world () in
  let creds = attach qw qw.alice qw.alice_rsa 10 in
  (match Disk_server.write_file qw.w.W.net ~creds ~path:"a.txt" (String.make 1000 'x') with
  | Ok blocks_charged -> Alcotest.(check int) "two blocks" 2 blocks_charged
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "alice quota drawn" 8 (balance qw "alice");
  Alcotest.(check int) "escrow holds them" 2 (balance qw "disk");
  (match Disk_server.read_file qw.w.W.net ~creds ~path:"a.txt" with
  | Ok c -> Alcotest.(check int) "content stored" 1000 (String.length c)
  | Error e -> Alcotest.fail e);
  match Disk_server.usage qw.w.W.net ~creds with
  | Ok n -> Alcotest.(check int) "usage" 2 n
  | Error e -> Alcotest.fail e

let test_quota_exhaustion () =
  let qw = quota_world () in
  let creds = attach qw qw.alice qw.alice_rsa 3 in
  (* The authority caps cumulative draw at 3 blocks even though the account
     holds 10. *)
  (match Disk_server.write_file qw.w.W.net ~creds ~path:"one" (String.make 600 'a') with
  | Ok n -> Alcotest.(check int) "2 blocks" 2 n
  | Error e -> Alcotest.fail e);
  (match Disk_server.write_file qw.w.W.net ~creds ~path:"two" (String.make 600 'b') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "exceeded the authority's cumulative quota");
  (* A one-block file still fits. *)
  (match Disk_server.write_file qw.w.W.net ~creds ~path:"small" "hi" with
  | Ok n -> Alcotest.(check int) "1 block" 1 n
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "7 left in account" 7 (balance qw "alice")

let test_delete_releases () =
  let qw = quota_world () in
  let creds = attach qw qw.alice qw.alice_rsa 4 in
  ignore (Result.get_ok (Disk_server.write_file qw.w.W.net ~creds ~path:"f" (String.make 1500 'z')));
  Alcotest.(check int) "3 drawn" 7 (balance qw "alice");
  (match Disk_server.delete_file qw.w.W.net ~creds ~path:"f" with
  | Ok n -> Alcotest.(check int) "3 released" 3 n
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "all back" 10 (balance qw "alice");
  Alcotest.(check int) "escrow empty" 0 (balance qw "disk");
  (* Released quota is usable again. *)
  match Disk_server.write_file qw.w.W.net ~creds ~path:"g" (String.make 1900 'q') with
  | Ok n -> Alcotest.(check int) "4 blocks fit again" 4 n
  | Error e -> Alcotest.fail e

let test_overwrite_releases_first () =
  let qw = quota_world () in
  let creds = attach qw qw.alice qw.alice_rsa 5 in
  ignore (Result.get_ok (Disk_server.write_file qw.w.W.net ~creds ~path:"f" (String.make 2000 'x')));
  (* Overwriting with a smaller file should end up charging only the new
     size. *)
  (match Disk_server.write_file qw.w.W.net ~creds ~path:"f" "tiny" with
  | Ok n -> Alcotest.(check int) "1 block now" 1 n
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "account reflects 1 block" 9 (balance qw "alice")

let test_user_isolation () =
  let qw = quota_world () in
  let creds_a = attach qw qw.alice qw.alice_rsa 10 in
  let creds_b = attach qw qw.bob qw.bob_rsa 4 in
  ignore (Result.get_ok (Disk_server.write_file qw.w.W.net ~creds:creds_a ~path:"alice.txt" "aa"));
  ignore (Result.get_ok (Disk_server.write_file qw.w.W.net ~creds:creds_b ~path:"bob.txt" "bb"));
  (* Bob cannot read or delete alice's file. *)
  (match Disk_server.read_file qw.w.W.net ~creds:creds_b ~path:"alice.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bob read alice's file");
  (match Disk_server.delete_file qw.w.W.net ~creds:creds_b ~path:"alice.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bob deleted alice's file");
  (* Charges land on the right accounts. *)
  Alcotest.(check int) "alice" 9 (balance qw "alice");
  Alcotest.(check int) "bob" 3 (balance qw "bob")

let test_forged_authority_rejected () =
  let qw = quota_world () in
  (* Bob forges an authority against alice's account, signed with his own
     key. *)
  let now = W.now qw.w in
  let forged =
    Standing.grant ~drbg:(Sim.Net.drbg qw.w.W.net) ~now ~expires:(now + W.hour) ~owner:qw.alice
      ~owner_key:qw.bob_rsa
      ~account:(Accounting_server.account qw.bank "alice")
      ~holder:qw.disk_name ~currency:blocks ~limit:10 ()
  in
  let tgt = W.login qw.w qw.bob in
  let creds = W.credentials_for qw.w ~tgt qw.disk_name in
  (match Disk_server.attach qw.w.W.net ~creds ~authority:forged with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Attachment is local; the accounting server rejects the draw. *)
  match Disk_server.write_file qw.w.W.net ~creds ~path:"steal" "data" with
  | Error _ -> Alcotest.(check int) "alice untouched" 10 (balance qw "alice")
  | Ok _ -> Alcotest.fail "forged authority drew from alice"

let test_conservation () =
  let qw = quota_world () in
  let creds = attach qw qw.alice qw.alice_rsa 10 in
  let total () =
    balance qw "alice" + balance qw "bob" + balance qw "disk"
  in
  let t0 = total () in
  ignore (Disk_server.write_file qw.w.W.net ~creds ~path:"a" (String.make 700 'a'));
  ignore (Disk_server.write_file qw.w.W.net ~creds ~path:"b" (String.make 5000 'b'));
  ignore (Disk_server.delete_file qw.w.W.net ~creds ~path:"a");
  ignore (Disk_server.write_file qw.w.W.net ~creds ~path:"c" "ccc");
  Alcotest.(check int) "blocks conserved" t0 (total ())

let () =
  Alcotest.run "quota"
    [ ( "disk quotas",
        [ ("write charges blocks", `Slow, test_write_charges_blocks);
          ("cumulative quota exhausts", `Slow, test_quota_exhaustion);
          ("delete releases", `Slow, test_delete_releases);
          ("overwrite releases first", `Slow, test_overwrite_releases_first);
          ("user isolation", `Slow, test_user_isolation);
          ("forged authority rejected", `Slow, test_forged_authority_rejected);
          ("conservation", `Slow, test_conservation) ] ) ]
