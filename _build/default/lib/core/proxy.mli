(** Restricted proxies: granting, cascading, and presentation payloads.

    A value of type {!t} is the {e grantee's} view of a proxy: the
    certificate chain plus the secret proxy-key material. What crosses the
    network is only {!presentation} — the paper's key design point is that
    the bearer "does not send the entire proxy across the network", so an
    eavesdropper who captures a presentation cannot reuse the proxy
    (Section 3.1). *)

(** The secret the grantee holds. *)
type material =
  | Sym of string  (** 32-byte key (conventional realization) *)
  | Keypair of Crypto.Rsa.private_  (** private half (public-key realization) *)

type conventional_chain = {
  base : string;
      (** the grantor's opaque credentials for the end-server (a sealed
          ticket blob); the chain's root sealing key is its session key *)
  cert_blobs : string list;  (** sealed certificates, outermost (oldest) first *)
}

type flavor =
  | Conventional of conventional_chain
  | Public_key of Proxy_cert.pk_cert list  (** chain, oldest first *)
  | Hybrid of Proxy_cert.hybrid_cert * string list
      (** a signed head certificate whose symmetric proxy key is encrypted
          to the end-server, plus conventionally-sealed cascade
          certificates (Section 6.1's hybrid scheme) *)

type t = { flavor : flavor; key : material }

val classify : Restriction.t list -> [ `Bearer | `Delegate of Principal.t list ]
(** A proxy is a delegate proxy iff a [Grantee] restriction is present
    (Section 7.1); the listed principals are the union of all grantee
    lists. *)

(** {2 Granting (conventional)} *)

val grant_conventional :
  drbg:Crypto.Drbg.t ->
  now:int ->
  expires:int ->
  grantor:Principal.t ->
  session_key:string ->
  base:string ->
  restrictions:Restriction.t list ->
  t
(** The grantor, holding credentials [base] for the end-server with
    [session_key], mints a fresh proxy key and seals the certificate under
    the session key. *)

val restrict_conventional :
  drbg:Crypto.Drbg.t ->
  now:int ->
  expires:int ->
  ?grantor:Principal.t ->
  restrictions:Restriction.t list ->
  t ->
  (t, string) result
(** Cascade (Figure 4): append a certificate sealed under the current proxy
    key, carrying a fresh proxy key and {e additional} restrictions. The
    intermediate may label itself with [grantor] (informational — a
    conventional bearer cascade does not authenticate intermediates); the
    default is the anonymous marker [cascade/intermediate]. Fails on a
    public-key proxy. *)

(** {2 Granting (public-key)} *)

val grant_pk :
  drbg:Crypto.Drbg.t ->
  now:int ->
  expires:int ->
  grantor:Principal.t ->
  grantor_key:Crypto.Rsa.private_ ->
  ?proxy_bits:int ->
  restrictions:Restriction.t list ->
  unit ->
  t
(** Figure 6: generate a proxy key pair, sign the certificate with the
    grantor's long-term key. [proxy_bits] defaults to 512. *)

val restrict_pk :
  drbg:Crypto.Drbg.t ->
  now:int ->
  expires:int ->
  ?grantor:Principal.t ->
  ?proxy_bits:int ->
  restrictions:Restriction.t list ->
  t ->
  (t, string) result
(** Bearer cascade: the new certificate is signed with the current {e proxy}
    key, so no intermediate identity is revealed. *)

val delegate_pk :
  drbg:Crypto.Drbg.t ->
  now:int ->
  expires:int ->
  intermediate:Principal.t ->
  intermediate_key:Crypto.Rsa.private_ ->
  ?proxy_bits:int ->
  restrictions:Restriction.t list ->
  t ->
  (t, string) result
(** Delegate cascade: the new certificate is signed by the named
    intermediate's long-term key, leaving an audit trail (Section 3.4). *)

(** {2 Granting (hybrid, Section 6.1)} *)

val grant_hybrid :
  drbg:Crypto.Drbg.t ->
  now:int ->
  expires:int ->
  grantor:Principal.t ->
  grantor_key:Crypto.Rsa.private_ ->
  end_server:Principal.t ->
  end_server_pub:Crypto.Rsa.public ->
  restrictions:Restriction.t list ->
  unit ->
  (t, string) result
(** Sign a certificate carrying a fresh {e symmetric} proxy key encrypted
    under the end-server's public key: third-party-verifiable like the
    public-key realization, with HMAC-cheap possession proofs, pinned to
    one end-server. *)

val restrict_hybrid :
  drbg:Crypto.Drbg.t ->
  now:int ->
  expires:int ->
  ?grantor:Principal.t ->
  restrictions:Restriction.t list ->
  t ->
  (t, string) result
(** Cascade a hybrid proxy: subsequent certificates are conventional seals
    under the current symmetric proxy key. *)

(** {2 Presentation payloads} *)

type presentation = flavor
(** Everything that travels to the end-server: certificates only, never the
    proxy-key material. *)

val presentation : t -> presentation
val presentation_to_wire : presentation -> Wire.t
val presentation_of_wire : Wire.t -> (presentation, string) result

val transfer_to_wire : t -> Wire.t
(** Full grantor→grantee transfer encoding {e including} the secret material;
    must only ever travel inside a sealed channel. *)

val transfer_of_wire : Wire.t -> (t, string) result
