lib/core/restriction.mli: Format Principal Wire
