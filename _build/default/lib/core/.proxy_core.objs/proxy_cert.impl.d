lib/core/proxy_cert.ml: Crypto Principal Printf Restriction Result String Wire
