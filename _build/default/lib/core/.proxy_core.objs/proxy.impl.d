lib/core/proxy.ml: Bignum Crypto List Principal Printf Proxy_cert Restriction Result Wire
