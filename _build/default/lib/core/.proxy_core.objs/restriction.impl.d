lib/core/restriction.ml: Format List Principal Printf Result String Wire
