lib/core/verifier.mli: Crypto Presentation Principal Proxy Proxy_cert Restriction
