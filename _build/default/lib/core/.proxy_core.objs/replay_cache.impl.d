lib/core/replay_cache.ml: Hashtbl List Printf
