lib/core/presentation.ml: Crypto Principal Proxy Restriction Result Wire
