lib/core/proxy_cert.mli: Crypto Principal Restriction Wire
