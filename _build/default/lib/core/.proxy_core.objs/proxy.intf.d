lib/core/proxy.mli: Crypto Principal Proxy_cert Restriction Wire
