lib/core/presentation.mli: Crypto Proxy Restriction Wire
