lib/core/verifier.ml: List Option Presentation Principal Printf Proxy Proxy_cert Restriction Wire
