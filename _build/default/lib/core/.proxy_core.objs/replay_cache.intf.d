lib/core/replay_cache.mli:
