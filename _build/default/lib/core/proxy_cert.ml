type body = {
  grantor : Principal.t;
  serial : string;
  issued_at : int;
  expires : int;
  restrictions : Restriction.t list;
}

let body_to_wire b =
  Wire.L
    [ Principal.to_wire b.grantor;
      Wire.S b.serial;
      Wire.I b.issued_at;
      Wire.I b.expires;
      Restriction.list_to_wire b.restrictions ]

let body_of_wire v =
  let open Wire in
  let* grantor = Result.bind (field v 0) Principal.of_wire in
  let* serial = Result.bind (field v 1) to_string in
  let* issued_at = Result.bind (field v 2) to_int in
  let* expires = Result.bind (field v 3) to_int in
  let* rw = field v 4 in
  let* restrictions = Restriction.list_of_wire rw in
  Ok { grantor; serial; issued_at; expires; restrictions }

let seal_conventional ~sealing_key ~nonce ~proxy_key body =
  let plaintext = Wire.encode (Wire.L [ body_to_wire body; Wire.S proxy_key ]) in
  Crypto.Aead.encode (Crypto.Aead.seal ~key:sealing_key ~ad:"proxy-cert" ~nonce plaintext)

let open_conventional ~sealing_key blob =
  match Crypto.Aead.decode blob with
  | None -> Error "proxy-cert: malformed blob"
  | Some box -> (
      match Crypto.Aead.open_ ~key:sealing_key ~ad:"proxy-cert" box with
      | None -> Error "proxy-cert: seal verification failed"
      | Some plaintext ->
          let open Wire in
          let* v = Wire.decode plaintext in
          let* bw = field v 0 in
          let* body = body_of_wire bw in
          let* proxy_key = Result.bind (field v 1) to_string in
          Ok (body, proxy_key))

type pk_signer = By_grantor_key | By_proxy_key | By_principal of Principal.t

let pk_signer_to_wire = function
  | By_grantor_key -> Wire.L [ Wire.S "grantor-key" ]
  | By_proxy_key -> Wire.L [ Wire.S "proxy-key" ]
  | By_principal p -> Wire.L [ Wire.S "principal"; Principal.to_wire p ]

let pk_signer_of_wire v =
  let open Wire in
  let* tag = Result.bind (field v 0) to_string in
  match tag with
  | "grantor-key" -> Ok By_grantor_key
  | "proxy-key" -> Ok By_proxy_key
  | "principal" ->
      let* p = Result.bind (field v 1) Principal.of_wire in
      Ok (By_principal p)
  | other -> Error (Printf.sprintf "pk-signer: unknown tag %S" other)

type pk_cert = {
  pk_body : body;
  proxy_pub : Crypto.Rsa.public;
  pk_signer : pk_signer;
  signature : string;
}

let pk_signed_bytes c =
  Wire.encode
    (Wire.L
       [ Wire.S "pk-proxy-cert";
         body_to_wire c.pk_body;
         Wire.S (Crypto.Rsa.public_to_bytes c.proxy_pub);
         pk_signer_to_wire c.pk_signer ])

let sign_pk ~key ~signer ~proxy_pub body =
  let unsigned = { pk_body = body; proxy_pub; pk_signer = signer; signature = "" } in
  { unsigned with signature = Crypto.Rsa.sign key (pk_signed_bytes unsigned) }

let verify_pk_signature pub c =
  if Crypto.Rsa.verify pub ~msg:(pk_signed_bytes c) ~signature:c.signature then Ok ()
  else Error "pk proxy-cert: bad signature"

let pk_cert_to_wire c =
  Wire.L
    [ body_to_wire c.pk_body;
      Wire.S (Crypto.Rsa.public_to_bytes c.proxy_pub);
      pk_signer_to_wire c.pk_signer;
      Wire.S c.signature ]

let pk_cert_of_wire v =
  let open Wire in
  let* bw = field v 0 in
  let* pk_body = body_of_wire bw in
  let* pub_bytes = Result.bind (field v 1) to_string in
  let* sw = field v 2 in
  let* pk_signer = pk_signer_of_wire sw in
  let* signature = Result.bind (field v 3) to_string in
  match Crypto.Rsa.public_of_bytes pub_bytes with
  | None -> Error "pk proxy-cert: malformed proxy key"
  | Some proxy_pub -> Ok { pk_body; proxy_pub; pk_signer; signature }

type hybrid_cert = {
  h_body : body;
  h_end_server : Principal.t;
  h_enc_key : string;
  h_signature : string;
}

let hybrid_signed_bytes c =
  Wire.encode
    (Wire.L
       [ Wire.S "hybrid-proxy-cert";
         body_to_wire c.h_body;
         Principal.to_wire c.h_end_server;
         Wire.S c.h_enc_key ])

let sign_hybrid ~drbg ~grantor_key ~end_server ~end_server_pub ~proxy_key body =
  match Crypto.Rsa.encrypt drbg end_server_pub proxy_key with
  | None -> Error "hybrid proxy-cert: proxy key too large for the end-server's modulus"
  | Some h_enc_key ->
      let unsigned = { h_body = body; h_end_server = end_server; h_enc_key; h_signature = "" } in
      Ok { unsigned with h_signature = Crypto.Rsa.sign grantor_key (hybrid_signed_bytes unsigned) }

let verify_hybrid_signature pub c =
  if Crypto.Rsa.verify pub ~msg:(hybrid_signed_bytes c) ~signature:c.h_signature then Ok ()
  else Error "hybrid proxy-cert: bad signature"

let open_hybrid_key ~decrypt c =
  match decrypt c.h_enc_key with
  | Some key when String.length key = 32 -> Ok key
  | Some _ -> Error "hybrid proxy-cert: recovered key has the wrong size"
  | None -> Error "hybrid proxy-cert: cannot decrypt the proxy key (wrong end-server?)"

let hybrid_cert_to_wire c =
  Wire.L
    [ body_to_wire c.h_body;
      Principal.to_wire c.h_end_server;
      Wire.S c.h_enc_key;
      Wire.S c.h_signature ]

let hybrid_cert_of_wire v =
  let open Wire in
  let* bw = field v 0 in
  let* h_body = body_of_wire bw in
  let* h_end_server = Result.bind (field v 1) Principal.of_wire in
  let* h_enc_key = Result.bind (field v 2) to_string in
  let* h_signature = Result.bind (field v 3) to_string in
  Ok { h_body; h_end_server; h_enc_key; h_signature }
