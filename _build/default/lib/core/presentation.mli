(** Proof of possession of the proxy key.

    "Usually this exchange involves sending a signed or encrypted timestamp
    or server challenge, proving possession of the proxy key" (Section 2).
    The proof binds the virtual timestamp and a digest of the request, so a
    proof captured off the wire cannot be replayed for a different request,
    and a freshness window plus the server's replay cache kill exact
    replays. *)

type proof = { pop_time : int; pop_sig : string }

val prove : key:Proxy.material -> time:int -> request_digest:string -> proof
(** HMAC under a symmetric proxy key, or an RSA signature under a private
    proxy key. *)

(** What the verifier knows about the proxy key after validating the chain. *)
type commitment =
  | Sym_commit of string  (** recovered from the sealed certificate *)
  | Pk_commit of Crypto.Rsa.public  (** from the signed certificate *)

val check :
  commitment ->
  proof ->
  now:int ->
  max_skew:int ->
  request_digest:string ->
  (unit, string) result

val proof_to_wire : proof -> Wire.t
val proof_of_wire : Wire.t -> (proof, string) result

val digest_request : Restriction.request -> string
(** Canonical digest of the request fields a proof should bind
    (server, operation, target, spend). *)
