type t = { entries : (string, int) Hashtbl.t (* identifier -> expiry *) }

let create () = { entries = Hashtbl.create 64 }

let seen t ~now id =
  match Hashtbl.find_opt t.entries id with
  | None -> false
  | Some expires ->
      if expires > now then true
      else begin
        Hashtbl.remove t.entries id;
        false
      end

let record t ~now ~expires id =
  if seen t ~now id then Error (Printf.sprintf "accept-once identifier %S already recorded" id)
  else begin
    Hashtbl.replace t.entries id expires;
    Ok ()
  end

let size t = Hashtbl.length t.entries

let purge t ~now =
  let stale =
    Hashtbl.fold (fun id expires acc -> if expires <= now then id :: acc else acc) t.entries []
  in
  List.iter (Hashtbl.remove t.entries) stale
