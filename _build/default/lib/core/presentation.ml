type proof = { pop_time : int; pop_sig : string }

let signed_bytes ~time ~request_digest =
  Wire.encode (Wire.L [ Wire.S "proof-of-possession"; Wire.I time; Wire.S request_digest ])

let prove ~key ~time ~request_digest =
  let msg = signed_bytes ~time ~request_digest in
  let pop_sig =
    match (key : Proxy.material) with
    | Proxy.Sym k -> Crypto.Hmac.mac ~key:k msg
    | Proxy.Keypair kp -> Crypto.Rsa.sign kp msg
  in
  { pop_time = time; pop_sig }

type commitment = Sym_commit of string | Pk_commit of Crypto.Rsa.public

let check commitment proof ~now ~max_skew ~request_digest =
  if abs (proof.pop_time - now) > max_skew then Error "proof of possession: stale timestamp"
  else begin
    let msg = signed_bytes ~time:proof.pop_time ~request_digest in
    let valid =
      match commitment with
      | Sym_commit k -> Crypto.Hmac.verify ~key:k ~msg ~tag:proof.pop_sig
      | Pk_commit pub -> Crypto.Rsa.verify pub ~msg ~signature:proof.pop_sig
    in
    if valid then Ok () else Error "proof of possession: invalid"
  end

let proof_to_wire p = Wire.L [ Wire.I p.pop_time; Wire.S p.pop_sig ]

let proof_of_wire v =
  let open Wire in
  let* pop_time = Result.bind (field v 0) to_int in
  let* pop_sig = Result.bind (field v 1) to_string in
  Ok { pop_time; pop_sig }

let digest_request (req : Restriction.request) =
  let spend =
    match req.Restriction.spend with
    | None -> Wire.L []
    | Some (c, n) -> Wire.L [ Wire.S c; Wire.I n ]
  in
  Crypto.Sha256.digest
    (Wire.encode
       (Wire.L
          [ Principal.to_wire req.Restriction.server;
            Wire.S req.Restriction.operation;
            Wire.S req.Restriction.target;
            spend ]))
