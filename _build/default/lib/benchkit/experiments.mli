(** The experiment harness: one function per figure/claim of the paper.

    Each experiment prints its table(s) to stdout; see DESIGN.md section 4
    for the id → figure mapping and EXPERIMENTS.md for paper-vs-measured. *)

val all : (string * string * (unit -> unit)) list
(** (id, description, run) for every experiment. *)

val run : string list -> unit
(** Run the named experiments ([[]] = all). *)
