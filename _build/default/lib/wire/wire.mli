(** Deterministic binary encoding for every on-the-wire structure.

    Certificates, tickets, restrictions, checks, and protocol messages all
    serialize through this one self-describing value type, so a signature
    computed over [encode v] is well-defined: encoding is canonical (the same
    value always produces the same bytes) and decoding is total (any byte
    string either decodes to a value or fails cleanly — malformed input from
    the adversary can never raise). *)

type t =
  | I of int  (** signed 63-bit integer *)
  | S of string  (** raw bytes *)
  | L of t list  (** heterogeneous sequence *)

val encode : t -> string

val decode : string -> (t, string) result
(** Rejects trailing bytes, truncated values, oversized lengths. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Reading helpers}

    Total accessors used by message parsers; all return [Result] so protocol
    handlers can reject malformed adversarial input uniformly. *)

val to_int : t -> (int, string) result
val to_string : t -> (string, string) result
val to_list : t -> (t list, string) result

val field : t -> int -> (t, string) result
(** [field v i] is the [i]th element when [v] is a list. *)

val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
