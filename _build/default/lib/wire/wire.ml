(* Tags: 0x01 int (8-byte big-endian two's complement), 0x02 bytes
   (u32 length + data), 0x03 list (u32 count + encoded items). Lengths are
   bounded during decode so a hostile 4-byte length cannot trigger a huge
   allocation. *)

type t = I of int | S of string | L of t list

let rec encode_into buf v =
  match v with
  | I n ->
      Buffer.add_char buf '\x01';
      for i = 7 downto 0 do
        Buffer.add_char buf (Char.chr ((n asr (8 * i)) land 0xff))
      done
  | S s ->
      Buffer.add_char buf '\x02';
      add_u32 buf (String.length s);
      Buffer.add_string buf s
  | L items ->
      Buffer.add_char buf '\x03';
      add_u32 buf (List.length items);
      List.iter (encode_into buf) items

and add_u32 buf n =
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let encode v =
  let buf = Buffer.create 64 in
  encode_into buf v;
  Buffer.contents buf

exception Bad of string

(* Decoding recurses on list nesting, so a hostile message nested thousands
   of lists deep would otherwise exhaust the stack of whatever server parses
   it. No legitimate structure in this system nests more than ~15 levels. *)
let max_depth = 64

let decode s =
  let len = String.length s in
  let pos = ref 0 in
  let byte () =
    if !pos >= len then raise (Bad "truncated");
    let c = Char.code s.[!pos] in
    incr pos;
    c
  in
  let u32 () =
    let a = byte () in
    let b = byte () in
    let c = byte () in
    let d = byte () in
    (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d
  in
  let rec value depth =
    if depth > max_depth then raise (Bad "nesting too deep");
    match byte () with
    | 0x01 ->
        (* Sign-extend the leading byte, then accumulate the remaining 7. *)
        let b0 = byte () in
        let n = ref (if b0 >= 0x80 then b0 - 256 else b0) in
        for _ = 1 to 7 do
          n := (!n lsl 8) lor byte ()
        done;
        I !n
    | 0x02 ->
        let n = u32 () in
        if n > len - !pos then raise (Bad "string length exceeds input");
        let str = String.sub s !pos n in
        pos := !pos + n;
        S str
    | 0x03 ->
        let n = u32 () in
        if n > len - !pos then raise (Bad "list count exceeds input");
        let rec items k acc =
          if k = 0 then List.rev acc else items (k - 1) (value (depth + 1) :: acc)
        in
        L (items n [])
    | t -> raise (Bad (Printf.sprintf "unknown tag 0x%02x" t))
  in
  match value 0 with
  | v -> if !pos = len then Ok v else Error "trailing bytes"
  | exception Bad msg -> Error msg

let rec equal a b =
  match (a, b) with
  | I x, I y -> x = y
  | S x, S y -> String.equal x y
  | L x, L y -> List.length x = List.length y && List.for_all2 equal x y
  | (I _ | S _ | L _), _ -> false

let rec pp fmt = function
  | I n -> Format.fprintf fmt "%d" n
  | S s ->
      if String.for_all (fun c -> c >= ' ' && c < '\x7f') s && String.length s <= 32 then
        Format.fprintf fmt "%S" s
      else Format.fprintf fmt "<%d bytes>" (String.length s)
  | L items ->
      Format.fprintf fmt "[@[<hov>%a@]]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp)
        items

let to_int = function I n -> Ok n | S _ | L _ -> Error "expected int"
let to_string = function S s -> Ok s | I _ | L _ -> Error "expected bytes"
let to_list = function L l -> Ok l | I _ | S _ -> Error "expected list"

let field v i =
  match v with
  | L l -> ( match List.nth_opt l i with Some x -> Ok x | None -> Error "missing field")
  | I _ | S _ -> Error "expected list"

let ( let* ) = Result.bind
