(** Baseline: Grapevine-style registration service (Birrell et al.), as
    contrasted in paper Section 5.

    "End-servers query registration servers to determine whether a client is
    a member of a particular group ... the authorization decision remains
    with the local system." Every request the end-server authorizes costs a
    round-trip to the registration server (modulo caching), where a group
    proxy is fetched once by the {e client} and then verified offline. The
    F3 bench counts those messages side by side. *)

type t

val create : Sim.Net.t -> name:Principal.t -> t
val install : t -> unit

val add_member : t -> group:string -> Principal.t -> unit
val remove_member : t -> group:string -> Principal.t -> unit

val is_member :
  Sim.Net.t ->
  server:Principal.t ->
  caller:string ->
  group:string ->
  Principal.t ->
  (bool, string) result
(** The end-server's per-request membership query (one round-trip). *)
