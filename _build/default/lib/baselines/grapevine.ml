type t = {
  net : Sim.Net.t;
  name : Principal.t;
  groups : (string, Principal.t list ref) Hashtbl.t;
}

let create net ~name = { net; name; groups = Hashtbl.create 8 }

let bucket t group =
  match Hashtbl.find_opt t.groups group with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.groups group r;
      r

let add_member t ~group p =
  let b = bucket t group in
  if not (List.exists (Principal.equal p) !b) then b := p :: !b

let remove_member t ~group p =
  match Hashtbl.find_opt t.groups group with
  | None -> ()
  | Some b -> b := List.filter (fun q -> not (Principal.equal q p)) !b

let handle t request =
  let open Wire in
  let parsed =
    let* v = Wire.decode request in
    let* group = Result.bind (field v 0) to_string in
    let* p = Result.bind (field v 1) Principal.of_wire in
    Ok (group, p)
  in
  match parsed with
  | Error e -> Wire.encode (Wire.L [ Wire.S "err"; Wire.S e ])
  | Ok (group, p) ->
      let member =
        match Hashtbl.find_opt t.groups group with
        | None -> false
        | Some b -> List.exists (Principal.equal p) !b
      in
      Wire.encode (Wire.L [ Wire.S "ok"; Wire.I (if member then 1 else 0) ])

let install t = Sim.Net.register t.net ~name:(Principal.to_string t.name) (handle t)

let is_member net ~server ~caller ~group p =
  let request = Wire.encode (Wire.L [ Wire.S group; Principal.to_wire p ]) in
  match Sim.Net.rpc net ~src:caller ~dst:(Principal.to_string server) request with
  | Error e -> Error e
  | Ok reply ->
      let open Wire in
      let* v = Wire.decode reply in
      let* tag = Result.bind (field v 0) to_string in
      if tag = "err" then
        let* msg = Result.bind (field v 1) to_string in
        Error msg
      else
        let* flag = Result.bind (field v 1) to_int in
        Ok (flag = 1)
