(** Baseline: the Amoeba bank server (Mullender & Tanenbaum), as contrasted
    in paper Section 5.

    "A client must contact the bank and transfer funds into the server's
    account before it contacts the server. The server will then provide
    services until the pre-paid funds have been exhausted." The pre-payment
    round-trip before first service, and the server's balance check, are the
    message costs the F5 bench compares against proxy checks. Multiple
    currencies are supported, as in Amoeba. *)

type t

val create : Sim.Net.t -> name:Principal.t -> t
val install : t -> unit

val open_account : t -> string -> unit
val mint : t -> account:string -> currency:string -> int -> unit
val balance_direct : t -> account:string -> currency:string -> int

(** Client/server operations, one round-trip each. The protocol trusts the
    claimed caller name — Amoeba capabilities stood in for authentication;
    this baseline measures message flow, not spoofing resistance. *)

val transfer :
  Sim.Net.t ->
  bank:Principal.t ->
  caller:string ->
  from_:string ->
  to_:string ->
  currency:string ->
  amount:int ->
  (unit, string) result
(** The pre-payment: client → server's account, before service. *)

val balance :
  Sim.Net.t ->
  bank:Principal.t ->
  caller:string ->
  account:string ->
  currency:string ->
  (int, string) result
(** The server checks its pre-paid balance. *)

val withdraw :
  Sim.Net.t ->
  bank:Principal.t ->
  caller:string ->
  account:string ->
  currency:string ->
  amount:int ->
  (unit, string) result
(** The server draws down consumed funds. *)
