type pac = {
  pac_subject : Principal.t option;
  pac_privileges : string list;
  pac_expires : int;
  pac_sig : string;
}

type t = {
  net : Sim.Net.t;
  name : Principal.t;
  key : Crypto.Rsa.private_;
  entitlements : (string, string list ref) Hashtbl.t; (* principal -> privileges *)
  lifetime_us : int;
}

let create net ~name ~drbg ~bits =
  { net; name; key = Crypto.Rsa.generate drbg ~bits; entitlements = Hashtbl.create 8;
    lifetime_us = 2 * 3600 * 1_000_000 }

let authority_pub t = t.key.Crypto.Rsa.pub

let entitle t p privilege =
  let key = Principal.to_string p in
  let bucket =
    match Hashtbl.find_opt t.entitlements key with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.entitlements key r;
        r
  in
  if not (List.mem privilege !bucket) then bucket := privilege :: !bucket

let signed_bytes ~subject ~privileges ~expires =
  Wire.encode
    (Wire.L
       [ (match subject with None -> Wire.L [] | Some p -> Principal.to_wire p);
         Wire.L (List.map (fun s -> Wire.S s) privileges);
         Wire.I expires ])

let handle t request =
  let open Wire in
  let parsed =
    let* v = Wire.decode request in
    let* caller = Result.bind (field v 0) Principal.of_wire in
    let* bearer = Result.bind (field v 1) to_int in
    let* ps = Result.bind (field v 2) to_list in
    let* privileges =
      List.fold_right
        (fun x acc -> Result.bind acc (fun tl -> Result.map (fun h -> h :: tl) (to_string x)))
        ps (Ok [])
    in
    Ok (caller, bearer = 1, privileges)
  in
  match parsed with
  | Error e -> Wire.encode (Wire.L [ Wire.S "err"; Wire.S e ])
  | Ok (caller, bearer, privileges) ->
      let entitled =
        match Hashtbl.find_opt t.entitlements (Principal.to_string caller) with
        | None -> []
        | Some r -> !r
      in
      if not (List.for_all (fun p -> List.mem p entitled) privileges) then
        Wire.encode (Wire.L [ Wire.S "err"; Wire.S "not entitled" ])
      else begin
        let subject = if bearer then None else Some caller in
        let expires = Sim.Net.now t.net + t.lifetime_us in
        Sim.Metrics.incr (Sim.Net.metrics t.net) "crypto.rsa_sign";
        let signature = Crypto.Rsa.sign t.key (signed_bytes ~subject ~privileges ~expires) in
        Wire.encode
          (Wire.L
             [ Wire.S "ok";
               Wire.I (if bearer then 1 else 0);
               Wire.L (List.map (fun s -> Wire.S s) privileges);
               Wire.I expires;
               Wire.S signature ])
      end

let install t = Sim.Net.register t.net ~name:(Principal.to_string t.name) (handle t)

let request net ~authority ~caller ?(bearer = false) ~privileges () =
  let payload =
    Wire.encode
      (Wire.L
         [ Principal.to_wire caller;
           Wire.I (if bearer then 1 else 0);
           Wire.L (List.map (fun s -> Wire.S s) privileges) ])
  in
  match
    Sim.Net.rpc net ~src:(Principal.to_string caller) ~dst:(Principal.to_string authority)
      payload
  with
  | Error e -> Error e
  | Ok reply ->
      let open Wire in
      let* v = Wire.decode reply in
      let* tag = Result.bind (field v 0) to_string in
      if tag = "err" then
        let* msg = Result.bind (field v 1) to_string in
        Error msg
      else
        let* bearer_flag = Result.bind (field v 1) to_int in
        let* ps = Result.bind (field v 2) to_list in
        let* pac_privileges =
          List.fold_right
            (fun x acc ->
              Result.bind acc (fun tl -> Result.map (fun h -> h :: tl) (to_string x)))
            ps (Ok [])
        in
        let* pac_expires = Result.bind (field v 3) to_int in
        let* pac_sig = Result.bind (field v 4) to_string in
        Ok
          {
            pac_subject = (if bearer_flag = 1 then None else Some caller);
            pac_privileges;
            pac_expires;
            pac_sig;
          }

let verify ~authority_pub ~now ~presenter pac =
  let msg =
    signed_bytes ~subject:pac.pac_subject ~privileges:pac.pac_privileges
      ~expires:pac.pac_expires
  in
  if not (Crypto.Rsa.verify authority_pub ~msg ~signature:pac.pac_sig) then
    Error "pac: bad signature"
  else if pac.pac_expires <= now then Error "pac: expired"
  else
    match (pac.pac_subject, presenter) with
    | None, _ -> Ok pac.pac_privileges
    | Some s, Some p when Principal.equal s p -> Ok pac.pac_privileges
    | Some _, _ -> Error "pac: named subject does not match presenter"
