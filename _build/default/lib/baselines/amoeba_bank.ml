type t = {
  net : Sim.Net.t;
  name : Principal.t;
  accounts : (string, (string, int) Hashtbl.t) Hashtbl.t;
}

let create net ~name = { net; name; accounts = Hashtbl.create 16 }

let open_account t account =
  if not (Hashtbl.mem t.accounts account) then Hashtbl.add t.accounts account (Hashtbl.create 4)

let balance_direct t ~account ~currency =
  match Hashtbl.find_opt t.accounts account with
  | None -> 0
  | Some b -> Option.value (Hashtbl.find_opt b currency) ~default:0

let mint t ~account ~currency amount =
  open_account t account;
  let b = Hashtbl.find t.accounts account in
  Hashtbl.replace b currency (Option.value (Hashtbl.find_opt b currency) ~default:0 + amount)

let debit t ~account ~currency amount =
  let have = balance_direct t ~account ~currency in
  if have < amount then Error "insufficient funds"
  else begin
    Hashtbl.replace (Hashtbl.find t.accounts account) currency (have - amount);
    Ok ()
  end

let handle t request =
  let open Wire in
  let reply = function
    | Ok v -> Wire.encode (Wire.L [ Wire.S "ok"; v ])
    | Error e -> Wire.encode (Wire.L [ Wire.S "err"; Wire.S e ])
  in
  let parsed =
    let* v = Wire.decode request in
    let* op = Result.bind (field v 0) to_string in
    Ok (op, v)
  in
  reply
    (match parsed with
    | Error e -> Error e
    | Ok ("transfer", v) ->
        let* from_ = Result.bind (field v 1) to_string in
        let* to_ = Result.bind (field v 2) to_string in
        let* currency = Result.bind (field v 3) to_string in
        let* amount = Result.bind (field v 4) to_int in
        if not (Hashtbl.mem t.accounts from_ && Hashtbl.mem t.accounts to_) then
          Error "unknown account"
        else
          let* () = debit t ~account:from_ ~currency amount in
          mint t ~account:to_ ~currency amount;
          Ok (Wire.L [])
    | Ok ("balance", v) ->
        let* account = Result.bind (field v 1) to_string in
        let* currency = Result.bind (field v 2) to_string in
        Ok (Wire.I (balance_direct t ~account ~currency))
    | Ok ("withdraw", v) ->
        let* account = Result.bind (field v 1) to_string in
        let* currency = Result.bind (field v 2) to_string in
        let* amount = Result.bind (field v 3) to_int in
        let* () = debit t ~account ~currency amount in
        Ok (Wire.L [])
    | Ok (op, _) -> Error (Printf.sprintf "unknown operation %S" op))

let install t = Sim.Net.register t.net ~name:(Principal.to_string t.name) (handle t)

let call net ~bank ~caller payload =
  let open Wire in
  match Sim.Net.rpc net ~src:caller ~dst:(Principal.to_string bank) (Wire.encode payload) with
  | Error e -> Error e
  | Ok reply ->
      let* v = Wire.decode reply in
      let* tag = Result.bind (field v 0) to_string in
      if tag = "ok" then field v 1
      else
        let* msg = Result.bind (field v 1) to_string in
        Error msg

let transfer net ~bank ~caller ~from_ ~to_ ~currency ~amount =
  Result.map ignore
    (call net ~bank ~caller
       (Wire.L [ Wire.S "transfer"; Wire.S from_; Wire.S to_; Wire.S currency; Wire.I amount ]))

let balance net ~bank ~caller ~account ~currency =
  Result.bind
    (call net ~bank ~caller (Wire.L [ Wire.S "balance"; Wire.S account; Wire.S currency ]))
    Wire.to_int

let withdraw net ~bank ~caller ~account ~currency ~amount =
  Result.map ignore
    (call net ~bank ~caller
       (Wire.L [ Wire.S "withdraw"; Wire.S account; Wire.S currency; Wire.I amount ]))
