type link = {
  link_from : Principal.t;
  link_to : Principal.t;
  link_restrictions : string list;
  link_mac : string;
}

type passport = link list

type t = {
  net : Sim.Net.t;
  name : Principal.t;
  keys : (string, string) Hashtbl.t; (* principal -> shared key *)
}

let create net ~name = { net; name; keys = Hashtbl.create 16 }

let register t p =
  let key = Sim.Net.fresh_key t.net in
  Hashtbl.replace t.keys (Principal.to_string p) key;
  key

(* The MAC covers the link fields and the previous link's MAC, chaining the
   passport together. *)
let link_bytes ~from_ ~to_ ~restrictions ~prev_mac =
  Wire.encode
    (Wire.L
       [ Principal.to_wire from_;
         Principal.to_wire to_;
         Wire.L (List.map (fun r -> Wire.S r) restrictions);
         Wire.S prev_mac ])

let make_link ~key ~from_ ~to_ ~restrictions ~prev_mac =
  {
    link_from = from_;
    link_to = to_;
    link_restrictions = restrictions;
    link_mac = Crypto.Hmac.mac ~key (link_bytes ~from_ ~to_ ~restrictions ~prev_mac);
  }

let initiate ~key ~from_ ~to_ ~restrictions =
  [ make_link ~key ~from_ ~to_ ~restrictions ~prev_mac:"" ]

let extend ~key ~from_ ~to_ ~restrictions passport =
  let prev_mac = match List.rev passport with last :: _ -> last.link_mac | [] -> "" in
  passport @ [ make_link ~key ~from_ ~to_ ~restrictions ~prev_mac ]

let link_to_wire l =
  Wire.L
    [ Principal.to_wire l.link_from;
      Principal.to_wire l.link_to;
      Wire.L (List.map (fun r -> Wire.S r) l.link_restrictions);
      Wire.S l.link_mac ]

let link_of_wire v =
  let open Wire in
  let* link_from = Result.bind (field v 0) Principal.of_wire in
  let* link_to = Result.bind (field v 1) Principal.of_wire in
  let* rs = Result.bind (field v 2) to_list in
  let* link_restrictions =
    List.fold_right
      (fun r acc -> Result.bind acc (fun tl -> Result.map (fun h -> h :: tl) (to_string r)))
      rs (Ok [])
  in
  let* link_mac = Result.bind (field v 3) to_string in
  Ok { link_from; link_to; link_restrictions; link_mac }

let passport_to_wire p = Wire.L (List.map link_to_wire p)

let passport_of_wire v =
  Result.bind (Wire.to_list v) (fun links ->
      List.fold_right
        (fun l acc -> Result.bind acc (fun tl -> Result.map (fun h -> h :: tl) (link_of_wire l)))
        links (Ok []))

(* Server-side validation: every MAC must check out under the sender's
   shared key, and each link must hand off to the next link's sender. *)
let validate t passport =
  let rec walk prev_mac handoff = function
    | [] -> (
        match passport with
        | [] -> Error "empty passport"
        | first :: _ ->
            Ok
              ( first.link_from,
                List.concat_map (fun l -> l.link_restrictions) passport ))
    | l :: rest -> (
        match Hashtbl.find_opt t.keys (Principal.to_string l.link_from) with
        | None -> Error ("unknown principal " ^ Principal.to_string l.link_from)
        | Some key ->
            (match handoff with
            | Some expected when not (Principal.equal expected l.link_from) ->
                Error "broken handoff chain"
            | Some _ | None ->
                let msg =
                  link_bytes ~from_:l.link_from ~to_:l.link_to
                    ~restrictions:l.link_restrictions ~prev_mac
                in
                Sim.Metrics.incr (Sim.Net.metrics t.net) "crypto.mac";
                if Crypto.Hmac.verify ~key ~msg ~tag:l.link_mac then
                  walk l.link_mac (Some l.link_to) rest
                else Error "bad link MAC")
        )
  in
  walk "" None passport

let handle t request =
  let reply v = Wire.encode v in
  match Result.bind (Wire.decode request) passport_of_wire with
  | Error e -> reply (Wire.L [ Wire.S "err"; Wire.S e ])
  | Ok passport -> (
      match validate t passport with
      | Error e -> reply (Wire.L [ Wire.S "err"; Wire.S e ])
      | Ok (originator, restrictions) ->
          reply
            (Wire.L
               [ Wire.S "ok";
                 Principal.to_wire originator;
                 Wire.L (List.map (fun r -> Wire.S r) restrictions) ]))

let install t = Sim.Net.register t.net ~name:(Principal.to_string t.name) (handle t)

let verify_online net ~server ~caller passport =
  let request = Wire.encode (passport_to_wire passport) in
  match Sim.Net.rpc net ~src:caller ~dst:(Principal.to_string server) request with
  | Error e -> Error e
  | Ok reply ->
      let open Wire in
      let* v = Wire.decode reply in
      let* tag = Result.bind (field v 0) to_string in
      if tag = "err" then
        let* msg = Result.bind (field v 1) to_string in
        Error msg
      else
        let* originator = Result.bind (field v 1) Principal.of_wire in
        let* rs = Result.bind (field v 2) to_list in
        let* restrictions =
          List.fold_right
            (fun r acc ->
              Result.bind acc (fun tl -> Result.map (fun h -> h :: tl) (to_string r)))
            rs (Ok [])
        in
        Ok (originator, restrictions)
