(** Baseline: ECMA-138 Privilege Attribute Certificates, as discussed in
    paper Section 5.

    "The ECMA standard defines Privilege Attributed Certificates (PACs)
    signed by an authority and certifying that the bearer or a named
    principal possess certain privileges." A PAC resembles an
    authorization-server proxy, but it is not derivable: holders cannot add
    restrictions themselves, so every narrowing requires another round-trip
    to the privilege authority — the contrast the C3/C4 bench quantifies. *)

type t
(** The privilege attribute authority. *)

val create : Sim.Net.t -> name:Principal.t -> drbg:Crypto.Drbg.t -> bits:int -> t
val install : t -> unit
val authority_pub : t -> Crypto.Rsa.public

val entitle : t -> Principal.t -> string -> unit
(** Record that a principal may be certified for a privilege. *)

type pac = {
  pac_subject : Principal.t option;  (** [None] = bearer PAC *)
  pac_privileges : string list;
  pac_expires : int;
  pac_sig : string;
}

val request :
  Sim.Net.t ->
  authority:Principal.t ->
  caller:Principal.t ->
  ?bearer:bool ->
  privileges:string list ->
  unit ->
  (pac, string) result
(** One round-trip; refused unless the caller is entitled to every requested
    privilege. Narrowing an existing PAC means calling this again — there is
    no offline derivation. *)

val verify :
  authority_pub:Crypto.Rsa.public ->
  now:int ->
  presenter:Principal.t option ->
  pac ->
  (string list, string) result
(** Offline validation; a named-subject PAC requires the matching
    presenter. *)
