(** Baseline: Sollins's cascaded authentication (1988), as contrasted in
    paper Sections 3.4 and 5.

    Each principal shares a key with a central authentication server.
    Passports are chains of links, each MACed under the {e sender's} shared
    key, so the end-server cannot validate a passport itself: it must ship
    the chain to the authentication server on every use. That online
    round-trip per verification is precisely the cost restricted proxies
    eliminate, and what the F4 bench measures. *)

type t
(** The central authentication server. *)

val create : Sim.Net.t -> name:Principal.t -> t
val install : t -> unit

val register : t -> Principal.t -> string
(** Enrol a principal; returns the key it shares with the server. *)

type link = {
  link_from : Principal.t;
  link_to : Principal.t;
  link_restrictions : string list;
  link_mac : string;
}

type passport = link list
(** Oldest link first. *)

val initiate :
  key:string ->
  from_:Principal.t ->
  to_:Principal.t ->
  restrictions:string list ->
  passport

val extend :
  key:string ->
  from_:Principal.t ->
  to_:Principal.t ->
  restrictions:string list ->
  passport ->
  passport
(** Add a link; restrictions accumulate. *)

val passport_to_wire : passport -> Wire.t
val passport_of_wire : Wire.t -> (passport, string) result

val verify_online :
  Sim.Net.t ->
  server:Principal.t ->
  caller:string ->
  passport ->
  (Principal.t * string list, string) result
(** End-server side: one network round-trip to the authentication server,
    which checks every MAC and returns the originator and the accumulated
    restrictions. *)
