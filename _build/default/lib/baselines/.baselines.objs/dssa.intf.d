lib/baselines/dssa.mli: Crypto Principal Sim
