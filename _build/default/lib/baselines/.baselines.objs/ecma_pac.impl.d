lib/baselines/ecma_pac.ml: Crypto Hashtbl List Principal Result Sim Wire
