lib/baselines/dssa.ml: Bignum Crypto List Principal Printf Result Sim Wire
