lib/baselines/amoeba_bank.mli: Principal Sim
