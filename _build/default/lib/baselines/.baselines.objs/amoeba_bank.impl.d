lib/baselines/amoeba_bank.ml: Hashtbl Option Principal Printf Result Sim Wire
