lib/baselines/ecma_pac.mli: Crypto Principal Sim
