lib/baselines/grapevine.mli: Principal Sim
