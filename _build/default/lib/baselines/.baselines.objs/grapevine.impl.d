lib/baselines/grapevine.ml: Hashtbl List Principal Result Sim Wire
