lib/baselines/sollins.mli: Principal Sim Wire
