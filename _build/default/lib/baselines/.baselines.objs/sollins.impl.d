lib/baselines/sollins.ml: Crypto Hashtbl List Principal Result Sim Wire
