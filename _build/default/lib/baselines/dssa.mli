(** Baseline: DSSA role-based delegation (Gasser et al.), as contrasted in
    paper Section 5.

    "In the DSSA, restrictions are supported only by creating separate
    principals, called roles ... The creation of a new role is cumbersome
    when delegating on the fly." Restricting a delegation therefore costs a
    round-trip to the certification authority to register the role and sign
    its certificate, where a restricted proxy is minted locally. The C3
    bench measures exactly that difference. *)

type t
(** The certification authority / directory holding role registrations. *)

val create : Sim.Net.t -> name:Principal.t -> drbg:Crypto.Drbg.t -> bits:int -> t
val install : t -> unit
val ca_pub : t -> Crypto.Rsa.public
val role_count : t -> int

type role_cert = {
  role : Principal.t;  (** the freshly created role principal *)
  role_owner : Principal.t;
  role_rights : string list;  (** the restricted rights the role stands for *)
  role_pub : Crypto.Rsa.public;
  role_sig : string;  (** CA signature over the above *)
}

val create_role :
  Sim.Net.t ->
  ca:Principal.t ->
  caller:string ->
  owner:Principal.t ->
  rights:string list ->
  (role_cert * Crypto.Rsa.private_, string) result
(** One network round-trip: register a new role principal restricted to
    [rights] and receive its certificate plus the role's private key. *)

type delegation = { deleg_role : role_cert; deleg_to : Principal.t; deleg_sig : string }

val delegate : role_key:Crypto.Rsa.private_ -> to_:Principal.t -> role_cert -> delegation
(** Local: sign a delegation certificate allowing [to_] to act as the
    role. *)

val verify :
  ca_pub:Crypto.Rsa.public -> presenter:Principal.t -> delegation -> (string list, string) result
(** End-server side, offline: validate CA and role signatures; returns the
    role's rights. *)
