let equal_string a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
       !acc = 0
     end
