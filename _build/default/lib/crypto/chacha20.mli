(** ChaCha20 stream cipher (RFC 8439).

    Used to protect proxy keys in transit (the paper requires the proxy key
    be "protected from disclosure" when a proxy moves from grantor to
    grantee) and as the confidentiality half of {!Aead}. *)

val block : key:string -> nonce:string -> counter:int -> string
(** [block ~key ~nonce ~counter] is the 64-byte keystream block. [key] must
    be 32 bytes and [nonce] 12 bytes; raises [Invalid_argument] otherwise. *)

val encrypt : key:string -> nonce:string -> ?counter:int -> string -> string
(** XOR the message with the keystream starting at block [counter]
    (default 1, per RFC 8439 AEAD convention). Encryption and decryption are
    the same operation. *)
