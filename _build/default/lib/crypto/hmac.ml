let block_size = 64

let mac ~key msg =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let pad c =
    String.init block_size (fun i ->
        let k = if i < String.length key then Char.code key.[i] else 0 in
        Char.chr (k lxor c))
  in
  let inner = Sha256.digest (pad 0x36 ^ msg) in
  Sha256.digest (pad 0x5c ^ inner)

let verify ~key ~msg ~tag = Ct.equal_string (mac ~key msg) tag
