(** Constant-time byte-string comparison.

    MAC tags and proof-of-possession responses must never be compared with
    short-circuiting equality, or an attacker on the simulated network could
    oracle its way to a forgery byte by byte. *)

val equal_string : string -> string -> bool
(** Length is compared first (length is public); contents are compared
    without data-dependent branching. *)
