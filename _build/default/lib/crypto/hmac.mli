(** HMAC-SHA256 (RFC 2104).

    This is the integrity primitive of the conventional-cryptography proxy
    realization: proxy certificates are sealed with an HMAC under the
    grantor's key, and proof-of-possession challenges are answered with an
    HMAC under the proxy key. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag. *)

val verify : key:string -> msg:string -> tag:string -> bool
(** Constant-time tag check. *)
