lib/crypto/aead.mli:
