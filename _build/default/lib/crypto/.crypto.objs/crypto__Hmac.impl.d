lib/crypto/hmac.ml: Char Ct Sha256 String
