lib/crypto/rsa.ml: Bignum Char Ct Drbg Sha256 String
