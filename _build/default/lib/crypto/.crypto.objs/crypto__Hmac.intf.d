lib/crypto/hmac.mli:
