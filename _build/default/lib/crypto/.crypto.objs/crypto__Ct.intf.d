lib/crypto/ct.mli:
