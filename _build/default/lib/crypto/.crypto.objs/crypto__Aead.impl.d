lib/crypto/aead.ml: Chacha20 Char Ct Hmac String
