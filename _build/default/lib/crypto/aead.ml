type sealed = { nonce : string; ciphertext : string; tag : string }

(* Domain-separated subkeys so the same 32-byte key can drive both the
   cipher and the MAC. *)
let enc_key key = Hmac.mac ~key "aead-encrypt"
let mac_key key = Hmac.mac ~key "aead-mac"

let tag_input ~nonce ~ad ~ciphertext =
  let len_be n =
    String.init 8 (fun i -> Char.chr ((n lsr (8 * (7 - i))) land 0xff))
  in
  String.concat "" [ len_be (String.length ad); ad; len_be (String.length ciphertext); ciphertext; nonce ]

let seal ~key ?(ad = "") ~nonce plaintext =
  if String.length key <> 32 then invalid_arg "Aead.seal: key must be 32 bytes";
  if String.length nonce <> 12 then invalid_arg "Aead.seal: nonce must be 12 bytes";
  let ciphertext = Chacha20.encrypt ~key:(enc_key key) ~nonce plaintext in
  let tag = Hmac.mac ~key:(mac_key key) (tag_input ~nonce ~ad ~ciphertext) in
  { nonce; ciphertext; tag }

let open_ ~key ?(ad = "") box =
  if String.length key <> 32 || String.length box.nonce <> 12 then None
  else begin
    let expected = Hmac.mac ~key:(mac_key key) (tag_input ~nonce:box.nonce ~ad ~ciphertext:box.ciphertext) in
    if Ct.equal_string expected box.tag then
      Some (Chacha20.encrypt ~key:(enc_key key) ~nonce:box.nonce box.ciphertext)
    else None
  end

let encode box = box.nonce ^ box.tag ^ box.ciphertext

let decode s =
  if String.length s < 44 then None
  else
    Some
      {
        nonce = String.sub s 0 12;
        tag = String.sub s 12 32;
        ciphertext = String.sub s 44 (String.length s - 44);
      }
