(** Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.

    Sealed boxes carry session keys inside Kerberos-style tickets and proxy
    keys between grantor and grantee. The MAC covers nonce, associated data,
    and ciphertext, so any tampering with a sealed certificate is detected
    before decryption. *)

type sealed = { nonce : string; ciphertext : string; tag : string }

val seal : key:string -> ?ad:string -> nonce:string -> string -> sealed
(** [seal ~key ~ad ~nonce plaintext]. [key] is 32 bytes, [nonce] 12 bytes.
    [ad] is authenticated but not encrypted. *)

val open_ : key:string -> ?ad:string -> sealed -> string option
(** [open_ ~key ~ad box] returns the plaintext iff the tag verifies. *)

val encode : sealed -> string
(** Flat wire encoding (nonce || tag || ciphertext). *)

val decode : string -> sealed option
