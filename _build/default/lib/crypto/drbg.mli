(** Deterministic random bit generator (HMAC-DRBG, NIST SP 800-90A).

    Every source of randomness in the system — session keys, proxy keys,
    nonces, RSA primes, simulated jitter — draws from a seeded DRBG so whole
    experiment runs are reproducible bit-for-bit. *)

type t

val create : seed:string -> t
val reseed : t -> string -> unit

val generate : t -> int -> string
(** [generate t n] returns [n] fresh pseudorandom bytes. *)

val rand : t -> Bignum.Prime.rand
(** View as the byte source expected by {!Bignum.Prime}. *)

val uniform_int : t -> int -> int
(** [uniform_int t n] is uniform in [[0, n)]. Raises [Invalid_argument] when
    [n <= 0]. *)
