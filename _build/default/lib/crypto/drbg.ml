(* HMAC-DRBG with SHA-256: state is (key, v); update per SP 800-90A. *)

type t = { mutable key : string; mutable v : string }

let update t provided =
  t.key <- Hmac.mac ~key:t.key (t.v ^ "\x00" ^ provided);
  t.v <- Hmac.mac ~key:t.key t.v;
  if provided <> "" then begin
    t.key <- Hmac.mac ~key:t.key (t.v ^ "\x01" ^ provided);
    t.v <- Hmac.mac ~key:t.key t.v
  end

let create ~seed =
  let t = { key = String.make 32 '\x00'; v = String.make 32 '\x01' } in
  update t seed;
  t

let reseed t entropy = update t entropy

let generate t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.v <- Hmac.mac ~key:t.key t.v;
    Buffer.add_string buf t.v
  done;
  update t "";
  String.sub (Buffer.contents buf) 0 n

let rand t n = generate t n

let uniform_int t n =
  if n <= 0 then invalid_arg "Drbg.uniform_int: bound must be positive";
  (* Rejection sampling over 62-bit draws. *)
  let draw () =
    let s = generate t 8 in
    let acc = ref 0 in
    String.iter (fun c -> acc := ((!acc lsl 8) lor Char.code c) land max_int) s;
    !acc
  in
  let limit = max_int - (max_int mod n) in
  let rec go () =
    let x = draw () in
    if x < limit then x mod n else go ()
  in
  go ()
