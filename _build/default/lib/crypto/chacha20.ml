let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let rotl x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let quarter st a b c d =
  st.(a) <- st.(a) +% st.(b);
  st.(d) <- rotl (st.(d) ^% st.(a)) 16;
  st.(c) <- st.(c) +% st.(d);
  st.(b) <- rotl (st.(b) ^% st.(c)) 12;
  st.(a) <- st.(a) +% st.(b);
  st.(d) <- rotl (st.(d) ^% st.(a)) 8;
  st.(c) <- st.(c) +% st.(d);
  st.(b) <- rotl (st.(b) ^% st.(c)) 7

let word_le s off =
  Int32.logor
    (Int32.of_int (Char.code s.[off]))
    (Int32.logor
       (Int32.shift_left (Int32.of_int (Char.code s.[off + 1])) 8)
       (Int32.logor
          (Int32.shift_left (Int32.of_int (Char.code s.[off + 2])) 16)
          (Int32.shift_left (Int32.of_int (Char.code s.[off + 3])) 24)))

let block ~key ~nonce ~counter =
  if String.length key <> 32 then invalid_arg "Chacha20.block: key must be 32 bytes";
  if String.length nonce <> 12 then invalid_arg "Chacha20.block: nonce must be 12 bytes";
  let st = Array.make 16 0l in
  st.(0) <- 0x61707865l;
  st.(1) <- 0x3320646el;
  st.(2) <- 0x79622d32l;
  st.(3) <- 0x6b206574l;
  for i = 0 to 7 do
    st.(4 + i) <- word_le key (4 * i)
  done;
  st.(12) <- Int32.of_int counter;
  for i = 0 to 2 do
    st.(13 + i) <- word_le nonce (4 * i)
  done;
  let working = Array.copy st in
  for _ = 1 to 10 do
    quarter working 0 4 8 12;
    quarter working 1 5 9 13;
    quarter working 2 6 10 14;
    quarter working 3 7 11 15;
    quarter working 0 5 10 15;
    quarter working 1 6 11 12;
    quarter working 2 7 8 13;
    quarter working 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    let w = working.(i) +% st.(i) in
    Bytes.set out (4 * i) (Char.chr (Int32.to_int w land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr (Int32.to_int (Int32.shift_right_logical w 8) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr (Int32.to_int (Int32.shift_right_logical w 16) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (Int32.to_int (Int32.shift_right_logical w 24) land 0xff))
  done;
  Bytes.to_string out

let encrypt ~key ~nonce ?(counter = 1) msg =
  let len = String.length msg in
  let out = Bytes.create len in
  let nblocks = (len + 63) / 64 in
  for b = 0 to nblocks - 1 do
    let ks = block ~key ~nonce ~counter:(counter + b) in
    let off = 64 * b in
    let n = min 64 (len - off) in
    for i = 0 to n - 1 do
      Bytes.set out (off + i) (Char.chr (Char.code msg.[off + i] lxor Char.code ks.[i]))
    done
  done;
  Bytes.to_string out
