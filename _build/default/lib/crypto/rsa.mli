(** RSA signatures and encryption over {!Bignum.Nat}.

    This realizes the paper's public-key proxies (Figure 6): proxy
    certificates are signed with the grantor's private key, and for the
    hybrid scheme the conventional proxy key is sealed under the end-server's
    public key. Padding follows PKCS#1 v1.5 (deterministic for signatures,
    randomized for encryption); modulus size is a parameter so benches can
    sweep it. *)

type public = { n : Bignum.Nat.t; e : Bignum.Nat.t }
type private_ = { pub : public; d : Bignum.Nat.t }

val generate : Drbg.t -> bits:int -> private_
(** Generate a key pair with a modulus of [bits] bits ([bits >= 128],
    public exponent 65537). *)

val sign : private_ -> string -> string
(** [sign key msg] signs SHA-256([msg]); the signature is
    [modulus_bytes key.pub] bytes. *)

val verify : public -> msg:string -> signature:string -> bool

val encrypt : Drbg.t -> public -> string -> string option
(** PKCS#1 v1.5 type-2 encryption. [None] if the message is too long for
    the modulus (max [modulus_bytes - 11]). *)

val decrypt : private_ -> string -> string option

val modulus_bytes : public -> int
val public_to_bytes : public -> string
val public_of_bytes : string -> public option
