(** SHA-256 (FIPS 180-4), implemented from scratch.

    All hashing in the proxy system — certificate signatures, HMAC proxy
    keys, check digests — bottoms out here. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
(** [finalize ctx] returns the 32-byte digest. The context must not be used
    afterwards. *)

val digest : string -> string
(** One-shot hash of a full message; 32 raw bytes. *)

val hex_digest : string -> string
(** One-shot hash rendered as 64 lowercase hex characters. *)

val to_hex : string -> string
(** Render arbitrary bytes as lowercase hex (utility shared by tests). *)
