type binding = {
  subject : Principal.t;
  subject_pub : Crypto.Rsa.public;
  issued_at : int;
  expires : int;
}

type cert = { binding : binding; signature : string }

type t = { name : Principal.t; key : Crypto.Rsa.private_ }

let create drbg ~name ~bits = { name; key = Crypto.Rsa.generate drbg ~bits }
let ca_name t = t.name
let ca_pub t = t.key.Crypto.Rsa.pub

let binding_to_wire b =
  Wire.L
    [ Principal.to_wire b.subject;
      Wire.S (Crypto.Rsa.public_to_bytes b.subject_pub);
      Wire.I b.issued_at;
      Wire.I b.expires ]

let binding_of_wire v =
  let open Wire in
  let* subject = Result.bind (field v 0) Principal.of_wire in
  let* pub_bytes = Result.bind (field v 1) to_string in
  let* issued_at = Result.bind (field v 2) to_int in
  let* expires = Result.bind (field v 3) to_int in
  match Crypto.Rsa.public_of_bytes pub_bytes with
  | None -> Error "ca: malformed public key"
  | Some subject_pub -> Ok { subject; subject_pub; issued_at; expires }

let issue t ~now ~lifetime subject subject_pub =
  let binding = { subject; subject_pub; issued_at = now; expires = now + lifetime } in
  let signature = Crypto.Rsa.sign t.key (Wire.encode (binding_to_wire binding)) in
  { binding; signature }

let verify ~ca_pub ~now cert =
  let msg = Wire.encode (binding_to_wire cert.binding) in
  if not (Crypto.Rsa.verify ca_pub ~msg ~signature:cert.signature) then
    Error "ca: bad signature"
  else if now < cert.binding.issued_at then Error "ca: not yet valid"
  else if now >= cert.binding.expires then Error "ca: certificate expired"
  else Ok cert.binding

let cert_to_wire c = Wire.L [ binding_to_wire c.binding; Wire.S c.signature ]

let cert_of_wire v =
  let open Wire in
  let* bw = field v 0 in
  let* binding = binding_of_wire bw in
  let* signature = Result.bind (field v 1) to_string in
  Ok { binding; signature }
