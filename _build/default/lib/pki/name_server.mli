(** Name server: network lookup of public-key certificates.

    The paper's Figure 6 discussion has end-servers obtain grantor public
    keys "from an authentication/name server"; this node serves the CA's
    certificates over the simulated network, and the client helper verifies
    the CA signature on every answer so a tampering adversary cannot
    substitute keys. *)

type t

val create : Sim.Net.t -> name:Principal.t -> ca_pub:Crypto.Rsa.public -> t
val install : t -> unit
val publish : t -> Ca.cert -> unit
(** Store a certificate for its subject (replacing any previous one). *)

val revoke : t -> Principal.t -> unit

val lookup :
  Sim.Net.t ->
  server:Principal.t ->
  ca_pub:Crypto.Rsa.public ->
  caller:string ->
  Principal.t ->
  (Crypto.Rsa.public, string) result
(** One network exchange; verifies the CA signature and validity before
    returning the bound key. *)
