lib/pki/name_server.ml: Ca Crypto Hashtbl Principal Result Sim Wire
