lib/pki/resolver.ml: Crypto Hashtbl Name_server Principal Sim
