lib/pki/ca.ml: Crypto Principal Result Wire
