lib/pki/name_server.mli: Ca Crypto Principal Sim
