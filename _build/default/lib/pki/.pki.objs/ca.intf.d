lib/pki/ca.mli: Crypto Principal Wire
