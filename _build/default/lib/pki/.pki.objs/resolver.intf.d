lib/pki/resolver.mli: Crypto Principal Sim
