type t = {
  net : Sim.Net.t;
  name : Principal.t;
  ca_pub : Crypto.Rsa.public;
  certs : (string, Ca.cert) Hashtbl.t; (* keyed by Principal.to_string *)
}

let create net ~name ~ca_pub = { net; name; ca_pub; certs = Hashtbl.create 16 }

let publish t cert =
  Hashtbl.replace t.certs (Principal.to_string cert.Ca.binding.Ca.subject) cert

let revoke t subject = Hashtbl.remove t.certs (Principal.to_string subject)

let handle t request =
  let reply v = Wire.encode v in
  match Result.bind (Wire.decode request) Wire.to_string with
  | Error e -> reply (Wire.L [ Wire.S "err"; Wire.S ("name-server: " ^ e) ])
  | Ok who -> (
      match Hashtbl.find_opt t.certs who with
      | None -> reply (Wire.L [ Wire.S "err"; Wire.S ("no binding for " ^ who) ])
      | Some cert -> reply (Wire.L [ Wire.S "ok"; Ca.cert_to_wire cert ]))

let install t = Sim.Net.register t.net ~name:(Principal.to_string t.name) (handle t)

let lookup net ~server ~ca_pub ~caller who =
  let request = Wire.encode (Wire.S (Principal.to_string who)) in
  match Sim.Net.rpc net ~src:caller ~dst:(Principal.to_string server) request with
  | Error e -> Error e
  | Ok reply -> (
      let open Wire in
      let parsed =
        let* v = Wire.decode reply in
        let* status = Result.bind (field v 0) to_string in
        if status = "err" then
          let* msg = Result.bind (field v 1) to_string in
          Error msg
        else
          let* cw = field v 1 in
          Ca.cert_of_wire cw
      in
      match parsed with
      | Error e -> Error e
      | Ok cert ->
          Sim.Metrics.incr (Sim.Net.metrics net) "crypto.rsa_verify";
          let* binding = Ca.verify ~ca_pub ~now:(Sim.Net.now net) cert in
          if Principal.equal binding.Ca.subject who then Ok binding.Ca.subject_pub
          else Error "name-server: answered for the wrong principal")
