(** Certification authority for the public-key realization (Section 6.1).

    Binds principal names to RSA public keys with signed certificates, so an
    end-server presented with a public-key proxy can fetch "the public key of
    the grantor (obtained from an authentication/name server)" and trust the
    binding. *)

type binding = {
  subject : Principal.t;
  subject_pub : Crypto.Rsa.public;
  issued_at : int;
  expires : int;
}

type cert = { binding : binding; signature : string }

type t

val create : Crypto.Drbg.t -> name:Principal.t -> bits:int -> t
(** Generate the CA's own key pair. *)

val ca_name : t -> Principal.t
val ca_pub : t -> Crypto.Rsa.public

val issue : t -> now:int -> lifetime:int -> Principal.t -> Crypto.Rsa.public -> cert

val verify : ca_pub:Crypto.Rsa.public -> now:int -> cert -> (binding, string) result
(** Check signature and validity window. *)

val cert_to_wire : cert -> Wire.t
val cert_of_wire : Wire.t -> (cert, string) result
