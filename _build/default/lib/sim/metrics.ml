type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let add t name n = cell t name := !(cell t name) + n
let incr t name = add t name 1
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0
let reset t = Hashtbl.reset t

let to_list t =
  Hashtbl.fold (fun k r acc -> if !r <> 0 then (k, !r) :: acc else acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot = to_list

let diff ~before ~after =
  let base = List.to_seq before |> Hashtbl.of_seq in
  List.filter_map
    (fun (k, v) ->
      let prev = match Hashtbl.find_opt base k with Some p -> p | None -> 0 in
      if v - prev <> 0 then Some (k, v - prev) else None)
    after
