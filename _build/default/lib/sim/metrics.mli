(** Named counters.

    The benches report protocol costs as counted quantities — messages,
    bytes, signatures, MAC operations — rather than wall-clock noise, so
    every interesting operation in the stack increments a counter here.
    Counter names are dotted paths, e.g. ["net.messages"], ["rsa.verify"]. *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** Missing counters read as 0. *)

val reset : t -> unit
val to_list : t -> (string * int) list
(** All non-zero counters, sorted by name. *)

val snapshot : t -> (string * int) list
val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter deltas (non-zero only), for measuring a single operation. *)
