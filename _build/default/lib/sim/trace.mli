(** Audit trail.

    Section 3.4 of the paper argues that delegate-proxy cascades "leave an
    audit trail since the new proxy identifies the intermediate server"; the
    trace is where servers record such facts, and tests assert over it. *)

type entry = { time : int; actor : string; event : string }
type t

val create : unit -> t
val record : t -> time:int -> actor:string -> string -> unit
val entries : t -> entry list
(** In recording order. *)

val find : t -> actor:string -> substring:string -> entry option
val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
