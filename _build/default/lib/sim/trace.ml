type entry = { time : int; actor : string; event : string }
type t = { mutable rev_entries : entry list }

let create () = { rev_entries = [] }
let record t ~time ~actor event = t.rev_entries <- { time; actor; event } :: t.rev_entries
let entries t = List.rev t.rev_entries

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  ||
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let find t ~actor ~substring =
  List.find_opt (fun e -> e.actor = actor && contains_substring e.event substring) (entries t)

let clear t = t.rev_entries <- []

let pp_entry fmt e = Format.fprintf fmt "[%8dus] %-20s %s" e.time e.actor e.event
