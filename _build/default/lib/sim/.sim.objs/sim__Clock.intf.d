lib/sim/clock.mli:
