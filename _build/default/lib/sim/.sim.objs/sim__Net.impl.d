lib/sim/net.ml: Clock Crypto Hashtbl Logs Metrics Printf String Trace
