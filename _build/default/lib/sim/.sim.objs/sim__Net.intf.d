lib/sim/net.mli: Clock Crypto Metrics Trace
