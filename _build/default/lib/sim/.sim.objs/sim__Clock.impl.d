lib/sim/clock.ml:
