lib/sim/metrics.mli:
