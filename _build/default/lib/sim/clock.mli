(** Virtual time.

    All expirations (tickets, proxies, checks, replay-cache entries) and all
    latency accounting read this clock, never the wall clock, so experiments
    are deterministic and expiry scenarios need no sleeping. Times are
    microseconds since the simulation epoch. *)

type t

val create : ?start:int -> unit -> t
val now : t -> int
val advance : t -> int -> unit
(** [advance t us] moves time forward; raises [Invalid_argument] on a
    negative step (time never goes backwards). *)
