let log_src = Logs.Src.create "sim.net" ~doc:"simulated network traffic"

module Log = (val Logs.src_log log_src : Logs.LOG)

type tap_action = Deliver | Replace of string | Drop

type t = {
  clock : Clock.t;
  drbg : Crypto.Drbg.t;
  metrics : Metrics.t;
  trace : Trace.t;
  nodes : (string, string -> string) Hashtbl.t;
  latency : (string * string, int) Hashtbl.t;
  default_latency_us : int;
  mutable tap : (dir:[ `Request | `Response ] -> src:string -> dst:string -> string -> tap_action) option;
}

let create ?(seed = "proxykit") ?(default_latency_us = 500) () =
  {
    clock = Clock.create ();
    drbg = Crypto.Drbg.create ~seed;
    metrics = Metrics.create ();
    trace = Trace.create ();
    nodes = Hashtbl.create 16;
    latency = Hashtbl.create 16;
    default_latency_us;
    tap = None;
  }

let clock t = t.clock
let drbg t = t.drbg
let metrics t = t.metrics
let trace t = t.trace
let now t = Clock.now t.clock
let fresh_key t = Crypto.Drbg.generate t.drbg 32
let fresh_nonce t = Crypto.Drbg.generate t.drbg 12

let register t ~name handler = Hashtbl.replace t.nodes name handler
let unregister t ~name = Hashtbl.remove t.nodes name

let set_latency t ~src ~dst us = Hashtbl.replace t.latency (src, dst) us

let link_latency t src dst =
  match Hashtbl.find_opt t.latency (src, dst) with
  | Some us -> us
  | None -> t.default_latency_us

let set_tap t f = t.tap <- Some f
let clear_tap t = t.tap <- None

let transmit t ~dir ~src ~dst payload =
  Metrics.incr t.metrics "net.messages";
  Metrics.add t.metrics "net.bytes" (String.length payload);
  Clock.advance t.clock (link_latency t src dst);
  match t.tap with
  | None -> Some payload
  | Some tap -> (
      match tap ~dir ~src ~dst payload with
      | Deliver -> Some payload
      | Replace payload' -> Some payload'
      | Drop ->
          Metrics.incr t.metrics "net.dropped";
          None)

let rpc t ~src ~dst request =
  match Hashtbl.find_opt t.nodes dst with
  | None ->
      Log.debug (fun m -> m "[%d] %s -> %s: unknown node" (Clock.now t.clock) src dst);
      Error (Printf.sprintf "unknown node %s" dst)
  | Some handler -> (
      Log.debug (fun m ->
          m "[%d] %s -> %s: request (%d bytes)" (Clock.now t.clock) src dst
            (String.length request));
      match transmit t ~dir:`Request ~src ~dst request with
      | None -> Error "request dropped"
      | Some request' -> (
          let response = handler request' in
          match transmit t ~dir:`Response ~src:dst ~dst:src response with
          | None -> Error "response dropped"
          | Some response' ->
              Log.debug (fun m ->
                  m "[%d] %s <- %s: response (%d bytes)" (Clock.now t.clock) src dst
                    (String.length response'));
              Ok response'))
