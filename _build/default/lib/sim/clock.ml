type t = { mutable now : int }

let create ?(start = 0) () = { now = start }
let now t = t.now

let advance t us =
  if us < 0 then invalid_arg "Clock.advance: negative step";
  t.now <- t.now + us
