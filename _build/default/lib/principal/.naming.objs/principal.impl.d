lib/principal/principal.ml: Format Result Stdlib String Wire
