lib/principal/directory.ml: Crypto List Option Principal Stdlib
