lib/principal/directory.mli: Crypto Principal
