lib/principal/principal.mli: Format Wire
