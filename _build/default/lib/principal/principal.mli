(** Principal, group, and account naming.

    Principals are realm-qualified names ([realm/name]). Group names are
    global only in composition with the group server that maintains them
    (Section 3.3 of the paper), and account names likewise compose the
    accounting server's identity with the local account name (Section 4). *)

type t = { realm : string; name : string }

val make : realm:string -> string -> t
(** Raises [Invalid_argument] if either part is empty or contains '/'. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val to_wire : t -> Wire.t
val of_wire : Wire.t -> (t, string) result

(** A group, named by its maintaining server plus the local group name. *)
module Group : sig
  type principal := t
  type t = { server : principal; group : string }

  val make : server:principal -> string -> t
  val to_string : t -> string
  (** ["realm/server$group"]. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_wire : t -> Wire.t
  val of_wire : Wire.t -> (t, string) result
end

(** An account, named by its accounting server plus the local account name. *)
module Account : sig
  type principal := t
  type t = { server : principal; account : string }

  val make : server:principal -> string -> t
  val to_string : t -> string
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_wire : t -> Wire.t
  val of_wire : Wire.t -> (t, string) result
end
