type t = { realm : string; name : string }

let valid_part s = s <> "" && not (String.contains s '/')

let make ~realm name =
  if not (valid_part realm && valid_part name) then
    invalid_arg "Principal.make: parts must be non-empty and '/'-free";
  { realm; name }

let to_string t = t.realm ^ "/" ^ t.name

let of_string s =
  match String.index_opt s '/' with
  | None -> Error "principal: missing '/'"
  | Some i ->
      let realm = String.sub s 0 i in
      let name = String.sub s (i + 1) (String.length s - i - 1) in
      if valid_part realm && valid_part name then Ok { realm; name }
      else Error "principal: empty or malformed part"

let equal a b = a.realm = b.realm && a.name = b.name
let compare a b = Stdlib.compare (a.realm, a.name) (b.realm, b.name)
let pp fmt t = Format.pp_print_string fmt (to_string t)

let to_wire t = Wire.L [ Wire.S t.realm; Wire.S t.name ]

let of_wire v =
  let open Wire in
  let* realm = Result.bind (field v 0) to_string in
  let* name = Result.bind (field v 1) to_string in
  if valid_part realm && valid_part name then Ok { realm; name }
  else Error "principal: empty or malformed part"

module Group = struct
  type principal = t
  type t = { server : principal; group : string }

  let make ~server group =
    if group = "" then invalid_arg "Group.make: empty group name";
    { server; group }

  let to_string t = to_string t.server ^ "$" ^ t.group
  let equal a b = equal a.server b.server && a.group = b.group
  let pp fmt t = Format.pp_print_string fmt (to_string t)
  let to_wire t = Wire.L [ to_wire t.server; Wire.S t.group ]

  let of_wire v =
    let open Wire in
    let* server = Result.bind (field v 0) of_wire in
    let* group = Result.bind (field v 1) Wire.to_string in
    if group = "" then Error "group: empty name" else Ok { server; group }
end

module Account = struct
  type principal = t
  type t = { server : principal; account : string }

  let make ~server account =
    if account = "" then invalid_arg "Account.make: empty account name";
    { server; account }

  let to_string t = to_string t.server ^ ":" ^ t.account
  let equal a b = equal a.server b.server && a.account = b.account
  let pp fmt t = Format.pp_print_string fmt (to_string t)
  let to_wire t = Wire.L [ to_wire t.server; Wire.S t.account ]

  let of_wire v =
    let open Wire in
    let* server = Result.bind (field v 0) of_wire in
    let* account = Result.bind (field v 1) Wire.to_string in
    if account = "" then Error "account: empty name" else Ok { server; account }
end
