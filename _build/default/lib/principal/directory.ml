module Map = Stdlib.Map.Make (struct
  type t = Principal.t

  let compare = Principal.compare
end)

type entry = { mutable sym : string option; mutable pub : Crypto.Rsa.public option }
type t = { mutable entries : entry Map.t }

let create () = { entries = Map.empty }

let entry t p =
  match Map.find_opt p t.entries with
  | Some e -> e
  | None ->
      let e = { sym = None; pub = None } in
      t.entries <- Map.add p e t.entries;
      e

let add_symmetric t p key = (entry t p).sym <- Some key
let symmetric t p = Option.bind (Map.find_opt p t.entries) (fun e -> e.sym)
let add_public t p pub = (entry t p).pub <- Some pub
let public t p = Option.bind (Map.find_opt p t.entries) (fun e -> e.pub)
let remove t p = t.entries <- Map.remove p t.entries
let principals t = Map.bindings t.entries |> List.map fst
