(** Key directory: the authentication/name-server database.

    Maps principals to the long-term secret keys they share with the KDC
    (conventional realization) and/or to their public keys (public-key
    realization, Section 6.1's "authentication/name server"). *)

type t

val create : unit -> t

val add_symmetric : t -> Principal.t -> string -> unit
val symmetric : t -> Principal.t -> string option

val add_public : t -> Principal.t -> Crypto.Rsa.public -> unit
val public : t -> Principal.t -> Crypto.Rsa.public option

val remove : t -> Principal.t -> unit
(** Drop all keys for a principal (models deregistration). *)

val principals : t -> Principal.t list
(** All registered principals, sorted. *)
