lib/kdc/secure_rpc.mli: Principal Sim Ticket Wire
