lib/kdc/kdc.mli: Directory Principal Sim Ticket Wire
