lib/kdc/secure_rpc.ml: Crypto Hashtbl Option Principal Printf Result Sim String Ticket Wire
