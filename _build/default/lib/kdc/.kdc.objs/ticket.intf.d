lib/kdc/ticket.mli: Principal Wire
