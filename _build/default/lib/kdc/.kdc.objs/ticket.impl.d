lib/kdc/ticket.ml: Crypto Option Principal Result Wire
