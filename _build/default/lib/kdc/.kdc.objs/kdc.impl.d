lib/kdc/kdc.ml: Char Crypto Directory Hashtbl List Option Principal Printf Result Sim String Ticket Wire
