(** Kerberos-V5-style tickets and authenticators (paper Section 6.2).

    A ticket binds a client name to a session key and an additive
    [authorization_data] field, sealed under the long-term key the target
    service shares with the KDC. An authenticator proves possession of the
    session key and may carry a subkey plus further authorization-data —
    exactly the mechanism the paper uses to turn credentials into restricted
    proxies. *)

type body = {
  client : Principal.t;
  service : Principal.t;
  session_key : string;
  auth_time : int;  (** virtual time of initial authentication *)
  expires : int;
  authorization_data : Wire.t list;
      (** typed restriction subfields; only ever appended to, never removed *)
}

val seal : service_key:string -> nonce:string -> body -> string
(** Encode and AEAD-seal the ticket into an opaque blob. *)

val open_ : service_key:string -> string -> (body, string) result
(** Unseal and decode; fails on tampering or a wrong key. *)

type authenticator = {
  auth_client : Principal.t;
  timestamp : int;
  subkey : string option;
      (** fresh key that will serve as a proxy key when deriving a proxy *)
  auth_data : Wire.t list;  (** restrictions to add *)
}

val seal_authenticator : session_key:string -> nonce:string -> authenticator -> string
val open_authenticator : session_key:string -> string -> (authenticator, string) result

(** Client-held credentials: the sealed ticket plus the session key. *)
type credentials = {
  ticket_blob : string;
  session_key : string;
  cred_client : Principal.t;
  cred_service : Principal.t;
  cred_expires : int;
  cred_auth_data : Wire.t list;
      (** client's copy of the restrictions carried by the ticket *)
}

val credentials_to_wire : credentials -> Wire.t
(** Transfer encoding {e including the session key}: this is how a grantor
    hands a restricted TGT to a grantee (Section 6.3's proxy for the
    ticket-granting service). Must only travel inside a sealed channel. *)

val credentials_of_wire : Wire.t -> (credentials, string) result
