type body = {
  client : Principal.t;
  service : Principal.t;
  session_key : string;
  auth_time : int;
  expires : int;
  authorization_data : Wire.t list;
}

let body_to_wire b =
  Wire.L
    [ Principal.to_wire b.client;
      Principal.to_wire b.service;
      Wire.S b.session_key;
      Wire.I b.auth_time;
      Wire.I b.expires;
      Wire.L b.authorization_data ]

let body_of_wire v =
  let open Wire in
  let* client = Result.bind (field v 0) Principal.of_wire in
  let* service = Result.bind (field v 1) Principal.of_wire in
  let* session_key = Result.bind (field v 2) to_string in
  let* auth_time = Result.bind (field v 3) to_int in
  let* expires = Result.bind (field v 4) to_int in
  let* authorization_data = Result.bind (field v 5) to_list in
  Ok { client; service; session_key; auth_time; expires; authorization_data }

let seal ~service_key ~nonce body =
  let plaintext = Wire.encode (body_to_wire body) in
  Crypto.Aead.encode (Crypto.Aead.seal ~key:service_key ~ad:"ticket" ~nonce plaintext)

let open_ ~service_key blob =
  match Crypto.Aead.decode blob with
  | None -> Error "ticket: malformed blob"
  | Some box -> (
      match Crypto.Aead.open_ ~key:service_key ~ad:"ticket" box with
      | None -> Error "ticket: seal verification failed"
      | Some plaintext -> Result.bind (Wire.decode plaintext) body_of_wire)

type authenticator = {
  auth_client : Principal.t;
  timestamp : int;
  subkey : string option;
  auth_data : Wire.t list;
}

let authenticator_to_wire a =
  Wire.L
    [ Principal.to_wire a.auth_client;
      Wire.I a.timestamp;
      Wire.S (Option.value a.subkey ~default:"");
      Wire.L a.auth_data ]

let authenticator_of_wire v =
  let open Wire in
  let* auth_client = Result.bind (field v 0) Principal.of_wire in
  let* timestamp = Result.bind (field v 1) to_int in
  let* subkey_raw = Result.bind (field v 2) to_string in
  let* auth_data = Result.bind (field v 3) to_list in
  let subkey = if subkey_raw = "" then None else Some subkey_raw in
  Ok { auth_client; timestamp; subkey; auth_data }

let seal_authenticator ~session_key ~nonce a =
  let plaintext = Wire.encode (authenticator_to_wire a) in
  Crypto.Aead.encode (Crypto.Aead.seal ~key:session_key ~ad:"authenticator" ~nonce plaintext)

let open_authenticator ~session_key blob =
  match Crypto.Aead.decode blob with
  | None -> Error "authenticator: malformed blob"
  | Some box -> (
      match Crypto.Aead.open_ ~key:session_key ~ad:"authenticator" box with
      | None -> Error "authenticator: seal verification failed"
      | Some plaintext -> Result.bind (Wire.decode plaintext) authenticator_of_wire)

type credentials = {
  ticket_blob : string;
  session_key : string;
  cred_client : Principal.t;
  cred_service : Principal.t;
  cred_expires : int;
  cred_auth_data : Wire.t list;
}

let credentials_to_wire c =
  Wire.L
    [ Wire.S c.ticket_blob;
      Wire.S c.session_key;
      Principal.to_wire c.cred_client;
      Principal.to_wire c.cred_service;
      Wire.I c.cred_expires;
      Wire.L c.cred_auth_data ]

let credentials_of_wire v =
  let open Wire in
  let* ticket_blob = Result.bind (field v 0) to_string in
  let* session_key = Result.bind (field v 1) to_string in
  let* cred_client = Result.bind (field v 2) Principal.of_wire in
  let* cred_service = Result.bind (field v 3) Principal.of_wire in
  let* cred_expires = Result.bind (field v 4) to_int in
  let* cred_auth_data = Result.bind (field v 5) to_list in
  Ok { ticket_blob; session_key; cred_client; cred_service; cred_expires; cred_auth_data }
