(** The key distribution centre: Kerberos-style authentication service.

    Implements the two exchanges the proxy machinery needs (Section 6.2):

    - {b AS}: initial authentication. The client names itself and a service;
      the KDC returns a ticket sealed under the service's long-term key plus
      an encrypted part only the genuine client can read. The client may
      request restrictions on the ticket — the paper's observation that
      "initial authentication can itself be thought of as the granting of a
      proxy".
    - {b TGS}: ticket derivation. Presenting an existing ticket for the KDC
      (a TGT) plus an authenticator, the client obtains a ticket for another
      service. Authorization-data restrictions are {e additive}: the derived
      ticket carries the union of the TGT's restrictions and those in the
      authenticator, never fewer.

    The KDC runs as a node on the simulated network. *)

type t

val create :
  Sim.Net.t ->
  name:Principal.t ->
  directory:Directory.t ->
  ?lifetime_us:int ->
  ?max_skew_us:int ->
  ?require_preauth:bool ->
  unit ->
  t
(** The KDC's own long-term key must already be registered in [directory]
    under [name]; raises [Invalid_argument] otherwise. Default ticket
    lifetime is 8 simulated hours; default clock skew tolerance 5 minutes.
    With [require_preauth] the AS refuses requests that do not prove
    knowledge of the client key with a fresh sealed timestamp (stops the
    offline-guessing oracle); the bundled client always pre-authenticates. *)

val name : t -> Principal.t

val install : t -> unit
(** Register the request handler on the network under
    [Principal.to_string (name t)]. *)

(** {2 Cross-realm trust}

    Two realms that share an inter-realm key can authenticate each other's
    principals: a client asks its own TGS for a ticket naming the remote
    KDC (a cross-realm TGT, sealed under the inter-realm key) and presents
    it to the remote TGS like any other TGT. Restrictions remain additive
    across the realm boundary. *)

val add_cross_realm : t -> peer_realm:string -> key:string -> unit
(** Install one direction of trust; call on both KDCs with the same key
    (or use {!federate}). *)

val federate : t -> t -> unit
(** Mint a fresh inter-realm key and install it in both KDCs. *)

(** Client-side operations (each one network exchange). *)
module Client : sig
  val authenticate :
    Sim.Net.t ->
    kdc:Principal.t ->
    client:Principal.t ->
    client_key:string ->
    service:Principal.t ->
    ?auth_data:Wire.t list ->
    unit ->
    (Ticket.credentials, string) result
  (** AS exchange: obtain credentials for [service] (use the KDC's own name
      as [service] to get a ticket-granting ticket). *)

  val derive :
    Sim.Net.t ->
    kdc:Principal.t ->
    tgt:Ticket.credentials ->
    target:Principal.t ->
    ?subkey:string ->
    ?auth_data:Wire.t list ->
    unit ->
    (Ticket.credentials, string) result
  (** TGS exchange: derive credentials for [target] from a TGT, optionally
      adding restrictions ([auth_data]) and nominating a fresh [subkey] that
      will protect the reply (the proxy-key slot). *)
end
