(** Authenticated application RPC over tickets.

    The standard Kerberos application exchange: the client sends its ticket
    and a fresh authenticator with the request; the server learns the
    client's authenticated identity and the session key, and seals its
    response under the session key (or the authenticator's subkey). Every
    service in the system — authorization server, group server, accounting
    servers, end-servers — speaks this. *)

type server_context = {
  rpc_client : Principal.t;  (** authenticated identity of the caller *)
  rpc_session_key : string;
  rpc_auth_data : Wire.t list;
      (** restrictions carried by the caller's ticket + authenticator *)
}

val serve :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  ?max_skew_us:int ->
  (server_context -> Wire.t -> (Wire.t, string) result) ->
  unit
(** Register the service on the network. The handler sees only
    authenticated requests; ticket/authenticator failures are answered with
    in-band errors before it runs. Authenticator replays within the skew
    window are rejected via an internal cache. *)

val call :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  ?subkey:string ->
  Wire.t ->
  (Wire.t, string) result
(** One authenticated exchange with the service named by
    [creds.cred_service]. The response is decrypted and authenticated; a
    tampered or substituted response surfaces as [Error]. *)
