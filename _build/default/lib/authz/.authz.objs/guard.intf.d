lib/authz/guard.mli: Acl Crypto Presentation Principal Proxy Replay_cache Restriction Sim Wire
