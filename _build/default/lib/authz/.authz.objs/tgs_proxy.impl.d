lib/authz/tgs_proxy.ml: Guard Kdc List Restriction Sim Ticket
