lib/authz/audit.mli: Format Principal Proxy Sim
