lib/authz/tgs_proxy.mli: Principal Restriction Sim Ticket
