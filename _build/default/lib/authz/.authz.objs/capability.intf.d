lib/authz/capability.mli: Crypto Principal Proxy Sim Ticket
