lib/authz/acl.mli: Format Principal Restriction
