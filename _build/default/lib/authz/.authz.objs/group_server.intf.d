lib/authz/group_server.mli: Crypto Guard Principal Proxy Sim Ticket
