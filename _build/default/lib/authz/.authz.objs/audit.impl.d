lib/authz/audit.ml: Format List Principal Proxy Proxy_cert Sim String
