lib/authz/capability.ml: Kdc Proxy Restriction Sim Ticket
