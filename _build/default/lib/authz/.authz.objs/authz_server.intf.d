lib/authz/authz_server.mli: Acl Crypto Guard Principal Proxy Sim Ticket
