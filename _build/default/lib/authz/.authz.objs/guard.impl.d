lib/authz/guard.ml: Acl Crypto Format List Logs Option Presentation Principal Printf Proxy Replay_cache Restriction Result Sim String Ticket Verifier Wire
