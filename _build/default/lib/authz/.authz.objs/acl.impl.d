lib/authz/acl.ml: Format Hashtbl List Principal Restriction String
