lib/authz/granter.ml: Hashtbl Kdc Principal Printf Proxy Sim Ticket
