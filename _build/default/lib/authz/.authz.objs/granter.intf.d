lib/authz/granter.mli: Principal Proxy Restriction Sim Ticket
