lib/authz/group_server.ml: Acl Granter Guard List Principal Printf Proxy Restriction Result Secure_rpc Sim Wire
