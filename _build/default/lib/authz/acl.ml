type subject =
  | Principal_is of Principal.t
  | Group of Principal.Group.t
  | Compound of subject list
  | Anyone

type entry = {
  subject : subject;
  rights : string list;
  restrictions : Restriction.t list;
}

type t = { table : (string, entry list ref) Hashtbl.t }

let create () = { table = Hashtbl.create 16 }

let bucket t target =
  match Hashtbl.find_opt t.table target with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.table target r;
      r

let add t ~target entry =
  let b = bucket t target in
  b := !b @ [ entry ]

let rec subject_equal a b =
  match (a, b) with
  | Principal_is p, Principal_is q -> Principal.equal p q
  | Group g, Group h -> Principal.Group.equal g h
  | Compound xs, Compound ys ->
      List.length xs = List.length ys && List.for_all2 subject_equal xs ys
  | Anyone, Anyone -> true
  | (Principal_is _ | Group _ | Compound _ | Anyone), _ -> false

let remove_subject t ~target subject =
  match Hashtbl.find_opt t.table target with
  | None -> ()
  | Some b -> b := List.filter (fun e -> not (subject_equal e.subject subject)) !b

let entries_for t ~target =
  let specific = match Hashtbl.find_opt t.table target with Some b -> !b | None -> [] in
  let wildcard =
    if target = "*" then [] else match Hashtbl.find_opt t.table "*" with Some b -> !b | None -> []
  in
  specific @ wildcard

let targets t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort String.compare

type facts = { principals : Principal.t list; groups : Principal.Group.t list }

let rec subject_satisfied subject facts =
  match subject with
  | Anyone -> true
  | Principal_is p -> List.exists (Principal.equal p) facts.principals
  | Group g -> List.exists (Principal.Group.equal g) facts.groups
  | Compound subs -> List.for_all (fun s -> subject_satisfied s facts) subs

let find_permitting t ~target ~operation facts =
  List.find_opt
    (fun e ->
      (e.rights = [] || List.mem operation e.rights) && subject_satisfied e.subject facts)
    (entries_for t ~target)

let rec pp_subject fmt = function
  | Principal_is p -> Principal.pp fmt p
  | Group g -> Principal.Group.pp fmt g
  | Compound subs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " AND ") pp_subject)
        subs
  | Anyone -> Format.pp_print_string fmt "anyone"
