(** The authorization server of paper Section 3.2 and Figure 3.

    The server "does not directly specify that a particular principal is
    authorized ... Instead, when requested by an authorized client, [it]
    grants a restricted proxy allowing the client to act as the
    authorization server for the purpose of asserting the client's rights".

    The database is the same ACL abstraction end-servers use — including
    {e group} entries: per Section 3.3, "if the end-server's authorization
    database is maintained by an authorization server, then the client would
    present the group proxy to the authorization server", which then returns
    an authorization proxy. The restrictions field of the matching entry is
    copied into the granted proxy (Section 3.5), and restrictions attached
    to the client's own credentials propagate per Section 7.9. *)

type t

val create :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  kdc:Principal.t ->
  database:Acl.t ->
  ?lookup_pub:(Principal.t -> Crypto.Rsa.public option) ->
  ?proxy_lifetime_us:int ->
  unit ->
  (t, string) result

val install : t -> unit
(** Serve authorization requests (secure-RPC). *)

(** Client side. *)
val request_authorization :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  end_server:Principal.t ->
  target:string ->
  operation:string ->
  ?delegate:bool ->
  ?evidence:Guard.presented list ->
  unit ->
  (Proxy.t, string) result
(** Figure 3 messages 1-2: ask the authorization server (named by [creds])
    for a proxy authorizing [operation] on [target] at [end_server]. With
    [delegate:true] the proxy is usable only by the requesting client; the
    default is the figure's bearer proxy whose key is returned sealed under
    the session key. [evidence] carries group proxies supporting a
    group-based database entry, presented for "assert-membership" at the
    authorization server. *)
