let restriction ~target ~ops = Restriction.Authorized [ { Restriction.target; ops } ]

let mint ~drbg ~now ~expires ~grantor ~session_key ~base ~target ~ops =
  Proxy.grant_conventional ~drbg ~now ~expires ~grantor ~session_key ~base
    ~restrictions:[ restriction ~target ~ops ]

let mint_via_kdc net ~kdc ~tgt ~end_server ~target ~ops ?(lifetime_us = 2 * 3600 * 1_000_000) ()
    =
  match Kdc.Client.derive net ~kdc ~tgt ~target:end_server () with
  | Error e -> Error e
  | Ok creds ->
      let now = Sim.Net.now net in
      let expires = min (now + lifetime_us) creds.Ticket.cred_expires in
      Ok
        (mint ~drbg:(Sim.Net.drbg net) ~now ~expires ~grantor:tgt.Ticket.cred_client
           ~session_key:creds.Ticket.session_key ~base:creds.Ticket.ticket_blob ~target ~ops)

let narrow ~drbg ~now ~expires ~target ~ops proxy =
  Proxy.restrict_conventional ~drbg ~now ~expires ~restrictions:[ restriction ~target ~ops ]
    proxy
