let grant net ~kdc ~tgt ~restrictions () =
  let subkey = Sim.Net.fresh_key net in
  let auth_data = List.map Restriction.to_wire restrictions in
  Kdc.Client.derive net ~kdc ~tgt ~target:kdc ~subkey ~auth_data ()

let use net ~kdc ~proxy_tgt ~service = Kdc.Client.derive net ~kdc ~tgt:proxy_tgt ~target:service ()

let restrictions_of (creds : Ticket.credentials) =
  Guard.restrictions_of_auth_data creds.Ticket.cred_auth_data
