(** Audit: structural inspection of delegation chains.

    Section 3.4's delegate-proxy design "leaves an audit trail since the new
    proxy identifies the intermediate server". This module renders that
    trail from a presentation without any keys: who signed each link, which
    serials are involved, and how many restrictions each link added.
    Conventionally-sealed links are opaque by design (their contents are
    confidential to the end-server), and are reported as such. *)

type link = {
  position : int;  (** 0 = head *)
  kind : string;  (** "ticket-base", "sealed", "signed-by-grantor", ... *)
  signer : Principal.t option;
      (** the identified intermediate, when the link names one *)
  serial : string option;
  restriction_count : int option;  (** None when the link is opaque *)
}

val chain_of_presentation : Proxy.presentation -> link list

val identified_intermediates : Proxy.presentation -> Principal.t list
(** Every intermediate the chain identifies — the audit trail proper.
    Bearer cascades contribute nothing here, which is exactly the paper's
    contrast between the two cascade styles. *)

val pp_chain : Format.formatter -> link list -> unit

val find_grants : Sim.Trace.t -> serial_prefix:string -> Sim.Trace.entry list
(** Search a server trace for decisions that used a certificate whose
    serial starts with [serial_prefix]. *)
