type link = {
  position : int;
  kind : string;
  signer : Principal.t option;
  serial : string option;
  restriction_count : int option;
}

let pk_link i (c : Proxy_cert.pk_cert) =
  let kind, signer =
    match c.Proxy_cert.pk_signer with
    | Proxy_cert.By_grantor_key ->
        ("signed-by-grantor", Some c.Proxy_cert.pk_body.Proxy_cert.grantor)
    | Proxy_cert.By_proxy_key -> ("signed-by-proxy-key", None)
    | Proxy_cert.By_principal p -> ("signed-by-intermediate", Some p)
  in
  {
    position = i;
    kind;
    signer;
    serial = Some c.Proxy_cert.pk_body.Proxy_cert.serial;
    restriction_count = Some (List.length c.Proxy_cert.pk_body.Proxy_cert.restrictions);
  }

let sealed_link i =
  { position = i; kind = "sealed"; signer = None; serial = None; restriction_count = None }

let chain_of_presentation = function
  | Proxy.Conventional { base = _; cert_blobs } ->
      {
        position = 0;
        kind = "ticket-base";
        signer = None;
        serial = None;
        restriction_count = None;
      }
      :: List.mapi (fun i _ -> sealed_link (i + 1)) cert_blobs
  | Proxy.Public_key certs -> List.mapi pk_link certs
  | Proxy.Hybrid (head, blobs) ->
      {
        position = 0;
        kind = "hybrid-head";
        signer = Some head.Proxy_cert.h_body.Proxy_cert.grantor;
        serial = Some head.Proxy_cert.h_body.Proxy_cert.serial;
        restriction_count = Some (List.length head.Proxy_cert.h_body.Proxy_cert.restrictions);
      }
      :: List.mapi (fun i _ -> sealed_link (i + 1)) blobs

let identified_intermediates pres =
  List.filter_map
    (fun l -> if l.kind = "signed-by-intermediate" then l.signer else None)
    (chain_of_presentation pres)

let pp_link fmt l =
  Format.fprintf fmt "#%d %-22s%a%a%a" l.position l.kind
    (fun fmt -> function
      | Some p -> Format.fprintf fmt " by %a" Principal.pp p
      | None -> ())
    l.signer
    (fun fmt -> function
      | Some s -> Format.fprintf fmt " serial=%s" (String.sub s 0 (min 8 (String.length s)))
      | None -> ())
    l.serial
    (fun fmt -> function
      | Some n -> Format.fprintf fmt " (%d restrictions)" n
      | None -> Format.fprintf fmt " (opaque)")
    l.restriction_count

let pp_chain fmt chain =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_link fmt chain

let find_grants trace ~serial_prefix =
  List.filter
    (fun (e : Sim.Trace.entry) ->
      let hay = e.Sim.Trace.event in
      let nn = String.length serial_prefix and nh = String.length hay in
      let rec at i = i + nn <= nh && (String.sub hay i nn = serial_prefix || at (i + 1)) in
      nn > 0 && at 0)
    (Sim.Trace.entries trace)
