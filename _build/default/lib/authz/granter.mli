(** Shared machinery for services that grant proxies usable at other
    end-servers (authorization servers, group servers, accounting servers).

    Such a service holds Kerberos credentials of its own: a TGT obtained at
    startup, and per-end-server tickets derived on demand and cached. A
    granted proxy is rooted in the service's ticket for the target
    end-server, exactly as Section 3.2 prescribes ("the authorization server
    grants a restricted proxy allowing the client to act as the
    authorization server"). *)

type t

val create :
  Sim.Net.t -> me:Principal.t -> my_key:string -> kdc:Principal.t -> (t, string) result
(** Authenticates to the KDC for a TGT; fails if the KDC refuses. *)

val me : t -> Principal.t

val credentials_for : t -> Principal.t -> (Ticket.credentials, string) result
(** Ticket for an end-server, derived through the TGS on first use and
    cached until its expiry nears. A target in another realm is reached
    through a cross-realm TGT when the realms are federated (the remote KDC
    is assumed to be named ["kdc"]). *)

val grant :
  t ->
  end_server:Principal.t ->
  expires:int ->
  restrictions:Restriction.t list ->
  (Proxy.t, string) result
(** Mint a restricted proxy for use at [end_server], rooted in this
    service's credentials there. The caller transfers it to the grantee over
    a sealed channel. *)
