type t = {
  net : Sim.Net.t;
  me : Principal.t;
  my_key : string;
  database : Acl.t;
  guard : Guard.t; (* decision engine over [database] *)
  granter : Granter.t;
  proxy_lifetime_us : int;
}

let create net ~me ~my_key ~kdc ~database ?lookup_pub
    ?(proxy_lifetime_us = 2 * 3600 * 1_000_000) () =
  match Granter.create net ~me ~my_key ~kdc with
  | Error e -> Error e
  | Ok granter ->
      let guard = Guard.create net ~me ~my_key ?lookup_pub ~acl:database () in
      Ok { net; me; my_key; database; guard; granter; proxy_lifetime_us }

let map_result f l =
  List.fold_right
    (fun x acc -> Result.bind acc (fun tl -> Result.map (fun h -> h :: tl) (f x)))
    l (Ok [])

let handle t ctx payload =
  let open Wire in
  let* tag = Result.bind (field payload 0) to_string in
  if tag <> "authorize" then Error (Printf.sprintf "authz: unknown operation %S" tag)
  else
    let* end_server = Result.bind (field payload 1) Principal.of_wire in
    let* target = Result.bind (field payload 2) to_string in
    let* operation = Result.bind (field payload 3) to_string in
    let* delegate = Result.bind (field payload 4) to_int in
    let* ew = Result.bind (field payload 5) to_list in
    let* evidence = map_result Guard.presented_of_wire ew in
    let client = ctx.Secure_rpc.rpc_client in
    match
      Guard.decide t.guard ~operation ~target ~presenter:client ~group_proxies:evidence ()
    with
    | Error e ->
        Error
          (Printf.sprintf "authz: %s is not authorized for %s on %S (%s)"
             (Principal.to_string client) operation target e)
    | Ok decision ->
        (* Copy the matched entry's restrictions into the proxy (3.5). *)
        let entry_restrictions =
          match
            List.find_opt
              (fun (e : Acl.entry) -> Acl.subject_equal e.Acl.subject decision.Guard.granted_by)
              (Acl.entries_for t.database ~target)
          with
          | Some entry -> entry.Acl.restrictions
          | None -> []
        in
        (* Restrictions already attached to the client's credentials
           propagate into the issued proxy (Section 7.9), scoped to the
           end-server it is being issued for. *)
        let inherited =
          match Guard.restrictions_of_auth_data ctx.Secure_rpc.rpc_auth_data with
          | [] -> []
          | rs -> Restriction.propagate ~issued_for:[ end_server ] rs
        in
        let restrictions =
          Restriction.Authorized [ { Restriction.target; ops = [ operation ] } ]
          :: (entry_restrictions @ inherited)
        in
        let restrictions =
          if delegate <> 0 then Restriction.Grantee ([ client ], 1) :: restrictions
          else restrictions
        in
        let expires = Sim.Net.now t.net + t.proxy_lifetime_us in
        let* proxy = Granter.grant t.granter ~end_server ~expires ~restrictions in
        Sim.Trace.record (Sim.Net.trace t.net) ~time:(Sim.Net.now t.net)
          ~actor:(Principal.to_string t.me)
          (Printf.sprintf "authorized %s: %s on %S at %s%s" (Principal.to_string client)
             operation target
             (Principal.to_string end_server)
             (match decision.Guard.via_groups with
             | [] -> ""
             | gs ->
                 " via " ^ String.concat "," (List.map Principal.Group.to_string gs)));
        (* The transfer includes the proxy key; the secure-RPC response seal
           protects it in transit (Figure 3's {K_proxy}K_session). *)
        Ok (Proxy.transfer_to_wire proxy)

let install t =
  Secure_rpc.serve t.net ~me:t.me ~my_key:t.my_key (fun ctx payload -> handle t ctx payload)

let request_authorization net ~creds ~end_server ~target ~operation ?(delegate = false)
    ?(evidence = []) () =
  let payload =
    Wire.L
      [ Wire.S "authorize";
        Principal.to_wire end_server;
        Wire.S target;
        Wire.S operation;
        Wire.I (if delegate then 1 else 0);
        Wire.L (List.map Guard.presented_to_wire evidence) ]
  in
  match Secure_rpc.call net ~creds payload with
  | Error e -> Error e
  | Ok reply -> Proxy.transfer_of_wire reply
