(** Capabilities (paper Section 3.1).

    A capability is a bearer proxy restricted to named objects and
    operations. Unlike classical capabilities, presentation never puts the
    whole proxy on the wire (the proxy key stays secret), the capability can
    be revoked by revoking the grantor's own rights, and it expires. *)

val mint :
  drbg:Crypto.Drbg.t ->
  now:int ->
  expires:int ->
  grantor:Principal.t ->
  session_key:string ->
  base:string ->
  target:string ->
  ops:string list ->
  Proxy.t
(** Pure form: the grantor already holds credentials ([base],
    [session_key]) for the end-server. *)

val mint_via_kdc :
  Sim.Net.t ->
  kdc:Principal.t ->
  tgt:Ticket.credentials ->
  end_server:Principal.t ->
  target:string ->
  ops:string list ->
  ?lifetime_us:int ->
  unit ->
  (Proxy.t, string) result
(** Convenience: derive fresh credentials for [end_server] through the TGS,
    then mint. This is how a user turns "I can read file1" into a
    transferable read capability for file1. *)

val narrow :
  drbg:Crypto.Drbg.t ->
  now:int ->
  expires:int ->
  target:string ->
  ops:string list ->
  Proxy.t ->
  (Proxy.t, string) result
(** Derive a weaker capability from an existing one (cascade): the result
    permits at most the intersection of old and new rights. *)
