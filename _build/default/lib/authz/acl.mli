(** Access-control lists with restriction-bearing and compound entries
    (paper Section 3.5).

    One ACL abstraction serves every server: end-servers, authorization
    servers, group servers, and accounting servers all consult the same
    structure. An entry names a subject — a principal, a group (to be proven
    by a group proxy), a compound of subjects that must all concur, or
    anyone — together with the operations it permits and a restriction list
    that authorization servers copy into the proxies they grant. *)

type subject =
  | Principal_is of Principal.t
  | Group of Principal.Group.t
  | Compound of subject list
      (** all components must concur — user+host credentials, separation of
          privilege *)
  | Anyone

type entry = {
  subject : subject;
  rights : string list;  (** permitted operations; [[]] means all *)
  restrictions : Restriction.t list;
      (** copied into proxies granted on the strength of this entry *)
}

type t

val create : unit -> t

val add : t -> target:string -> entry -> unit
(** Append an entry for an object. The target ["*"] applies to every
    object. *)

val remove_subject : t -> target:string -> subject -> unit
(** Drop all entries for [subject] on [target] — the paper's revocation
    story: "one can revoke a capability by changing the access rights
    available to the grantor". *)

val entries_for : t -> target:string -> entry list
(** Specific entries first, then ["*"] entries. *)

val targets : t -> string list

(** The facts available when testing whether a subject concurs. *)
type facts = {
  principals : Principal.t list;  (** authenticated identities *)
  groups : Principal.Group.t list;  (** memberships proven by group proxies *)
}

val subject_satisfied : subject -> facts -> bool

val find_permitting : t -> target:string -> operation:string -> facts -> entry option
(** First entry whose subject is satisfied and whose rights cover
    [operation]. *)

val subject_equal : subject -> subject -> bool
val pp_subject : Format.formatter -> subject -> unit
