lib/accounting/check.mli: Crypto Principal Proxy Wire
