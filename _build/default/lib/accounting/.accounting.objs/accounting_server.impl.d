lib/accounting/accounting_server.ml: Acl Check Crypto Granter Guard Hashtbl Ledger Option Principal Printf Proxy Restriction Result Secure_rpc Sim Standing String Ticket Verifier Wire
