lib/accounting/accounting_server.mli: Check Crypto Ledger Principal Proxy Sim Standing Ticket
