lib/accounting/standing.ml: Principal Proxy Restriction Result Wire
