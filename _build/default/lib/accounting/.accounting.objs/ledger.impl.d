lib/accounting/ledger.ml: Hashtbl List Option Principal Printf Result
