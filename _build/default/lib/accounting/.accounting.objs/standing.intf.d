lib/accounting/standing.mli: Crypto Principal Proxy Wire
