lib/accounting/check.ml: Crypto Principal Proxy Restriction Result Wire
