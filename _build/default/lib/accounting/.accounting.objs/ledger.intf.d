lib/accounting/ledger.mli: Principal
