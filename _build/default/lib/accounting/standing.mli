(** Standing debit authorities: the quota mechanism of paper Section 4.

    "Quotas are implemented by transferring funds of the appropriate
    currency out of an account when the resource is allocated and
    transferring the funds back when the resource is released."

    A standing authority is a delegate proxy — like a check, but without the
    accept-once number — that lets a named resource server debit the
    grantor's account repeatedly, up to a {e cumulative} ceiling the
    accounting server tracks per proxy chain. Releases return funds and
    replenish the remaining quota. *)

type t = {
  currency : string;
  limit : int;  (** cumulative ceiling *)
  holder : Principal.t;  (** the resource server allowed to draw *)
  drawn_from : Principal.Account.t;
  authority : Proxy.t;  (** the signed delegate proxy *)
}

val grant :
  drbg:Crypto.Drbg.t ->
  now:int ->
  expires:int ->
  owner:Principal.t ->
  owner_key:Crypto.Rsa.private_ ->
  account:Principal.Account.t ->
  holder:Principal.t ->
  currency:string ->
  limit:int ->
  ?proxy_bits:int ->
  unit ->
  t

val to_wire : t -> Wire.t
val of_wire : Wire.t -> (t, string) result
