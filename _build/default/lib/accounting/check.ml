type t = {
  number : string;
  currency : string;
  amount : int;
  payee : Principal.t;
  drawn_on : Principal.Account.t;
  proxy : Proxy.t;
}

let write ~drbg ~now ~expires ~payor ~payor_key ~account ~payee ~currency ~amount
    ?(proxy_bits = 512) () =
  let number = Crypto.Sha256.to_hex (Crypto.Drbg.generate drbg 12) in
  let restrictions =
    [ Restriction.Grantee ([ payee ], 1);
      Restriction.Accept_once number;
      Restriction.Quota (currency, amount);
      Restriction.Issued_for [ account.Principal.Account.server ];
      Restriction.Authorized
        [ { Restriction.target = account.Principal.Account.account; ops = [ "debit" ] } ] ]
  in
  let proxy =
    Proxy.grant_pk ~drbg ~now ~expires ~grantor:payor ~grantor_key:payor_key ~proxy_bits
      ~restrictions ()
  in
  { number; currency; amount; payee; drawn_on = account; proxy }

let endorse ~drbg ~now ~expires ~endorser ~endorser_key ~next check =
  match
    Proxy.delegate_pk ~drbg ~now ~expires ~intermediate:endorser ~intermediate_key:endorser_key
      ~restrictions:[ Restriction.Grantee ([ next ], 1) ]
      check.proxy
  with
  | Error e -> Error e
  | Ok proxy -> Ok { check with proxy }

let to_wire c =
  Wire.L
    [ Wire.S c.number;
      Wire.S c.currency;
      Wire.I c.amount;
      Principal.to_wire c.payee;
      Principal.Account.to_wire c.drawn_on;
      Proxy.transfer_to_wire c.proxy ]

let of_wire v =
  let open Wire in
  let* number = Result.bind (field v 0) to_string in
  let* currency = Result.bind (field v 1) to_string in
  let* amount = Result.bind (field v 2) to_int in
  let* payee = Result.bind (field v 3) Principal.of_wire in
  let* drawn_on = Result.bind (field v 4) Principal.Account.of_wire in
  let* pw = field v 5 in
  let* proxy = Proxy.transfer_of_wire pw in
  if amount <= 0 then Error "check: non-positive amount"
  else Ok { number; currency; amount; payee; drawn_on; proxy }
