type t = {
  currency : string;
  limit : int;
  holder : Principal.t;
  drawn_from : Principal.Account.t;
  authority : Proxy.t;
}

let grant ~drbg ~now ~expires ~owner ~owner_key ~account ~holder ~currency ~limit
    ?(proxy_bits = 512) () =
  let restrictions =
    [ Restriction.Grantee ([ holder ], 1);
      Restriction.Quota (currency, limit);
      Restriction.Issued_for [ account.Principal.Account.server ];
      Restriction.Authorized
        [ { Restriction.target = account.Principal.Account.account; ops = [ "debit" ] } ] ]
  in
  let authority =
    Proxy.grant_pk ~drbg ~now ~expires ~grantor:owner ~grantor_key:owner_key ~proxy_bits
      ~restrictions ()
  in
  { currency; limit; holder; drawn_from = account; authority }

let to_wire t =
  Wire.L
    [ Wire.S t.currency;
      Wire.I t.limit;
      Principal.to_wire t.holder;
      Principal.Account.to_wire t.drawn_from;
      Proxy.transfer_to_wire t.authority ]

let of_wire v =
  let open Wire in
  let* currency = Result.bind (field v 0) to_string in
  let* limit = Result.bind (field v 1) to_int in
  let* holder = Result.bind (field v 2) Principal.of_wire in
  let* drawn_from = Result.bind (field v 3) Principal.Account.of_wire in
  let* pw = field v 4 in
  let* authority = Proxy.transfer_of_wire pw in
  if limit <= 0 then Error "standing authority: non-positive limit"
  else Ok { currency; limit; holder; drawn_from; authority }
