(** Checks: numbered delegate proxies that transfer resources (Section 4,
    Figure 5).

    A check drawn by payor [C] on account [A] at accounting server [$2],
    payable to [S], is a public-key delegate proxy signed by [C] whose
    restrictions read: grantee [S]; accept-once (the check number); quota
    (currency, face amount — "the payee transfers up to that limit");
    issued-for [$2]; authorized to debit [A]. An endorsement is a delegate
    cascade step: the current holder signs an extension naming the next
    holder, leaving the paper's audit trail. *)

type t = {
  number : string;  (** globally unique check number *)
  currency : string;
  amount : int;  (** face value: the transfer ceiling *)
  payee : Principal.t;
  drawn_on : Principal.Account.t;
  proxy : Proxy.t;  (** the signed delegate-proxy chain *)
}

val write :
  drbg:Crypto.Drbg.t ->
  now:int ->
  expires:int ->
  payor:Principal.t ->
  payor_key:Crypto.Rsa.private_ ->
  account:Principal.Account.t ->
  payee:Principal.t ->
  currency:string ->
  amount:int ->
  ?proxy_bits:int ->
  unit ->
  t
(** Draw a check. The check number is fresh random hex. *)

val endorse :
  drbg:Crypto.Drbg.t ->
  now:int ->
  expires:int ->
  endorser:Principal.t ->
  endorser_key:Crypto.Rsa.private_ ->
  next:Principal.t ->
  t ->
  (t, string) result
(** "dep ckno to $1" — a restricted (for-deposit) endorsement is a delegate
    proxy extension naming [next]. *)

val to_wire : t -> Wire.t
val of_wire : Wire.t -> (t, string) result
