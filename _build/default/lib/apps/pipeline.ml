type t = {
  net : Sim.Net.t;
  me : Principal.t;
  my_key : string;
  fileserver : Principal.t;
  granter : Granter.t;
}

let create net ~me ~my_key ~kdc ~fileserver =
  match Granter.create net ~me ~my_key ~kdc with
  | Error e -> Error e
  | Ok granter -> Ok { net; me; my_key; fileserver; granter }

let me t = t.me

let count_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")
  |> List.length

let handle t ctx payload =
  let open Wire in
  let* op = Result.bind (field payload 0) to_string in
  if op <> "word-count" then Error (Printf.sprintf "pipeline: unknown operation %S" op)
  else
    let* path = Result.bind (field payload 1) to_string in
    let* pw = field payload 2 in
    let* capability = Proxy.transfer_of_wire pw in
    let now = Sim.Net.now t.net in
    let drbg = Sim.Net.drbg t.net in
    (* Cascade step: narrow the received capability to exactly what the
       subordinate request needs — this file, read only, one use. *)
    let once = Crypto.Sha256.to_hex (Crypto.Drbg.generate drbg 8) in
    let* narrowed =
      Proxy.restrict_conventional ~drbg ~now ~expires:(now + 3_600_000_000) ~grantor:t.me
        ~restrictions:
          [ Restriction.Authorized [ { Restriction.target = path; ops = [ "read" ] } ];
            Restriction.Accept_once ("pipeline-" ^ once) ]
        capability
    in
    let* creds = Granter.credentials_for t.granter t.fileserver in
    let presented =
      File_server.attach t.net ~proxy:narrowed ~server:t.fileserver ~operation:"read" ~path
    in
    let* content = File_server.read t.net ~creds ~proxies:[ presented ] ~path () in
    Sim.Trace.record (Sim.Net.trace t.net) ~time:(Sim.Net.now t.net)
      ~actor:(Principal.to_string t.me)
      (Printf.sprintf "word-count %S for %s" path
         (Principal.to_string ctx.Secure_rpc.rpc_client));
    Ok (Wire.I (count_words content))

let install t =
  Secure_rpc.serve t.net ~me:t.me ~my_key:t.my_key (fun ctx payload -> handle t ctx payload)

let word_count net ~creds ~path ~capability =
  let payload =
    Wire.L [ Wire.S "word-count"; Wire.S path; Proxy.transfer_to_wire capability ]
  in
  Result.bind (Secure_rpc.call net ~creds payload) Wire.to_int
