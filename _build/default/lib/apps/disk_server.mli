(** A disk server with accounting-backed block quotas.

    The paper's resource-specific currencies in action: a user's quota is a
    balance of "blocks" in its account. The user attaches a standing debit
    authority (a restricted delegate proxy) to the disk server; each write
    draws blocks into the server's escrow account, each delete releases
    them. The disk server never sees the user's other funds — the authority
    is limited to the blocks currency, the user's account, and this server's
    accounting server. *)

type t

val create :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  kdc:Principal.t ->
  bank:Principal.t ->
  escrow_account:string ->
  ?block_bytes:int ->
  unit ->
  (t, string) result
(** [escrow_account] at [bank] must exist and be owned by [me]; blocks
    drawn from users accumulate there. Default block size: 512 bytes. *)

val install : t -> unit
val me : t -> Principal.t
val blocks_currency : string

(** {2 Client operations} *)

val attach :
  Sim.Net.t -> creds:Ticket.credentials -> authority:Standing.t -> (unit, string) result
(** Register a standing authority; subsequent writes by the caller are
    charged against it. The authority must name this disk server as
    holder. *)

val write_file :
  Sim.Net.t -> creds:Ticket.credentials -> path:string -> string -> (int, string) result
(** Store a file; returns the blocks charged. Fails (storing nothing) when
    the quota is exhausted. Overwrites release the old blocks first. *)

val read_file : Sim.Net.t -> creds:Ticket.credentials -> path:string -> (string, string) result
(** Owners read their own files. *)

val delete_file : Sim.Net.t -> creds:Ticket.credentials -> path:string -> (int, string) result
(** Remove a file; returns the blocks released back to the owner. *)

val usage : Sim.Net.t -> creds:Ticket.credentials -> (int, string) result
(** Blocks currently charged to the caller. *)
