(** A print server that charges for pages through the accounting service —
    the paper's motivating "printer pages" currency (Section 4).

    Payment arrives as a check. Two modes, exactly the paper's two transfer
    mechanisms:

    - ordinary check: the server prints first, then endorses and deposits;
      a bounced check is the out-of-band problem the paper acknowledges
      (reported as an error, job traced as unpaid);
    - certified check: the client attaches the certification proxy; the
      server verifies the guarantee {e offline} before committing the
      pages. *)

type t

val create :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  kdc:Principal.t ->
  bank:Principal.t ->
  account:string ->
  signing_key:Crypto.Rsa.private_ ->
  lookup:(Principal.t -> Crypto.Rsa.public option) ->
  ?price_per_page:int ->
  ?page_bytes:int ->
  unit ->
  (t, string) result
(** [account] must already exist at [bank] and be owned by [me].
    Defaults: 2 usd per page, 1000 bytes per page. *)

val install : t -> unit
val me : t -> Principal.t
val pages_printed : t -> int

val price :
  Sim.Net.t -> creds:Ticket.credentials -> content_length:int -> (int, string) result
(** Ask the server what a job costs. *)

val print :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  document:string ->
  content:string ->
  check:Check.t ->
  ?certification:Proxy.t ->
  unit ->
  (int, string) result
(** Submit a job with payment; returns pages printed. *)
