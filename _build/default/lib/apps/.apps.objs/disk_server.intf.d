lib/apps/disk_server.mli: Principal Sim Standing Ticket
