lib/apps/pipeline.mli: Principal Proxy Sim Ticket
