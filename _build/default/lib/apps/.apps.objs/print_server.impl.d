lib/apps/print_server.ml: Accounting_server Check Crypto Granter Option Principal Printf Proxy Result Secure_rpc Sim String Wire
