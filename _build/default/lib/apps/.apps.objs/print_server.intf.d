lib/apps/print_server.mli: Check Crypto Principal Proxy Sim Ticket
