lib/apps/file_server.ml: Guard Hashtbl List Principal Printf Result Secure_rpc Sim String Wire
