lib/apps/disk_server.ml: Accounting_server Granter Hashtbl Principal Printf Result Secure_rpc Sim Standing String Wire
