lib/apps/pipeline.ml: Crypto File_server Granter List Principal Printf Proxy Restriction Result Secure_rpc Sim String Wire
