lib/apps/file_server.mli: Acl Crypto Guard Principal Proxy Sim Ticket
