let blocks_currency = "blocks"

type file = { file_owner : Principal.t; content : string; blocks : int }

type t = {
  net : Sim.Net.t;
  me : Principal.t;
  my_key : string;
  bank : Principal.t;
  escrow_account : string;
  block_bytes : int;
  granter : Granter.t;
  files : (string, file) Hashtbl.t;
  authorities : (string, Standing.t) Hashtbl.t; (* owner -> standing authority *)
}

let create net ~me ~my_key ~kdc ~bank ~escrow_account ?(block_bytes = 512) () =
  match Granter.create net ~me ~my_key ~kdc with
  | Error e -> Error e
  | Ok granter ->
      Ok
        {
          net; me; my_key; bank; escrow_account; block_bytes; granter;
          files = Hashtbl.create 16;
          authorities = Hashtbl.create 8;
        }

let me t = t.me

let blocks_of t content = max 1 ((String.length content + t.block_bytes - 1) / t.block_bytes)

let bank_creds t = Granter.credentials_for t.granter t.bank

let charge t ~owner ~blocks =
  match Hashtbl.find_opt t.authorities (Principal.to_string owner) with
  | None -> Error "no standing authority attached; call attach first"
  | Some authority -> (
      match bank_creds t with
      | Error e -> Error e
      | Ok creds ->
          Result.map
            (fun _total -> ())
            (Accounting_server.standing_debit t.net ~creds ~authority
               ~to_account:t.escrow_account ~amount:blocks))

let refund t ~owner ~blocks =
  match Hashtbl.find_opt t.authorities (Principal.to_string owner) with
  | None -> Error "no standing authority attached"
  | Some authority -> (
      match bank_creds t with
      | Error e -> Error e
      | Ok creds ->
          Result.map
            (fun _total -> ())
            (Accounting_server.standing_release t.net ~creds ~authority
               ~from_account:t.escrow_account ~amount:blocks))

let release_existing t ~client ~path =
  match Hashtbl.find_opt t.files path with
  | Some old when Principal.equal old.file_owner client ->
      Result.map (fun () -> Hashtbl.remove t.files path) (refund t ~owner:client ~blocks:old.blocks)
  | Some _ -> Error "path owned by someone else"
  | None -> Ok ()

let handle t ctx payload =
  let open Wire in
  let client = ctx.Secure_rpc.rpc_client in
  let* op = Result.bind (field payload 0) to_string in
  match op with
  | "attach" -> (
      let* sw = field payload 1 in
      let* authority = Standing.of_wire sw in
      if not (Principal.equal authority.Standing.holder t.me) then
        Error "authority does not name this disk server as holder"
      else if authority.Standing.currency <> blocks_currency then
        Error (Printf.sprintf "authority currency must be %S" blocks_currency)
      else begin
        Hashtbl.replace t.authorities (Principal.to_string client) authority;
        Ok (Wire.L [])
      end)
  | "write" -> (
      let* path = Result.bind (field payload 1) to_string in
      let* content = Result.bind (field payload 2) to_string in
      let blocks = blocks_of t content in
      let* () = release_existing t ~client ~path in
      match charge t ~owner:client ~blocks with
      | Error e -> Error (Printf.sprintf "quota refused: %s" e)
      | Ok () ->
          Hashtbl.replace t.files path { file_owner = client; content; blocks };
          Sim.Trace.record (Sim.Net.trace t.net) ~time:(Sim.Net.now t.net)
            ~actor:(Principal.to_string t.me)
            (Printf.sprintf "stored %S (%d blocks) for %s" path blocks
               (Principal.to_string client));
          Ok (Wire.I blocks))
  | "read" -> (
      let* path = Result.bind (field payload 1) to_string in
      match Hashtbl.find_opt t.files path with
      | Some f when Principal.equal f.file_owner client -> Ok (Wire.S f.content)
      | Some _ -> Error "not your file"
      | None -> Error (Printf.sprintf "no such file %S" path))
  | "delete" -> (
      let* path = Result.bind (field payload 1) to_string in
      match Hashtbl.find_opt t.files path with
      | Some f when Principal.equal f.file_owner client ->
          let* () = refund t ~owner:client ~blocks:f.blocks in
          Hashtbl.remove t.files path;
          Ok (Wire.I f.blocks)
      | Some _ -> Error "not your file"
      | None -> Error (Printf.sprintf "no such file %S" path))
  | "usage" ->
      let used =
        Hashtbl.fold
          (fun _ f acc -> if Principal.equal f.file_owner client then acc + f.blocks else acc)
          t.files 0
      in
      Ok (Wire.I used)
  | other -> Error (Printf.sprintf "disk-server: unknown operation %S" other)

let install t =
  Secure_rpc.serve t.net ~me:t.me ~my_key:t.my_key (fun ctx payload -> handle t ctx payload)

let attach net ~creds ~authority =
  match
    Secure_rpc.call net ~creds (Wire.L [ Wire.S "attach"; Standing.to_wire authority ])
  with
  | Ok _ -> Ok ()
  | Error e -> Error e

let write_file net ~creds ~path content =
  Result.bind
    (Secure_rpc.call net ~creds (Wire.L [ Wire.S "write"; Wire.S path; Wire.S content ]))
    Wire.to_int

let read_file net ~creds ~path =
  Result.bind (Secure_rpc.call net ~creds (Wire.L [ Wire.S "read"; Wire.S path ])) Wire.to_string

let delete_file net ~creds ~path =
  Result.bind (Secure_rpc.call net ~creds (Wire.L [ Wire.S "delete"; Wire.S path ])) Wire.to_int

let usage net ~creds =
  Result.bind (Secure_rpc.call net ~creds (Wire.L [ Wire.S "usage" ])) Wire.to_int
