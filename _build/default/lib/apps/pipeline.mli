(** A processing service that exercises cascaded authorization (paper
    Section 3.4, Figure 4).

    The client hands the service a capability for the file server (a full
    proxy transfer, protected by the secure channel). Acting as the
    intermediate server, the pipeline {e adds} restrictions before
    exercising it — read-only, single-use, this-file-only — so that the
    presented chain carries the least privilege the subordinate request
    needs, and the file server sees a depth-2 cascade. *)

type t

val create :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  kdc:Principal.t ->
  fileserver:Principal.t ->
  (t, string) result

val install : t -> unit
val me : t -> Principal.t

val word_count :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  path:string ->
  capability:Proxy.t ->
  (int, string) result
(** Ask the service to count words in [path], delegating access with
    [capability] (which must permit reading [path] at the file server). *)
