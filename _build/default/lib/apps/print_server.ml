type t = {
  net : Sim.Net.t;
  me : Principal.t;
  my_key : string;
  bank : Principal.t;
  account : string;
  signing_key : Crypto.Rsa.private_;
  lookup : Principal.t -> Crypto.Rsa.public option;
  granter : Granter.t;
  price_per_page : int;
  page_bytes : int;
  mutable pages_printed : int;
}

let create net ~me ~my_key ~kdc ~bank ~account ~signing_key ~lookup ?(price_per_page = 2)
    ?(page_bytes = 1000) () =
  match Granter.create net ~me ~my_key ~kdc with
  | Error e -> Error e
  | Ok granter ->
      Ok
        {
          net; me; my_key; bank; account; signing_key; lookup; granter;
          price_per_page; page_bytes; pages_printed = 0;
        }

let me t = t.me
let pages_printed t = t.pages_printed

let pages_of t content = max 1 ((String.length content + t.page_bytes - 1) / t.page_bytes)

let trace t fmt =
  Printf.ksprintf
    (fun msg ->
      Sim.Trace.record (Sim.Net.trace t.net) ~time:(Sim.Net.now t.net)
        ~actor:(Principal.to_string t.me) msg)
    fmt

let deposit_check t check =
  match Granter.credentials_for t.granter t.bank with
  | Error e -> Error e
  | Ok creds ->
      Accounting_server.deposit t.net ~creds ~endorser_key:t.signing_key ~check
        ~to_account:t.account

let handle t ctx payload =
  let open Wire in
  let* op = Result.bind (field payload 0) to_string in
  match op with
  | "price" ->
      let* len = Result.bind (field payload 1) to_int in
      let pages = max 1 ((len + t.page_bytes - 1) / t.page_bytes) in
      Ok (Wire.I (pages * t.price_per_page))
  | "print" -> (
      let* document = Result.bind (field payload 1) to_string in
      let* content = Result.bind (field payload 2) to_string in
      let* cw = field payload 3 in
      let* check = Check.of_wire cw in
      let* cert_w = field payload 4 in
      let pages = pages_of t content in
      let cost = pages * t.price_per_page in
      if check.Check.amount < cost then
        Error (Printf.sprintf "payment %d below cost %d" check.Check.amount cost)
      else if not (Principal.equal check.Check.payee t.me) then
        Error "check is not payable to the print server"
      else
        let certification =
          match cert_w with
          | Wire.L [] -> Ok None
          | v -> Result.map Option.some (Proxy.transfer_of_wire v)
        in
        let* certification = certification in
        match certification with
        | Some proxy -> (
            (* Certified: verify the guarantee offline, print, then clear. *)
            let* () =
              Accounting_server.verify_certification ~lookup:t.lookup
                ~now:(Sim.Net.now t.net)
                ~server:check.Check.drawn_on.Principal.Account.server
                ~check_number:check.Check.number proxy
            in
            t.pages_printed <- t.pages_printed + pages;
            trace t "printed %S (%d pages, certified payment %s)" document pages
              check.Check.number;
            match deposit_check t check with
            | Ok _ -> Ok (Wire.I pages)
            | Error e ->
                (* A certified check cannot bounce unless the guarantee was
                   forged; surface loudly. *)
                Error (Printf.sprintf "certified check failed to clear: %s" e))
        | None -> (
            (* Ordinary: service first, then deposit (Figure 5 order). *)
            match deposit_check t check with
            | Ok _ ->
                t.pages_printed <- t.pages_printed + pages;
                trace t "printed %S (%d pages, check %s cleared)" document pages
                  check.Check.number;
                Ok (Wire.I pages)
            | Error e ->
                trace t "job %S unpaid: %s" document e;
                Error (Printf.sprintf "check did not clear: %s" e)))
  | other ->
      ignore ctx;
      Error (Printf.sprintf "print-server: unknown operation %S" other)

let install t =
  Secure_rpc.serve t.net ~me:t.me ~my_key:t.my_key (fun ctx payload -> handle t ctx payload)

let price net ~creds ~content_length =
  Result.bind (Secure_rpc.call net ~creds (Wire.L [ Wire.S "price"; Wire.I content_length ]))
    Wire.to_int

let print net ~creds ~document ~content ~check ?certification () =
  let cert_w =
    match certification with None -> Wire.L [] | Some p -> Proxy.transfer_to_wire p
  in
  let payload =
    Wire.L [ Wire.S "print"; Wire.S document; Wire.S content; Check.to_wire check; cert_w ]
  in
  Result.bind (Secure_rpc.call net ~creds payload) Wire.to_int
