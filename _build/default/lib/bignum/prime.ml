type rand = int -> string

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139;
    149; 151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223;
    227; 229; 233; 239; 241; 251 ]

let random_nat_bits rand k =
  if k <= 0 then Nat.zero
  else begin
    let nbytes = (k + 7) / 8 in
    let bytes = Bytes.of_string (rand nbytes) in
    (* Zero the excess high bits of the leading byte. *)
    let excess = (nbytes * 8) - k in
    let mask = 0xff lsr excess in
    Bytes.set bytes 0 (Char.chr (Char.code (Bytes.get bytes 0) land mask));
    Nat.of_bytes_be (Bytes.to_string bytes)
  end

let random_nat_below rand n =
  if Nat.is_zero n then invalid_arg "Prime.random_nat_below: zero bound";
  let bits = Nat.bit_length n in
  let rec try_once () =
    let candidate = random_nat_bits rand bits in
    if Nat.compare candidate n < 0 then candidate else try_once ()
  in
  try_once ()

(* One Miller–Rabin round with witness [a] against odd [n] where
   [n - 1 = d * 2^s]. Returns [true] if [n] passes (may be prime). *)
let mr_round n n1 d s a =
  let x = Nat.mod_pow a d n in
  if Nat.equal x Nat.one || Nat.equal x n1 then true
  else begin
    let rec squares x i =
      if i >= s - 1 then false
      else begin
        let x = Nat.rem (Nat.mul x x) n in
        if Nat.equal x n1 then true else squares x (i + 1)
      end
    in
    squares x 0
  end

let is_probably_prime ?(rounds = 24) rand n =
  match Nat.to_int_opt n with
  | Some i when i < 2 -> false
  | _ ->
      let divisible_by_small =
        List.exists
          (fun p ->
            let pn = Nat.of_int p in
            if Nat.compare n pn = 0 then false
            else Nat.is_zero (Nat.rem n pn))
          small_primes
      in
      if divisible_by_small then
        (* n is composite unless it IS one of the small primes. *)
        List.exists (fun p -> Nat.equal n (Nat.of_int p)) small_primes
      else if
        (match Nat.to_int_opt n with
        | Some i -> List.mem i small_primes
        | None -> false)
      then true
      else begin
        let n1 = Nat.sub n Nat.one in
        let rec split d s = if Nat.is_even d then split (Nat.shift_right d 1) (s + 1) else (d, s) in
        let d, s = split n1 0 in
        let rec run k =
          if k = 0 then true
          else begin
            (* Witness in [2, n-2]. *)
            let a = Nat.add (random_nat_below rand (Nat.sub n (Nat.of_int 3))) Nat.two in
            if mr_round n n1 d s a then run (k - 1) else false
          end
        in
        run rounds
      end

let generate ?(rounds = 24) rand bits =
  if bits < 2 then invalid_arg "Prime.generate: need at least 2 bits";
  let top = Nat.shift_left Nat.one (bits - 1) in
  let rec attempt () =
    let r = random_nat_bits rand (bits - 1) in
    (* Force the top bit and oddness. *)
    let candidate = Nat.add top r in
    let candidate = if Nat.is_even candidate then Nat.add candidate Nat.one else candidate in
    if Nat.bit_length candidate = bits && is_probably_prime ~rounds rand candidate
    then candidate
    else attempt ()
  in
  attempt ()
