(** Probabilistic primality testing and prime generation.

    Randomness is supplied by the caller as a byte source so that the library
    stays deterministic under the simulator's seeded DRBG. *)

type rand = int -> string
(** [rand n] must return [n] uniformly random bytes. *)

val is_probably_prime : ?rounds:int -> rand -> Nat.t -> bool
(** Miller–Rabin with [rounds] random witnesses (default 24), preceded by
    trial division by small primes. *)

val random_nat_bits : rand -> int -> Nat.t
(** [random_nat_bits r k] is a uniformly random natural below [2^k]. *)

val random_nat_below : rand -> Nat.t -> Nat.t
(** [random_nat_below r n] is uniform in [[0, n)]. Raises
    [Invalid_argument] when [n] is zero. *)

val generate : ?rounds:int -> rand -> int -> Nat.t
(** [generate r bits] returns a probable prime with exactly [bits] bits (top
    bit set, odd). Raises [Invalid_argument] if [bits < 2]. *)
