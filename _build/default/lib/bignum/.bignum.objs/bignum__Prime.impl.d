lib/bignum/prime.ml: Bytes Char List Nat
