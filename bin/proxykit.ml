(* proxykit command-line tool: self-tests, a scripted demo, key generation,
   and a wire-blob inspector. *)

open Cmdliner

let hex_of_string s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let string_of_hex s =
  if String.length s mod 2 <> 0 then Error "odd-length hex"
  else
    try
      Ok
        (String.init (String.length s / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> Error "invalid hex"

(* --- selftest --- *)

let selftest () =
  let failures = ref 0 in
  let check name ok =
    Printf.printf "  %-40s %s\n" name (if ok then "PASS" else "FAIL");
    if not ok then incr failures
  in
  print_endline "crypto self-test:";
  check "SHA-256 empty-string vector"
    (Crypto.Sha256.hex_digest ""
    = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  check "SHA-256 'abc' vector"
    (Crypto.Sha256.hex_digest "abc"
    = "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  check "HMAC-SHA256 RFC 4231 case 2"
    (Crypto.Sha256.to_hex (Crypto.Hmac.mac ~key:"Jefe" "what do ya want for nothing?")
    = "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  let key = Crypto.Sha256.digest "k" and nonce = String.make 12 'n' in
  check "ChaCha20 involution"
    (Crypto.Chacha20.encrypt ~key ~nonce (Crypto.Chacha20.encrypt ~key ~nonce "roundtrip")
    = "roundtrip");
  let box = Crypto.Aead.seal ~key ~nonce "sealed payload" in
  check "AEAD roundtrip" (Crypto.Aead.open_ ~key box = Some "sealed payload");
  check "AEAD tamper detection"
    (Crypto.Aead.open_ ~key { box with Crypto.Aead.tag = String.make 32 '\x00' } = None);
  let drbg = Crypto.Drbg.create ~seed:"selftest" in
  let rsa = Crypto.Rsa.generate drbg ~bits:512 in
  let signature = Crypto.Rsa.sign rsa "message" in
  check "RSA-512 sign/verify" (Crypto.Rsa.verify rsa.Crypto.Rsa.pub ~msg:"message" ~signature);
  check "RSA rejects altered message"
    (not (Crypto.Rsa.verify rsa.Crypto.Rsa.pub ~msg:"other" ~signature));
  print_endline "proxy self-test:";
  let alice = Principal.make ~realm:"self" "alice" in
  let session_key = Crypto.Drbg.generate drbg 32 in
  let proxy =
    Proxy.grant_conventional ~drbg ~now:0 ~expires:1000 ~grantor:alice ~session_key ~base:"b"
      ~restrictions:[ Restriction.Quota ("usd", 5) ]
  in
  let open_base _ =
    Ok
      {
        Verifier.base_client = alice;
        base_session_key = session_key;
        base_expires = 1000;
        base_restrictions = [];
      }
  in
  let chain = match proxy.Proxy.flavor with Proxy.Conventional c -> c | _ -> assert false in
  check "conventional grant/verify"
    (Result.is_ok (Verifier.verify_conventional ~open_base ~now:1 chain));
  check "expired proxy rejected"
    (Result.is_error (Verifier.verify_conventional ~open_base ~now:2000 chain));
  if !failures = 0 then begin
    print_endline "all self-tests passed";
    0
  end
  else begin
    Printf.printf "%d self-test(s) FAILED\n" !failures;
    1
  end

(* --- demo --- *)

let demo seed verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let w = World.create ~seed () in
  let alice, _ = World.enrol w "alice" in
  let bob, _ = World.enrol w "bob" in
  let fs_name, fs_key = World.enrol w "fileserver" in
  let acl = Acl.create () in
  Acl.add acl ~target:"report.txt"
    { Acl.subject = Acl.Principal_is alice; rights = []; restrictions = [] };
  let fs = File_server.create w.World.net ~me:fs_name ~my_key:fs_key ~acl () in
  File_server.install fs;
  File_server.put_direct fs ~path:"report.txt" "numbers are up";
  Printf.printf "world (seed %S): kdc, file server, alice (owner), bob\n" seed;
  let tgt = World.login w alice in
  let cap =
    match
      Capability.mint_via_kdc w.World.net ~kdc:w.World.kdc_name ~tgt ~end_server:fs_name
        ~target:"report.txt" ~ops:[ "read" ] ()
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  Printf.printf "alice minted a read capability for report.txt\n";
  let creds_b = World.credentials_for w ~tgt:(World.login w bob) fs_name in
  let presented =
    File_server.attach w.World.net ~proxy:cap ~server:fs_name ~operation:"read"
      ~path:"report.txt"
  in
  (match File_server.read w.World.net ~creds:creds_b ~proxies:[ presented ] ~path:"report.txt" () with
  | Ok content -> Printf.printf "bob read through the capability: %S\n" content
  | Error e -> Printf.printf "unexpected failure: %s\n" e);
  (match File_server.read w.World.net ~creds:creds_b ~path:"report.txt" () with
  | Error e -> Printf.printf "bob without the capability is refused: %s\n" e
  | Ok _ -> print_endline "BUG: unauthorized read succeeded");
  let m = Sim.Net.metrics w.World.net in
  Printf.printf "totals: %d messages, %d bytes on the simulated network\n"
    (Sim.Metrics.get m "net.messages") (Sim.Metrics.get m "net.bytes");
  0

(* --- keygen --- *)

let keygen bits seed =
  if bits < 512 then begin
    prerr_endline "keygen: need at least 512 bits for SHA-256 signatures";
    1
  end
  else begin
    let drbg = Crypto.Drbg.create ~seed in
    let key = Crypto.Rsa.generate drbg ~bits in
    let pub_bytes = Crypto.Rsa.public_to_bytes key.Crypto.Rsa.pub in
    Printf.printf "modulus bits: %d\n" (Bignum.Nat.bit_length key.Crypto.Rsa.pub.Crypto.Rsa.n);
    Printf.printf "public key:   %s\n" (hex_of_string pub_bytes);
    Printf.printf "fingerprint:  %s\n"
      (String.sub (Crypto.Sha256.hex_digest pub_bytes) 0 16);
    0
  end

(* --- inspect --- *)

let inspect hex =
  match string_of_hex hex with
  | Error e ->
      Printf.eprintf "inspect: %s\n" e;
      1
  | Ok bytes -> (
      match Wire.decode bytes with
      | Error e ->
          Printf.eprintf "inspect: not a wire value: %s\n" e;
          1
      | Ok v ->
          Format.printf "%a@." Wire.pp v;
          (* If it parses as a restriction list or presentation, say so. *)
          (match Restriction.list_of_wire v with
          | Ok rs when rs <> [] ->
              Format.printf "as restrictions:@.";
              List.iter (fun r -> Format.printf "  - %a@." Restriction.pp r) rs
          | Ok _ | Error _ -> ());
          (match Proxy.presentation_of_wire v with
          | Ok (Proxy.Conventional c) ->
              Format.printf "as presentation: conventional chain, %d certificate(s)@."
                (List.length c.Proxy.cert_blobs)
          | Ok (Proxy.Public_key certs) ->
              Format.printf "as presentation: public-key chain, %d certificate(s)@."
                (List.length certs);
              List.iter
                (fun (c : Proxy_cert.pk_cert) ->
                  Format.printf "  grantor %a, serial %s..., %d restriction(s)@." Principal.pp
                    c.Proxy_cert.pk_body.Proxy_cert.grantor
                    (String.sub c.Proxy_cert.pk_body.Proxy_cert.serial 0 8)
                    (List.length c.Proxy_cert.pk_body.Proxy_cert.restrictions))
                certs
          | Ok (Proxy.Hybrid (head, blobs)) ->
              Format.printf
                "as presentation: hybrid, grantor %a for %a, %d cascade certificate(s)@."
                Principal.pp head.Proxy_cert.h_body.Proxy_cert.grantor Principal.pp
                head.Proxy_cert.h_end_server (List.length blobs)
          | Error _ -> ());
          (match Proxy.presentation_of_wire v with
          | Ok pres ->
              Format.printf "audit chain:@.%a@." Audit.pp_chain
                (Audit.chain_of_presentation pres)
          | Error _ -> ());
          0)

(* --- chaos --- *)

let chaos seed ops drop duplicate jitter no_crash retries timeout =
  let cfg =
    {
      Chaos.seed;
      ops;
      drop;
      duplicate;
      jitter_us = jitter;
      crash_drawee = not no_crash;
      retries;
      timeout_us = timeout;
    }
  in
  Printf.printf
    "chaos run: seed %S, %d ops, drop %.0f%%, duplicate %.0f%%, jitter <=%d us,%s %d retries\n%!"
    seed ops (drop *. 100.) (duplicate *. 100.) jitter
    (if no_crash then "" else " drawee crash window,")
    retries;
  let o = Chaos.run cfg in
  Printf.printf "  goodput:            %d/%d operations succeeded\n" o.Chaos.succeeded
    o.Chaos.attempted;
  Printf.printf "  faults injected:    %d dropped, %d duplicated\n" o.Chaos.faults_dropped
    o.Chaos.faults_duplicated;
  Printf.printf "  retransmissions:    %d (%d calls gave up, %d absorbed by response caches)\n"
    o.Chaos.retries_used o.Chaos.gave_up o.Chaos.dedups;
  (match o.Chaos.latency with
  | Some d ->
      Printf.printf "  latency per call:   mean %.0f us, max %d us\n" (Sim.Metrics.mean d)
        d.Sim.Metrics.max
  | None -> ());
  Printf.printf "  checks redeemed:    %d (each at most once: %s)\n"
    (List.length o.Chaos.redemptions)
    (if o.Chaos.double_redemptions = 0 then "yes" else "NO");
  (match o.Chaos.conserved with
  | Ok () -> print_endline "  value conserved:    yes"
  | Error e -> Printf.printf "  value conserved:    NO -- %s\n" e);
  if o.Chaos.double_redemptions = 0 && Result.is_ok o.Chaos.conserved then 0 else 1

(* --- cmdliner wiring --- *)

let selftest_cmd =
  Cmd.v (Cmd.info "selftest" ~doc:"Run crypto and proxy self-tests")
    Term.(const selftest $ const ())

let demo_cmd =
  let seed =
    Arg.(value & opt string "demo" & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log every simulated network message")
  in
  Cmd.v (Cmd.info "demo" ~doc:"Run the capability demo scenario")
    Term.(const demo $ seed $ verbose)

let keygen_cmd =
  let bits =
    Arg.(value & opt int 512 & info [ "bits" ] ~docv:"BITS" ~doc:"RSA modulus size")
  in
  let seed =
    Arg.(value & opt string "keygen" & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed")
  in
  Cmd.v (Cmd.info "keygen" ~doc:"Generate a deterministic RSA key pair")
    Term.(const keygen $ bits $ seed)

let inspect_cmd =
  let blob = Arg.(required & pos 0 (some string) None & info [] ~docv:"HEX") in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Decode a hex-encoded wire value (restrictions, presentations)")
    Term.(const inspect $ blob)

let bench list_only ids =
  if list_only then begin
    List.iter (fun (id, desc, _) -> Printf.printf "  %-4s %s\n" id desc) Experiments.all;
    0
  end
  else begin
    Experiments.run ids;
    0
  end

let bench_cmd =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all)") in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit") in
  Cmd.v
    (Cmd.info "bench" ~doc:"Regenerate the paper's experiment tables (f1..f6, c3, c4, a1..a3)")
    Term.(const bench $ list_only $ ids)

let bench_check baseline current =
  match (Benchout.load baseline, Benchout.load current) with
  | Error e, _ ->
      Printf.eprintf "bench-check: %s: %s\n" baseline e;
      1
  | _, Error e ->
      Printf.eprintf "bench-check: %s: %s\n" current e;
      1
  | Ok b, Ok c -> (
      match Benchout.check ~baseline:b ~current:c with
      | Ok () ->
          Printf.printf "bench-check: OK — %s: %d row(s), logical metrics match baseline\n"
            c.Benchout.id
            (List.length c.Benchout.rows);
          0
      | Error msgs ->
          Printf.eprintf "bench-check: %s: logical metrics diverged from baseline:\n"
            c.Benchout.id;
          List.iter (fun m -> Printf.eprintf "  - %s\n" m) msgs;
          1)

let bench_check_cmd =
  let baseline =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASELINE" ~doc:"Committed BENCH_*.json")
  in
  let current =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CURRENT" ~doc:"Freshly generated BENCH_*.json")
  in
  Cmd.v
    (Cmd.info "bench-check"
       ~doc:
         "Validate two BENCH_*.json artifacts and compare their logical (integer) metrics — \
          ops, bytes, crypto-op counts — exactly; wall-times are never compared. Exits non-zero \
          on schema errors or divergence.")
    Term.(const bench_check $ baseline $ current)

let chaos_cmd =
  let seed =
    Arg.(value & opt string "chaos" & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed")
  in
  let ops = Arg.(value & opt int 40 & info [ "ops" ] ~docv:"N" ~doc:"Workload operations") in
  let drop =
    Arg.(value & opt float 0.15 & info [ "drop" ] ~docv:"P" ~doc:"Per-message drop probability")
  in
  let duplicate =
    Arg.(value & opt float 0.10
         & info [ "duplicate" ] ~docv:"P" ~doc:"Per-message duplication probability")
  in
  let jitter =
    Arg.(value & opt int 2_000 & info [ "jitter" ] ~docv:"US" ~doc:"Max extra latency (us)")
  in
  let no_crash =
    Arg.(value & flag & info [ "no-crash" ] ~doc:"Skip the drawee-bank crash window")
  in
  let retries =
    Arg.(value & opt int 8 & info [ "retries" ] ~docv:"N" ~doc:"Client retransmission budget")
  in
  let timeout =
    Arg.(value & opt int 10_000 & info [ "timeout" ] ~docv:"US" ~doc:"Client timeout (us)")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the two-bank accounting workload under seeded fault injection and check the \
          robustness invariants (value conservation, at-most-once redemption); exits non-zero \
          on violation")
    Term.(const chaos $ seed $ ops $ drop $ duplicate $ jitter $ no_crash $ retries $ timeout)

let main =
  Cmd.group
    (Cmd.info "proxykit" ~version:"1.0.0"
       ~doc:"Restricted proxies for distributed authorization and accounting (Neuman, ICDCS '93)")
    [ selftest_cmd; demo_cmd; keygen_cmd; inspect_cmd; bench_cmd; bench_check_cmd; chaos_cmd ]

let () = exit (Cmd.eval' main)
