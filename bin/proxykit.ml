(* proxykit command-line tool: self-tests, a scripted demo, key generation,
   and a wire-blob inspector. *)

open Cmdliner

let hex_of_string s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let string_of_hex s =
  if String.length s mod 2 <> 0 then Error "odd-length hex"
  else
    try
      Ok
        (String.init (String.length s / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> Error "invalid hex"

(* --- selftest --- *)

let selftest () =
  let failures = ref 0 in
  let check name ok =
    Printf.printf "  %-40s %s\n" name (if ok then "PASS" else "FAIL");
    if not ok then incr failures
  in
  print_endline "crypto self-test:";
  check "SHA-256 empty-string vector"
    (Crypto.Sha256.hex_digest ""
    = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  check "SHA-256 'abc' vector"
    (Crypto.Sha256.hex_digest "abc"
    = "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  check "HMAC-SHA256 RFC 4231 case 2"
    (Crypto.Sha256.to_hex (Crypto.Hmac.mac ~key:"Jefe" "what do ya want for nothing?")
    = "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  let key = Crypto.Sha256.digest "k" and nonce = String.make 12 'n' in
  check "ChaCha20 involution"
    (Crypto.Chacha20.encrypt ~key ~nonce (Crypto.Chacha20.encrypt ~key ~nonce "roundtrip")
    = "roundtrip");
  let box = Crypto.Aead.seal ~key ~nonce "sealed payload" in
  check "AEAD roundtrip" (Crypto.Aead.open_ ~key box = Some "sealed payload");
  check "AEAD tamper detection"
    (Crypto.Aead.open_ ~key { box with Crypto.Aead.tag = String.make 32 '\x00' } = None);
  let drbg = Crypto.Drbg.create ~seed:"selftest" in
  let rsa = Crypto.Rsa.generate drbg ~bits:512 in
  let signature = Crypto.Rsa.sign rsa "message" in
  check "RSA-512 sign/verify" (Crypto.Rsa.verify rsa.Crypto.Rsa.pub ~msg:"message" ~signature);
  check "RSA rejects altered message"
    (not (Crypto.Rsa.verify rsa.Crypto.Rsa.pub ~msg:"other" ~signature));
  print_endline "proxy self-test:";
  let alice = Principal.make ~realm:"self" "alice" in
  let session_key = Crypto.Drbg.generate drbg 32 in
  let proxy =
    Proxy.grant_conventional ~drbg ~now:0 ~expires:1000 ~grantor:alice ~session_key ~base:"b"
      ~restrictions:[ Restriction.Quota ("usd", 5) ]
  in
  let open_base _ =
    Ok
      {
        Verifier.base_client = alice;
        base_session_key = session_key;
        base_expires = 1000;
        base_restrictions = [];
      }
  in
  let chain = match proxy.Proxy.flavor with Proxy.Conventional c -> c | _ -> assert false in
  check "conventional grant/verify"
    (Result.is_ok (Verifier.verify_conventional ~open_base ~now:1 chain));
  check "expired proxy rejected"
    (Result.is_error (Verifier.verify_conventional ~open_base ~now:2000 chain));
  if !failures = 0 then begin
    print_endline "all self-tests passed";
    0
  end
  else begin
    Printf.printf "%d self-test(s) FAILED\n" !failures;
    1
  end

(* --- demo --- *)

let demo seed verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let w = World.create ~seed () in
  let alice, _ = World.enrol w "alice" in
  let bob, _ = World.enrol w "bob" in
  let fs_name, fs_key = World.enrol w "fileserver" in
  let acl = Acl.create () in
  Acl.add acl ~target:"report.txt"
    { Acl.subject = Acl.Principal_is alice; rights = []; restrictions = [] };
  let fs = File_server.create w.World.net ~me:fs_name ~my_key:fs_key ~acl () in
  File_server.install fs;
  File_server.put_direct fs ~path:"report.txt" "numbers are up";
  Printf.printf "world (seed %S): kdc, file server, alice (owner), bob\n" seed;
  let tgt = World.login w alice in
  let cap =
    match
      Capability.mint_via_kdc w.World.net ~kdc:w.World.kdc_name ~tgt ~end_server:fs_name
        ~target:"report.txt" ~ops:[ "read" ] ()
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  Printf.printf "alice minted a read capability for report.txt\n";
  let creds_b = World.credentials_for w ~tgt:(World.login w bob) fs_name in
  let presented =
    File_server.attach w.World.net ~proxy:cap ~server:fs_name ~operation:"read"
      ~path:"report.txt"
  in
  (match File_server.read w.World.net ~creds:creds_b ~proxies:[ presented ] ~path:"report.txt" () with
  | Ok content -> Printf.printf "bob read through the capability: %S\n" content
  | Error e -> Printf.printf "unexpected failure: %s\n" e);
  (match File_server.read w.World.net ~creds:creds_b ~path:"report.txt" () with
  | Error e -> Printf.printf "bob without the capability is refused: %s\n" e
  | Ok _ -> print_endline "BUG: unauthorized read succeeded");
  let m = Sim.Net.metrics w.World.net in
  Printf.printf "totals: %d messages, %d bytes on the simulated network\n"
    (Sim.Metrics.get m "net.messages") (Sim.Metrics.get m "net.bytes");
  0

(* --- keygen --- *)

let keygen bits seed =
  if bits < 512 then begin
    prerr_endline "keygen: need at least 512 bits for SHA-256 signatures";
    1
  end
  else begin
    let drbg = Crypto.Drbg.create ~seed in
    let key = Crypto.Rsa.generate drbg ~bits in
    let pub_bytes = Crypto.Rsa.public_to_bytes key.Crypto.Rsa.pub in
    Printf.printf "modulus bits: %d\n" (Bignum.Nat.bit_length key.Crypto.Rsa.pub.Crypto.Rsa.n);
    Printf.printf "public key:   %s\n" (hex_of_string pub_bytes);
    Printf.printf "fingerprint:  %s\n"
      (String.sub (Crypto.Sha256.hex_digest pub_bytes) 0 16);
    0
  end

(* --- inspect --- *)

let inspect hex =
  match string_of_hex hex with
  | Error e ->
      Printf.eprintf "inspect: %s\n" e;
      1
  | Ok bytes -> (
      match Wire.decode bytes with
      | Error e ->
          Printf.eprintf "inspect: not a wire value: %s\n" e;
          1
      | Ok v ->
          Format.printf "%a@." Wire.pp v;
          (* If it parses as a restriction list or presentation, say so. *)
          (match Restriction.list_of_wire v with
          | Ok rs when rs <> [] ->
              Format.printf "as restrictions:@.";
              List.iter (fun r -> Format.printf "  - %a@." Restriction.pp r) rs
          | Ok _ | Error _ -> ());
          (match Proxy.presentation_of_wire v with
          | Ok (Proxy.Conventional c) ->
              Format.printf "as presentation: conventional chain, %d certificate(s)@."
                (List.length c.Proxy.cert_blobs)
          | Ok (Proxy.Public_key certs) ->
              Format.printf "as presentation: public-key chain, %d certificate(s)@."
                (List.length certs);
              List.iter
                (fun (c : Proxy_cert.pk_cert) ->
                  Format.printf "  grantor %a, serial %s..., %d restriction(s)@." Principal.pp
                    c.Proxy_cert.pk_body.Proxy_cert.grantor
                    (String.sub c.Proxy_cert.pk_body.Proxy_cert.serial 0 8)
                    (List.length c.Proxy_cert.pk_body.Proxy_cert.restrictions))
                certs
          | Ok (Proxy.Hybrid (head, blobs)) ->
              Format.printf
                "as presentation: hybrid, grantor %a for %a, %d cascade certificate(s)@."
                Principal.pp head.Proxy_cert.h_body.Proxy_cert.grantor Principal.pp
                head.Proxy_cert.h_end_server (List.length blobs)
          | Error _ -> ());
          (match Proxy.presentation_of_wire v with
          | Ok pres ->
              Format.printf "audit chain:@.%a@." Audit.pp_chain
                (Audit.chain_of_presentation pres)
          | Error _ -> ());
          0)

(* --- chaos --- *)

let chaos seed ops drop duplicate jitter no_crash retries timeout =
  let cfg =
    {
      Chaos.seed;
      ops;
      drop;
      duplicate;
      jitter_us = jitter;
      crash_drawee = not no_crash;
      retries;
      timeout_us = timeout;
    }
  in
  Printf.printf
    "chaos run: seed %S, %d ops, drop %.0f%%, duplicate %.0f%%, jitter <=%d us,%s %d retries\n%!"
    seed ops (drop *. 100.) (duplicate *. 100.) jitter
    (if no_crash then "" else " drawee crash window,")
    retries;
  let o = Chaos.run cfg in
  Printf.printf "  goodput:            %d/%d operations succeeded\n" o.Chaos.succeeded
    o.Chaos.attempted;
  Printf.printf "  faults injected:    %d dropped, %d duplicated\n" o.Chaos.faults_dropped
    o.Chaos.faults_duplicated;
  Printf.printf "  retransmissions:    %d (%d calls gave up, %d absorbed by response caches)\n"
    o.Chaos.retries_used o.Chaos.gave_up o.Chaos.dedups;
  (match o.Chaos.latency with
  | Some d ->
      Printf.printf "  latency per call:   mean %.0f us, max %d us\n" (Sim.Metrics.mean d)
        d.Sim.Metrics.max
  | None -> ());
  Printf.printf "  checks redeemed:    %d (each at most once: %s)\n"
    (List.length o.Chaos.redemptions)
    (if o.Chaos.double_redemptions = 0 then "yes" else "NO");
  (match o.Chaos.conserved with
  | Ok () -> print_endline "  value conserved:    yes"
  | Error e -> Printf.printf "  value conserved:    NO -- %s\n" e);
  if o.Chaos.double_redemptions = 0 && Result.is_ok o.Chaos.conserved then 0 else 1

(* --- cluster --- *)

let print_cluster_outcome (o : Cluster.Scenario.outcome) =
  Printf.printf "  shards:             %s (crashed primary: %s)\n"
    (String.concat ", " o.Cluster.Scenario.shard_ids)
    (Option.value o.Cluster.Scenario.crashed_node ~default:"none");
  Printf.printf "  goodput:            %d/%d operations succeeded\n" o.Cluster.Scenario.succeeded
    o.Cluster.Scenario.attempted;
  Printf.printf "  failover:           %d failover(s), %d promotion(s)\n"
    o.Cluster.Scenario.failovers o.Cluster.Scenario.promotions;
  Printf.printf "  replication:        %d batch(es) shipped, %d failed\n"
    o.Cluster.Scenario.repl_shipped o.Cluster.Scenario.repl_failures;
  Printf.printf "  retransmissions:    %d (%d gave up, %d absorbed by response caches)\n"
    o.Cluster.Scenario.retries_used o.Cluster.Scenario.gave_up o.Cluster.Scenario.dedups;
  Printf.printf "  latency per op:     p50 %d us, p99 %d us (%d messages)\n"
    o.Cluster.Scenario.p50_us o.Cluster.Scenario.p99_us o.Cluster.Scenario.messages;
  Printf.printf "  checks redeemed:    %d (each at most once: %s)\n"
    (List.length o.Cluster.Scenario.redemptions)
    (if o.Cluster.Scenario.double_redemptions = 0 then "yes" else "NO");
  (match o.Cluster.Scenario.conserved with
  | Ok () -> print_endline "  value conserved:    yes"
  | Error e -> Printf.printf "  value conserved:    NO -- %s\n" e)

let cluster_ok (o : Cluster.Scenario.outcome) =
  o.Cluster.Scenario.double_redemptions = 0 && Result.is_ok o.Cluster.Scenario.conserved

(* --- lane-parallel engine (cluster/seq/load with --domains N) --- *)

let print_lanes_outcome (o : Cluster.Lanes.outcome) =
  let open Cluster.Lanes in
  Printf.printf "  epochs:             %d run, %d cross-lane message(s) delivered\n" o.epochs_run
    o.delivered;
  Printf.printf "  goodput:            %d/%d operations succeeded\n" o.succeeded o.attempted;
  if o.remote_sent > 0 || o.remote_cleared > 0 then
    Printf.printf "  remote clearing:    %d check(s) mailed, %d cleared, %d bounced\n"
      o.remote_sent o.remote_cleared o.remote_bounced;
  if o.bulletins_applied > 0 then
    Printf.printf "  bulletins:          applied on %d lane(s)\n" o.bulletins_applied;
  Printf.printf "  checks redeemed:    each at most once: %s\n"
    (if o.double_redemptions = 0 then "yes" else "NO");
  (match o.conserved with
  | Ok () -> print_endline "  value conserved:    yes"
  | Error e -> Printf.printf "  value conserved:    NO -- %s\n" e);
  List.iter
    (fun (name, ok) ->
      Printf.printf "  gate %-15s %s\n" (name ^ ":") (if ok then "ok" else "FAILED"))
    o.seq_gates;
  Printf.printf "  wall:               %.3f s\n" o.wall_s

let lanes_ok (cfg : Cluster.Lanes.config) (o : Cluster.Lanes.outcome) =
  let open Cluster.Lanes in
  Result.is_ok o.conserved && o.double_redemptions = 0
  &&
  match cfg.flavor with
  | Seq -> o.seq_gates <> [] && List.for_all snd o.seq_gates
  | Checks | Load ->
      o.succeeded > 0
      && (cfg.shards < 2 || (o.remote_cleared > 0 && o.bulletins_applied = cfg.shards))

(* Smoke gate for the lane engine: the run at [domains = N] must be
   byte-identical — merged metrics, trace, span JSONL — to the same seed
   at [domains = 1] (for N = 1 this degenerates to a same-seed rerun). *)
let lanes_smoke ~label (cfg : Cluster.Lanes.config) =
  Printf.printf "%s lane smoke: seed %S, %d shard(s), domains=%d vs domains=1\n%!" label
    cfg.Cluster.Lanes.seed cfg.Cluster.Lanes.shards cfg.Cluster.Lanes.domains;
  let o = Cluster.Lanes.run cfg in
  print_lanes_outcome o;
  let o1 = Cluster.Lanes.run { cfg with Cluster.Lanes.domains = 1 } in
  let open Cluster.Lanes in
  let deterministic =
    o.metrics = o1.metrics && o.trace = o1.trace
    && String.equal o.span_jsonl o1.span_jsonl
    && o.epochs_run = o1.epochs_run && o.delivered = o1.delivered
    && o.seq_gates = o1.seq_gates
  in
  Printf.printf "  deterministic:      %s (domains=%d vs domains=1 %s)\n"
    (if deterministic then "yes" else "NO")
    cfg.domains
    (if deterministic then "byte-identical" else "DIVERGED");
  if lanes_ok cfg o && deterministic then begin
    Printf.printf "%s lane smoke: OK\n" label;
    0
  end
  else 1

let lanes_dispatch ~label (cfg : Cluster.Lanes.config) smoke =
  if smoke then lanes_smoke ~label cfg
  else begin
    Printf.printf "%s lane run: seed %S, %d shard(s) on %d domain(s)\n%!" label
      cfg.Cluster.Lanes.seed cfg.Cluster.Lanes.shards cfg.Cluster.Lanes.domains;
    let o = Cluster.Lanes.run cfg in
    print_lanes_outcome o;
    if lanes_ok cfg o then 0 else 1
  end

let cluster seed shards ops buyers drop duplicate no_crash crash_buyer crash_after retries
    timeout domains smoke =
  if domains > 0 then
    lanes_dispatch ~label:"cluster"
      {
        Cluster.Lanes.seed;
        shards;
        domains;
        epochs = 6;
        ops_per_epoch = max 1 (ops / 6);
        buyers;
        drop;
        duplicate;
        retries;
        timeout_us = timeout;
        flavor = Cluster.Lanes.Checks;
      }
      smoke
  else
  let crash =
    if no_crash then Cluster.Scenario.No_crash
    else if crash_buyer then Cluster.Scenario.Buyer_primary
    else Cluster.Scenario.Shop_primary
  in
  let cfg =
    {
      Cluster.Scenario.seed;
      shards;
      ops;
      buyers;
      drop;
      duplicate;
      crash;
      crash_after_us = crash_after;
      retries;
      timeout_us = timeout;
    }
  in
  if not smoke then begin
    Printf.printf
      "cluster run: seed %S, %d shard(s), %d ops, %d buyer(s), drop %.0f%%, duplicate %.0f%%\n%!"
      seed shards ops buyers (drop *. 100.) (duplicate *. 100.);
    let o = Cluster.Scenario.run cfg in
    print_cluster_outcome o;
    if cluster_ok o then 0 else 1
  end
  else begin
    (* Acceptance gates: a forced failover under a seeded plan must keep
       value conserved with exactly-once redemption, and a same-seed rerun
       must be byte-identical (metrics snapshot and trace). *)
    let cfg =
      if cfg.Cluster.Scenario.crash = Cluster.Scenario.No_crash then
        { cfg with Cluster.Scenario.crash = Cluster.Scenario.Shop_primary }
      else cfg
    in
    Printf.printf "cluster smoke: seed %S, %d shard(s), forced primary crash\n%!" seed shards;
    let o = Cluster.Scenario.run cfg in
    print_cluster_outcome o;
    let o2 = Cluster.Scenario.run cfg in
    let deterministic =
      o.Cluster.Scenario.metrics = o2.Cluster.Scenario.metrics
      && o.Cluster.Scenario.trace = o2.Cluster.Scenario.trace
    in
    Printf.printf "  deterministic:      %s (same-seed rerun %s)\n"
      (if deterministic then "yes" else "NO")
      (if deterministic then "byte-identical" else "DIVERGED");
    let failed_over =
      o.Cluster.Scenario.promotions >= 1 && o.Cluster.Scenario.failovers >= 1
    in
    if not failed_over then
      print_endline "  FAIL: the seeded crash produced no failover/promotion";
    if cluster_ok o && deterministic && failed_over then begin
      print_endline "cluster smoke: OK";
      0
    end
    else 1
  end

(* --- two-server sequence scenario --- *)

let print_seq_outcome (o : Cluster.Seq_scenario.outcome) =
  let open Cluster.Seq_scenario in
  Printf.printf "  out-of-order:   debit before open %s\n"
    (if o.attack_denied then "denied" else "GRANTED (violation)");
  Printf.printf "  in-order open:  %s; reopen %s\n"
    (if o.open_ok then "granted" else "DENIED")
    (if o.reopen_denied then "denied (step consumed)" else "GRANTED (violation)");
  Printf.printf "  handover:       standby progress %d before the crash (%d advance(s), %d import(s))\n"
    o.standby_progress_before_crash o.seq_advances o.seq_imports;
  Printf.printf "  failover:       %s crashed, %d promotion(s); debit %s, repeat %s\n"
    o.crashed_node o.promotions
    (if o.failover_debit_ok then "granted once" else "DENIED")
    (if o.second_debit_denied then "denied (sequence exhausted)" else "GRANTED (violation)");
  Printf.printf "  balances:       alice %d, bob %d\n" o.alice_available o.bob_available

let seq_ok (o : Cluster.Seq_scenario.outcome) =
  let open Cluster.Seq_scenario in
  o.attack_denied && o.open_ok && o.reopen_denied
  && o.standby_progress_before_crash = 1
  && o.failover_debit_ok && o.second_debit_denied && o.promotions >= 1

let seq_run seed drop duplicate retries timeout crash_after domains smoke =
  if domains > 0 then
    lanes_dispatch ~label:"seq"
      {
        Cluster.Lanes.default with
        Cluster.Lanes.seed;
        shards = max 2 domains;
        domains;
        drop;
        duplicate;
        retries;
        timeout_us = timeout;
        flavor = Cluster.Lanes.Seq;
      }
      smoke
  else
  let cfg =
    {
      Cluster.Seq_scenario.seed;
      drop;
      duplicate;
      retries;
      timeout_us = timeout;
      crash_after_us = crash_after;
    }
  in
  if not smoke then begin
    Printf.printf "seq run: seed %S, drop %.0f%%, duplicate %.0f%%, crash at +%d us\n%!" seed
      (drop *. 100.) (duplicate *. 100.) crash_after;
    let o = Cluster.Seq_scenario.run cfg in
    print_seq_outcome o;
    if seq_ok o then 0 else 1
  end
  else begin
    (* Acceptance gates: the sequence must drive in-order exactly-once
       behaviour across two servers and a mid-sequence primary crash, and
       a same-seed rerun must be byte-identical (metrics and trace). *)
    Printf.printf "seq smoke: seed %S, forced mid-sequence primary crash\n%!" seed;
    let o = Cluster.Seq_scenario.run cfg in
    print_seq_outcome o;
    let o2 = Cluster.Seq_scenario.run cfg in
    let deterministic =
      o.Cluster.Seq_scenario.metrics = o2.Cluster.Seq_scenario.metrics
      && o.Cluster.Seq_scenario.trace = o2.Cluster.Seq_scenario.trace
    in
    Printf.printf "  deterministic:  %s (same-seed rerun %s)\n"
      (if deterministic then "yes" else "NO")
      (if deterministic then "byte-identical" else "DIVERGED");
    if seq_ok o && deterministic then begin
      print_endline "seq smoke: OK";
      0
    end
    else 1
  end

(* --- open-loop load --- *)

let print_load_outcome (o : Load.Driver.outcome) =
  let m k = Option.value (List.assoc_opt k o.Load.Driver.metrics) ~default:0 in
  Printf.printf "  goodput:        %d/%d arrivals ok (%d failed)\n" o.Load.Driver.succeeded
    o.Load.Driver.arrivals o.Load.Driver.failed;
  Printf.printf "  latency:        p50 %d us, p99 %d us, max %d us (open-loop, incl. lateness)\n"
    o.Load.Driver.p50_us o.Load.Driver.p99_us o.Load.Driver.max_us;
  Printf.printf "  population:     %d touched, %d materializations, %d retired\n"
    o.Load.Driver.touched o.Load.Driver.materializations o.Load.Driver.retired;
  Printf.printf "  key pool:       %d generated, %d reused\n" o.Load.Driver.keys_generated
    o.Load.Driver.keys_reused;
  Printf.printf "  mix:            %d grants, %d presents, %d debits, %d clears, %d sweeps\n"
    o.Load.Driver.grants o.Load.Driver.presents o.Load.Driver.debits o.Load.Driver.clears
    o.Load.Driver.sweeps;
  Printf.printf "  verification:   %d rsa verifies; link cache %d hit(s) / %d miss(es)\n"
    (m "crypto.rsa_verify") (m "link_cache.hits") (m "link_cache.misses");
  Printf.printf "  pipelining:     %d batch call(s), %d coalesced, %d item(s)\n"
    (m "rpc.batch.calls") (m "rpc.batch.coalesced") (m "rpc.batch.items");
  Printf.printf "  replication:    %d ship(s) (%d replies, %d ops), %d read skip(s)\n"
    (m "cluster.repl_shipped") (m "cluster.repl_replies_shipped") (m "cluster.repl_ops_shipped")
    (m "cluster.repl_read_skips");
  Printf.printf "  spans:          %d\n" o.Load.Driver.span_count

let load_determinism cfg (o : Load.Driver.outcome) =
  let o2 = Load.Driver.run cfg in
  o.Load.Driver.metrics = o2.Load.Driver.metrics
  && o.Load.Driver.trace = o2.Load.Driver.trace
  && o.Load.Driver.jsonl = o2.Load.Driver.jsonl

let load seed population objects shards sweep_width churn_every no_link_cache no_pipeline retries
    timeout domains smoke =
  if domains > 0 then
    lanes_dispatch ~label:"load"
      {
        Cluster.Lanes.default with
        Cluster.Lanes.seed;
        shards;
        domains;
        epochs = 6;
        ops_per_epoch = 8;
        buyers = 4;
        retries;
        timeout_us = timeout;
        flavor = Cluster.Lanes.Load;
      }
      smoke
  else
  let cfg =
    {
      Load.Driver.default with
      Load.Driver.seed;
      population;
      objects;
      shards;
      sweep_width;
      churn_every;
      link_cache = not no_link_cache;
      pipeline = not no_pipeline;
      retries;
      timeout_us = timeout;
    }
  in
  if not smoke then begin
    Printf.printf
      "load run: seed %S, %d principals (lazy), %d objects, %d shard(s), link cache %s, \
       pipelining %s\n%!"
      seed population objects shards
      (if cfg.Load.Driver.link_cache then "on" else "off")
      (if cfg.Load.Driver.pipeline then "on" else "off")
    ;
    let o = Load.Driver.run cfg in
    print_load_outcome o;
    if o.Load.Driver.succeeded > 0 then 0 else 1
  end
  else begin
    (* Acceptance gates: the batched hot path must actually engage (link
       cache hits, coalesced sweep batches, replication read-skips), and
       same-seed reruns must be byte-identical — metrics, trace, and span
       JSONL — with the batched path on AND off. *)
    Printf.printf "load smoke: seed %S, %d principals (lazy), %d shard(s)\n%!" seed population
      shards;
    let on = { cfg with Load.Driver.link_cache = true; Load.Driver.pipeline = true } in
    let off = { cfg with Load.Driver.link_cache = false; Load.Driver.pipeline = false } in
    let o = Load.Driver.run on in
    print_load_outcome o;
    let m k = Option.value (List.assoc_opt k o.Load.Driver.metrics) ~default:0 in
    let checks =
      [ ("arrivals succeed", o.Load.Driver.succeeded > 0);
        ("every op class exercised",
         o.Load.Driver.grants > 0 && o.Load.Driver.presents > 0 && o.Load.Driver.debits > 0
         && o.Load.Driver.sweeps > 0);
        ("population churned and keys reused",
         o.Load.Driver.retired > 0 && o.Load.Driver.keys_reused > 0);
        ("keygens bounded by materializations",
         o.Load.Driver.keys_generated <= o.Load.Driver.materializations);
        ("link cache engaged", m "link_cache.hits" > 0);
        ("sweeps coalesced", m "rpc.batch.calls" > 0 && m "rpc.batch.items" >= sweep_width);
        ("replication read-skips", m "cluster.repl_read_skips" > 0);
        ("spans captured", o.Load.Driver.span_count > 0);
        ("same-seed rerun byte-identical (batched)", load_determinism on o);
        ("same-seed rerun byte-identical (unbatched)",
         let ooff = Load.Driver.run off in
         let moff k = Option.value (List.assoc_opt k ooff.Load.Driver.metrics) ~default:0 in
         moff "link_cache.hits" = 0 && moff "rpc.batch.calls" = 0 && load_determinism off ooff) ]
    in
    let ok =
      List.fold_left
        (fun acc (label, pass) ->
          Printf.printf "  %s %s\n" (if pass then "ok  " else "FAIL") label;
          acc && pass)
        true checks
    in
    if ok then begin
      print_endline "load smoke: OK";
      0
    end
    else begin
      print_endline "load smoke: FAILED";
      1
    end
  end

(* --- revocation --- *)

module Storm = Cluster.Revocation_storm

let print_storm_outcome (o : Storm.outcome) =
  Printf.printf "  warm reads served:         %d\n" o.Storm.warm_reads;
  Printf.printf "  revocations accepted:      %d (final epoch %d)\n" o.Storm.revocations
    o.Storm.final_epoch;
  Printf.printf "  fresh server denials:      %d\n" o.Storm.fresh_denials;
  Printf.printf "  degradation-window serves: %d\n" o.Storm.stale_window_served;
  Printf.printf "  fail-closed when stale:    %d denial(s)\n" o.Storm.stale_denials;
  Printf.printf "  direct ACL while stale:    %d read(s)\n" o.Storm.direct_reads_while_stale;
  Printf.printf "  short-TTL refresh:         %s\n" (if o.Storm.refresh_ok then "ok" else "FAILED");
  Printf.printf "  revoked refresh refused:   %s\n"
    (if o.Storm.refresh_refused_revoked then "yes" else "NO");
  Printf.printf "  replay refused after heal: %s\n" (if o.Storm.replay_refused then "yes" else "NO");
  Printf.printf "  healed server denials:     %d (healthy chain %s)\n" o.Storm.healed_denials
    (if o.Storm.healed_serves then "served" else "REFUSED");
  Printf.printf "  cache invalidation storm:  %d entries over %d generation bump(s)\n"
    o.Storm.invalidations o.Storm.generation_bumps;
  Printf.printf "  bulletin on both replicas: %s\n"
    (if o.Storm.bulletin_on_standby then "yes" else "NO");
  Printf.printf "  checks:                    pre-storm %s, post-storm %s\n"
    (if o.Storm.check_cleared then "cleared" else "BOUNCED")
    (if o.Storm.check_bounced then "bounced" else "CLEARED");
  Printf.printf "  conservation:              %s\n"
    (match o.Storm.conserved with Ok () -> "holds" | Error e -> "VIOLATED: " ^ e)

let storm_ok (cfg : Storm.config) (o : Storm.outcome) =
  o.Storm.fresh_denials = cfg.Storm.grants
  && o.Storm.stale_denials > 0
  && o.Storm.direct_reads_while_stale > 0
  && o.Storm.refresh_ok && o.Storm.refresh_refused_revoked && o.Storm.replay_refused
  && o.Storm.healed_denials = cfg.Storm.grants
  && o.Storm.healed_serves && o.Storm.bulletin_on_standby
  && o.Storm.check_cleared && o.Storm.check_bounced
  && o.Storm.generation_bumps > 0
  && Result.is_ok o.Storm.conserved

let revoke seed grants staleness_bound lifetime smoke =
  let cfg =
    { Storm.seed; grants; staleness_bound_us = staleness_bound; lifetime_us = lifetime }
  in
  Printf.printf
    "revocation storm: seed %S, %d grant(s), staleness bound %d us, proxy TTL %d us\n%!" seed
    grants staleness_bound lifetime;
  let o = Storm.run cfg in
  print_storm_outcome o;
  if not smoke then if storm_ok cfg o then 0 else 1
  else begin
    (* Acceptance gates: revocation effective within one epoch on fresh
       servers, fail-closed once stale with direct ACLs still served,
       conservation across the bounced check, and a byte-identical
       same-seed rerun. *)
    let o2 = Storm.run cfg in
    let deterministic = o.Storm.metrics = o2.Storm.metrics && o.Storm.trace = o2.Storm.trace in
    Printf.printf "  deterministic:             %s (same-seed rerun %s)\n"
      (if deterministic then "yes" else "NO")
      (if deterministic then "byte-identical" else "DIVERGED");
    if storm_ok cfg o && deterministic then begin
      print_endline "revoke smoke: OK";
      0
    end
    else begin
      print_endline "revoke smoke: FAILED";
      1
    end
  end

(* --- cross-realm federation --- *)

module Fed = Cluster.Federation

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let print_fed_outcome (o : Fed.outcome) =
  Printf.printf "  forged foreign-client TGT: %s\n"
    (if o.Fed.forged_refused then "refused (" ^ o.Fed.forged_error ^ ")"
     else "ACCEPTED or wrong error: " ^ o.Fed.forged_error);
  Printf.printf "  forged local-client TGT:   %s\n"
    (if o.Fed.forged_local_refused then "refused" else "ACCEPTED (violation)");
  Printf.printf "  malformed subkey:          server %S, client %S\n" o.Fed.subkey_server_error
    o.Fed.subkey_client_error;
  Printf.printf "  three-realm cascade:       %s (%d cross-realm TGT(s) accepted)\n"
    (if o.Fed.cascade_ok then "served" else "REFUSED")
    o.Fed.cross_tgs;
  Printf.printf "  granter rekey recovery:    %s\n"
    (if o.Fed.granter_retry_ok then "evict + retry ok" else "FAILED");
  Printf.printf "  membership (warm):         %d assert(s), group-ACL read %s, non-member %s\n"
    o.Fed.warm_asserts
    (if o.Fed.membership_read_ok then "served" else "REFUSED")
    (if o.Fed.non_member_refused then "refused" else "GRANTED (violation)");
  Printf.printf "  partition:                 refresh %s, %d assert(s) from the replica\n"
    (if o.Fed.refresh_partitioned_failed then "failed (cut)" else "SUCCEEDED (no cut?)")
    o.Fed.partitioned_asserts;
  Printf.printf "  past staleness bound:      %s\n"
    (if o.Fed.stale_denied then "failed closed (" ^ o.Fed.stale_error ^ ")"
     else "STILL SERVING (violation)");
  Printf.printf "  heal:                      refresh %s, %d assert(s), replica epoch %d\n"
    (if o.Fed.healed_refresh_ok then "ok" else "FAILED")
    o.Fed.healed_asserts o.Fed.replica_epoch;
  Printf.printf "  replica counters:          %d hit(s), %d stale denial(s), %d snapshot(s) applied\n"
    o.Fed.replica_hits o.Fed.replica_stale_denials o.Fed.snapshots_applied

let fed_ok (cfg : Fed.config) (o : Fed.outcome) =
  o.Fed.forged_refused && o.Fed.forged_local_refused
  && o.Fed.subkey_server_error = "tgs: subkey must be 32 bytes"
  && o.Fed.subkey_client_error = "derive: subkey must be 32 bytes"
  && o.Fed.cascade_ok && o.Fed.granter_retry_ok
  && o.Fed.cross_tgs > 0
  && o.Fed.warm_asserts = cfg.Fed.members
  && o.Fed.membership_read_ok && o.Fed.non_member_refused
  && o.Fed.refresh_partitioned_failed
  && o.Fed.partitioned_asserts = cfg.Fed.members
  && o.Fed.stale_denied
  && contains o.Fed.stale_error "failing closed"
  && o.Fed.healed_refresh_ok
  && o.Fed.healed_asserts = cfg.Fed.members
  && o.Fed.replica_epoch >= 2
  && o.Fed.replica_stale_denials > 0
  && o.Fed.snapshots_applied >= 2

let federate seed members staleness_bound domains smoke =
  let cfg = { Fed.seed; members; staleness_bound_us = staleness_bound } in
  if domains > 0 then begin
    (* One realm per lane: isolated KDC + directory + group server per
       lane, signed snapshots ringing between them. *)
    Printf.printf "federate lanes: seed %S, %d domain(s), one realm per lane\n%!" seed domains;
    let o = Fed.run_lanes ~domains cfg in
    let ok =
      List.fold_left
        (fun acc (label, pass) ->
          Printf.printf "  %s %s\n" (if pass then "ok  " else "FAIL") label;
          acc && pass)
        true o.Fed.l_gates
    in
    Printf.printf "  epochs run: %d, snapshots delivered: %d\n" o.Fed.l_epochs_run
      o.Fed.l_delivered;
    if not smoke then if ok then 0 else 1
    else begin
      let base = Fed.run_lanes ~domains:1 cfg in
      let identical = o.Fed.l_digest = base.Fed.l_digest in
      Printf.printf "  %s digest byte-identical to --domains 1\n"
        (if identical then "ok  " else "FAIL");
      if ok && identical then begin
        print_endline "federate smoke: OK";
        0
      end
      else begin
        print_endline "federate smoke: FAILED";
        1
      end
    end
  end
  else begin
    Printf.printf
      "federation: seed %S, 3 realms, %d group member(s), staleness bound %d us\n%!" seed
      members staleness_bound;
    let o = Fed.run cfg in
    print_fed_outcome o;
    if not smoke then if fed_ok cfg o then 0 else 1
    else begin
      (* Acceptance gates: forged inter-realm TGTs refused with the pinned
         realm-mismatch error while the legitimate three-realm cascade is
         served; the membership replica serves through the partition, fails
         closed past its staleness bound and recovers on heal; and a
         same-seed rerun is byte-identical (metrics and trace). *)
      let o2 = Fed.run cfg in
      let deterministic = o.Fed.metrics = o2.Fed.metrics && o.Fed.trace = o2.Fed.trace in
      Printf.printf "  deterministic:             %s (same-seed rerun %s)\n"
        (if deterministic then "yes" else "NO")
        (if deterministic then "byte-identical" else "DIVERGED");
      if fed_ok cfg o && deterministic then begin
        print_endline "federate smoke: OK";
        0
      end
      else begin
        print_endline "federate smoke: FAILED";
        1
      end
    end
  end

(* --- trace --- *)

let run_traced_scenario scenario ~seed ~requests ~depth =
  match scenario with
  | "f4" -> Ok (Tracing.run_f4 ?seed ?requests ?depth ())
  | "f5" ->
      if depth <> None then prerr_endline "trace: --depth only applies to f4; ignored";
      Ok (Tracing.run_f5 ?seed ?requests ())
  | other -> Error (Printf.sprintf "unknown scenario %S (known: f4, f5)" other)

let write_artifact ~what path content =
  if path = "-" then print_string content
  else begin
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    Printf.printf "trace: wrote %s to %s (%d bytes)\n" what path (String.length content)
  end

(* Per-kind rollup of span counts and summed self costs. *)
let kind_rollup spans =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let k = s.Sim.Span.sp_kind in
      let count, costs =
        match Hashtbl.find_opt tbl k with
        | Some row -> row
        | None ->
            let row = (ref 0, Hashtbl.create 8) in
            Hashtbl.add tbl k row;
            order := k :: !order;
            row
      in
      incr count;
      List.iter
        (fun (c, v) ->
          Hashtbl.replace costs c (v + Option.value ~default:0 (Hashtbl.find_opt costs c)))
        s.Sim.Span.sp_costs)
    spans;
  List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order

let print_summary scenario o =
  let spans = o.Tracing.spans in
  Printf.printf "trace %s: %d/%d request(s) ok — %d span(s), %d actor(s), max depth %d%s\n"
    scenario o.Tracing.ok o.Tracing.requests (List.length spans)
    (List.length (Sim.Span.actors spans))
    (Sim.Span.max_depth spans)
    (if o.Tracing.dropped = 0 then ""
     else Printf.sprintf " (%d span(s) dropped by the ring)" o.Tracing.dropped);
  Printf.printf "  %-16s %6s %6s %8s %8s %10s\n" "kind" "count" "msgs" "bytes" "rsa.vfy"
    "cache.hits";
  List.iter
    (fun (kind, (count, costs)) ->
      let get name = Option.value ~default:0 (Hashtbl.find_opt costs name) in
      Printf.printf "  %-16s %6d %6d %8d %8d %10d\n" kind !count (get "net.messages")
        (get "net.bytes") (get "crypto.rsa_verify") (get "verify_cache.hits"))
    (kind_rollup spans);
  let attributed = Sim.Span.cost_total spans in
  if attributed = o.Tracing.delta then
    Printf.printf "  attribution: per-span self costs sum exactly to the global metrics diff\n"
  else
    Printf.printf "  attribution: DIVERGED from the global metrics diff (a tick escaped a span)\n";
  attributed = o.Tracing.delta

let print_top spans n =
  let dur s = s.Sim.Span.sp_end - s.Sim.Span.sp_start in
  let sorted = List.stable_sort (fun a b -> compare (dur b) (dur a)) spans in
  let rec take k = function x :: tl when k > 0 -> x :: take (k - 1) tl | _ -> [] in
  Printf.printf "  top %d span(s) by inclusive duration:\n" n;
  List.iter
    (fun s ->
      Printf.printf "    %8d us  %-16s %-24s %s\n" (dur s) s.Sim.Span.sp_kind
        s.Sim.Span.sp_actor
        (String.concat " "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) s.Sim.Span.sp_attrs)))
    (take n sorted)

(* The acceptance invariants, checked against a live run: causal nesting
   across actors, a retry child under the injected drop, exact cost
   attribution, valid Chrome JSON, and run-to-run byte identity. *)
let trace_smoke scenario ~seed ~requests ~depth o =
  let spans = o.Tracing.spans in
  let failures = ref 0 in
  let check name ok =
    Printf.printf "  %-52s %s\n" name (if ok then "PASS" else "FAIL");
    if not ok then incr failures
  in
  check "all requests succeeded" (o.Tracing.ok = o.Tracing.requests);
  check "no spans dropped" (o.Tracing.dropped = 0);
  check ">= 4 causally nested spans" (Sim.Span.max_depth spans >= 4);
  check ">= 3 distinct actors" (List.length (Sim.Span.actors spans) >= 3);
  check "self costs sum to global metrics diff"
    (Sim.Span.cost_total spans = o.Tracing.delta);
  check "every span kind carries some cost in its subtree"
    (List.for_all
       (fun s ->
         s.Sim.Span.sp_costs <> []
         || List.exists (fun c -> c.Sim.Span.sp_parent = Some s.Sim.Span.sp_id) spans)
       spans);
  check "chrome export is valid JSON"
    (Result.is_ok (Benchout.valid_json (Sim.Span.to_chrome_trace spans)));
  (if scenario = "f4" then
     let attempts_under call =
       List.filter
         (fun s ->
           s.Sim.Span.sp_kind = "rpc.attempt"
           && s.Sim.Span.sp_parent = Some call.Sim.Span.sp_id)
         spans
     in
     check "injected drop produced a retry child"
       (List.exists
          (fun s ->
            s.Sim.Span.sp_kind = "rpc.call" && List.length (attempts_under s) >= 2)
          spans));
  (match run_traced_scenario scenario ~seed ~requests ~depth with
  | Ok o2 ->
      check "same-seed rerun is byte-identical JSONL"
        (Sim.Span.to_jsonl spans = Sim.Span.to_jsonl o2.Tracing.spans)
  | Error _ -> check "same-seed rerun" false);
  !failures = 0

let trace scenario seed requests depth chrome jsonl top smoke =
  match run_traced_scenario scenario ~seed ~requests ~depth with
  | Error e ->
      Printf.eprintf "trace: %s\n" e;
      2
  | Ok o ->
      let spans = o.Tracing.spans in
      let quiet = chrome = Some "-" || jsonl = Some "-" in
      let attributed = if quiet then Sim.Span.cost_total spans = o.Tracing.delta
                       else print_summary scenario o in
      if top > 0 && not quiet then print_top spans top;
      Option.iter
        (fun path -> write_artifact ~what:"chrome trace" path (Sim.Span.to_chrome_trace spans))
        chrome;
      Option.iter
        (fun path -> write_artifact ~what:"jsonl" path (Sim.Span.to_jsonl spans))
        jsonl;
      if smoke then begin
        Printf.printf "trace smoke (%s):\n" scenario;
        if trace_smoke scenario ~seed ~requests ~depth o && attributed then begin
          print_endline "trace smoke: all invariants hold";
          0
        end
        else begin
          print_endline "trace smoke: FAILED";
          1
        end
      end
      else if attributed then 0
      else 1

let trace_cmd =
  let scenario =
    Arg.(value & pos 0 string "f4"
         & info [] ~docv:"SCENARIO"
             ~doc:"Traced scenario: f4 (cascaded file-server authorization with an injected \
                   drop) or f5 (inter-bank check clearing)")
  in
  let seed =
    Arg.(value & opt (some string) None
         & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed (default: per-scenario)")
  in
  let requests =
    Arg.(value & opt (some int) None & info [ "requests" ] ~docv:"N" ~doc:"Traced requests")
  in
  let depth =
    Arg.(value & opt (some int) None
         & info [ "depth" ] ~docv:"D" ~doc:"Proxy cascade depth (f4 only)")
  in
  let chrome =
    Arg.(value & opt ~vopt:(Some "-") (some string) None
         & info [ "chrome" ] ~docv:"FILE"
             ~doc:"Export Chrome trace-event JSON (for chrome://tracing or ui.perfetto.dev) to \
                   $(docv), or stdout when given bare")
  in
  let jsonl =
    Arg.(value & opt ~vopt:(Some "-") (some string) None
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:"Export one JSON object per span (byte-identical across same-seed runs) to \
                   $(docv), or stdout when given bare")
  in
  let top =
    Arg.(value & opt int 0 & info [ "top" ] ~docv:"N" ~doc:"Show the $(docv) longest spans")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Check the causal-tracing invariants (nesting depth, actor spread, exact cost \
                   attribution, retry child, export validity, rerun byte-identity); exit \
                   non-zero on violation")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a traced end-to-end scenario and report its causal span tree with per-span cost \
          attribution; optionally export Chrome trace / JSONL artifacts")
    Term.(const trace $ scenario $ seed $ requests $ depth $ chrome $ jsonl $ top $ smoke)

(* --- cmdliner wiring --- *)

let selftest_cmd =
  Cmd.v (Cmd.info "selftest" ~doc:"Run crypto and proxy self-tests")
    Term.(const selftest $ const ())

let demo_cmd =
  let seed =
    Arg.(value & opt string "demo" & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log every simulated network message")
  in
  Cmd.v (Cmd.info "demo" ~doc:"Run the capability demo scenario")
    Term.(const demo $ seed $ verbose)

let keygen_cmd =
  let bits =
    Arg.(value & opt int 512 & info [ "bits" ] ~docv:"BITS" ~doc:"RSA modulus size")
  in
  let seed =
    Arg.(value & opt string "keygen" & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed")
  in
  Cmd.v (Cmd.info "keygen" ~doc:"Generate a deterministic RSA key pair")
    Term.(const keygen $ bits $ seed)

let inspect_cmd =
  let blob = Arg.(required & pos 0 (some string) None & info [] ~docv:"HEX") in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Decode a hex-encoded wire value (restrictions, presentations)")
    Term.(const inspect $ blob)

let bench list_only ids =
  if list_only then begin
    List.iter (fun (id, desc, _) -> Printf.printf "  %-4s %s\n" id desc) Experiments.all;
    0
  end
  else begin
    Experiments.run ids;
    0
  end

let bench_cmd =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all)") in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit") in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Regenerate the paper's experiment tables (f1..f6, c3, c4, a1..a3, s1)")
    Term.(const bench $ list_only $ ids)

let bench_check baseline current =
  match (Benchout.load baseline, Benchout.load current) with
  | Error e, _ ->
      Printf.eprintf "bench-check: %s: %s\n" baseline e;
      1
  | _, Error e ->
      Printf.eprintf "bench-check: %s: %s\n" current e;
      1
  | Ok b, Ok c -> (
      match Benchout.check ~baseline:b ~current:c with
      | Ok () ->
          Printf.printf "bench-check: OK — %s: %d row(s), logical metrics match baseline\n"
            c.Benchout.id
            (List.length c.Benchout.rows);
          0
      | Error msgs ->
          Printf.eprintf "bench-check: %s: logical metrics diverged from baseline:\n"
            c.Benchout.id;
          List.iter (fun m -> Printf.eprintf "  - %s\n" m) msgs;
          1)

let bench_check_cmd =
  let baseline =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASELINE" ~doc:"Committed BENCH_*.json")
  in
  let current =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CURRENT" ~doc:"Freshly generated BENCH_*.json")
  in
  Cmd.v
    (Cmd.info "bench-check"
       ~doc:
         "Validate two BENCH_*.json artifacts and compare their logical (integer) metrics — \
          ops, bytes, crypto-op counts — exactly; wall-times are never compared. Exits non-zero \
          on schema errors or divergence.")
    Term.(const bench_check $ baseline $ current)

let chaos_cmd =
  let seed =
    Arg.(value & opt string "chaos" & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed")
  in
  let ops = Arg.(value & opt int 40 & info [ "ops" ] ~docv:"N" ~doc:"Workload operations") in
  let drop =
    Arg.(value & opt float 0.15 & info [ "drop" ] ~docv:"P" ~doc:"Per-message drop probability")
  in
  let duplicate =
    Arg.(value & opt float 0.10
         & info [ "duplicate" ] ~docv:"P" ~doc:"Per-message duplication probability")
  in
  let jitter =
    Arg.(value & opt int 2_000 & info [ "jitter" ] ~docv:"US" ~doc:"Max extra latency (us)")
  in
  let no_crash =
    Arg.(value & flag & info [ "no-crash" ] ~doc:"Skip the drawee-bank crash window")
  in
  let retries =
    Arg.(value & opt int 8 & info [ "retries" ] ~docv:"N" ~doc:"Client retransmission budget")
  in
  let timeout =
    Arg.(value & opt int 10_000 & info [ "timeout" ] ~docv:"US" ~doc:"Client timeout (us)")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the two-bank accounting workload under seeded fault injection and check the \
          robustness invariants (value conservation, at-most-once redemption); exits non-zero \
          on violation")
    Term.(const chaos $ seed $ ops $ drop $ duplicate $ jitter $ no_crash $ retries $ timeout)

let cluster_cmd =
  let seed =
    Arg.(value & opt string "cluster" & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc:"Bank shards (each primary+standby)")
  in
  let ops = Arg.(value & opt int 60 & info [ "ops" ] ~docv:"N" ~doc:"Workload operations") in
  let buyers = Arg.(value & opt int 4 & info [ "buyers" ] ~docv:"N" ~doc:"Buyer principals") in
  let drop =
    Arg.(value & opt float 0.05 & info [ "drop" ] ~docv:"P" ~doc:"Per-message drop probability")
  in
  let duplicate =
    Arg.(value & opt float 0.05
         & info [ "duplicate" ] ~docv:"P" ~doc:"Per-message duplication probability")
  in
  let no_crash = Arg.(value & flag & info [ "no-crash" ] ~doc:"Skip the primary crash") in
  let crash_buyer =
    Arg.(value & flag
         & info [ "crash-buyer" ] ~doc:"Crash buyer-0's shard primary (a drawee) instead of the shop's")
  in
  let crash_after =
    Arg.(value & opt int 30_000
         & info [ "crash-after" ] ~docv:"US" ~doc:"Crash instant relative to workload start (us)")
  in
  let retries =
    Arg.(value & opt int 8 & info [ "retries" ] ~docv:"N" ~doc:"Client retransmission budget")
  in
  let timeout =
    Arg.(value & opt int 10_000 & info [ "timeout" ] ~docv:"US" ~doc:"Client timeout (us)")
  in
  let domains =
    Arg.(value & opt int 0
         & info [ "domains" ] ~docv:"N"
             ~doc:"Run the lane-parallel engine on N OCaml domains (0 = the classic \
                   synchronous scenario). With --smoke, gates that the run is byte-identical \
                   to the same seed at --domains 1")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Run the acceptance gates: forced failover with conservation, exactly-once \
                   redemption, and a byte-identical same-seed rerun; exit non-zero on violation")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run the sharded accounting cluster scenario: consistent-hash placement over \
          primary/standby shard pairs with replay-log replication, under seeded faults that \
          crash a primary mid-run; checks conservation and exactly-once redemption across \
          the failover")
    Term.(const cluster $ seed $ shards $ ops $ buyers $ drop $ duplicate $ no_crash
          $ crash_buyer $ crash_after $ retries $ timeout $ domains $ smoke)

let seq_cmd =
  let seed =
    Arg.(value & opt string "seq" & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed")
  in
  let drop =
    Arg.(value & opt float 0.05 & info [ "drop" ] ~docv:"P" ~doc:"Per-message drop probability")
  in
  let duplicate =
    Arg.(value & opt float 0.05
         & info [ "duplicate" ] ~docv:"P" ~doc:"Per-message duplication probability")
  in
  let retries =
    Arg.(value & opt int 8 & info [ "retries" ] ~docv:"N" ~doc:"Client retransmission budget")
  in
  let timeout =
    Arg.(value & opt int 10_000 & info [ "timeout" ] ~docv:"US" ~doc:"Client timeout (us)")
  in
  let crash_after =
    Arg.(value & opt int 40_000
         & info [ "crash-after" ] ~docv:"US"
             ~doc:"Bank-primary crash instant relative to chaos start (us)")
  in
  let domains =
    Arg.(value & opt int 0
         & info [ "domains" ] ~docv:"N"
             ~doc:"Run the lane-parallel engine on N OCaml domains (0 = the classic \
                   synchronous scenario). With --smoke, gates that the run is byte-identical \
                   to the same seed at --domains 1")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Run the acceptance gates: out-of-order presentations denied, the in-order \
                   sequence accepted exactly once across a mid-sequence primary crash, and a \
                   byte-identical same-seed rerun; exit non-zero on violation")
  in
  Cmd.v
    (Cmd.info "seq"
       ~doc:
         "Run the two-server sequence scenario: one Sequence restriction spans a file server \
          and a sharded bank (an fs open gates a bank debit); earned progress is handed over \
          and journalled to the standby, surviving a mid-sequence primary crash")
    Term.(const seq_run $ seed $ drop $ duplicate $ retries $ timeout $ crash_after $ domains
          $ smoke)

let load_cmd =
  let seed =
    Arg.(value & opt string "l1" & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed")
  in
  let population =
    Arg.(value & opt int 100_000
         & info [ "population" ] ~docv:"N"
             ~doc:"Principal universe size (lazy: only touched principals are materialized)")
  in
  let objects =
    Arg.(value & opt int 512 & info [ "objects" ] ~docv:"N" ~doc:"Guarded files on the server")
  in
  let shards =
    Arg.(value & opt int 4
         & info [ "shards" ] ~docv:"N" ~doc:"Accounting shards (each primary+standby)")
  in
  let sweep_width =
    Arg.(value & opt int 6
         & info [ "sweep-width" ] ~docv:"N" ~doc:"Balance queries coalesced per audit sweep")
  in
  let churn_every =
    Arg.(value & opt int 16
         & info [ "churn-every" ] ~docv:"N"
             ~doc:"Retire the oldest materialized principal every N arrivals (0 = never)")
  in
  let no_link_cache =
    Arg.(value & flag
         & info [ "no-link-cache" ] ~doc:"Disable the guard's chain-prefix verification cache")
  in
  let no_pipeline =
    Arg.(value & flag
         & info [ "no-pipeline" ] ~doc:"Issue sweep balance queries as N serial calls")
  in
  let retries =
    Arg.(value & opt int 4 & info [ "retries" ] ~docv:"N" ~doc:"Client retransmission budget")
  in
  let timeout =
    Arg.(value & opt int 10_000 & info [ "timeout" ] ~docv:"US" ~doc:"Client timeout (us)")
  in
  let domains =
    Arg.(value & opt int 0
         & info [ "domains" ] ~docv:"N"
             ~doc:"Run the lane-parallel engine on N OCaml domains (0 = the classic \
                   synchronous scenario). With --smoke, gates that the run is byte-identical \
                   to the same seed at --domains 1")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Run the acceptance gates: batched hot path engaged (link-cache hits, \
                   coalesced sweeps, replication read-skips) and byte-identical same-seed \
                   reruns with batching on and off; exit non-zero on violation")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive a deterministic open-loop mixed workload (grants, presentations, debits, \
          check clearing, audit sweeps) from a lazily-materialized Zipf population against \
          the full stack, and report goodput and latency percentiles")
    Term.(const load $ seed $ population $ objects $ shards $ sweep_width $ churn_every
          $ no_link_cache $ no_pipeline $ retries $ timeout $ domains $ smoke)

let revoke_cmd =
  let seed =
    Arg.(value & opt string "revocation-storm"
         & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed")
  in
  let grants =
    Arg.(value & opt int 6
         & info [ "grants" ] ~docv:"N" ~doc:"Proxies the doomed grantor issues (storm width)")
  in
  let staleness_bound =
    Arg.(value & opt int 600_000_000
         & info [ "staleness-bound" ] ~docv:"US"
             ~doc:"Bulletin staleness bound before servers fail closed (us)")
  in
  let lifetime =
    Arg.(value & opt int 900_000_000
         & info [ "lifetime" ] ~docv:"US" ~doc:"Short-TTL proxy lifetime (us)")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Run the acceptance gates: conservation across the bounced check, fail-closed \
                   when stale, and a byte-identical same-seed rerun; exit non-zero on violation")
  in
  Cmd.v
    (Cmd.info "revoke"
       ~doc:
         "Run the revocation-storm scenario: signed epoch bulletins revoke a grantor's output \
          while one subscriber is partitioned from the authority — immediate denial plus \
          verify-cache invalidation on fresh servers, a bounded degradation window then \
          fail-closed behaviour on stale ones, short-TTL refresh for healthy grantors, and \
          bulletin delivery to both replicas of a bank shard")
    Term.(const revoke $ seed $ grants $ staleness_bound $ lifetime $ smoke)

let federate_cmd =
  let seed =
    Arg.(value & opt string "federation"
         & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed")
  in
  let members =
    Arg.(value & opt int 3
         & info [ "members" ] ~docv:"N" ~doc:"Members of the replicated group")
  in
  let staleness_bound =
    Arg.(value & opt int 600_000_000
         & info [ "staleness-bound" ] ~docv:"US"
             ~doc:"Membership-replica staleness bound before it fails closed (us)")
  in
  let domains =
    Arg.(value & opt int 0
         & info [ "domains" ] ~docv:"N"
             ~doc:"Run the lane-parallel variant on N OCaml domains, one realm per lane \
                   (0 = the classic synchronous three-realm scenario). With --smoke, gates \
                   that the run is byte-identical to the same seed at --domains 1")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Run the acceptance gates: forged inter-realm TGTs refused with the pinned \
                   realm-mismatch error, the legitimate three-realm cascade served, the \
                   membership replica serving through a partition then failing closed past \
                   its staleness bound, and a byte-identical same-seed rerun; exit non-zero \
                   on violation")
  in
  Cmd.v
    (Cmd.info "federate"
       ~doc:
         "Run the cross-realm federation scenario: three realms with pairwise inter-realm \
          keys, forged-TGT probes against the trusting TGS, cascaded authorization whose \
          chain crosses all three realms, granter recovery after a link rekey, and a \
          Grapevine-style replicated group served across a partition of the origin realm")
    Term.(const federate $ seed $ members $ staleness_bound $ domains $ smoke)

(* --- model-based conformance testing --- *)

(* A repro file optionally records the mutation it was found under; replaying
   it with that mutation re-applied must still produce a finding (the mutant
   stays killed), while replaying without any mutation must find agreement. *)
let repro_mutation path =
  let prefix = "# found with injected mutation: " in
  let ic = open_in path in
  let found = ref None in
  (try
     while !found = None do
       let line = input_line ic in
       let pl = String.length prefix in
       if String.length line > pl && String.sub line 0 pl = prefix then
         found := Mbt.Exec.mutation_of_name (String.sub line pl (String.length line - pl))
     done
   with End_of_file -> ());
  close_in ic;
  !found

let replay_one path =
  let mutation = repro_mutation path in
  let expect_finding = mutation <> None in
  match Mbt.Runner.replay ?mutation path with
  | Error e ->
      Printf.printf "  %-40s FAIL (%s)\n" (Filename.basename path) e;
      false
  | Ok (Some f) when expect_finding ->
      Printf.printf "  %-40s OK (mutant still killed: %s)\n" (Filename.basename path)
        (Mbt.Runner.kind_name f.Mbt.Runner.f_kind);
      true
  | Ok None when not expect_finding ->
      Printf.printf "  %-40s OK (stack, cache and model agree)\n" (Filename.basename path);
      true
  | Ok (Some f) ->
      Printf.printf "  %-40s FAIL (unexpected disagreement: %s)\n" (Filename.basename path)
        f.Mbt.Runner.f_detail;
      false
  | Ok None ->
      Printf.printf "  %-40s FAIL (injected mutation no longer detected)\n"
        (Filename.basename path);
      false

let replay_repro_dir dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort compare
  in
  if files = [] then begin
    Printf.printf "mbt: no .repro files in %s\n" dir;
    true
  end
  else begin
    Printf.printf "mbt: replaying %d repro(s) from %s\n" (List.length files) dir;
    List.for_all replay_one (List.map (Filename.concat dir) files)
  end

let run_campaign ?mutation ?(require_seq = false) ~seed_base ~n_seeds ~per_seed ~shrink_budget
    ~save () =
  let seeds = List.init n_seeds (fun i -> Printf.sprintf "%s-%d" seed_base i) in
  let t0 = Unix.gettimeofday () in
  let finding, stats =
    Mbt.Runner.campaign ?mutation ~seeds ~per_seed ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  let rate = if dt > 0. then float_of_int stats.Mbt.Runner.programs /. dt else 0. in
  Printf.printf
    "mbt: %d program(s), %d op(s) (%d carrying sequences) across %d seed(s)%s — %.1f programs/s\n"
    stats.Mbt.Runner.programs stats.Mbt.Runner.ops stats.Mbt.Runner.seq_ops n_seeds
    (match mutation with
    | Some m -> Printf.sprintf " [mutation: %s]" (Mbt.Exec.mutation_name m)
    | None -> "")
    rate;
  let seq_ok =
    if require_seq && stats.Mbt.Runner.seq_ops = 0 then begin
      Printf.printf "mbt: FAIL — the campaign exercised no sequence restrictions\n";
      false
    end
    else true
  in
  match (finding, mutation) with
  | None, None ->
      if seq_ok then
        Printf.printf "mbt: conformance OK — stack, cache differential and model agree\n";
      seq_ok
  | None, Some m ->
      Printf.printf "mbt: FAIL — injected mutation %s survived %d program(s)\n"
        (Mbt.Exec.mutation_name m) stats.Mbt.Runner.programs;
      false
  | Some f, _ ->
      Printf.printf "mbt: finding (%s) after %d program(s): %s\n"
        (Mbt.Runner.kind_name f.Mbt.Runner.f_kind)
        stats.Mbt.Runner.programs f.Mbt.Runner.f_detail;
      let f', candidates = Mbt.Runner.shrink ?mutation ~budget:shrink_budget f in
      Printf.printf "mbt: shrunk %d -> %d op(s) in %d candidate(s):\n"
        (List.length f.Mbt.Runner.f_program)
        (List.length f'.Mbt.Runner.f_program)
        candidates;
      List.iteri
        (fun i op -> Printf.printf "  op %d: %s\n" i (Format.asprintf "%a" Mbt.Program.pp_op op))
        f'.Mbt.Runner.f_program;
      (match save with
      | Some path ->
          Mbt.Runner.save_repro ~path ?mutation f';
          Printf.printf "mbt: repro written to %s\n" path
      | None -> ());
      (* A finding is the expected outcome under an injected mutation (the
         harness killed the mutant) and a failure otherwise. *)
      mutation <> None

let mbt smoke replay repros mutation_name seed_base n_seeds per_seed shrink_budget save =
  let mutation =
    match mutation_name with
    | None -> None
    | Some n -> (
        match Mbt.Exec.mutation_of_name n with
        | Some m -> Some m
        | None ->
            Printf.eprintf "mbt: unknown mutation %S (known: %s)\n" n
              (String.concat ", " (List.map Mbt.Exec.mutation_name Mbt.Exec.mutations));
            exit 2)
  in
  let ok =
    if smoke then begin
      (* CI budget: a clean mini-campaign, one kill check per mutation, and a
         replay of the committed repro corpus. *)
      let clean =
        run_campaign ~require_seq:true ~seed_base:"smoke" ~n_seeds:2 ~per_seed:20 ~shrink_budget
          ~save:None ()
      in
      let kills =
        (* Seed chosen (deterministically probed) so every mutation is
           found well inside the budget; the [--programs] headroom guards
           against generator drift, not randomness. *)
        List.for_all
          (fun m ->
            run_campaign ~mutation:m ~seed_base:"rk-4" ~n_seeds:1 ~per_seed:80
              ~shrink_budget:120 ~save:None ())
          Mbt.Exec.mutations
      in
      let repros_ok =
        if Sys.file_exists "test/repros" && Sys.is_directory "test/repros" then
          replay_repro_dir "test/repros"
        else true
      in
      clean && kills && repros_ok
    end
    else
      match (replay, repros) with
      | Some path, _ -> replay_one path
      | None, Some dir -> replay_repro_dir dir
      | None, None ->
          run_campaign ?mutation ~seed_base ~n_seeds ~per_seed ~shrink_budget ~save ()
  in
  if ok then 0 else 1

let mbt_cmd =
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"CI smoke: small clean campaign, one kill check per injected mutation, and a \
                   replay of test/repros/")
  in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE" ~doc:"Replay one committed repro file")
  in
  let repros =
    Arg.(value & opt (some string) None
         & info [ "repros" ] ~docv:"DIR" ~doc:"Replay every .repro file in $(docv)")
  in
  let mutation =
    Arg.(value & opt (some string) None
         & info [ "mutation" ] ~docv:"NAME"
             ~doc:"Inject a named stack mutation; the campaign must find and shrink a disagreement \
                   (drop-derived-restriction, ignore-expiry, misbind-proof, ignore-bulletin, \
                   ignore-sequence-order, reset-progress-on-retry)")
  in
  let seed_base =
    Arg.(value & opt string "mbt" & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed base")
  in
  let n_seeds =
    Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"N" ~doc:"Number of campaign seeds")
  in
  let per_seed =
    Arg.(value & opt int 200 & info [ "programs" ] ~docv:"M" ~doc:"Programs per seed")
  in
  let shrink_budget =
    Arg.(value & opt int 400 & info [ "shrink-budget" ] ~docv:"N" ~doc:"Shrink candidate budget")
  in
  let save =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE" ~doc:"Write the shrunk finding as a repro file")
  in
  Cmd.v
    (Cmd.info "mbt"
       ~doc:
         "Model-based conformance testing: run generated authorization programs against the real \
          stack (verification cache on and off) and a pure reference model; disagreements shrink \
          to minimal replayable repro files. Exits non-zero on an unexpected disagreement, or — \
          under --mutation — when the injected bug survives.")
    Term.(const mbt $ smoke $ replay $ repros $ mutation $ seed_base $ n_seeds $ per_seed
          $ shrink_budget $ save)

(* --- wire-codec fuzzing --- *)

let fuzz smoke iters seed corpus save_corpus =
  let report (s : Mbt.Fuzz.stats) =
    Printf.printf
      "fuzz: %d mutant(s) (%d from the sequence seed): wire decode ok/err %d/%d, typed decode \
       ok/err %d/%d, %d crash(es)\n"
      s.Mbt.Fuzz.iterations s.Mbt.Fuzz.seq_iters s.Mbt.Fuzz.decode_ok s.Mbt.Fuzz.decode_error
      s.Mbt.Fuzz.typed_ok s.Mbt.Fuzz.typed_error
      (List.length s.Mbt.Fuzz.crashes);
    List.iter
      (fun (c : Mbt.Fuzz.crash) ->
        Printf.printf "  CRASH seed=%s stage=%s: %s\n    input: %s\n" c.Mbt.Fuzz.c_seed
          c.Mbt.Fuzz.c_stage c.Mbt.Fuzz.c_exn c.Mbt.Fuzz.c_input_hex)
      s.Mbt.Fuzz.crashes;
    s.Mbt.Fuzz.crashes = []
  in
  let replay_dir dir =
    let r = Mbt.Fuzz.replay_corpus ~dir in
    Printf.printf "fuzz: corpus %s: %d file(s), %d failure(s)\n" dir r.Mbt.Fuzz.files
      (List.length r.Mbt.Fuzz.failures);
    List.iter (fun (f, e) -> Printf.printf "  FAIL %s: %s\n" f e) r.Mbt.Fuzz.failures;
    r.Mbt.Fuzz.files > 0 && r.Mbt.Fuzz.failures = []
  in
  let ok =
    match save_corpus with
    | Some dir ->
        let n = Mbt.Fuzz.save_corpus ~dir in
        Printf.printf "fuzz: wrote %d corpus file(s) to %s\n" n dir;
        replay_dir dir
    | None ->
        if smoke then
          let stats = Mbt.Fuzz.run ~seed:"fuzz-smoke" ~iters:2_000 in
          let run_ok = report stats in
          let seq_ok =
            if stats.Mbt.Fuzz.seq_iters = 0 then begin
              Printf.printf "fuzz: FAIL — no mutants drawn from the sequence-restriction seed\n";
              false
            end
            else true
          in
          let corpus_ok =
            if Sys.file_exists "test/fuzz_corpus" && Sys.is_directory "test/fuzz_corpus" then
              replay_dir "test/fuzz_corpus"
            else true
          in
          run_ok && seq_ok && corpus_ok
        else (
          match corpus with
          | Some dir -> replay_dir dir
          | None -> report (Mbt.Fuzz.run ~seed ~iters))
  in
  if ok then 0 else 1

let fuzz_cmd =
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"CI smoke: 2000 deterministic mutants plus a replay of test/fuzz_corpus/")
  in
  let iters =
    Arg.(value & opt int 20_000 & info [ "iters" ] ~docv:"N" ~doc:"Number of mutants")
  in
  let seed =
    Arg.(value & opt string "fuzz" & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed")
  in
  let corpus =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR" ~doc:"Replay every .hex file in $(docv)")
  in
  let save_corpus =
    Arg.(value & opt (some string) None
         & info [ "save-corpus" ] ~docv:"DIR"
             ~doc:"(Re)generate the deterministic seed + mutant corpus into $(docv)")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Mutation-based fuzzing of the wire codecs: every valid seed value must round-trip, and \
          no mutant may crash a decoder — malformed inputs fail closed with an error. Exits \
          non-zero on any crash or round-trip failure.")
    Term.(const fuzz $ smoke $ iters $ seed $ corpus $ save_corpus)

let main =
  Cmd.group
    (Cmd.info "proxykit" ~version:"1.0.0"
       ~doc:"Restricted proxies for distributed authorization and accounting (Neuman, ICDCS '93)")
    [ selftest_cmd; demo_cmd; keygen_cmd; inspect_cmd; bench_cmd; bench_check_cmd; chaos_cmd;
      cluster_cmd; seq_cmd; revoke_cmd; federate_cmd; load_cmd; trace_cmd; mbt_cmd; fuzz_cmd ]

let () = exit (Cmd.eval' main)
