(** Link-level (chain-prefix) memo cache for public-key cascade walks.

    [Verify_cache] memoizes individual signature verifications, so a
    depth-k cascade re-presented by the same holder costs k cache probes
    (and zero RSA) per presentation. This cache works one level up: it
    memoizes the {e verified walk state} of every chain prefix, keyed by a
    rolling digest over the certificate bytes. A presentation whose prefix
    was walked before resumes after the longest cached prefix, so:

    - M holders whose chains extend one shared depth-k cascade (the
      paper's Figure 4 fan-out) cost O(k+M) RSA verifications in total —
      the shared prefix is walked once and every holder pays only for its
      own tail — instead of the O(k·M) a whole-signature-granularity
      cache charges (each of the M distinct chains verified end to end);
    - a re-presentation of an already-seen chain is a single digest
      lookup, not k per-signature probes.

    What a prefix hit does {e not} skip: certificate time windows and
    revocation are re-checked for every link of the cached prefix on every
    presentation (the state retains each certificate's body for exactly
    this purpose), and restriction checks and proofs of possession run as
    always. Only the RSA signature walk — immutable bytes, deterministic
    outcome — is amortized, the same contract as [Verify_cache].

    Invalidation mirrors [Verify_cache]: entries carry lazy generation
    tags; {!bump_generation} (fired by [Authz.Guard] when a revocation
    bulletin extends coverage) is O(1) and retires every cached prefix at
    once, because a hashed prefix digest cannot be mapped back to the
    revoked link it embeds. Even a hit that somehow survived would not
    grant revoked authority — the per-link revocation re-check above
    refuses it — the bump only forces the RSA walk to be re-paid. *)

type state = {
  s_last : Proxy_cert.pk_cert;  (** resume point: signs/classifies the next link *)
  s_bodies : Proxy_cert.body list;
      (** head..last — re-checked (window + revocation) on every hit *)
  s_restrictions : Restriction.t list;  (** accumulated, grantee-discharged *)
  s_pending : Restriction.t list;  (** last link's Grantee restrictions, undischarged *)
  s_serials_rev : string list;  (** serials, most recent first *)
  s_expires : int;  (** min expiry over the prefix *)
  s_len : int;  (** number of certificates covered *)
}

type t

type stats = { hits : int; misses : int; evictions : int; invalidations : int; size : int }

val create :
  ?capacity:int ->
  ?ttl_us:int ->
  ?on_evict:(unit -> unit) ->
  ?on_invalidate:(unit -> unit) ->
  unit ->
  t
(** Defaults: capacity 1024 prefixes, TTL one simulated hour (the same
    freshness backstop as [Verify_cache] — the operative revocation path
    is {!bump_generation}). Capacity 0 disables the cache: every probe
    misses, nothing is recorded. *)

val digests : Proxy_cert.pk_cert list -> string array
(** Rolling prefix digests: element [i] covers certificates [0..i]
    (complete bytes — body, proxy key, signer tag {e and} signature, so a
    re-signed or tampered certificate can never collide with a verified
    prefix). Cost: one encode + SHA-256 per certificate. *)

val find_longest : t -> now:int -> string array -> (int * state) option
(** Probe the digests longest-first and return [(len, state)] for the
    longest cached, fresh, current-generation prefix. Counts exactly one
    hit or one miss per call (not per probe). *)

val record : t -> now:int -> key:string -> state -> unit
(** Remember a verified prefix under its digest. Only call after every
    certificate of the prefix passed signature, window and revocation
    checks. Re-recording refreshes TTL and eviction rank. *)

val flush : t -> unit
val bump_generation : t -> int
(** O(1) lazy retirement of every current entry; returns the number
    retired and charges them to [stats.invalidations] exactly (see
    [Verify_cache.bump_generation]). *)

val generation : t -> int
val stats : t -> stats
val size : t -> int
val capacity : t -> int
