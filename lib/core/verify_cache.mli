(** Bounded memo cache for successful signature verifications.

    A depth-k public-key cascade (Figure 4) presented N times costs N*k RSA
    verifications at the end server; since certificates are immutable bytes
    and verification is deterministic, k of those suffice. The cache
    remembers {e (signed bytes, signature, verifying key)} triples — hashed
    together into one key — that verified successfully, so re-presentations
    skip straight to the cheap checks.

    What is deliberately {e not} cached:

    - certificate time windows and restriction checks — they depend on the
      request and the current time, so the verifier re-runs them on every
      presentation, cached or not; an expired certificate is refused even
      when its signature is remembered;
    - failures — a tampered certificate hashes to a different key, misses,
      and fails the real verification every time.

    Entries also carry a TTL (defaulting to [Pki.Resolver]'s): a cached
    verification asserts "this key signed these bytes", and the binding of
    that key to a principal is only as fresh as the resolver's cache, so
    both expire on the same clock.

    {b Revocation does not wait for the TTL.} The TTL is a freshness
    backstop only; the operative guarantee is {e explicit invalidation}:
    when a revocation bulletin applies ([Revocation] / [Authz.Guard]),
    the holder calls {!invalidate} for a known key or {!bump_generation}
    to retire every current entry at once, and invalidated entries can
    never be re-hit — the next presentation re-runs the full signature
    walk, where the verifier's revocation check refuses the revoked link.
    (Even a stale entry that somehow survived would not grant access:
    the verifier re-checks time windows, restrictions, {e and} revocation
    on every presentation; the cache only memoizes the RSA operation.)

    The cache is FIFO-bounded; hit/miss/eviction/invalidation totals are
    kept here and callers (e.g. [Authz.Guard]) mirror them into
    [Sim.Metrics]. *)

type t

type stats = { hits : int; misses : int; evictions : int; invalidations : int; size : int }

val create :
  ?capacity:int ->
  ?ttl_us:int ->
  ?on_evict:(unit -> unit) ->
  ?on_invalidate:(unit -> unit) ->
  unit ->
  t
(** Defaults: capacity 1024 entries, TTL one simulated hour. [on_evict]
    fires once per capacity eviction (not on TTL expiry); [on_invalidate]
    fires once per entry dropped by {!invalidate} or {!bump_generation}. A
    [capacity] of 0 creates a {e disabled} cache: {!check} always misses
    and {!record} is a no-op — differential tests use it to run identical
    guard wiring with caching off. *)

val key : signed_bytes:string -> signature:string -> signer:string -> string
(** Cache key for a verification: SHA-256 over the length-framed signed
    bytes, signature, and serialized verifying key. *)

val check : t -> now:int -> string -> bool
(** [check t ~now key] is [true] when this verification succeeded before
    and the entry is still within its TTL. Counts a hit or a miss; expired
    entries are dropped and count as misses. *)

val record : t -> now:int -> string -> unit
(** Remember a successful verification, evicting the {e least recently
    recorded} entry when at capacity. Re-recording an existing key
    refreshes both its TTL and its eviction rank, so an entry that keeps
    being re-verified survives capacity churn instead of being first out
    of the door. Only call on success. *)

val flush : t -> unit
(** Drop all entries (counters are kept). *)

val invalidate : t -> string -> unit
(** Drop one entry by cache key, counting an invalidation if it was
    present. Used when the caller can name the exact verification to
    distrust (the keys are hashes, so this requires re-deriving the key
    from the certificate bytes). *)

val bump_generation : t -> int
(** Retire the {e whole} current generation: every entry is dropped and
    counted as an invalidation, and the generation counter advances.
    Returns the number of entries retired. This is the revocation-storm
    path: cache keys are one-way hashes, so a revoked link cannot be
    mapped back to the dependent entries — the bulletin holder retires
    everything and lets honest traffic repopulate the cache.

    The retirement is lazy: entries carry generation tags and the bump
    itself is O(1) apart from firing [on_invalidate] once per entry
    retired ([stats.invalidations] stays exact — the maintained live
    count is charged at bump time). Dead-generation entries are reaped
    as later lookups, evictions and compactions encounter them, so a
    storm of consecutive bumps costs O(entries live at the first bump),
    not O(bumps x table size). *)

val generation : t -> int
(** Starts at 0; incremented by every {!bump_generation}. *)

val stats : t -> stats
val size : t -> int
val capacity : t -> int
