type currency = string

type authorized_entry = { target : string; ops : string list }

type seq_step = {
  step_op : string;
  step_server : Principal.t option;
  step_target : string option;
}

type t =
  | Grantee of Principal.t list * int
  | For_use_by_group of Principal.Group.t list * int
  | Issued_for of Principal.t list
  | Quota of currency * int
  | Authorized of authorized_entry list
  | Group_membership of string list
  | Accept_once of string
  | Sequence of seq_step list
  | Limit_restriction of Principal.t list * t list
  | Unknown of string

let seq_step_equal a b =
  a.step_op = b.step_op
  && Option.equal Principal.equal a.step_server b.step_server
  && Option.equal String.equal a.step_target b.step_target

(* A usable sequence is non-empty with pairwise-distinct steps: duplicate
   steps would make "which step just ran" ambiguous, so both the decoder
   and the checker refuse them (fail closed). *)
let seq_validate steps =
  if steps = [] then Error "sequence: empty step list"
  else
    let rec dup = function
      | [] -> false
      | st :: rest -> List.exists (seq_step_equal st) rest || dup rest
    in
    if dup steps then Error "sequence: duplicate step" else Ok ()

let rec equal a b =
  match (a, b) with
  | Grantee (ps, q), Grantee (ps', q') ->
      q = q' && List.length ps = List.length ps' && List.for_all2 Principal.equal ps ps'
  | For_use_by_group (gs, q), For_use_by_group (gs', q') ->
      q = q' && List.length gs = List.length gs' && List.for_all2 Principal.Group.equal gs gs'
  | Issued_for ss, Issued_for ss' ->
      List.length ss = List.length ss' && List.for_all2 Principal.equal ss ss'
  | Quota (c, n), Quota (c', n') -> c = c' && n = n'
  | Authorized es, Authorized es' -> es = es'
  | Group_membership gs, Group_membership gs' -> gs = gs'
  | Accept_once id, Accept_once id' -> id = id'
  | Sequence steps, Sequence steps' ->
      List.length steps = List.length steps' && List.for_all2 seq_step_equal steps steps'
  | Limit_restriction (ss, rs), Limit_restriction (ss', rs') ->
      List.length ss = List.length ss'
      && List.for_all2 Principal.equal ss ss'
      && List.length rs = List.length rs'
      && List.for_all2 equal rs rs'
  | Unknown tag, Unknown tag' -> tag = tag'
  | ( ( Grantee _ | For_use_by_group _ | Issued_for _ | Quota _ | Authorized _
      | Group_membership _ | Accept_once _ | Sequence _ | Limit_restriction _ | Unknown _ ),
      _ ) ->
      false

let pp_seq_step fmt st =
  Format.fprintf fmt "%s%s%s" st.step_op
    (match st.step_server with
    | None -> ""
    | Some s -> "@" ^ Principal.to_string s)
    (match st.step_target with None -> "" | Some tg -> "/" ^ tg)

let rec pp fmt = function
  | Grantee (ps, q) ->
      Format.fprintf fmt "grantee(%d of [%s])" q
        (String.concat "; " (List.map Principal.to_string ps))
  | For_use_by_group (gs, q) ->
      Format.fprintf fmt "for-use-by-group(%d of [%s])" q
        (String.concat "; " (List.map Principal.Group.to_string gs))
  | Issued_for ss ->
      Format.fprintf fmt "issued-for[%s]" (String.concat "; " (List.map Principal.to_string ss))
  | Quota (c, n) -> Format.fprintf fmt "quota(%s, %d)" c n
  | Authorized es ->
      let entry e =
        if e.ops = [] then e.target else e.target ^ ":" ^ String.concat "," e.ops
      in
      Format.fprintf fmt "authorized[%s]" (String.concat "; " (List.map entry es))
  | Group_membership gs -> Format.fprintf fmt "group-membership[%s]" (String.concat "; " gs)
  | Accept_once id -> Format.fprintf fmt "accept-once(%s)" id
  | Sequence steps ->
      Format.fprintf fmt "sequence[%a]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " -> ") pp_seq_step)
        steps
  | Limit_restriction (ss, rs) ->
      Format.fprintf fmt "limit-restriction([%s], [%a])"
        (String.concat "; " (List.map Principal.to_string ss))
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp)
        rs
  | Unknown tag -> Format.fprintf fmt "unknown(%s)" tag

let rec to_wire = function
  | Grantee (ps, q) ->
      Wire.L [ Wire.S "grantee"; Wire.L (List.map Principal.to_wire ps); Wire.I q ]
  | For_use_by_group (gs, q) ->
      Wire.L
        [ Wire.S "for-use-by-group"; Wire.L (List.map Principal.Group.to_wire gs); Wire.I q ]
  | Issued_for ss -> Wire.L [ Wire.S "issued-for"; Wire.L (List.map Principal.to_wire ss) ]
  | Quota (c, n) -> Wire.L [ Wire.S "quota"; Wire.S c; Wire.I n ]
  | Authorized es ->
      let entry e = Wire.L [ Wire.S e.target; Wire.L (List.map (fun o -> Wire.S o) e.ops) ] in
      Wire.L [ Wire.S "authorized"; Wire.L (List.map entry es) ]
  | Group_membership gs ->
      Wire.L [ Wire.S "group-membership"; Wire.L (List.map (fun g -> Wire.S g) gs) ]
  | Accept_once id -> Wire.L [ Wire.S "accept-once"; Wire.S id ]
  | Sequence steps ->
      let step st =
        Wire.L
          [ Wire.S st.step_op;
            Wire.L (match st.step_server with None -> [] | Some s -> [ Principal.to_wire s ]);
            Wire.L (match st.step_target with None -> [] | Some tg -> [ Wire.S tg ]) ]
      in
      Wire.L [ Wire.S "sequence"; Wire.L (List.map step steps) ]
  | Limit_restriction (ss, rs) ->
      Wire.L
        [ Wire.S "limit-restriction";
          Wire.L (List.map Principal.to_wire ss);
          Wire.L (List.map to_wire rs) ]
  | Unknown tag -> Wire.L [ Wire.S tag ]

let map_result f l =
  List.fold_right
    (fun x acc -> Result.bind acc (fun tl -> Result.map (fun h -> h :: tl) (f x)))
    l (Ok [])

let rec of_wire v =
  let open Wire in
  let* tag = Result.bind (field v 0) to_string in
  match tag with
  | "grantee" ->
      let* ps = Result.bind (field v 1) to_list in
      let* ps = map_result Principal.of_wire ps in
      let* q = Result.bind (field v 2) to_int in
      if q < 1 then Error "grantee: quorum must be at least 1" else Ok (Grantee (ps, q))
  | "for-use-by-group" ->
      let* gs = Result.bind (field v 1) to_list in
      let* gs = map_result Principal.Group.of_wire gs in
      let* q = Result.bind (field v 2) to_int in
      if q < 1 then Error "for-use-by-group: quorum must be at least 1"
      else Ok (For_use_by_group (gs, q))
  | "issued-for" ->
      let* ss = Result.bind (field v 1) to_list in
      let* ss = map_result Principal.of_wire ss in
      Ok (Issued_for ss)
  | "quota" ->
      let* c = Result.bind (field v 1) to_string in
      let* n = Result.bind (field v 2) to_int in
      if n < 0 then Error "quota: negative limit" else Ok (Quota (c, n))
  | "authorized" ->
      let* es = Result.bind (field v 1) to_list in
      let entry e =
        let* target = Result.bind (field e 0) to_string in
        let* ops = Result.bind (field e 1) to_list in
        let* ops = map_result to_string ops in
        Ok { target; ops }
      in
      let* es = map_result entry es in
      Ok (Authorized es)
  | "group-membership" ->
      let* gs = Result.bind (field v 1) to_list in
      let* gs = map_result to_string gs in
      Ok (Group_membership gs)
  | "accept-once" ->
      let* id = Result.bind (field v 1) to_string in
      Ok (Accept_once id)
  | "sequence" ->
      let* steps_w = Result.bind (field v 1) to_list in
      let step w =
        let* step_op = Result.bind (field w 0) to_string in
        let* sv = Result.bind (field w 1) to_list in
        let* step_server =
          match sv with
          | [] -> Ok None
          | [ p ] -> Result.map Option.some (Principal.of_wire p)
          | _ -> Error "sequence: malformed step server"
        in
        let* tv = Result.bind (field w 2) to_list in
        let* step_target =
          match tv with
          | [] -> Ok None
          | [ s ] -> Result.map Option.some (to_string s)
          | _ -> Error "sequence: malformed step target"
        in
        Ok { step_op; step_server; step_target }
      in
      let* steps = map_result step steps_w in
      let* () = seq_validate steps in
      Ok (Sequence steps)
  | "limit-restriction" ->
      let* ss = Result.bind (field v 1) to_list in
      let* ss = map_result Principal.of_wire ss in
      let* rs = Result.bind (field v 2) to_list in
      let* rs = map_result of_wire rs in
      Ok (Limit_restriction (ss, rs))
  | other -> Ok (Unknown other)

let list_to_wire rs = Wire.L (List.map to_wire rs)
let list_of_wire v = Result.bind (Wire.to_list v) (map_result of_wire)

type request = {
  server : Principal.t;
  time : int;
  operation : string;
  target : string;
  presenters : Principal.t list;
  groups_asserted : Principal.Group.t list;
  claimed_memberships : string list;
  spend : (currency * int) option;
  accept_once_seen : string -> bool;
  sequence_progress : string -> int;
}

let request ~server ~time ~operation ?(target = "") ?(presenters = []) ?(groups_asserted = [])
    ?(claimed_memberships = []) ?spend ?(accept_once_seen = fun _ -> false)
    ?(sequence_progress = fun _ -> 0) () =
  {
    server;
    time;
    operation;
    target;
    presenters;
    groups_asserted;
    claimed_memberships;
    spend;
    accept_once_seen;
    sequence_progress;
  }

(* The canonical form of a sequence is its own wire encoding: two sequences
   share progress state iff their encodings are byte-identical. *)
let seq_canonical steps = Wire.encode (to_wire (Sequence steps))

(* Progress-tracker key: the canonical sequence scoped under the presented
   chain's head serial (wire-framed, so binary serials cannot collide with a
   crafted canonical form). Keyed like accept-once state: revoking the
   grantor sheds it, and two chains derived from one grant share progress. *)
let seq_key ~head canon = Wire.encode (Wire.L [ Wire.S head; Wire.S canon ])

let seq_key_parse key =
  let open Wire in
  let* v = decode key in
  let* head = Result.bind (field v 0) to_string in
  let* canon = Result.bind (field v 1) to_string in
  let* cv = decode canon in
  let* r = of_wire cv in
  match r with
  | Sequence steps -> Ok (head, steps)
  | _ -> Error "sequence key does not carry a sequence restriction"

let tighten_sequence ~keep steps =
  let keep = max 1 (min keep (List.length steps)) in
  List.filteri (fun i _ -> i < keep) steps

let rec check r req =
  match r with
  | Grantee (ps, q) ->
      let present = List.filter (fun p -> List.exists (Principal.equal p) req.presenters) ps in
      if List.length present >= q then Ok ()
      else
        Error
          (Printf.sprintf "grantee: %d of the named principals present, %d required"
             (List.length present) q)
  | For_use_by_group (gs, q) ->
      let asserted =
        List.filter (fun g -> List.exists (Principal.Group.equal g) req.groups_asserted) gs
      in
      if List.length asserted >= q then Ok ()
      else
        Error
          (Printf.sprintf "for-use-by-group: %d of the named groups asserted, %d required"
             (List.length asserted) q)
  | Issued_for ss ->
      if List.exists (Principal.equal req.server) ss then Ok ()
      else
        Error
          (Printf.sprintf "issued-for: %s may not accept this proxy"
             (Principal.to_string req.server))
  | Quota (c, limit) -> (
      match req.spend with
      | Some (c', amount) when c = c' ->
          if amount <= limit then Ok ()
          else Error (Printf.sprintf "quota: %d %s exceeds limit %d" amount c limit)
      | Some _ | None -> Ok ())
  | Authorized entries ->
      let permits (e : authorized_entry) =
        e.target = req.target && (e.ops = [] || List.mem req.operation e.ops)
      in
      if List.exists permits entries then Ok ()
      else
        Error
          (Printf.sprintf "authorized: %s on %S not in the authorized list" req.operation
             req.target)
  | Group_membership gs ->
      let outside = List.filter (fun g -> not (List.mem g gs)) req.claimed_memberships in
      if outside = [] then Ok ()
      else Error (Printf.sprintf "group-membership: %s not covered" (String.concat "," outside))
  | Accept_once id ->
      if req.accept_once_seen id then Error (Printf.sprintf "accept-once: %s already used" id)
      else Ok ()
  | Sequence steps -> (
      match seq_validate steps with
      | Error e -> Error e
      | Ok () ->
          let len = List.length steps in
          let k = req.sequence_progress (seq_canonical steps) in
          if k >= len then
            Error (Printf.sprintf "sequence: all %d steps already consumed" len)
          else
            let st = List.nth steps k in
            if st.step_op <> req.operation then
              Error
                (Printf.sprintf "sequence: step %d permits %s, not %s" k st.step_op
                   req.operation)
            else if
              match st.step_server with
              | Some s -> not (Principal.equal s req.server)
              | None -> false
            then
              Error
                (Printf.sprintf "sequence: step %d is not for server %s" k
                   (Principal.to_string req.server))
            else if
              match st.step_target with Some tg -> tg <> req.target | None -> false
            then
              Error
                (Printf.sprintf "sequence: step %d is not for target %S" k req.target)
            else Ok ())
  | Limit_restriction (ss, rs) ->
      if List.exists (Principal.equal req.server) ss then check_all rs req else Ok ()
  | Unknown tag -> Error (Printf.sprintf "unknown restriction type %S" tag)

and check_all rs req =
  List.fold_left (fun acc r -> Result.bind acc (fun () -> check r req)) (Ok ()) rs

let propagate ~issued_for rs =
  if issued_for = [] then invalid_arg "Restriction.propagate: issued_for must be non-empty";
  let reaches servers = List.exists (fun s -> List.exists (Principal.equal s) issued_for) servers in
  let kept =
    List.filter
      (fun r -> match r with Limit_restriction (ss, _) -> reaches ss | _ -> true)
      rs
  in
  Issued_for issued_for :: kept
