type t = {
  entries : (string, int) Hashtbl.t; (* identifier -> expiry *)
  capacity : int;
  on_evict : unit -> unit;
}

let default_capacity = 1 lsl 17
let no_evict () = ()

let create ?(capacity = default_capacity) ?(on_evict = no_evict) () =
  if capacity < 1 then invalid_arg "Replay_cache.create: capacity must be positive";
  { entries = Hashtbl.create 64; capacity; on_evict }

let seen t ~now id =
  match Hashtbl.find_opt t.entries id with
  | None -> false
  | Some expires ->
      if expires > now then true
      else begin
        Hashtbl.remove t.entries id;
        false
      end

let purge t ~now =
  let stale =
    Hashtbl.fold (fun id expires acc -> if expires <= now then id :: acc else acc) t.entries []
  in
  List.iter (Hashtbl.remove t.entries) stale

(* Capacity pressure: purge the dead first; if the cache is genuinely full
   of live identifiers, drop the one closest to its natural expiry — it is
   the one whose replay window closes soonest, so forgetting it early
   reopens the smallest window. *)
let evict_soonest t =
  match
    Hashtbl.fold
      (fun id expires best ->
        match best with
        | Some (_, e) when e <= expires -> best
        | _ -> Some (id, expires))
      t.entries None
  with
  | None -> ()
  | Some (id, _) ->
      Hashtbl.remove t.entries id;
      t.on_evict ()

let record t ~now ~expires id =
  if seen t ~now id then Error (Printf.sprintf "accept-once identifier %S already recorded" id)
  else begin
    if Hashtbl.length t.entries >= t.capacity then begin
      purge t ~now;
      if Hashtbl.length t.entries >= t.capacity then evict_soonest t
    end;
    Hashtbl.replace t.entries id expires;
    Ok ()
  end

let size t = Hashtbl.length t.entries
let capacity t = t.capacity
