type t = {
  entries : (string, int * int * string option) Hashtbl.t;
      (* identifier -> (expiry, insertion seq, tag) *)
  capacity : int;
  on_evict : unit -> unit;
  mutable next_seq : int;
      (* monotonic insertion counter — the eviction tie-break. Hashtbl fold
         order depends on resize history, so two caches holding the same
         entries can disagree about which of several equal-expiry entries
         "comes first"; the seq makes the soonest-expiry pick total. *)
}

let default_capacity = 1 lsl 17
let no_evict () = ()

let create ?(capacity = default_capacity) ?(on_evict = no_evict) () =
  if capacity < 1 then invalid_arg "Replay_cache.create: capacity must be positive";
  { entries = Hashtbl.create 64; capacity; on_evict; next_seq = 0 }

let seen t ~now id =
  match Hashtbl.find_opt t.entries id with
  | None -> false
  | Some (expires, _, _) ->
      if expires > now then true
      else begin
        Hashtbl.remove t.entries id;
        false
      end

let purge t ~now =
  let stale =
    Hashtbl.fold
      (fun id (expires, _, _) acc -> if expires <= now then id :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) stale

(* Capacity pressure: purge the dead first; if the cache is genuinely full
   of live identifiers, drop the one closest to its natural expiry — it is
   the one whose replay window closes soonest, so forgetting it early
   reopens the smallest window. Expiry ties break by insertion seq (oldest
   first), never by hash iteration order. *)
let evict_soonest t =
  match
    Hashtbl.fold
      (fun id (expires, seq, _) best ->
        match best with
        | Some (_, e, s) when (e, s) <= (expires, seq) -> best
        | _ -> Some (id, expires, seq))
      t.entries None
  with
  | None -> ()
  | Some (id, _, _) ->
      Hashtbl.remove t.entries id;
      t.on_evict ()

let record t ~now ~expires ?tag id =
  if seen t ~now id then Error (Printf.sprintf "accept-once identifier %S already recorded" id)
  else begin
    if Hashtbl.length t.entries >= t.capacity then begin
      purge t ~now;
      if Hashtbl.length t.entries >= t.capacity then evict_soonest t
    end;
    Hashtbl.replace t.entries id (expires, t.next_seq, tag);
    t.next_seq <- t.next_seq + 1;
    Ok ()
  end

(* Revocation cleanup: a bulletin that kills a grantor makes every
   accept-once identifier recorded under that grantor's authority moot —
   the credential that carried it can no longer verify, so keeping the
   record only burns capacity and, worse, collides with a legitimately
   re-issued credential that reuses the identifier (a re-drawn check
   number). One O(size) fold per freshly revoked tag; bounded by the
   capacity and far rarer than record/seen traffic. *)
let shed t ~tag =
  let doomed =
    Hashtbl.fold
      (fun id (_, _, tg) acc -> if tg = Some tag then id :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) doomed;
  List.length doomed

let size t = Hashtbl.length t.entries
let capacity t = t.capacity
