(** Accept-once replay cache (Section 7.7).

    "Once a check is paid, the accounting server keeps track of the check
    number until the expiration time on the check. If, within that period,
    another check with the same number is seen, it is rejected." Entries
    expire with the proxy that carried them; an explicit capacity bound
    caps memory even if an adversary floods the server with long-lived
    identifiers. When full, expired entries are purged first; if all are
    live, the identifier with the {e soonest} expiry is dropped (the
    smallest replay window is reopened) and [on_evict] fires. *)

type t

val create : ?capacity:int -> ?on_evict:(unit -> unit) -> unit -> t
(** Default capacity: 131072 identifiers. *)

val seen : t -> now:int -> string -> bool
(** Has this identifier been recorded and not yet expired? *)

val record : t -> now:int -> expires:int -> ?tag:string -> string -> (unit, string) result
(** Remember an identifier until [expires]. Fails if it is already live —
    callers can rely on record-if-absent being atomic. [tag] optionally
    names the authority the identifier was accepted under (the proxy
    chain's grantor): {!shed} can then retire all of an authority's
    records at once when a revocation bulletin kills it. *)

val shed : t -> tag:string -> int
(** Drop every entry recorded with [tag], returning how many were
    dropped. Called when a revocation bulletin kills the tagged grantor:
    the entries' credentials can no longer verify, so the records are
    dead weight — and a legitimately re-issued credential (same
    accept-once identifier, fresh post-revocation grant) must not collide
    with them. *)

val size : t -> int
val capacity : t -> int
val purge : t -> now:int -> unit
(** Drop expired entries (also happens incrementally during queries). *)
