type entry =
  | By_serial of string
  | By_grantor_epoch of { grantor : Principal.t; not_before : int }

type bulletin = {
  b_authority : Principal.t;
  b_epoch : int;
  b_issued_at : int;
  b_entries : entry list;
  b_signature : string;
}

let entry_to_wire = function
  | By_serial s -> Wire.L [ Wire.S "serial"; Wire.S s ]
  | By_grantor_epoch { grantor; not_before } ->
      Wire.L [ Wire.S "grantor-epoch"; Principal.to_wire grantor; Wire.I not_before ]

let entry_of_wire v =
  let open Wire in
  let* tag = Result.bind (field v 0) to_string in
  match tag with
  | "serial" ->
      let* s = Result.bind (field v 1) to_string in
      Ok (By_serial s)
  | "grantor-epoch" ->
      let* grantor = Result.bind (field v 1) Principal.of_wire in
      let* not_before = Result.bind (field v 2) to_int in
      Ok (By_grantor_epoch { grantor; not_before })
  | other -> Error (Printf.sprintf "revocation entry: unknown kind %S" other)

(* The signature covers this exact encoding; keeping it separate from the
   full wire form means a bulletin re-serialized by a relay still verifies. *)
let signed_bytes ~authority ~epoch ~issued_at entries =
  Wire.encode
    (Wire.L
       [
         Wire.S "revocation-bulletin";
         Principal.to_wire authority;
         Wire.I epoch;
         Wire.I issued_at;
         Wire.L (List.map entry_to_wire entries);
       ])

let sign ~key ~authority ~epoch ~issued_at entries =
  {
    b_authority = authority;
    b_epoch = epoch;
    b_issued_at = issued_at;
    b_entries = entries;
    b_signature = Crypto.Rsa.sign key (signed_bytes ~authority ~epoch ~issued_at entries);
  }

let verify_bulletin pub b =
  let msg =
    signed_bytes ~authority:b.b_authority ~epoch:b.b_epoch ~issued_at:b.b_issued_at b.b_entries
  in
  if Crypto.Rsa.verify pub ~msg ~signature:b.b_signature then Ok ()
  else Error "revocation bulletin: bad signature"

let bulletin_to_wire b =
  Wire.L
    [
      Wire.S "revocation-bulletin";
      Principal.to_wire b.b_authority;
      Wire.I b.b_epoch;
      Wire.I b.b_issued_at;
      Wire.L (List.map entry_to_wire b.b_entries);
      Wire.S b.b_signature;
    ]

let bulletin_of_wire v =
  let open Wire in
  let* tag = Result.bind (field v 0) to_string in
  if tag <> "revocation-bulletin" then Error "not a revocation bulletin"
  else
    let* b_authority = Result.bind (field v 1) Principal.of_wire in
    let* b_epoch = Result.bind (field v 2) to_int in
    let* b_issued_at = Result.bind (field v 3) to_int in
    let* entries_w = Result.bind (field v 4) to_list in
    let* b_entries =
      List.fold_left
        (fun acc w ->
          let* acc = acc in
          let* e = entry_of_wire w in
          Ok (e :: acc))
        (Ok []) entries_w
      |> Result.map List.rev
    in
    let* b_signature = Result.bind (field v 5) to_string in
    if b_epoch < 1 then Error "revocation bulletin: epoch must be positive"
    else Ok { b_authority; b_epoch; b_issued_at; b_entries; b_signature }

(* --- subscriber state --- *)

type t = {
  t_authority : Principal.t;
  authority_pub : Crypto.Rsa.public;
  t_staleness_bound_us : int;
  mutable t_epoch : int;
  mutable t_as_of : int;
  serials : (string, unit) Hashtbl.t;
  grantor_epochs : (string, int) Hashtbl.t;  (* grantor -> latest not_before *)
}

let default_staleness_bound_us = 30 * 60 * 1_000_000

let create ~authority ~authority_pub ?(staleness_bound_us = default_staleness_bound_us) ~now
    () =
  if staleness_bound_us < 1 then invalid_arg "Revocation.create: bound must be positive";
  {
    t_authority = authority;
    authority_pub;
    t_staleness_bound_us = staleness_bound_us;
    t_epoch = 0;
    t_as_of = now;
    serials = Hashtbl.create 16;
    grantor_epochs = Hashtbl.create 8;
  }

type applied = Applied of { fresh : int; fresh_entries : entry list } | Ignored

let apply t b =
  if not (Principal.equal b.b_authority t.t_authority) then
    Error
      (Printf.sprintf "bulletin from %s, expected authority %s"
         (Principal.to_string b.b_authority)
         (Principal.to_string t.t_authority))
  else
    match verify_bulletin t.authority_pub b with
    | Error _ as e -> e
    | Ok () ->
        if b.b_epoch <= t.t_epoch then Ok Ignored
        else begin
          (* Bulletins are cumulative: rebuild the lookup tables from
             scratch, counting how many entries extend the previous
             coverage (those are what warrant a cache invalidation). *)
          let fresh = ref 0 in
          let fresh_entries = ref [] in
          let note e =
            incr fresh;
            fresh_entries := e :: !fresh_entries
          in
          let serials = Hashtbl.create (max 16 (List.length b.b_entries)) in
          let grantor_epochs = Hashtbl.create 8 in
          List.iter
            (fun e ->
              match e with
              | By_serial s ->
                  if not (Hashtbl.mem t.serials s) then note e;
                  Hashtbl.replace serials s ()
              | By_grantor_epoch { grantor; not_before } ->
                  let g = Principal.to_string grantor in
                  let prev = Option.value (Hashtbl.find_opt t.grantor_epochs g) ~default:min_int in
                  if not_before > prev then note e;
                  let cur = Option.value (Hashtbl.find_opt grantor_epochs g) ~default:min_int in
                  if not_before > cur then Hashtbl.replace grantor_epochs g not_before)
            b.b_entries;
          Hashtbl.reset t.serials;
          Hashtbl.reset t.grantor_epochs;
          Hashtbl.iter (Hashtbl.replace t.serials) serials;
          Hashtbl.iter (Hashtbl.replace t.grantor_epochs) grantor_epochs;
          t.t_epoch <- b.b_epoch;
          t.t_as_of <- max t.t_as_of b.b_issued_at;
          Ok (Applied { fresh = !fresh; fresh_entries = List.rev !fresh_entries })
        end

let authority t = t.t_authority
let epoch t = t.t_epoch
let as_of t = t.t_as_of
let staleness_bound_us t = t.t_staleness_bound_us
let entry_count t = Hashtbl.length t.serials + Hashtbl.length t.grantor_epochs
let stale t ~now = now - t.t_as_of > t.t_staleness_bound_us

let short_serial s =
  let n = min 8 (String.length s) in
  String.sub s 0 n

let revoked t (body : Proxy_cert.body) =
  if Hashtbl.mem t.serials body.Proxy_cert.serial then
    Error (Printf.sprintf "certificate %s.. is revoked" (short_serial body.Proxy_cert.serial))
  else
    match Hashtbl.find_opt t.grantor_epochs (Principal.to_string body.Proxy_cert.grantor) with
    | Some not_before when body.Proxy_cert.issued_at < not_before ->
        Error
          (Printf.sprintf "grantor %s revoked certificates issued before %d"
             (Principal.to_string body.Proxy_cert.grantor)
             not_before)
    | Some _ | None -> Ok ()

let check t ~now body =
  if stale t ~now then
    Error
      (Printf.sprintf "revocation bulletin stale (as of %d, bound %dus): failing closed"
         t.t_as_of t.t_staleness_bound_us)
  else revoked t body
