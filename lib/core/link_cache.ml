type state = {
  s_last : Proxy_cert.pk_cert;
  s_bodies : Proxy_cert.body list;
  s_restrictions : Restriction.t list;
  s_pending : Restriction.t list;
  s_serials_rev : string list;
  s_expires : int;
  s_len : int;
}

(* Same bounded FIFO + lazy-generation machinery as [Verify_cache], with a
   structured value per entry instead of a bare membership bit. Kept as a
   twin rather than a functor: the two caches are small, hot, and easier
   to audit flat. *)
type t = {
  capacity : int;
  ttl_us : int;
  on_evict : unit -> unit;
  on_invalidate : unit -> unit;
  table : (string, int * int * int * state) Hashtbl.t;
      (* key -> (recorded_at, seq, generation, state) *)
  order : (string * int) Queue.t;
  mutable seq : int;
  mutable generation : int;
  mutable live : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type stats = { hits : int; misses : int; evictions : int; invalidations : int; size : int }

let default_capacity = 1024
let default_ttl_us = 3_600_000_000
let no_evict () = ()

let create ?(capacity = default_capacity) ?(ttl_us = default_ttl_us)
    ?(on_evict = no_evict) ?(on_invalidate = no_evict) () =
  if capacity < 0 then invalid_arg "Link_cache.create: capacity must be non-negative";
  if ttl_us < 1 then invalid_arg "Link_cache.create: ttl must be positive";
  {
    capacity;
    ttl_us;
    on_evict;
    on_invalidate;
    table = Hashtbl.create (min capacity 64);
    order = Queue.create ();
    seq = 0;
    generation = 0;
    live = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let frame s =
  let n = String.length s in
  String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff)) ^ s

let root = Crypto.Sha256.digest "link-cache-prefix-v1"

let digests certs =
  let n = List.length certs in
  let out = Array.make n "" in
  let _ =
    List.fold_left
      (fun (prev, i) cert ->
        let bytes = Wire.encode (Proxy_cert.pk_cert_to_wire cert) in
        let d = Crypto.Sha256.digest (prev ^ frame bytes) in
        out.(i) <- d;
        (d, i + 1))
      (root, 0) certs
  in
  out

let fresh t ~now inserted_at = inserted_at + t.ttl_us > now

(* Lookup without counting: reaps dead-generation and TTL-expired entries
   in passing, exactly like [Verify_cache.check]. *)
let peek t ~now k =
  match Hashtbl.find_opt t.table k with
  | Some (_, _, g, _) when g <> t.generation ->
      Hashtbl.remove t.table k;
      None
  | Some (recorded_at, _, _, st) when fresh t ~now recorded_at -> Some st
  | Some _ ->
      Hashtbl.remove t.table k;
      t.live <- t.live - 1;
      None
  | None -> None

let find_longest t ~now digests =
  if t.capacity = 0 then begin
    t.misses <- t.misses + 1;
    None
  end
  else begin
    let n = Array.length digests in
    let rec probe i =
      if i < 0 then None
      else
        match peek t ~now digests.(i) with
        | Some st when st.s_len = i + 1 -> Some (i + 1, st)
        | _ -> probe (i - 1)
    in
    match probe (n - 1) with
    | Some _ as hit ->
        t.hits <- t.hits + 1;
        hit
    | None ->
        t.misses <- t.misses + 1;
        None
  end

let evict_one t =
  let rec pop () =
    match Queue.take_opt t.order with
    | None -> ()
    | Some (k, seq) -> (
        match Hashtbl.find_opt t.table k with
        | Some (_, s, g, _) when s = seq && g = t.generation ->
            Hashtbl.remove t.table k;
            t.live <- t.live - 1;
            t.evictions <- t.evictions + 1;
            t.on_evict ()
        | Some (_, s, g, _) when s = seq && g <> t.generation ->
            Hashtbl.remove t.table k;
            pop ()
        | _ -> pop ())
  in
  pop ()

let compact t =
  if Queue.length t.order > 2 * t.capacity then begin
    let live = Queue.create () in
    Queue.iter
      (fun (k, seq) ->
        match Hashtbl.find_opt t.table k with
        | Some (_, s, g, _) when s = seq ->
            if g = t.generation then Queue.push (k, seq) live
            else Hashtbl.remove t.table k
        | _ -> ())
      t.order;
    Queue.clear t.order;
    Queue.transfer live t.order
  end

let record t ~now ~key st =
  if t.capacity = 0 then ()
  else begin
    let refresh =
      match Hashtbl.find_opt t.table key with
      | Some (_, _, g, _) when g = t.generation -> true
      | Some _ ->
          Hashtbl.remove t.table key;
          false
      | None -> false
    in
    if (not refresh) && t.live >= t.capacity then evict_one t;
    t.seq <- t.seq + 1;
    Hashtbl.replace t.table key (now, t.seq, t.generation, st);
    Queue.push (key, t.seq) t.order;
    if not refresh then t.live <- t.live + 1;
    compact t
  end

let flush t =
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.live <- 0

let bump_generation t =
  let n = t.live in
  t.generation <- t.generation + 1;
  t.live <- 0;
  t.invalidations <- t.invalidations + n;
  for _ = 1 to n do
    t.on_invalidate ()
  done;
  n

let generation t = t.generation

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    invalidations = t.invalidations;
    size = t.live;
  }

let size t = t.live
let capacity t = t.capacity
