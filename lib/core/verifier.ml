type base_info = {
  base_client : Principal.t;
  base_session_key : string;
  base_expires : int;
  base_restrictions : Restriction.t list;
}

type verified = {
  grantor : Principal.t;
  restrictions : Restriction.t list;
  expires : int;
  commitment : Presentation.commitment;
  chain_length : int;
  serials : string list;
}

let no_tally _ = ()

(* The core stays independent of the simulation layer, so span
   instrumentation arrives as an abstract wrapper: the guard passes one
   that opens a [Sim.Span] child per certificate; the default runs bare. *)
type span_hook = { wrap : 'a. name:string -> attrs:(string * string) list -> (unit -> 'a) -> 'a }

let no_hook = { wrap = (fun ~name:_ ~attrs:_ f -> f ()) }

let short_serial s =
  let n = min 4 (String.length s) in
  let b = Buffer.create 8 in
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "%02x" (Char.code s.[i]))
  done;
  Buffer.contents b

(* Signature verification with an optional memo cache. The cache only
   short-circuits the RSA operation itself; time windows, restrictions and
   proofs of possession are re-checked by the callers on every
   presentation. Failures are never recorded, so a tampered certificate
   (different bytes, hence a different key) misses and fails verification
   every time. *)
let verify_signature ?cache ~tally ~now ~pub ~signed_bytes ~signature verify =
  match cache with
  | None ->
      tally "crypto.rsa_verify";
      verify ()
  | Some c ->
      let key =
        Verify_cache.key ~signed_bytes ~signature ~signer:(Crypto.Rsa.public_to_bytes pub)
      in
      if Verify_cache.check c ~now key then begin
        tally "verify_cache.hits";
        Ok ()
      end
      else begin
        tally "verify_cache.misses";
        tally "crypto.rsa_verify";
        match verify () with
        | Ok () ->
            Verify_cache.record c ~now key;
            Ok ()
        | Error _ as e -> e
      end

let check_window ~now (body : Proxy_cert.body) =
  if body.Proxy_cert.issued_at > now then Error "proxy-cert: issued in the future"
  else if body.Proxy_cert.expires <= now then Error "proxy-cert: expired"
  else Ok ()

(* Revocation is consulted on every presentation, cached or not: the verify
   cache only memoizes RSA results, never this check, so a bulletin takes
   effect on the very next presentation once applied. The staleness gate
   runs once per chain (fail closed — a server cut off from the bulletin
   distributor refuses all proxy-borne authority past the bound); the
   per-certificate check runs on every link of the walk. *)
let stale_gate ?revocation ~tally ~now () =
  match revocation with
  | None -> Ok ()
  | Some r ->
      if Revocation.stale r ~now then begin
        tally "revocation.stale_denials";
        Error
          (Printf.sprintf "revocation bulletin stale (as of %d): failing closed"
             (Revocation.as_of r))
      end
      else Ok ()

let check_revocation ?revocation ~tally (body : Proxy_cert.body) =
  match revocation with
  | None -> Ok ()
  | Some r -> (
      match Revocation.revoked r body with
      | Ok () -> Ok ()
      | Error _ as e ->
          tally "revocation.denials";
          e)

let verify_conventional ~open_base ?(tally = no_tally) ?revocation ?(hook = no_hook) ~now
    (chain : Proxy.conventional_chain) =
  let open Wire in
  let* () = stale_gate ?revocation ~tally ~now () in
  tally "crypto.open";
  let* base = open_base chain.Proxy.base in
  if base.base_expires <= now then Error "base credentials expired"
  else if chain.Proxy.cert_blobs = [] then
    Error "a bare ticket is not a proxy: no certificates presented"
  else begin
    (* Walk the chain: each certificate is sealed under the previous key,
       starting from the base session key, and embeds the next proxy key. *)
    let rec walk key acc_restrictions acc_serials expires idx = function
      | [] ->
          Ok
            {
              grantor = base.base_client;
              restrictions = acc_restrictions;
              expires;
              commitment = Presentation.Sym_commit key;
              chain_length = List.length chain.Proxy.cert_blobs;
              serials = List.rev acc_serials;
            }
      | blob :: rest ->
          let* body, proxy_key =
            hook.wrap ~name:"verify.cert"
              ~attrs:[ ("flavor", "conventional"); ("index", string_of_int idx) ]
              (fun () ->
                tally "crypto.open";
                let* body, proxy_key = Proxy_cert.open_conventional ~sealing_key:key blob in
                let* () = check_window ~now body in
                let* () = check_revocation ?revocation ~tally body in
                let* () =
                  if idx = 0 && not (Principal.equal body.Proxy_cert.grantor base.base_client)
                  then Error "head certificate grantor does not match base credentials"
                  else Ok ()
                in
                Ok (body, proxy_key))
          in
          walk proxy_key
            (acc_restrictions @ body.Proxy_cert.restrictions)
            (body.Proxy_cert.serial :: acc_serials)
            (min expires body.Proxy_cert.expires)
            (idx + 1) rest
    in
    walk base.base_session_key base.base_restrictions [] base.base_expires 0
      chain.Proxy.cert_blobs
  end

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let verify_pk ~lookup ?(tally = no_tally) ?cache ?link_cache ?revocation ?(hook = no_hook)
    ~now certs =
  let open Wire in
  let* () = stale_gate ?revocation ~tally ~now () in
  match certs with
  | [] -> Error "empty certificate chain"
  | head :: _ ->
      let signer_key ~prev (cert : Proxy_cert.pk_cert) =
        match (cert.Proxy_cert.pk_signer, prev) with
        | Proxy_cert.By_grantor_key, None -> (
            match lookup cert.Proxy_cert.pk_body.Proxy_cert.grantor with
            | Some pub -> Ok pub
            | None ->
                Error
                  (Printf.sprintf "no public key known for grantor %s"
                     (Principal.to_string cert.Proxy_cert.pk_body.Proxy_cert.grantor)))
        | Proxy_cert.By_grantor_key, Some _ ->
            Error "only the head certificate may be signed by the grantor key"
        | Proxy_cert.By_proxy_key, Some (prev_cert : Proxy_cert.pk_cert) ->
            Ok prev_cert.Proxy_cert.proxy_pub
        | Proxy_cert.By_proxy_key, None ->
            Error "head certificate cannot be signed by a proxy key"
        | Proxy_cert.By_principal p, Some prev_cert -> (
            (* Delegate cascade: the signing intermediate must be a named
               grantee of the previous certificate. *)
            match Proxy.classify prev_cert.Proxy_cert.pk_body.Proxy_cert.restrictions with
            | `Bearer ->
                Error "delegate cascade on a bearer certificate (no grantees named)"
            | `Delegate grantees ->
                if not (List.exists (Principal.equal p) grantees) then
                  Error
                    (Printf.sprintf "%s is not a named grantee of the preceding certificate"
                       (Principal.to_string p))
                else (
                  match lookup p with
                  | Some pub -> Ok pub
                  | None ->
                      Error
                        (Printf.sprintf "no public key known for intermediate %s"
                           (Principal.to_string p))))
        | Proxy_cert.By_principal _, None ->
            Error "head certificate must be signed by the grantor key"
      in
      (* [pending_grantees] holds the previous certificate's Grantee
         restrictions: a delegate-cascade signature by a named grantee
         discharges them (the delegation is the exercise); any other
         continuation re-imposes them on the final presenters. *)
      let is_grantee = function Restriction.Grantee _ -> true | _ -> false in
      let chain_length = List.length certs in
      (* Rolling prefix digests, computed once per presentation when the
         link cache is attached: element idx covers certificates 0..idx and
         keys both the probe and the states recorded along the walk. *)
      let prefix_digests =
        match link_cache with None -> [||] | Some _ -> Link_cache.digests certs
      in
      let rec walk prev bodies_rev acc_restrictions pending_grantees acc_serials expires idx
          = function
        | [] ->
            let last = Option.get prev in
            Ok
              {
                grantor = head.Proxy_cert.pk_body.Proxy_cert.grantor;
                restrictions = acc_restrictions @ pending_grantees;
                expires;
                commitment = Presentation.Pk_commit last.Proxy_cert.proxy_pub;
                chain_length;
                serials = List.rev acc_serials;
              }
        | (cert : Proxy_cert.pk_cert) :: rest ->
            (* One span per certificate: the signer-key lookup (which may go
               to the resolver, nesting its span underneath), the signature
               check (RSA or cache hit), and the window check — so the span's
               costs say exactly what this link of the cascade charged. *)
            let* () =
              hook.wrap ~name:"verify.cert"
                ~attrs:
                  [
                    ("flavor", "pk");
                    ("index", string_of_int idx);
                    ("serial", short_serial cert.Proxy_cert.pk_body.Proxy_cert.serial);
                  ]
                (fun () ->
                  let* pub = signer_key ~prev cert in
                  let* () =
                    verify_signature ?cache ~tally ~now ~pub
                      ~signed_bytes:(Proxy_cert.pk_signed_bytes cert)
                      ~signature:cert.Proxy_cert.signature
                      (fun () -> Proxy_cert.verify_pk_signature pub cert)
                  in
                  let* () = check_window ~now cert.Proxy_cert.pk_body in
                  check_revocation ?revocation ~tally cert.Proxy_cert.pk_body)
            in
            let discharged =
              match cert.Proxy_cert.pk_signer with
              | Proxy_cert.By_principal _ -> []
              | Proxy_cert.By_grantor_key | Proxy_cert.By_proxy_key -> pending_grantees
            in
            let grantee_rs, other_rs =
              List.partition is_grantee cert.Proxy_cert.pk_body.Proxy_cert.restrictions
            in
            let bodies_rev = cert.Proxy_cert.pk_body :: bodies_rev in
            let acc = acc_restrictions @ discharged @ other_rs in
            let serials = cert.Proxy_cert.pk_body.Proxy_cert.serial :: acc_serials in
            let expires = min expires cert.Proxy_cert.pk_body.Proxy_cert.expires in
            (* Every verified prefix becomes a resume point: recording each
               length (not just the full chain) is what lets two chains that
               fork after link i share the work of links 0..i. Recording
               happens only after this certificate's own signature, window
               and revocation checks passed. *)
            (match link_cache with
            | Some lc ->
                Link_cache.record lc ~now ~key:prefix_digests.(idx)
                  {
                    Link_cache.s_last = cert;
                    s_bodies = List.rev bodies_rev;
                    s_restrictions = acc;
                    s_pending = grantee_rs;
                    s_serials_rev = serials;
                    s_expires = expires;
                    s_len = idx + 1;
                  }
            | None -> ());
            walk (Some cert) bodies_rev acc grantee_rs serials expires (idx + 1) rest
      in
      let cold () = walk None [] [] [] [] max_int 0 certs in
      (match link_cache with
      | None -> cold ()
      | Some lc -> (
          match Link_cache.find_longest lc ~now prefix_digests with
          | None ->
              tally "link_cache.misses";
              cold ()
          | Some (len, st) ->
              (* Resume after the longest verified prefix. The prefix's RSA
                 walk is skipped; its time windows and revocation status are
                 NOT — every link is re-checked against the current clock
                 and bulletin state before any cached authority is trusted. *)
              tally "link_cache.hits";
              let* () =
                hook.wrap ~name:"verify.prefix"
                  ~attrs:[ ("flavor", "pk"); ("len", string_of_int len) ]
                  (fun () ->
                    let rec recheck = function
                      | [] -> Ok ()
                      | body :: rest ->
                          let* () = check_window ~now body in
                          let* () = check_revocation ?revocation ~tally body in
                          recheck rest
                    in
                    recheck st.Link_cache.s_bodies)
              in
              walk (Some st.Link_cache.s_last)
                (List.rev st.Link_cache.s_bodies)
                st.Link_cache.s_restrictions st.Link_cache.s_pending
                st.Link_cache.s_serials_rev st.Link_cache.s_expires len (drop len certs)))

(* Walk conventionally-sealed cascade certificates from a known starting
   key, accumulating restrictions; shared by the conventional walk above in
   spirit, specialized here for the hybrid tail. *)
let walk_cascade ~tally ?revocation ~hook ~now ~start_key ~acc ~serials ~expires blobs =
  let open Wire in
  let rec go key acc serials expires idx = function
    | [] -> Ok (key, acc, List.rev serials, expires)
    | blob :: rest ->
        let* body, proxy_key =
          hook.wrap ~name:"verify.cert"
            ~attrs:[ ("flavor", "hybrid-cascade"); ("index", string_of_int idx) ]
            (fun () ->
              tally "crypto.open";
              let* body, proxy_key = Proxy_cert.open_conventional ~sealing_key:key blob in
              let* () = check_window ~now body in
              let* () = check_revocation ?revocation ~tally body in
              Ok (body, proxy_key))
        in
        go proxy_key
          (acc @ body.Proxy_cert.restrictions)
          (body.Proxy_cert.serial :: serials)
          (min expires body.Proxy_cert.expires)
          (idx + 1) rest
  in
  go start_key acc (List.rev serials) expires 1 blobs

let verify_hybrid ~lookup ~decrypt ?me ?(tally = no_tally) ?cache ?revocation
    ?(hook = no_hook) ~now ((head, blobs) : Proxy_cert.hybrid_cert * string list) =
  let open Wire in
  let grantor = head.Proxy_cert.h_body.Proxy_cert.grantor in
  let* () = stale_gate ?revocation ~tally ~now () in
  let* () =
    match me with
    | Some me when not (Principal.equal me head.Proxy_cert.h_end_server) ->
        Error
          (Printf.sprintf "hybrid proxy is for %s, not this server"
             (Principal.to_string head.Proxy_cert.h_end_server))
    | Some _ | None -> Ok ()
  in
  let* grantor_pub =
    match lookup grantor with
    | Some pub -> Ok pub
    | None ->
        Error (Printf.sprintf "no public key known for grantor %s" (Principal.to_string grantor))
  in
  let* head_key =
    hook.wrap ~name:"verify.cert"
      ~attrs:
        [
          ("flavor", "hybrid-head");
          ("index", "0");
          ("serial", short_serial head.Proxy_cert.h_body.Proxy_cert.serial);
        ]
      (fun () ->
        let* () =
          verify_signature ?cache ~tally ~now ~pub:grantor_pub
            ~signed_bytes:(Proxy_cert.hybrid_signed_bytes head)
            ~signature:head.Proxy_cert.h_signature
            (fun () -> Proxy_cert.verify_hybrid_signature grantor_pub head)
        in
        let* () = check_window ~now head.Proxy_cert.h_body in
        let* () = check_revocation ?revocation ~tally head.Proxy_cert.h_body in
        tally "crypto.rsa_decrypt";
        Proxy_cert.open_hybrid_key ~decrypt head)
  in
  let* final_key, restrictions, serials, expires =
    walk_cascade ~tally ?revocation ~hook ~now ~start_key:head_key
      ~acc:head.Proxy_cert.h_body.Proxy_cert.restrictions
      ~serials:[ head.Proxy_cert.h_body.Proxy_cert.serial ]
      ~expires:head.Proxy_cert.h_body.Proxy_cert.expires blobs
  in
  Ok
    {
      grantor;
      restrictions;
      expires;
      commitment = Presentation.Sym_commit final_key;
      chain_length = 1 + List.length blobs;
      serials;
    }

let no_decrypt _ = None

let verify ~open_base ~lookup ?(decrypt = no_decrypt) ?me ?tally ?cache ?link_cache
    ?revocation ?hook ~now = function
  | Proxy.Conventional chain ->
      verify_conventional ~open_base ?tally ?revocation ?hook ~now chain
  | Proxy.Public_key certs ->
      verify_pk ~lookup ?tally ?cache ?link_cache ?revocation ?hook ~now certs
  | Proxy.Hybrid (head, blobs) ->
      verify_hybrid ~lookup ~decrypt ?me ?tally ?cache ?revocation ?hook ~now (head, blobs)

let authorize verified ~req ~proof ~max_skew =
  let open Wire in
  let* () =
    if verified.expires <= req.Restriction.time then Error "proxy expired" else Ok ()
  in
  (* Sequence progress is tracked per presented chain head: scope the
     server-supplied lookup under this chain's head serial before any
     restriction consults it, so two grants carrying byte-identical
     sequences advance independently. *)
  let req =
    match verified.serials with
    | [] -> req
    | head :: _ ->
        {
          req with
          Restriction.sequence_progress =
            (fun canon -> req.Restriction.sequence_progress (Restriction.seq_key ~head canon));
        }
  in
  let* () = Restriction.check_all verified.restrictions req in
  match Proxy.classify verified.restrictions with
  | `Delegate _ ->
      (* Identity-based: the Grantee restriction already validated the
         presenters; a proof of possession is welcome but not required. *)
      Ok ()
  | `Bearer -> (
      match proof with
      | None -> Error "bearer proxy requires proof of possession"
      | Some p ->
          Presentation.check verified.commitment p ~now:req.Restriction.time ~max_skew
            ~request_digest:(Presentation.digest_request req))

(* Cross-realm public-key resolution: route each principal's lookup to its
   home realm's directory. Federation never merges key directories — realm
   B verifies a chain whose grantor lives in realm A with A's published
   keys, resolved across the boundary — so an unknown realm answers None
   (the chain walk then fails closed on the unresolvable grantor). *)
let lookup_by_realm routes p =
  match List.assoc_opt p.Principal.realm routes with
  | None -> None
  | Some lookup -> lookup p
