type material = Sym of string | Keypair of Crypto.Rsa.private_

type conventional_chain = { base : string; cert_blobs : string list }

type flavor =
  | Conventional of conventional_chain
  | Public_key of Proxy_cert.pk_cert list
  | Hybrid of Proxy_cert.hybrid_cert * string list

type t = { flavor : flavor; key : material }

let classify restrictions =
  let rec grantees acc = function
    | [] -> acc
    | Restriction.Grantee (ps, _) :: rest -> grantees (acc @ ps) rest
    | _ :: rest -> grantees acc rest
  in
  match grantees [] restrictions with [] -> `Bearer | ps -> `Delegate ps

let fresh_serial drbg = Crypto.Sha256.to_hex (Crypto.Drbg.generate drbg 16)

let make_body drbg ~now ~expires ~grantor ~restrictions =
  { Proxy_cert.grantor; serial = fresh_serial drbg; issued_at = now; expires; restrictions }

let grant_conventional ~drbg ~now ~expires ~grantor ~session_key ~base ~restrictions =
  let proxy_key = Crypto.Drbg.generate drbg 32 in
  let body = make_body drbg ~now ~expires ~grantor ~restrictions in
  let blob =
    Proxy_cert.seal_conventional ~sealing_key:session_key ~nonce:(Crypto.Drbg.generate drbg 12)
      ~proxy_key body
  in
  { flavor = Conventional { base; cert_blobs = [ blob ] }; key = Sym proxy_key }

let anonymous_intermediate = Principal.make ~realm:"cascade" "intermediate"

(* Seal one more cascade certificate under the current symmetric proxy key;
   shared by the conventional and hybrid flavors. *)
let seal_cascade ~drbg ~now ~expires ~grantor ~restrictions ~current_key =
  let proxy_key = Crypto.Drbg.generate drbg 32 in
  let body = make_body drbg ~now ~expires ~grantor ~restrictions in
  let blob =
    Proxy_cert.seal_conventional ~sealing_key:current_key ~nonce:(Crypto.Drbg.generate drbg 12)
      ~proxy_key body
  in
  (blob, proxy_key)

let restrict_conventional ~drbg ~now ~expires ?(grantor = anonymous_intermediate) ~restrictions t =
  match (t.flavor, t.key) with
  | Conventional chain, Sym current_key ->
      let blob, proxy_key =
        seal_cascade ~drbg ~now ~expires ~grantor ~restrictions ~current_key
      in
      Ok
        {
          flavor = Conventional { chain with cert_blobs = chain.cert_blobs @ [ blob ] };
          key = Sym proxy_key;
        }
  | (Public_key _ | Hybrid _), _ -> Error "restrict_conventional: not a conventional proxy"
  | Conventional _, Keypair _ -> Error "restrict_conventional: inconsistent key material"

let grant_hybrid ~drbg ~now ~expires ~grantor ~grantor_key ~end_server ~end_server_pub
    ~restrictions () =
  let proxy_key = Crypto.Drbg.generate drbg 32 in
  let body = make_body drbg ~now ~expires ~grantor ~restrictions in
  match
    Proxy_cert.sign_hybrid ~drbg ~grantor_key ~end_server ~end_server_pub ~proxy_key body
  with
  | Error e -> Error e
  | Ok cert -> Ok { flavor = Hybrid (cert, []); key = Sym proxy_key }

let restrict_hybrid ~drbg ~now ~expires ?(grantor = anonymous_intermediate) ~restrictions t =
  match (t.flavor, t.key) with
  | Hybrid (head, blobs), Sym current_key ->
      let blob, proxy_key =
        seal_cascade ~drbg ~now ~expires ~grantor ~restrictions ~current_key
      in
      Ok { flavor = Hybrid (head, blobs @ [ blob ]); key = Sym proxy_key }
  | (Conventional _ | Public_key _), _ -> Error "restrict_hybrid: not a hybrid proxy"
  | Hybrid _, Keypair _ -> Error "restrict_hybrid: inconsistent key material"

let default_proxy_bits = 512

let grant_pk ~drbg ~now ~expires ~grantor ~grantor_key ?(proxy_bits = default_proxy_bits)
    ~restrictions () =
  let proxy_keypair = Crypto.Rsa.generate drbg ~bits:proxy_bits in
  let body = make_body drbg ~now ~expires ~grantor ~restrictions in
  let cert =
    Proxy_cert.sign_pk ~key:grantor_key ~signer:Proxy_cert.By_grantor_key
      ~proxy_pub:proxy_keypair.Crypto.Rsa.pub body
  in
  { flavor = Public_key [ cert ]; key = Keypair proxy_keypair }

let extend_pk ~drbg ~now ~expires ~grantor ~signing_key ~signer ?(proxy_bits = default_proxy_bits)
    ~restrictions certs =
  let proxy_keypair = Crypto.Rsa.generate drbg ~bits:proxy_bits in
  let body = make_body drbg ~now ~expires ~grantor ~restrictions in
  let cert =
    Proxy_cert.sign_pk ~key:signing_key ~signer ~proxy_pub:proxy_keypair.Crypto.Rsa.pub body
  in
  { flavor = Public_key (certs @ [ cert ]); key = Keypair proxy_keypair }

let restrict_pk ~drbg ~now ~expires ?(grantor = anonymous_intermediate) ?proxy_bits ~restrictions
    t =
  match (t.flavor, t.key) with
  | Public_key certs, Keypair current ->
      Ok
        (extend_pk ~drbg ~now ~expires ~grantor ~signing_key:current
           ~signer:Proxy_cert.By_proxy_key ?proxy_bits ~restrictions certs)
  | (Conventional _ | Hybrid _), _ -> Error "restrict_pk: not a public-key proxy"
  | Public_key _, Sym _ -> Error "restrict_pk: inconsistent key material"

let delegate_pk ~drbg ~now ~expires ~intermediate ~intermediate_key ?proxy_bits ~restrictions t =
  match t.flavor with
  | Public_key certs ->
      Ok
        (extend_pk ~drbg ~now ~expires ~grantor:intermediate ~signing_key:intermediate_key
           ~signer:(Proxy_cert.By_principal intermediate) ?proxy_bits ~restrictions certs)
  | Conventional _ | Hybrid _ -> Error "delegate_pk: not a public-key proxy"

type presentation = flavor

let presentation t = t.flavor

let presentation_to_wire = function
  | Conventional { base; cert_blobs } ->
      Wire.L
        [ Wire.S "conventional";
          Wire.S base;
          Wire.L (List.map (fun b -> Wire.S b) cert_blobs) ]
  | Public_key certs ->
      Wire.L [ Wire.S "public-key"; Wire.L (List.map Proxy_cert.pk_cert_to_wire certs) ]
  | Hybrid (head, blobs) ->
      Wire.L
        [ Wire.S "hybrid";
          Proxy_cert.hybrid_cert_to_wire head;
          Wire.L (List.map (fun b -> Wire.S b) blobs) ]

let map_result f l =
  List.fold_right
    (fun x acc -> Result.bind acc (fun tl -> Result.map (fun h -> h :: tl) (f x)))
    l (Ok [])

let presentation_of_wire v =
  let open Wire in
  let* tag = Result.bind (field v 0) to_string in
  match tag with
  | "conventional" ->
      let* base = Result.bind (field v 1) to_string in
      let* blobs = Result.bind (field v 2) to_list in
      let* cert_blobs = map_result to_string blobs in
      Ok (Conventional { base; cert_blobs })
  | "public-key" ->
      let* certs = Result.bind (field v 1) to_list in
      let* certs = map_result Proxy_cert.pk_cert_of_wire certs in
      Ok (Public_key certs)
  | "hybrid" ->
      let* hw = field v 1 in
      let* head = Proxy_cert.hybrid_cert_of_wire hw in
      let* bw = Result.bind (field v 2) to_list in
      let* blobs = map_result to_string bw in
      Ok (Hybrid (head, blobs))
  | other -> Error (Printf.sprintf "presentation: unknown flavor %S" other)

(* The RSA private key transfers as (n, e, d). *)
let material_to_wire = function
  | Sym k -> Wire.L [ Wire.S "sym"; Wire.S k ]
  | Keypair kp ->
      Wire.L
        [ Wire.S "keypair";
          Wire.S (Crypto.Rsa.public_to_bytes kp.Crypto.Rsa.pub);
          Wire.S (Bignum.Nat.to_bytes_be kp.Crypto.Rsa.d) ]

let material_of_wire v =
  let open Wire in
  let* tag = Result.bind (field v 0) to_string in
  match tag with
  | "sym" ->
      let* k = Result.bind (field v 1) to_string in
      Ok (Sym k)
  | "keypair" -> (
      let* pub_bytes = Result.bind (field v 1) to_string in
      let* d_bytes = Result.bind (field v 2) to_string in
      match Crypto.Rsa.public_of_bytes pub_bytes with
      | None -> Error "material: malformed public part"
      | Some pub ->
          Ok (Keypair { Crypto.Rsa.pub; d = Bignum.Nat.of_bytes_be d_bytes; crt = None }))
  | other -> Error (Printf.sprintf "material: unknown tag %S" other)

let transfer_to_wire t = Wire.L [ presentation_to_wire t.flavor; material_to_wire t.key ]

let transfer_of_wire v =
  let open Wire in
  let* pw = field v 0 in
  let* flavor = presentation_of_wire pw in
  let* mw = field v 1 in
  let* key = material_of_wire mw in
  Ok { flavor; key }
