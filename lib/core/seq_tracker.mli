(** Server-side progress state for {!Restriction.Sequence} restrictions.

    A sequence restriction is stateful: the server must remember how many
    steps of each presented sequence have already been granted. This
    tracker holds that state, keyed exactly like {!Replay_cache}
    accept-once records — per presented chain head
    ({!Restriction.seq_key}) — so the surrounding machinery composes
    unchanged: revocation bulletins shed a dead grantor's progress by tag,
    chains derived from one grant share one progress line, and entries
    expire with the chain that fed them.

    Losing an entry (expiry, capacity eviction, failover to a replica that
    never saw it) resets the sequence to its first step — the fail-closed
    direction: a proxy can only ever do {e less} than its progress had
    earned. *)

type t

val create : ?capacity:int -> ?on_evict:(unit -> unit) -> unit -> t
(** Default capacity: 131072 progress lines. [on_evict] fires when a live
    entry is dropped under capacity pressure. *)

val progress : t -> now:int -> string -> int
(** How many steps of the keyed sequence have been granted; 0 when the key
    is unknown or its entry has expired. *)

val set_progress : t -> now:int -> expires:int -> ?tag:string -> string -> int -> unit
(** Record progress for a key. Max-monotone: a value at or below the
    current progress is ignored, so replicated imports and retransmitted
    forwards can only move a sequence forward. [tag] names the chain's
    grantor for {!shed}. *)

val advance : t -> now:int -> expires:int -> ?tag:string -> string -> int
(** Bump the keyed progress by one step and return the new value. *)

val shed : t -> tag:string -> int
(** Drop every entry recorded under [tag] (a freshly revoked grantor),
    returning how many were dropped — the {!Replay_cache.shed} analogue. *)

val clear : t -> unit
(** Forget everything (test harnesses and fault injection). *)

val size : t -> int
val capacity : t -> int
val purge : t -> now:int -> unit
(** Drop expired entries (also happens incrementally during queries). *)
