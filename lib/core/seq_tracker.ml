type t = {
  entries : (string, int * int * int * string option) Hashtbl.t;
      (* key -> (progress, expiry, insertion seq, tag) *)
  capacity : int;
  on_evict : unit -> unit;
  mutable next_seq : int;
      (* monotonic insertion counter — the eviction tie-break, mirroring
         {!Replay_cache}: Hashtbl fold order depends on resize history, so
         equal-expiry entries need a total order of their own. *)
}

let default_capacity = 1 lsl 17
let no_evict () = ()

let create ?(capacity = default_capacity) ?(on_evict = no_evict) () =
  if capacity < 1 then invalid_arg "Seq_tracker.create: capacity must be positive";
  { entries = Hashtbl.create 64; capacity; on_evict; next_seq = 0 }

let progress t ~now key =
  match Hashtbl.find_opt t.entries key with
  | None -> 0
  | Some (k, expires, _, _) ->
      if expires > now then k
      else begin
        Hashtbl.remove t.entries key;
        0
      end

let purge t ~now =
  let stale =
    Hashtbl.fold
      (fun key (_, expires, _, _) acc -> if expires <= now then key :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) stale

(* Capacity pressure mirrors {!Replay_cache}: purge the dead first; if the
   tracker is genuinely full of live entries, forget the one whose window
   closes soonest — losing it resets that sequence to its first step, which
   only ever narrows what the proxy can do. Expiry ties break by insertion
   seq (oldest first), never by hash iteration order. *)
let evict_soonest t =
  match
    Hashtbl.fold
      (fun key (_, expires, seq, _) best ->
        match best with
        | Some (_, e, s) when (e, s) <= (expires, seq) -> best
        | _ -> Some (key, expires, seq))
      t.entries None
  with
  | None -> ()
  | Some (key, _, _) ->
      Hashtbl.remove t.entries key;
      t.on_evict ()

let make_room t ~now =
  if Hashtbl.length t.entries >= t.capacity then begin
    purge t ~now;
    if Hashtbl.length t.entries >= t.capacity then evict_soonest t
  end

(* Progress is max-monotone: concurrent advancement, replicated imports and
   retransmitted forwards can only move a sequence forward, never rewind
   it — rewinding would re-open already-consumed steps. Re-advancing an
   existing key keeps its original insertion seq (it is the same logical
   sequence, not a fresh one). *)
let set_progress t ~now ~expires ?tag key k =
  let current = progress t ~now key in
  if k > current then begin
    let seq =
      match Hashtbl.find_opt t.entries key with
      | Some (_, _, s, _) -> s
      | None ->
          make_room t ~now;
          let s = t.next_seq in
          t.next_seq <- t.next_seq + 1;
          s
    in
    Hashtbl.replace t.entries key (k, expires, seq, tag)
  end

let advance t ~now ~expires ?tag key =
  let k = progress t ~now key + 1 in
  set_progress t ~now ~expires ?tag key k;
  k

(* Revocation cleanup, same contract as {!Replay_cache.shed}: a bulletin
   that kills a grantor makes every progress line recorded under that
   grantor moot — the chains that fed it can no longer verify, and a fresh
   post-revocation grant must start its sequence from the first step. *)
let shed t ~tag =
  let doomed =
    Hashtbl.fold
      (fun key (_, _, _, tg) acc -> if tg = Some tag then key :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) doomed;
  List.length doomed

let clear t = Hashtbl.reset t.entries
let size t = Hashtbl.length t.entries
let capacity t = t.capacity
