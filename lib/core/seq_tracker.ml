type t = {
  entries : (string, int * int * string option) Hashtbl.t;
      (* key -> (progress, expiry, tag) *)
  capacity : int;
  on_evict : unit -> unit;
}

let default_capacity = 1 lsl 17
let no_evict () = ()

let create ?(capacity = default_capacity) ?(on_evict = no_evict) () =
  if capacity < 1 then invalid_arg "Seq_tracker.create: capacity must be positive";
  { entries = Hashtbl.create 64; capacity; on_evict }

let progress t ~now key =
  match Hashtbl.find_opt t.entries key with
  | None -> 0
  | Some (k, expires, _) ->
      if expires > now then k
      else begin
        Hashtbl.remove t.entries key;
        0
      end

let purge t ~now =
  let stale =
    Hashtbl.fold
      (fun key (_, expires, _) acc -> if expires <= now then key :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) stale

(* Capacity pressure mirrors {!Replay_cache}: purge the dead first; if the
   tracker is genuinely full of live entries, forget the one whose window
   closes soonest — losing it resets that sequence to its first step, which
   only ever narrows what the proxy can do. *)
let evict_soonest t =
  match
    Hashtbl.fold
      (fun key (_, expires, _) best ->
        match best with
        | Some (_, e) when e <= expires -> best
        | _ -> Some (key, expires))
      t.entries None
  with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.entries key;
      t.on_evict ()

let make_room t ~now =
  if Hashtbl.length t.entries >= t.capacity then begin
    purge t ~now;
    if Hashtbl.length t.entries >= t.capacity then evict_soonest t
  end

(* Progress is max-monotone: concurrent advancement, replicated imports and
   retransmitted forwards can only move a sequence forward, never rewind
   it — rewinding would re-open already-consumed steps. *)
let set_progress t ~now ~expires ?tag key k =
  let current = progress t ~now key in
  if k > current then begin
    if not (Hashtbl.mem t.entries key) then make_room t ~now;
    Hashtbl.replace t.entries key (k, expires, tag)
  end

let advance t ~now ~expires ?tag key =
  let k = progress t ~now key + 1 in
  set_progress t ~now ~expires ?tag key k;
  k

(* Revocation cleanup, same contract as {!Replay_cache.shed}: a bulletin
   that kills a grantor makes every progress line recorded under that
   grantor moot — the chains that fed it can no longer verify, and a fresh
   post-revocation grant must start its sequence from the first step. *)
let shed t ~tag =
  let doomed =
    Hashtbl.fold
      (fun key (_, _, tg) acc -> if tg = Some tag then key :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) doomed;
  List.length doomed

let clear t = Hashtbl.reset t.entries
let size t = Hashtbl.length t.entries
let capacity t = t.capacity
