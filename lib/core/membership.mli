(** Replicated group membership as signed epoch snapshots.

    The paper's Section 4 comparison to Grapevine: a realm should be able
    to keep resolving group membership while the group server's realm is
    unreachable. The authoritative group server periodically publishes its
    {e full} membership table as a signed, monotonically-numbered
    {b snapshot}; a replica in another realm holds the latest applied
    snapshot plus a staleness bound, exactly mirroring the revocation
    bulletin design ({!Revocation}):

    - {b bounded inconsistency}: within the staleness bound the replica
      answers membership queries from the last snapshot — a membership
      change propagates within one publication interval;
    - {b fail closed beyond the bound}: once [now - as_of] exceeds the
      bound, {!check} refuses every query until a fresh snapshot arrives.

    Snapshots are cumulative (each carries the whole table), canonically
    ordered, and self-authenticating, so they can travel over any channel
    and be applied in any order: only a signature-valid snapshot with a
    strictly higher epoch advances the state. *)

type snapshot = {
  s_server : Principal.t;  (** the authoritative group server *)
  s_epoch : int;  (** strictly increasing across publications *)
  s_issued_at : int;  (** freshness anchor for the staleness bound *)
  s_groups : (string * Principal.t list) list;
      (** full table: group name -> direct principal members, canonical
          order (groups sorted by name, members by principal string) *)
  s_signature : string;  (** group server's RSA signature over the body *)
}

val sign :
  key:Crypto.Rsa.private_ ->
  server:Principal.t ->
  epoch:int ->
  issued_at:int ->
  (string * Principal.t list) list ->
  snapshot
(** Canonicalizes (sorts and dedups) the table before signing, so the same
    membership yields the same bytes whatever order the publisher's tables
    iterate in. *)

val verify_snapshot : Crypto.Rsa.public -> snapshot -> (unit, string) result
(** Signature check only; epoch ordering is {!apply}'s business. *)

val snapshot_to_wire : snapshot -> Wire.t
val snapshot_of_wire : Wire.t -> (snapshot, string) result

(** {2 Replica state} *)

type t

val default_staleness_bound_us : int
(** 30 simulated minutes. *)

val create :
  server:Principal.t ->
  server_pub:Crypto.Rsa.public ->
  ?staleness_bound_us:int ->
  now:int ->
  unit ->
  t
(** Fresh state at epoch 0 with [as_of = now]: a just-created replica is
    considered fresh for one staleness window, giving it time to fetch its
    first snapshot before failing closed. *)

type applied =
  | Applied of { fresh : int }
      (** the epoch advanced; [fresh] counts (group, member) pairs not
          covered by the previous snapshot (0 for a heartbeat
          re-publication) *)
  | Ignored  (** valid signature but epoch not newer than what is held *)

val apply : t -> snapshot -> (applied, string) result
(** Verify publisher identity and signature, then advance if the epoch is
    strictly newer. [Error] means the snapshot is not authentic (wrong
    server or bad signature); replays and reordered old snapshots are
    [Ok Ignored]. *)

val server : t -> Principal.t
val epoch : t -> int
val as_of : t -> int
val staleness_bound_us : t -> int

val groups : t -> string list
(** Group names held, sorted. *)

val stale : t -> now:int -> bool
(** [now - as_of > staleness_bound_us]. *)

val member : t -> group:string -> Principal.t -> bool
(** Raw table lookup; does {e not} consider staleness. *)

val check : t -> now:int -> group:string -> Principal.t -> (unit, string) result
(** The serving gate: fail closed when {!stale}, else a membership
    decision from the replicated table. *)
