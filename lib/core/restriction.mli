(** Typed proxy restrictions (paper Section 7).

    A restriction is a typed subfield of a proxy certificate. Restrictions
    are {e additive}: deriving a proxy may only append restrictions, never
    remove or weaken them (Section 6.2). Unknown restriction types decode
    into {!Unknown} and always fail {!check} — a server that does not
    understand a restriction must reject rather than ignore it. *)

type currency = string

(** One object an {!Authorized} restriction grants access to. An empty
    [ops] list authorizes every operation on the object. *)
type authorized_entry = { target : string; ops : string list }

(** One step of a {!Sequence} restriction: the operation it permits, plus
    optional context predicates — the end-server that must evaluate it and
    the target it must name. [None] leaves that dimension unconstrained. *)
type seq_step = {
  step_op : string;
  step_server : Principal.t option;
  step_target : string option;
}

type t =
  | Grantee of Principal.t list * int
      (** principals allowed to exercise the proxy, and how many of them
          must concur (Section 7.1); presence makes a proxy a delegate
          proxy *)
  | For_use_by_group of Principal.Group.t list * int
      (** groups whose membership must be asserted alongside (7.2) *)
  | Issued_for of Principal.t list
      (** end-servers allowed to accept the proxy (7.3) *)
  | Quota of currency * int  (** resource ceiling (7.4) *)
  | Authorized of authorized_entry list
      (** complete list of accessible objects/operations (7.5) *)
  | Group_membership of string list
      (** grantee is a member of only these of the group server's groups
          (7.6) *)
  | Accept_once of string
      (** single-use identifier, e.g. a check number (7.7) *)
  | Sequence of seq_step list
      (** context-aware permission sequence: operations are permitted only
          in the stated order, one grant per step, with progress tracked
          server-side per presented chain head (cf. Section 7's typed
          catalogue; sequences make a restriction {e stateful}). A sequence
          must be non-empty with pairwise-distinct steps; malformed
          sequences fail closed at both decode and check time *)
  | Limit_restriction of Principal.t list * t list
      (** restrictions enforced only by the named servers (7.8) *)
  | Unknown of string
      (** unrecognized restriction type: always fails checks *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_wire : t -> Wire.t
val of_wire : Wire.t -> (t, string) result
val list_to_wire : t list -> Wire.t
val list_of_wire : Wire.t -> (t list, string) result

(** The request a proxy is being exercised for, as seen by the end-server
    at check time. *)
type request = {
  server : Principal.t;  (** the end-server evaluating the proxy *)
  time : int;  (** virtual time of evaluation *)
  operation : string;
  target : string;  (** object of the operation ("" if none) *)
  presenters : Principal.t list;
      (** principals that authenticated alongside the presentation *)
  groups_asserted : Principal.Group.t list;
      (** group memberships proven by accompanying group proxies *)
  claimed_memberships : string list;
      (** local group names this proxy is being used to assert *)
  spend : (currency * int) option;
      (** resource amount the operation would consume *)
  accept_once_seen : string -> bool;
      (** replay-cache lookup supplied by the server *)
  sequence_progress : string -> int;
      (** progress-tracker lookup supplied by the server: given a sequence's
          canonical form ({!seq_canonical}), how many of its steps have
          already been granted under the presented chain. The default
          ([fun _ -> 0]) means "no progress": only a sequence's first step
          can ever pass, and nothing advances — fail closed for call sites
          that track no state. {!Verifier.authorize} composes the presented
          chain's head serial into the lookup ({!seq_key}), so the raw
          canonical form never reaches the tracker unscoped. *)
}

val request :
  server:Principal.t ->
  time:int ->
  operation:string ->
  ?target:string ->
  ?presenters:Principal.t list ->
  ?groups_asserted:Principal.Group.t list ->
  ?claimed_memberships:string list ->
  ?spend:currency * int ->
  ?accept_once_seen:(string -> bool) ->
  ?sequence_progress:(string -> int) ->
  unit ->
  request

val seq_step_equal : seq_step -> seq_step -> bool

val seq_validate : seq_step list -> (unit, string) result
(** [Ok ()] iff the step list is non-empty with pairwise-distinct steps. *)

val seq_canonical : seq_step list -> string
(** Canonical form of a sequence — its own wire encoding. Two sequences
    share progress state iff their canonical forms are byte-identical. *)

val seq_key : head:string -> string -> string
(** [seq_key ~head canon] scopes a canonical sequence under a presented
    chain's head certificate serial — the progress-tracker key. Keyed like
    {!Replay_cache} accept-once state: per chain head, so revocation
    shedding (by grantor tag) and verify-cache invalidation compose, and
    every chain derived from one grant shares one progress line. *)

val seq_key_parse : string -> (string * seq_step list, string) result
(** Invert {!seq_key}: recover the head serial and the decoded steps. The
    key is self-describing, so a server receiving forwarded progress can
    re-validate the sequence it claims to advance. *)

val tighten_sequence : keep:int -> seq_step list -> seq_step list
(** Keep only the first [keep] steps (clamped to [1 .. length]) — the only
    sequence transformation a delegate may apply: dropping trailing steps
    tightens, while reordering or extending would widen and is simply not
    expressible through this function. *)

val check : t -> request -> (unit, string) result
(** Does this single restriction permit the request? *)

val check_all : t list -> request -> (unit, string) result
(** All restrictions must pass (first failure reported). *)

val propagate : issued_for:Principal.t list -> t list -> t list
(** Restrictions to copy into a proxy derived from one carrying these
    restrictions (Section 7.9). Everything is kept, except that a
    [Limit_restriction] whose server list is disjoint from [issued_for] may
    be elided — sound only because the derived proxy carries
    [Issued_for issued_for], which later derivations can never widen. The
    [Issued_for issued_for] restriction itself is prepended. Raises
    [Invalid_argument] when [issued_for] is empty. *)
