(** End-server verification of presented proxies.

    Walks the certificate chain (Figure 4), accumulating restrictions
    additively and recovering the final proxy-key commitment, then
    {!authorize} evaluates the accumulated restrictions against the request
    and demands the right kind of proof: possession of the proxy key for a
    bearer proxy, authenticated presenter identity for a delegate proxy.

    Verification is offline — no message to any authentication server — in
    contrast to Sollins's cascaded authentication, which is the comparison
    the paper draws in Section 3.4 and that [bench/main.ml] measures. *)

(** What the verifier learns from the opaque base credentials (the
    grantor's ticket for this server); supplied by the server glue since the
    core stays independent of the KDC. *)
type base_info = {
  base_client : Principal.t;
  base_session_key : string;
  base_expires : int;
  base_restrictions : Restriction.t list;
      (** restrictions already attached to the base credentials *)
}

type verified = {
  grantor : Principal.t;  (** the authority at the head of the chain *)
  restrictions : Restriction.t list;  (** the full, additive set *)
  expires : int;  (** the tightest expiry along the chain *)
  commitment : Presentation.commitment;
  chain_length : int;
  serials : string list;  (** certificate serials, head first (audit) *)
}

type span_hook = { wrap : 'a. name:string -> attrs:(string * string) list -> (unit -> 'a) -> 'a }
(** Abstract per-certificate instrumentation: the verifier calls
    [wrap ~name:"verify.cert" ~attrs] around each link of the chain (attrs
    carry the flavor, chain index, and serial). The core has no simulation
    dependency; [Authz.Guard] passes a wrapper that opens a [Sim.Span]
    child so each certificate's RSA/cache cost lands on its own span. *)

val no_hook : span_hook
(** Runs the wrapped function bare (the default). *)

val verify_conventional :
  open_base:(string -> (base_info, string) result) ->
  ?tally:(string -> unit) ->
  ?revocation:Revocation.t ->
  ?hook:span_hook ->
  now:int ->
  Proxy.conventional_chain ->
  (verified, string) result

val verify_pk :
  lookup:(Principal.t -> Crypto.Rsa.public option) ->
  ?tally:(string -> unit) ->
  ?cache:Verify_cache.t ->
  ?link_cache:Link_cache.t ->
  ?revocation:Revocation.t ->
  ?hook:span_hook ->
  now:int ->
  Proxy_cert.pk_cert list ->
  (verified, string) result
(** Chain rules: the head certificate must be signed by the grantor's
    long-term key; later certificates are signed either with the previous
    proxy key (bearer cascade) or by a named principal that the previous
    certificate listed as a grantee (delegate cascade — enforcing the
    paper's audit-trail discipline). A delegate-cascade signature
    {e discharges} the Grantee restriction it exercised: a check endorsed
    from payee to bank no longer requires the payee among the final
    presenters, only the endorsement target.

    When [link_cache] is given, the walk first probes for the longest
    already-verified chain {e prefix} ({!Link_cache}): a hit (tallied
    ["link_cache.hits"]) skips the prefix's signature verifications
    entirely — re-checking each cached link's time window and revocation
    status against the current clock first — and resumes the walk at the
    first unverified certificate, recording every newly verified prefix
    as a future resume point. A miss tallies ["link_cache.misses"] and
    walks from the head. [cache] and [link_cache] compose: the per-
    signature memo still serves certificates beyond the cached prefix. *)

val verify_hybrid :
  lookup:(Principal.t -> Crypto.Rsa.public option) ->
  decrypt:(string -> string option) ->
  ?me:Principal.t ->
  ?tally:(string -> unit) ->
  ?cache:Verify_cache.t ->
  ?revocation:Revocation.t ->
  ?hook:span_hook ->
  now:int ->
  Proxy_cert.hybrid_cert * string list ->
  (verified, string) result
(** Section 6.1 hybrid: validate the grantor's signature, recover the
    symmetric proxy key with the server's RSA [decrypt], then walk any
    cascade certificates conventionally. When [me] is given, the
    certificate must name this server. *)

val verify :
  open_base:(string -> (base_info, string) result) ->
  lookup:(Principal.t -> Crypto.Rsa.public option) ->
  ?decrypt:(string -> string option) ->
  ?me:Principal.t ->
  ?tally:(string -> unit) ->
  ?cache:Verify_cache.t ->
  ?link_cache:Link_cache.t ->
  ?revocation:Revocation.t ->
  ?hook:span_hook ->
  now:int ->
  Proxy.presentation ->
  (verified, string) result
(** Dispatch on the presentation's flavor. Hybrid presentations require
    [decrypt] (the default refuses them). When [cache] is given, successful
    RSA signature verifications are memoized ({!Verify_cache}): a cache hit
    tallies ["verify_cache.hits"] instead of ["crypto.rsa_verify"], a miss
    tallies both ["verify_cache.misses"] and the usual crypto counters —
    so the cache-miss metering is exactly the uncached metering. Time
    windows, restrictions and proofs are never cached.

    When [revocation] is given, every certificate body on the walk is
    checked against the local bulletin state (tallying
    ["revocation.denials"] on a hit), and a chain is refused outright —
    tallying ["revocation.stale_denials"] — when that state is stale past
    its bound (fail closed). Like windows and restrictions, revocation is
    re-checked on {e every} presentation: the verify cache never shields a
    revoked link. *)

val authorize :
  verified ->
  req:Restriction.request ->
  proof:Presentation.proof option ->
  max_skew:int ->
  (unit, string) result
(** Full decision: expiry, every restriction, and the flavor-appropriate
    proof. A bearer proxy without a valid proof of possession is refused; a
    delegate proxy is refused unless the grantee quorum is among the
    authenticated presenters (which {!Restriction.check} enforces via the
    [Grantee] restriction). *)

val lookup_by_realm :
  (string * (Principal.t -> Crypto.Rsa.public option)) list ->
  Principal.t ->
  Crypto.Rsa.public option
(** Compose per-realm public-key directories into one [lookup] for
    {!verify_pk}/{!verify}: each principal resolves against its home
    realm's directory, and a principal from a realm with no route answers
    [None] (the verifier then refuses the chain — fail closed, never
    fall through to another realm's keys). *)
