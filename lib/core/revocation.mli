(** Revocation lists distributed as signed epoch bulletins.

    The paper's restrictions bound a proxy's lifetime at grant time; this
    module handles withdrawal {e after} the grant. A revocation authority
    accumulates per-grantor revocations — by certificate serial, or by
    grantor epoch ("every certificate this grantor issued before T is
    void") — and publishes the {e cumulative} list as a signed,
    monotonically-numbered {b bulletin}. Verifying servers hold a local
    {!t}: the latest applied bulletin plus a staleness bound.

    Two properties drive the design:

    - {b bounded inconsistency}: a server whose bulletin is within the
      staleness bound serves normally — a freshly revoked chain may be
      honored for at most one staleness window;
    - {b fail closed beyond the bound}: once [now - as_of] exceeds the
      bound (e.g. the server is partitioned away from the authority),
      {!check} refuses {e every} proxy presentation, revoked or not, until
      a fresh bulletin arrives. Direct-ACL requests carry no proxies and
      are unaffected, and accept-once replay state is kept throughout.

    Bulletins are cumulative and self-authenticating, so they can travel
    over any channel (push or pull) and be applied in any order: only a
    signature-valid bulletin with a strictly higher epoch than the one held
    advances the state. *)

type entry =
  | By_serial of string  (** revoke one certificate by its serial *)
  | By_grantor_epoch of { grantor : Principal.t; not_before : int }
      (** revoke every certificate [grantor] issued strictly before
          [not_before]; re-issued (refreshed) certificates carry a later
          [issued_at] and survive *)

type bulletin = {
  b_authority : Principal.t;
  b_epoch : int;  (** strictly increasing across publications *)
  b_issued_at : int;  (** freshness anchor for the staleness bound *)
  b_entries : entry list;  (** the {e full} cumulative revocation list *)
  b_signature : string;  (** authority's RSA signature over the body *)
}

val sign :
  key:Crypto.Rsa.private_ ->
  authority:Principal.t ->
  epoch:int ->
  issued_at:int ->
  entry list ->
  bulletin

val verify_bulletin : Crypto.Rsa.public -> bulletin -> (unit, string) result
(** Signature check only; epoch ordering is {!apply}'s business. *)

val entry_to_wire : entry -> Wire.t
val entry_of_wire : Wire.t -> (entry, string) result
val bulletin_to_wire : bulletin -> Wire.t
val bulletin_of_wire : Wire.t -> (bulletin, string) result

(** {2 Subscriber state} *)

type t

val default_staleness_bound_us : int
(** 30 simulated minutes. *)

val create :
  authority:Principal.t ->
  authority_pub:Crypto.Rsa.public ->
  ?staleness_bound_us:int ->
  now:int ->
  unit ->
  t
(** Fresh state at epoch 0 with [as_of = now]: a just-created server is
    considered fresh for one staleness window, giving it time to fetch its
    first bulletin before failing closed. *)

type applied =
  | Applied of { fresh : int; fresh_entries : entry list }
      (** the epoch advanced; [fresh] counts entries not already covered by
          the previous state (0 for a pure heartbeat re-publication) and
          [fresh_entries] lists them in bulletin order — the hook for
          targeted cleanup, e.g. shedding a freshly revoked grantor's
          accept-once replay records ([Authz.Guard]) *)
  | Ignored  (** valid signature but epoch not newer than what is held *)

val apply : t -> bulletin -> (applied, string) result
(** Verify authority identity and signature, then advance if the epoch is
    strictly newer. [Error] means the bulletin is not authentic (wrong
    authority or bad signature); replays and reordered old bulletins are
    [Ok Ignored]. *)

val authority : t -> Principal.t
val epoch : t -> int
val as_of : t -> int
val staleness_bound_us : t -> int
val entry_count : t -> int

val stale : t -> now:int -> bool
(** [now - as_of > staleness_bound_us]. *)

val revoked : t -> Proxy_cert.body -> (unit, string) result
(** Is this certificate body on the list? [Error] names the matching entry
    kind. Does {e not} consider staleness. *)

val check : t -> now:int -> Proxy_cert.body -> (unit, string) result
(** The verifier-facing gate: fail closed when {!stale}, else {!revoked}. *)
