type snapshot = {
  s_server : Principal.t;
  s_epoch : int;
  s_issued_at : int;
  s_groups : (string * Principal.t list) list;
  s_signature : string;
}

(* Canonical order: groups by name, members by principal string. Signing
   and replication both depend on the same bytes coming out for the same
   membership, whatever order the publisher's tables iterate in. *)
let canonicalize groups =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (List.map
       (fun (g, members) ->
         ( g,
           List.sort_uniq
             (fun a b -> compare (Principal.to_string a) (Principal.to_string b))
             members ))
       groups)

let group_to_wire (g, members) =
  Wire.L [ Wire.S g; Wire.L (List.map Principal.to_wire members) ]

let group_of_wire v =
  let open Wire in
  let* g = Result.bind (field v 0) to_string in
  let* mw = Result.bind (field v 1) to_list in
  let* members =
    List.fold_left
      (fun acc w ->
        let* acc = acc in
        let* p = Principal.of_wire w in
        Ok (p :: acc))
      (Ok []) mw
    |> Result.map List.rev
  in
  Ok (g, members)

(* As with revocation bulletins, the signature covers this exact encoding
   so a snapshot re-serialized by a relay realm still verifies. *)
let signed_bytes ~server ~epoch ~issued_at groups =
  Wire.encode
    (Wire.L
       [
         Wire.S "membership-snapshot";
         Principal.to_wire server;
         Wire.I epoch;
         Wire.I issued_at;
         Wire.L (List.map group_to_wire groups);
       ])

let sign ~key ~server ~epoch ~issued_at groups =
  let groups = canonicalize groups in
  {
    s_server = server;
    s_epoch = epoch;
    s_issued_at = issued_at;
    s_groups = groups;
    s_signature = Crypto.Rsa.sign key (signed_bytes ~server ~epoch ~issued_at groups);
  }

let verify_snapshot pub s =
  let msg =
    signed_bytes ~server:s.s_server ~epoch:s.s_epoch ~issued_at:s.s_issued_at s.s_groups
  in
  if Crypto.Rsa.verify pub ~msg ~signature:s.s_signature then Ok ()
  else Error "membership snapshot: bad signature"

let snapshot_to_wire s =
  Wire.L
    [
      Wire.S "membership-snapshot";
      Principal.to_wire s.s_server;
      Wire.I s.s_epoch;
      Wire.I s.s_issued_at;
      Wire.L (List.map group_to_wire s.s_groups);
      Wire.S s.s_signature;
    ]

let snapshot_of_wire v =
  let open Wire in
  let* tag = Result.bind (field v 0) to_string in
  if tag <> "membership-snapshot" then Error "not a membership snapshot"
  else
    let* s_server = Result.bind (field v 1) Principal.of_wire in
    let* s_epoch = Result.bind (field v 2) to_int in
    let* s_issued_at = Result.bind (field v 3) to_int in
    let* gw = Result.bind (field v 4) to_list in
    let* s_groups =
      List.fold_left
        (fun acc w ->
          let* acc = acc in
          let* g = group_of_wire w in
          Ok (g :: acc))
        (Ok []) gw
      |> Result.map List.rev
    in
    let* s_signature = Result.bind (field v 5) to_string in
    if s_epoch < 1 then Error "membership snapshot: epoch must be positive"
    else Ok { s_server; s_epoch; s_issued_at; s_groups; s_signature }

(* --- replica state --- *)

type t = {
  t_server : Principal.t;
  server_pub : Crypto.Rsa.public;
  t_staleness_bound_us : int;
  mutable t_epoch : int;
  mutable t_as_of : int;
  tables : (string, (string, unit) Hashtbl.t) Hashtbl.t; (* group -> member set *)
}

let default_staleness_bound_us = 30 * 60 * 1_000_000

let create ~server ~server_pub ?(staleness_bound_us = default_staleness_bound_us) ~now () =
  if staleness_bound_us < 1 then invalid_arg "Membership.create: bound must be positive";
  {
    t_server = server;
    server_pub;
    t_staleness_bound_us = staleness_bound_us;
    t_epoch = 0;
    t_as_of = now;
    tables = Hashtbl.create 8;
  }

type applied = Applied of { fresh : int } | Ignored

let apply t s =
  if not (Principal.equal s.s_server t.t_server) then
    Error
      (Printf.sprintf "snapshot from %s, expected group server %s"
         (Principal.to_string s.s_server)
         (Principal.to_string t.t_server))
  else
    match verify_snapshot t.server_pub s with
    | Error _ as e -> e
    | Ok () ->
        if s.s_epoch <= t.t_epoch then Ok Ignored
        else begin
          (* Snapshots carry the full membership: rebuild, counting the
             (group, member) pairs that extend the previous coverage. *)
          let fresh = ref 0 in
          let tables = Hashtbl.create (max 8 (List.length s.s_groups)) in
          List.iter
            (fun (g, members) ->
              let set = Hashtbl.create (max 4 (List.length members)) in
              let prev = Hashtbl.find_opt t.tables g in
              List.iter
                (fun p ->
                  let key = Principal.to_string p in
                  let known =
                    match prev with Some set -> Hashtbl.mem set key | None -> false
                  in
                  if (not known) && not (Hashtbl.mem set key) then incr fresh;
                  Hashtbl.replace set key ())
                members;
              Hashtbl.replace tables g set)
            s.s_groups;
          Hashtbl.reset t.tables;
          Hashtbl.iter (Hashtbl.replace t.tables) tables;
          t.t_epoch <- s.s_epoch;
          t.t_as_of <- max t.t_as_of s.s_issued_at;
          Ok (Applied { fresh = !fresh })
        end

let server t = t.t_server
let epoch t = t.t_epoch
let as_of t = t.t_as_of
let staleness_bound_us t = t.t_staleness_bound_us
let stale t ~now = now - t.t_as_of > t.t_staleness_bound_us

let groups t = List.sort compare (Hashtbl.fold (fun g _ acc -> g :: acc) t.tables [])

let member t ~group p =
  match Hashtbl.find_opt t.tables group with
  | None -> false
  | Some set -> Hashtbl.mem set (Principal.to_string p)

let check t ~now ~group p =
  if stale t ~now then
    Error
      (Printf.sprintf "membership replica stale (as of %d, bound %dus): failing closed"
         t.t_as_of t.t_staleness_bound_us)
  else if member t ~group p then Ok ()
  else
    Error
      (Printf.sprintf "%s is not a member of %s (replica epoch %d)"
         (Principal.to_string p) group t.t_epoch)
