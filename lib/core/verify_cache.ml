type t = {
  capacity : int;
  ttl_us : int;
  on_evict : unit -> unit;
  table : (string, int) Hashtbl.t; (* key -> inserted_at *)
  order : string Queue.t; (* insertion order; stale keys skipped lazily *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; size : int }

let default_capacity = 1024
let default_ttl_us = 3_600_000_000 (* matches Pki.Resolver's default TTL *)
let no_evict () = ()

let create ?(capacity = default_capacity) ?(ttl_us = default_ttl_us)
    ?(on_evict = no_evict) () =
  if capacity < 0 then invalid_arg "Verify_cache.create: capacity must be non-negative";
  if ttl_us < 1 then invalid_arg "Verify_cache.create: ttl must be positive";
  {
    capacity;
    ttl_us;
    on_evict;
    table = Hashtbl.create (min capacity 64);
    order = Queue.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* Length-framed concatenation, so ("ab","c") and ("a","bc") cannot key the
   same entry. *)
let key ~signed_bytes ~signature ~signer =
  let frame s =
    let n = String.length s in
    String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff)) ^ s
  in
  Crypto.Sha256.digest (frame signed_bytes ^ frame signature ^ frame signer)

let fresh t ~now inserted_at = inserted_at + t.ttl_us > now

let check t ~now k =
  if t.capacity = 0 then begin
    (* Disabled cache: every lookup misses, nothing is remembered.  Used by
       differential tests to run the identical guard wiring with caching
       switched off. *)
    t.misses <- t.misses + 1;
    false
  end
  else
  match Hashtbl.find_opt t.table k with
  | Some inserted_at when fresh t ~now inserted_at ->
      t.hits <- t.hits + 1;
      true
  | Some _ ->
      (* TTL expired: the signer binding may have been revoked since we
         verified — forget the entry and force a re-verification. *)
      Hashtbl.remove t.table k;
      t.misses <- t.misses + 1;
      false
  | None ->
      t.misses <- t.misses + 1;
      false

let evict_one t =
  let rec pop () =
    match Queue.take_opt t.order with
    | None -> ()
    | Some k ->
        if Hashtbl.mem t.table k then begin
          Hashtbl.remove t.table k;
          t.evictions <- t.evictions + 1;
          t.on_evict ()
        end
        else pop () (* stale queue entry (expired or re-recorded); skip *)
  in
  pop ()

let record t ~now k =
  if t.capacity = 0 then ()
  else if Hashtbl.mem t.table k then Hashtbl.replace t.table k now
  else begin
    if Hashtbl.length t.table >= t.capacity then evict_one t;
    Hashtbl.replace t.table k now;
    Queue.push k t.order
  end

let flush t =
  Hashtbl.reset t.table;
  Queue.clear t.order

let stats (t : t) =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; size = Hashtbl.length t.table }

let size t = Hashtbl.length t.table
let capacity t = t.capacity
