type t = {
  capacity : int;
  ttl_us : int;
  on_evict : unit -> unit;
  on_invalidate : unit -> unit;
  table : (string, int * int) Hashtbl.t; (* key -> (recorded_at, seq) *)
  order : (string * int) Queue.t;
      (* (key, seq) in recording order; an entry whose seq no longer matches
         the table was re-recorded later and is skipped. The seq (not the
         timestamp) carries eviction rank: the virtual clock may not advance
         between two records, but the sequence always does. *)
  mutable seq : int;
  mutable generation : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type stats = { hits : int; misses : int; evictions : int; invalidations : int; size : int }

let default_capacity = 1024
let default_ttl_us = 3_600_000_000 (* matches Pki.Resolver's default TTL *)
let no_evict () = ()

let create ?(capacity = default_capacity) ?(ttl_us = default_ttl_us)
    ?(on_evict = no_evict) ?(on_invalidate = no_evict) () =
  if capacity < 0 then invalid_arg "Verify_cache.create: capacity must be non-negative";
  if ttl_us < 1 then invalid_arg "Verify_cache.create: ttl must be positive";
  {
    capacity;
    ttl_us;
    on_evict;
    on_invalidate;
    table = Hashtbl.create (min capacity 64);
    order = Queue.create ();
    seq = 0;
    generation = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

(* Length-framed concatenation, so ("ab","c") and ("a","bc") cannot key the
   same entry. *)
let key ~signed_bytes ~signature ~signer =
  let frame s =
    let n = String.length s in
    String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff)) ^ s
  in
  Crypto.Sha256.digest (frame signed_bytes ^ frame signature ^ frame signer)

let fresh t ~now inserted_at = inserted_at + t.ttl_us > now

let check t ~now k =
  if t.capacity = 0 then begin
    (* Disabled cache: every lookup misses, nothing is remembered.  Used by
       differential tests to run the identical guard wiring with caching
       switched off. *)
    t.misses <- t.misses + 1;
    false
  end
  else
  match Hashtbl.find_opt t.table k with
  | Some (recorded_at, _) when fresh t ~now recorded_at ->
      t.hits <- t.hits + 1;
      true
  | Some _ ->
      (* TTL expired: the signer binding may have been revoked since we
         verified — forget the entry and force a re-verification. *)
      Hashtbl.remove t.table k;
      t.misses <- t.misses + 1;
      false
  | None ->
      t.misses <- t.misses + 1;
      false

let evict_one t =
  let rec pop () =
    match Queue.take_opt t.order with
    | None -> ()
    | Some (k, seq) ->
        (* Evict only when this queue entry is the key's *latest* record: a
           mismatched seq means the entry was refreshed (re-pushed) later,
           so this one is stale and the key's turn comes with the newer
           entry. (The old code kept one queue entry per key forever, so a
           refresh left the hottest entry at the front of the line.) *)
        let live = match Hashtbl.find_opt t.table k with Some (_, s) -> s = seq | None -> false in
        if live then begin
          Hashtbl.remove t.table k;
          t.evictions <- t.evictions + 1;
          t.on_evict ()
        end
        else pop () (* expired, evicted, or re-recorded since; skip *)
  in
  pop ()

(* Refreshes leave dead entries behind; when they dominate, drop them in one
   O(queue) sweep so the queue stays within a constant factor of capacity. *)
let compact t =
  if Queue.length t.order > 2 * t.capacity then begin
    let live = Queue.create () in
    Queue.iter
      (fun (k, seq) ->
        match Hashtbl.find_opt t.table k with
        | Some (_, s) when s = seq -> Queue.push (k, seq) live
        | _ -> ())
      t.order;
    Queue.clear t.order;
    Queue.transfer live t.order
  end

let record t ~now k =
  if t.capacity = 0 then ()
  else begin
    let refresh = Hashtbl.mem t.table k in
    if (not refresh) && Hashtbl.length t.table >= t.capacity then evict_one t;
    t.seq <- t.seq + 1;
    Hashtbl.replace t.table k (now, t.seq);
    Queue.push (k, t.seq) t.order;
    compact t
  end

let flush t =
  Hashtbl.reset t.table;
  Queue.clear t.order

(* Explicit invalidation: unlike TTL expiry (a passive freshness bound) and
   capacity eviction (a space bound), these are {e correctness} events — a
   revocation arrived and the memoized verdicts are no longer trustworthy.
   They are counted separately so the invalidation storm is observable. *)

let invalidate t k =
  if Hashtbl.mem t.table k then begin
    Hashtbl.remove t.table k;
    t.invalidations <- t.invalidations + 1;
    t.on_invalidate ()
  end

(* One bump retires the whole current generation: every cached chain that
   shares the revoked link (and every other entry — the cache cannot map a
   serial back to the hashed keys that depend on it) is dropped in one
   sweep, and re-presentations pay the full RSA walk again. This is the
   revocation storm the R1 bench measures. *)
let bump_generation t =
  t.generation <- t.generation + 1;
  let n = Hashtbl.length t.table in
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.invalidations <- t.invalidations + n;
  for _ = 1 to n do
    t.on_invalidate ()
  done;
  n

let generation t = t.generation

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    invalidations = t.invalidations;
    size = Hashtbl.length t.table;
  }

let size t = Hashtbl.length t.table
let capacity t = t.capacity
