type t = {
  capacity : int;
  ttl_us : int;
  on_evict : unit -> unit;
  on_invalidate : unit -> unit;
  table : (string, int * int * int) Hashtbl.t;
      (* key -> (recorded_at, seq, generation). An entry whose generation
         predates [t.generation] was retired by a bump and is dead: it was
         already counted as an invalidation when the bump happened, so the
         lazy sweep that finds it later just drops it without touching any
         counter. *)
  order : (string * int) Queue.t;
      (* (key, seq) in recording order; an entry whose seq no longer matches
         the table was re-recorded later and is skipped. The seq (not the
         timestamp) carries eviction rank: the virtual clock may not advance
         between two records, but the sequence always does. *)
  mutable seq : int;
  mutable generation : int;
  mutable live : int;
      (* number of table entries carrying the current generation — the
         cache's logical size, and the exact count a bump must charge to
         [invalidations]. Maintained incrementally so {!bump_generation}
         never walks the table. *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type stats = { hits : int; misses : int; evictions : int; invalidations : int; size : int }

let default_capacity = 1024
let default_ttl_us = 3_600_000_000 (* matches Pki.Resolver's default TTL *)
let no_evict () = ()

let create ?(capacity = default_capacity) ?(ttl_us = default_ttl_us)
    ?(on_evict = no_evict) ?(on_invalidate = no_evict) () =
  if capacity < 0 then invalid_arg "Verify_cache.create: capacity must be non-negative";
  if ttl_us < 1 then invalid_arg "Verify_cache.create: ttl must be positive";
  {
    capacity;
    ttl_us;
    on_evict;
    on_invalidate;
    table = Hashtbl.create (min capacity 64);
    order = Queue.create ();
    seq = 0;
    generation = 0;
    live = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

(* Length-framed concatenation, so ("ab","c") and ("a","bc") cannot key the
   same entry. *)
let key ~signed_bytes ~signature ~signer =
  let frame s =
    let n = String.length s in
    String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff)) ^ s
  in
  Crypto.Sha256.digest (frame signed_bytes ^ frame signature ^ frame signer)

let fresh t ~now inserted_at = inserted_at + t.ttl_us > now

let check t ~now k =
  if t.capacity = 0 then begin
    (* Disabled cache: every lookup misses, nothing is remembered.  Used by
       differential tests to run the identical guard wiring with caching
       switched off. *)
    t.misses <- t.misses + 1;
    false
  end
  else
  match Hashtbl.find_opt t.table k with
  | Some (_, _, g) when g <> t.generation ->
      (* Dead generation: retired (and counted) by an earlier bump; drop the
         husk now that the lookup has found it. *)
      Hashtbl.remove t.table k;
      t.misses <- t.misses + 1;
      false
  | Some (recorded_at, _, _) when fresh t ~now recorded_at ->
      t.hits <- t.hits + 1;
      true
  | Some _ ->
      (* TTL expired: the signer binding may have been revoked since we
         verified — forget the entry and force a re-verification. *)
      Hashtbl.remove t.table k;
      t.live <- t.live - 1;
      t.misses <- t.misses + 1;
      false
  | None ->
      t.misses <- t.misses + 1;
      false

let evict_one t =
  let rec pop () =
    match Queue.take_opt t.order with
    | None -> ()
    | Some (k, seq) -> (
        (* Evict only when this queue entry is the key's *latest* record: a
           mismatched seq means the entry was refreshed (re-pushed) later,
           so this one is stale and the key's turn comes with the newer
           entry. Dead-generation entries are dropped in passing without
           counting an eviction — their retirement was already charged to
           [invalidations] when the generation bumped. *)
        match Hashtbl.find_opt t.table k with
        | Some (_, s, g) when s = seq && g = t.generation ->
            Hashtbl.remove t.table k;
            t.live <- t.live - 1;
            t.evictions <- t.evictions + 1;
            t.on_evict ()
        | Some (_, s, g) when s = seq && g <> t.generation ->
            Hashtbl.remove t.table k;
            pop ()
        | _ -> pop () (* expired, evicted, or re-recorded since; skip *))
  in
  pop ()

(* Refreshes and generation bumps leave dead entries behind; when they
   dominate, drop them in one O(queue) sweep so both the queue and the
   table stay within a constant factor of capacity. *)
let compact t =
  if Queue.length t.order > 2 * t.capacity then begin
    let live = Queue.create () in
    Queue.iter
      (fun (k, seq) ->
        match Hashtbl.find_opt t.table k with
        | Some (_, s, g) when s = seq ->
            if g = t.generation then Queue.push (k, seq) live
            else Hashtbl.remove t.table k
        | _ -> ())
      t.order;
    Queue.clear t.order;
    Queue.transfer live t.order
  end

let record t ~now k =
  if t.capacity = 0 then ()
  else begin
    let refresh =
      match Hashtbl.find_opt t.table k with
      | Some (_, _, g) when g = t.generation -> true
      | Some _ ->
          (* A dead-generation husk under the same key: replaced below, and
             the replacement is a fresh insertion, not a refresh. *)
          Hashtbl.remove t.table k;
          false
      | None -> false
    in
    if (not refresh) && t.live >= t.capacity then evict_one t;
    t.seq <- t.seq + 1;
    Hashtbl.replace t.table k (now, t.seq, t.generation);
    Queue.push (k, t.seq) t.order;
    if not refresh then t.live <- t.live + 1;
    compact t
  end

let flush t =
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.live <- 0

(* Explicit invalidation: unlike TTL expiry (a passive freshness bound) and
   capacity eviction (a space bound), these are {e correctness} events — a
   revocation arrived and the memoized verdicts are no longer trustworthy.
   They are counted separately so the invalidation storm is observable. *)

let invalidate t k =
  match Hashtbl.find_opt t.table k with
  | Some (_, _, g) ->
      Hashtbl.remove t.table k;
      if g = t.generation then begin
        t.live <- t.live - 1;
        t.invalidations <- t.invalidations + 1;
        t.on_invalidate ()
      end
  | None -> ()

(* One bump retires the whole current generation: every cached chain that
   shares the revoked link (and every other entry — the cache cannot map a
   serial back to the hashed keys that depend on it) is dropped, and
   re-presentations pay the full RSA walk again. The drop is *lazy*: the
   bump only advances the generation counter and charges the maintained
   live count to [invalidations]; dead entries are reaped as lookups,
   evictions and compactions stumble over them. A bulletin storm that
   bumps k times in a row therefore costs O(live-at-first-bump), not
   O(k * table), which is what keeps the verifier responsive under the
   L1 revocation-churn load. *)
let bump_generation t =
  let n = t.live in
  t.generation <- t.generation + 1;
  t.live <- 0;
  t.invalidations <- t.invalidations + n;
  for _ = 1 to n do
    t.on_invalidate ()
  done;
  n

let generation t = t.generation

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    invalidations = t.invalidations;
    size = t.live;
  }

let size t = t.live
let capacity t = t.capacity
