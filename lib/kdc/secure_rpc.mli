(** Authenticated application RPC over tickets.

    The standard Kerberos application exchange: the client sends its ticket
    and a fresh authenticator with the request; the server learns the
    client's authenticated identity and the session key, and seals its
    response under the session key (or the authenticator's subkey). Every
    service in the system — authorization server, group server, accounting
    servers, end-servers — speaks this. *)

type server_context = {
  rpc_client : Principal.t;  (** authenticated identity of the caller *)
  rpc_session_key : string;
  rpc_auth_data : Wire.t list;
      (** restrictions carried by the caller's ticket + authenticator *)
}

val serve :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  ?max_skew_us:int ->
  ?response_cache_capacity:int ->
  (server_context -> Wire.t -> (Wire.t, string) result) ->
  unit
(** Register the service on the network. The handler sees only
    authenticated requests; ticket/authenticator failures are answered with
    in-band errors before it runs. A repeated authenticator within the skew
    window — a client retransmission or an adversarial replay — does {e not}
    re-run the handler: the original sealed response is returned from an
    internal response cache, giving exactly-once handler execution under
    at-least-once delivery. (A replayer gains nothing: the cached response
    is sealed under the session key.)

    The response cache holds at most [response_cache_capacity] entries
    (default 4096). At capacity, expired entries are purged; if all are
    live, the soonest-to-expire one is evicted and the net's
    ["rpc.cache_evictions"] metric ticks. *)

val call :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  ?subkey:string ->
  ?retries:int ->
  ?timeout_us:int ->
  ?backoff:Sim.Retry.backoff ->
  Wire.t ->
  (Wire.t, string) result
(** One authenticated exchange with the service named by
    [creds.cred_service]. The response is decrypted and authenticated; a
    tampered or substituted response surfaces as [Error].

    With [retries > 0] (or an explicit [timeout_us]/[backoff]), transient
    transport failures are retried under {!Sim.Retry}: each retransmission
    reuses the {e same} request bytes, so the server's response cache
    answers duplicates without re-running the handler. Defaults ([retries
    = 0], no timeout) preserve the single-shot behaviour. *)
