(** Authenticated application RPC over tickets.

    The standard Kerberos application exchange: the client sends its ticket
    and a fresh authenticator with the request; the server learns the
    client's authenticated identity and the session key, and seals its
    response under the session key (or the authenticator's subkey). Every
    service in the system — authorization server, group server, accounting
    servers, end-servers — speaks this. *)

type server_context = {
  rpc_client : Principal.t;  (** authenticated identity of the caller *)
  rpc_session_key : string;
  rpc_auth_data : Wire.t list;
      (** restrictions carried by the caller's ticket + authenticator *)
}

type cache
(** A response cache (authenticator digest -> expiry * sealed reply) as a
    first-class value, so shard replicas can share or seed one another's:
    replication ships each handled request's [auth_id]/reply pair to the
    standby, whose seeded cache then answers a failed-over client's
    retransmission without executing the request a second time. *)

val create_cache : ?capacity:int -> unit -> cache
(** Default capacity 4096; at capacity, expired entries are purged, then
    the soonest-to-expire live entry is evicted. *)

val seed_response : cache -> now:int -> auth_id:string -> expires:int -> reply:string -> unit

val cached : cache -> auth_id:string -> bool
(** Is a response recorded under this authenticator digest? Replication
    assertions and eviction-order regression tests; not a freshness check
    (an expired entry still answers [true] until it is purged). *)

val serve :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  ?node:string ->
  ?max_skew_us:int ->
  ?response_cache_capacity:int ->
  ?cache:cache ->
  ?on_handled:(auth_id:string -> expires:int -> reply:string -> unit) ->
  (server_context -> Wire.t -> (Wire.t, string) result) ->
  unit
(** Register the service on the network. The handler sees only
    authenticated requests; ticket/authenticator failures are answered with
    in-band errors before it runs. A repeated authenticator within the skew
    window — a client retransmission or an adversarial replay — does {e not}
    re-run the handler: the original sealed response is returned from an
    internal response cache, giving exactly-once handler execution under
    at-least-once delivery. (A replayer gains nothing: the cached response
    is sealed under the session key.)

    [node] is the network registration name (default: the service
    principal). Shard replicas register the {e same} logical identity [me]
    (and key) under distinct physical nodes, so a ticket for the shard is
    honoured by either replica.

    [cache] supplies an externally owned response cache (a standby's,
    seeded by replication); otherwise an internal one holding at most
    [response_cache_capacity] entries (default 4096) is used. At capacity,
    expired entries are purged; if all are live, the soonest-to-expire one
    is evicted and the net's ["rpc.cache_evictions"] metric ticks.

    [on_handled] fires after each request the handler {e actually ran}
    (cache hits excluded) with the authenticator digest, the cache expiry,
    and the sealed reply bytes — the feed a primary ships to its standby. *)

val call :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  ?subkey:string ->
  ?retries:int ->
  ?timeout_us:int ->
  ?backoff:Sim.Retry.backoff ->
  ?dst:string ->
  ?fallback_dsts:string list ->
  ?on_failover:(from_:string -> to_:string -> unit) ->
  Wire.t ->
  (Wire.t, string) result
(** One authenticated exchange with the service named by
    [creds.cred_service]. The response is decrypted and authenticated; a
    tampered or substituted response surfaces as [Error].

    With [retries > 0] (or an explicit [timeout_us]/[backoff]), transient
    transport failures are retried under {!Sim.Retry}: each retransmission
    reuses the {e same} request bytes, so the server's response cache
    answers duplicates without re-running the handler. Defaults ([retries
    = 0], no timeout) preserve the single-shot behaviour.

    [dst] overrides the physical destination (default: the service
    principal's name). [fallback_dsts] are further replicas of the same
    logical service, tried in order — before an attempt if the current
    target is observably down, or after the retry budget against it is
    exhausted with a transient error. Fail-over reuses the same request
    bytes, ticks ["cluster.failovers"], opens a ["cluster.failover"] span,
    and calls [on_failover]. *)

val call_batch :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  ?subkey:string ->
  ?retries:int ->
  ?timeout_us:int ->
  ?backoff:Sim.Retry.backoff ->
  ?dst:string ->
  ?fallback_dsts:string list ->
  ?on_failover:(from_:string -> to_:string -> unit) ->
  Wire.t list ->
  ((Wire.t, string) result list, string) result
(** Request pipelining: N payloads under {e one} ticket/authenticator
    exchange — one client seal, one round trip, one server open + sealed
    coalesced reply — instead of N full exchanges. Transport semantics
    (retries, timeout, backoff, replica fail-over, same-bytes
    retransmission) are exactly {!call}'s, applied to the batch as a
    whole; the server runs its ordinary handler once per item, in order,
    and caches the coalesced reply under the single authenticator, so
    however often the batch is retransmitted or fails over each item
    executes exactly once. The outer [Error] is a transport or
    authentication failure (no item is known to have executed... or the
    whole batch was already executed and the cached reply was lost to the
    skew window — the same at-least-once caveat as [call]); the inner
    results are the per-item handler outcomes, positionally matching the
    payloads. An empty payload list returns [Ok []] without touching the
    network. Metrics: ["rpc.batch.calls"]/["rpc.batch.coalesced"] client
    side, ["rpc.batch.requests"]/["rpc.batch.items"] server side. *)
