type t = {
  net : Sim.Net.t;
  name : Principal.t;
  directory : Directory.t;
  lifetime_us : int;
  max_skew_us : int;
  require_preauth : bool;
  cross_keys : (string, string) Hashtbl.t; (* peer realm -> inter-realm key *)
}

let create net ~name ~directory ?(lifetime_us = 8 * 3600 * 1_000_000)
    ?(max_skew_us = 5 * 60 * 1_000_000) ?(require_preauth = false) () =
  (match Directory.symmetric directory name with
  | Some _ -> ()
  | None -> invalid_arg "Kdc.create: KDC key not registered in directory");
  { net; name; directory; lifetime_us; max_skew_us; require_preauth;
    cross_keys = Hashtbl.create 4 }

let name t = t.name

let add_cross_realm t ~peer_realm ~key = Hashtbl.replace t.cross_keys peer_realm key

let federate a b =
  let key = Sim.Net.fresh_key a.net in
  add_cross_realm a ~peer_realm:b.name.Principal.realm ~key;
  add_cross_realm b ~peer_realm:a.name.Principal.realm ~key

(* The key a ticket for [service] must be sealed under: a local service's
   long-term key, or the inter-realm key when the target is a foreign KDC
   (the cross-realm TGT of Kerberos). *)
let service_key_for t service =
  if service.Principal.realm = t.name.Principal.realm then
    match Directory.symmetric t.directory service with
    | Some key -> Ok key
    | None -> Error (Printf.sprintf "unknown service %s" (Principal.to_string service))
  else
    match Hashtbl.find_opt t.cross_keys service.Principal.realm with
    | Some key when service.Principal.name = "kdc" -> Ok key
    | Some _ -> Error "cross-realm tickets may only name the remote realm's KDC"
    | None -> Error (Printf.sprintf "no trust path to realm %s" service.Principal.realm)

let metrics_incr t name = Sim.Metrics.incr (Sim.Net.metrics t.net) name

(* Open a presented TGT: sealed under our own key for local clients, or
   under an inter-realm key when a foreign KDC issued it. Returns which key
   opened it. A cross-realm open binds the client to the trusting realm:
   the peer that sealed the ticket may only speak for its own principals,
   never for ours or a third realm's — otherwise any single federated peer
   could mint tickets for users of every realm we trust, including our own.
   Inter-realm keys are tried in sorted realm order (key-trial order must
   not depend on Hashtbl history) and every attempted open is metered. *)
let open_tgt t blob =
  let own_key =
    match Directory.symmetric t.directory t.name with
    | Some k -> k
    | None -> assert false (* checked in [create] *)
  in
  metrics_incr t "crypto.open";
  match Ticket.open_ ~service_key:own_key blob with
  | Ok tgt -> Ok (tgt, `Local)
  | Error _ ->
      let peers =
        List.sort compare (Hashtbl.fold (fun realm key acc -> (realm, key) :: acc) t.cross_keys [])
      in
      let rec trial = function
        | [] -> Error "cannot open presented ticket"
        | (peer_realm, key) :: rest -> (
            metrics_incr t "crypto.open";
            match Ticket.open_ ~service_key:key blob with
            | Error _ -> trial rest
            | Ok tgt ->
                (* The sealing key is authenticated, so this key's owner is
                   the issuer; stop trialling and judge the contents. *)
                let client_realm = tgt.Ticket.client.Principal.realm in
                if client_realm <> peer_realm || client_realm = t.name.Principal.realm then
                  Error
                    (Printf.sprintf
                       "cross-realm TGT client realm %s does not match trusting realm %s"
                       client_realm peer_realm)
                else Ok (tgt, `Cross peer_realm))
      in
      trial peers

let err msg = Wire.encode (Wire.L [ Wire.S "err"; Wire.S msg ])
let ok parts = Wire.encode (Wire.L (Wire.S "ok" :: parts))

(* Issue a ticket for [client] at [service] and build the reply sealed under
   [reply_key]. *)
let issue t ~client ~service ~auth_data ~expires ~nonce ~reply_key ~reply_ad =
  match service_key_for t service with
  | Error e -> err e
  | Ok service_key ->
      let now = Sim.Net.now t.net in
      let session_key = Sim.Net.fresh_key t.net in
      let body =
        {
          Ticket.client;
          service;
          session_key;
          auth_time = now;
          expires;
          authorization_data = auth_data;
        }
      in
      metrics_incr t "crypto.seal";
      let blob = Ticket.seal ~service_key ~nonce:(Sim.Net.fresh_nonce t.net) body in
      let enc_part =
        Wire.encode
          (Wire.L
             [ Wire.S session_key;
               Wire.I nonce;
               Wire.I expires;
               Principal.to_wire service;
               Wire.L auth_data ])
      in
      metrics_incr t "crypto.seal";
      let sealed =
        Crypto.Aead.encode
          (Crypto.Aead.seal ~key:reply_key ~ad:reply_ad ~nonce:(Sim.Net.fresh_nonce t.net) enc_part)
      in
      Sim.Trace.record (Sim.Net.trace t.net) ~time:now
        ~actor:(Principal.to_string t.name)
        (Printf.sprintf "issued ticket: client=%s service=%s restrictions=%d"
           (Principal.to_string client) (Principal.to_string service) (List.length auth_data));
      ok [ Wire.S blob; Wire.S sealed ]

(* Pre-authentication (the PA-ENC-TIMESTAMP analogue): a fresh timestamp
   sealed under the client's long-term key, proving the requester knows the
   key before the KDC issues anything. *)
let check_preauth t ~client_key blob =
  if blob = "" then
    if t.require_preauth then Error "as: pre-authentication required" else Ok ()
  else
    match Crypto.Aead.decode blob with
    | None -> Error "as: malformed pre-authentication"
    | Some box -> (
        match Crypto.Aead.open_ ~key:client_key ~ad:"preauth" box with
        | None -> Error "as: pre-authentication failed"
        | Some plaintext -> (
            match Result.bind (Wire.decode plaintext) Wire.to_int with
            | Error _ -> Error "as: malformed pre-authentication timestamp"
            | Ok ts ->
                if abs (ts - Sim.Net.now t.net) > t.max_skew_us then
                  Error "as: pre-authentication timestamp outside window"
                else Ok ()))

let handle_as t fields =
  let open Wire in
  let parsed =
    let* client = Result.bind (field fields 1) Principal.of_wire in
    let* service = Result.bind (field fields 2) Principal.of_wire in
    let* nonce = Result.bind (field fields 3) to_int in
    let* auth_data = Result.bind (field fields 4) to_list in
    let preauth =
      match Result.bind (field fields 5) to_string with Ok s -> s | Error _ -> ""
    in
    Ok (client, service, nonce, auth_data, preauth)
  in
  match parsed with
  | Error e -> err ("as: " ^ e)
  | Ok (client, service, nonce, auth_data, preauth) -> (
      metrics_incr t "kdc.as_req";
      match Directory.symmetric t.directory client with
      | None -> err (Printf.sprintf "unknown client %s" (Principal.to_string client))
      | Some client_key -> (
          match check_preauth t ~client_key preauth with
          | Error e -> err e
          | Ok () ->
              let expires = Sim.Net.now t.net + t.lifetime_us in
              issue t ~client ~service ~auth_data ~expires ~nonce ~reply_key:client_key
                ~reply_ad:"as-rep"))

let handle_tgs t fields =
  let open Wire in
  let parsed =
    let* tgt_blob = Result.bind (field fields 1) to_string in
    let* auth_blob = Result.bind (field fields 2) to_string in
    let* target = Result.bind (field fields 3) Principal.of_wire in
    let* nonce = Result.bind (field fields 4) to_int in
    Ok (tgt_blob, auth_blob, target, nonce)
  in
  match parsed with
  | Error e -> err ("tgs: " ^ e)
  | Ok (tgt_blob, auth_blob, target, nonce) -> (
      metrics_incr t "kdc.tgs_req";
      match open_tgt t tgt_blob with
      | Error e -> err ("tgs: " ^ e)
      | Ok (tgt, origin) ->
          (match origin with
          | `Local -> ()
          | `Cross peer -> (
              metrics_incr t "kdc.tgs_cross";
              Sim.Trace.record (Sim.Net.trace t.net) ~time:(Sim.Net.now t.net)
                ~actor:(Principal.to_string t.name)
                (Printf.sprintf "cross-realm TGT accepted: client=%s trusting=%s"
                   (Principal.to_string tgt.Ticket.client) peer)));
          let now = Sim.Net.now t.net in
          if not (Principal.equal tgt.Ticket.service t.name) then err "tgs: ticket is not a TGT"
          else if tgt.Ticket.expires <= now then err "tgs: TGT expired"
          else begin
            metrics_incr t "crypto.open";
            match Ticket.open_authenticator ~session_key:tgt.Ticket.session_key auth_blob with
            | Error e -> err ("tgs: " ^ e)
            | Ok auth ->
                if not (Principal.equal auth.Ticket.auth_client tgt.Ticket.client) then
                  err "tgs: authenticator client mismatch"
                else if abs (auth.Ticket.timestamp - now) > t.max_skew_us then
                  err "tgs: authenticator too old"
                else begin
                  (* Restrictions are additive: union of TGT's and the
                     authenticator's, never fewer. *)
                  let auth_data = tgt.Ticket.authorization_data @ auth.Ticket.auth_data in
                  let expires = min tgt.Ticket.expires (now + t.lifetime_us) in
                  (* The client decrypts the reply under the subkey it sent,
                     so silently falling back to the session key here would
                     surface as an opaque decrypt failure on its side.
                     Refuse malformed subkeys with a clean error instead. *)
                  match auth.Ticket.subkey with
                  | Some k when String.length k <> 32 -> err "tgs: subkey must be 32 bytes"
                  | (Some _ | None) as subkey ->
                      let reply_key =
                        Option.value subkey ~default:tgt.Ticket.session_key
                      in
                      issue t ~client:tgt.Ticket.client ~service:target ~auth_data ~expires
                        ~nonce ~reply_key ~reply_ad:"tgs-rep"
                end
          end)

let handle t request =
  (* Ambient parentage: the sim is synchronous, so this span nests under
     the client's kdc.as/kdc.tgs span without any envelope plumbing. *)
  let sp = Sim.Net.spans t.net in
  Sim.Span.with_span sp ~actor:(Principal.to_string t.name) ~kind:"kdc.serve" @@ fun () ->
  match Wire.decode request with
  | Error e -> err ("malformed request: " ^ e)
  | Ok v -> (
      match Result.bind (Wire.field v 0) Wire.to_string with
      | Ok "as" ->
          Sim.Span.add_attr sp "op" "as";
          handle_as t v
      | Ok "tgs" ->
          Sim.Span.add_attr sp "op" "tgs";
          handle_tgs t v
      | Ok other -> err (Printf.sprintf "unknown operation %S" other)
      | Error e -> err e)

let install t = Sim.Net.register t.net ~name:(Principal.to_string t.name) (handle t)

module Client = struct
  let parse_reply ~reply_key ~reply_ad ~expected_nonce ~client reply =
    let open Wire in
    let* v = Wire.decode reply in
    let* status = Result.bind (field v 0) to_string in
    if status = "err" then
      let* msg = Result.bind (field v 1) to_string in
      Error msg
    else
      let* ticket_blob = Result.bind (field v 1) to_string in
      let* sealed = Result.bind (field v 2) to_string in
      match Crypto.Aead.decode sealed with
      | None -> Error "reply: malformed encrypted part"
      | Some box -> (
          match Crypto.Aead.open_ ~key:reply_key ~ad:reply_ad box with
          | None -> Error "reply: cannot decrypt (wrong key?)"
          | Some plaintext ->
              let* part = Wire.decode plaintext in
              let* session_key = Result.bind (field part 0) to_string in
              let* nonce = Result.bind (field part 1) to_int in
              let* expires = Result.bind (field part 2) to_int in
              let* service = Result.bind (field part 3) Principal.of_wire in
              let* auth_data = Result.bind (field part 4) to_list in
              if nonce <> expected_nonce then Error "reply: nonce mismatch (replay?)"
              else
                Ok
                  {
                    Ticket.ticket_blob;
                    session_key;
                    cred_client = client;
                    cred_service = service;
                    cred_expires = expires;
                    cred_auth_data = auth_data;
                  })

  let fresh_nonce_int net =
    let b = Crypto.Drbg.generate (Sim.Net.drbg net) 6 in
    String.fold_left (fun acc c -> (acc lsl 8) lor Char.code c) 0 b

  let authenticate net ~kdc ~client ~client_key ~service ?(auth_data = []) () =
    Sim.Span.with_span (Sim.Net.spans net) ~actor:(Principal.to_string client) ~kind:"kdc.as"
      ~attrs:[ ("service", Principal.to_string service) ]
    @@ fun () ->
    let nonce = fresh_nonce_int net in
    let preauth =
      (* A malformed local key cannot pre-authenticate; send nothing and let
         the KDC decide (it will refuse when preauth is required). *)
      if String.length client_key <> 32 then ""
      else
        Crypto.Aead.encode
          (Crypto.Aead.seal ~key:client_key ~ad:"preauth" ~nonce:(Sim.Net.fresh_nonce net)
             (Wire.encode (Wire.I (Sim.Net.now net))))
    in
    let request =
      Wire.encode
        (Wire.L
           [ Wire.S "as";
             Principal.to_wire client;
             Principal.to_wire service;
             Wire.I nonce;
             Wire.L auth_data;
             Wire.S preauth ])
    in
    match Sim.Net.rpc net ~src:(Principal.to_string client) ~dst:(Principal.to_string kdc) request with
    | Error e -> Error e
    | Ok reply ->
        parse_reply ~reply_key:client_key ~reply_ad:"as-rep" ~expected_nonce:nonce ~client reply

  let derive net ~kdc ~tgt ~target ?subkey ?(auth_data = []) () =
    Sim.Span.with_span (Sim.Net.spans net)
      ~actor:(Principal.to_string tgt.Ticket.cred_client)
      ~kind:"kdc.tgs"
      ~attrs:[ ("target", Principal.to_string target) ]
    @@ fun () ->
    match subkey with
    | Some k when String.length k <> 32 ->
        (* The KDC would refuse it anyway; failing here names the actual
           problem instead of a downstream decrypt error. *)
        Error "derive: subkey must be 32 bytes"
    | _ ->
    let nonce = fresh_nonce_int net in
    let authenticator =
      {
        Ticket.auth_client = tgt.Ticket.cred_client;
        timestamp = Sim.Net.now net;
        subkey;
        auth_data;
      }
    in
    let auth_blob =
      Ticket.seal_authenticator ~session_key:tgt.Ticket.session_key
        ~nonce:(Sim.Net.fresh_nonce net) authenticator
    in
    let request =
      Wire.encode
        (Wire.L
           [ Wire.S "tgs";
             Wire.S tgt.Ticket.ticket_blob;
             Wire.S auth_blob;
             Principal.to_wire target;
             Wire.I nonce ])
    in
    let src = Principal.to_string tgt.Ticket.cred_client in
    match Sim.Net.rpc net ~src ~dst:(Principal.to_string kdc) request with
    | Error e -> Error e
    | Ok reply ->
        let reply_key = Option.value subkey ~default:tgt.Ticket.session_key in
        parse_reply ~reply_key ~reply_ad:"tgs-rep" ~expected_nonce:nonce
          ~client:tgt.Ticket.cred_client reply
end
