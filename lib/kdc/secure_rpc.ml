type server_context = {
  rpc_client : Principal.t;
  rpc_session_key : string;
  rpc_auth_data : Wire.t list;
}

let err msg = Wire.encode (Wire.L [ Wire.S "err"; Wire.S msg ])

let serve net ~me ~my_key ?(max_skew_us = 5 * 60 * 1_000_000)
    ?(response_cache_capacity = 4096) handler =
  if response_cache_capacity < 1 then
    invalid_arg "Secure_rpc.serve: response cache capacity must be positive";
  let metrics = Sim.Net.metrics net in
  (* Response cache over authenticator blobs: within the freshness window an
     identical authenticator is a retransmission (or a replay), and the
     handler must not run again — accept-once restrictions, check-number
     redemption, and ledger mutations fire exactly once under at-least-once
     delivery. The duplicate gets the original sealed response back: useless
     to an eavesdropping replayer (sealed under the session key), and
     exactly what a retrying legitimate client needs. Capacity-bounded:
     when full, expired entries are purged; if every entry is still live,
     the soonest-to-expire response is dropped (its retransmission window
     closes first) and "rpc.cache_evictions" ticks. *)
  let seen_auths : (string, int * string) Hashtbl.t = Hashtbl.create 64 in
  let cache_insert ~now auth_id entry =
    if Hashtbl.length seen_auths >= response_cache_capacity then begin
      let stale =
        Hashtbl.fold
          (fun k (expiry, _) acc -> if expiry <= now then k :: acc else acc)
          seen_auths []
      in
      List.iter (Hashtbl.remove seen_auths) stale;
      if Hashtbl.length seen_auths >= response_cache_capacity then begin
        match
          Hashtbl.fold
            (fun k (expiry, _) best ->
              match best with
              | Some (_, e) when e <= expiry -> best
              | _ -> Some (k, expiry))
            seen_auths None
        with
        | None -> ()
        | Some (k, _) ->
            Hashtbl.remove seen_auths k;
            Sim.Metrics.incr metrics "rpc.cache_evictions"
      end
    end;
    Hashtbl.replace seen_auths auth_id entry
  in
  let handle request =
    let now = Sim.Net.now net in
    let open Wire in
    let parsed =
      let* v = Wire.decode request in
      let* tag = Result.bind (field v 0) to_string in
      if tag <> "secure" then Error "not a secure-rpc request"
      else
        let* ticket_blob = Result.bind (field v 1) to_string in
        let* auth_blob = Result.bind (field v 2) to_string in
        let* payload = field v 3 in
        (* Optional trace context (field 4, present only when the caller
           runs traced): ids only — never trusted for authorization. *)
        let remote =
          match field v 4 with
          | Ok (L [ S tr; S sp ]) -> Some { Sim.Span.ctx_trace = tr; ctx_span = sp }
          | _ -> None
        in
        Ok (ticket_blob, auth_blob, payload, remote)
    in
    match parsed with
    | Error e -> err e
    | Ok (ticket_blob, auth_blob, payload, remote) ->
        Sim.Span.with_span (Sim.Net.spans net) ~actor:(Principal.to_string me)
          ~kind:"rpc.serve" ?parent:remote
          (fun () ->
        Sim.Metrics.incr metrics "crypto.open";
        match Ticket.open_ ~service_key:my_key ticket_blob with
        | Error e -> err e
        | Ok ticket ->
            if not (Principal.equal ticket.Ticket.service me) then
              err "ticket is for a different service"
            else if ticket.Ticket.expires <= now then err "ticket expired"
            else begin
              Sim.Metrics.incr metrics "crypto.open";
              match
                Ticket.open_authenticator ~session_key:ticket.Ticket.session_key auth_blob
              with
              | Error e -> err e
              | Ok auth ->
                  if not (Principal.equal auth.Ticket.auth_client ticket.Ticket.client) then
                    err "authenticator does not match ticket"
                  else if abs (auth.Ticket.timestamp - now) > max_skew_us then
                    err "authenticator outside freshness window"
                  else begin
                    let auth_id = Crypto.Sha256.digest auth_blob in
                    match Hashtbl.find_opt seen_auths auth_id with
                    | Some (_, cached_reply) ->
                        Sim.Metrics.incr metrics "rpc.dedup";
                        cached_reply
                    | None ->
                        let ctx =
                          {
                            rpc_client = ticket.Ticket.client;
                            rpc_session_key = ticket.Ticket.session_key;
                            rpc_auth_data =
                              ticket.Ticket.authorization_data @ auth.Ticket.auth_data;
                          }
                        in
                        let reply_key =
                          match auth.Ticket.subkey with
                          | Some k when String.length k = 32 -> k
                          | Some _ | None -> ticket.Ticket.session_key
                        in
                        let body =
                          match handler ctx payload with
                          | Ok reply -> Wire.L [ Wire.S "ok"; reply ]
                          | Error e -> Wire.L [ Wire.S "err"; Wire.S e ]
                        in
                        Sim.Metrics.incr metrics "crypto.seal";
                        let sealed =
                          Crypto.Aead.encode
                            (Crypto.Aead.seal ~key:reply_key ~ad:"secure-rpc-resp"
                               ~nonce:(Sim.Net.fresh_nonce net) (Wire.encode body))
                        in
                        let reply = Wire.encode (Wire.L [ Wire.S "sealed"; Wire.S sealed ]) in
                        cache_insert ~now auth_id (now + max_skew_us, reply);
                        reply
                  end
            end)
  in
  Sim.Net.register net ~name:(Principal.to_string me) handle

let call net ~creds ?subkey ?(retries = 0) ?timeout_us ?backoff payload =
  let open Wire in
  let src = Principal.to_string creds.Ticket.cred_client in
  let dst = Principal.to_string creds.Ticket.cred_service in
  let sp = Sim.Net.spans net in
  Sim.Span.with_span sp ~actor:src ~kind:"rpc.call" ~attrs:[ ("dst", dst) ] @@ fun () ->
  let metrics = Sim.Net.metrics net in
  Sim.Metrics.incr metrics "crypto.seal";
  let authenticator =
    {
      Ticket.auth_client = creds.Ticket.cred_client;
      timestamp = Sim.Net.now net;
      subkey;
      auth_data = [];
    }
  in
  let auth_blob =
    Ticket.seal_authenticator ~session_key:creds.Ticket.session_key
      ~nonce:(Sim.Net.fresh_nonce net) authenticator
  in
  (* When this call runs inside a span, the envelope grows a fifth field
     carrying (trace_id, span_id) of the *call* span: the request bytes are
     built once and reused verbatim by every retransmission (the response
     cache depends on that), so per-attempt ids cannot ride along — the
     server's span parents to the call, attempts are its siblings beneath.
     Untraced runs produce byte-identical envelopes to before. *)
  let ctx_fields =
    match Sim.Span.context sp with
    | None -> []
    | Some c -> [ Wire.L [ Wire.S c.Sim.Span.ctx_trace; Wire.S c.Sim.Span.ctx_span ] ]
  in
  let request =
    Wire.encode
      (Wire.L
         ([ Wire.S "secure"; Wire.S creds.Ticket.ticket_blob; Wire.S auth_blob; payload ]
         @ ctx_fields))
  in
  (* Retransmissions reuse the exact request bytes: the same authenticator
     keys the server's response cache, so a retried request is answered from
     that cache instead of re-running the handler (or being rejected as a
     replay). Only transient transport failures retry; in-band service
     errors return immediately. *)
  let attempt = ref 0 in
  let send () =
    incr attempt;
    Sim.Span.with_span sp ~actor:src ~kind:"rpc.attempt"
      ~attrs:[ ("dst", dst); ("n", string_of_int !attempt) ]
      (fun () -> Sim.Net.rpc net ~src ~dst request)
  in
  let exchange =
    if retries = 0 && timeout_us = None && backoff = None then send
    else begin
      let p = Sim.Retry.policy ~retries ?timeout_us ?backoff () in
      fun () ->
        Sim.Retry.run ~clock:(Sim.Net.clock net) ~drbg:(Sim.Net.drbg net)
          ~metrics:(Sim.Net.metrics net) p send
    end
  in
  match exchange () with
  | Error e -> Error e
  | Ok reply -> (
      let* v = Wire.decode reply in
      let* tag = Result.bind (field v 0) to_string in
      match tag with
      | "err" ->
          let* msg = Result.bind (field v 1) to_string in
          Error msg
      | "sealed" -> (
          let* sealed = Result.bind (field v 1) to_string in
          let reply_key = Option.value subkey ~default:creds.Ticket.session_key in
          Sim.Metrics.incr metrics "crypto.open";
          match Crypto.Aead.decode sealed with
          | None -> Error "response: malformed seal"
          | Some box -> (
              match Crypto.Aead.open_ ~key:reply_key ~ad:"secure-rpc-resp" box with
              | None -> Error "response: seal verification failed"
              | Some plaintext -> (
                  let* body = Wire.decode plaintext in
                  let* status = Result.bind (field body 0) to_string in
                  match status with
                  | "ok" -> field body 1
                  | "err" ->
                      let* msg = Result.bind (field body 1) to_string in
                      Error msg
                  | other -> Error (Printf.sprintf "response: unknown status %S" other))))
      | other -> Error (Printf.sprintf "response: unknown tag %S" other))
