type server_context = {
  rpc_client : Principal.t;
  rpc_session_key : string;
  rpc_auth_data : Wire.t list;
}

let err msg = Wire.encode (Wire.L [ Wire.S "err"; Wire.S msg ])

(* Response cache over authenticator blobs: within the freshness window an
   identical authenticator is a retransmission (or a replay), and the
   handler must not run again — accept-once restrictions, check-number
   redemption, and ledger mutations fire exactly once under at-least-once
   delivery. The duplicate gets the original sealed response back: useless
   to an eavesdropping replayer (sealed under the session key), and
   exactly what a retrying legitimate client needs. Capacity-bounded:
   when full, expired entries are purged; if every entry is still live,
   the soonest-to-expire response is dropped (its retransmission window
   closes first) and "rpc.cache_evictions" ticks.

   The cache is a first-class value so a standby replica can hold one and
   have it seeded by replication: a client that fails over after the
   primary executed its request but died before answering gets the
   original sealed reply from the standby instead of a second execution. *)
type cache = {
  capacity : int;
  seen_auths : (string, int * int * string) Hashtbl.t;
      (* digest -> (expiry, insertion seq, sealed reply) *)
  mutable next_seq : int;
      (* monotonic insertion counter — the eviction tie-break. Hashtbl fold
         order depends on resize history, so two replicas holding the same
         entries (primary vs replication-seeded standby) could otherwise
         evict different equal-expiry responses and diverge. *)
}

let create_cache ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Secure_rpc.create_cache: capacity must be positive";
  { capacity; seen_auths = Hashtbl.create 64; next_seq = 0 }

let cache_insert ?metrics cache ~now auth_id ~expires ~reply =
  let { capacity; seen_auths; _ } = cache in
  if Hashtbl.length seen_auths >= capacity then begin
    let stale =
      Hashtbl.fold
        (fun k (expiry, _, _) acc -> if expiry <= now then k :: acc else acc)
        seen_auths []
    in
    List.iter (Hashtbl.remove seen_auths) stale;
    if Hashtbl.length seen_auths >= capacity then begin
      match
        Hashtbl.fold
          (fun k (expiry, seq, _) best ->
            match best with
            | Some (_, e, s) when (e, s) <= (expiry, seq) -> best
            | _ -> Some (k, expiry, seq))
          seen_auths None
      with
      | None -> ()
      | Some (k, _, _) ->
          Hashtbl.remove seen_auths k;
          (match metrics with
          | Some m -> Sim.Metrics.incr m "rpc.cache_evictions"
          | None -> ())
    end
  end;
  Hashtbl.replace seen_auths auth_id (expires, cache.next_seq, reply);
  cache.next_seq <- cache.next_seq + 1

let seed_response cache ~now ~auth_id ~expires ~reply =
  cache_insert cache ~now auth_id ~expires ~reply

let cached cache ~auth_id = Hashtbl.mem cache.seen_auths auth_id

let serve net ~me ~my_key ?node ?(max_skew_us = 5 * 60 * 1_000_000)
    ?(response_cache_capacity = 4096) ?cache ?on_handled handler =
  let metrics = Sim.Net.metrics net in
  let node = Option.value node ~default:(Principal.to_string me) in
  let cache =
    match cache with Some c -> c | None -> create_cache ~capacity:response_cache_capacity ()
  in
  let seen_auths = cache.seen_auths in
  let handle request =
    let now = Sim.Net.now net in
    let open Wire in
    let parsed =
      let* v = Wire.decode request in
      let* tag = Result.bind (field v 0) to_string in
      if tag <> "secure" then Error "not a secure-rpc request"
      else
        let* ticket_blob = Result.bind (field v 1) to_string in
        let* auth_blob = Result.bind (field v 2) to_string in
        let* payload = field v 3 in
        (* Optional trace context (field 4, present only when the caller
           runs traced): ids only — never trusted for authorization. *)
        let remote =
          match field v 4 with
          | Ok (L [ S tr; S sp ]) -> Some { Sim.Span.ctx_trace = tr; ctx_span = sp }
          | _ -> None
        in
        Ok (ticket_blob, auth_blob, payload, remote)
    in
    match parsed with
    | Error e -> err e
    | Ok (ticket_blob, auth_blob, payload, remote) ->
        Sim.Span.with_span (Sim.Net.spans net) ~actor:(Principal.to_string me)
          ~kind:"rpc.serve" ?parent:remote
          (fun () ->
        Sim.Metrics.incr metrics "crypto.open";
        match Ticket.open_ ~service_key:my_key ticket_blob with
        | Error e -> err e
        | Ok ticket ->
            if not (Principal.equal ticket.Ticket.service me) then
              err "ticket is for a different service"
            else if ticket.Ticket.expires <= now then err "ticket expired"
            else begin
              Sim.Metrics.incr metrics "crypto.open";
              match
                Ticket.open_authenticator ~session_key:ticket.Ticket.session_key auth_blob
              with
              | Error e -> err e
              | Ok auth ->
                  if not (Principal.equal auth.Ticket.auth_client ticket.Ticket.client) then
                    err "authenticator does not match ticket"
                  else if abs (auth.Ticket.timestamp - now) > max_skew_us then
                    err "authenticator outside freshness window"
                  else begin
                    let auth_id = Crypto.Sha256.digest auth_blob in
                    match Hashtbl.find_opt seen_auths auth_id with
                    | Some (_, _, cached_reply) ->
                        Sim.Metrics.incr metrics "rpc.dedup";
                        cached_reply
                    | None ->
                        let ctx =
                          {
                            rpc_client = ticket.Ticket.client;
                            rpc_session_key = ticket.Ticket.session_key;
                            rpc_auth_data =
                              ticket.Ticket.authorization_data @ auth.Ticket.auth_data;
                          }
                        in
                        let reply_key =
                          match auth.Ticket.subkey with
                          | Some k when String.length k = 32 -> k
                          | Some _ | None -> ticket.Ticket.session_key
                        in
                        let run_one item =
                          match handler ctx item with
                          | Ok reply -> Wire.L [ Wire.S "ok"; reply ]
                          | Error e -> Wire.L [ Wire.S "err"; Wire.S e ]
                        in
                        let body =
                          match payload with
                          | Wire.L [ Wire.S "x-batch"; Wire.L items ] ->
                              (* Pipelined request: N payloads authenticated,
                                 deduplicated, sealed and cached as ONE
                                 exchange. Items run in order against the
                                 same context; each gets its own ok/err so
                                 one failing item never poisons the rest.
                                 The coalesced reply is cached under the
                                 single authenticator, so a retransmitted
                                 batch is answered verbatim — the handler
                                 runs exactly once per item however often
                                 the batch is re-sent or fails over. *)
                              Sim.Metrics.incr metrics "rpc.batch.requests";
                              Sim.Metrics.add metrics "rpc.batch.items"
                                (List.length items);
                              Wire.L
                                [
                                  Wire.S "ok";
                                  Wire.L [ Wire.S "x-batch-resp"; Wire.L (List.map run_one items) ];
                                ]
                          | _ -> run_one payload
                        in
                        Sim.Metrics.incr metrics "crypto.seal";
                        let sealed =
                          Crypto.Aead.encode
                            (Crypto.Aead.seal ~key:reply_key ~ad:"secure-rpc-resp"
                               ~nonce:(Sim.Net.fresh_nonce net) (Wire.encode body))
                        in
                        let reply = Wire.encode (Wire.L [ Wire.S "sealed"; Wire.S sealed ]) in
                        let expires = now + max_skew_us in
                        cache_insert ~metrics cache ~now auth_id ~expires ~reply;
                        (* The handler really ran (not a cache hit): feed the
                           replication hook, reply bytes included, so a
                           standby can answer this client's retransmissions
                           verbatim. *)
                        (match on_handled with
                        | Some f -> f ~auth_id ~expires ~reply
                        | None -> ());
                        reply
                  end
            end)
  in
  Sim.Net.register net ~name:node handle

let call net ~creds ?subkey ?(retries = 0) ?timeout_us ?backoff ?dst ?(fallback_dsts = [])
    ?on_failover payload =
  let open Wire in
  let src = Principal.to_string creds.Ticket.cred_client in
  let dst = Option.value dst ~default:(Principal.to_string creds.Ticket.cred_service) in
  let sp = Sim.Net.spans net in
  Sim.Span.with_span sp ~actor:src ~kind:"rpc.call" ~attrs:[ ("dst", dst) ] @@ fun () ->
  let metrics = Sim.Net.metrics net in
  Sim.Metrics.incr metrics "crypto.seal";
  let authenticator =
    {
      Ticket.auth_client = creds.Ticket.cred_client;
      timestamp = Sim.Net.now net;
      subkey;
      auth_data = [];
    }
  in
  let auth_blob =
    Ticket.seal_authenticator ~session_key:creds.Ticket.session_key
      ~nonce:(Sim.Net.fresh_nonce net) authenticator
  in
  (* When this call runs inside a span, the envelope grows a fifth field
     carrying (trace_id, span_id) of the *call* span: the request bytes are
     built once and reused verbatim by every retransmission (the response
     cache depends on that), so per-attempt ids cannot ride along — the
     server's span parents to the call, attempts are its siblings beneath.
     Untraced runs produce byte-identical envelopes to before. *)
  let ctx_fields =
    match Sim.Span.context sp with
    | None -> []
    | Some c -> [ Wire.L [ Wire.S c.Sim.Span.ctx_trace; Wire.S c.Sim.Span.ctx_span ] ]
  in
  let request =
    Wire.encode
      (Wire.L
         ([ Wire.S "secure"; Wire.S creds.Ticket.ticket_blob; Wire.S auth_blob; payload ]
         @ ctx_fields))
  in
  (* Retransmissions reuse the exact request bytes: the same authenticator
     keys the server's response cache, so a retried request is answered from
     that cache instead of re-running the handler (or being rejected as a
     replay). Only transient transport failures retry; in-band service
     errors return immediately.

     [fallback_dsts] are alternative physical destinations for the same
     logical service (shard replicas sharing the ticket's service identity):
     when the current target is observably down, or the whole retry budget
     against it is exhausted with a transient error, the call moves to the
     next target — still the same request bytes, so a standby whose response
     cache was seeded by replication answers an already-executed request
     instead of running it twice. *)
  let targets = Array.of_list (dst :: fallback_dsts) in
  let target = ref 0 in
  let fail_over () =
    if !target + 1 >= Array.length targets then false
    else begin
      let from_ = targets.(!target) in
      incr target;
      let to_ = targets.(!target) in
      Sim.Metrics.incr metrics "cluster.failovers";
      Sim.Span.with_span sp ~actor:src ~kind:"cluster.failover"
        ~attrs:[ ("from", from_); ("to", to_) ]
        (fun () -> ());
      (match on_failover with Some f -> f ~from_ ~to_ | None -> ());
      true
    end
  in
  let attempt = ref 0 in
  let send () =
    (* Don't burn an attempt on a target already known to be down. *)
    if Sim.Net.is_down net targets.(!target) then ignore (fail_over ());
    incr attempt;
    let d = targets.(!target) in
    Sim.Span.with_span sp ~actor:src ~kind:"rpc.attempt"
      ~attrs:[ ("dst", d); ("n", string_of_int !attempt) ]
      (fun () -> Sim.Net.rpc net ~src ~dst:d request)
  in
  let exchange =
    if retries = 0 && timeout_us = None && backoff = None then send
    else begin
      let p = Sim.Retry.policy ~retries ?timeout_us ?backoff () in
      fun () ->
        Sim.Retry.run ~clock:(Sim.Net.clock net) ~drbg:(Sim.Net.drbg net)
          ~metrics:(Sim.Net.metrics net) p send
    end
  in
  let rec exchange_all () =
    match exchange () with
    | Error e when Sim.Net.transient_error e && fail_over () -> exchange_all ()
    | r -> r
  in
  match exchange_all () with
  | Error e -> Error e
  | Ok reply -> (
      let* v = Wire.decode reply in
      let* tag = Result.bind (field v 0) to_string in
      match tag with
      | "err" ->
          let* msg = Result.bind (field v 1) to_string in
          Error msg
      | "sealed" -> (
          let* sealed = Result.bind (field v 1) to_string in
          let reply_key = Option.value subkey ~default:creds.Ticket.session_key in
          Sim.Metrics.incr metrics "crypto.open";
          match Crypto.Aead.decode sealed with
          | None -> Error "response: malformed seal"
          | Some box -> (
              match Crypto.Aead.open_ ~key:reply_key ~ad:"secure-rpc-resp" box with
              | None -> Error "response: seal verification failed"
              | Some plaintext -> (
                  let* body = Wire.decode plaintext in
                  let* status = Result.bind (field body 0) to_string in
                  match status with
                  | "ok" -> field body 1
                  | "err" ->
                      let* msg = Result.bind (field body 1) to_string in
                      Error msg
                  | other -> Error (Printf.sprintf "response: unknown status %S" other))))
      | other -> Error (Printf.sprintf "response: unknown tag %S" other))

(* Pipelining: N payloads ride one ticket/authenticator exchange — one
   client seal, one server open+seal, one round trip — instead of N. The
   wrapper payload and coalesced reply reuse [call]'s transport verbatim,
   so retry, timeout, backoff and replica failover semantics are exactly
   the single-call ones; the server caches the whole coalesced reply under
   the single authenticator, preserving exactly-once execution per item. A
   transport-level failure (or an authentication refusal) fails the batch
   as a whole; per-item handler errors come back in-order inside [Ok]. *)
let call_batch net ~creds ?subkey ?retries ?timeout_us ?backoff ?dst ?fallback_dsts
    ?on_failover payloads =
  let open Wire in
  match payloads with
  | [] -> Ok []
  | _ -> (
      let n = List.length payloads in
      let metrics = Sim.Net.metrics net in
      Sim.Metrics.incr metrics "rpc.batch.calls";
      Sim.Metrics.add metrics "rpc.batch.coalesced" n;
      match
        call net ~creds ?subkey ?retries ?timeout_us ?backoff ?dst ?fallback_dsts
          ?on_failover
          (Wire.L [ Wire.S "x-batch"; Wire.L payloads ])
      with
      | Error e -> Error e
      | Ok (Wire.L [ Wire.S "x-batch-resp"; Wire.L results ]) when List.length results = n ->
          Ok
            (List.map
               (fun r ->
                 let* status = Result.bind (field r 0) to_string in
                 match status with
                 | "ok" -> field r 1
                 | "err" ->
                     let* msg = Result.bind (field r 1) to_string in
                     Error msg
                 | other -> Error (Printf.sprintf "batch item: unknown status %S" other))
               results)
      | Ok _ -> Error "batch response: shape mismatch")
