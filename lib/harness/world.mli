(** Experiment worlds: a simulated network with a KDC and enrolment
    helpers, shared by the benches (and mirrored by the examples).

    All functions that contact the KDC raise [Failure] on error — worlds are
    experiment scaffolding, not adversarial surface. *)

type t = {
  net : Sim.Net.t;
  dir : Directory.t;
  kdc : Kdc.t;
  kdc_name : Principal.t;
  realm : string;
}

val create : ?seed:string -> ?realm:string -> ?default_latency_us:int -> unit -> t

val create_in : Sim.Net.t -> ?realm:string -> unit -> t
(** Build a realm (fresh directory + KDC) on an existing network — the
    multi-realm harness: one net, one of these per realm, KDCs linked with
    {!Kdc.federate}. *)

val enrol : t -> string -> Principal.t * string
(** Register a principal with a fresh long-term symmetric key. *)

val enrol_pk : t -> ?bits:int -> string -> Principal.t * string * Crypto.Rsa.private_
(** Additionally generate and publish an RSA key pair (default 512 bits). *)

val lookup : t -> Principal.t -> Crypto.Rsa.public option
val login : t -> Principal.t -> Ticket.credentials
(** Obtain a TGT. *)

val credentials_for : t -> tgt:Ticket.credentials -> Principal.t -> Ticket.credentials
val now : t -> int
val hour : int
