(** The shared chaos scenario: the two-bank accounting world of the
    marketplace tests run under a seeded fault plan.

    Buyers bank at first-bank, the shop at shore-bank; a seeded stream of
    check deposits (which clear across the inter-bank [collect] hop) and
    local transfers runs while the environment drops, duplicates, and
    delays messages and — optionally — crashes the drawee bank mid-run.
    All credentials are acquired before the plan is installed, mirroring
    the paper's point that proxy verification needs no online third party:
    chaos hits only the transaction traffic.

    The interesting outcomes are the robustness invariants: value is
    conserved across every ledger however many messages were lost or
    replayed, and no check number is ever redeemed twice. Both are checked
    here so tests and the CLI share one implementation. *)

type config = {
  seed : string;  (** drives the world, the workload, and the fault plan *)
  ops : int;  (** logical operations in the workload stream *)
  drop : float;  (** per-message drop probability, each direction *)
  duplicate : float;  (** per-message duplication probability *)
  jitter_us : int;  (** max extra per-message latency *)
  crash_drawee : bool;  (** crash first-bank for a window mid-run *)
  retries : int;  (** client + inter-bank retransmission budget *)
  timeout_us : int;  (** client timeout per silent failure *)
}

val default : config
(** seed ["chaos"], 40 ops, 15% drop, 10% duplicate, 2ms jitter, crash on,
    8 retries, 10ms timeout. *)

type outcome = {
  attempted : int;
  succeeded : int;  (** operations whose caller saw [Ok] *)
  failed : int;
  conserved : (unit, string) result;  (** {!Invariant.check} over both banks *)
  redemptions : (string * int) list;  (** check number -> times paid at the drawee *)
  double_redemptions : int;  (** check numbers paid more than once (must be 0) *)
  retries_used : int;
  gave_up : int;  (** logical calls that exhausted their retry budget *)
  dedups : int;  (** retransmissions absorbed by a server response cache *)
  faults_dropped : int;
  faults_duplicated : int;
  latency : Sim.Metrics.dist option;  (** per-logical-call virtual latency *)
  metrics : (string * int) list;  (** full counter snapshot, for determinism *)
  trace : string list;  (** rendered audit trail, for determinism *)
}

val run : config -> outcome
(** Deterministic: equal configs produce equal outcomes, metrics and trace
    included. Raises [Failure] only on setup errors before chaos begins. *)
