(* Shared traced scenarios behind `proxykit trace`, the span tests, and the
   BENCH_F4 span-attribution rows. Everything after [Sim.Net.enable_tracing]
   runs inside spans; the outcome carries both the span tree and the global
   metrics diff over the traced window, so callers can check that per-span
   self costs sum to exactly the global delta. *)

type outcome = {
  net : Sim.Net.t;
  requests : int;
  ok : int;
  spans : Sim.Span.span list;
  delta : (string * int) list;  (** global metrics diff over the traced window *)
  dropped : int;  (** spans lost to ring overflow *)
}

let traced_loop net ~actor ~name ~requests ~one =
  let metrics = Sim.Net.metrics net in
  let before = Sim.Metrics.snapshot metrics in
  let ok = ref 0 in
  for i = 1 to requests do
    Sim.Span.with_span (Sim.Net.spans net) ~actor ~kind:"request" ~name
      ~attrs:[ ("n", string_of_int i) ]
      (fun () ->
        (* The root span does its own accounting tick, so even a pure
           fan-out span carries a non-zero counted cost. *)
        Sim.Metrics.incr metrics "app.requests";
        if one i then incr ok)
  done;
  let delta = Sim.Metrics.diff ~before ~after:(Sim.Metrics.snapshot metrics) in
  let collector = Option.get (Sim.Net.spans net) in
  {
    net;
    requests;
    ok = !ok;
    spans = Sim.Span.spans collector;
    delta;
    dropped = Sim.Span.dropped collector;
  }

(* Figure-4 shape, end to end: bob presents alice's depth-[depth] public-key
   bearer cascade to the file server. Per request: a TGS exchange for fresh
   file-server credentials, then the authenticated read — whose guard walks
   the chain (one verify.cert span per link, resolver lookups nested). The
   tap drops the first request to the file server, forcing a retry child
   under the first request's rpc.call. *)
let run_f4 ?(seed = "trace-f4") ?(requests = 3) ?(depth = 3) ?capacity ?plan () =
  let w = World.create ~seed () in
  let net = w.World.net in
  let drbg = Sim.Net.drbg net in
  let alice, _, alice_rsa = World.enrol_pk w "alice" in
  let bob, _ = World.enrol w "bob" in
  let fs_name, fs_key = World.enrol w "fileserver" in
  (* Production key-resolution path: CA-signed binding served by the name
     server, cached by the file server's resolver. *)
  let ca = Ca.create drbg ~name:(Principal.make ~realm:w.World.realm "ca") ~bits:512 in
  let ns_name, _ = World.enrol w "names" in
  let ns = Name_server.create net ~name:ns_name ~ca_pub:(Ca.ca_pub ca) in
  Name_server.install ns;
  Name_server.publish ns
    (Ca.issue ca ~now:(World.now w) ~lifetime:(8 * World.hour) alice
       alice_rsa.Crypto.Rsa.pub);
  let resolver =
    Resolver.create net ~name_server:ns_name ~ca_pub:(Ca.ca_pub ca)
      ~caller:(Principal.to_string fs_name) ()
  in
  let acl = Acl.create () in
  Acl.add acl ~target:"report.txt"
    { Acl.subject = Acl.Principal_is alice; rights = [ "read" ]; restrictions = [] };
  let fs =
    File_server.create net ~me:fs_name ~my_key:fs_key
      ~lookup_pub:(Resolver.lookup resolver) ~acl ()
  in
  File_server.install fs;
  File_server.put_direct fs ~path:"report.txt" "quarterly numbers, do not leak";
  let now = World.now w in
  let expires = now + (8 * World.hour) in
  let granted =
    Proxy.grant_pk ~drbg ~now ~expires ~grantor:alice ~grantor_key:alice_rsa
      ~restrictions:
        [ Restriction.Authorized [ { Restriction.target = "report.txt"; ops = [ "read" ] } ] ]
      ()
  in
  let rec cascade p i =
    if i >= depth then p
    else cascade (Result.get_ok (Proxy.restrict_pk ~drbg ~now ~expires ~restrictions:[] p)) (i + 1)
  in
  let proxy = cascade granted 1 in
  let tgt = World.login w bob in
  Sim.Net.enable_tracing ?capacity net;
  Option.iter (Sim.Net.install_fault_plan net) plan;
  (* Injected loss: exactly one dropped request to the file server, so the
     first request's rpc.call provably shows a retry child. *)
  let fs_str = Principal.to_string fs_name in
  let to_drop = ref 1 in
  Sim.Net.set_tap net (fun ~dir ~src:_ ~dst _payload ->
      if dir = `Request && dst = fs_str && !to_drop > 0 then begin
        decr to_drop;
        Sim.Net.Drop
      end
      else Sim.Net.Deliver);
  let one _i =
    match Kdc.Client.derive net ~kdc:w.World.kdc_name ~tgt ~target:fs_name () with
    | Error _ -> false
    | Ok creds -> (
        let p =
          File_server.attach net ~proxy ~server:fs_name ~operation:"read" ~path:"report.txt"
        in
        match
          File_server.read net ~creds ~retries:3 ~proxies:[ p ] ~path:"report.txt" ()
        with
        | Ok _ -> true
        | Error _ -> false)
  in
  let outcome = traced_loop net ~actor:(Principal.to_string bob) ~name:"f4" ~requests ~one in
  Sim.Net.clear_tap net;
  outcome

(* Figure-5 shape: alice (account at bank-a) writes bob a check; bob
   deposits it at bank-b, which endorses and forwards a collect to bank-a,
   where the guard validates the endorsement chain and debits. Spans cross
   four actors: bob, bank-b, bank-a, and the KDC. *)
let run_f5 ?(seed = "trace-f5") ?(requests = 2) ?capacity ?plan () =
  let w = World.create ~seed () in
  let net = w.World.net in
  let currency = "usd" in
  let alice, _, alice_rsa = World.enrol_pk w "alice" in
  let bob, _, bob_rsa = World.enrol_pk w "bob" in
  let bank_a_name, bank_a_key, bank_a_rsa = World.enrol_pk w "bank-a" in
  let bank_b_name, bank_b_key, bank_b_rsa = World.enrol_pk w "bank-b" in
  let bank_a =
    Result.get_ok
      (Accounting_server.create net ~me:bank_a_name ~my_key:bank_a_key ~kdc:w.World.kdc_name
         ~signing_key:bank_a_rsa ~lookup:(World.lookup w) ())
  in
  Accounting_server.install bank_a;
  let bank_b =
    Result.get_ok
      (Accounting_server.create net ~me:bank_b_name ~my_key:bank_b_key ~kdc:w.World.kdc_name
         ~signing_key:bank_b_rsa ~lookup:(World.lookup w)
         ~collect_retry:(Sim.Retry.policy ~retries:3 ()) ())
  in
  Accounting_server.install bank_b;
  let tgt_alice = World.login w alice in
  let creds_a = World.credentials_for w ~tgt:tgt_alice bank_a_name in
  (match Accounting_server.open_account net ~creds:creds_a ~name:"alice" with
  | Ok () -> ()
  | Error e -> failwith e);
  (match Ledger.credit (Accounting_server.ledger bank_a) ~name:"alice" ~currency 1_000 with
  | Ok () -> ()
  | Error e -> failwith e);
  let tgt_bob = World.login w bob in
  let creds_b = World.credentials_for w ~tgt:tgt_bob bank_b_name in
  (match Accounting_server.open_account net ~creds:creds_b ~name:"bob" with
  | Ok () -> ()
  | Error e -> failwith e);
  Sim.Net.enable_tracing ?capacity net;
  Option.iter (Sim.Net.install_fault_plan net) plan;
  let one i =
    let now = World.now w in
    let check =
      Check.write ~drbg:(Sim.Net.drbg net) ~now ~expires:(now + (24 * World.hour))
        ~payor:alice ~payor_key:alice_rsa
        ~account:(Accounting_server.account bank_a "alice")
        ~payee:bob ~currency ~amount:(10 + i) ()
    in
    match
      Accounting_server.deposit net ~creds:creds_b ~endorser_key:bob_rsa ~check
        ~to_account:"bob"
    with
    | Ok _ -> true
    | Error _ -> false
  in
  traced_loop net ~actor:(Principal.to_string bob) ~name:"f5" ~requests ~one
