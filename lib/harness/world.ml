type t = {
  net : Sim.Net.t;
  dir : Directory.t;
  kdc : Kdc.t;
  kdc_name : Principal.t;
  realm : string;
}

(* Build a realm (directory + KDC) on an existing network: the multi-realm
   harness creates one net and one of these per realm, then links the KDCs
   with [Kdc.federate]. *)
let create_in net ?(realm = "example.org") () =
  let dir = Directory.create () in
  let kdc_name = Principal.make ~realm "kdc" in
  Directory.add_symmetric dir kdc_name (Sim.Net.fresh_key net);
  let kdc = Kdc.create net ~name:kdc_name ~directory:dir () in
  Kdc.install kdc;
  { net; dir; kdc; kdc_name; realm }

let create ?(seed = "world") ?(realm = "example.org") ?default_latency_us () =
  let net = Sim.Net.create ~seed ?default_latency_us () in
  create_in net ~realm ()

let enrol w name =
  let p = Principal.make ~realm:w.realm name in
  let key = Sim.Net.fresh_key w.net in
  Directory.add_symmetric w.dir p key;
  (p, key)

let enrol_pk w ?(bits = 512) name =
  let p, key = enrol w name in
  let rsa = Crypto.Rsa.generate (Sim.Net.drbg w.net) ~bits in
  Directory.add_public w.dir p rsa.Crypto.Rsa.pub;
  (p, key, rsa)

let lookup w p = Directory.public w.dir p

let login w p =
  match
    Kdc.Client.authenticate w.net ~kdc:w.kdc_name ~client:p
      ~client_key:(Option.get (Directory.symmetric w.dir p))
      ~service:w.kdc_name ()
  with
  | Ok tgt -> tgt
  | Error e -> failwith ("World.login: " ^ e)

let credentials_for w ~tgt service =
  match Kdc.Client.derive w.net ~kdc:w.kdc_name ~tgt ~target:service () with
  | Ok creds -> creds
  | Error e -> failwith ("World.credentials_for: " ^ e)

let now w = Sim.Net.now w.net
let hour = 3_600_000_000
