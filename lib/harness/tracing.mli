(** Traced end-to-end scenarios (the `proxykit trace` subcommand, the span
    tests, and the BENCH_F4 attribution rows all run these).

    Setup (enrolment, key generation, provisioning) happens untraced; then
    tracing is enabled and [requests] requests run, each under a fresh root
    span. The outcome pairs the resulting span tree with the global
    {!Sim.Metrics} diff over the same window, so callers can verify that
    per-span self costs sum exactly to the global delta. *)

type outcome = {
  net : Sim.Net.t;  (** for access to the live collector / clock *)
  requests : int;
  ok : int;  (** requests that succeeded end to end *)
  spans : Sim.Span.span list;  (** completed spans, oldest first *)
  delta : (string * int) list;
      (** global metrics diff over the traced window *)
  dropped : int;  (** spans lost to ring overflow *)
}

val run_f4 :
  ?seed:string ->
  ?requests:int ->
  ?depth:int ->
  ?capacity:int ->
  ?plan:Sim.Fault.plan ->
  unit ->
  outcome
(** Cascaded authorization against a file server (paper Figure 4 shape):
    bob presents alice's depth-[depth] public-key bearer cascade; the
    guard's chain walk emits one [verify.cert] span per link with resolver
    lookups nested beneath, and an injected drop of the first file-server
    request forces a retry child under the first request's [rpc.call].
    Defaults: [seed = "trace-f4"], [requests = 3], [depth = 3]. *)

val run_f5 :
  ?seed:string ->
  ?requests:int ->
  ?capacity:int ->
  ?plan:Sim.Fault.plan ->
  unit ->
  outcome
(** Inter-bank check clearing (paper Figure 5 shape): alice's checks,
    deposited by bob at bank-b, are endorsed onward and collected from
    bank-a — spans cross bob, both banks, and the KDC. Defaults:
    [seed = "trace-f5"], [requests = 2]. *)
