type config = {
  seed : string;
  ops : int;
  drop : float;
  duplicate : float;
  jitter_us : int;
  crash_drawee : bool;
  retries : int;
  timeout_us : int;
}

let default =
  {
    seed = "chaos";
    ops = 40;
    drop = 0.15;
    duplicate = 0.10;
    jitter_us = 2_000;
    crash_drawee = true;
    retries = 8;
    timeout_us = 10_000;
  }

type outcome = {
  attempted : int;
  succeeded : int;
  failed : int;
  conserved : (unit, string) result;
  redemptions : (string * int) list;
  double_redemptions : int;
  retries_used : int;
  gave_up : int;
  dedups : int;
  faults_dropped : int;
  faults_duplicated : int;
  latency : Sim.Metrics.dist option;
  metrics : (string * int) list;
  trace : string list;
}

let usd = "usd"

type actor = { name : string; principal : Principal.t; rsa : Crypto.Rsa.private_ }

let ok_or ctx = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "Chaos.run setup (%s): %s" ctx e)

(* "paid check N: ..." / "paid certified check N: ..." -> Some N *)
let paid_check_number event =
  let prefixed p =
    if String.length event > String.length p && String.sub event 0 (String.length p) = p
    then Some (String.length p)
    else None
  in
  match
    (match prefixed "paid check " with
    | Some i -> Some i
    | None -> prefixed "paid certified check ")
  with
  | None -> None
  | Some start -> (
      match String.index_from_opt event start ':' with
      | None -> None
      | Some stop -> Some (String.sub event start (stop - start)))

let run cfg =
  let w = World.create ~seed:cfg.seed () in
  let net = w.World.net in
  let drbg = Sim.Net.drbg net in
  let mk_actor name =
    let principal, _ = World.enrol w name in
    let rsa = Crypto.Rsa.generate drbg ~bits:512 in
    Directory.add_public w.World.dir principal rsa.Crypto.Rsa.pub;
    { name; principal; rsa }
  in
  let collect_retry = Sim.Retry.policy ~retries:cfg.retries ~timeout_us:cfg.timeout_us () in
  let mk_bank name =
    let p, key = World.enrol w name in
    let rsa = Crypto.Rsa.generate drbg ~bits:512 in
    Directory.add_public w.World.dir p rsa.Crypto.Rsa.pub;
    let b =
      ok_or name
        (Accounting_server.create net ~me:p ~my_key:key ~kdc:w.World.kdc_name
           ~signing_key:rsa
           ~lookup:(fun q -> Directory.public w.World.dir q)
           ~collect_retry ())
    in
    Accounting_server.install b;
    (p, b)
  in
  let bank_a_name, bank_a = mk_bank "first-bank" in
  let bank_b_name, bank_b = mk_bank "shore-bank" in
  let buyers = List.map mk_actor [ "alice"; "bob" ] in
  let shop = mk_actor "shop" in
  let creds_for actor bank =
    let tgt = World.login w actor.principal in
    World.credentials_for w ~tgt bank
  in
  (* Everything below happens before the fault plan goes in: accounts,
     funds, and — the point of proxies — every credential the run will
     need, so chaos only ever hits transaction traffic. *)
  let buyer_creds =
    List.map
      (fun b ->
        let creds = creds_for b bank_a_name in
        ok_or b.name (Accounting_server.open_account net ~creds ~name:b.name);
        ok_or b.name
          (Ledger.mint (Accounting_server.ledger bank_a) ~name:b.name ~currency:usd 1_000);
        (b, creds))
      buyers
  in
  let shop_creds = creds_for shop bank_b_name in
  ok_or shop.name (Accounting_server.open_account net ~creds:shop_creds ~name:shop.name);
  let write_check (buyer : actor) amount =
    let now = World.now w in
    Check.write ~drbg ~now ~expires:(now + (24 * World.hour)) ~payor:buyer.principal
      ~payor_key:buyer.rsa
      ~account:(Accounting_server.account bank_a buyer.name)
      ~payee:shop.principal ~currency:usd ~amount ()
  in
  (* Warm-up clearing pass: populates shore-bank's credential cache for the
     inter-bank hop, so no KDC exchange happens under chaos. *)
  let alice = List.hd buyers in
  ignore
    (ok_or "warm-up deposit"
       (Accounting_server.deposit net ~creds:shop_creds ~endorser_key:shop.rsa
          ~check:(write_check alice 1) ~to_account:shop.name));
  let ledgers = [ Accounting_server.ledger bank_a; Accounting_server.ledger bank_b ] in
  let before = Invariant.capture ledgers in
  (* -- chaos begins -- *)
  let t0 = Sim.Net.now net in
  let directives =
    [
      Sim.Fault.drop cfg.drop;
      Sim.Fault.duplicate cfg.duplicate;
      Sim.Fault.jitter cfg.jitter_us;
    ]
    @
    if cfg.crash_drawee then
      [
        Sim.Fault.crash
          (Principal.to_string bank_a_name)
          ~at:(t0 + 20_000) ~until:(t0 + 80_000) ();
      ]
    else []
  in
  Sim.Net.install_fault_plan net (Sim.Fault.plan ~seed:cfg.seed directives);
  let wl = Crypto.Drbg.create ~seed:("workload:" ^ cfg.seed) in
  let succeeded = ref 0 in
  for _ = 1 to cfg.ops do
    let outcome =
      if Crypto.Drbg.uniform_int wl 10 < 7 then begin
        let buyer, _ = List.nth buyer_creds (Crypto.Drbg.uniform_int wl 2) in
        let amount = 1 + Crypto.Drbg.uniform_int wl 30 in
        Result.map ignore
          (Accounting_server.deposit ~retries:cfg.retries ~timeout_us:cfg.timeout_us net
             ~creds:shop_creds ~endorser_key:shop.rsa ~check:(write_check buyer amount)
             ~to_account:shop.name)
      end
      else begin
        let i = Crypto.Drbg.uniform_int wl 2 in
        let from_, creds = List.nth buyer_creds i in
        let to_, _ = List.nth buyer_creds (1 - i) in
        let amount = 1 + Crypto.Drbg.uniform_int wl 20 in
        Accounting_server.transfer ~retries:cfg.retries ~timeout_us:cfg.timeout_us net
          ~creds ~from_:from_.name ~to_:to_.name ~currency:usd ~amount
      end
    in
    match outcome with Ok () -> incr succeeded | Error _ -> ()
  done;
  Sim.Net.clear_fault_plan net;
  (* -- chaos over: read the invariants -- *)
  let conserved = Invariant.check before ledgers in
  let redemptions =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (e : Sim.Trace.entry) ->
        match paid_check_number e.Sim.Trace.event with
        | Some n -> Hashtbl.replace tbl n (1 + Option.value (Hashtbl.find_opt tbl n) ~default:0)
        | None -> ())
      (Sim.Trace.entries (Sim.Net.trace net));
    Hashtbl.fold (fun n c acc -> (n, c) :: acc) tbl [] |> List.sort compare
  in
  let m = Sim.Net.metrics net in
  {
    attempted = cfg.ops;
    succeeded = !succeeded;
    failed = cfg.ops - !succeeded;
    conserved;
    redemptions;
    double_redemptions = List.length (List.filter (fun (_, c) -> c > 1) redemptions);
    retries_used = Sim.Metrics.get m "rpc.retries";
    gave_up = Sim.Metrics.get m "rpc.gave_up";
    dedups = Sim.Metrics.get m "rpc.dedup";
    faults_dropped = Sim.Metrics.get m "fault.dropped";
    faults_duplicated = Sim.Metrics.get m "fault.duplicated";
    latency = Sim.Metrics.dist m "rpc.latency_us";
    metrics = Sim.Metrics.snapshot m;
    trace =
      List.map
        (fun (e : Sim.Trace.entry) ->
          Printf.sprintf "%d %s %s" e.Sim.Trace.time e.Sim.Trace.actor e.Sim.Trace.event)
        (Sim.Trace.entries (Sim.Net.trace net));
  }
