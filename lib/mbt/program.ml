(* The generated-program AST: a closed, finite vocabulary of authorization
   operations over a fixed small universe (three users, one file server, one
   group server, one accounting server).  Everything is plain data so the
   reference model can interpret a program without any cryptography, and so
   programs can be serialized into replayable repro files. *)

let n_users = 3
let currency = "usd"
let initial_balance = 100
let group = "team"

type server = Fs | Bank | Gs

type target = File of int | Shared

type flavor = Conv | Pk | Hybrid

(* A purely syntactic restriction specification; [Exec] lowers it to a real
   [Restriction.t], [Model] interprets it as a predicate. *)
type rspec =
  | R_grantee of int list  (** delegate proxy: named users may exercise it *)
  | R_issued_for of server list
  | R_quota of int  (** ceiling in [currency] *)
  | R_authorized of (target * string list) list
  | R_accept_once of int  (** single-use id, lowered to its decimal string *)
  | R_limit of server * rspec list
  | R_sequence of (string * target) list
      (** ordered permitted steps (operation, target); progress is tracked
          per chain head, so every cascade of one grant shares the counter *)
  | R_unknown  (** an unrecognized restriction type: must fail closed *)

type op =
  | Grant of { grantor : int; flavor : flavor; expired : bool; rs : rspec list }
      (** grantor mints a proxy for the file server; appends a proxy slot *)
  | Derive of { slot : int; expired : bool; rs : rspec list; delegate : int option }
      (** cascade from slot (mod live slots), appending restrictions; on a
          public-key chain [delegate] signs with a named user's key *)
  | Present of { slot : int; presenter : int; verb : [ `Read | `Write ]; target : target }
      (** presenter exercises slot (mod live slots) at the file server; with
          no live slots the request goes proxy-less *)
  | Revoke of { owner : int }  (** drop the owner's ACL entry for their file *)
  | Revoke_proxy of { slot : int }
      (** the revocation authority revokes slot (mod live slots) by its head
          certificate's serial and publishes a cumulative signed bulletin to
          the file server; kills the grant and every cascade derived from it *)
  | Add_member of { member : int }  (** add to [group] at the group server *)
  | Remove_member of { member : int }
  | Assert_group of { member : int }
      (** obtain a membership proxy and read the shared file with it *)
  | Write_check of { payor : int; payee : int; amount : int }
      (** appends a check slot; drawn on the payor's account *)
  | Deposit of { cslot : int; depositor : int }
      (** depositor endorses check (mod live checks) and deposits it *)

type t = op list

(* Observable outcome of one operation — the thing the executor and the
   model must agree on, bit for bit. *)
type outcome =
  | O_done  (** setup operation executed *)
  | O_skip  (** nothing to act on (e.g. deposit with no checks written) *)
  | O_ok of bool  (** authorization decision: was the request granted? *)
  | O_group of bool * bool  (** membership proxy granted?, shared read ok? *)

type run = { outcomes : outcome list; balances : int array }

(* --- pretty-printing --- *)

let server_name = function Fs -> "fs" | Bank -> "bank" | Gs -> "gs"
let target_name = function File i -> Printf.sprintf "u%d.dat" i | Shared -> "shared.dat"
let flavor_name = function Conv -> "conv" | Pk -> "pk" | Hybrid -> "hybrid"

let rec pp_rspec fmt = function
  | R_grantee us ->
      Format.fprintf fmt "grantee[%s]" (String.concat "," (List.map string_of_int us))
  | R_issued_for ss ->
      Format.fprintf fmt "issued-for[%s]" (String.concat "," (List.map server_name ss))
  | R_quota n -> Format.fprintf fmt "quota(%d)" n
  | R_authorized es ->
      let entry (t, ops) =
        if ops = [] then target_name t else target_name t ^ ":" ^ String.concat "," ops
      in
      Format.fprintf fmt "authorized[%s]" (String.concat "; " (List.map entry es))
  | R_accept_once n -> Format.fprintf fmt "accept-once(%d)" n
  | R_limit (s, rs) ->
      Format.fprintf fmt "limit(%s, [%a])" (server_name s)
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp_rspec)
        rs
  | R_sequence steps ->
      Format.fprintf fmt "sequence[%s]"
        (String.concat " -> "
           (List.map (fun (op, t) -> op ^ "@" ^ target_name t) steps))
  | R_unknown -> Format.fprintf fmt "unknown"

let pp_rs fmt rs =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp_rspec)
    rs

let pp_op fmt = function
  | Grant { grantor; flavor; expired; rs } ->
      Format.fprintf fmt "grant u%d %s%s %a" grantor (flavor_name flavor)
        (if expired then " expired" else "")
        pp_rs rs
  | Derive { slot; expired; rs; delegate } ->
      Format.fprintf fmt "derive #%d%s%s %a" slot
        (match delegate with Some d -> Printf.sprintf " delegate=u%d" d | None -> "")
        (if expired then " expired" else "")
        pp_rs rs
  | Present { slot; presenter; verb; target } ->
      Format.fprintf fmt "present #%d u%d %s %s" slot presenter
        (match verb with `Read -> "read" | `Write -> "write")
        (target_name target)
  | Revoke { owner } -> Format.fprintf fmt "revoke u%d" owner
  | Revoke_proxy { slot } -> Format.fprintf fmt "revoke-proxy #%d" slot
  | Add_member { member } -> Format.fprintf fmt "add-member u%d" member
  | Remove_member { member } -> Format.fprintf fmt "remove-member u%d" member
  | Assert_group { member } -> Format.fprintf fmt "assert-group u%d" member
  | Write_check { payor; payee; amount } ->
      Format.fprintf fmt "write-check u%d -> u%d %d %s" payor payee amount currency
  | Deposit { cslot; depositor } -> Format.fprintf fmt "deposit #%d by u%d" cslot depositor

let pp fmt (p : t) =
  List.iteri (fun i op -> Format.fprintf fmt "%2d: %a@." i pp_op op) p

let pp_outcome fmt = function
  | O_done -> Format.fprintf fmt "done"
  | O_skip -> Format.fprintf fmt "skip"
  | O_ok b -> Format.fprintf fmt "ok=%b" b
  | O_group (a, b) -> Format.fprintf fmt "group=%b,read=%b" a b

let pp_run fmt r =
  Format.fprintf fmt "outcomes=[%a] balances=[%s]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp_outcome)
    r.outcomes
    (String.concat ";" (Array.to_list (Array.map string_of_int r.balances)))

let run_equal a b = a.outcomes = b.outcomes && a.balances = b.balances

(* First operation index where two runs disagree, with a description. *)
let first_divergence a b =
  let rec go i xs ys =
    match (xs, ys) with
    | x :: xs', y :: ys' ->
        if x = y then go (i + 1) xs' ys'
        else Some (i, Format.asprintf "op %d: %a vs %a" i pp_outcome x pp_outcome y)
    | [], [] ->
        if a.balances = b.balances then None
        else
          Some
            ( List.length a.outcomes,
              Format.asprintf "balances [%s] vs [%s]"
                (String.concat ";" (Array.to_list (Array.map string_of_int a.balances)))
                (String.concat ";" (Array.to_list (Array.map string_of_int b.balances))) )
    | _ -> Some (i, "outcome lists differ in length")
  in
  go 0 a.outcomes b.outcomes

(* --- wire codec (for repro files) --- *)

let server_to_wire s = Wire.I (match s with Fs -> 0 | Bank -> 1 | Gs -> 2)

let server_of_wire v =
  match Wire.to_int v with
  | Ok 0 -> Ok Fs
  | Ok 1 -> Ok Bank
  | Ok 2 -> Ok Gs
  | Ok n -> Error (Printf.sprintf "mbt: bad server tag %d" n)
  | Error e -> Error e

let target_to_wire = function
  | File i -> Wire.L [ Wire.I 0; Wire.I i ]
  | Shared -> Wire.L [ Wire.I 1 ]

let target_of_wire v =
  let open Wire in
  let* tag = Result.bind (field v 0) to_int in
  match tag with
  | 0 -> Result.map (fun i -> File i) (Result.bind (field v 1) to_int)
  | 1 -> Ok Shared
  | n -> Error (Printf.sprintf "mbt: bad target tag %d" n)

let rec rspec_to_wire = function
  | R_grantee us -> Wire.L [ Wire.S "g"; Wire.L (List.map (fun u -> Wire.I u) us) ]
  | R_issued_for ss -> Wire.L [ Wire.S "i"; Wire.L (List.map server_to_wire ss) ]
  | R_quota n -> Wire.L [ Wire.S "q"; Wire.I n ]
  | R_authorized es ->
      let entry (t, ops) =
        Wire.L [ target_to_wire t; Wire.L (List.map (fun o -> Wire.S o) ops) ]
      in
      Wire.L [ Wire.S "a"; Wire.L (List.map entry es) ]
  | R_accept_once n -> Wire.L [ Wire.S "o"; Wire.I n ]
  | R_limit (s, rs) ->
      Wire.L [ Wire.S "l"; server_to_wire s; Wire.L (List.map rspec_to_wire rs) ]
  | R_sequence steps ->
      Wire.L
        [ Wire.S "s";
          Wire.L (List.map (fun (op, t) -> Wire.L [ Wire.S op; target_to_wire t ]) steps) ]
  | R_unknown -> Wire.L [ Wire.S "u" ]

let map_result f l =
  List.fold_right
    (fun x acc -> Result.bind acc (fun tl -> Result.map (fun h -> h :: tl) (f x)))
    l (Ok [])

let rec rspec_of_wire v =
  let open Wire in
  let* tag = Result.bind (field v 0) to_string in
  match tag with
  | "g" ->
      let* us = Result.bind (field v 1) to_list in
      let* us = map_result to_int us in
      Ok (R_grantee us)
  | "i" ->
      let* ss = Result.bind (field v 1) to_list in
      let* ss = map_result server_of_wire ss in
      Ok (R_issued_for ss)
  | "q" -> Result.map (fun n -> R_quota n) (Result.bind (field v 1) to_int)
  | "a" ->
      let* es = Result.bind (field v 1) to_list in
      let entry e =
        let* t = Result.bind (field e 0) target_of_wire in
        let* ops = Result.bind (field e 1) to_list in
        let* ops = map_result to_string ops in
        Ok (t, ops)
      in
      let* es = map_result entry es in
      Ok (R_authorized es)
  | "o" -> Result.map (fun n -> R_accept_once n) (Result.bind (field v 1) to_int)
  | "l" ->
      let* s = Result.bind (field v 1) server_of_wire in
      let* rs = Result.bind (field v 2) to_list in
      let* rs = map_result rspec_of_wire rs in
      Ok (R_limit (s, rs))
  | "s" ->
      let* steps = Result.bind (field v 1) to_list in
      let step s =
        let* op = Result.bind (field s 0) to_string in
        let* t = Result.bind (field s 1) target_of_wire in
        Ok (op, t)
      in
      let* steps = map_result step steps in
      Ok (R_sequence steps)
  | "u" -> Ok R_unknown
  | other -> Error (Printf.sprintf "mbt: bad rspec tag %S" other)

let rs_to_wire rs = Wire.L (List.map rspec_to_wire rs)
let rs_of_wire v = Result.bind (Wire.to_list v) (map_result rspec_of_wire)

let op_to_wire = function
  | Grant { grantor; flavor; expired; rs } ->
      Wire.L
        [ Wire.S "grant"; Wire.I grantor;
          Wire.I (match flavor with Conv -> 0 | Pk -> 1 | Hybrid -> 2);
          Wire.I (if expired then 1 else 0); rs_to_wire rs ]
  | Derive { slot; expired; rs; delegate } ->
      Wire.L
        [ Wire.S "derive"; Wire.I slot; Wire.I (if expired then 1 else 0); rs_to_wire rs;
          (match delegate with None -> Wire.L [] | Some d -> Wire.L [ Wire.I d ]) ]
  | Present { slot; presenter; verb; target } ->
      Wire.L
        [ Wire.S "present"; Wire.I slot; Wire.I presenter;
          Wire.I (match verb with `Read -> 0 | `Write -> 1); target_to_wire target ]
  | Revoke { owner } -> Wire.L [ Wire.S "revoke"; Wire.I owner ]
  | Revoke_proxy { slot } -> Wire.L [ Wire.S "revoke-proxy"; Wire.I slot ]
  | Add_member { member } -> Wire.L [ Wire.S "add-member"; Wire.I member ]
  | Remove_member { member } -> Wire.L [ Wire.S "remove-member"; Wire.I member ]
  | Assert_group { member } -> Wire.L [ Wire.S "assert-group"; Wire.I member ]
  | Write_check { payor; payee; amount } ->
      Wire.L [ Wire.S "write-check"; Wire.I payor; Wire.I payee; Wire.I amount ]
  | Deposit { cslot; depositor } ->
      Wire.L [ Wire.S "deposit"; Wire.I cslot; Wire.I depositor ]

let op_of_wire v =
  let open Wire in
  let* tag = Result.bind (field v 0) to_string in
  let int i = Result.bind (field v i) to_int in
  match tag with
  | "grant" ->
      let* grantor = int 1 in
      let* f = int 2 in
      let* flavor =
        match f with
        | 0 -> Ok Conv
        | 1 -> Ok Pk
        | 2 -> Ok Hybrid
        | n -> Error (Printf.sprintf "mbt: bad flavor %d" n)
      in
      let* e = int 3 in
      let* rs = Result.bind (field v 4) rs_of_wire in
      Ok (Grant { grantor; flavor; expired = e <> 0; rs })
  | "derive" ->
      let* slot = int 1 in
      let* e = int 2 in
      let* rs = Result.bind (field v 3) rs_of_wire in
      let* dw = Result.bind (field v 4) to_list in
      let* delegate =
        match dw with
        | [] -> Ok None
        | [ d ] -> Result.map (fun d -> Some d) (to_int d)
        | _ -> Error "mbt: bad delegate"
      in
      Ok (Derive { slot; expired = e <> 0; rs; delegate })
  | "present" ->
      let* slot = int 1 in
      let* presenter = int 2 in
      let* vb = int 3 in
      let* verb =
        match vb with
        | 0 -> Ok `Read
        | 1 -> Ok `Write
        | n -> Error (Printf.sprintf "mbt: bad verb %d" n)
      in
      let* target = Result.bind (field v 4) target_of_wire in
      Ok (Present { slot; presenter; verb; target })
  | "revoke" -> Result.map (fun owner -> Revoke { owner }) (int 1)
  | "revoke-proxy" -> Result.map (fun slot -> Revoke_proxy { slot }) (int 1)
  | "add-member" -> Result.map (fun member -> Add_member { member }) (int 1)
  | "remove-member" -> Result.map (fun member -> Remove_member { member }) (int 1)
  | "assert-group" -> Result.map (fun member -> Assert_group { member }) (int 1)
  | "write-check" ->
      let* payor = int 1 in
      let* payee = int 2 in
      let* amount = int 3 in
      Ok (Write_check { payor; payee; amount })
  | "deposit" ->
      let* cslot = int 1 in
      let* depositor = int 2 in
      Ok (Deposit { cslot; depositor })
  | other -> Error (Printf.sprintf "mbt: unknown op tag %S" other)

let magic = "mbt-program"
let version = 1

let to_wire (p : t) =
  Wire.L [ Wire.S magic; Wire.I version; Wire.L (List.map op_to_wire p) ]

let of_wire v : (t, string) result =
  let open Wire in
  let* m = Result.bind (field v 0) to_string in
  if m <> magic then Error "mbt: not a program"
  else
    let* ver = Result.bind (field v 1) to_int in
    if ver <> version then Error (Printf.sprintf "mbt: unsupported program version %d" ver)
    else
      let* ops = Result.bind (field v 2) to_list in
      map_result op_of_wire ops

(* --- hex helpers (repro files are hex so they survive editors and diffs) --- *)

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  let digit c =
    match c with
    | '0' .. '9' -> Ok (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Ok (Char.code c - Char.code 'A' + 10)
    | _ -> Error (Printf.sprintf "bad hex digit %C" c)
  in
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex"
  else
    let rec go i acc =
      if i >= n then Ok (String.concat "" (List.rev acc))
      else
        match (digit s.[i], digit s.[i + 1]) with
        | Ok hi, Ok lo -> go (i + 2) (String.make 1 (Char.chr ((hi lsl 4) lor lo)) :: acc)
        | (Error _ as e), _ | _, (Error _ as e) -> e
    in
    go 0 []
