(* Campaign driver: generate programs, run each against the real stack twice
   (verification cache on and off) and against the reference model, and
   report the first disagreement.  Findings shrink to minimal replayable
   repro files. *)

open Program

type kind = Cache_divergence | Oracle_mismatch

let kind_name = function
  | Cache_divergence -> "cache-divergence"
  | Oracle_mismatch -> "oracle-mismatch"

type finding = {
  f_kind : kind;
  f_seed : string;  (** the world seed the program ran under *)
  f_program : Program.t;
  f_detail : string;
}

(* The full conformance check for one program:
   1. cached and uncached executions must agree bit for bit (the
      cache-coherence differential of the PR 2 caching layer);
   2. the uncached execution must agree with the pure reference model. *)
let check ?mutation ~seed prog =
  let cached = Exec.run ?mutation ~cache:true ~seed prog in
  let uncached = Exec.run ?mutation ~cache:false ~seed prog in
  match first_divergence cached uncached with
  | Some (_, d) ->
      Some
        {
          f_kind = Cache_divergence;
          f_seed = seed;
          f_program = prog;
          f_detail = "cached vs uncached: " ^ d;
        }
  | None -> (
      let model = Model.run prog in
      match first_divergence uncached model with
      | Some (_, d) ->
          Some
            {
              f_kind = Oracle_mismatch;
              f_seed = seed;
              f_program = prog;
              f_detail = "stack vs model: " ^ d;
            }
      | None -> None)

type stats = { programs : int; ops : int; seq_ops : int }

(* Operations carrying a sequence spec anywhere in their restrictions —
   the campaign coverage counter the smoke gate insists is nonzero. *)
let rec has_seq = function
  | R_sequence _ -> true
  | R_limit (_, rs) -> List.exists has_seq rs
  | _ -> false

let op_has_seq = function
  | Grant { rs; _ } | Derive { rs; _ } -> List.exists has_seq rs
  | _ -> false

(* Run [per_seed] programs under each campaign seed; stop at the first
   finding.  The world seed of program [i] under campaign seed [s] is
   ["s/i"], so any finding replays in isolation. *)
let campaign ?mutation ?(progress = fun _ -> ()) ~seeds ~per_seed () =
  let programs = ref 0 and ops = ref 0 and seq_ops = ref 0 in
  let finding = ref None in
  (try
     List.iter
       (fun seed ->
         let g = Gen.create ~seed in
         for i = 0 to per_seed - 1 do
           let prog = Gen.program g in
           let world_seed = Printf.sprintf "%s/%d" seed i in
           incr programs;
           ops := !ops + List.length prog;
           seq_ops := !seq_ops + List.length (List.filter op_has_seq prog);
           progress !programs;
           match check ?mutation ~seed:world_seed prog with
           | Some f ->
               finding := Some f;
               raise Exit
           | None -> ()
         done)
       seeds
   with Exit -> ());
  (!finding, { programs = !programs; ops = !ops; seq_ops = !seq_ops })

(* Shrink a finding to a (locally) minimal program that still disagrees —
   under the same world seed and the same injected mutation. *)
let shrink ?mutation ?budget (f : finding) =
  let still_failing prog = Option.is_some (check ?mutation ~seed:f.f_seed prog) in
  let minimal, candidates = Shrink.minimize ~still_failing ?budget f.f_program in
  let f' = Option.value (check ?mutation ~seed:f.f_seed minimal) ~default:f in
  (f', candidates)

(* --- repro files ---

   A repro is a short text file: '#' comment lines carrying the world seed
   and a human-readable transcript, then one hex line holding the
   wire-encoded program.  [replay] re-runs the full conformance check. *)

let save_repro ~path ?mutation (f : finding) =
  let oc = open_out path in
  Printf.fprintf oc "# proxykit mbt repro\n";
  Printf.fprintf oc "# kind: %s\n" (kind_name f.f_kind);
  (match mutation with
  | Some m -> Printf.fprintf oc "# found with injected mutation: %s\n" (Exec.mutation_name m)
  | None -> ());
  Printf.fprintf oc "# detail: %s\n" f.f_detail;
  Printf.fprintf oc "# seed: %s\n" f.f_seed;
  List.iteri
    (fun i op -> Printf.fprintf oc "# op %d: %s\n" i (Format.asprintf "%a" pp_op op))
    f.f_program;
  Printf.fprintf oc "%s\n" (to_hex (Wire.encode (to_wire f.f_program)));
  close_out oc

let load_repro path =
  let ic = open_in path in
  let seed = ref None and hex = Buffer.create 64 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line = "" then ()
       else if String.length line > 0 && line.[0] = '#' then begin
         let prefix = "# seed: " in
         let pl = String.length prefix in
         if String.length line > pl && String.sub line 0 pl = prefix then
           seed := Some (String.sub line pl (String.length line - pl))
       end
       else Buffer.add_string hex line
     done
   with End_of_file -> close_in ic);
  match !seed with
  | None -> Error (path ^ ": no '# seed:' line")
  | Some seed -> (
      match of_hex (Buffer.contents hex) with
      | Error e -> Error (path ^ ": " ^ e)
      | Ok bytes -> (
          match Wire.decode bytes with
          | Error e -> Error (path ^ ": " ^ e)
          | Ok w -> (
              match of_wire w with
              | Error e -> Error (path ^ ": " ^ e)
              | Ok prog -> Ok (seed, prog))))

(* Replay a repro file: [Ok None] when the stack, the cache differential and
   the model all agree (the bug it recorded is fixed and stays fixed);
   [Ok (Some f)] when it still disagrees. *)
let replay ?mutation path =
  match load_repro path with
  | Error e -> Error e
  | Ok (seed, prog) -> Ok (check ?mutation ~seed prog)
