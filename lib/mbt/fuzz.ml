(* Mutation-based fuzzer for the wire codecs.

   Valid encodings of every certificate/restriction/check structure are
   mutated (bit flips, truncations, length bombs, splices) and fed to
   [Wire.decode] and every typed [of_wire] decoder.  The contract under
   test, from wire.mli and restriction.mli:

   - decoding is total: malformed adversarial input never raises;
   - decoders fail closed: unrecognized restriction tags become [Unknown]
     (which fails every check) rather than being ignored;
   - valid encodings round-trip.

   A small corpus of the valid seeds plus deterministic mutants is committed
   under test/fuzz_corpus/ and replayed in CI. *)

let realm = "example.org"

(* --- seed values: one valid encoding per codec --- *)

let sample_seq_steps fs =
  [
    { Restriction.step_op = "open"; step_server = Some fs; step_target = Some "u0.dat" };
    { Restriction.step_op = "read"; step_server = None; step_target = None };
  ]

let sample_restrictions u0 u1 fs =
  [
    Restriction.Grantee ([ u0; u1 ], 1);
    Restriction.Issued_for [ fs ];
    Restriction.Quota ("usd", 42);
    Restriction.Authorized
      [ { Restriction.target = "u0.dat"; ops = [ "read"; "write" ] };
        { Restriction.target = "shared.dat"; ops = [] } ];
    Restriction.Group_membership [ "team" ];
    Restriction.Accept_once "ck-0001";
    Restriction.Limit_restriction ([ fs ], [ Restriction.Quota ("usd", 7) ]);
    Restriction.Sequence (sample_seq_steps fs);
    Restriction.Unknown "x-future-restriction";
  ]

(* Each seed: (name, encoded value, typed re-decoder).  The re-decoder is the
   round-trip obligation for the *valid* encoding and the never-crash
   obligation for mutants. *)
let seeds () : (string * Wire.t * (Wire.t -> (unit, string) result)) list =
  let kp = Lazy.force Exec.pool in
  let drbg = Crypto.Drbg.create ~seed:"mbt-fuzz-seeds" in
  let u0 = Principal.make ~realm "u0" in
  let u1 = Principal.make ~realm "u1" in
  let fs = Principal.make ~realm "fs" in
  let bank = Principal.make ~realm "bank" in
  let restrictions = sample_restrictions u0 u1 fs in
  let now = 1_000_000 and expires = 3_600_000_000 in
  let pk =
    Proxy.grant_pk ~drbg ~now ~expires ~grantor:u0 ~grantor_key:kp.Exec.pk_users.(0)
      ~restrictions ()
  in
  let pk2 =
    match
      Proxy.restrict_pk ~drbg ~now ~expires ~restrictions:[ Restriction.Quota ("usd", 5) ] pk
    with
    | Ok p -> p
    | Error e -> failwith ("fuzz seeds: restrict_pk: " ^ e)
  in
  let hybrid =
    match
      Proxy.grant_hybrid ~drbg ~now ~expires ~grantor:u0 ~grantor_key:kp.Exec.pk_users.(0)
        ~end_server:fs ~end_server_pub:kp.Exec.pk_fs.Crypto.Rsa.pub ~restrictions ()
    with
    | Ok p -> p
    | Error e -> failwith ("fuzz seeds: grant_hybrid: " ^ e)
  in
  let conv =
    Proxy.grant_conventional ~drbg ~now ~expires ~grantor:u0
      ~session_key:(Crypto.Drbg.generate drbg 32) ~base:(Crypto.Drbg.generate drbg 80)
      ~restrictions
  in
  let check =
    Check.write ~drbg ~now ~expires ~payor:u0 ~payor_key:kp.Exec.pk_users.(0)
      ~account:(Principal.Account.make ~server:bank "u0") ~payee:u1 ~currency:"usd"
      ~amount:25 ()
  in
  let endorsed =
    match
      Check.endorse ~drbg ~now ~expires ~endorser:u1 ~endorser_key:kp.Exec.pk_users.(1)
        ~next:bank check
    with
    | Ok c -> c
    | Error e -> failwith ("fuzz seeds: endorse: " ^ e)
  in
  let presented =
    Guard.present ~proxy:pk2 ~time:now ~server:fs ~operation:"read" ~target:"u0.dat" ()
  in
  let bulletin =
    Revocation.sign ~key:kp.Exec.pk_authority ~authority:(Principal.make ~realm "revoker")
      ~epoch:3 ~issued_at:now
      [ Revocation.By_serial "serial-1";
        Revocation.By_serial "serial-2";
        Revocation.By_grantor_epoch { grantor = u0; not_before = now } ]
  in
  let head_pk_cert =
    match pk.Proxy.flavor with
    | Proxy.Public_key (c :: _) -> c
    | _ -> assert false
  in
  let hybrid_cert =
    match hybrid.Proxy.flavor with
    | Proxy.Hybrid (c, _) -> c
    | _ -> assert false
  in
  let ign f v = Result.map ignore (f v) in
  [
    ("principal", Principal.to_wire u0, ign Principal.of_wire);
    ("restriction", Restriction.to_wire (List.hd restrictions), ign Restriction.of_wire);
    ("restriction-list", Restriction.list_to_wire restrictions, ign Restriction.list_of_wire);
    ( "cert-body",
      Proxy_cert.body_to_wire
        { Proxy_cert.grantor = u0; serial = "serial-1"; issued_at = now; expires; restrictions },
      ign Proxy_cert.body_of_wire );
    ("pk-cert", Proxy_cert.pk_cert_to_wire head_pk_cert, ign Proxy_cert.pk_cert_of_wire);
    ("hybrid-cert", Proxy_cert.hybrid_cert_to_wire hybrid_cert, ign Proxy_cert.hybrid_cert_of_wire);
    ( "presentation-pk",
      Proxy.presentation_to_wire (Proxy.presentation pk2),
      ign Proxy.presentation_of_wire );
    ( "presentation-conv",
      Proxy.presentation_to_wire (Proxy.presentation conv),
      ign Proxy.presentation_of_wire );
    ( "presentation-hybrid",
      Proxy.presentation_to_wire (Proxy.presentation hybrid),
      ign Proxy.presentation_of_wire );
    ("presented", Guard.presented_to_wire presented, ign Guard.presented_of_wire);
    ("check", Check.to_wire check, ign Check.of_wire);
    ("check-endorsed", Check.to_wire endorsed, ign Check.of_wire);
    ( "rev-entry",
      Revocation.entry_to_wire (Revocation.By_serial "serial-1"),
      ign Revocation.entry_of_wire );
    ("rev-bulletin", Revocation.bulletin_to_wire bulletin, ign Revocation.bulletin_of_wire);
    (* Appended last so earlier seeds keep their indices in the corpus file
       names. *)
    ( "restriction-seq",
      Restriction.to_wire (Restriction.Sequence (sample_seq_steps fs)),
      ign Restriction.of_wire );
  ]

(* --- mutations --- *)

let mutate_once drbg s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rnd k = Crypto.Drbg.uniform_int drbg k in
  if n = 0 then s
  else
    match rnd 7 with
    | 0 ->
        (* bit flip *)
        let i = rnd n in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl rnd 8)));
        Bytes.to_string b
    | 1 ->
        (* random byte *)
        let i = rnd n in
        Bytes.set b i (Char.chr (rnd 256));
        Bytes.to_string b
    | 2 ->
        (* truncate *)
        String.sub s 0 (rnd n)
    | 3 ->
        (* insert a random byte *)
        let i = rnd (n + 1) in
        String.sub s 0 i ^ String.make 1 (Char.chr (rnd 256)) ^ String.sub s i (n - i)
    | 4 ->
        (* duplicate a slice *)
        let i = rnd n in
        let len = 1 + rnd (min 16 (n - i)) in
        let slice = String.sub s i len in
        String.sub s 0 i ^ slice ^ slice ^ String.sub s (i + len) (n - i - len)
    | 5 ->
        (* length bomb: overwrite 4 bytes with 0xff (oversized u32 length) *)
        if n < 4 then Bytes.to_string b
        else begin
          let i = rnd (n - 3) in
          for j = i to i + 3 do
            Bytes.set b j '\xff'
          done;
          Bytes.to_string b
        end
    | _ ->
        (* swap two slices' worth of bytes: reorder structure *)
        let i = rnd n and j = rnd n in
        let ci = Bytes.get b i in
        Bytes.set b i (Bytes.get b j);
        Bytes.set b j ci;
        Bytes.to_string b

let mutate drbg s =
  let rec go s k = if k = 0 then s else go (mutate_once drbg s) (k - 1) in
  go s (1 + Crypto.Drbg.uniform_int drbg 3)

(* --- the fuzz loop --- *)

type crash = { c_seed : string; c_stage : string; c_exn : string; c_input_hex : string }

type stats = {
  iterations : int;
  decode_ok : int;
  decode_error : int;
  typed_ok : int;
  typed_error : int;
  seq_iters : int;  (** mutants derived from the sequence-restriction seed *)
  crashes : crash list;  (** any exception escaping a decoder: a finding *)
}

let no_crash stage seed_name input f =
  match f () with
  | Ok _ -> Ok `Ok
  | Error _ -> Ok `Err
  | exception e ->
      Error
        {
          c_seed = seed_name;
          c_stage = stage;
          c_exn = Printexc.to_string e;
          c_input_hex = Program.to_hex input;
        }

let run ~seed ~iters =
  let drbg = Crypto.Drbg.create ~seed in
  let seeds = seeds () in
  let encoded = List.map (fun (name, v, re) -> (name, Wire.encode v, re)) seeds in
  let stats =
    ref { iterations = 0; decode_ok = 0; decode_error = 0; typed_ok = 0; typed_error = 0;
          seq_iters = 0; crashes = [] }
  in
  let crash c = stats := { !stats with crashes = c :: !stats.crashes } in
  (* Round-trip obligation on every valid seed first. *)
  List.iter
    (fun (name, v, re) ->
      let bytes = Wire.encode v in
      (match Wire.decode bytes with
      | Ok v' when Wire.equal v v' -> ()
      | Ok _ ->
          crash { c_seed = name; c_stage = "roundtrip"; c_exn = "decode(encode v) <> v";
                  c_input_hex = Program.to_hex bytes }
      | Error e ->
          crash { c_seed = name; c_stage = "roundtrip"; c_exn = "decode failed: " ^ e;
                  c_input_hex = Program.to_hex bytes });
      match no_crash "typed-roundtrip" name bytes (fun () -> re v) with
      | Ok `Ok -> ()
      | Ok `Err ->
          crash { c_seed = name; c_stage = "typed-roundtrip"; c_exn = "typed decoder refused a valid encoding";
                  c_input_hex = Program.to_hex bytes }
      | Error c -> crash c)
    seeds;
  for _ = 1 to iters do
    let name, bytes, re =
      List.nth encoded (Crypto.Drbg.uniform_int drbg (List.length encoded))
    in
    let mutant = mutate drbg bytes in
    stats := { !stats with iterations = !stats.iterations + 1 };
    if name = "restriction-seq" then stats := { !stats with seq_iters = !stats.seq_iters + 1 };
    match no_crash "wire-decode" name mutant (fun () -> Wire.decode mutant) with
    | Error c -> crash c
    | Ok `Err -> stats := { !stats with decode_error = !stats.decode_error + 1 }
    | Ok `Ok -> (
        stats := { !stats with decode_ok = !stats.decode_ok + 1 };
        let w = Result.get_ok (Wire.decode mutant) in
        match no_crash "typed-decode" name mutant (fun () -> re w) with
        | Error c -> crash c
        | Ok `Ok -> stats := { !stats with typed_ok = !stats.typed_ok + 1 }
        | Ok `Err -> stats := { !stats with typed_error = !stats.typed_error + 1 })
  done;
  !stats

(* --- the committed corpus --- *)

(* Corpus files are hex, one value per file.  [valid-*.hex] must decode both
   at the wire layer and through their typed decoder; [mutant-*.hex] only
   must not crash anything.  The typed decoder is recovered from the file
   name: valid-<seedname>.hex / mutant-<k>-<seedname>.hex.  [json-*.hex]
   entries are raw JSON text (hex-encoded like the rest) fed to the bench
   artifact parser instead of the wire codec — each is an input that once
   crashed [Benchout]'s \u escape handling, pinned so the parser keeps
   failing closed. *)

(* Hostile \u escapes: non-hex digit, truncation mid-escape, and the
   underscore [int_of_string "0x1_23"] used to silently accept. *)
let json_crashers =
  [
    ("json-escape-nonhex", {|{"a": "\u00g1"}|});
    ("json-escape-truncated", {|{"a": "\u12|});
    ("json-escape-underscore", {|{"a": "\u1_23"}|});
    ("json-escape-empty", {|{"a": "\u|});
    ("json-escape-negative", {|{"a": "\u-123"}|});
  ]

let corpus_decoder seeds fname =
  List.find_map
    (fun (name, _, re) ->
      let suffix = name ^ ".hex" in
      let sl = String.length suffix and fl = String.length fname in
      if fl >= sl && String.sub fname (fl - sl) sl = suffix then Some re else None)
    seeds

let save_corpus ~dir =
  let seeds = seeds () in
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    output_string oc "\n";
    close_out oc
  in
  List.iter
    (fun (name, v, _) ->
      write (Filename.concat dir ("valid-" ^ name ^ ".hex")) (Program.to_hex (Wire.encode v)))
    seeds;
  (* A deterministic handful of mutants, so CI replays known-hostile bytes
     (truncations, length bombs) without re-running the full fuzz loop. *)
  let drbg = Crypto.Drbg.create ~seed:"mbt-fuzz-corpus" in
  List.iteri
    (fun i (name, v, _) ->
      let bytes = Wire.encode v in
      for k = 0 to 2 do
        let mutant = mutate drbg bytes in
        write
          (Filename.concat dir (Printf.sprintf "mutant-%d%d-%s.hex" i k name))
          (Program.to_hex mutant)
      done)
    seeds;
  List.iter
    (fun (name, text) ->
      write (Filename.concat dir (name ^ ".hex")) (Program.to_hex text))
    json_crashers;
  (* Explicit bulletin negatives beyond the random mutants: a mid-structure
     truncation, and a length bomb on the entries list's u32 count (wire
     encoding is compositional, so the encoded entries list is a substring
     of the encoded bulletin and its count sits right after the list tag).
     Both must be refused without crashing or allocating per the claimed
     length — the suffix-matched typed decoder runs on them in replay. *)
  let bulletin_v =
    match List.find_opt (fun (name, _, _) -> name = "rev-bulletin") seeds with
    | Some (_, v, _) -> v
    | None -> failwith "fuzz corpus: no rev-bulletin seed"
  in
  let bytes = Wire.encode bulletin_v in
  write
    (Filename.concat dir "neg-truncated-rev-bulletin.hex")
    (Program.to_hex (String.sub bytes 0 (String.length bytes / 2)));
  let entries_v =
    match bulletin_v with
    | Wire.L [ _; _; _; _; (Wire.L _ as entries); _ ] -> entries
    | _ -> failwith "fuzz corpus: unexpected bulletin shape"
  in
  let sub = Wire.encode entries_v in
  let off =
    let n = String.length bytes and m = String.length sub in
    let rec find i =
      if i + m > n then failwith "fuzz corpus: entries not a substring"
      else if String.sub bytes i m = sub then i
      else find (i + 1)
    in
    find 0
  in
  let bomb = Bytes.of_string bytes in
  for j = off + 1 to off + 4 do
    Bytes.set bomb j '\xff'
  done;
  write
    (Filename.concat dir "neg-lenbomb-rev-bulletin.hex")
    (Program.to_hex (Bytes.to_string bomb));
  (* Sequence-restriction negatives: a truncation, a length bomb on the
     steps list's u32 count, a duplicate-step list and an empty list.  The
     first two must be refused at the wire layer; the last two decode as
     wire values but [Restriction.of_wire] must refuse them — replay fails
     any [neg-*] entry its typed decoder accepts. *)
  let fs = Principal.make ~realm "fs" in
  let seq_bytes =
    Wire.encode (Restriction.to_wire (Restriction.Sequence (sample_seq_steps fs)))
  in
  write
    (Filename.concat dir "neg-truncated-restriction-seq.hex")
    (Program.to_hex (String.sub seq_bytes 0 (String.length seq_bytes / 2)));
  let steps_sub =
    match Restriction.to_wire (Restriction.Sequence (sample_seq_steps fs)) with
    | Wire.L [ _; (Wire.L _ as steps) ] -> Wire.encode steps
    | _ -> failwith "fuzz corpus: unexpected sequence shape"
  in
  let soff =
    let n = String.length seq_bytes and m = String.length steps_sub in
    let rec find i =
      if i + m > n then failwith "fuzz corpus: steps not a substring"
      else if String.sub seq_bytes i m = steps_sub then i
      else find (i + 1)
    in
    find 0
  in
  let sbomb = Bytes.of_string seq_bytes in
  for j = soff + 1 to soff + 4 do
    Bytes.set sbomb j '\xff'
  done;
  write
    (Filename.concat dir "neg-lenbomb-restriction-seq.hex")
    (Program.to_hex (Bytes.to_string sbomb));
  let dup = List.hd (sample_seq_steps fs) in
  write
    (Filename.concat dir "neg-dupstep-restriction-seq.hex")
    (Program.to_hex (Wire.encode (Restriction.to_wire (Restriction.Sequence [ dup; dup ]))));
  write
    (Filename.concat dir "neg-empty-restriction-seq.hex")
    (Program.to_hex (Wire.encode (Restriction.to_wire (Restriction.Sequence []))));
  (4 * List.length seeds) + List.length json_crashers + 2 + 4

type corpus_result = { files : int; failures : (string * string) list }

let replay_corpus ~dir =
  let seeds = seeds () in
  let files = Sys.readdir dir |> Array.to_list |> List.sort compare in
  let hexes = List.filter (fun f -> Filename.check_suffix f ".hex") files in
  let failures = ref [] in
  let fail f msg = failures := (f, msg) :: !failures in
  List.iter
    (fun fname ->
      let path = Filename.concat dir fname in
      let ic = open_in path in
      let hex = String.trim (input_line ic) in
      close_in ic;
      match Program.of_hex hex with
      | Error e -> fail fname ("bad hex: " ^ e)
      | Ok bytes when String.length fname >= 5 && String.sub fname 0 5 = "json-" -> (
          (* Bench-artifact JSON: the parser must fail closed, never raise. *)
          match no_crash "json-parse" fname bytes (fun () -> Benchout.valid_json bytes) with
          | Error c -> fail fname ("json parser raised: " ^ c.c_exn)
          | Ok `Ok | Ok `Err -> ())
      | Ok bytes -> (
          let must_be_valid =
            String.length fname >= 6 && String.sub fname 0 6 = "valid-"
          in
          let must_be_refused =
            String.length fname >= 4 && String.sub fname 0 4 = "neg-"
          in
          match no_crash "wire-decode" fname bytes (fun () -> Wire.decode bytes) with
          | Error c -> fail fname ("decode raised: " ^ c.c_exn)
          | Ok `Err -> if must_be_valid then fail fname "valid corpus entry failed to decode"
          | Ok `Ok -> (
              let w = Result.get_ok (Wire.decode bytes) in
              match corpus_decoder seeds fname with
              | None -> ()
              | Some re -> (
                  match no_crash "typed-decode" fname bytes (fun () -> re w) with
                  | Error c -> fail fname ("typed decoder raised: " ^ c.c_exn)
                  | Ok `Err ->
                      if must_be_valid then
                        fail fname "valid corpus entry refused by its typed decoder"
                  | Ok `Ok ->
                      if must_be_refused then
                        fail fname "negative corpus entry accepted by its typed decoder"))))
    hexes;
  { files = List.length hexes; failures = List.rev !failures }
