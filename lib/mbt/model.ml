(* The executable reference semantics: a pure interpretation of
   authorization programs with no cryptography.  Chains are data, restriction
   satisfaction is a predicate, and the accounting ledger is an int array.

   This mirrors, in a few dozen lines, what the real stack implements with
   sealed/signed certificates, tickets, guards and ledgers:

   - certificate-chain validity (expiry; delegate-cascade signer must be a
     named grantee of the preceding certificate — [Verifier.verify_pk]);
   - restriction accumulation (additive concatenation for conventional and
     hybrid cascades; the pending/discharge rule for public-key delegate
     cascades);
   - restriction satisfaction ([Restriction.check]);
   - the guard's decision procedure (ACL entry matching, proxy contribution,
     accept-once consumption only for proxies that contributed);
   - check clearing at the accounting server (endorsement by the payee,
     accept-once consumed before the debit, bounce on insufficient funds).

   Any disagreement between this model and the real stack is a finding. *)

open Program

type mcheck = { c_payor : int; c_payee : int; c_amount : int; c_id : int }

type link = {
  l_rs : rspec list;
  l_expired : bool;
  l_signer : [ `Auto | `Delegate of int ];
      (** [`Auto]: grantor key at the head, proxy key in a bearer cascade —
          either way the signature always verifies.  [`Delegate d]: user
          [d]'s long-term key; valid only when [d] is a named grantee of the
          preceding certificate. *)
}

type mproxy = {
  m_flavor : flavor;
  m_grantor : int;
  m_root : int;
      (** identity of the head certificate.  Every cascade derived from the
          same grant shares the head, so revoking it by serial — the only
          revocation the program vocabulary expresses — kills exactly the
          slots sharing [m_root], mirroring [Revocation.By_serial] against
          the real chain walk. *)
  m_links : link list (* head first *);
}

type state = {
  mutable slots : mproxy list;  (** creation order *)
  mutable checks : mcheck list;  (** creation order *)
  revoked : bool array;
  revoked_roots : (int, unit) Hashtbl.t;  (** bulletin-revoked head certificates *)
  members : bool array;
  fs_seen : (int, unit) Hashtbl.t;  (** consumed accept-once ids at fs *)
  bank_seen : (int, unit) Hashtbl.t;  (** consumed check numbers at the bank *)
  seq_progress : (int * (string * target) list, int) Hashtbl.t;
      (** sequence progress, keyed (chain head, steps) — the pure mirror of
          the guard's [Seq_tracker] keyed on head serial + canonical form *)
  balances : int array;
}

(* --- restriction satisfaction (mirrors Restriction.check) --- *)

type mreq = {
  q_server : server;
  q_operation : string;
  q_target : string;
  q_presenters : int list;
  q_spend : int option;
  q_seen : int -> bool;
  q_seq : (string * target) list -> int;
      (** current progress of a sequence presented on this chain; the
          Present interpreter closes this over the chain's head identity,
          exactly as the verifier wraps the request's progress function
          with the head serial *)
}

let rec distinct_steps = function
  | [] -> true
  | s :: tl -> (not (List.mem s tl)) && distinct_steps tl

let rec rcheck req = function
  | R_grantee us -> List.exists (fun u -> List.mem u req.q_presenters) us
  | R_issued_for ss -> List.mem req.q_server ss
  | R_quota limit -> ( match req.q_spend with Some a -> a <= limit | None -> true)
  | R_authorized es ->
      List.exists
        (fun (t, ops) ->
          target_name t = req.q_target && (ops = [] || List.mem req.q_operation ops))
        es
  | R_accept_once n -> not (req.q_seen n)
  | R_limit (s, rs) -> s <> req.q_server || List.for_all (rcheck req) rs
  | R_sequence steps ->
      (* Empty and duplicate-step sequences fail closed, mirroring
         [Restriction.seq_validate]; otherwise the request must be exactly
         the next unconsumed step. *)
      steps <> []
      && distinct_steps steps
      &&
      let k = req.q_seq steps in
      k < List.length steps
      &&
      let op, t = List.nth steps k in
      op = req.q_operation && target_name t = req.q_target
  | R_unknown -> false

let rcheck_all req rs = List.for_all (rcheck req) rs

let is_grantee = function R_grantee _ -> true | _ -> false

(* Final restriction set of a valid chain, or None when the chain does not
   verify (an expired certificate, or a delegate-cascade signer that the
   preceding certificate did not name). *)
let chain_restrictions (p : mproxy) =
  match p.m_flavor with
  | Conv | Hybrid ->
      if List.exists (fun l -> l.l_expired) p.m_links then None
      else Some (List.concat_map (fun l -> l.l_rs) p.m_links)
  | Pk ->
      let rec walk acc pending = function
        | [] -> Some (acc @ pending)
        | l :: rest ->
            if l.l_expired then None
            else
              let signer_ok =
                match l.l_signer with
                | `Auto -> true
                | `Delegate d ->
                    (* Proxy.classify: the union of every Grantee list of the
                       preceding certificate. *)
                    List.exists
                      (function R_grantee us -> List.mem d us | _ -> false)
                      pending
              in
              if not signer_ok then None
              else
                let discharged =
                  match l.l_signer with `Delegate _ -> [] | `Auto -> pending
                in
                let grantee_rs, other_rs = List.partition is_grantee l.l_rs in
                walk (acc @ discharged @ other_rs) grantee_rs rest
      in
      walk [] [] p.m_links

(* The pending/discharge walk keys off the *previous certificate's* Grantee
   restrictions, so [pending] entering each step is exactly what the real
   verifier consults; the head enters with [pending = []] and [`Auto]. *)

let top_accept_once rs =
  List.filter_map (function R_accept_once n -> Some n | _ -> None) rs

(* Sequences nested under a Limit_restriction are checked but never
   advanced, mirroring the guard's top-level-only advancement rule. *)
let top_sequences rs =
  List.filter_map (function R_sequence s -> Some s | _ -> None) rs

let nth_mod l i = match l with [] -> None | _ -> Some (List.nth l (i mod List.length l))

let run (prog : Program.t) : Program.run =
  let st =
    {
      slots = [];
      checks = [];
      revoked = Array.make n_users false;
      revoked_roots = Hashtbl.create 8;
      members = Array.make n_users false;
      fs_seen = Hashtbl.create 8;
      bank_seen = Hashtbl.create 8;
      seq_progress = Hashtbl.create 8;
      balances = Array.make n_users initial_balance;
    }
  in
  let n_checks = ref 0 in
  let outcome op =
    match op with
    | Grant { grantor; flavor; expired; rs } ->
        st.slots <-
          st.slots
          @ [ { m_flavor = flavor; m_grantor = grantor;
                m_root = List.length st.slots;
                m_links = [ { l_rs = rs; l_expired = expired; l_signer = `Auto } ] } ];
        O_done
    | Derive { slot; expired; rs; delegate } -> (
        match nth_mod st.slots slot with
        | None -> O_skip
        | Some parent ->
            (* A delegate-cascade signature only exists in the public-key
               realization; conventional and hybrid cascades are sealed under
               the previous proxy key. *)
            let signer =
              match (parent.m_flavor, delegate) with
              | Pk, Some d -> `Delegate d
              | _ -> `Auto
            in
            st.slots <-
              st.slots
              @ [ { parent with
                    m_links =
                      parent.m_links @ [ { l_rs = rs; l_expired = expired; l_signer = signer } ] } ];
            O_done)
    | Present { slot; presenter; verb; target } -> (
        let operation = match verb with `Read -> "read" | `Write -> "write" in
        let req =
          {
            q_server = Fs;
            q_operation = operation;
            q_target = target_name target;
            q_presenters = [ presenter ];
            q_spend = None;
            q_seen = Hashtbl.mem st.fs_seen;
            q_seq = (fun _ -> 0);
          }
        in
        match target with
        | Shared ->
            (* shared.dat is guarded by a Group entry only: without a group
               proxy no regular presentation can satisfy it. *)
            O_ok false
        | File owner ->
            if st.revoked.(owner) then O_ok false
            else if presenter = owner then O_ok true
            else (
              match nth_mod st.slots slot with
              | None -> O_ok false
              | Some proxy when Hashtbl.mem st.revoked_roots proxy.m_root ->
                  (* The verifier walks the chain, finds the head serial on
                     the bulletin, and the proxy fails to contribute — the
                     denial is indistinguishable from an invalid chain, and
                     accept-once state is untouched. *)
                  O_ok false
              | Some proxy -> (
                  match chain_restrictions proxy with
                  | None -> O_ok false
                  | Some rs ->
                      (* The chain's head identity keys sequence progress:
                         every cascade of one grant shares the counter. *)
                      let req =
                        { req with
                          q_seq =
                            (fun steps ->
                              Option.value
                                (Hashtbl.find_opt st.seq_progress (proxy.m_root, steps))
                                ~default:0) }
                      in
                      let usable = proxy.m_grantor = owner && rcheck_all req rs in
                      if usable then begin
                        (* The proxy contributed, so its (top-level)
                           accept-once identifiers are consumed. *)
                        List.iter
                          (fun n -> Hashtbl.replace st.fs_seen n ())
                          (top_accept_once rs);
                        (* ... and each distinct top-level sequence advances
                           by exactly one step, however often it appears on
                           the chain. *)
                        let advanced = ref [] in
                        List.iter
                          (fun steps ->
                            if not (List.mem steps !advanced) then begin
                              advanced := steps :: !advanced;
                              let key = (proxy.m_root, steps) in
                              let k =
                                Option.value (Hashtbl.find_opt st.seq_progress key)
                                  ~default:0
                              in
                              Hashtbl.replace st.seq_progress key (k + 1)
                            end)
                          (top_sequences rs)
                      end;
                      O_ok usable)))
    | Revoke { owner } ->
        st.revoked.(owner) <- true;
        O_done
    | Revoke_proxy { slot } -> (
        match nth_mod st.slots slot with
        | None -> O_skip
        | Some p ->
            Hashtbl.replace st.revoked_roots p.m_root ();
            O_done)
    | Add_member { member } ->
        st.members.(member) <- true;
        O_done
    | Remove_member { member } ->
        st.members.(member) <- false;
        O_done
    | Assert_group { member } ->
        (* Membership proxy granted iff the member is in the group; the
           subsequent shared-file read succeeds exactly when the proxy was
           granted (the proxy itself always verifies: fresh, unexpired, and
           presented by its named grantee). *)
        let m = st.members.(member) in
        O_group (m, m)
    | Write_check { payor; payee; amount } ->
        let id = !n_checks in
        incr n_checks;
        st.checks <- st.checks @ [ { c_payor = payor; c_payee = payee; c_amount = amount; c_id = id } ];
        O_done
    | Deposit { cslot; depositor } -> (
        match nth_mod st.checks cslot with
        | None -> O_skip
        | Some c ->
            (* The check chain verifies at the bank only when the depositor
               is the payee (the endorsement is a delegate-cascade signature
               that must match the check's Grantee), and its accept-once
               check number must not have been consumed. *)
            let usable = depositor = c.c_payee && not (Hashtbl.mem st.bank_seen c.c_id) in
            (* The payor depositing a check drawn on their own account needs
               no proxy at all: the ACL names them directly, and then the
               check's accept-once number is NOT consumed (the proxy did not
               contribute to the decision). *)
            let granted = depositor = c.c_payor || usable in
            if granted && depositor <> c.c_payor then Hashtbl.replace st.bank_seen c.c_id ();
            if not granted then O_ok false
            else if st.balances.(c.c_payor) < c.c_amount then
              (* Bounce: insufficient funds — but the accept-once was already
                 consumed above, exactly as the real guard consumes it before
                 the ledger debit. *)
              O_ok false
            else begin
              st.balances.(c.c_payor) <- st.balances.(c.c_payor) - c.c_amount;
              st.balances.(depositor) <- st.balances.(depositor) + c.c_amount;
              O_ok true
            end)
  in
  let outcomes = List.map outcome prog in
  { outcomes; balances = st.balances }
