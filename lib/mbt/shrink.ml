(* Greedy trace shrinker: find a (locally) minimal program that still
   triggers a disagreement.  Two reduction passes run to a fixpoint under a
   candidate budget:

   - drop whole operations (scanning from the tail, so consumers disappear
     before their producers);
   - drop individual restriction specs inside Grant/Derive operations.

   Slot references are interpreted modulo the number of live slots by both
   the executor and the model, so any subsequence of a program is itself a
   well-formed program — the classic trick that keeps shrinking closed. *)

open Program

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

(* Candidates that remove one operation, tail first. *)
let op_removals (p : t) =
  List.rev (List.init (List.length p) (fun i -> drop_nth p i))

(* Candidates that remove one restriction spec from one op. *)
let rspec_removals (p : t) =
  List.concat
    (List.mapi
       (fun i op ->
         let with_rs mk rs =
           List.init (List.length rs) (fun j ->
               List.mapi (fun k o -> if k = i then mk (drop_nth rs j) else o) p)
         in
         match op with
         | Grant g -> with_rs (fun rs -> Grant { g with rs }) g.rs
         | Derive d -> with_rs (fun rs -> Derive { d with rs }) d.rs
         | _ -> [])
       p)

let minimize ~still_failing ?(budget = 400) (p0 : t) =
  let spent = ref 0 in
  let try_candidate c =
    if !spent >= budget then false
    else begin
      incr spent;
      still_failing c
    end
  in
  let rec fixpoint p =
    let step candidates =
      List.find_opt try_candidate (candidates p)
    in
    match step op_removals with
    | Some p' -> fixpoint p'
    | None -> (
        match step rspec_removals with
        | Some p' -> fixpoint p'
        | None -> p)
  in
  let result = fixpoint p0 in
  (result, !spent)
