(* Execute a generated program against the real stack: a simulated network
   with a KDC, a PKI directory, a guarded file server, a group server and an
   accounting server.  Every run is deterministic in the world seed.

   [mutation] deliberately mis-implements one rule at the execution level
   (the model is not told), so the harness can demonstrate that the oracle
   catches injected semantics bugs — the mutation-killing check. *)

open Program

type mutation =
  | Drop_derived_restriction
      (** derive silently drops the first appended restriction — violates
          Section 6.2's "restrictions may only be added" *)
  | Ignore_expiry
      (** certificates requested as already-expired are minted with a long
          lifetime instead *)
  | Misbind_proof
      (** proofs of possession are bound to the wrong request digest *)
  | Ignore_bulletin
      (** revocation bulletins are dropped on the floor instead of applied —
          a revoked chain keeps verifying, the revoke-vs-present ordering the
          model insists on is violated *)
  | Ignore_sequence_order
      (** a Sequence restriction is lowered to a stateless Authorized set of
          its steps — any step usable in any order, any number of times *)
  | Reset_progress_on_retry
      (** the guard's sequence tracker is wiped after every presentation, as
          if retry handling reset earned progress — in-order second steps
          that the model grants are denied by the stack *)

let mutation_name = function
  | Drop_derived_restriction -> "drop-derived-restriction"
  | Ignore_expiry -> "ignore-expiry"
  | Misbind_proof -> "misbind-proof"
  | Ignore_bulletin -> "ignore-bulletin"
  | Ignore_sequence_order -> "ignore-sequence-order"
  | Reset_progress_on_retry -> "reset-progress-on-retry"

let mutations =
  [ Drop_derived_restriction; Ignore_expiry; Misbind_proof; Ignore_bulletin;
    Ignore_sequence_order; Reset_progress_on_retry ]

let mutation_of_name s =
  List.find_opt (fun m -> mutation_name m = s) mutations

(* Long-term RSA keys are expensive to generate, deterministic, and carry no
   per-program state, so one process-global pool (generated eagerly, in a
   fixed order, from a dedicated DRBG) serves every program. *)
type keypool = {
  pk_users : Crypto.Rsa.private_ array;
  pk_fs : Crypto.Rsa.private_;
  pk_bank : Crypto.Rsa.private_;
  pk_authority : Crypto.Rsa.private_;  (** signs revocation bulletins *)
}

let pool =
  lazy
    (let drbg = Crypto.Drbg.create ~seed:"mbt-keypool" in
     let gen () = Crypto.Rsa.generate drbg ~bits:512 in
     let pk_users = Array.init n_users (fun _ -> gen ()) in
     let pk_fs = gen () in
     let pk_bank = gen () in
     let pk_authority = gen () in
     { pk_users; pk_fs; pk_bank; pk_authority })

let uname i = Printf.sprintf "u%d" i

type univ = {
  net : Sim.Net.t;
  users : Principal.t array;
  fs_creds : Ticket.credentials array;
  bank_creds : Ticket.credentials array;
  gs_creds : Ticket.credentials array;
  fs : File_server.t;
  fs_name : Principal.t;
  gs : Group_server.t;
  bank : Accounting_server.t;
  bank_name : Principal.t;
  team : Principal.Group.t;
  authority : Principal.t;  (** the revocation authority the fs subscribes to *)
}

let build ~cache ~seed =
  let kp = Lazy.force pool in
  let w = World.create ~seed () in
  let net = w.World.net in
  let users = Array.init n_users (fun i -> fst (World.enrol w (uname i))) in
  Array.iteri
    (fun i p -> Directory.add_public w.World.dir p kp.pk_users.(i).Crypto.Rsa.pub)
    users;
  let fs_name, fs_key = World.enrol w "fs" in
  Directory.add_public w.World.dir fs_name kp.pk_fs.Crypto.Rsa.pub;
  let gs_name, gs_key = World.enrol w "gs" in
  let bank_name, bank_key = World.enrol w "bank" in
  Directory.add_public w.World.dir bank_name kp.pk_bank.Crypto.Rsa.pub;
  let vcache () = Verify_cache.create ~capacity:(if cache then 1024 else 0) () in
  let lookup_pub = Directory.public w.World.dir in
  let team = Principal.Group.make ~server:gs_name group in
  let acl = Acl.create () in
  for i = 0 to n_users - 1 do
    Acl.add acl ~target:(target_name (File i))
      { Acl.subject = Acl.Principal_is users.(i); rights = [ "read"; "write" ]; restrictions = [] }
  done;
  Acl.add acl ~target:(target_name Shared)
    { Acl.subject = Acl.Group team; rights = [ "read"; "write" ]; restrictions = [] };
  let authority = Principal.make ~realm:w.World.realm "revoker" in
  (* The staleness bound is effectively infinite: MBT programs probe
     revocation *ordering* (revoke-vs-present races), not partition
     staleness — that path is the revocation-storm scenario's business. *)
  let revocation =
    Revocation.create ~authority ~authority_pub:kp.pk_authority.Crypto.Rsa.pub
      ~staleness_bound_us:max_int ~now:(Sim.Net.now net) ()
  in
  let fs =
    File_server.create net ~me:fs_name ~my_key:fs_key ~lookup_pub ~my_rsa:kp.pk_fs
      ~verify_cache:(vcache ()) ~revocation ~acl ()
  in
  File_server.install fs;
  for i = 0 to n_users - 1 do
    File_server.put_direct fs ~path:(target_name (File i)) (Printf.sprintf "contents of u%d" i)
  done;
  File_server.put_direct fs ~path:(target_name Shared) "shared contents";
  let gs =
    match
      Group_server.create net ~me:gs_name ~my_key:gs_key ~kdc:w.World.kdc_name ~lookup_pub
        ~verify_cache:(vcache ()) ()
    with
    | Ok gs -> gs
    | Error e -> failwith ("mbt: group server: " ^ e)
  in
  Group_server.install gs;
  let bank =
    match
      Accounting_server.create net ~me:bank_name ~my_key:bank_key ~kdc:w.World.kdc_name
        ~signing_key:kp.pk_bank ~lookup:lookup_pub ~verify_cache:(vcache ()) ()
    with
    | Ok b -> b
    | Error e -> failwith ("mbt: accounting server: " ^ e)
  in
  Accounting_server.install bank;
  let creds_for target =
    Array.init n_users (fun i ->
        World.credentials_for w ~tgt:(World.login w users.(i)) target)
  in
  (* One login per user per target keeps per-op work purely the operation's
     own RPCs.  (Logins are cheap but ordering must be fixed: everything at
     build time, in user order.) *)
  let fs_creds = creds_for fs_name in
  let bank_creds = creds_for bank_name in
  let gs_creds = creds_for gs_name in
  for i = 0 to n_users - 1 do
    (match Accounting_server.open_account net ~creds:bank_creds.(i) ~name:(uname i) with
    | Ok () -> ()
    | Error e -> failwith ("mbt: open account: " ^ e));
    match
      Ledger.mint (Accounting_server.ledger bank) ~name:(uname i) ~currency initial_balance
    with
    | Ok () -> ()
    | Error e -> failwith ("mbt: mint: " ^ e)
  done;
  { net; users; fs_creds; bank_creds; gs_creds; fs; fs_name; gs; bank; bank_name; team;
    authority }

(* --- lowering restriction specs to real restrictions --- *)

let server_principal u = function
  | Fs -> u.fs_name
  | Bank -> u.bank_name
  | Gs -> Group_server.me u.gs

let rec lower ~mutation u = function
  | R_grantee us -> Restriction.Grantee (List.map (fun i -> u.users.(i)) us, 1)
  | R_issued_for ss -> Restriction.Issued_for (List.map (server_principal u) ss)
  | R_quota n -> Restriction.Quota (currency, n)
  | R_authorized es ->
      Restriction.Authorized
        (List.map (fun (t, ops) -> { Restriction.target = target_name t; ops }) es)
  | R_accept_once n -> Restriction.Accept_once (string_of_int n)
  | R_limit (s, rs) ->
      Restriction.Limit_restriction
        ([ server_principal u s ], List.map (lower ~mutation u) rs)
  | R_sequence steps ->
      if mutation = Some Ignore_sequence_order then
        (* The deliberate bug: forget the ordering and the consumption — the
           steps become a plain stateless permission set. *)
        Restriction.Authorized
          (List.map (fun (op, t) -> { Restriction.target = target_name t; ops = [ op ] }) steps)
      else
        Restriction.Sequence
          (List.map
             (fun (op, t) ->
               { Restriction.step_op = op; step_server = None;
                 step_target = Some (target_name t) })
             steps)
  | R_unknown -> Restriction.Unknown "mbt-unrecognized"

let nth_mod l i = match l with [] -> None | _ -> Some (List.nth l (i mod List.length l))

(* The serial of a chain's head certificate — what a grantor quotes when
   asking the authority to revoke a grant.  Public-key and hybrid heads are
   world-readable; a conventional head is sealed under the grantor's own
   session key, which the grantor of course holds. *)
let head_serial u ~grantor (proxy : Proxy.t) =
  match proxy.Proxy.flavor with
  | Proxy.Public_key (c :: _) -> c.Proxy_cert.pk_body.Proxy_cert.serial
  | Proxy.Public_key [] -> failwith "mbt: empty pk chain"
  | Proxy.Hybrid (h, _) -> h.Proxy_cert.h_body.Proxy_cert.serial
  | Proxy.Conventional { Proxy.cert_blobs; _ } -> (
      match cert_blobs with
      | [] -> failwith "mbt: empty conventional chain"
      | head :: _ -> (
          let creds = u.fs_creds.(grantor) in
          match
            Proxy_cert.open_conventional ~sealing_key:creds.Ticket.session_key head
          with
          | Ok (body, _) -> body.Proxy_cert.serial
          | Error e -> failwith ("mbt: open conventional head: " ^ e)))

let run ?mutation ~cache ~seed (prog : Program.t) : Program.run =
  let kp = Lazy.force pool in
  let u = build ~cache ~seed in
  let drbg = Sim.Net.drbg u.net in
  let slots = ref [] (* (proxy, grantor) in creation order *) in
  let checks = ref [] in
  let revoked_serials = ref [] in
  let rev_epoch = ref 0 in
  let expires_for ~now expired =
    if expired && mutation <> Some Ignore_expiry then now else now + World.hour
  in
  let outcome op =
    match op with
    | Grant { grantor; flavor; expired; rs } ->
        let now = Sim.Net.now u.net in
        let expires = expires_for ~now expired in
        let restrictions = List.map (lower ~mutation u) rs in
        let proxy =
          match flavor with
          | Conv ->
              let creds = u.fs_creds.(grantor) in
              Proxy.grant_conventional ~drbg ~now ~expires ~grantor:u.users.(grantor)
                ~session_key:creds.Ticket.session_key ~base:creds.Ticket.ticket_blob
                ~restrictions
          | Pk ->
              Proxy.grant_pk ~drbg ~now ~expires ~grantor:u.users.(grantor)
                ~grantor_key:kp.pk_users.(grantor) ~restrictions ()
          | Hybrid -> (
              match
                Proxy.grant_hybrid ~drbg ~now ~expires ~grantor:u.users.(grantor)
                  ~grantor_key:kp.pk_users.(grantor) ~end_server:u.fs_name
                  ~end_server_pub:kp.pk_fs.Crypto.Rsa.pub ~restrictions ()
              with
              | Ok p -> p
              | Error e -> failwith ("mbt: grant_hybrid: " ^ e))
        in
        slots := !slots @ [ (proxy, grantor) ];
        O_done
    | Derive { slot; expired; rs; delegate } -> (
        match nth_mod !slots slot with
        | None -> O_skip
        | Some (parent, pgrantor) ->
            let now = Sim.Net.now u.net in
            let expires = expires_for ~now expired in
            let rs =
              if mutation = Some Drop_derived_restriction then
                match rs with [] -> [] | _ :: tl -> tl
              else rs
            in
            let restrictions = List.map (lower ~mutation u) rs in
            let derived =
              match (parent.Proxy.flavor, delegate) with
              | Proxy.Conventional _, _ ->
                  Proxy.restrict_conventional ~drbg ~now ~expires ~restrictions parent
              | Proxy.Public_key _, Some d ->
                  Proxy.delegate_pk ~drbg ~now ~expires ~intermediate:u.users.(d)
                    ~intermediate_key:kp.pk_users.(d) ~restrictions parent
              | Proxy.Public_key _, None ->
                  Proxy.restrict_pk ~drbg ~now ~expires ~restrictions parent
              | Proxy.Hybrid _, _ ->
                  Proxy.restrict_hybrid ~drbg ~now ~expires ~restrictions parent
            in
            (match derived with
            | Ok p -> slots := !slots @ [ (p, pgrantor) ]
            | Error e -> failwith ("mbt: derive: " ^ e));
            O_done)
    | Present { slot; presenter; verb; target } -> (
        let path = target_name target in
        let operation = match verb with `Read -> "read" | `Write -> "write" in
        let proxies =
          match nth_mod !slots slot with
          | None -> []
          | Some (proxy, _) ->
              let bound_op = if mutation = Some Misbind_proof then "stat" else operation in
              [ Guard.present ~proxy ~time:(Sim.Net.now u.net) ~server:u.fs_name
                  ~operation:bound_op ~target:path () ]
        in
        let creds = u.fs_creds.(presenter) in
        let granted =
          match verb with
          | `Read -> Result.is_ok (File_server.read u.net ~creds ~proxies ~path ())
          | `Write -> Result.is_ok (File_server.write u.net ~creds ~proxies ~path "mbt write")
        in
        if mutation = Some Reset_progress_on_retry then
          Seq_tracker.clear (Guard.seq_tracker (File_server.guard u.fs));
        O_ok granted)
    | Revoke { owner } ->
        Acl.remove_subject (File_server.acl u.fs) ~target:(target_name (File owner))
          (Acl.Principal_is u.users.(owner));
        O_done
    | Revoke_proxy { slot } -> (
        match nth_mod !slots slot with
        | None -> O_skip
        | Some (proxy, grantor) ->
            let serial = head_serial u ~grantor proxy in
            if not (List.mem serial !revoked_serials) then
              revoked_serials := !revoked_serials @ [ serial ];
            (* Bulletins carry the full cumulative list under a strictly
               increasing epoch; the guard bumps its verify-cache generation
               when coverage actually extends, so a re-revocation is a pure
               heartbeat. *)
            incr rev_epoch;
            let bulletin =
              Revocation.sign ~key:kp.pk_authority ~authority:u.authority
                ~epoch:!rev_epoch ~issued_at:(Sim.Net.now u.net)
                (List.map (fun s -> Revocation.By_serial s) !revoked_serials)
            in
            if mutation <> Some Ignore_bulletin then
              (match Guard.apply_bulletin (File_server.guard u.fs) bulletin with
              | Ok _ -> ()
              | Error e -> failwith ("mbt: apply bulletin: " ^ e));
            O_done)
    | Add_member { member } ->
        Group_server.add_member u.gs ~group u.users.(member);
        O_done
    | Remove_member { member } ->
        Group_server.remove_member u.gs ~group u.users.(member);
        O_done
    | Assert_group { member } -> (
        match
          Group_server.request_membership_proxy u.net ~creds:u.gs_creds.(member) ~group
            ~end_server:u.fs_name ()
        with
        | Error _ -> O_group (false, false)
        | Ok proxy ->
            let presented =
              { Guard.pres = Proxy.presentation proxy; pres_proof = None }
            in
            let read =
              File_server.read u.net ~creds:u.fs_creds.(member) ~group_proxies:[ presented ]
                ~path:(target_name Shared) ()
            in
            O_group (true, Result.is_ok read))
    | Write_check { payor; payee; amount } ->
        let now = Sim.Net.now u.net in
        let check =
          Check.write ~drbg ~now ~expires:(now + World.hour) ~payor:u.users.(payor)
            ~payor_key:kp.pk_users.(payor)
            ~account:(Accounting_server.account u.bank (uname payor))
            ~payee:u.users.(payee) ~currency ~amount ()
        in
        checks := !checks @ [ check ];
        O_done
    | Deposit { cslot; depositor } -> (
        match nth_mod !checks cslot with
        | None -> O_skip
        | Some check ->
            let r =
              Accounting_server.deposit u.net ~creds:u.bank_creds.(depositor)
                ~endorser_key:kp.pk_users.(depositor) ~check ~to_account:(uname depositor)
            in
            O_ok (Result.is_ok r))
  in
  let outcomes = List.map outcome prog in
  let ledger = Accounting_server.ledger u.bank in
  let balances =
    Array.init n_users (fun i -> Ledger.balance ledger ~name:(uname i) ~currency)
  in
  { outcomes; balances }
