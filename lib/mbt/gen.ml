(* Seeded random program generator.  All randomness flows from one
   [Crypto.Drbg], so a campaign seed fully determines every program. *)

open Program

type t = { drbg : Crypto.Drbg.t }

let create ~seed = { drbg = Crypto.Drbg.create ~seed }

let int g n = Crypto.Drbg.uniform_int g.drbg n
let user g = int g n_users
let bool_pct g pct = int g 100 < pct

let pick g l = List.nth l (int g (List.length l))

let flavor g = pick g [ Conv; Conv; Pk; Pk; Pk; Hybrid ]

let target g = if bool_pct g 15 then Shared else File (user g)

(* Restriction specs.  Biased toward restrictions that actually bite on the
   generated requests (the grantor's own file, read/write ops, small ids so
   accept-once collides across proxies), with occasional Unknown and nested
   Limit_restriction. *)
let rec rspec g ~grantor ~depth =
  let choice = int g 100 in
  if choice < 22 then
    R_authorized
      (List.init
         (1 + int g 2)
         (fun _ ->
           let t = if bool_pct g 70 then File grantor else target g in
           let ops =
             match int g 4 with
             | 0 -> []
             | 1 -> [ "read" ]
             | 2 -> [ "write" ]
             | _ -> [ "read"; "write" ]
           in
           (t, ops)))
  else if choice < 40 then R_grantee (List.init (1 + int g 2) (fun _ -> user g))
  else if choice < 52 then R_issued_for (List.init (1 + int g 2) (fun _ -> pick g [ Fs; Bank; Gs ]))
  else if choice < 62 then R_quota (int g 150)
  else if choice < 76 then R_accept_once (int g 6)
  else if choice < 84 && depth < 2 then
    R_limit (pick g [ Fs; Bank; Gs ], List.init (1 + int g 2) (fun _ -> rspec g ~grantor ~depth:(depth + 1)))
  else if choice < 88 then R_unknown
  else if choice < 94 then
    (* Steps are always pairwise distinct — the generator never emits the
       degenerate (empty or duplicate-step) sequences both the decoder and
       the checker refuse; those live in the fuzz negatives instead. *)
    if bool_pct g 50 then R_sequence [ ((if bool_pct g 50 then "read" else "write"), File grantor) ]
    else
      let a, b = if bool_pct g 50 then ("read", "write") else ("write", "read") in
      R_sequence [ (a, File grantor); (b, File grantor) ]
  else R_authorized [ (File grantor, []) ]

let rs g ~grantor ~min_len ~max_len =
  List.init (min_len + int g (max_len - min_len + 1)) (fun _ -> rspec g ~grantor ~depth:0)

(* Narrowing specs for cascade steps: restrictions that typically *deny*
   the coherent presentations generated later, so a stack that loses a
   derived restriction visibly widens. *)
let narrow g ~grantor =
  match int g 4 with
  | 0 -> R_unknown
  | 1 -> R_grantee [ user g ]
  | 2 -> R_authorized [ (File grantor, [ (if bool_pct g 50 then "read" else "write") ]) ]
  | _ -> R_accept_once (int g 6)

(* The generator tracks the grantor of every slot it has created (mirroring
   the modulo slot semantics), so derives and presentations can be biased
   toward *coherent* traffic: a derive narrows with restrictions about its
   own chain's grantor, and half the presentations aim a recent proxy at
   that grantor's file.  Uncorrelated noise still flows through the other
   half — coherence is a bias, not a straitjacket. *)
(* A coherent sequence episode: grant a proxy carrying a two-step sequence
   over the grantor's own file to another user, then drive presentations at
   it — in order (the whole sequence should be consumed exactly once), or as
   a deliberate out-of-order / repeated-step attack (every out-of-turn
   presentation must be denied).  Occasionally a tightening derive first
   narrows the sequence to its one-step prefix, the only transformation the
   additive-only rule lets a delegate express. *)
let seq_episode g slots =
  let grantor = user g in
  let presenter = (grantor + 1 + int g (n_users - 1)) mod n_users in
  let first_op, second_op = if bool_pct g 50 then ("read", "write") else ("write", "read") in
  let steps = [ (first_op, File grantor); (second_op, File grantor) ] in
  let gslot = List.length !slots in
  slots := !slots @ [ grantor ];
  let grant =
    Grant
      {
        grantor;
        flavor = flavor g;
        expired = bool_pct g 8;
        rs =
          (if bool_pct g 50 then [ R_grantee [ presenter ] ] else [])
          @ [ R_sequence steps ];
      }
  in
  let tighten =
    if bool_pct g 25 then begin
      slots := !slots @ [ grantor ];
      [ Derive
          { slot = gslot; expired = false;
            rs = [ R_sequence [ (first_op, File grantor) ] ]; delegate = None } ]
    end
    else []
  in
  let verb_of o = if o = "read" then `Read else `Write in
  let present o = Present { slot = gslot; presenter; verb = verb_of o; target = File grantor } in
  let presents =
    if bool_pct g 55 then [ present first_op; present second_op ]
    else if bool_pct g 50 then [ present second_op; present first_op; present second_op ]
    else [ present first_op; present first_op; present second_op ]
  in
  (grant :: tighten) @ presents

let op1 g slots =
  let n_slots = List.length !slots in
  let slot_grantor s = List.nth !slots (s mod n_slots) in
  let pick_slot () =
    if n_slots = 0 then int g 6
    else if bool_pct g 50 then n_slots - 1
    else int g n_slots
  in
  match int g 100 with
  | n when n < 22 ->
      let grantor = user g in
      slots := !slots @ [ grantor ];
      Grant { grantor; flavor = flavor g; expired = bool_pct g 12; rs = rs g ~grantor ~min_len:0 ~max_len:3 }
  | n when n < 40 ->
      let slot = pick_slot () in
      let grantor = if n_slots = 0 then user g else slot_grantor slot in
      if n_slots > 0 then slots := !slots @ [ grantor ];
      (* Derived restrictions are never empty: every derive appends at least
         one restriction, which is what the drop-derived-restriction mutation
         must be caught removing. *)
      Derive
        {
          slot;
          expired = bool_pct g 10;
          rs =
            (if bool_pct g 45 then [ narrow g ~grantor ]
             else rs g ~grantor ~min_len:1 ~max_len:2);
          delegate = (if bool_pct g 30 then Some (user g) else None);
        }
  | n when n < 64 ->
      let slot = pick_slot () in
      let target =
        if n_slots > 0 && bool_pct g 55 then File (slot_grantor slot) else target g
      in
      Present
        {
          slot;
          presenter = user g;
          verb = (if bool_pct g 50 then `Read else `Write);
          target;
        }
  | n when n < 67 -> Revoke { owner = user g }
  | n when n < 71 ->
      (* Biased (via pick_slot) toward the most recent chain, so the classic
         race — grant, present, revoke, present again — is common. *)
      Revoke_proxy { slot = pick_slot () }
  | n when n < 76 -> Add_member { member = user g }
  | n when n < 79 -> Remove_member { member = user g }
  | n when n < 84 -> Assert_group { member = user g }
  | n when n < 91 ->
      Write_check { payor = user g; payee = user g; amount = 1 + int g 150 }
  | _ -> Deposit { cslot = int g 4; depositor = user g }

let op g slots =
  if bool_pct g 12 then seq_episode g slots else [ op1 g slots ]

let program g : Program.t =
  let len = 3 + int g 10 in
  let slots = ref [] in
  List.concat (List.init len (fun _ -> op g slots))
