(* Open-loop load driver. Structure mirrors Cluster.Scenario (shards,
   ring, routers), plus a guarded file server for the authorization side
   of the mix and a lazy Zipf population in front of everything. *)

module R = Restriction
module Shard = Cluster.Shard
module Ring = Cluster.Ring
module Router = Cluster.Router

type config = {
  seed : string;
  population : int;
  objects : int;
  shards : int;
  phases : Population.phase list;
  link_cache : bool;
  pipeline : bool;
  sweep_width : int;
  churn_every : int;
  retries : int;
  timeout_us : int;
}

let default =
  {
    seed = "load";
    population = 100_000;
    objects = 512;
    shards = 4;
    phases =
      [ { Population.rate_per_s = 150; duration_us = 400_000 };
        { Population.rate_per_s = 800; duration_us = 100_000 };
        { Population.rate_per_s = 150; duration_us = 300_000 } ];
    link_cache = true;
    pipeline = true;
    sweep_width = 6;
    churn_every = 16;
    retries = 4;
    timeout_us = 10_000;
  }

type outcome = {
  arrivals : int;
  succeeded : int;
  failed : int;
  touched : int;
  materializations : int;
  keys_generated : int;
  keys_reused : int;
  retired : int;
  grants : int;
  presents : int;
  debits : int;
  clears : int;
  sweeps : int;
  p50_us : int;
  p99_us : int;
  max_us : int;
  span_count : int;
  metrics : (string * int) list;
  trace : string list;
  jsonl : string;
}

let usd = "usd"

let ok_or ctx = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "Driver.run setup (%s): %s" ctx e)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

type actor = {
  a_principal : Principal.t;
  a_rsa : Crypto.Rsa.private_;
  a_router : Router.t;
}

let run cfg =
  if cfg.population < 1 then invalid_arg "Driver.run: population must be positive";
  if cfg.objects < 1 || cfg.objects > cfg.population then
    invalid_arg "Driver.run: objects must be in [1, population]";
  if cfg.shards < 1 then invalid_arg "Driver.run: at least one shard";
  if cfg.sweep_width < 1 then invalid_arg "Driver.run: sweep_width must be positive";
  let offs = Population.arrivals cfg.phases in
  let n_arrivals = List.length offs in
  if n_arrivals = 0 then invalid_arg "Driver.run: empty arrival schedule";
  let w = World.create ~seed:cfg.seed () in
  let net = w.World.net in
  Sim.Net.enable_tracing ~capacity:((64 * n_arrivals) + 1024) net;
  let drbg = Sim.Net.drbg net in
  let collect_retry = Sim.Retry.policy ~retries:cfg.retries ~timeout_us:cfg.timeout_us () in
  let repl_retry = Sim.Retry.policy ~retries:8 ~timeout_us:cfg.timeout_us () in
  (* -- the accounting cluster -- *)
  let shard_ids = List.init cfg.shards (Printf.sprintf "bank-%d") in
  let shards =
    List.map
      (fun id ->
        let p, key, rsa = World.enrol_pk w id in
        let s =
          ok_or id
            (Shard.create net ~me:p ~my_key:key ~kdc:w.World.kdc_name ~signing_key:rsa
               ~lookup:(fun q -> Directory.public w.World.dir q)
               ~collect_retry ~repl_retry ~primary_node:(id ^ "-a")
               ~standby_node:(id ^ "-b") ())
        in
        Shard.install s;
        (id, s))
      shard_ids
  in
  let shard id = List.assoc id shards in
  let ring = Ring.create shard_ids in
  List.iter
    (fun (_, s1) ->
      List.iter
        (fun (_, s2) ->
          if not (Principal.equal (Shard.logical s1) (Shard.logical s2)) then begin
            Shard.set_route s1 ~drawee:(Shard.logical s2)
              ~via:[ Shard.primary_node s2; Shard.standby_node s2 ]
              ~next_hop:(Shard.logical s2) ();
            ok_or "warm" (Shard.warm s1 ~drawee:(Shard.logical s2))
          end)
        shards)
    shards;
  let endpoints =
    List.map
      (fun (id, s) ->
        ( id,
          {
            Router.ep_logical = Shard.logical s;
            ep_primary = Shard.primary_node s;
            ep_standby = Shard.standby_node s;
          } ))
      shards
  in
  let router_for principal =
    let creds_for logical =
      try
        let tgt = World.login w principal in
        Ok (World.credentials_for w ~tgt logical)
      with Failure e -> Error e
    in
    Router.create net ~ring ~endpoints ~creds_for ~retries:cfg.retries
      ~timeout_us:cfg.timeout_us ()
  in
  (* -- the guarded file server -- *)
  let fs_name, fs_key = World.enrol w "files" in
  let link_cache = if cfg.link_cache then Some (Link_cache.create ()) else None in
  let fs =
    File_server.create net ~me:fs_name ~my_key:fs_key
      ~lookup_pub:(fun q -> Directory.public w.World.dir q)
      ?link_cache ~acl:(Acl.create ()) ()
  in
  File_server.install fs;
  (* The fixed presenter: holders of bearer proxies authenticate as this
     worker; authority comes from the presented chains, not the worker. *)
  let worker, _ = World.enrol w "worker" in
  let worker_creds = World.credentials_for w ~tgt:(World.login w worker) fs_name in
  (* -- the auditor and its sweep accounts (all on one shard, so a sweep
     is one pipelined exchange with that shard) -- *)
  let auditor, _ = World.enrol w "auditor" in
  let auditor_router = router_for auditor in
  let sweep_shard = Ring.lookup ring "audit-0" in
  let sweep_accounts =
    let rec collect j acc n =
      if n >= cfg.sweep_width then List.rev acc
      else
        let name = Printf.sprintf "audit-%d" j in
        if Ring.lookup ring name = sweep_shard then collect (j + 1) (name :: acc) (n + 1)
        else collect (j + 1) acc n
    in
    collect 0 [] 0
  in
  List.iter
    (fun name ->
      ok_or name (Router.open_account auditor_router ~name);
      ok_or name (Shard.mint (shard sweep_shard) ~name ~currency:usd 100))
    sweep_accounts;
  let sweep_creds =
    World.credentials_for w ~tgt:(World.login w auditor)
      (Shard.logical (shard sweep_shard))
  in
  (* -- the lazy population -- *)
  let zipf = Population.zipf cfg.population in
  let obj_zipf = Population.zipf cfg.objects in
  let pool = Population.pool ~seed:("pool:" ^ cfg.seed) () in
  let wl = Crypto.Drbg.create ~seed:("workload:" ^ cfg.seed) in
  let actors : (int, actor) Hashtbl.t = Hashtbl.create 256 in
  let provisioned : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let order = Queue.create () in
  let touched = ref 0 and materializations = ref 0 and retired = ref 0 in
  let name_of idx = Printf.sprintf "p-%06d" idx in
  let obj_of o = Printf.sprintf "obj-%04d" o in
  let materialize idx =
    match Hashtbl.find_opt actors idx with
    | Some a -> a
    | None ->
        let name = name_of idx in
        let principal, _ = World.enrol w name in
        let rsa = Population.acquire pool in
        Directory.add_public w.World.dir principal rsa.Crypto.Rsa.pub;
        let a = { a_principal = principal; a_rsa = rsa; a_router = router_for principal } in
        incr materializations;
        if not (Hashtbl.mem provisioned idx) then begin
          Hashtbl.add provisioned idx ();
          incr touched;
          ok_or name (Router.open_account a.a_router ~name);
          ok_or name
            (Shard.mint (shard (Router.shard_of a.a_router name)) ~name ~currency:usd 2_000);
          if idx < cfg.objects then begin
            File_server.put_direct fs ~path:(obj_of idx)
              (Printf.sprintf "contents of %s" (obj_of idx));
            Acl.add (File_server.acl fs) ~target:(obj_of idx)
              { Acl.subject = Acl.Principal_is principal; rights = []; restrictions = [] }
          end
        end;
        Hashtbl.replace actors idx a;
        Queue.add idx order;
        a
  in
  (* Churn: retire the oldest live principal — key back to the pool, actor
     gone. Its published directory entry stays (so proxies it granted keep
     verifying) until a re-materialization replaces it with a fresh key. *)
  let retire () =
    let rec go budget =
      if budget > 0 && (not (Queue.is_empty order)) && Hashtbl.length actors > 8 then
        let idx = Queue.pop order in
        match Hashtbl.find_opt actors idx with
        | None -> go (budget - 1) (* stale entry: already retired, maybe re-queued *)
        | Some a ->
            Hashtbl.remove actors idx;
            Population.release pool a.a_rsa;
            incr retired
    in
    go 32
  in
  (* -- live proxies, at most 3 per object, newest first -- *)
  let proxies : (int, (Proxy.t * int) list) Hashtbl.t = Hashtbl.create 64 in
  let record_proxy o p depth =
    let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
    Hashtbl.replace proxies o
      ((p, depth) :: take 2 (Option.value (Hashtbl.find_opt proxies o) ~default:[]))
  in
  let grants = ref 0 and presents = ref 0 and debits = ref 0 in
  let clears = ref 0 and sweeps = ref 0 in
  let do_grant () =
    incr grants;
    let o = Population.zipf_sample obj_zipf wl in
    let owner = materialize o in
    let now = World.now w in
    let expires = now + World.hour in
    let extend =
      match Hashtbl.find_opt proxies o with
      | Some ((p, depth) :: _) when depth < 6 && Crypto.Drbg.uniform_int wl 2 = 0 ->
          Some (p, depth)
      | _ -> None
    in
    match extend with
    | Some (p, depth) ->
        (* Cascade: re-delegate the newest chain one link deeper — the
           byte-shared prefix the link cache exists for. *)
        Result.map
          (fun p' -> record_proxy o p' (depth + 1))
          (Proxy.restrict_pk ~drbg ~now ~expires ~restrictions:[] p)
    | None ->
        let p =
          Proxy.grant_pk ~drbg ~now ~expires ~grantor:owner.a_principal
            ~grantor_key:owner.a_rsa
            ~restrictions:[ R.Authorized [ { R.target = obj_of o; ops = [ "read" ] } ] ]
            ()
        in
        record_proxy o p 1;
        Ok ()
  in
  let do_present () =
    let o = Population.zipf_sample obj_zipf wl in
    match Hashtbl.find_opt proxies o with
    | Some ((p, _) :: _) ->
        incr presents;
        let presented =
          File_server.attach net ~proxy:p ~server:fs_name ~operation:"read"
            ~path:(obj_of o)
        in
        Result.map ignore
          (File_server.read net ~creds:worker_creds ~retries:cfg.retries
             ~timeout_us:cfg.timeout_us ~proxies:[ presented ] ~path:(obj_of o) ())
    | _ -> do_grant ()
  in
  let do_debit () =
    incr debits;
    let i = Population.zipf_sample zipf wl in
    let j = Population.zipf_sample zipf wl in
    let a = materialize i in
    let an = name_of i in
    if i <> j && Router.shard_of a.a_router an = Router.shard_of a.a_router (name_of j)
    then begin
      ignore (materialize j);
      let amount = 1 + Crypto.Drbg.uniform_int wl 20 in
      Router.transfer a.a_router ~from_:an ~to_:(name_of j) ~currency:usd ~amount
    end
    else Result.map ignore (Router.balance a.a_router ~name:an ~currency:usd)
  in
  let do_clear () =
    let i = Population.zipf_sample zipf wl in
    let j0 = Population.zipf_sample zipf wl in
    let payor = materialize i in
    let pn = name_of i in
    let payor_shard = Router.shard_of payor.a_router pn in
    (* Walk forward from j0 to the first principal on a different shard:
       clearing is the cross-shard path by construction. *)
    let rec pick j steps =
      if steps >= cfg.population then None
      else
        let j = j mod cfg.population in
        if j <> i && Ring.lookup ring (name_of j) <> payor_shard then Some j
        else pick (j + 1) (steps + 1)
    in
    match pick j0 0 with
    | None ->
        (* single-shard cluster: nothing to clear across; count as a debit *)
        decr debits;
        do_debit ()
    | Some j ->
        incr clears;
        let payee = materialize j in
        let now = World.now w in
        let amount = 1 + Crypto.Drbg.uniform_int wl 10 in
        let check =
          Check.write ~drbg ~now ~expires:(now + (24 * World.hour))
            ~payor:payor.a_principal ~payor_key:payor.a_rsa
            ~account:
              (Accounting_server.account (Shard.primary_server (shard payor_shard)) pn)
            ~payee:payee.a_principal ~currency:usd ~amount ()
        in
        Result.map ignore
          (Router.deposit payee.a_router ~endorser_key:payee.a_rsa ~check
             ~to_account:(name_of j))
  in
  let do_sweep () =
    incr sweeps;
    if cfg.pipeline then begin
      let payloads =
        List.map (fun n -> Wire.L [ Wire.S "balance"; Wire.S n; Wire.S usd ]) sweep_accounts
      in
      let sh = shard sweep_shard in
      match
        Secure_rpc.call_batch net ~creds:sweep_creds ~retries:cfg.retries
          ~timeout_us:cfg.timeout_us ~dst:(Shard.primary_node sh)
          ~fallback_dsts:[ Shard.standby_node sh ] payloads
      with
      | Ok items ->
          if List.for_all Result.is_ok items then Ok ()
          else Error "sweep: a balance query failed"
      | Error e -> Error e
    end
    else
      List.fold_left
        (fun acc n ->
          Result.bind acc (fun () ->
              Result.map ignore (Router.balance auditor_router ~name:n ~currency:usd)))
        (Ok ()) sweep_accounts
  in
  (* -- the open loop -- *)
  let clock = Sim.Net.clock net in
  let t0 = Sim.Net.now net in
  let samples = Array.make n_arrivals 0 in
  let succeeded = ref 0 in
  List.iteri
    (fun k off ->
      let target = t0 + off in
      let nowv = Sim.Net.now net in
      if nowv < target then Sim.Clock.advance clock (target - nowv);
      if cfg.churn_every > 0 && k > 0 && k mod cfg.churn_every = 0 then retire ();
      let outcome =
        let die = Crypto.Drbg.uniform_int wl 10 in
        if die < 3 then do_present ()
        else if die < 5 then do_grant ()
        else if die < 8 then do_debit ()
        else if die < 9 then do_clear ()
        else do_sweep ()
      in
      samples.(k) <- Sim.Net.now net - target;
      match outcome with Ok () -> incr succeeded | Error _ -> ())
    offs;
  Array.sort compare samples;
  let spans = match Sim.Net.spans net with Some c -> Sim.Span.spans c | None -> [] in
  {
    arrivals = n_arrivals;
    succeeded = !succeeded;
    failed = n_arrivals - !succeeded;
    touched = !touched;
    materializations = !materializations;
    keys_generated = Population.pool_generated pool;
    keys_reused = !materializations - Population.pool_generated pool;
    retired = !retired;
    grants = !grants;
    presents = !presents;
    debits = !debits;
    clears = !clears;
    sweeps = !sweeps;
    p50_us = percentile samples 50.;
    p99_us = percentile samples 99.;
    max_us = samples.(n_arrivals - 1);
    span_count = List.length spans;
    metrics = Sim.Metrics.snapshot (Sim.Net.metrics net);
    trace =
      List.map
        (fun (e : Sim.Trace.entry) ->
          Printf.sprintf "%d %s %s" e.Sim.Trace.time e.Sim.Trace.actor e.Sim.Trace.event)
        (Sim.Trace.entries (Sim.Net.trace net));
    jsonl = Sim.Span.to_jsonl spans;
  }

(* ------------------------------------------------------------------ *)
(* The cascade study                                                   *)
(* ------------------------------------------------------------------ *)

type cascade = {
  c_depth : int;
  c_holders : int;
  c_repeats : int;
  c_rsa_uncached : int;
  c_rsa_whole_chain : int;
  c_rsa_per_signature : int;
  c_rsa_link : int;
  c_link_hits : int;
  c_link_misses : int;
  c_sig_hits : int;
  c_sig_misses : int;
}

let cascade_study ?(depth = 8) ?(holders = 16) ?(repeats = 3) ~seed () =
  if depth < 1 || holders < 1 || repeats < 1 then
    invalid_arg "Driver.cascade_study: depth/holders/repeats must be positive";
  let drbg = Crypto.Drbg.create ~seed in
  let grantor = Principal.make ~realm:"load" "cascade-root" in
  let kp = Crypto.Rsa.generate drbg ~bits:512 in
  let lookup q = if Principal.equal q grantor then Some kp.Crypto.Rsa.pub else None in
  let expires = 1_000_000_000 in
  let base =
    Proxy.grant_pk ~drbg ~now:0 ~expires ~grantor ~grantor_key:kp
      ~restrictions:[ R.Authorized [ { R.target = "report"; ops = [ "read" ] } ] ]
      ()
  in
  let rec extend p n =
    if n = 0 then p
    else
      match Proxy.restrict_pk ~drbg ~now:0 ~expires ~restrictions:[] p with
      | Ok p' -> extend p' (n - 1)
      | Error e -> failwith ("Driver.cascade_study: " ^ e)
  in
  let shared = extend base (depth - 1) in
  let chains =
    Array.init holders (fun _ ->
        match (extend shared 1).Proxy.flavor with
        | Proxy.Public_key certs -> certs
        | _ -> assert false)
  in
  let count tbl name = Option.value (Hashtbl.find_opt tbl name) ~default:0 in
  let with_counts f =
    let tbl = Hashtbl.create 8 in
    let tally name = Hashtbl.replace tbl name (1 + count tbl name) in
    f tally;
    tbl
  in
  let verify ?cache ?link_cache tally certs =
    match Verifier.verify_pk ~lookup ~tally ?cache ?link_cache ~now:1 certs with
    | Ok _ -> ()
    | Error e -> failwith ("Driver.cascade_study: verify failed: " ^ e)
  in
  let each f = for _ = 1 to repeats do Array.iter f chains done in
  let uncached = with_counts (fun t -> each (verify t)) in
  let whole =
    (* Whole-presentation memoization: the naive cache that never shares
       a prefix — every distinct holder pays the full chain once. *)
    with_counts (fun t ->
        let memo = Hashtbl.create 64 in
        each (fun certs ->
            let key =
              String.concat "|"
                (List.map (fun c -> c.Proxy_cert.pk_body.Proxy_cert.serial) certs)
            in
            if not (Hashtbl.mem memo key) then begin
              verify t certs;
              Hashtbl.replace memo key ()
            end))
  in
  let per_sig =
    with_counts (fun t ->
        let cache = Verify_cache.create () in
        each (verify ~cache t))
  in
  let link =
    with_counts (fun t ->
        let lc = Link_cache.create () in
        each (verify ~link_cache:lc t))
  in
  {
    c_depth = depth;
    c_holders = holders;
    c_repeats = repeats;
    c_rsa_uncached = count uncached "crypto.rsa_verify";
    c_rsa_whole_chain = count whole "crypto.rsa_verify";
    c_rsa_per_signature = count per_sig "crypto.rsa_verify";
    c_rsa_link = count link "crypto.rsa_verify";
    c_link_hits = count link "link_cache.hits";
    c_link_misses = count link "link_cache.misses";
    c_sig_hits = count per_sig "verify_cache.hits";
    c_sig_misses = count per_sig "verify_cache.misses";
  }
