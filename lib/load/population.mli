(** Synthetic principal populations for the load harness.

    Three building blocks, all deterministic under seeded DRBGs so
    whole load runs replay byte-for-byte:

    - a {e Zipf popularity} sampler over an integer universe, so a
      million-principal population produces realistic head-heavy traffic
      (rank 0 is the hottest account/object) without the driver ever
      touching the cold tail;
    - a {e pooled RSA key source}, so materializing the small touched
      subset of a huge population costs one keygen per {e concurrently
      live} principal, not one per principal — retired principals return
      their keys for reuse (harness economy only: a real deployment never
      shares long-term keys across principals);
    - a deterministic {e open-loop arrival schedule}: a piecewise-constant
      rate profile expanded to explicit arrival instants, independent of
      service completions (the defining property of open-loop load). *)

(** {1 Zipf popularity} *)

type zipf

val zipf : int -> zipf
(** [zipf n] prepares a sampler over ranks [0 .. n-1] with weight
    proportional to [1/(rank+1)] (the classic s=1 Zipf). Weights are
    integers ([2^40/(rank+1)]), so sampling involves no floating point and
    the draw sequence is machine-independent. Raises [Invalid_argument]
    when [n < 1]. *)

val zipf_size : zipf -> int

val zipf_sample : zipf -> Crypto.Drbg.t -> int
(** One rank, drawn by binary search over the cumulative weights. *)

(** {1 Pooled RSA keys} *)

type pool

val pool : ?bits:int -> seed:string -> unit -> pool
(** Keys are generated (lazily, on first acquire that finds the free list
    empty) from a dedicated DRBG seeded [seed], so the key sequence does
    not depend on what else the simulation draws. [bits] defaults to
    512. *)

val acquire : pool -> Crypto.Rsa.private_
(** Take a key: reuse the most recently released one, else generate. A
    key is never handed out twice without an intervening {!release}, so
    two live principals can never alias one key. *)

val release : pool -> Crypto.Rsa.private_ -> unit
(** Return a key for reuse. Raises [Invalid_argument] if the key is
    already free (a double release would let {!acquire} alias it). *)

val pool_generated : pool -> int
(** Keygens performed so far — the number the pooling exists to keep far
    below the number of {!acquire}s. *)

val pool_live : pool -> int
(** Keys currently acquired and not yet released. *)

val pool_free : pool -> int
(** Keys sitting in the free list. *)

(** {1 Arrival schedule} *)

type phase = { rate_per_s : int; duration_us : int }

val arrivals : phase list -> int list
(** Expand a rate profile into explicit arrival offsets (microseconds from
    schedule start), ascending. Within a phase arrivals are evenly spaced
    at [1_000_000 / rate_per_s] us; phases abut. Raises [Invalid_argument]
    on a non-positive rate, a negative duration, or a rate above 10^6/s. *)
