(** The open-loop load harness: a deterministic mixed workload driven at a
    configured arrival rate against the full stack — KDC, a guarded file
    server, and a sharded primary/standby accounting cluster.

    {e Open-loop} means arrivals are scheduled by the rate profile alone
    ({!Population.arrivals}), never by service completions: when the stack
    falls behind, later arrivals start late and the lateness lands in
    their measured latency — so a burst phase shows up as a p99 spike, not
    as a silently throttled offered load.

    The population is huge but {e lazy}: principals exist as indices into
    a Zipf popularity distribution, and only the ones traffic actually
    touches are materialized (enrolled with the KDC, given a pooled RSA
    key, an account, and — for object owners — a file and ACL entry).
    Optional churn retires the oldest materialized principals, returning
    their keys to the pool; a retired principal that comes back gets a
    fresh key, so presentations signed under its previous incarnation
    deterministically fail verification from then on.

    Workload mix per arrival: proxy {e grants} (fresh or cascaded),
    {e presentations} to the file-server guard (exercising the link
    cache), intra-shard {e debits}/balances, cross-shard check
    {e clearing}, and pipelined balance {e sweeps} (exercising
    {!Secure_rpc.call_batch}). Every random choice draws from seeded
    DRBGs: same seed, same bytes — metrics, trace, and span JSONL. *)

type config = {
  seed : string;
  population : int;  (** principal universe size (lazy; only touched ones cost) *)
  objects : int;  (** guarded files; object [o] is owned by principal [o] *)
  shards : int;  (** accounting shards, each a primary/standby pair *)
  phases : Population.phase list;  (** the open-loop arrival-rate profile *)
  link_cache : bool;  (** chain-prefix verification cache on the guard *)
  pipeline : bool;  (** sweeps use {!Secure_rpc.call_batch} (else N calls) *)
  sweep_width : int;  (** balance queries per audit sweep *)
  churn_every : int;  (** retire the oldest principal every N arrivals; 0 = never *)
  retries : int;
  timeout_us : int;
}

val default : config
(** 100k principals, 512 objects, 4 shards, a steady/burst/steady rate
    profile (~185 arrivals), link cache and pipelining on, churn every 16
    arrivals. *)

type outcome = {
  arrivals : int;
  succeeded : int;
  failed : int;
  touched : int;  (** distinct principals ever materialized *)
  materializations : int;  (** including re-materializations after churn *)
  keys_generated : int;  (** RSA keygens the pool actually performed *)
  keys_reused : int;  (** materializations served from the pool's free list *)
  retired : int;
  grants : int;
  presents : int;
  debits : int;
  clears : int;
  sweeps : int;
  p50_us : int;  (** per-arrival latency incl. lateness (open-loop) *)
  p99_us : int;
  max_us : int;
  span_count : int;
  metrics : (string * int) list;
  trace : string list;
  jsonl : string;  (** span export; byte-identical across same-seed runs *)
}

val run : config -> outcome

(** {1 The cascade study}

    The controlled experiment behind the link cache: [holders] chains
    sharing one depth-[depth] prefix (a cascaded grant re-delegated to M
    holders), each verified [repeats] times, under four strategies. RSA
    totals are exact and deterministic:

    - uncached: [(depth+1) * holders * repeats];
    - whole-chain memoization (one memo entry per full presentation —
      the naive "signature cache" that caches at the wrong granularity):
      [(depth+1) * holders], because no holder's chain ever matches
      another's as a unit;
    - per-signature cache and link cache: [depth + holders] — each
      distinct signature checked exactly once (the information-theoretic
      floor). The link cache gets there with O(1) probes per
      presentation instead of O(depth). *)

type cascade = {
  c_depth : int;
  c_holders : int;
  c_repeats : int;
  c_rsa_uncached : int;
  c_rsa_whole_chain : int;
  c_rsa_per_signature : int;
  c_rsa_link : int;
  c_link_hits : int;
  c_link_misses : int;
  c_sig_hits : int;
  c_sig_misses : int;
}

val cascade_study : ?depth:int -> ?holders:int -> ?repeats:int -> seed:string -> unit -> cascade
(** Defaults: depth 8, holders 16, repeats 3. *)
