(* Zipf: integer cumulative weights, binary-searched. 2^40/(i+1) keeps
   enough precision that rank 10^6 still gets a distinct nonzero weight,
   while the total (~2^40 * ln n) stays far inside 63-bit ints. *)

type zipf = { cum : int array; total : int }

let zipf n =
  if n < 1 then invalid_arg "Population.zipf: universe must be positive";
  let cum = Array.make n 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + ((1 lsl 40) / (i + 1));
    cum.(i) <- !total
  done;
  { cum; total = !total }

let zipf_size z = Array.length z.cum

let zipf_sample z drbg =
  let draw = Crypto.Drbg.uniform_int drbg z.total in
  (* smallest i with cum.(i) > draw *)
  let lo = ref 0 and hi = ref (Array.length z.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cum.(mid) > draw then hi := mid else lo := mid + 1
  done;
  !lo

type pool = {
  p_drbg : Crypto.Drbg.t;
  p_bits : int;
  mutable p_free : Crypto.Rsa.private_ list;
  mutable p_generated : int;
  mutable p_live : int;
}

let pool ?(bits = 512) ~seed () =
  { p_drbg = Crypto.Drbg.create ~seed; p_bits = bits; p_free = []; p_generated = 0;
    p_live = 0 }

let acquire p =
  p.p_live <- p.p_live + 1;
  match p.p_free with
  | k :: tl ->
      p.p_free <- tl;
      k
  | [] ->
      p.p_generated <- p.p_generated + 1;
      Crypto.Rsa.generate p.p_drbg ~bits:p.p_bits

let release p k =
  if List.memq k p.p_free then
    invalid_arg "Population.release: key is already free";
  p.p_live <- p.p_live - 1;
  p.p_free <- k :: p.p_free

let pool_generated p = p.p_generated
let pool_live p = p.p_live
let pool_free p = List.length p.p_free

type phase = { rate_per_s : int; duration_us : int }

let arrivals phases =
  let expand (acc, t0) ph =
    if ph.rate_per_s < 1 then invalid_arg "Population.arrivals: rate must be positive";
    if ph.duration_us < 0 then invalid_arg "Population.arrivals: negative duration";
    let step = 1_000_000 / ph.rate_per_s in
    if step = 0 then invalid_arg "Population.arrivals: rate above 1e6/s";
    let stop = t0 + ph.duration_us in
    let rec go acc t = if t >= stop then acc else go (t :: acc) (t + step) in
    (go acc t0, stop)
  in
  let rev, _ = List.fold_left expand ([], 0) phases in
  List.rev rev
