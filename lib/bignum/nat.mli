(** Arbitrary-precision natural numbers.

    Numbers are immutable. The representation uses base-[2^26] limbs so every
    intermediate product of two limbs fits comfortably in a native 63-bit
    integer. This module is the substrate for the RSA realization of
    public-key proxies (the paper's Figure 6); it replaces [zarith], which is
    not available in this environment. *)

type t

exception Underflow
(** Raised by {!sub} when the result would be negative. *)

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative native integer. Raises
    [Invalid_argument] if [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in a native integer. *)

val is_zero : t -> bool
val is_even : t -> bool
val is_odd : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [a - b]. Raises {!Underflow} if [b > a]. *)

val mul : t -> t -> t
(** Product. Schoolbook below {!karatsuba_threshold} limbs, Karatsuba
    above it. *)

val mul_schoolbook : t -> t -> t
(** The quadratic reference multiplier. Always agrees with {!mul}; exposed
    so property tests can cross-check the Karatsuba split and benches can
    measure the crossover. *)

val karatsuba_threshold : int
(** Limb count at which {!mul} switches to Karatsuba. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]. Raises [Division_by_zero] if [b] is
    zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit : t -> int -> bool
(** [bit n i] is the [i]th bit of [n] (bit 0 is least significant). *)

val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val mod_pow : t -> t -> t -> t
(** [mod_pow base exp m] is [base^exp mod m]. Raises [Division_by_zero] if
    [m] is zero. Odd moduli take the Montgomery/sliding-window fast path
    (CIOS multiplication, no division in the loop); even moduli fall back
    to {!mod_pow_naive}. *)

val mod_pow_naive : t -> t -> t -> t
(** The reference square-and-multiply with a full division per step —
    the pre-optimization implementation, kept for cross-checking the
    Montgomery path and for before/after benches. Same results, any
    modulus. *)

val gcd : t -> t -> t

val mod_inv : t -> t -> t option
(** [mod_inv a m] is [Some x] with [a * x = 1 (mod m)] when
    [gcd a m = 1], and [None] otherwise. *)

val of_bytes_be : string -> t
(** Big-endian bytes to natural; the empty string maps to {!zero}. *)

val to_bytes_be : t -> string
(** Minimal big-endian representation; {!zero} maps to [""] . *)

val to_bytes_be_padded : int -> t -> string
(** [to_bytes_be_padded len n] is [n] as exactly [len] big-endian bytes.
    Raises [Invalid_argument] if [n] does not fit. *)

val of_string : string -> t
(** Parse a decimal string. Raises [Invalid_argument] on junk. *)

val to_string : t -> string
(** Decimal rendering. *)

val pp : Format.formatter -> t -> unit
