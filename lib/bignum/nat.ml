(* Little-endian limb arrays in base 2^26, always normalized: the most
   significant limb of a non-zero number is non-zero, and zero is the empty
   array. 26-bit limbs keep every limb product below 2^52, well inside the
   native 63-bit integer, so no intermediate overflow is possible. *)

type t = int array

exception Underflow

let limb_bits = 26
let base = 1 lsl limb_bits
let limb_mask = base - 1

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let is_zero a = Array.length a = 0

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n land limb_mask) :: limbs (n lsr limb_bits) in
  Array.of_list (limbs n)

let to_int_opt a =
  (* Accept anything whose value fits in a native int (62 value bits). *)
  let rec go i acc =
    if i < 0 then Some acc
    else if acc > (max_int - a.(i)) / base then None
    else go (i - 1) ((acc * base) + a.(i))
  in
  if Array.length a > 3 then None else go (Array.length a - 1) 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let is_even a = is_zero a || a.(0) land 1 = 0
let is_odd a = not (is_even a)

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  normalize r

let sub a b =
  let la = Array.length a and lb = Array.length b in
  if la < lb then raise Underflow;
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  if !borrow <> 0 then raise Underflow;
  normalize r

let mul_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let t = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      (* Propagate the final carry; it can itself overflow a limb. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = r.(!k) + !carry in
        r.(!k) <- t land limb_mask;
        carry := t lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0
  end

let bit a i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let shift_left a k =
  if k < 0 then invalid_arg "Nat.shift_left: negative shift";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let t = (a.(i) lsl bits) lor !carry in
        r.(i + limbs) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      r.(la + limbs) <- !carry
    end;
    normalize r
  end

let shift_right a k =
  if k < 0 then invalid_arg "Nat.shift_right: negative shift";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let r = Array.make n 0 in
      if bits = 0 then Array.blit a limbs r 0 n
      else begin
        for i = 0 to n - 1 do
          let lo = a.(i + limbs) lsr bits in
          let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask else 0 in
          r.(i) <- lo lor hi
        done
      end;
      normalize r
    end
  end

(* Below this many limbs (~700 bits) the schoolbook inner loop wins; above
   it the three-multiplication split pays for its extra additions. Tuned on
   the RSA sizes the benches sweep (512..2048 bits). *)
let karatsuba_threshold = 27

let rec mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if la < karatsuba_threshold || lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    (* Split both operands at [k] limbs: a = a1*B^k + a0, b = b1*B^k + b0,
       a*b = z2*B^2k + z1*B^k + z0 with z1 = (a0+a1)(b0+b1) - z0 - z2. *)
    let k = (max la lb + 1) / 2 in
    let lo x = normalize (Array.sub x 0 (min k (Array.length x))) in
    let hi x = if Array.length x <= k then zero else Array.sub x k (Array.length x - k) in
    let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    (* (a0+a1)(b0+b1) >= z0 + z2, so the subtractions cannot underflow. *)
    let z1 = sub (sub (mul (add a0 a1) (add b0 b1)) z0) z2 in
    add (add (shift_left z2 (2 * k * limb_bits)) (shift_left z1 (k * limb_bits))) z0
  end

(* Division by a single limb; returns (quotient, remainder-as-int). *)
let divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

(* Knuth Algorithm D. [u] and [v] are limb arrays with len v >= 2 and
   u >= v. Returns (quotient, remainder). *)
let divmod_knuth u v =
  let n = Array.length v in
  (* Normalize so the top limb of v has its high bit set. *)
  let rec leading_shift x acc = if x land (base lsr 1) <> 0 then acc else leading_shift (x lsl 1) (acc + 1) in
  let s = leading_shift v.(n - 1) 0 in
  let v =
    let sv = shift_left v s in
    assert (Array.length sv = n);
    sv
  in
  let u =
    (* Extend by one top limb as Algorithm D requires. *)
    let su = shift_left u s in
    let m = Array.length su in
    let r = Array.make (m + 1) 0 in
    Array.blit su 0 r 0 m;
    r
  in
  let m = Array.length u - 1 - n in
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    let top2 = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
    let qhat = ref (top2 / v.(n - 1)) in
    let rhat = ref (top2 mod v.(n - 1)) in
    if !qhat >= base then begin qhat := base - 1; rhat := top2 - (!qhat * v.(n - 1)) end;
    let continue = ref true in
    while !continue && !rhat < base do
      if !qhat * v.(n - 2) > (!rhat lsl limb_bits) lor u.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + v.(n - 1)
      end else continue := false
    done;
    (* Multiply and subtract: u[j..j+n] -= qhat * v. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = u.(i + j) - (p land limb_mask) - !borrow in
      if d < 0 then begin u.(i + j) <- d + base; borrow := 1 end
      else begin u.(i + j) <- d; borrow := 0 end
    done;
    let d = u.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add v back. *)
      u.(j + n) <- d + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s2 = u.(i + j) + v.(i) + !c in
        u.(i + j) <- s2 land limb_mask;
        c := s2 lsr limb_bits
      done;
      u.(j + n) <- (u.(j + n) + !c) land limb_mask
    end else u.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub u 0 n) in
  (normalize q, shift_right r s)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then
    let q, r = divmod_limb a b.(0) in
    (q, of_int r)
  else divmod_knuth (Array.copy a) b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let mod_pow_naive b e m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else begin
    let result = ref one in
    let b = ref (rem b m) in
    let nbits = bit_length e in
    for i = 0 to nbits - 1 do
      if bit e i then result := rem (mul !result !b) m;
      if i < nbits - 1 then b := rem (mul !b !b) m
    done;
    !result
  end

(* --- Montgomery arithmetic (odd moduli) ---------------------------------

   Operands live as fixed-width arrays of exactly [n = len m] limbs; the
   multiplier is CIOS (coarsely integrated operand scanning), which
   interleaves the partial product with the reduction so the working array
   never exceeds [n + 2] limbs and the hot loop does no allocation at all.
   Limb products stay below 2^52, so every intermediate sum fits a native
   63-bit int with room for carries. *)

(* -m^{-1} mod 2^26 by Newton lifting: for odd m0, x = m0 is an inverse
   mod 8; each step doubles the number of correct low bits. *)
let mont_neg_inv m0 =
  let x = ref m0 in
  for _ = 1 to 4 do
    let t = (m0 * !x) land limb_mask in
    x := !x * ((2 - t) land limb_mask) land limb_mask
  done;
  (base - !x) land limb_mask

let mod_pow_mont b e m =
  let n = Array.length m in
  let m' = mont_neg_inv m.(0) in
  let pad x =
    let r = Array.make n 0 in
    Array.blit x 0 r 0 (Array.length x);
    r
  in
  (* One scratch buffer shared by every multiplication in this call. *)
  let t = Array.make (n + 2) 0 in
  (* dst <- MontRedc(x * y); x, y, dst are n-limb arrays and dst may alias
     either input (the product accumulates in [t] and is copied out last). *)
  let mmul x y dst =
    Array.fill t 0 (n + 2) 0;
    for i = 0 to n - 1 do
      let xi = x.(i) in
      let c = ref 0 in
      for j = 0 to n - 1 do
        let s = t.(j) + (xi * y.(j)) + !c in
        t.(j) <- s land limb_mask;
        c := s lsr limb_bits
      done;
      let s = t.(n) + !c in
      t.(n) <- s land limb_mask;
      t.(n + 1) <- t.(n + 1) + (s lsr limb_bits);
      let mv = t.(0) * m' land limb_mask in
      let c = ref ((t.(0) + (mv * m.(0))) lsr limb_bits) in
      for j = 1 to n - 1 do
        let s = t.(j) + (mv * m.(j)) + !c in
        t.(j - 1) <- s land limb_mask;
        c := s lsr limb_bits
      done;
      let s = t.(n) + !c in
      t.(n - 1) <- s land limb_mask;
      t.(n) <- t.(n + 1) + (s lsr limb_bits);
      t.(n + 1) <- 0
    done;
    (* CIOS leaves t < 2m; one conditional subtraction normalizes. *)
    let ge =
      t.(n) <> 0
      ||
      let rec cmp i =
        if i < 0 then true else if t.(i) <> m.(i) then t.(i) > m.(i) else cmp (i - 1)
      in
      cmp (n - 1)
    in
    if ge then begin
      let borrow = ref 0 in
      for j = 0 to n - 1 do
        let d = t.(j) - m.(j) - !borrow in
        if d < 0 then begin
          dst.(j) <- d + base;
          borrow := 1
        end
        else begin
          dst.(j) <- d;
          borrow := 0
        end
      done
    end
    else Array.blit t 0 dst 0 n
  in
  (* R^2 mod m converts into the Montgomery domain; R = base^n. *)
  let r2 = pad (rem (shift_left one (2 * n * limb_bits)) m) in
  let nbits = bit_length e in
  (* Sliding window: precompute the odd powers b^1, b^3, ..., b^(2^w - 1)
     in Montgomery form; larger exponents amortize bigger tables. *)
  let w = if nbits <= 64 then 2 else if nbits <= 256 then 4 else 5 in
  let tbl = Array.init (1 lsl (w - 1)) (fun _ -> Array.make n 0) in
  mmul (pad b) r2 tbl.(0);
  let b2 = Array.make n 0 in
  mmul tbl.(0) tbl.(0) b2;
  for i = 1 to Array.length tbl - 1 do
    mmul tbl.(i - 1) b2 tbl.(i)
  done;
  let acc = Array.make n 0 in
  mmul (pad one) r2 acc (* 1 in Montgomery form *);
  let i = ref (nbits - 1) in
  while !i >= 0 do
    if not (bit e !i) then begin
      mmul acc acc acc;
      decr i
    end
    else begin
      (* Take the longest window ending in a set bit: bits i..l, l >= 0. *)
      let l = ref (max (!i - w + 1) 0) in
      while not (bit e !l) do
        incr l
      done;
      let v = ref 0 in
      for k = !i downto !l do
        v := (!v lsl 1) lor (if bit e k then 1 else 0)
      done;
      for _ = !l to !i do
        mmul acc acc acc
      done;
      mmul acc tbl.((!v - 1) / 2) acc;
      i := !l - 1
    end
  done;
  let onep = Array.make n 0 in
  onep.(0) <- 1;
  mmul acc onep acc (* back out of the Montgomery domain *);
  normalize (Array.copy acc)

let mod_pow b e m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else if is_even m then mod_pow_naive b e m
  else if is_zero e then one
  else begin
    let b = rem b m in
    if is_zero b then zero else mod_pow_mont b e m
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let mod_inv a m =
  (* Iterative extended Euclid keeping coefficients reduced mod m, so all
     arithmetic stays on naturals. *)
  if is_zero m then None
  else begin
    let a = rem a m in
    if is_zero a then (if equal m one then Some zero else None)
    else begin
      let r0 = ref m and r1 = ref a in
      let x0 = ref zero and x1 = ref one in
      while not (is_zero !r1) do
        let q, r = divmod !r0 !r1 in
        r0 := !r1;
        r1 := r;
        (* x_new = x0 - q*x1 (mod m) *)
        let qx1 = rem (mul q !x1) m in
        let x_new = rem (add !x0 (sub m qx1)) m in
        x0 := !x1;
        x1 := x_new
      done;
      if equal !r0 one then Some !x0 else None
    end
  end

let of_bytes_be s =
  let n = String.length s in
  let r = ref zero in
  for i = 0 to n - 1 do
    r := add (shift_left !r 8) (of_int (Char.code s.[i]))
  done;
  !r

let to_bytes_be a =
  let nbytes = (bit_length a + 7) / 8 in
  let b = Bytes.create nbytes in
  let cur = ref a in
  for i = nbytes - 1 downto 0 do
    let low = if is_zero !cur then 0 else !cur.(0) land 0xff in
    Bytes.set b i (Char.chr low);
    cur := shift_right !cur 8
  done;
  Bytes.to_string b

let to_bytes_be_padded len a =
  let s = to_bytes_be a in
  let n = String.length s in
  if n > len then invalid_arg "Nat.to_bytes_be_padded: does not fit";
  String.make (len - n) '\000' ^ s

let ten_pow7 = of_int 10_000_000

let of_string s =
  if s = "" then invalid_arg "Nat.of_string: empty";
  let r = ref zero in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Nat.of_string: not a digit";
      r := add (mul !r (of_int 10)) (of_int (Char.code c - Char.code '0')))
    s;
  !r

let to_string a =
  if is_zero a then "0"
  else begin
    let chunks = ref [] in
    let cur = ref a in
    while not (is_zero !cur) do
      let q, r = divmod !cur ten_pow7 in
      let r = match to_int_opt r with Some i -> i | None -> assert false in
      chunks := r :: !chunks;
      cur := q
    done;
    match !chunks with
    | [] -> "0"
    | first :: rest ->
        let buf = Buffer.create 32 in
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%07d" c)) rest;
        Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)
