(** Caching public-key resolution through the name server.

    Guards and accounting servers take a [lookup] function; this module
    provides the production one: fetch the CA-signed binding from the name
    server on first use, cache it until a TTL expires, and re-fetch after.
    Revocation at the name server therefore takes effect within one TTL —
    the classic certificate-freshness trade the paper's expiration-time
    discussion implies. *)

type t

val create :
  Sim.Net.t ->
  name_server:Principal.t ->
  ca_pub:Crypto.Rsa.public ->
  caller:string ->
  ?ttl_us:int ->
  unit ->
  t
(** Default TTL: 1 simulated hour. *)

val lookup : t -> Principal.t -> Crypto.Rsa.public option
(** The shape services expect; failures (unknown, revoked, network) read as
    [None]. Each call ticks the net's metrics: ["resolver.hits"] when the
    cache answers, ["resolver.misses"] when the name server is consulted
    (additionally ["resolver.expired"] when that was forced by a stale
    entry) — so benches can report resolver traffic directly. *)

val flush : t -> unit
(** Drop the cache (forces re-fetch on next use). *)

val cached : t -> int
(** Number of live cache entries. *)
