type entry = { pub : Crypto.Rsa.public; fetched_at : int }

type t = {
  net : Sim.Net.t;
  name_server : Principal.t;
  ca_pub : Crypto.Rsa.public;
  caller : string;
  ttl_us : int;
  cache : (string, entry) Hashtbl.t;
}

let create net ~name_server ~ca_pub ~caller ?(ttl_us = 3_600_000_000) () =
  { net; name_server; ca_pub; caller; ttl_us; cache = Hashtbl.create 16 }

let tick t name = Sim.Metrics.incr (Sim.Net.metrics t.net) name

let lookup t p =
  let key = Principal.to_string p in
  let sp = Sim.Net.spans t.net in
  Sim.Span.with_span sp ~actor:t.caller ~kind:"resolver.lookup" ~attrs:[ ("principal", key) ]
  @@ fun () ->
  let now = Sim.Net.now t.net in
  match Hashtbl.find_opt t.cache key with
  | Some e when e.fetched_at + t.ttl_us > now ->
      tick t "resolver.hits";
      Sim.Span.add_attr sp "outcome" "hit";
      Some e.pub
  | stale -> (
      (match stale with
      | Some _ -> tick t "resolver.expired" (* cached but past its TTL *)
      | None -> ());
      tick t "resolver.misses";
      Sim.Span.add_attr sp "outcome" (if stale = None then "miss" else "expired");
      match
        Name_server.lookup t.net ~server:t.name_server ~ca_pub:t.ca_pub ~caller:t.caller p
      with
      | Ok pub ->
          Hashtbl.replace t.cache key { pub; fetched_at = now };
          Some pub
      | Error _ ->
          Hashtbl.remove t.cache key;
          None)

let flush t = Hashtbl.reset t.cache
let cached t = Hashtbl.length t.cache
