type t = {
  net : Sim.Net.t;
  me : Principal.t;
  my_key : string;
  guard : Guard.t;
  files : (string, string) Hashtbl.t;
}

let create net ~me ~my_key ?lookup_pub ?my_rsa ?verify_cache ?link_cache ?revocation ~acl
    () =
  let guard =
    Guard.create net ~me ~my_key ?lookup_pub ?my_rsa ?verify_cache ?link_cache ?revocation
      ~acl ()
  in
  { net; me; my_key; guard; files = Hashtbl.create 16 }

let me t = t.me
let acl t = Guard.acl t.guard
let guard t = t.guard
let put_direct t ~path content = Hashtbl.replace t.files path content
let get_direct t ~path = Hashtbl.find_opt t.files path

let map_result f l =
  List.fold_right
    (fun x acc -> Result.bind acc (fun tl -> Result.map (fun h -> h :: tl) (f x)))
    l (Ok [])

let handle t ctx payload =
  let open Wire in
  let* op = Result.bind (field payload 0) to_string in
  let* path = Result.bind (field payload 1) to_string in
  let* data = Result.bind (field payload 2) to_string in
  let* pw = Result.bind (field payload 3) to_list in
  let* proxies = map_result Guard.presented_of_wire pw in
  let* gw = Result.bind (field payload 4) to_list in
  let* group_proxies = map_result Guard.presented_of_wire gw in
  (* Restrictions riding on the caller's own ticket bind first (a
     restricted TGS proxy reaches us as ordinary credentials). *)
  let* () =
    Guard.transport_ok ~me:t.me ~now:(Sim.Net.now t.net)
      ~auth_data:ctx.Secure_rpc.rpc_auth_data ~operation:op ~target:path ()
  in
  let* _decision =
    Guard.decide t.guard ~operation:op ~target:path ~presenter:ctx.Secure_rpc.rpc_client
      ~proxies ~group_proxies ()
  in
  match op with
  | "read" -> (
      match Hashtbl.find_opt t.files path with
      | Some content -> Ok (Wire.S content)
      | None -> Error (Printf.sprintf "no such file %S" path))
  | "write" ->
      Hashtbl.replace t.files path data;
      Ok (Wire.L [])
  | "stat" -> (
      match Hashtbl.find_opt t.files path with
      | Some content -> Ok (Wire.I (String.length content))
      | None -> Error (Printf.sprintf "no such file %S" path))
  | "open" -> (
      (* Access check only — the op that typically heads a sequence
         restriction (open-before-read, open-before-debit). *)
      match Hashtbl.find_opt t.files path with
      | Some _ -> Ok (Wire.L [])
      | None -> Error (Printf.sprintf "no such file %S" path))
  | other -> Error (Printf.sprintf "file-server: unknown operation %S" other)

let install t =
  Secure_rpc.serve t.net ~me:t.me ~my_key:t.my_key (fun ctx payload -> handle t ctx payload)

let attach net ~proxy ~server ~operation ~path =
  Guard.present ~proxy ~time:(Sim.Net.now net) ~server ~operation ~target:path ()

let request net ~creds ?(retries = 0) ?timeout_us ?backoff ~proxies ~group_proxies ~op ~path
    ~data () =
  let payload =
    Wire.L
      [ Wire.S op;
        Wire.S path;
        Wire.S data;
        Wire.L (List.map Guard.presented_to_wire proxies);
        Wire.L (List.map Guard.presented_to_wire group_proxies) ]
  in
  Secure_rpc.call net ~creds ~retries ?timeout_us ?backoff payload

let read net ~creds ?(retries = 0) ?timeout_us ?backoff ?(proxies = []) ?(group_proxies = [])
    ~path () =
  Result.bind
    (request net ~creds ~retries ?timeout_us ?backoff ~proxies ~group_proxies ~op:"read" ~path
       ~data:"" ())
    Wire.to_string

let write net ~creds ?(retries = 0) ?timeout_us ?backoff ?(proxies = []) ?(group_proxies = [])
    ~path data =
  Result.map ignore
    (request net ~creds ~retries ?timeout_us ?backoff ~proxies ~group_proxies ~op:"write" ~path
       ~data ())

let stat net ~creds ?(retries = 0) ?timeout_us ?backoff ?(proxies = []) ?(group_proxies = [])
    ~path () =
  Result.bind
    (request net ~creds ~retries ?timeout_us ?backoff ~proxies ~group_proxies ~op:"stat" ~path
       ~data:"" ())
    Wire.to_int

let open_ net ~creds ?(retries = 0) ?timeout_us ?backoff ?(proxies = []) ?(group_proxies = [])
    ~path () =
  Result.map ignore
    (request net ~creds ~retries ?timeout_us ?backoff ~proxies ~group_proxies ~op:"open" ~path
       ~data:"" ())
