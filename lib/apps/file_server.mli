(** A capability-protected file server: the running example of paper
    Section 3.1.

    Authorization is the guard's: direct ACL entries, capabilities
    (restricted bearer proxies), group proxies, and authorization-server
    proxies all work, alone or combined. Clients attach presentations to
    each authenticated request. *)

type t

val create :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  ?lookup_pub:(Principal.t -> Crypto.Rsa.public option) ->
  ?my_rsa:Crypto.Rsa.private_ ->
  ?verify_cache:Verify_cache.t ->
  ?link_cache:Link_cache.t ->
  ?revocation:Revocation.t ->
  acl:Acl.t ->
  unit ->
  t
(** [my_rsa] lets the guard accept hybrid proxies (their symmetric proxy
    key is sealed to this server's public key); [verify_cache] overrides
    the guard's signature-verification memo cache (pass a capacity-0 cache
    to disable caching, e.g. for differential testing); [link_cache]
    additionally memoizes verified public-key chain prefixes
    ({!Link_cache}, off by default); [revocation] attaches local bulletin
    state (see {!Guard.create}). *)

val install : t -> unit
val me : t -> Principal.t
val acl : t -> Acl.t

val guard : t -> Guard.t
(** The underlying guard — e.g. to {!Guard.apply_bulletin} fetched
    revocation bulletins, or to read its caches. *)

val put_direct : t -> path:string -> string -> unit
(** Provision content without going through authorization (setup). *)

val get_direct : t -> path:string -> string option

(** {2 Client operations}

    All take an optional retry policy, forwarded to {!Secure_rpc.call}:
    retransmissions reuse the same authenticator bytes, so the server's
    response cache keeps retried operations exactly-once. *)

val read :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  ?retries:int ->
  ?timeout_us:int ->
  ?backoff:Sim.Retry.backoff ->
  ?proxies:Guard.presented list ->
  ?group_proxies:Guard.presented list ->
  path:string ->
  unit ->
  (string, string) result

val write :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  ?retries:int ->
  ?timeout_us:int ->
  ?backoff:Sim.Retry.backoff ->
  ?proxies:Guard.presented list ->
  ?group_proxies:Guard.presented list ->
  path:string ->
  string ->
  (unit, string) result

val stat :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  ?retries:int ->
  ?timeout_us:int ->
  ?backoff:Sim.Retry.backoff ->
  ?proxies:Guard.presented list ->
  ?group_proxies:Guard.presented list ->
  path:string ->
  unit ->
  (int, string) result
(** Size in bytes. *)

val open_ :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  ?retries:int ->
  ?timeout_us:int ->
  ?backoff:Sim.Retry.backoff ->
  ?proxies:Guard.presented list ->
  ?group_proxies:Guard.presented list ->
  path:string ->
  unit ->
  (unit, string) result
(** Access check on an existing file, no content transfer — the op that
    typically heads a {!Restriction.Sequence} (open-before-read,
    open-before-debit). *)

val attach :
  Sim.Net.t ->
  proxy:Proxy.t ->
  server:Principal.t ->
  operation:string ->
  path:string ->
  Guard.presented
(** Build the presentation for one file operation (binds the proof to
    server/operation/path at the current virtual time). *)
