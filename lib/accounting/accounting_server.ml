let escrow_account = "cashier-escrow"

type t = {
  net : Sim.Net.t;
  me : Principal.t;
  my_key : string;
  signing_key : Crypto.Rsa.private_;
  lookup : Principal.t -> Crypto.Rsa.public option;
  ledger : Ledger.t;
  granter : Granter.t;
  guard : Guard.t;
  routes : (string, Principal.t * string list) Hashtbl.t;
      (* drawee -> next hop + physical destinations for it (replicas) *)
  collect_retry : Sim.Retry.policy option;
  proxy_lifetime_us : int;
  drawn : (string, int) Hashtbl.t;
      (* cumulative draw per standing authority: key is the proxy chain's
         serial path plus the currency *)
  mutable on_redeem : (string -> unit) option;
      (* replication feed: fires with the check number whenever a check is
         paid here, so a standby can mirror the accept-once record *)
}

let create net ~me ~my_key ~kdc ~signing_key ~lookup ?collect_retry ?verify_cache ?revocation
    ?(proxy_lifetime_us = 24 * 3600 * 1_000_000) () =
  match Granter.create net ~me ~my_key ~kdc with
  | Error e -> Error e
  | Ok granter ->
      let ledger = Ledger.create () in
      let guard =
        Guard.create net ~me ~my_key ~lookup_pub:lookup ?verify_cache ?revocation
          ~acl:(Acl.create ()) ()
      in
      let t =
        {
          net;
          me;
          my_key;
          signing_key;
          lookup;
          ledger;
          granter;
          guard;
          routes = Hashtbl.create 4;
          collect_retry;
          proxy_lifetime_us;
          drawn = Hashtbl.create 16;
          on_redeem = None;
        }
      in
      (* The escrow account backs cashier's checks. *)
      (match Ledger.open_account ledger ~owner:me ~name:escrow_account with
      | Ok () -> ()
      | Error _ -> assert false);
      Acl.add (Guard.acl guard) ~target:escrow_account
        { Acl.subject = Acl.Principal_is me; rights = [ "debit" ]; restrictions = [] };
      Ok t

let me t = t.me
let ledger t = t.ledger
let guard t = t.guard
let apply_bulletin t b = Guard.apply_bulletin t.guard b
let account t name = Principal.Account.make ~server:t.me name

let set_route t ~drawee ?(via = []) ~next_hop () =
  Hashtbl.replace t.routes (Principal.to_string drawee) (next_hop, via)

let next_hop t drawee =
  Option.value (Hashtbl.find_opt t.routes (Principal.to_string drawee)) ~default:(drawee, [])

let set_redemption_observer t f = t.on_redeem <- f
let redeemed t number = match t.on_redeem with None -> () | Some f -> f number

let warm t ~drawee =
  let hop, _ = next_hop t drawee in
  Result.map ignore (Granter.credentials_for t.granter hop)

let trace t fmt =
  Printf.ksprintf
    (fun msg ->
      Sim.Trace.record (Sim.Net.trace t.net) ~time:(Sim.Net.now t.net)
        ~actor:(Principal.to_string t.me) msg)
    fmt

(* Drawee-side validation: the check's delegate-proxy chain must authorize
   debiting the payor's account, with this server among the presenters (the
   endorsement chain ends at us). On success the funds are moved out of the
   payor's account (or out of a certified hold). *)
let validate_and_debit t ~presenter (check : Check.t) =
  Sim.Span.with_span (Sim.Net.spans t.net) ~actor:(Principal.to_string t.me) ~kind:"acct.debit"
    ~attrs:
      [
        ("check", check.Check.number);
        ("amount", string_of_int check.Check.amount);
        ("currency", check.Check.currency);
      ]
  @@ fun () ->
  let presented =
    { Guard.pres = Proxy.presentation check.Check.proxy; pres_proof = None }
  in
  let payor_account = check.Check.drawn_on.Principal.Account.account in
  match
    Guard.decide t.guard ~operation:"debit" ~target:payor_account ~presenter
      ~extra_presenters:[ t.me ] ~proxies:[ presented ]
      ~spend:(check.Check.currency, check.Check.amount) ()
  with
  | Error e -> Error (Printf.sprintf "check %s refused: %s" check.Check.number e)
  | Ok _decision -> (
      match Ledger.find_hold t.ledger ~name:payor_account ~id:check.Check.number with
      | Some (held_currency, held_amount) ->
          if held_currency <> check.Check.currency || held_amount < check.Check.amount then
            Error "certified hold does not cover the check"
          else begin
            (match Ledger.take_hold t.ledger ~name:payor_account ~id:check.Check.number with
            | Ok _ -> ()
            | Error _ -> assert false);
            (* Any certified surplus returns to the payor. *)
            if held_amount > check.Check.amount then
              ignore
                (Ledger.credit t.ledger ~name:payor_account ~currency:held_currency
                   (held_amount - check.Check.amount));
            trace t "paid certified check %s: %d %s from %S" check.Check.number
              check.Check.amount check.Check.currency payor_account;
            redeemed t check.Check.number;
            Ok check.Check.amount
          end
      | None -> (
          match
            Ledger.debit t.ledger ~name:payor_account ~currency:check.Check.currency
              check.Check.amount
          with
          | Error e -> Error (Printf.sprintf "check %s bounced: %s" check.Check.number e)
          | Ok () ->
              trace t "paid check %s: %d %s from %S" check.Check.number check.Check.amount
                check.Check.currency payor_account;
              redeemed t check.Check.number;
              Ok check.Check.amount))

(* Forward a check toward its drawee: endorse to the next hop and send a
   collect request (Figure 5's E2 and beyond). *)
let forward_collect t (check : Check.t) =
  let drawee = check.Check.drawn_on.Principal.Account.server in
  let hop, via = next_hop t drawee in
  Sim.Span.with_span (Sim.Net.spans t.net) ~actor:(Principal.to_string t.me)
    ~kind:"acct.forward"
    ~attrs:[ ("check", check.Check.number); ("hop", Principal.to_string hop) ]
  @@ fun () ->
  let now = Sim.Net.now t.net in
  match
    Check.endorse ~drbg:(Sim.Net.drbg t.net) ~now ~expires:(now + t.proxy_lifetime_us)
      ~endorser:t.me ~endorser_key:t.signing_key ~next:hop check
  with
  | Error e -> Error e
  | Ok endorsed -> (
      Sim.Metrics.incr (Sim.Net.metrics t.net) "accounting.endorsements";
      match Granter.credentials_for t.granter hop with
      | Error e -> Error e
      | Ok creds -> (
          (* The inter-bank hop retries under its configured policy: a lost
             collect response would otherwise strand money debited at the
             drawee but never credited downstream. Retransmissions reuse the
             same authenticator, so the remote response cache makes the
             collect fire exactly once. A routed hop may name physical
             replicas ([via]): the endorsement targets the logical bank,
             the transport fails over between its replicas. *)
          let dst, fallback_dsts =
            match via with [] -> (None, []) | d :: rest -> (Some d, rest)
          in
          let call payload =
            match t.collect_retry with
            | None -> Secure_rpc.call t.net ~creds ?dst ~fallback_dsts payload
            | Some p ->
                Secure_rpc.call t.net ~creds ~retries:p.Sim.Retry.retries
                  ~timeout_us:p.Sim.Retry.timeout_us ~backoff:p.Sim.Retry.bo ?dst
                  ~fallback_dsts payload
          in
          match call (Wire.L [ Wire.S "collect"; Check.to_wire endorsed ]) with
          | Error e -> Error e
          | Ok reply -> Result.bind (Wire.to_int reply) (fun amount -> Ok amount)))

let settle t ~presenter (check : Check.t) =
  if Principal.equal check.Check.drawn_on.Principal.Account.server t.me then
    validate_and_debit t ~presenter check
  else forward_collect t check

let handle t ctx payload =
  let open Wire in
  let client = ctx.Secure_rpc.rpc_client in
  let* tag = Result.bind (field payload 0) to_string in
  let transport ~operation ?target ?spend () =
    Guard.transport_ok ~me:t.me ~now:(Sim.Net.now t.net)
      ~auth_data:ctx.Secure_rpc.rpc_auth_data ~operation ?target ?spend ()
  in
  let owner_only name k =
    match Ledger.owner t.ledger ~name with
    | Some o when Principal.equal o client -> k ()
    | Some _ -> Error (Printf.sprintf "%s does not own account %S" (Principal.to_string client) name)
    | None -> Error (Printf.sprintf "no such account %S" name)
  in
  match tag with
  | "open-account" ->
      let* name = Result.bind (field payload 1) to_string in
      let* () = Ledger.open_account t.ledger ~owner:client ~name in
      Acl.add (Guard.acl t.guard) ~target:name
        { Acl.subject = Acl.Principal_is client; rights = [ "debit" ]; restrictions = [] };
      trace t "opened account %S for %s" name (Principal.to_string client);
      Ok (Wire.L [])
  | "balance" ->
      let* name = Result.bind (field payload 1) to_string in
      let* currency = Result.bind (field payload 2) to_string in
      let* () = transport ~operation:"balance" ~target:name () in
      owner_only name (fun () ->
          Ok
            (Wire.L
               [ Wire.I (Ledger.balance t.ledger ~name ~currency);
                 Wire.I (Ledger.held t.ledger ~name ~currency) ]))
  | "transfer" ->
      let* from_ = Result.bind (field payload 1) to_string in
      let* to_ = Result.bind (field payload 2) to_string in
      let* currency = Result.bind (field payload 3) to_string in
      let* amount = Result.bind (field payload 4) to_int in
      let* () = transport ~operation:"transfer" ~target:from_ ~spend:(currency, amount) () in
      owner_only from_ (fun () ->
          let* () = Ledger.transfer t.ledger ~from_ ~to_ ~currency amount in
          trace t "transfer %d %s: %S -> %S" amount currency from_ to_;
          Ok (Wire.L []))
  | "deposit" ->
      Sim.Metrics.incr (Sim.Net.metrics t.net) "accounting.deposits";
      let* cw = field payload 1 in
      let* check = Check.of_wire cw in
      Sim.Span.with_span (Sim.Net.spans t.net) ~actor:(Principal.to_string t.me)
        ~kind:"acct.deposit"
        ~attrs:[ ("check", check.Check.number); ("client", Principal.to_string client) ]
      @@ fun () ->
      let* to_account = Result.bind (field payload 2) to_string in
      let* () =
        transport ~operation:"deposit" ~target:to_account
          ~spend:(check.Check.currency, check.Check.amount) ()
      in
      owner_only to_account (fun () ->
          let* amount = settle t ~presenter:client check in
          let* () =
            Ledger.credit t.ledger ~name:to_account ~currency:check.Check.currency amount
          in
          trace t "deposited check %s: %d %s into %S" check.Check.number amount
            check.Check.currency to_account;
          Ok (Wire.I amount))
  | "collect" ->
      Sim.Metrics.incr (Sim.Net.metrics t.net) "accounting.collects";
      let* cw = field payload 1 in
      let* check = Check.of_wire cw in
      Sim.Span.with_span (Sim.Net.spans t.net) ~actor:(Principal.to_string t.me)
        ~kind:"acct.collect"
        ~attrs:[ ("check", check.Check.number); ("client", Principal.to_string client) ]
      @@ fun () ->
      let* amount = settle t ~presenter:client check in
      Ok (Wire.I amount)
  | "certify" ->
      let* cw = field payload 1 in
      let* check = Check.of_wire cw in
      let name = check.Check.drawn_on.Principal.Account.account in
      if not (Principal.equal check.Check.drawn_on.Principal.Account.server t.me) then
        Error "certify: check is not drawn on this server"
      else
        owner_only name (fun () ->
            let* () =
              Ledger.hold t.ledger ~name ~id:check.Check.number ~currency:check.Check.currency
                check.Check.amount
            in
            let now = Sim.Net.now t.net in
            let proxy =
              Proxy.grant_pk ~drbg:(Sim.Net.drbg t.net) ~now ~expires:(now + t.proxy_lifetime_us)
                ~grantor:t.me ~grantor_key:t.signing_key
                ~restrictions:
                  [ Restriction.Authorized
                      [ { Restriction.target = "certified:" ^ check.Check.number;
                          ops = [ "verify" ] } ] ]
                ()
            in
            trace t "certified check %s for %d %s" check.Check.number check.Check.amount
              check.Check.currency;
            Ok (Proxy.transfer_to_wire proxy))
  | "cashier" ->
      let* from_account = Result.bind (field payload 1) to_string in
      let* payee = Result.bind (field payload 2) Principal.of_wire in
      let* currency = Result.bind (field payload 3) to_string in
      let* amount = Result.bind (field payload 4) to_int in
      let* () = transport ~operation:"cashier" ~target:from_account ~spend:(currency, amount) () in
      owner_only from_account (fun () ->
          let* () =
            Ledger.transfer t.ledger ~from_:from_account ~to_:escrow_account ~currency amount
          in
          let now = Sim.Net.now t.net in
          let check =
            Check.write ~drbg:(Sim.Net.drbg t.net) ~now ~expires:(now + t.proxy_lifetime_us)
              ~payor:t.me ~payor_key:t.signing_key ~account:(account t escrow_account) ~payee
              ~currency ~amount ()
          in
          trace t "cashier's check %s: %d %s for %s" check.Check.number amount currency
            (Principal.to_string payee);
          Ok (Check.to_wire check))
  | "proxy-transfer" ->
      (* Single-decision presented-proxy transfer: unlike "proxy-debit"
         (whose probe pass runs the guard twice per request), exactly one
         [Guard.decide] evaluates — and therefore advances — any stateful
         Sequence restriction the chain carries exactly once per grant. *)
      let* pw = field payload 1 in
      let* presented = Guard.presented_of_wire pw in
      let* payor_account = Result.bind (field payload 2) to_string in
      let* to_account = Result.bind (field payload 3) to_string in
      let* currency = Result.bind (field payload 4) to_string in
      let* amount = Result.bind (field payload 5) to_int in
      if amount <= 0 then Error "proxy-transfer: amount must be positive"
      else
        owner_only to_account (fun () ->
            let* _decision =
              Guard.decide t.guard ~operation:"debit" ~target:payor_account ~presenter:client
                ~proxies:[ presented ]
                ~spend:(currency, amount) ()
            in
            let* () = Ledger.debit t.ledger ~name:payor_account ~currency amount in
            let* () = Ledger.credit t.ledger ~name:to_account ~currency amount in
            trace t "proxy transfer: %d %s from %S to %S" amount currency payor_account
              to_account;
            Ok (Wire.I amount))
  | "seq-advance" ->
      (* Cross-server sequence progress handover: the guard re-derives the
         sequence from the self-describing key and only accepts the push
         when the authenticated caller is the server that ran the attested
         step (see {!Guard.import_seq_progress}). *)
      let* key = Result.bind (field payload 1) to_string in
      let* progress = Result.bind (field payload 2) to_int in
      let* expires = Result.bind (field payload 3) to_int in
      let* stag = Result.bind (field payload 4) to_string in
      let* () =
        Guard.import_seq_progress t.guard ~caller:client ~key ~progress ~expires ~tag:stag
      in
      trace t "sequence progress %d imported from %s" progress (Principal.to_string client);
      Ok (Wire.L [])
  | "proxy-debit" ->
      (* Standing-authority draw (quota allocation, Section 4): cumulative
         spending against one delegate proxy is tracked and capped by its
         Quota restriction. *)
      let* pw = field payload 1 in
      let* presented = Guard.presented_of_wire pw in
      let* payor_account = Result.bind (field payload 2) to_string in
      let* to_account = Result.bind (field payload 3) to_string in
      let* currency = Result.bind (field payload 4) to_string in
      let* amount = Result.bind (field payload 5) to_int in
      if amount <= 0 then Error "proxy-debit: amount must be positive"
      else
        owner_only to_account (fun () ->
            (* Probe pass: identify the authority's serial path. *)
            let* probe =
              Guard.decide t.guard ~operation:"debit" ~target:payor_account ~presenter:client
                ~proxies:[ presented ] ()
            in
            let key = String.concat "/" probe.Guard.serials_used ^ "#" ^ currency in
            let already = Option.value (Hashtbl.find_opt t.drawn key) ~default:0 in
            (* Real pass: the cumulative total must fit every quota the
               chain carries. *)
            let* _decision =
              Guard.decide t.guard ~operation:"debit" ~target:payor_account ~presenter:client
                ~proxies:[ presented ]
                ~spend:(currency, already + amount) ()
            in
            let* () = Ledger.debit t.ledger ~name:payor_account ~currency amount in
            let* () = Ledger.credit t.ledger ~name:to_account ~currency amount in
            Hashtbl.replace t.drawn key (already + amount);
            trace t "standing draw: %d %s from %S to %S (cumulative %d)" amount currency
              payor_account to_account (already + amount);
            Ok (Wire.I (already + amount)))
  | "proxy-release" ->
      (* Return previously drawn resources (quota release). *)
      let* pw = field payload 1 in
      let* presented = Guard.presented_of_wire pw in
      let* payor_account = Result.bind (field payload 2) to_string in
      let* from_account = Result.bind (field payload 3) to_string in
      let* currency = Result.bind (field payload 4) to_string in
      let* amount = Result.bind (field payload 5) to_int in
      if amount <= 0 then Error "proxy-release: amount must be positive"
      else
        owner_only from_account (fun () ->
            let* decision =
              Guard.decide t.guard ~operation:"debit" ~target:payor_account ~presenter:client
                ~proxies:[ presented ] ()
            in
            let key = String.concat "/" decision.Guard.serials_used ^ "#" ^ currency in
            let already = Option.value (Hashtbl.find_opt t.drawn key) ~default:0 in
            if already < amount then
              Error
                (Printf.sprintf "proxy-release: only %d %s drawn, cannot release %d" already
                   currency amount)
            else
              let* () = Ledger.debit t.ledger ~name:from_account ~currency amount in
              let* () = Ledger.credit t.ledger ~name:payor_account ~currency amount in
              Hashtbl.replace t.drawn key (already - amount);
              trace t "standing release: %d %s back to %S (cumulative %d)" amount currency
                payor_account (already - amount);
              Ok (Wire.I (already - amount)))
  | "apply-bulletin" ->
      (* Bulletins are self-authenticating (authority-signed, monotonic
         epoch), so any authenticated caller may deliver one — the push leg
         of distribution. Replays and stale bulletins are ignored, not
         errors, so a duplicated push is harmless. *)
      let* bw = field payload 1 in
      let* b = Revocation.bulletin_of_wire bw in
      let* advanced = Guard.apply_bulletin t.guard b in
      if advanced then
        trace t "revocation bulletin epoch %d applied (pushed by %s)" b.Revocation.b_epoch
          (Principal.to_string client);
      Ok (Wire.I (if advanced then 1 else 0))
  | other -> Error (Printf.sprintf "accounting: unknown operation %S" other)

let install t =
  Secure_rpc.serve t.net ~me:t.me ~my_key:t.my_key (fun ctx payload -> handle t ctx payload)

(* Standby side of replication: mirror the primary's journalled ledger
   ops (plus the ACL entry an account opening installs, and the
   accept-once record a check redemption consumes) without re-running any
   handler. The [drawn] table for standing authorities is not replicated —
   standing draws against a failed-over shard restart their cumulative
   count. *)
let apply_replicated t ?(seq = []) ~ops ~redeemed () =
  let now = Sim.Net.now t.net in
  let rec apply_ops = function
    | [] -> Ok ()
    | op :: rest -> (
        (match op with
        | Ledger.Op_open (owner, name) ->
            Acl.add (Guard.acl t.guard) ~target:name
              { Acl.subject = Acl.Principal_is owner; rights = [ "debit" ]; restrictions = [] }
        | _ -> ());
        match Ledger.apply t.ledger op with
        | Ok () -> apply_ops rest
        | Error e -> Error (Printf.sprintf "replica diverged: %s" e))
  in
  match apply_ops ops with
  | Error _ as e -> e
  | Ok () ->
      List.iter
        (fun number ->
          ignore
            (Replay_cache.record (Guard.replay_cache t.guard) ~now
               ~expires:(now + t.proxy_lifetime_us) number))
        redeemed;
      (* Mirrored sequence progress lands directly in the tracker: the
         replication channel already authenticated the primary, and the
         max-monotone store makes re-applied batches harmless. *)
      List.iter
        (fun (key, progress, expires, tag) ->
          Seq_tracker.set_progress (Guard.seq_tracker t.guard) ~now ~expires ~tag key
            progress)
        seq;
      Ok ()

(* --- client side --- *)

(* All client operations accept a retry policy: a retransmission reuses the
   same authenticator, so the server's response cache guarantees the ledger
   mutation happens exactly once however often the message is re-sent. *)

let open_account ?(retries = 0) ?timeout_us ?backoff ?dst ?fallback_dsts ?on_failover net
    ~creds ~name =
  match
    Secure_rpc.call net ~creds ~retries ?timeout_us ?backoff ?dst ?fallback_dsts ?on_failover
      (Wire.L [ Wire.S "open-account"; Wire.S name ])
  with
  | Ok _ -> Ok ()
  | Error e -> Error e

let balance ?(retries = 0) ?timeout_us ?backoff ?dst ?fallback_dsts ?on_failover net ~creds
    ~name ~currency =
  let open Wire in
  match
    Secure_rpc.call net ~creds ~retries ?timeout_us ?backoff ?dst ?fallback_dsts ?on_failover
      (Wire.L [ Wire.S "balance"; Wire.S name; Wire.S currency ])
  with
  | Error e -> Error e
  | Ok reply ->
      let* available = Result.bind (field reply 0) to_int in
      let* held = Result.bind (field reply 1) to_int in
      Ok (available, held)

let transfer ?(retries = 0) ?timeout_us ?backoff ?dst ?fallback_dsts ?on_failover net ~creds
    ~from_ ~to_ ~currency ~amount =
  match
    Secure_rpc.call net ~creds ~retries ?timeout_us ?backoff ?dst ?fallback_dsts ?on_failover
      (Wire.L [ Wire.S "transfer"; Wire.S from_; Wire.S to_; Wire.S currency; Wire.I amount ])
  with
  | Ok _ -> Ok ()
  | Error e -> Error e

let deposit ?(retries = 0) ?timeout_us ?backoff ?dst ?fallback_dsts ?on_failover net ~creds
    ~endorser_key ~check ~to_account =
  let now = Sim.Net.now net in
  let bank = creds.Ticket.cred_service in
  match
    Check.endorse ~drbg:(Sim.Net.drbg net) ~now ~expires:(now + 24 * 3600 * 1_000_000)
      ~endorser:creds.Ticket.cred_client ~endorser_key ~next:bank check
  with
  | Error e -> Error e
  | Ok endorsed -> (
      match
        Secure_rpc.call net ~creds ~retries ?timeout_us ?backoff ?dst ?fallback_dsts
          ?on_failover
          (Wire.L [ Wire.S "deposit"; Check.to_wire endorsed; Wire.S to_account ])
      with
      | Error e -> Error e
      | Ok reply -> Wire.to_int reply)

let certify net ~creds ~check =
  match Secure_rpc.call net ~creds (Wire.L [ Wire.S "certify"; Check.to_wire check ]) with
  | Error e -> Error e
  | Ok reply -> Proxy.transfer_of_wire reply

let cashier_check net ~creds ~from_account ~payee ~currency ~amount =
  match
    Secure_rpc.call net ~creds
      (Wire.L
         [ Wire.S "cashier"; Wire.S from_account; Principal.to_wire payee; Wire.S currency;
           Wire.I amount ])
  with
  | Error e -> Error e
  | Ok reply -> Check.of_wire reply

let presented_of_authority (auth : Standing.t) =
  { Guard.pres = Proxy.presentation auth.Standing.authority; pres_proof = None }

let standing_debit net ~creds ~authority ~to_account ~amount =
  let payload =
    Wire.L
      [ Wire.S "proxy-debit";
        Guard.presented_to_wire (presented_of_authority authority);
        Wire.S authority.Standing.drawn_from.Principal.Account.account;
        Wire.S to_account;
        Wire.S authority.Standing.currency;
        Wire.I amount ]
  in
  Result.bind (Secure_rpc.call net ~creds payload) Wire.to_int

let standing_release net ~creds ~authority ~from_account ~amount =
  let payload =
    Wire.L
      [ Wire.S "proxy-release";
        Guard.presented_to_wire (presented_of_authority authority);
        Wire.S authority.Standing.drawn_from.Principal.Account.account;
        Wire.S from_account;
        Wire.S authority.Standing.currency;
        Wire.I amount ]
  in
  Result.bind (Secure_rpc.call net ~creds payload) Wire.to_int

let proxy_transfer ?(retries = 0) ?timeout_us ?backoff ?dst ?fallback_dsts ?on_failover net
    ~creds ~presented ~payor_account ~to_account ~currency ~amount =
  let payload =
    Wire.L
      [ Wire.S "proxy-transfer";
        Guard.presented_to_wire presented;
        Wire.S payor_account;
        Wire.S to_account;
        Wire.S currency;
        Wire.I amount ]
  in
  Result.bind
    (Secure_rpc.call net ~creds ~retries ?timeout_us ?backoff ?dst ?fallback_dsts ?on_failover
       payload)
    Wire.to_int

let seq_advance ?(retries = 0) ?timeout_us ?backoff ?dst ?fallback_dsts ?on_failover net
    ~creds ~key ~progress ~expires ~tag =
  match
    Secure_rpc.call net ~creds ~retries ?timeout_us ?backoff ?dst ?fallback_dsts ?on_failover
      (Wire.L [ Wire.S "seq-advance"; Wire.S key; Wire.I progress; Wire.I expires; Wire.S tag ])
  with
  | Ok _ -> Ok ()
  | Error e -> Error e

let push_bulletin ?(retries = 0) ?timeout_us ?backoff ?dst ?fallback_dsts net ~creds b =
  match
    Secure_rpc.call net ~creds ~retries ?timeout_us ?backoff ?dst ?fallback_dsts
      (Wire.L [ Wire.S "apply-bulletin"; Revocation.bulletin_to_wire b ])
  with
  | Error e -> Error e
  | Ok reply -> Result.map (fun n -> n = 1) (Wire.to_int reply)

let verify_certification ~lookup ~now ~server ~check_number proxy =
  match proxy.Proxy.flavor with
  | Proxy.Conventional _ | Proxy.Hybrid _ -> Error "certification proxy must be public-key"
  | Proxy.Public_key certs -> (
      match Verifier.verify_pk ~lookup ~now certs with
      | Error e -> Error e
      | Ok verified ->
          if not (Principal.equal verified.Verifier.grantor server) then
            Error "certification proxy not issued by the expected accounting server"
          else
            let req =
              Restriction.request ~server ~time:now ~operation:"verify"
                ~target:("certified:" ^ check_number) ()
            in
            Restriction.check_all verified.Verifier.restrictions req)
