type snapshot = (string * int) list

let grand_totals ledgers =
  let currencies =
    List.concat_map Ledger.currencies ledgers |> List.sort_uniq compare
  in
  List.map
    (fun currency ->
      (currency, List.fold_left (fun acc l -> acc + Ledger.total l ~currency) 0 ledgers))
    currencies

let capture = grand_totals
let totals s = s

let check before ledgers =
  let after = grand_totals ledgers in
  let keys =
    List.sort_uniq compare (List.map fst before @ List.map fst after)
  in
  let value l k = Option.value (List.assoc_opt k l) ~default:0 in
  let drift =
    List.filter_map
      (fun c ->
        let b = value before c and a = value after c in
        if a <> b then Some (Printf.sprintf "%s: %d -> %d (%+d)" c b a (a - b)) else None)
      keys
  in
  if drift = [] then Ok ()
  else Error ("conservation violated: " ^ String.concat ", " drift)
