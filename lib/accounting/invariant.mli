(** Ledger conservation checking (Section 4).

    Checks and transfers move value; they never create or destroy it. For
    any set of cooperating accounting servers, the sum of available + held
    balances per currency is therefore constant across any run — including
    a chaos run where messages are dropped, duplicated, and retried. A
    violation means a partial transfer survived a failure: money debited
    but never credited (vanished) or credited twice (minted by a replay).

    Capture a snapshot before the run, [check] after; only {!Ledger.mint}
    legitimately changes the totals. *)

type snapshot

val capture : Ledger.t list -> snapshot
(** Per-currency grand totals (available + held) across all the ledgers. *)

val totals : snapshot -> (string * int) list
(** The captured [(currency, total)] pairs, sorted by currency. *)

val check : snapshot -> Ledger.t list -> (unit, string) result
(** Recompute the totals over the union of currencies (captured plus any
    that have appeared since) and compare. [Error] names every currency
    whose total drifted, with the delta. *)
