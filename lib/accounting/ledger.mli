(** Accounts and balances (paper Section 4).

    "At a minimum, each account contains a unique name, an
    access-control-list, and a collection of records, each record specifying
    a currency and a balance." The ACL half lives in the accounting server's
    guard; the ledger holds the records. Multiple currencies are first-class
    — monetary or resource-specific (disk blocks, CPU cycles, printer
    pages).

    Holds implement certified checks and quotas: funds move from the
    available balance into a named hold, so the sum available+held is what
    conservation tests check. *)

type t

(** The primitive ledger mutations, as data. Every successful state change
    is journalled as a sequence of these (compound operations decompose into
    their primitive steps), so shipping the journal to a replica and
    {!apply}ing it in order reconstructs the exact balances and holds —
    the replication substrate for sharded accounting clusters. *)
type op =
  | Op_open of Principal.t * string  (** owner, account name *)
  | Op_credit of string * string * int  (** name, currency, amount *)
  | Op_debit of string * string * int
  | Op_hold_put of string * string * string * int
      (** name, hold id, currency, amount — installs the hold record only;
          the funds movement is a separately journalled [Op_debit] *)
  | Op_take of string * string  (** name, hold id *)

val create : unit -> t

val set_journal : t -> (op -> unit) option -> unit
(** Install (or clear) the journal hook: called once per primitive
    mutation, after it has been applied. *)

val apply : t -> op -> (unit, string) result
(** Replay one journalled operation (replica side). *)

val op_to_wire : op -> Wire.t
val op_of_wire : Wire.t -> (op, string) result

val open_account : t -> owner:Principal.t -> name:string -> (unit, string) result
val exists : t -> name:string -> bool
val owner : t -> name:string -> Principal.t option
val accounts : t -> string list

val balance : t -> name:string -> currency:string -> int
(** Available balance; 0 for unknown account or currency. *)

val held : t -> name:string -> currency:string -> int
(** Sum of live holds; saturates at [max_int] rather than wrapping. *)

val mint : t -> name:string -> currency:string -> int -> (unit, string) result
(** Create funds from nothing (bootstrap / resource provisioning). *)

val credit : t -> name:string -> currency:string -> int -> (unit, string) result
(** Checked: a credit that would overflow the native-int balance is refused
    with [Error "balance overflow"] and the balance is unchanged. *)

val debit : t -> name:string -> currency:string -> int -> (unit, string) result
(** Fails on insufficient available funds — overdrafts are refused, the
    paper's "checks returned for insufficient resources". *)

val transfer :
  t -> from_:string -> to_:string -> currency:string -> int -> (unit, string) result

val hold :
  t -> name:string -> id:string -> currency:string -> int -> (unit, string) result
(** Move funds from available into a hold named [id] (certified check). *)

val take_hold : t -> name:string -> id:string -> (string * int, string) result
(** Consume a hold entirely (the certified check cleared); returns its
    currency and amount. *)

val release_hold : t -> name:string -> id:string -> (unit, string) result
(** Return held funds to the available balance. *)

val find_hold : t -> name:string -> id:string -> (string * int) option

val currencies : t -> string list
(** Every currency with a balance or hold anywhere in the ledger, sorted. *)

val total : t -> currency:string -> int
(** available + held across all accounts: the conserved quantity. Saturates
    at [max_int] rather than wrapping. *)
