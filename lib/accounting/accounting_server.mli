(** The distributed accounting service (paper Section 4, Figure 5).

    Each server keeps a {!Ledger} of multi-currency accounts guarded by the
    same ACL machinery end-servers use: opening an account installs an entry
    permitting its owner to debit it, so a check — a delegate proxy whose
    grantor is the owner — clears through the ordinary proxy-verification
    path, with accept-once (the check number), quota (the face value), and
    issued-for (this server) restrictions enforced by the guard.

    Clearing follows Figure 5: the payee endorses the check to its own
    server and deposits it; a server that is not the drawee endorses onward
    and forwards a [collect] to the next hop (configurable routes model
    longer intermediary chains); the drawee validates the whole endorsement
    chain offline and debits the payor. Certified checks place a hold and
    return a certification proxy signed by the server; cashier's checks are
    drawn by the server on its own escrow account. *)

type t

val create :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  kdc:Principal.t ->
  signing_key:Crypto.Rsa.private_ ->
  lookup:(Principal.t -> Crypto.Rsa.public option) ->
  ?collect_retry:Sim.Retry.policy ->
  ?verify_cache:Verify_cache.t ->
  ?revocation:Revocation.t ->
  ?proxy_lifetime_us:int ->
  unit ->
  (t, string) result
(** [signing_key] signs endorsements, certification proxies, and cashier's
    checks; [lookup] resolves account owners' and peer servers' public
    keys. [collect_retry] governs the inter-bank [collect] hop during check
    clearing: without it a transiently lost collect response strands money
    debited at the drawee; with it the hop retransmits (same authenticator,
    so the remote response cache fires the collect exactly once).
    [revocation] attaches local bulletin state to the guard, so checks
    drawn by revoked grantors bounce (see {!Guard.create}). *)

val install : t -> unit
val me : t -> Principal.t

val guard : t -> Guard.t
(** The underlying guard — e.g. to read its revocation state or caches. *)

val apply_bulletin : t -> Revocation.bulletin -> (bool, string) result
(** Feed a revocation bulletin to this server's guard (local delivery —
    the cluster replication path uses this to reach a standby directly).
    [Ok true] when the guard's epoch advanced; see {!Guard.apply_bulletin}. *)

val ledger : t -> Ledger.t
(** Direct ledger access for provisioning (minting resource currencies). *)

val account : t -> string -> Principal.Account.t
(** Global name of a local account. *)

val set_route :
  t -> drawee:Principal.t -> ?via:string list -> next_hop:Principal.t -> unit -> unit
(** Forward checks drawn on [drawee] via [next_hop] (default: directly).
    [via] optionally lists the physical network destinations for the hop —
    a sharded bank's primary and standby replicas; the endorsement still
    names the logical [next_hop], and the transport fails over between the
    replicas (see {!Secure_rpc.call}). *)

val warm : t -> drawee:Principal.t -> (unit, string) result
(** Pre-fetch this server's credentials for the hop that clears checks
    drawn on [drawee], so no KDC exchange happens on the clearing path
    later — a standby warms its routes before any fault plan goes in. *)

val handle :
  t -> Secure_rpc.server_context -> Wire.t -> (Wire.t, string) result
(** The request handler behind {!install}, exposed so cluster shards can
    wrap it (promotion gating, replication taps) and register it under a
    physical node name via {!Secure_rpc.serve}. *)

val settle : t -> presenter:Principal.t -> Check.t -> (int, string) result
(** Clear a presented check at this server: if it is drawn on an account
    held here, validate the endorsement chain and debit (the "collect"
    verb's local leg); otherwise endorse it onward to the configured route
    and forward a collect. Exposed so lane schedulers can run the clearing
    leg at an epoch boundary, where the presenting bank lives in another
    lane and the RPC transport cannot span lanes. Returns the amount paid. *)

val set_redemption_observer : t -> (string -> unit) option -> unit
(** Observer fired with the check number each time a check is paid here —
    the replication feed for mirroring accept-once records to a standby. *)

val apply_replicated :
  t ->
  ?seq:(string * int * int * string) list ->
  ops:Ledger.op list ->
  redeemed:string list ->
  unit ->
  (unit, string) result
(** Standby side of replication: replay the primary's journalled ledger
    ops (mirroring the ACL entry an [Op_open] installs) and record redeemed
    check numbers in the guard's accept-once cache, without re-running any
    handler. [seq] mirrors the primary's sequence-progress movements as
    [(key, progress, expires, grantor-tag)] entries straight into the
    guard's {!Seq_tracker} (max-monotone, so re-application is harmless).
    Standing-authority cumulative draws are not replicated. *)

(** {2 Client operations} — each an authenticated exchange. [creds] are the
    caller's credentials for the accounting server. Every operation accepts
    [?retries]/[?timeout_us]/[?backoff] (see {!Secure_rpc.call}): a
    retransmission reuses the same authenticator, so the server's response
    cache makes the ledger mutation exactly-once however often the message
    is re-sent. *)

val open_account :
  ?retries:int -> ?timeout_us:int -> ?backoff:Sim.Retry.backoff ->
  ?dst:string -> ?fallback_dsts:string list ->
  ?on_failover:(from_:string -> to_:string -> unit) ->
  Sim.Net.t -> creds:Ticket.credentials ->
  name:string -> (unit, string) result

val balance :
  ?retries:int -> ?timeout_us:int -> ?backoff:Sim.Retry.backoff ->
  ?dst:string -> ?fallback_dsts:string list ->
  ?on_failover:(from_:string -> to_:string -> unit) ->
  Sim.Net.t -> creds:Ticket.credentials ->
  name:string -> currency:string ->
  (int * int, string) result
(** Owner only; returns (available, held). *)

val transfer :
  ?retries:int -> ?timeout_us:int -> ?backoff:Sim.Retry.backoff ->
  ?dst:string -> ?fallback_dsts:string list ->
  ?on_failover:(from_:string -> to_:string -> unit) ->
  Sim.Net.t ->
  creds:Ticket.credentials ->
  from_:string ->
  to_:string ->
  currency:string ->
  amount:int ->
  (unit, string) result
(** Local transfer between two accounts on this server (cross-server
    movement travels by check). *)

val deposit :
  ?retries:int -> ?timeout_us:int -> ?backoff:Sim.Retry.backoff ->
  ?dst:string -> ?fallback_dsts:string list ->
  ?on_failover:(from_:string -> to_:string -> unit) ->
  Sim.Net.t ->
  creds:Ticket.credentials ->
  endorser_key:Crypto.Rsa.private_ ->
  check:Check.t ->
  to_account:string ->
  (int, string) result
(** Endorse the check to the bank named by [creds] and deposit it into
    [to_account]; returns the amount credited once the check has cleared all
    the way to the drawee. A bounced check (insufficient funds, forged or
    duplicate number) is an [Error] and credits nothing. *)

val certify :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  check:Check.t ->
  (Proxy.t, string) result
(** Place a hold covering [check] (which the caller has drawn on its account
    at this server) and return the certification proxy asserting that funds
    are guaranteed. *)

val cashier_check :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  from_account:string ->
  payee:Principal.t ->
  currency:string ->
  amount:int ->
  (Check.t, string) result
(** Pay now, receive a check drawn by the server itself on its escrow
    account — trusted because the server is its own drawee. *)

val standing_debit :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  authority:Standing.t ->
  to_account:string ->
  amount:int ->
  (int, string) result
(** Resource-server side of quota allocation: draw [amount] of the
    authority's currency from the grantor's account into [to_account]
    (owned by the caller). The accounting server tracks the cumulative draw
    per authority and refuses to exceed its quota. Returns the new
    cumulative total. *)

val standing_release :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  authority:Standing.t ->
  from_account:string ->
  amount:int ->
  (int, string) result
(** Quota release: return funds from [from_account] to the grantor and
    lower the cumulative draw. Returns the new cumulative total. *)

val proxy_transfer :
  ?retries:int -> ?timeout_us:int -> ?backoff:Sim.Retry.backoff ->
  ?dst:string -> ?fallback_dsts:string list ->
  ?on_failover:(from_:string -> to_:string -> unit) ->
  Sim.Net.t ->
  creds:Ticket.credentials ->
  presented:Guard.presented ->
  payor_account:string ->
  to_account:string ->
  currency:string ->
  amount:int ->
  (int, string) result
(** Move [amount] from [payor_account] (authorized by the presented
    delegate-proxy chain — the guard checks "debit" on it) into
    [to_account], owned by the caller. Exactly one guard decision runs per
    executed request, so a stateful {!Restriction.Sequence} on the chain
    advances exactly once per grant — use this, not the double-decision
    ["proxy-debit"] probe, for sequence-gated draws. Returns the amount
    moved. *)

val seq_advance :
  ?retries:int -> ?timeout_us:int -> ?backoff:Sim.Retry.backoff ->
  ?dst:string -> ?fallback_dsts:string list ->
  ?on_failover:(from_:string -> to_:string -> unit) ->
  Sim.Net.t ->
  creds:Ticket.credentials ->
  key:string ->
  progress:int ->
  expires:int ->
  tag:string ->
  (unit, string) result
(** Hand sequence progress to this server (the ["seq-advance"] verb): the
    glue a {!Guard.set_seq_forward} hook calls when a sequence's next step
    lives here. The server validates the push with
    {!Guard.import_seq_progress} — the caller must be the server that ran
    the attested step. *)

val push_bulletin :
  ?retries:int -> ?timeout_us:int -> ?backoff:Sim.Retry.backoff ->
  ?dst:string -> ?fallback_dsts:string list ->
  Sim.Net.t ->
  creds:Ticket.credentials ->
  Revocation.bulletin ->
  (bool, string) result
(** Push a revocation bulletin to the server (the ["apply-bulletin"] verb).
    Bulletins are self-authenticating — the guard verifies the authority's
    signature — so any authenticated caller may deliver one; a forged or
    foreign bulletin is refused by the guard, not the transport. [Ok true]
    when the server's epoch advanced. *)

val verify_certification :
  lookup:(Principal.t -> Crypto.Rsa.public option) ->
  now:int ->
  server:Principal.t ->
  check_number:string ->
  Proxy.t ->
  (unit, string) result
(** End-server side: check that a certification proxy really was issued by
    [server] for [check_number] and is still valid. *)

val escrow_account : string
