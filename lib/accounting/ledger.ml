type account = {
  acct_owner : Principal.t;
  balances : (string, int) Hashtbl.t; (* currency -> available *)
  holds : (string, string * int) Hashtbl.t; (* hold id -> currency, amount *)
}

(* The primitive mutations, as data: everything a replica needs to rebuild
   this ledger's state. Compound operations (transfer, hold, release_hold)
   journal as their primitive steps, so replaying the journal in order
   reconstructs the exact balances and holds. *)
type op =
  | Op_open of Principal.t * string
  | Op_credit of string * string * int
  | Op_debit of string * string * int
  | Op_hold_put of string * string * string * int
  | Op_take of string * string

type t = {
  accounts : (string, account) Hashtbl.t;
  mutable journal : (op -> unit) option;
}

let create () = { accounts = Hashtbl.create 16; journal = None }

let set_journal t j = t.journal <- j
let record t op = match t.journal with None -> () | Some j -> j op

let open_account t ~owner ~name =
  if Hashtbl.mem t.accounts name then Error (Printf.sprintf "account %S already exists" name)
  else begin
    Hashtbl.add t.accounts name
      { acct_owner = owner; balances = Hashtbl.create 4; holds = Hashtbl.create 4 };
    record t (Op_open (owner, name));
    Ok ()
  end

let exists t ~name = Hashtbl.mem t.accounts name
let owner t ~name = Option.map (fun a -> a.acct_owner) (Hashtbl.find_opt t.accounts name)
let accounts t = Hashtbl.fold (fun k _ acc -> k :: acc) t.accounts [] |> List.sort compare

let find t name =
  match Hashtbl.find_opt t.accounts name with
  | Some a -> Ok a
  | None -> Error (Printf.sprintf "no such account %S" name)

let balance t ~name ~currency =
  match Hashtbl.find_opt t.accounts name with
  | None -> 0
  | Some a -> Option.value (Hashtbl.find_opt a.balances currency) ~default:0

(* Balances are native ints: addition must be checked, or a large credit
   wraps the balance negative and silently breaks conservation. *)
let add_checked a b =
  if b > 0 && a > max_int - b then Error "balance overflow"
  else if b < 0 && a < min_int - b then Error "balance overflow"
  else Ok (a + b)

(* Read-side sums (holds, grand totals) saturate at [max_int] instead of
   wrapping: a saturated report is visibly huge, a wrapped one is silently
   negative. *)
let add_sat a b = match add_checked a b with Ok v -> v | Error _ -> max_int

let held t ~name ~currency =
  match Hashtbl.find_opt t.accounts name with
  | None -> 0
  | Some a ->
      Hashtbl.fold (fun _ (c, amt) acc -> if c = currency then add_sat acc amt else acc) a.holds 0

let positive amount = if amount <= 0 then Error "amount must be positive" else Ok ()

let credit t ~name ~currency amount =
  Result.bind (positive amount) (fun () ->
      Result.bind (find t name) (fun a ->
          let current = Option.value (Hashtbl.find_opt a.balances currency) ~default:0 in
          Result.map
            (fun sum ->
              Hashtbl.replace a.balances currency sum;
              record t (Op_credit (name, currency, amount)))
            (add_checked current amount)))

let mint = credit

let debit t ~name ~currency amount =
  Result.bind (positive amount) (fun () ->
      Result.bind (find t name) (fun a ->
          let available = Option.value (Hashtbl.find_opt a.balances currency) ~default:0 in
          if available < amount then
            Error
              (Printf.sprintf "insufficient funds: %S has %d %s, needs %d" name available
                 currency amount)
          else begin
            Hashtbl.replace a.balances currency (available - amount);
            record t (Op_debit (name, currency, amount));
            Ok ()
          end))

let transfer t ~from_ ~to_ ~currency amount =
  Result.bind (find t to_) (fun _ ->
      Result.bind (debit t ~name:from_ ~currency amount) (fun () ->
          match credit t ~name:to_ ~currency amount with
          | Ok () -> Ok ()
          | Error e ->
              (* Undo the debit: the amount just left [from_], so crediting
                 it back cannot overflow. *)
              (match credit t ~name:from_ ~currency amount with
              | Ok () -> ()
              | Error _ -> assert false);
              Error e))

let hold t ~name ~id ~currency amount =
  Result.bind (find t name) (fun a ->
      if Hashtbl.mem a.holds id then Error (Printf.sprintf "hold %S already placed" id)
      else
        Result.map
          (fun () ->
            Hashtbl.add a.holds id (currency, amount);
            record t (Op_hold_put (name, id, currency, amount)))
          (debit t ~name ~currency amount))

let find_hold t ~name ~id =
  match Hashtbl.find_opt t.accounts name with
  | None -> None
  | Some a -> Hashtbl.find_opt a.holds id

let take_hold t ~name ~id =
  Result.bind (find t name) (fun a ->
      match Hashtbl.find_opt a.holds id with
      | None -> Error (Printf.sprintf "no hold %S on %S" id name)
      | Some (currency, amount) ->
          Hashtbl.remove a.holds id;
          record t (Op_take (name, id));
          Ok (currency, amount))

let release_hold t ~name ~id =
  Result.bind (take_hold t ~name ~id) (fun (currency, amount) ->
      match credit t ~name ~currency amount with
      | Ok () -> Ok ()
      | Error e ->
          (* Restore the hold rather than lose the money. *)
          (match Hashtbl.find_opt t.accounts name with
          | Some a ->
              Hashtbl.add a.holds id (currency, amount);
              record t (Op_hold_put (name, id, currency, amount))
          | None -> ());
          Error e)

let currencies t =
  let seen = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ a ->
      Hashtbl.iter (fun c _ -> Hashtbl.replace seen c ()) a.balances;
      Hashtbl.iter (fun _ (c, _) -> Hashtbl.replace seen c ()) a.holds)
    t.accounts;
  Hashtbl.fold (fun c () acc -> c :: acc) seen [] |> List.sort compare

let total t ~currency =
  Hashtbl.fold
    (fun name _ acc -> add_sat acc (add_sat (balance t ~name ~currency) (held t ~name ~currency)))
    t.accounts 0

(* --- journal replay (replication) --- *)

(* [Op_hold_put] only installs the hold record: the matching debit was
   journalled separately by [hold], and the compensation path in
   [release_hold] re-installs a hold without touching the balance. *)
let apply t op =
  match op with
  | Op_open (owner, name) -> open_account t ~owner ~name
  | Op_credit (name, currency, amount) -> credit t ~name ~currency amount
  | Op_debit (name, currency, amount) -> debit t ~name ~currency amount
  | Op_hold_put (name, id, currency, amount) ->
      Result.map
        (fun a ->
          Hashtbl.add a.holds id (currency, amount);
          record t (Op_hold_put (name, id, currency, amount)))
        (find t name)
  | Op_take (name, id) -> Result.map ignore (take_hold t ~name ~id)

let op_to_wire = function
  | Op_open (owner, name) -> Wire.L [ Wire.S "open"; Principal.to_wire owner; Wire.S name ]
  | Op_credit (name, currency, amount) ->
      Wire.L [ Wire.S "credit"; Wire.S name; Wire.S currency; Wire.I amount ]
  | Op_debit (name, currency, amount) ->
      Wire.L [ Wire.S "debit"; Wire.S name; Wire.S currency; Wire.I amount ]
  | Op_hold_put (name, id, currency, amount) ->
      Wire.L [ Wire.S "hold"; Wire.S name; Wire.S id; Wire.S currency; Wire.I amount ]
  | Op_take (name, id) -> Wire.L [ Wire.S "take"; Wire.S name; Wire.S id ]

let op_of_wire v =
  let open Wire in
  let* tag = Result.bind (field v 0) to_string in
  match tag with
  | "open" ->
      let* owner = Result.bind (field v 1) Principal.of_wire in
      let* name = Result.bind (field v 2) to_string in
      Ok (Op_open (owner, name))
  | "credit" | "debit" ->
      let* name = Result.bind (field v 1) to_string in
      let* currency = Result.bind (field v 2) to_string in
      let* amount = Result.bind (field v 3) to_int in
      Ok
        (if tag = "credit" then Op_credit (name, currency, amount)
         else Op_debit (name, currency, amount))
  | "hold" ->
      let* name = Result.bind (field v 1) to_string in
      let* id = Result.bind (field v 2) to_string in
      let* currency = Result.bind (field v 3) to_string in
      let* amount = Result.bind (field v 4) to_int in
      Ok (Op_hold_put (name, id, currency, amount))
  | "take" ->
      let* name = Result.bind (field v 1) to_string in
      let* id = Result.bind (field v 2) to_string in
      Ok (Op_take (name, id))
  | other -> Error (Printf.sprintf "ledger op: unknown tag %S" other)
