type account = {
  acct_owner : Principal.t;
  balances : (string, int) Hashtbl.t; (* currency -> available *)
  holds : (string, string * int) Hashtbl.t; (* hold id -> currency, amount *)
}

type t = { accounts : (string, account) Hashtbl.t }

let create () = { accounts = Hashtbl.create 16 }

let open_account t ~owner ~name =
  if Hashtbl.mem t.accounts name then Error (Printf.sprintf "account %S already exists" name)
  else begin
    Hashtbl.add t.accounts name
      { acct_owner = owner; balances = Hashtbl.create 4; holds = Hashtbl.create 4 };
    Ok ()
  end

let exists t ~name = Hashtbl.mem t.accounts name
let owner t ~name = Option.map (fun a -> a.acct_owner) (Hashtbl.find_opt t.accounts name)
let accounts t = Hashtbl.fold (fun k _ acc -> k :: acc) t.accounts [] |> List.sort compare

let find t name =
  match Hashtbl.find_opt t.accounts name with
  | Some a -> Ok a
  | None -> Error (Printf.sprintf "no such account %S" name)

let balance t ~name ~currency =
  match Hashtbl.find_opt t.accounts name with
  | None -> 0
  | Some a -> Option.value (Hashtbl.find_opt a.balances currency) ~default:0

let held t ~name ~currency =
  match Hashtbl.find_opt t.accounts name with
  | None -> 0
  | Some a ->
      Hashtbl.fold (fun _ (c, amt) acc -> if c = currency then acc + amt else acc) a.holds 0

let positive amount = if amount <= 0 then Error "amount must be positive" else Ok ()

let credit t ~name ~currency amount =
  Result.bind (positive amount) (fun () ->
      Result.map
        (fun a ->
          Hashtbl.replace a.balances currency
            (Option.value (Hashtbl.find_opt a.balances currency) ~default:0 + amount))
        (find t name))

let mint = credit

let debit t ~name ~currency amount =
  Result.bind (positive amount) (fun () ->
      Result.bind (find t name) (fun a ->
          let available = Option.value (Hashtbl.find_opt a.balances currency) ~default:0 in
          if available < amount then
            Error
              (Printf.sprintf "insufficient funds: %S has %d %s, needs %d" name available
                 currency amount)
          else begin
            Hashtbl.replace a.balances currency (available - amount);
            Ok ()
          end))

let transfer t ~from_ ~to_ ~currency amount =
  Result.bind (find t to_) (fun _ ->
      Result.bind (debit t ~name:from_ ~currency amount) (fun () ->
          credit t ~name:to_ ~currency amount))

let hold t ~name ~id ~currency amount =
  Result.bind (find t name) (fun a ->
      if Hashtbl.mem a.holds id then Error (Printf.sprintf "hold %S already placed" id)
      else
        Result.map
          (fun () -> Hashtbl.add a.holds id (currency, amount))
          (debit t ~name ~currency amount))

let find_hold t ~name ~id =
  match Hashtbl.find_opt t.accounts name with
  | None -> None
  | Some a -> Hashtbl.find_opt a.holds id

let take_hold t ~name ~id =
  Result.bind (find t name) (fun a ->
      match Hashtbl.find_opt a.holds id with
      | None -> Error (Printf.sprintf "no hold %S on %S" id name)
      | Some (currency, amount) ->
          Hashtbl.remove a.holds id;
          Ok (currency, amount))

let release_hold t ~name ~id =
  Result.bind (take_hold t ~name ~id) (fun (currency, amount) ->
      credit t ~name ~currency amount)

let currencies t =
  let seen = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ a ->
      Hashtbl.iter (fun c _ -> Hashtbl.replace seen c ()) a.balances;
      Hashtbl.iter (fun _ (c, _) -> Hashtbl.replace seen c ()) a.holds)
    t.accounts;
  Hashtbl.fold (fun c () acc -> c :: acc) seen [] |> List.sort compare

let total t ~currency =
  Hashtbl.fold
    (fun name _ acc -> acc + balance t ~name ~currency + held t ~name ~currency)
    t.accounts 0
