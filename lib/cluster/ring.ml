(* Consistent-hash ring over shard identifiers.

   Each shard contributes [vnodes] points at SHA-256("id#k"); a key maps to
   the shard owning the first point at or clockwise after SHA-256(key). The
   hash is over raw digest bytes, so placement is independent of shard
   naming conventions, and adding a shard moves only the keys that fall
   between its new points and their predecessors — no global reshuffle. *)

type t = {
  points : (string * string) array;  (* (digest, shard id), sorted by digest *)
  shards : string list;
}

let point id k = Crypto.Sha256.digest (id ^ "#" ^ string_of_int k)

let create ?(vnodes = 32) shards =
  if shards = [] then invalid_arg "Ring.create: no shards";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be positive";
  let shards = List.sort_uniq String.compare shards in
  let points =
    List.concat_map (fun id -> List.init vnodes (fun k -> (point id k, id))) shards
    |> Array.of_list
  in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) points;
  { points; shards }

let shards t = t.shards

let lookup t key =
  let h = Crypto.Sha256.digest key in
  let n = Array.length t.points in
  (* First point with digest >= h; past the last point wraps to the first. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if String.compare (fst t.points.(mid)) h < 0 then search (mid + 1) hi
      else search lo mid
  in
  let i = search 0 n in
  snd t.points.(if i = n then 0 else i)

let spread t keys =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun k ->
      let s = lookup t k in
      Hashtbl.replace tbl s (1 + Option.value (Hashtbl.find_opt tbl s) ~default:0))
    keys;
  List.map (fun s -> (s, Option.value (Hashtbl.find_opt tbl s) ~default:0)) t.shards
