(** A replicated bank shard: primary + standby accounting servers sharing
    one logical identity and long-term key.

    Failover ordering guarantees (see DESIGN.md §12):
    - replication ships {e before} the primary's reply is transmitted, so
      every reply a client saw is already at the standby;
    - the standby's response cache is seeded with the primary's sealed
      replies, so a failed-over retransmission is answered without a second
      execution (exactly-once across replicas);
    - the standby refuses fresh work until it observes the primary down,
      and promotion is sticky thereafter. *)

type t

val create :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  kdc:Principal.t ->
  signing_key:Crypto.Rsa.private_ ->
  lookup:(Principal.t -> Crypto.Rsa.public option) ->
  ?collect_retry:Sim.Retry.policy ->
  ?repl_retry:Sim.Retry.policy ->
  ?bulk_every:int ->
  ?revocation_authority:Principal.t * Crypto.Rsa.public ->
  ?staleness_bound_us:int ->
  primary_node:string ->
  standby_node:string ->
  unit ->
  (t, string) result
(** Both replicas are created with the same [me]/[my_key]; [primary_node]
    and [standby_node] are their distinct physical network names.
    [repl_retry] governs the primary->standby replication exchange.

    Replication is coalesced three ways. Requests that journalled nothing
    (reads) skip shipping entirely — re-executing one on a failed-over
    retransmission is idempotent (["cluster.repl_read_skips"]). Pipelined
    batches ({!Secure_rpc.call_batch}) journal all their items under one
    authenticator and thus one ship. And [bulk_every = k] (default [1])
    ships only every k-th mutating request, carrying the whole backlog of
    journal entries and sealed replies in one ["x-replicate-bulk"]
    exchange ([k > 1] trades the strict "reply seen => replicated"
    ordering for fewer replication round trips: replies released between
    ships are vulnerable to duplicate execution only if the client loses
    the reply {e and} the primary dies before the next ship; the default
    keeps the strict ordering). A failed ship re-rides the next handled
    request.
    [revocation_authority] subscribes {e each replica independently} to
    that authority's bulletins (its own {!Revocation.t}, aged by its own
    deliveries), so a partition isolating one physical node drives only
    that replica past [staleness_bound_us] into fail-closed. *)

val install : t -> unit
(** Register both replicas on the network. *)

val logical : t -> Principal.t
val primary_node : t -> string
val standby_node : t -> string
val primary_server : t -> Accounting_server.t
val standby_server : t -> Accounting_server.t

val promoted : t -> bool
(** Whether the standby has taken over. *)

val authoritative : t -> Accounting_server.t
(** The replica currently answering fresh work — the standby once the
    primary is down or promotion happened, the primary otherwise. Read
    invariants (conservation) against this one. *)

val mint : t -> name:string -> currency:string -> int -> (unit, string) result
(** Provision funds identically on both replicas (setup only). *)

val set_route :
  t -> drawee:Principal.t -> ?via:string list -> next_hop:Principal.t -> unit -> unit
(** Install an inter-shard clearing route on both replicas. *)

val warm : t -> drawee:Principal.t -> (unit, string) result
(** Pre-fetch clearing credentials on both replicas so no KDC traffic is
    needed once a fault plan is live (a freshly promoted standby included). *)

val apply_bulletin : t -> Revocation.bulletin -> (bool, string) result
(** Deliver a revocation bulletin to {e both} replicas locally. [Ok true]
    when either epoch advanced. The remote path is
    {!Accounting_server.push_bulletin} aimed at each physical node — the
    standby accepts the ["apply-bulletin"] verb even before promotion
    (unlike fresh work), because a standby with stale revocation state
    would fail open the moment it took over. *)
