(** Client-side shard router.

    Resolves account names to shards through the {!Ring}, holds per-shard
    credentials, and orders each shard's physical replicas for the
    transport: primary first, standby as fallback, sticky standby-first
    after an observed failover. Every operation opens a ["cluster.route"]
    span tagged with the account and owning shard. *)

type endpoint = {
  ep_logical : Principal.t;  (** the shard's logical service identity *)
  ep_primary : string;  (** primary replica's network node *)
  ep_standby : string;  (** standby replica's network node *)
}

type t

val create :
  Sim.Net.t ->
  ring:Ring.t ->
  endpoints:(string * endpoint) list ->
  creds_for:(Principal.t -> (Ticket.credentials, string) result) ->
  ?retries:int ->
  ?timeout_us:int ->
  ?backoff:Sim.Retry.backoff ->
  unit ->
  t
(** One router per client. [creds_for] obtains that client's credentials
    for a shard's logical identity (cached per shard thereafter).
    [retries]/[timeout_us]/[backoff] apply to every routed operation. *)

val shard_of : t -> string -> string
(** Owning shard id for an account name. *)

val logical_for : t -> string -> Principal.t option
(** Logical identity of the shard owning an account — the drawee a check
    against that account must name. *)

val open_account : t -> name:string -> (unit, string) result
val balance : t -> name:string -> currency:string -> (int * int, string) result

val transfer :
  t -> from_:string -> to_:string -> currency:string -> amount:int ->
  (unit, string) result
(** Both accounts must live on the same shard; cross-shard movement
    travels by check ([Error] otherwise). *)

val deposit :
  t ->
  endorser_key:Crypto.Rsa.private_ ->
  check:Check.t ->
  to_account:string ->
  (int, string) result
