(** The cross-realm federation scenario: three realms on one seeded
    network, exercising every boundary the federation layer has.

    Forged inter-realm TGTs (a peer minting another realm's users — or
    the trusting realm's own) must bounce at the TGS with the pinned
    realm-mismatch error; malformed TGS subkeys are refused in-band on
    both sides; a cascaded proxy chain signed in realm A and extended in
    realm C is verified at a realm-B end-server with each signer's key
    resolved by realm; the granter recovers from an inter-realm rekey by
    evicting its cached cross TGT; and a Grapevine-style membership
    replica serves realm A's group through a partition, fails closed
    past its staleness bound, and recovers on heal. Same-config reruns
    are byte-identical (metrics and trace). *)

type config = {
  seed : string;
  members : int;  (** direct members of the replicated group *)
  staleness_bound_us : int;  (** replica staleness bound *)
}

val default : config

type outcome = {
  forged_refused : bool;  (** foreign-client forgery bounced at B's TGS *)
  forged_error : string;  (** the pinned realm-mismatch error *)
  forged_local_refused : bool;  (** peer minting B's own users also bounced *)
  subkey_server_error : string;  (** wire-level bad subkey, refused in-band *)
  subkey_client_error : string;  (** client-side validation before sending *)
  cascade_ok : bool;  (** A-grantor -> C-intermediate -> B-presenter chain served *)
  granter_retry_ok : bool;  (** post-rekey derive recovered via evict + retry *)
  cross_tgs : int;  (** cross-realm TGTs accepted at remote TGSs *)
  warm_asserts : int;  (** replica membership proxies before the partition *)
  membership_read_ok : bool;  (** group-ACL read at the end-server succeeded *)
  non_member_refused : bool;
  refresh_partitioned_failed : bool;  (** pull across the cut failed *)
  partitioned_asserts : int;  (** still served from the replica during the cut *)
  stale_denied : bool;  (** fail closed past the staleness bound *)
  stale_error : string;
  healed_refresh_ok : bool;
  healed_asserts : int;
  replica_epoch : int;
  replica_hits : int;
  replica_stale_denials : int;
  snapshots_applied : int;
  metrics : (string * int) list;
  trace : string list;
}

val run : config -> outcome
(** Raises [Failure] only on scaffolding errors (setup steps that the
    scenario itself never gates on). *)

(** {2 Lane-parallel variant: one realm per lane}

    Each lane owns a fully-isolated realm; the only cross-lane traffic is
    what would cross realms in production — signed membership snapshots,
    ringing to the next lane and applied there — plus a per-lane
    forged-TGT probe against the lane's own TGS. The digest is
    byte-identical for any [domains]. *)

type lanes_outcome = {
  l_epochs_run : int;
  l_delivered : int;
  l_gates : (string * bool) list;  (** label, pass *)
  l_digest : string;  (** per-lane logs + metrics + traces, lane order *)
}

val run_lanes : ?lanes:int -> domains:int -> config -> lanes_outcome
(** [lanes] defaults to 3 and must be at least 2 (snapshots travel to the
    next lane in the ring). *)
