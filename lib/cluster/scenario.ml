(* End-to-end cluster scenario: N replicated shards, consistent-hash
   placement, buyers paying a shop by check across shards, an open-loop
   workload under a seeded fault plan that permanently crashes one shard's
   primary mid-run, and a conservation + exactly-once audit at the end.

   Everything a run needs — accounts, funds, credentials, clearing routes,
   granter warm-ups on *both* replicas of every shard — is provisioned
   before the fault plan goes in, so chaos only ever touches transaction
   traffic: the cluster analogue of the paper's point that proxies let
   verification proceed without talking to distant authorities. *)

type crash_target = No_crash | Shop_primary | Buyer_primary

type config = {
  seed : string;
  shards : int;
  ops : int;
  buyers : int;
  drop : float;
  duplicate : float;
  crash : crash_target;
  crash_after_us : int;
  retries : int;
  timeout_us : int;
}

let default =
  {
    seed = "cluster";
    shards = 4;
    ops = 60;
    buyers = 4;
    drop = 0.05;
    duplicate = 0.05;
    crash = Shop_primary;
    crash_after_us = 30_000;
    retries = 8;
    timeout_us = 10_000;
  }

type outcome = {
  shard_ids : string list;
  attempted : int;
  succeeded : int;
  failed : int;
  conserved : (unit, string) result;
  redemptions : (string * int) list;
  double_redemptions : int;
  failovers : int;
  promotions : int;
  repl_shipped : int;
  repl_failures : int;
  dedups : int;
  retries_used : int;
  gave_up : int;
  messages : int;
  p50_us : int;
  p99_us : int;
  crashed_node : string option;
  metrics : (string * int) list;
  trace : string list;
}

let usd = "usd"

type actor = { name : string; principal : Principal.t; rsa : Crypto.Rsa.private_ }

let ok_or ctx = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "Scenario.run setup (%s): %s" ctx e)

(* "paid check N: ..." / "paid certified check N: ..." -> Some N *)
let paid_check_number event =
  let prefixed p =
    if String.length event > String.length p && String.sub event 0 (String.length p) = p
    then Some (String.length p)
    else None
  in
  match
    (match prefixed "paid check " with
    | Some i -> Some i
    | None -> prefixed "paid certified check ")
  with
  | None -> None
  | Some start -> (
      match String.index_from_opt event start ':' with
      | None -> None
      | Some stop -> Some (String.sub event start (stop - start)))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let run cfg =
  if cfg.shards < 1 then invalid_arg "Scenario.run: at least one shard";
  if cfg.buyers < 1 then invalid_arg "Scenario.run: at least one buyer";
  let w = World.create ~seed:cfg.seed () in
  let net = w.World.net in
  let drbg = Sim.Net.drbg net in
  let collect_retry = Sim.Retry.policy ~retries:cfg.retries ~timeout_us:cfg.timeout_us () in
  let repl_retry = Sim.Retry.policy ~retries:12 ~timeout_us:cfg.timeout_us () in
  (* -- shards -- *)
  let shard_ids = List.init cfg.shards (Printf.sprintf "bank-%d") in
  let shards =
    List.map
      (fun id ->
        let p, key, rsa = World.enrol_pk w id in
        let s =
          ok_or id
            (Shard.create net ~me:p ~my_key:key ~kdc:w.World.kdc_name
               ~signing_key:rsa
               ~lookup:(fun q -> Directory.public w.World.dir q)
               ~collect_retry ~repl_retry ~primary_node:(id ^ "-a")
               ~standby_node:(id ^ "-b") ())
        in
        Shard.install s;
        (id, s))
      shard_ids
  in
  let shard id = List.assoc id shards in
  let ring = Ring.create shard_ids in
  (* Clearing routes + credential warm-up, every ordered shard pair: the
     endorsement names the logical drawee, the transport knows its physical
     replicas, and both replicas of every shard hold clearing credentials
     before any fault fires. *)
  List.iter
    (fun (_, s1) ->
      List.iter
        (fun (_, s2) ->
          if not (Principal.equal (Shard.logical s1) (Shard.logical s2)) then begin
            Shard.set_route s1 ~drawee:(Shard.logical s2)
              ~via:[ Shard.primary_node s2; Shard.standby_node s2 ]
              ~next_hop:(Shard.logical s2) ();
            ok_or "warm" (Shard.warm s1 ~drawee:(Shard.logical s2))
          end)
        shards)
    shards;
  let endpoints =
    List.map
      (fun (id, s) ->
        ( id,
          {
            Router.ep_logical = Shard.logical s;
            ep_primary = Shard.primary_node s;
            ep_standby = Shard.standby_node s;
          } ))
      shards
  in
  (* -- actors -- *)
  let mk_actor name =
    let principal, _ = World.enrol w name in
    let rsa = Crypto.Rsa.generate drbg ~bits:512 in
    Directory.add_public w.World.dir principal rsa.Crypto.Rsa.pub;
    { name; principal; rsa }
  in
  let router_for actor =
    let creds_for logical =
      try
        let tgt = World.login w actor.principal in
        Ok (World.credentials_for w ~tgt logical)
      with Failure e -> Error e
    in
    Router.create net ~ring ~endpoints ~creds_for ~retries:cfg.retries
      ~timeout_us:cfg.timeout_us ()
  in
  let buyers =
    List.init cfg.buyers (fun i ->
        let a = mk_actor (Printf.sprintf "buyer-%d" i) in
        (a, router_for a))
  in
  let shop = mk_actor "shop" in
  let shop_router = router_for shop in
  (* Accounts open through the routers (so the op replicates and each
     router's shard credentials are cached); funds mint on both replicas. *)
  List.iter
    (fun (b, r) ->
      ok_or b.name (Router.open_account r ~name:b.name);
      ok_or b.name (Shard.mint (shard (Router.shard_of r b.name)) ~name:b.name ~currency:usd 1_000))
    buyers;
  ok_or shop.name (Router.open_account shop_router ~name:shop.name);
  let write_check (buyer : actor) amount =
    let buyer_shard = shard (Ring.lookup ring buyer.name) in
    let now = World.now w in
    Check.write ~drbg ~now ~expires:(now + (24 * World.hour)) ~payor:buyer.principal
      ~payor_key:buyer.rsa
      ~account:(Accounting_server.account (Shard.primary_server buyer_shard) buyer.name)
      ~payee:shop.principal ~currency:usd ~amount ()
  in
  (* Warm-up clearing pass from each buyer's shard, so the KDC is quiet
     under chaos. *)
  List.iter
    (fun (b, _) ->
      ignore
        (ok_or "warm-up deposit"
           (Router.deposit shop_router ~endorser_key:shop.rsa ~check:(write_check b 1)
              ~to_account:shop.name)))
    buyers;
  (* Same-shard buyer pairs, for intra-shard transfers in the mix. *)
  let transfer_pairs =
    let by_shard = Hashtbl.create 8 in
    List.iter
      (fun (b, r) ->
        let sid = Router.shard_of r b.name in
        Hashtbl.replace by_shard sid
          ((b, r) :: Option.value (Hashtbl.find_opt by_shard sid) ~default:[]))
      buyers;
    (* Fold in sorted shard order: hash iteration order depends on table
       resize history, and the pair list feeds the seeded workload mix — a
       hash-order fold here makes op selection build-dependent. *)
    Hashtbl.fold (fun sid bs acc -> (sid, bs) :: acc) by_shard []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.filter_map (fun (_, bs) ->
           match bs with
           | (b1, r1) :: (b2, _) :: _ -> Some ((b1, r1), b2)
           | _ -> None)
  in
  (* Both replicas of a shard hold identical ledgers here, so capturing
     the primaries captures the cluster. The closing check reads whichever
     replica is authoritative after the crash. *)
  let before =
    Invariant.capture
      (List.map (fun (_, s) -> Accounting_server.ledger (Shard.primary_server s)) shards)
  in
  (* -- chaos begins -- *)
  let t0 = Sim.Net.now net in
  let crashed_node =
    match cfg.crash with
    | No_crash -> None
    | Shop_primary -> Some (Shard.primary_node (shard (Ring.lookup ring shop.name)))
    | Buyer_primary ->
        let b0, _ = List.hd buyers in
        Some (Shard.primary_node (shard (Ring.lookup ring b0.name)))
  in
  let directives =
    [ Sim.Fault.drop cfg.drop; Sim.Fault.duplicate cfg.duplicate ]
    @
    match crashed_node with
    | None -> []
    | Some node ->
        (* Permanent: the primary never comes back, the standby must carry
           the shard for the rest of the run. *)
        [ Sim.Fault.crash node ~at:(t0 + cfg.crash_after_us) () ]
  in
  Sim.Net.install_fault_plan net (Sim.Fault.plan ~seed:cfg.seed directives);
  let wl = Crypto.Drbg.create ~seed:("workload:" ^ cfg.seed) in
  let succeeded = ref 0 in
  let samples = Array.make cfg.ops 0 in
  for i = 0 to cfg.ops - 1 do
    let started = Sim.Net.now net in
    let outcome =
      let die = Crypto.Drbg.uniform_int wl 10 in
      if die < 6 then begin
        let buyer, _ = List.nth buyers (Crypto.Drbg.uniform_int wl cfg.buyers) in
        let amount = 1 + Crypto.Drbg.uniform_int wl 30 in
        Result.map ignore
          (Router.deposit shop_router ~endorser_key:shop.rsa
             ~check:(write_check buyer amount) ~to_account:shop.name)
      end
      else if die < 8 && transfer_pairs <> [] then begin
        let (b1, r1), b2 =
          List.nth transfer_pairs (Crypto.Drbg.uniform_int wl (List.length transfer_pairs))
        in
        let amount = 1 + Crypto.Drbg.uniform_int wl 20 in
        Router.transfer r1 ~from_:b1.name ~to_:b2.name ~currency:usd ~amount
      end
      else begin
        let buyer, r = List.nth buyers (Crypto.Drbg.uniform_int wl cfg.buyers) in
        Result.map ignore (Router.balance r ~name:buyer.name ~currency:usd)
      end
    in
    samples.(i) <- Sim.Net.now net - started;
    match outcome with Ok () -> incr succeeded | Error _ -> ()
  done;
  Sim.Net.clear_fault_plan net;
  (* -- chaos over: read the invariants against the surviving replicas -- *)
  let conserved =
    Invariant.check before
      (List.map (fun (_, s) -> Accounting_server.ledger (Shard.authoritative s)) shards)
  in
  let redemptions =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (e : Sim.Trace.entry) ->
        match paid_check_number e.Sim.Trace.event with
        | Some n ->
            Hashtbl.replace tbl n (1 + Option.value (Hashtbl.find_opt tbl n) ~default:0)
        | None -> ())
      (Sim.Trace.entries (Sim.Net.trace net));
    Hashtbl.fold (fun n c acc -> (n, c) :: acc) tbl [] |> List.sort compare
  in
  Array.sort compare samples;
  let m = Sim.Net.metrics net in
  {
    shard_ids;
    attempted = cfg.ops;
    succeeded = !succeeded;
    failed = cfg.ops - !succeeded;
    conserved;
    redemptions;
    double_redemptions = List.length (List.filter (fun (_, c) -> c > 1) redemptions);
    failovers = Sim.Metrics.get m "cluster.failovers";
    promotions = Sim.Metrics.get m "cluster.promotions";
    repl_shipped = Sim.Metrics.get m "cluster.repl_shipped";
    repl_failures = Sim.Metrics.get m "cluster.repl_failures";
    dedups = Sim.Metrics.get m "rpc.dedup";
    retries_used = Sim.Metrics.get m "rpc.retries";
    gave_up = Sim.Metrics.get m "rpc.gave_up";
    messages = Sim.Metrics.get m "net.messages";
    p50_us = percentile samples 50.;
    p99_us = percentile samples 99.;
    crashed_node;
    metrics = Sim.Metrics.snapshot m;
    trace =
      List.map
        (fun (e : Sim.Trace.entry) ->
          Printf.sprintf "%d %s %s" e.Sim.Trace.time e.Sim.Trace.actor e.Sim.Trace.event)
        (Sim.Trace.entries (Sim.Net.trace net));
  }
