(* The revocation-storm scenario: a grantor revokes its whole output while
   one subscriber is partitioned away from the revocation authority.

   The run crosses every revocation path the system has:
   - a fresh server (synced after the bulletin) denies revoked chains
     immediately, and the epoch jump retires its whole verify-cache
     generation (the "invalidation storm" — one bump, every dependent
     cached chain gone);
   - a partitioned server serves normally inside its staleness bound (the
     degradation window: a revoked proxy is still honoured there), then
     fails closed for everything proxy-shaped once past the bound while
     still answering direct-ACL requests;
   - short-TTL proxies from a healthy grantor keep working through online
     refresh, while the revoked grantor's refresher refuses a new lease;
   - accept-once state survives the churn: a voucher spent before the storm
     still bounces as a replay after the heal;
   - a replicated bank shard receives the bulletin on both replicas (the
     standby accepts it un-promoted) and bounces the revoked grantor's
     check without breaking conservation.

   Everything is driven by the seeded virtual clock and DRBG: the same
   config must produce byte-identical metrics and trace. *)

type config = {
  seed : string;
  grants : int;  (** distinct proxies the doomed grantor issues (storm width) *)
  staleness_bound_us : int;
  lifetime_us : int;  (** short-TTL lifetime for the healthy grantor's proxies *)
}

let minute = 60_000_000

let default =
  {
    seed = "revocation-storm";
    grants = 6;
    staleness_bound_us = 10 * minute;
    lifetime_us = 15 * minute;
  }

type outcome = {
  warm_reads : int;  (** proxy reads served before the storm (both servers) *)
  revocations : int;  (** entries the authority accepted *)
  final_epoch : int;
  fresh_denials : int;  (** revoked chains denied at the synced server *)
  stale_window_served : int;
      (** revoked chains still served at the partitioned server inside its bound *)
  stale_denials : int;  (** fail-closed denials once past the bound *)
  direct_reads_while_stale : int;  (** direct-ACL reads the stale server still answered *)
  refresh_ok : bool;  (** healthy grantor's short-TTL proxy re-leased *)
  refresh_refused_revoked : bool;  (** revoked grantor's refresher said no *)
  replay_refused : bool;  (** pre-storm accept-once id still bounces after heal *)
  healed_denials : int;  (** revoked chains denied at the healed server *)
  healed_serves : bool;  (** refreshed healthy chain served at the healed server *)
  invalidations : int;  (** cached verifications retired ("verify_cache.invalidations") *)
  generation_bumps : int;
  bulletin_on_standby : bool;  (** the shard standby accepted the push un-promoted *)
  check_cleared : bool;  (** pre-storm check cleared *)
  check_bounced : bool;  (** post-bulletin check from the revoked grantor bounced *)
  conserved : (unit, string) result;
  metrics : (string * int) list;
  trace : string list;
}

let usd = "usd"

let ok_or ctx = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "Revocation_storm.run setup (%s): %s" ctx e)

let run cfg =
  let w = World.create ~seed:cfg.seed () in
  let net = w.World.net in
  let drbg = Sim.Net.drbg net in
  let lookup p = Directory.public w.World.dir p in
  let advance us = Sim.Clock.advance (Sim.Net.clock net) us in
  (* --- principals --- *)
  let ra_p, ra_key, ra_rsa = World.enrol_pk w "bulletin-board" in
  let gina, gina_key, gina_rsa = World.enrol_pk w "gina" in
  let hugh, hugh_key, hugh_rsa = World.enrol_pk w "hugh" in
  let carol, _, carol_rsa = World.enrol_pk w "carol" in
  let dave, _ = World.enrol w "dave" in
  let subscriber () =
    Revocation.create ~authority:ra_p ~authority_pub:ra_rsa.Crypto.Rsa.pub
      ~staleness_bound_us:cfg.staleness_bound_us ~now:(World.now w) ()
  in
  (* --- the revocation authority --- *)
  let authority =
    Revocation_authority.create net ~me:ra_p ~my_key:ra_key ~signing_key:ra_rsa ~lookup ()
  in
  Revocation_authority.install authority;
  (* --- two file servers guarding the same ACL --- *)
  let mk_fs name =
    let p, key = World.enrol w name in
    let acl = Acl.create () in
    Acl.add acl ~target:"*"
      { Acl.subject = Acl.Principal_is gina; rights = [ "read" ]; restrictions = [] };
    Acl.add acl ~target:"*"
      { Acl.subject = Acl.Principal_is hugh; rights = [ "read" ]; restrictions = [] };
    Acl.add acl ~target:"/public/motd"
      { Acl.subject = Acl.Principal_is dave; rights = [ "read" ]; restrictions = [] };
    let fs =
      File_server.create net ~me:p ~my_key:key ~lookup_pub:lookup ~revocation:(subscriber ())
        ~acl ()
    in
    File_server.install fs;
    for i = 1 to cfg.grants do
      File_server.put_direct fs ~path:(Printf.sprintf "/g/doc-%d" i)
        (Printf.sprintf "gina's doc %d" i)
    done;
    File_server.put_direct fs ~path:"/h/report" "hugh's report";
    File_server.put_direct fs ~path:"/public/motd" "welcome";
    (p, fs)
  in
  let fresh_p, fresh_fs = mk_fs "archive" in
  let stale_p, stale_fs = mk_fs "backup" in
  (* --- refresh services for both grantors --- *)
  let mk_refresher me my_key signing_key =
    let r =
      Refresher.create net ~me ~my_key ~signing_key ~lookup ~revocation:(subscriber ())
        ~lifetime_us:cfg.lifetime_us ()
    in
    Refresher.install r;
    r
  in
  let hugh_refresher = mk_refresher hugh hugh_key hugh_rsa in
  let gina_refresher = mk_refresher gina gina_key gina_rsa in
  (* --- the bank shard --- *)
  let bank, bank_key, bank_rsa = World.enrol_pk w "coast-bank" in
  let shard =
    ok_or "shard"
      (Shard.create net ~me:bank ~my_key:bank_key ~kdc:w.World.kdc_name ~signing_key:bank_rsa
         ~lookup ~revocation_authority:(ra_p, ra_rsa.Crypto.Rsa.pub)
         ~staleness_bound_us:cfg.staleness_bound_us ~primary_node:"coast-bank-1"
         ~standby_node:"coast-bank-2" ())
  in
  Shard.install shard;
  let bank_dsts c = c ~dst:(Shard.primary_node shard) ~fallback_dsts:[ Shard.standby_node shard ] in
  (* --- credentials (all minted before any fault goes in) --- *)
  let creds_of who service =
    let tgt = World.login w who in
    World.credentials_for w ~tgt service
  in
  let carol_fresh = creds_of carol fresh_p in
  let carol_stale = creds_of carol stale_p in
  let carol_hugh = creds_of carol hugh in
  let carol_gina = creds_of carol gina in
  let carol_bank = creds_of carol bank in
  let gina_auth = creds_of gina ra_p in
  let gina_bank = creds_of gina bank in
  let hugh_auth = creds_of hugh ra_p in
  let fresh_auth = creds_of fresh_p ra_p in
  let stale_auth = creds_of stale_p ra_p in
  (* --- bank accounts and a pre-storm check --- *)
  ok_or "gina account"
    (bank_dsts (fun ~dst ~fallback_dsts ->
         Accounting_server.open_account ~dst ~fallback_dsts net ~creds:gina_bank ~name:"gina"));
  ok_or "carol account"
    (bank_dsts (fun ~dst ~fallback_dsts ->
         Accounting_server.open_account ~dst ~fallback_dsts net ~creds:carol_bank ~name:"carol"));
  ok_or "mint" (Shard.mint shard ~name:"gina" ~currency:usd 1_000);
  let write_check amount =
    let now = World.now w in
    Check.write ~drbg ~now ~expires:(now + (24 * World.hour)) ~payor:gina ~payor_key:gina_rsa
      ~account:(Accounting_server.account (Shard.primary_server shard) "gina")
      ~payee:carol ~currency:usd ~amount ()
  in
  let check_before = write_check 100 in
  let check_after = write_check 75 in
  let deposit check =
    bank_dsts (fun ~dst ~fallback_dsts ->
        Accounting_server.deposit ~dst ~fallback_dsts net ~creds:carol_bank
          ~endorser_key:carol_rsa ~check ~to_account:"carol")
  in
  let conservation_before =
    Invariant.capture [ Accounting_server.ledger (Shard.primary_server shard) ]
  in
  let check_cleared = deposit check_before = Ok 100 in
  (* --- proxies --- *)
  let grant_gina i =
    Proxy.grant_pk ~drbg ~now:(World.now w)
      ~expires:(World.now w + (4 * World.hour))
      ~grantor:gina ~grantor_key:gina_rsa
      ~restrictions:
        [ Restriction.Authorized
            [ { Restriction.target = Printf.sprintf "/g/doc-%d" i; ops = [ "read" ] } ] ]
      ()
  in
  let gina_proxies = List.init cfg.grants (fun i -> grant_gina (i + 1)) in
  let hugh_proxy =
    ref
      (Proxy.grant_pk ~drbg ~now:(World.now w)
         ~expires:(World.now w + cfg.lifetime_us)
         ~grantor:hugh ~grantor_key:hugh_rsa
         ~restrictions:
           [ Restriction.Authorized [ { Restriction.target = "/h/report"; ops = [ "read" ] } ] ]
         ())
  in
  let voucher =
    Proxy.grant_pk ~drbg ~now:(World.now w)
      ~expires:(World.now w + (4 * World.hour))
      ~grantor:hugh ~grantor_key:hugh_rsa
      ~restrictions:
        [ Restriction.Authorized [ { Restriction.target = "/h/report"; ops = [ "read" ] } ];
          Restriction.Accept_once "voucher-1" ]
      ()
  in
  let read_with server creds fs_proxy path =
    let presented = File_server.attach net ~proxy:fs_proxy ~server ~operation:"read" ~path in
    File_server.read net ~creds ~proxies:[ presented ] ~path ()
  in
  (* --- initial bulletin sync: both servers start fresh at epoch 1 --- *)
  let sync_fs creds fs =
    Revocation_authority.sync net ~creds (File_server.guard fs)
  in
  ignore (ok_or "initial sync archive" (sync_fs fresh_auth fresh_fs));
  ignore (ok_or "initial sync backup" (sync_fs stale_auth stale_fs));
  (* --- warm phase: everything is served everywhere, twice (the second
     pass runs on the verify cache, so the storm has hits to retire) --- *)
  let warm_reads = ref 0 in
  for _pass = 1 to 2 do
    List.iteri
      (fun i p ->
        let path = Printf.sprintf "/g/doc-%d" (i + 1) in
        if Result.is_ok (read_with fresh_p carol_fresh p path) then incr warm_reads;
        if Result.is_ok (read_with stale_p carol_stale p path) then incr warm_reads)
      gina_proxies;
    if Result.is_ok (read_with fresh_p carol_fresh !hugh_proxy "/h/report") then
      incr warm_reads;
    if Result.is_ok (read_with stale_p carol_stale !hugh_proxy "/h/report") then
      incr warm_reads
  done;
  (* Spend the accept-once voucher at the soon-to-be-stale server. *)
  if Result.is_ok (read_with stale_p carol_stale voucher "/h/report") then incr warm_reads;
  (* --- a short-TTL lease ages; carol refreshes it online --- *)
  advance (7 * minute);
  let refresh_ok =
    match Refresher.refresh net ~creds:carol_hugh !hugh_proxy with
    | Ok p ->
        hugh_proxy := p;
        true
    | Error _ -> false
  in
  (* --- the storm: partition one subscriber, then revoke everything --- *)
  let t0 = Sim.Net.now net in
  Sim.Net.install_fault_plan net
    (Sim.Fault.plan ~seed:cfg.seed
       [
         Sim.Fault.partition
           ~a:[ Principal.to_string stale_p ]
           ~b:[ Principal.to_string ra_p ]
           ~at:t0
           ~until:(t0 + cfg.staleness_bound_us + (3 * minute))
           ();
       ]);
  List.iter
    (fun (p : Proxy.t) ->
      match p.Proxy.flavor with
      | Proxy.Public_key (head :: _) ->
          ignore (ok_or "revoke-cert" (Revocation_authority.revoke_cert net ~creds:gina_auth head))
      | _ -> failwith "Revocation_storm.run: expected a public-key proxy")
    gina_proxies;
  ignore (ok_or "revoke-grantor" (Revocation_authority.revoke_grantor net ~creds:gina_auth ()));
  (* The connected server syncs and the epoch jump retires its cache. *)
  ignore (ok_or "storm sync archive" (sync_fs fresh_auth fresh_fs));
  let fresh_denials = ref 0 in
  List.iteri
    (fun i p ->
      match read_with fresh_p carol_fresh p (Printf.sprintf "/g/doc-%d" (i + 1)) with
      | Error _ -> incr fresh_denials
      | Ok _ -> ())
    gina_proxies;
  (* The partitioned server cannot sync — and inside its bound it still
     honours the revoked chains: that window is the price of degradation. *)
  let stale_sync_failed = Result.is_error (sync_fs stale_auth stale_fs) in
  let stale_window_served = ref 0 in
  List.iteri
    (fun i p ->
      match read_with stale_p carol_stale p (Printf.sprintf "/g/doc-%d" (i + 1)) with
      | Ok _ -> incr stale_window_served
      | Error _ -> ())
    gina_proxies;
  (* --- past the bound: fail closed for proxies, serve direct ACLs --- *)
  advance (cfg.staleness_bound_us + minute);
  let stale_denials = ref 0 in
  List.iteri
    (fun i p ->
      match read_with stale_p carol_stale p (Printf.sprintf "/g/doc-%d" (i + 1)) with
      | Error _ -> incr stale_denials
      | Ok _ -> ())
    gina_proxies;
  (match read_with stale_p carol_stale !hugh_proxy "/h/report" with
  | Error _ -> incr stale_denials
  | Ok _ -> ());
  let direct_reads_while_stale = ref 0 in
  let dave_stale = creds_of dave stale_p in
  (match File_server.read net ~creds:dave_stale ~path:"/public/motd" () with
  | Ok _ -> incr direct_reads_while_stale
  | Error _ -> ());
  (* --- refresh under the storm: the healthy grantor re-leases, the
     revoked grantor refuses. Heartbeats keep the refreshers fresh. --- *)
  ignore (Revocation_authority.publish authority);
  let sync_refresher creds r =
    let b = ok_or "refresher fetch" (Revocation_authority.fetch net ~creds ()) in
    ignore (ok_or "refresher apply" (Revocation.apply (Option.get (Refresher.revocation r)) b))
  in
  sync_refresher hugh_auth hugh_refresher;
  sync_refresher gina_auth gina_refresher;
  let refresh_ok =
    refresh_ok
    &&
    match Refresher.refresh net ~creds:carol_hugh !hugh_proxy with
    | Ok p ->
        hugh_proxy := p;
        true
    | Error _ -> false
  in
  let refresh_refused_revoked =
    Result.is_error (Refresher.refresh net ~creds:carol_gina (List.hd gina_proxies))
  in
  (* --- heal: the partition lifts, the laggard syncs and recovers --- *)
  advance (5 * minute);
  ignore (Revocation_authority.publish authority);
  ignore (ok_or "heal sync backup" (sync_fs stale_auth stale_fs));
  let healed_denials = ref 0 in
  List.iteri
    (fun i p ->
      match read_with stale_p carol_stale p (Printf.sprintf "/g/doc-%d" (i + 1)) with
      | Error _ -> incr healed_denials
      | Ok _ -> ())
    gina_proxies;
  let healed_serves = Result.is_ok (read_with stale_p carol_stale !hugh_proxy "/h/report") in
  let replay_refused = Result.is_error (read_with stale_p carol_stale voucher "/h/report") in
  (* --- the bulletin reaches both bank replicas; the revoked grantor's
     check bounces; money is conserved --- *)
  let final_bulletin = Revocation_authority.bulletin authority in
  let push dst =
    Accounting_server.push_bulletin ~dst net ~creds:carol_bank final_bulletin
  in
  let on_primary = push (Shard.primary_node shard) in
  let on_standby = push (Shard.standby_node shard) in
  let bulletin_on_standby = on_primary = Ok true && on_standby = Ok true in
  let check_bounced = Result.is_error (deposit check_after) in
  let conserved =
    Invariant.check conservation_before
      [ Accounting_server.ledger (Shard.primary_server shard) ]
  in
  Sim.Net.clear_fault_plan net;
  ignore stale_sync_failed;
  let m = Sim.Net.metrics net in
  {
    warm_reads = !warm_reads;
    revocations = Sim.Metrics.get m "revocation.revocations";
    final_epoch = Revocation_authority.epoch authority;
    fresh_denials = !fresh_denials;
    stale_window_served = !stale_window_served;
    stale_denials = !stale_denials;
    direct_reads_while_stale = !direct_reads_while_stale;
    refresh_ok;
    refresh_refused_revoked;
    replay_refused;
    healed_denials = !healed_denials;
    healed_serves;
    invalidations = Sim.Metrics.get m "verify_cache.invalidations";
    generation_bumps = Sim.Metrics.get m "verify_cache.generation_bumps";
    bulletin_on_standby;
    check_cleared;
    check_bounced;
    conserved;
    metrics = Sim.Metrics.snapshot m;
    trace =
      List.map
        (fun (e : Sim.Trace.entry) ->
          Printf.sprintf "%d %s %s" e.Sim.Trace.time e.Sim.Trace.actor e.Sim.Trace.event)
        (Sim.Trace.entries (Sim.Net.trace net));
  }
