(** Seeded revocation-storm scenario: a grantor revokes its whole output
    (per-serial entries plus a grantor epoch) while one subscriber is
    partitioned away from the revocation authority.

    The run demonstrates, in one deterministic world: immediate denial and
    whole-generation verify-cache invalidation at a freshly synced server;
    the bounded degradation window and then fail-closed behaviour at the
    partitioned server (direct-ACL requests still answered); short-TTL
    proxy refresh for a healthy grantor and refresh refusal for the revoked
    one; accept-once state surviving the churn; bulletin delivery to both
    replicas of a bank shard and a bounced post-revocation check with
    conservation intact.

    Same config (same seed) must produce byte-identical [metrics] and
    [trace] — the harness gate relies on it. *)

type config = {
  seed : string;
  grants : int;  (** distinct proxies the doomed grantor issues (storm width) *)
  staleness_bound_us : int;
  lifetime_us : int;  (** short-TTL lifetime for the healthy grantor's proxies *)
}

val default : config
(** seed ["revocation-storm"], 6 grants, 10-minute staleness bound,
    15-minute proxy lifetime. *)

type outcome = {
  warm_reads : int;
  revocations : int;
  final_epoch : int;
  fresh_denials : int;
  stale_window_served : int;
  stale_denials : int;
  direct_reads_while_stale : int;
  refresh_ok : bool;
  refresh_refused_revoked : bool;
  replay_refused : bool;
  healed_denials : int;
  healed_serves : bool;
  invalidations : int;
  generation_bumps : int;
  bulletin_on_standby : bool;
  check_cleared : bool;
  check_bounced : bool;
  conserved : (unit, string) result;
  metrics : (string * int) list;
  trace : string list;
}

val run : config -> outcome
