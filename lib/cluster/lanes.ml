(* Lane-parallel accounting cluster on the {!Sim.Lane} epoch/barrier
   scheduler.

   One lane per shard: each lane owns a full private world — its own
   simulated net (clock, DRBG, metrics, trace, span collector), KDC,
   directory, and a replicated bank shard — so lanes share no mutable
   state and can execute on separate OCaml 5 domains. Everything that
   crosses shards (check clearing, clearing advice, revocation bulletin
   pushes, sequence-progress handovers) travels as a Wire-encoded lane
   message, delivered only at epoch boundaries in canonical order. Same
   seed + same config is therefore byte-identical — merged metrics, trace,
   span JSONL — whatever [domains] is; [domains = 1] runs the very same
   schedule inline.

   Clearing a remote purchase takes three boundary crossings, mirroring
   the paper's check life cycle with the banks in different lanes:

     buyer lane --x-check-->  shop lane   (buyer draws the check)
     shop lane  --x-collect-> buyer lane  (shop + its bank endorse;
                                           the drawee settles and debits)
     buyer lane --x-advice--> shop lane   (the shop's bank credits)

   The drawee leg calls {!Accounting_server.settle} directly — the lane
   boundary replaces the inter-bank RPC hop, and the endorsement chain on
   the check itself remains the authorization, exactly as in Section 4. *)

type flavor = Checks | Seq | Load

type config = {
  seed : string;
  shards : int;  (** = lanes *)
  domains : int;
  epochs : int;  (** workload epochs; draining may add a few more *)
  ops_per_epoch : int;  (** per lane *)
  buyers : int;  (** per shard on average (ring-placed, counts vary) *)
  drop : float;
  duplicate : float;
  retries : int;
  timeout_us : int;
  flavor : flavor;
}

let default =
  {
    seed = "lanes";
    shards = 4;
    domains = 1;
    epochs = 6;
    ops_per_epoch = 6;
    buyers = 3;
    drop = 0.02;
    duplicate = 0.02;
    retries = 8;
    timeout_us = 10_000;
    flavor = Checks;
  }

type outcome = {
  epochs_run : int;
  delivered : int;  (** cross-lane messages *)
  attempted : int;
  succeeded : int;
  remote_sent : int;  (** checks mailed to another lane's shop *)
  remote_cleared : int;
  remote_bounced : int;
  double_redemptions : int;
  bulletins_applied : int;
  conserved : (unit, string) result;
  seq_gates : (string * bool) list;  (** [Seq] flavor acceptance gates *)
  metrics : (string * int) list;  (** per-lane metrics merged in lane order *)
  trace : string list;  (** ["lane-<i>|time actor event"], lane-major *)
  span_jsonl : string;  (** per-lane span JSONL concatenated in lane order *)
  wall_s : float;
}

let usd = "usd"

let ok_or ctx = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "Cluster.Lanes setup (%s): %s" ctx e)

let ( let* ) = Result.bind

(* Public keys cross lane boundaries only as deep copies: the Nat words
   behind a shared key would otherwise be reachable from several domains.
   Reads would be safe (they are immutable after creation), but copying
   keeps the no-shared-state invariant unconditional. *)
let copy_pub (p : Crypto.Rsa.public) =
  let copy n = Bignum.Nat.of_bytes_be (Bignum.Nat.to_bytes_be n) in
  { Crypto.Rsa.n = copy p.Crypto.Rsa.n; e = copy p.Crypto.Rsa.e }

let lane_world cfg i =
  World.create ~seed:(Sim.Lane.seed_for ~seed:cfg.seed (string_of_int i)) ()

let install_noise cfg i net =
  Sim.Net.install_fault_plan net
    (Sim.Fault.plan
       ~seed:(Printf.sprintf "lane-fault:%s:%d" cfg.seed i)
       [ Sim.Fault.drop cfg.drop; Sim.Fault.duplicate cfg.duplicate ])

(* ------------------------------------------------------------------ *)
(* Checks / Load flavor                                               *)
(* ------------------------------------------------------------------ *)

type buyer = {
  b_name : string;
  b_p : Principal.t;
  b_rsa : Crypto.Rsa.private_;
  b_creds : Ticket.credentials;
}

type chk_lane = {
  cl_id : int;
  cl_world : World.t;
  cl_bank : Shard.t;
  cl_bank_p : Principal.t;
  cl_bank_rsa : Crypto.Rsa.private_;
  cl_shop_p : Principal.t;
  cl_shop_rsa : Crypto.Rsa.private_;
  cl_shop_creds : Ticket.credentials;
  cl_shop_account : string;
  cl_buyers : buyer array;
  cl_wl : Crypto.Drbg.t;  (** workload stream, separate from the net's *)
  cl_pending : (string, int * string) Hashtbl.t;
      (** check number -> (amount, currency) awaiting clearing advice *)
  cl_redeemed : (string, int) Hashtbl.t;  (** times each number paid here *)
  cl_authority : (Principal.t * Crypto.Rsa.private_) option;
      (** lane 0 hosts the revocation authority *)
  cl_revoked_payor : Principal.t;  (** the bulletin's sacrificial grantor *)
}

let bank_dsts st = (Shard.primary_node st.cl_bank, [ Shard.standby_node st.cl_bank ])

let setup_checks cfg =
  let n = cfg.shards in
  let worlds = Array.init n (lane_world cfg) in
  let ring = Ring.create (List.init n (Printf.sprintf "shard-%d")) in
  let lane_of_shard_id sid = Scanf.sscanf sid "shard-%d" Fun.id in
  (* Enrol every lane's principals in its own world first, then replicate
     the public halves everywhere: the drawee verifies a chain endorsed by
     a remote shop and a remote bank, and every shard verifies the one
     revocation authority's bulletins. All sequential, in lane order. *)
  let bank_enrolled =
    Array.init n (fun i -> World.enrol_pk worlds.(i) (Printf.sprintf "bank-%d" i))
  in
  let shop_enrolled =
    Array.init n (fun i -> World.enrol_pk worlds.(i) (Printf.sprintf "shop-%d" i))
  in
  let auth_p, _, auth_rsa = World.enrol_pk worlds.(0) "lane-authority" in
  let auth_pub =
    match Directory.public worlds.(0).World.dir auth_p with
    | Some pub -> pub
    | None -> failwith "Cluster.Lanes setup: authority has no public key"
  in
  let buyer_names = List.init (cfg.buyers * n) (Printf.sprintf "buyer-%d") in
  let home name = lane_of_shard_id (Ring.lookup ring name) in
  let buyers_of =
    Array.init n (fun i ->
        List.filter (fun b -> home b = i) buyer_names
        |> List.map (fun name ->
               let p, _, rsa = World.enrol_pk worlds.(i) name in
               (name, p, rsa))
        |> Array.of_list)
  in
  Array.iteri
    (fun i w ->
      let dir = w.World.dir in
      Directory.add_public dir auth_p (copy_pub auth_pub);
      for j = 0 to n - 1 do
        if j <> i then begin
          let copy_of (p, _, _) =
            match Directory.public worlds.(j).World.dir p with
            | Some pub -> Directory.add_public dir p (copy_pub pub)
            | None -> ()
          in
          copy_of bank_enrolled.(j);
          copy_of shop_enrolled.(j)
        end
      done)
    worlds;
  let revoked_payor =
    if Array.length buyers_of.(0) > 0 then
      let _, p, _ = buyers_of.(0).(0) in
      p
    else
      let p, _, _ = shop_enrolled.(0) in
      p
  in
  Array.init n (fun i ->
      let w = worlds.(i) in
      let net = w.World.net in
      Sim.Net.enable_tracing net;
      let bank_p, bank_key, bank_rsa = bank_enrolled.(i) in
      let shop_p, _, shop_rsa = shop_enrolled.(i) in
      let bank =
        ok_or "shard"
          (Shard.create net ~me:bank_p ~my_key:bank_key ~kdc:w.World.kdc_name
             ~signing_key:bank_rsa ~lookup:(World.lookup w)
             ~revocation_authority:(auth_p, copy_pub auth_pub)
             ~primary_node:(Printf.sprintf "bank-%d-a" i)
             ~standby_node:(Printf.sprintf "bank-%d-b" i)
             ())
      in
      Shard.install bank;
      let dst = Shard.primary_node bank and fallback_dsts = [ Shard.standby_node bank ] in
      let creds_for who = World.credentials_for w ~tgt:(World.login w who) bank_p in
      let open_acct creds name =
        ok_or ("account " ^ name)
          (Accounting_server.open_account ~retries:cfg.retries ~timeout_us:cfg.timeout_us ~dst
             ~fallback_dsts net ~creds ~name)
      in
      let shop_account = Printf.sprintf "shop-%d" i in
      let shop_creds = creds_for shop_p in
      open_acct shop_creds shop_account;
      let buyers =
        Array.map
          (fun (name, p, rsa) ->
            let creds = creds_for p in
            open_acct creds name;
            ok_or ("mint " ^ name) (Shard.mint bank ~name ~currency:usd 10_000);
            { b_name = name; b_p = p; b_rsa = rsa; b_creds = creds })
          buyers_of.(i)
      in
      let redeemed = Hashtbl.create 64 in
      Accounting_server.set_redemption_observer (Shard.primary_server bank)
        (Some
           (fun number ->
             Hashtbl.replace redeemed number
               (1 + Option.value (Hashtbl.find_opt redeemed number) ~default:0)));
      install_noise cfg i net;
      {
        cl_id = i;
        cl_world = w;
        cl_bank = bank;
        cl_bank_p = bank_p;
        cl_bank_rsa = bank_rsa;
        cl_shop_p = shop_p;
        cl_shop_rsa = shop_rsa;
        cl_shop_creds = shop_creds;
        cl_shop_account = shop_account;
        cl_buyers = buyers;
        cl_wl = Crypto.Drbg.create ~seed:(Printf.sprintf "lane-wl:%s:%d" cfg.seed i);
        cl_pending = Hashtbl.create 16;
        cl_redeemed = redeemed;
        cl_authority = (if i = 0 then Some (auth_p, auth_rsa) else None);
        cl_revoked_payor = revoked_payor;
      })

let write_check st buyer ~payee ~amount =
  let net = st.cl_world.World.net in
  let now = Sim.Net.now net in
  let account = Accounting_server.account (Shard.authoritative st.cl_bank) buyer.b_name in
  Check.write ~drbg:(Sim.Net.drbg net) ~now ~expires:(now + World.hour) ~payor:buyer.b_p
    ~payor_key:buyer.b_rsa ~account ~payee ~currency:usd ~amount ()

(* Shop side of an incoming remote check: endorse shop -> own bank -> the
   drawee bank (the check's [drawn_on] server), record the pending credit,
   and mail the endorsed check back to the drawee's lane for collection. *)
let on_check st ~src ~emit blob =
  let net = st.cl_world.World.net in
  let m = Sim.Net.metrics net in
  match Check.of_wire blob with
  | Error _ -> Sim.Metrics.incr m "lanes.malformed"
  | Ok check -> (
      Sim.Metrics.incr m "lanes.checks_in";
      let now = Sim.Net.now net in
      let drbg = Sim.Net.drbg net in
      let drawee = check.Check.drawn_on.Principal.Account.server in
      let endorsed =
        let* c1 =
          Check.endorse ~drbg ~now ~expires:(now + World.hour) ~endorser:st.cl_shop_p
            ~endorser_key:st.cl_shop_rsa ~next:st.cl_bank_p check
        in
        Check.endorse ~drbg ~now ~expires:(now + World.hour) ~endorser:st.cl_bank_p
          ~endorser_key:st.cl_bank_rsa ~next:drawee c1
      in
      match endorsed with
      | Error _ -> Sim.Metrics.incr m "lanes.endorse_failures"
      | Ok endorsed ->
          Sim.Metrics.incr m "accounting.endorsements";
          Hashtbl.replace st.cl_pending check.Check.number
            (check.Check.amount, check.Check.currency);
          emit src (Wire.L [ Wire.S "x-collect"; Check.to_wire endorsed ]))

(* Drawee side: the check is drawn on this lane's bank. The lane boundary
   stands in for the inter-bank RPC hop, so run the collection leg through
   {!Accounting_server.settle} with the presenting bank as presenter — the
   guard still validates the whole endorsement chain, debits, and records
   the check number accept-once. *)
let on_collect st ~presenter ~src ~emit blob =
  let m = Sim.Net.metrics st.cl_world.World.net in
  match Check.of_wire blob with
  | Error _ -> Sim.Metrics.incr m "lanes.malformed"
  | Ok check ->
      let reply =
        match Accounting_server.settle (Shard.authoritative st.cl_bank) ~presenter check with
        | Ok amount -> Wire.L [ Wire.S "x-advice"; Wire.S check.Check.number; Wire.I amount ]
        | Error e ->
            Wire.L [ Wire.S "x-advice"; Wire.S check.Check.number; Wire.I (-1); Wire.S e ]
      in
      emit src reply

let on_advice st number paid =
  let m = Sim.Net.metrics st.cl_world.World.net in
  match Hashtbl.find_opt st.cl_pending number with
  | None -> Sim.Metrics.incr m "lanes.advice_unknown"
  | Some (amount, currency) ->
      Hashtbl.remove st.cl_pending number;
      if paid >= 0 then begin
        (* Credit the primary's ledger directly; the shard's journal picks
           the op up and ships it to the standby with the next replication
           batch, same as any handled mutation. *)
        ok_or "advice credit"
          (Ledger.credit
             (Accounting_server.ledger (Shard.primary_server st.cl_bank))
             ~name:st.cl_shop_account ~currency amount);
        Sim.Metrics.incr m "lanes.cleared"
      end
      else Sim.Metrics.incr m "lanes.bounced"

let on_bulletin st blob =
  let m = Sim.Net.metrics st.cl_world.World.net in
  match Revocation.bulletin_of_wire blob with
  | Error _ -> Sim.Metrics.incr m "lanes.malformed"
  | Ok b -> (
      match Shard.apply_bulletin st.cl_bank b with
      | Ok true -> Sim.Metrics.incr m "lanes.bulletins"
      | Ok false | Error _ -> Sim.Metrics.incr m "lanes.bulletin_rejects")

(* Mid-run, lane 0's authority revokes one sacrificial payor by grantor
   epoch and pushes the bulletin to every lane: checks that payor drew
   before the cut bounce at their drawee with "revoked", wherever the
   clearing had got to. *)
let publish_bulletin st ~emit ~lanes =
  match st.cl_authority with
  | None -> ()
  | Some (auth_p, auth_rsa) ->
      let now = Sim.Net.now st.cl_world.World.net in
      let b =
        Revocation.sign ~key:auth_rsa ~authority:auth_p ~epoch:1 ~issued_at:now
          [ Revocation.By_grantor_epoch { grantor = st.cl_revoked_payor; not_before = now } ]
      in
      on_bulletin st (Revocation.bulletin_to_wire b);
      let wire = Wire.L [ Wire.S "x-bulletin"; Revocation.bulletin_to_wire b ] in
      for dst = 0 to lanes - 1 do
        if dst <> st.cl_id then emit dst wire
      done

let handle_chk_msg lanes_arr st ~src ~emit payload =
  let m = Sim.Net.metrics st.cl_world.World.net in
  match Wire.decode payload with
  | Error _ -> Sim.Metrics.incr m "lanes.malformed"
  | Ok v -> (
      match Wire.to_list v with
      | Ok (Wire.S "x-check" :: blob :: _) -> on_check st ~src ~emit blob
      | Ok (Wire.S "x-collect" :: blob :: _) ->
          on_collect st ~presenter:lanes_arr.(src).cl_bank_p ~src ~emit blob
      | Ok (Wire.S "x-advice" :: Wire.S number :: Wire.I paid :: _) -> on_advice st number paid
      | Ok (Wire.S "x-bulletin" :: blob :: _) -> on_bulletin st blob
      | _ -> Sim.Metrics.incr m "lanes.malformed")

(* One workload operation, drawn from the lane's private workload DRBG.
   [Load] skews buyer choice towards low indices (a triangular Zipf-ish
   weighting) and reads more; [Checks] spreads uniformly and mutates more. *)
let one_op cfg lanes_arr st ~emit =
  let net = st.cl_world.World.net in
  let m = Sim.Net.metrics net in
  let nb = Array.length st.cl_buyers in
  if nb = 0 then Sim.Metrics.incr m "lanes.idle"
  else begin
    let pick_idx () =
      match cfg.flavor with
      | Load ->
          (* Triangular weights: buyer 0 is ~nb times hotter than the last. *)
          let tri = nb * (nb + 1) / 2 in
          let r = Crypto.Drbg.uniform_int st.cl_wl tri in
          let rec go i acc = if r < acc + (nb - i) then i else go (i + 1) (acc + (nb - i)) in
          go 0 0
      | Checks | Seq -> Crypto.Drbg.uniform_int st.cl_wl nb
    in
    let bi = pick_idx () in
    let b = st.cl_buyers.(bi) in
    let amount = 1 + Crypto.Drbg.uniform_int st.cl_wl 5 in
    let dst, fallback_dsts = bank_dsts st in
    let tally r =
      Sim.Metrics.incr m "lanes.ops";
      match r with
      | Ok _ -> Sim.Metrics.incr m "lanes.ok"
      | Error _ -> Sim.Metrics.incr m "lanes.err"
    in
    let balance_read () =
      tally
        (Accounting_server.balance ~retries:cfg.retries ~timeout_us:cfg.timeout_us ~dst
           ~fallback_dsts net ~creds:b.b_creds ~name:b.b_name ~currency:usd)
    in
    let other_buyer () = st.cl_buyers.((bi + 1 + Crypto.Drbg.uniform_int st.cl_wl (nb - 1)) mod nb) in
    let roll = Crypto.Drbg.uniform_int st.cl_wl 100 in
    let read_cut, transfer_cut, deposit_cut =
      match cfg.flavor with Load -> (55, 70, 85) | Checks | Seq -> (25, 50, 75)
    in
    if roll < read_cut then balance_read ()
    else if roll < transfer_cut then
      if nb < 2 then balance_read ()
      else
        let b2 = other_buyer () in
        tally
          (Accounting_server.transfer ~retries:cfg.retries ~timeout_us:cfg.timeout_us ~dst
             ~fallback_dsts net ~creds:b.b_creds ~from_:b.b_name ~to_:b2.b_name ~currency:usd
             ~amount)
    else if roll < deposit_cut then
      if nb < 2 then balance_read ()
      else begin
        (* Intra-lane check: b draws on itself payable to b2, who deposits. *)
        let b2 = other_buyer () in
        let check = write_check st b ~payee:b2.b_p ~amount in
        tally
          (Accounting_server.deposit ~retries:cfg.retries ~timeout_us:cfg.timeout_us ~dst
             ~fallback_dsts net ~creds:b2.b_creds ~endorser_key:b2.b_rsa ~check
             ~to_account:b2.b_name)
      end
    else if cfg.shards < 2 then balance_read ()
    else begin
      (* Remote purchase: mail a check to another lane's shop. *)
      let other =
        (st.cl_id + 1 + Crypto.Drbg.uniform_int st.cl_wl (cfg.shards - 1)) mod cfg.shards
      in
      let check = write_check st b ~payee:lanes_arr.(other).cl_shop_p ~amount in
      emit other (Wire.L [ Wire.S "x-check"; Check.to_wire check ]);
      Sim.Metrics.incr m "lanes.remote_sent";
      Sim.Metrics.incr m "lanes.ops";
      Sim.Metrics.incr m "lanes.ok"
    end
  end

(* Shops batch-poll their account once per workload epoch — a pipelined
   {!Secure_rpc.call_batch} exercising the hot path inside a lane. *)
let shop_sweep cfg st =
  let net = st.cl_world.World.net in
  let dst, fallback_dsts = bank_dsts st in
  let creds = st.cl_shop_creds in
  let item = Wire.L [ Wire.S "balance"; Wire.S st.cl_shop_account; Wire.S usd ] in
  ignore
    (Secure_rpc.call_batch net ~creds ~retries:cfg.retries ~timeout_us:cfg.timeout_us ~dst
       ~fallback_dsts
       [ item; item; item; item ])

let chk_step cfg lanes_arr ~epoch ~lane ~inbox =
  let st = lanes_arr.(lane) in
  let m = Sim.Net.metrics st.cl_world.World.net in
  Sim.Metrics.guard_here m;
  Fun.protect
    ~finally:(fun () -> Sim.Metrics.unguard m)
    (fun () ->
      let out = ref [] in
      let emit dst w = out := (dst, Wire.encode w) :: !out in
      List.iter (fun (src, payload) -> handle_chk_msg lanes_arr st ~src ~emit payload) inbox;
      if epoch = cfg.epochs / 2 then publish_bulletin st ~emit ~lanes:cfg.shards;
      if epoch < cfg.epochs then begin
        for _ = 1 to cfg.ops_per_epoch do
          one_op cfg lanes_arr st ~emit
        done;
        if cfg.flavor = Load then shop_sweep cfg st
      end;
      List.rev !out)

(* ------------------------------------------------------------------ *)
(* Seq flavor                                                         *)
(* ------------------------------------------------------------------ *)

(* Pair [i] spans two lanes: bob-i must open /contract at lane i's file
   server before lane ((i+1) mod n)'s bank lets the same chain debit
   alice-i. The file server's seq-forward hook captures the earned
   progress into the lane outbox; the bank lane imports it into both
   replicas at the next boundary (the lane analogue of the "seq-advance"
   verb + journal replication). Script: epoch 0 = out-of-order debit
   denied + in-order open (+ reopen denied); epoch 1 = import + debit;
   epoch 2 = repeat debit denied. *)

type seq_lane = {
  sl_id : int;
  sl_world : World.t;
  sl_fs : File_server.t;
  sl_bank : Shard.t;
  sl_bank_p : Principal.t;
  (* fs-side client state for pair sl_id *)
  sl_bob_fs_creds : Ticket.credentials;
  sl_presented_fs : Guard.presented;
  sl_seq_out : (string * int * int * string) list ref;  (** captured by the hook *)
  (* bank-side client state for pair (sl_id - 1 + n) mod n *)
  sl_bob_bank_creds : Ticket.credentials;
  sl_presented_bank : Guard.presented;
  sl_alice_account : string;
  sl_bob_account : string;
  sl_fs_of_pair : Principal.t;  (** the import caller: that pair's fs *)
  sl_gates : (string, bool) Hashtbl.t;
}

let seq_amount = 100

let gate st name v =
  Hashtbl.replace st.sl_gates name
    (v && Option.value (Hashtbl.find_opt st.sl_gates name) ~default:true)

let setup_seq cfg =
  let n = cfg.shards in
  if n < 2 then invalid_arg "Cluster.Lanes: the Seq flavor needs at least 2 shards";
  let worlds = Array.init n (lane_world cfg) in
  let fs_enrolled = Array.init n (fun i -> World.enrol worlds.(i) (Printf.sprintf "fs-%d" i)) in
  let bank_enrolled =
    Array.init n (fun i -> World.enrol_pk worlds.(i) (Printf.sprintf "bank-%d" i))
  in
  let alice_enrolled =
    Array.init n (fun i -> World.enrol_pk worlds.(i) (Printf.sprintf "alice-%d" i))
  in
  (* bob-i lives in lane i (for the fs) and lane i+1 (for the bank);
     alice-i's public key must verify at lane i+1's bank, and alice-i
     herself opens her account there. *)
  Array.iteri
    (fun i w ->
      let j = (i + 1) mod n in
      let wj = worlds.(j) in
      ignore (World.enrol w (Printf.sprintf "bob-%d" i));
      ignore (World.enrol wj (Printf.sprintf "bob-%d" i));
      ignore (World.enrol wj (Printf.sprintf "alice-%d" i));
      let alice_p, _, _ = alice_enrolled.(i) in
      (match Directory.public w.World.dir alice_p with
      | Some pub -> Directory.add_public wj.World.dir alice_p (copy_pub pub)
      | None -> ()))
    worlds;
  Array.init n (fun i ->
      let w = worlds.(i) in
      let net = w.World.net in
      Sim.Net.enable_tracing net;
      let j = (i + 1) mod n in
      let p = (i - 1 + n) mod n in
      let fs_p, fs_key = fs_enrolled.(i) in
      let bank_p, bank_key, bank_rsa = bank_enrolled.(i) in
      let alice_i, _, alice_i_rsa = alice_enrolled.(i) in
      let alice_p_of_pair, _, _ = alice_enrolled.(p) in
      let bank_j, _, _ = bank_enrolled.(j) in
      let bob_i = fst (World.enrol w (Printf.sprintf "bob-%d" i)) in
      let bob_p = fst (World.enrol w (Printf.sprintf "bob-%d" p)) in
      (* fs-i: ACL lets alice-i grant "open" on the contract *)
      let fs_acl = Acl.create () in
      Acl.add fs_acl ~target:"/contract"
        { Acl.subject = Acl.Principal_is alice_i; rights = [ "open"; "read" ]; restrictions = [] };
      let fs =
        File_server.create net ~me:fs_p ~my_key:fs_key ~lookup_pub:(World.lookup w) ~acl:fs_acl ()
      in
      File_server.install fs;
      File_server.put_direct fs ~path:"/contract" "in consideration of services rendered";
      let seq_out = ref [] in
      Guard.set_seq_forward (File_server.guard fs)
        (Some
           (fun ~server:_ ~key ~progress ~expires ~tag ->
             seq_out := (key, progress, expires, tag) :: !seq_out));
      (* bank-i serves pair p: alice-p's account lives here *)
      let bank =
        ok_or "shard"
          (Shard.create net ~me:bank_p ~my_key:bank_key ~kdc:w.World.kdc_name
             ~signing_key:bank_rsa ~lookup:(World.lookup w)
             ~primary_node:(Printf.sprintf "bank-%d-a" i)
             ~standby_node:(Printf.sprintf "bank-%d-b" i)
             ())
      in
      Shard.install bank;
      let dst = Shard.primary_node bank and fallback_dsts = [ Shard.standby_node bank ] in
      let creds_for who = World.credentials_for w ~tgt:(World.login w who) bank_p in
      let alice_account = Printf.sprintf "alice-%d" p in
      let bob_account = Printf.sprintf "bob-%d" p in
      let open_acct creds name =
        ok_or ("account " ^ name)
          (Accounting_server.open_account ~retries:cfg.retries ~timeout_us:cfg.timeout_us ~dst
             ~fallback_dsts net ~creds ~name)
      in
      open_acct (creds_for alice_p_of_pair) alice_account;
      open_acct (creds_for bob_p) bob_account;
      ok_or "mint" (Shard.mint bank ~name:alice_account ~currency:usd 1_000);
      (* pair i's sequence-restricted grant, shared (immutable) with lane j *)
      let steps =
        [
          { Restriction.step_op = "open"; step_server = Some fs_p; step_target = Some "/contract" };
          {
            Restriction.step_op = "debit";
            step_server = Some bank_j;
            step_target = Some (Printf.sprintf "alice-%d" i);
          };
        ]
      in
      let now = World.now w in
      let proxy =
        Proxy.grant_pk ~drbg:(Sim.Net.drbg net) ~now ~expires:(now + (24 * World.hour))
          ~grantor:alice_i ~grantor_key:alice_i_rsa
          ~restrictions:[ Restriction.Grantee ([ bob_i ], 1); Restriction.Sequence steps ]
          ()
      in
      (* every credential fetch happens on the quiet network — World raises
         on drops, and the noisy run must never take a KDC round trip *)
      let bob_fs_creds = World.credentials_for w ~tgt:(World.login w bob_i) fs_p in
      let bob_bank_creds = creds_for bob_p in
      install_noise cfg i net;
      {
        sl_id = i;
        sl_world = w;
        sl_fs = fs;
        sl_bank = bank;
        sl_bank_p = bank_p;
        sl_bob_fs_creds = bob_fs_creds;
        sl_presented_fs = { Guard.pres = Proxy.presentation proxy; pres_proof = None };
        sl_seq_out = seq_out;
        sl_bob_bank_creds = bob_bank_creds;
        sl_presented_bank = { Guard.pres = Proxy.presentation proxy; pres_proof = None };
        sl_alice_account = alice_account;
        sl_bob_account = bob_account;
        sl_fs_of_pair = fst fs_enrolled.(p);
        sl_gates = Hashtbl.create 8;
      })

(* The bank-side presentation for pair p is held by lane p (which granted
   it); lane (p+1) debits with it. The presentation is immutable, so the
   cross-lane read is safe — it is shared data, not shared state. *)
let fixup_seq_presentations lanes_arr =
  let n = Array.length lanes_arr in
  Array.map
    (fun st ->
      let p = (st.sl_id - 1 + n) mod n in
      { st with sl_presented_bank = lanes_arr.(p).sl_presented_fs })
    lanes_arr

let seq_step cfg lanes_arr ~epoch ~lane ~inbox =
  let st = lanes_arr.(lane) in
  let net = st.sl_world.World.net in
  let m = Sim.Net.metrics net in
  Sim.Metrics.guard_here m;
  Fun.protect
    ~finally:(fun () -> Sim.Metrics.unguard m)
    (fun () ->
      let n = cfg.shards in
      let out = ref [] in
      let emit dst w = out := (dst, Wire.encode w) :: !out in
      (* Imports first: progress earned at the partner fs last epoch. *)
      List.iter
        (fun (_src, payload) ->
          match Wire.decode payload with
          | Ok (Wire.L [ Wire.S "x-seq"; Wire.S key; Wire.I progress; Wire.I expires; Wire.S tag ])
            ->
              let import server =
                Guard.import_seq_progress
                  (Accounting_server.guard server)
                  ~caller:st.sl_fs_of_pair ~key ~progress ~expires ~tag
              in
              let ok =
                Result.is_ok (import (Shard.primary_server st.sl_bank))
                && Result.is_ok (import (Shard.standby_server st.sl_bank))
              in
              gate st "import_ok" ok
          | _ -> Sim.Metrics.incr m "lanes.malformed")
        inbox;
      let dst = Shard.primary_node st.sl_bank
      and fallback_dsts = [ Shard.standby_node st.sl_bank ] in
      let transfer () =
        Accounting_server.proxy_transfer ~retries:cfg.retries ~timeout_us:cfg.timeout_us ~dst
          ~fallback_dsts net ~creds:st.sl_bob_bank_creds ~presented:st.sl_presented_bank
          ~payor_account:st.sl_alice_account ~to_account:st.sl_bob_account ~currency:usd
          ~amount:seq_amount
      in
      (match epoch with
      | 0 ->
          (* Out-of-order attack at the bank: no open has happened. *)
          gate st "attack_denied" (Result.is_error (transfer ()));
          (* In-order open at the fs; the hook captures the handover. *)
          let open_ok =
            Result.is_ok
              (File_server.open_ net ~creds:st.sl_bob_fs_creds ~retries:cfg.retries
                 ~timeout_us:cfg.timeout_us ~proxies:[ st.sl_presented_fs ] ~path:"/contract" ())
          in
          gate st "open_ok" open_ok;
          gate st "reopen_denied"
            (Result.is_error
               (File_server.open_ net ~creds:st.sl_bob_fs_creds ~retries:cfg.retries
                  ~timeout_us:cfg.timeout_us ~proxies:[ st.sl_presented_fs ] ~path:"/contract" ()));
          List.iter
            (fun (key, progress, expires, tag) ->
              emit ((lane + 1) mod n)
                (Wire.L
                   [ Wire.S "x-seq"; Wire.S key; Wire.I progress; Wire.I expires; Wire.S tag ]))
            (List.rev !(st.sl_seq_out));
          st.sl_seq_out := []
      | 1 ->
          (* Progress imported above; the gated debit must now clear. *)
          gate st "debit_ok" (match transfer () with Ok a -> a = seq_amount | Error _ -> false);
          Sim.Metrics.incr m "lanes.ops";
          Sim.Metrics.incr m "lanes.ok"
      | 2 -> gate st "repeat_denied" (Result.is_error (transfer ()))
      | _ -> ());
      List.rev !out)

(* ------------------------------------------------------------------ *)
(* Run + merge                                                        *)
(* ------------------------------------------------------------------ *)

let merge_outputs ~nets =
  let merged = Sim.Metrics.create () in
  List.iter (fun net -> Sim.Metrics.merge_into ~into:merged (Sim.Net.metrics net)) nets;
  let trace =
    List.concat
      (List.mapi
         (fun i net ->
           List.map
             (fun (e : Sim.Trace.entry) ->
               Printf.sprintf "lane-%d|%d %s %s" i e.Sim.Trace.time e.Sim.Trace.actor
                 e.Sim.Trace.event)
             (Sim.Trace.entries (Sim.Net.trace net)))
         nets)
  in
  let span_jsonl =
    String.concat ""
      (List.map
         (fun net ->
           match Sim.Net.spans net with
           | Some s -> Sim.Span.to_jsonl (Sim.Span.spans s)
           | None -> "")
         nets)
  in
  (Sim.Metrics.snapshot merged, trace, span_jsonl)

let run_checks cfg =
  let t0 = Unix.gettimeofday () in
  let lanes_arr = setup_checks cfg in
  let ledgers () =
    Array.to_list lanes_arr
    |> List.map (fun st -> Accounting_server.ledger (Shard.authoritative st.cl_bank))
  in
  let before = Invariant.capture (ledgers ()) in
  let sched =
    Sim.Lane.run ~domains:cfg.domains ~lanes:cfg.shards ~min_epochs:cfg.epochs
      ~step:(chk_step cfg lanes_arr) ()
  in
  let conserved = Invariant.check before (ledgers ()) in
  let nets = Array.to_list lanes_arr |> List.map (fun st -> st.cl_world.World.net) in
  let metrics, trace, span_jsonl = merge_outputs ~nets in
  let get k = Option.value (List.assoc_opt k metrics) ~default:0 in
  let double_redemptions =
    Array.to_list lanes_arr
    |> List.map (fun st ->
           Hashtbl.fold (fun _ c acc -> acc + max 0 (c - 1)) st.cl_redeemed 0)
    |> List.fold_left ( + ) 0
  in
  {
    epochs_run = sched.Sim.Lane.epochs_run;
    delivered = sched.Sim.Lane.delivered;
    attempted = get "lanes.ops";
    succeeded = get "lanes.ok";
    remote_sent = get "lanes.remote_sent";
    remote_cleared = get "lanes.cleared";
    remote_bounced = get "lanes.bounced";
    double_redemptions;
    bulletins_applied = get "lanes.bulletins";
    conserved;
    seq_gates = [];
    metrics;
    trace;
    span_jsonl;
    wall_s = Unix.gettimeofday () -. t0;
  }

let seq_gate_names =
  [ "attack_denied"; "open_ok"; "reopen_denied"; "import_ok"; "debit_ok"; "repeat_denied" ]

let run_seq cfg =
  let t0 = Unix.gettimeofday () in
  let lanes_arr = fixup_seq_presentations (setup_seq cfg) in
  let ledgers () =
    Array.to_list lanes_arr
    |> List.map (fun st -> Accounting_server.ledger (Shard.authoritative st.sl_bank))
  in
  let before = Invariant.capture (ledgers ()) in
  let sched =
    Sim.Lane.run ~domains:cfg.domains ~lanes:cfg.shards ~min_epochs:3
      ~step:(seq_step cfg lanes_arr) ()
  in
  let conserved = Invariant.check before (ledgers ()) in
  let nets = Array.to_list lanes_arr |> List.map (fun st -> st.sl_world.World.net) in
  let metrics, trace, span_jsonl = merge_outputs ~nets in
  let get k = Option.value (List.assoc_opt k metrics) ~default:0 in
  let seq_gates =
    List.map
      (fun name ->
        ( name,
          Array.for_all
            (fun st -> Option.value (Hashtbl.find_opt st.sl_gates name) ~default:false)
            lanes_arr ))
      seq_gate_names
  in
  {
    epochs_run = sched.Sim.Lane.epochs_run;
    delivered = sched.Sim.Lane.delivered;
    attempted = get "lanes.ops";
    succeeded = get "lanes.ok";
    remote_sent = 0;
    remote_cleared = 0;
    remote_bounced = 0;
    double_redemptions = 0;
    bulletins_applied = 0;
    conserved;
    seq_gates;
    metrics;
    trace;
    span_jsonl;
    wall_s = Unix.gettimeofday () -. t0;
  }

let run cfg =
  if cfg.shards < 1 then invalid_arg "Cluster.Lanes: at least one shard";
  if cfg.domains < 1 then invalid_arg "Cluster.Lanes: at least one domain";
  match cfg.flavor with Checks | Load -> run_checks cfg | Seq -> run_seq cfg
