(* The cross-realm federation scenario: three realms whose KDCs share
   pairwise inter-realm keys, exercising every boundary the federation
   layer has — on one seeded network, so a same-config rerun must be
   byte-identical (metrics and trace).

   - Forged inter-realm TGTs: a ticket sealed under the B<->C key naming a
     client of realm A (or of realm B itself) must be refused by B's TGS
     with the pinned realm-mismatch error — the hole that would otherwise
     let one federated peer mint tickets for any realm's users.
   - A malformed TGS subkey is refused in-band on both sides instead of
     surfacing as an opaque decrypt failure.
   - Cascaded authorization across three realms: a grantor in realm A
     signs for an intermediate in realm C who delegates to a presenter in
     realm B; the end-server in B verifies the chain with A's and C's
     public keys resolved across the boundary (Verifier.lookup_by_realm).
   - Granter cross-realm cache recovery: after the C<->B link is rekeyed,
     the first remote derive fails, the stale cached cross-TGT is evicted
     and the full path retried once.
   - Grapevine-style membership replication: realm B's replica serves
     membership proxies from realm A's epoch-stamped signed snapshot,
     keeps serving through a partition of realm A, fails closed past the
     staleness bound, and recovers on heal with a fresh snapshot.

   Inter-realm links authenticate as nodes throughout: the replica pulls
   snapshots under its own principal, and user rights only ever cross a
   boundary inside tickets and signed proxies. *)

type config = {
  seed : string;
  members : int;  (** direct members of the replicated group *)
  staleness_bound_us : int;  (** replica staleness bound *)
}

let minute = 60_000_000

let default = { seed = "federation"; members = 3; staleness_bound_us = 10 * minute }

type outcome = {
  forged_refused : bool;  (** foreign-client forgery bounced at B's TGS *)
  forged_error : string;  (** the pinned realm-mismatch error *)
  forged_local_refused : bool;  (** peer minting B's own users also bounced *)
  subkey_server_error : string;  (** wire-level bad subkey, refused in-band *)
  subkey_client_error : string;  (** client-side validation before sending *)
  cascade_ok : bool;  (** A-grantor -> C-intermediate -> B-presenter chain served *)
  granter_retry_ok : bool;  (** post-rekey derive recovered via evict + retry *)
  cross_tgs : int;  (** cross-realm TGTs accepted at remote TGSs *)
  warm_asserts : int;  (** replica membership proxies before the partition *)
  membership_read_ok : bool;  (** group-ACL read at the end-server succeeded *)
  non_member_refused : bool;
  refresh_partitioned_failed : bool;  (** pull across the cut failed *)
  partitioned_asserts : int;  (** still served from the replica during the cut *)
  stale_denied : bool;  (** fail closed past the staleness bound *)
  stale_error : string;
  healed_refresh_ok : bool;
  healed_asserts : int;
  replica_epoch : int;
  replica_hits : int;
  replica_stale_denials : int;
  snapshots_applied : int;
  metrics : (string * int) list;
  trace : string list;
}

let ok_or ctx = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "Cluster.Federation.run setup (%s): %s" ctx e)

let parse_err reply =
  match Wire.decode reply with
  | Error e -> "undecodable reply: " ^ e
  | Ok v -> (
      match Result.bind (Wire.field v 0) Wire.to_string with
      | Ok "err" -> (
          match Result.bind (Wire.field v 1) Wire.to_string with
          | Ok m -> m
          | Error e -> "malformed error reply: " ^ e)
      | Ok _ -> "<accepted>"
      | Error e -> e)

let run cfg =
  let wa = World.create ~seed:cfg.seed ~realm:"realm-a" () in
  let net = wa.World.net in
  let wb = World.create_in net ~realm:"realm-b" () in
  let wc = World.create_in net ~realm:"realm-c" () in
  let advance us = Sim.Clock.advance (Sim.Net.clock net) us in
  Kdc.federate wa.World.kdc wb.World.kdc;
  Kdc.federate wa.World.kdc wc.World.kdc;
  (* The B<->C trust is installed with a key the scenario keeps, so it can
     play the hostile peer and forge under it. *)
  let key_bc = Sim.Net.fresh_key net in
  Kdc.add_cross_realm wb.World.kdc ~peer_realm:wc.World.realm ~key:key_bc;
  Kdc.add_cross_realm wc.World.kdc ~peer_realm:wb.World.realm ~key:key_bc;
  (* --- principals --- *)
  let members =
    Array.init cfg.members (fun i -> fst (World.enrol wa (Printf.sprintf "member-%d" i)))
  in
  let u0 = members.(0) in
  let alice, _, alice_rsa = World.enrol_pk wa "alice" in
  let gs_p, gs_key, gs_rsa = World.enrol_pk wa "groups" in
  let rep_p, rep_key = World.enrol wb "groups-replica" in
  let dana, _ = World.enrol wb "dana" in
  let bob, _, bob_rsa = World.enrol_pk wc "bob" in
  let dave, dave_key = World.enrol wc "dave" in
  (* Public keys resolve across the boundary by realm routing — the three
     directories are never merged. *)
  let routed =
    Verifier.lookup_by_realm
      [
        (wa.World.realm, Directory.public wa.World.dir);
        (wb.World.realm, Directory.public wb.World.dir);
        (wc.World.realm, Directory.public wc.World.dir);
      ]
  in
  (* --- realm A's group server and realm B's replica of it --- *)
  let gs =
    ok_or "group server"
      (Group_server.create net ~me:gs_p ~my_key:gs_key ~kdc:wa.World.kdc_name
         ~signing_key:gs_rsa ())
  in
  Group_server.install gs;
  Array.iter (fun m -> Group_server.add_member gs ~group:"eng" m) members;
  let replica =
    ok_or "replica"
      (Group_replica.create net ~me:rep_p ~my_key:rep_key ~kdc:wb.World.kdc_name ~origin:gs_p
         ~origin_pub:gs_rsa.Crypto.Rsa.pub ~staleness_bound_us:cfg.staleness_bound_us ())
  in
  Group_replica.install replica;
  (* --- the end-server in realm B --- *)
  let fs_p, fs_key = World.enrol wb "fileserver" in
  let fs2_p, fs2_key = World.enrol wb "fileserver-2" in
  let acl = Acl.create () in
  Acl.add acl ~target:"/pub/spec"
    { Acl.subject = Acl.Principal_is alice; rights = [ "read" ]; restrictions = [] };
  Acl.add acl ~target:"/eng/wiki"
    {
      Acl.subject = Acl.Group (Group_replica.group_name replica "eng");
      rights = [ "read" ];
      restrictions = [];
    };
  let fs = File_server.create net ~me:fs_p ~my_key:fs_key ~lookup_pub:routed ~acl () in
  File_server.install fs;
  File_server.put_direct fs ~path:"/pub/spec" "the spec";
  File_server.put_direct fs ~path:"/eng/wiki" "engineering wiki";
  let fs2 = File_server.create net ~me:fs2_p ~my_key:fs2_key ~acl:(Acl.create ()) () in
  File_server.install fs2;
  (* --- forged inter-realm TGTs (the tentpole hole) --- *)
  let forge ~client_realm =
    let mallory = Principal.make ~realm:client_realm "mallory" in
    let session_key = Sim.Net.fresh_key net in
    let now = Sim.Net.now net in
    let body =
      {
        Ticket.client = mallory;
        service = wb.World.kdc_name;
        session_key;
        auth_time = now;
        expires = now + World.hour;
        authorization_data = [];
      }
    in
    let blob = Ticket.seal ~service_key:key_bc ~nonce:(Sim.Net.fresh_nonce net) body in
    let auth =
      { Ticket.auth_client = mallory; timestamp = now; subkey = None; auth_data = [] }
    in
    let auth_blob =
      Ticket.seal_authenticator ~session_key ~nonce:(Sim.Net.fresh_nonce net) auth
    in
    let request =
      Wire.encode
        (Wire.L
           [ Wire.S "tgs"; Wire.S blob; Wire.S auth_blob; Principal.to_wire fs_p; Wire.I 7 ])
    in
    match Sim.Net.rpc net ~src:"mallory" ~dst:(Principal.to_string wb.World.kdc_name) request with
    | Error e -> "transport: " ^ e
    | Ok reply -> parse_err reply
  in
  (* The C<->B key may only speak for realm C's principals: forging a
     realm-A client or one of B's own users must name the mismatch. *)
  let forged_error = forge ~client_realm:wa.World.realm in
  let forged_refused =
    forged_error
    = Printf.sprintf "tgs: cross-realm TGT client realm %s does not match trusting realm %s"
        wa.World.realm wc.World.realm
  in
  let forged_local_error = forge ~client_realm:wb.World.realm in
  let forged_local_refused =
    forged_local_error
    = Printf.sprintf "tgs: cross-realm TGT client realm %s does not match trusting realm %s"
        wb.World.realm wc.World.realm
  in
  (* --- malformed TGS subkey, both sides --- *)
  let tgt_dana = World.login wb dana in
  let subkey_server_error =
    let now = Sim.Net.now net in
    let auth =
      {
        Ticket.auth_client = dana;
        timestamp = now;
        subkey = Some "short-subkey";
        auth_data = [];
      }
    in
    let auth_blob =
      Ticket.seal_authenticator ~session_key:tgt_dana.Ticket.session_key
        ~nonce:(Sim.Net.fresh_nonce net) auth
    in
    let request =
      Wire.encode
        (Wire.L
           [
             Wire.S "tgs";
             Wire.S tgt_dana.Ticket.ticket_blob;
             Wire.S auth_blob;
             Principal.to_wire fs_p;
             Wire.I 8;
           ])
    in
    match
      Sim.Net.rpc net ~src:(Principal.to_string dana)
        ~dst:(Principal.to_string wb.World.kdc_name) request
    with
    | Error e -> "transport: " ^ e
    | Ok reply -> parse_err reply
  in
  let subkey_client_error =
    match
      Kdc.Client.derive net ~kdc:wb.World.kdc_name ~tgt:tgt_dana ~target:fs_p
        ~subkey:"short-subkey" ()
    with
    | Error e -> e
    | Ok _ -> "<accepted>"
  in
  (* --- cascaded authorization across three realms --- *)
  let cross_creds whome who ~remote ~target =
    let tgt = World.login whome who in
    let cross =
      ok_or "cross TGT"
        (Kdc.Client.derive net ~kdc:whome.World.kdc_name ~tgt ~target:remote.World.kdc_name ())
    in
    ok_or "remote derive" (Kdc.Client.derive net ~kdc:remote.World.kdc_name ~tgt:cross ~target ())
  in
  let cascade_ok =
    let drbg = Sim.Net.drbg net in
    let now = Sim.Net.now net in
    let to_bob =
      Proxy.grant_pk ~drbg ~now ~expires:(now + (4 * World.hour)) ~grantor:alice
        ~grantor_key:alice_rsa
        ~restrictions:
          [
            Restriction.Authorized [ { Restriction.target = "/pub/spec"; ops = [ "read" ] } ];
            Restriction.Grantee ([ bob ], 1);
          ]
        ()
    in
    let to_dana =
      ok_or "delegate"
        (Proxy.delegate_pk ~drbg ~now ~expires:(now + (4 * World.hour)) ~intermediate:bob
           ~intermediate_key:bob_rsa
           ~restrictions:[ Restriction.Grantee ([ dana ], 1) ]
           to_bob)
    in
    let dana_fs = World.credentials_for wb ~tgt:tgt_dana fs_p in
    let presented =
      File_server.attach net ~proxy:to_dana ~server:fs_p ~operation:"read" ~path:"/pub/spec"
    in
    File_server.read net ~creds:dana_fs ~proxies:[ presented ] ~path:"/pub/spec" ()
    = Ok "the spec"
  in
  (* --- granter recovery after the C<->B link is rekeyed --- *)
  let granter_retry_ok =
    let g = ok_or "dave granter" (Granter.create net ~me:dave ~my_key:dave_key ~kdc:wc.World.kdc_name) in
    let first = Granter.credentials_for g fs_p in
    (* Rekey the link: the cached cross-realm TGT is now sealed under a key
       B no longer holds, so the next remote derive fails until the granter
       evicts it and walks the path again. *)
    Kdc.federate wc.World.kdc wb.World.kdc;
    let second = Granter.credentials_for g fs2_p in
    Result.is_ok first && Result.is_ok second
  in
  (* --- membership replication: warm phase --- *)
  ignore (ok_or "initial refresh" (Group_replica.refresh replica));
  let member_creds =
    Array.map (fun m -> cross_creds wa m ~remote:wb ~target:rep_p) members
  in
  let assert_eng creds = Group_server.request_membership_proxy net ~creds ~group:"eng" ~end_server:fs_p () in
  let count_asserts () =
    Array.fold_left
      (fun acc creds -> if Result.is_ok (assert_eng creds) then acc + 1 else acc)
      0 member_creds
  in
  let warm_asserts = count_asserts () in
  let membership_read_ok =
    let proxy = ok_or "u0 membership" (assert_eng member_creds.(0)) in
    let u0_fs = cross_creds wa u0 ~remote:wb ~target:fs_p in
    let presented =
      Guard.present ~proxy ~time:(Sim.Net.now net) ~server:fs_p ~operation:"assert-membership"
        ~target:"eng" ()
    in
    File_server.read net ~creds:u0_fs ~group_proxies:[ presented ] ~path:"/eng/wiki" ()
    = Ok "engineering wiki"
  in
  let non_member_refused =
    let dana_rep = World.credentials_for wb ~tgt:tgt_dana rep_p in
    Result.is_error (assert_eng dana_rep)
  in
  (* --- partition realm A away from the replica --- *)
  let t0 = Sim.Net.now net in
  let heal_at = t0 + cfg.staleness_bound_us + (3 * minute) in
  Sim.Net.install_fault_plan net
    (Sim.Fault.plan ~seed:cfg.seed
       [
         Sim.Fault.partition
           ~a:[ Principal.to_string gs_p; Principal.to_string wa.World.kdc_name ]
           ~b:[ Principal.to_string rep_p ]
           ~at:t0 ~until:heal_at ();
       ]);
  let refresh_partitioned_failed = Result.is_error (Group_replica.refresh replica) in
  (* Inside the bound the replica keeps answering from its snapshot. *)
  let partitioned_asserts = count_asserts () in
  (* Past the bound it fails closed. *)
  advance (cfg.staleness_bound_us + minute);
  let stale_error =
    match assert_eng member_creds.(0) with Error e -> e | Ok _ -> "<served>"
  in
  let stale_denied = stale_error <> "<served>" && Group_replica.stale replica in
  (* --- heal: pull a fresh snapshot, service resumes --- *)
  advance (3 * minute);
  let healed_refresh_ok = Result.is_ok (Group_replica.refresh replica) in
  let healed_asserts = count_asserts () in
  Sim.Net.clear_fault_plan net;
  let m = Sim.Net.metrics net in
  {
    forged_refused;
    forged_error;
    forged_local_refused;
    subkey_server_error;
    subkey_client_error;
    cascade_ok;
    granter_retry_ok;
    cross_tgs = Sim.Metrics.get m "kdc.tgs_cross";
    warm_asserts;
    membership_read_ok;
    non_member_refused;
    refresh_partitioned_failed;
    partitioned_asserts;
    stale_denied;
    stale_error;
    healed_refresh_ok;
    healed_asserts;
    replica_epoch = Group_replica.epoch replica;
    replica_hits = Sim.Metrics.get m "membership.replica_hits";
    replica_stale_denials = Sim.Metrics.get m "membership.replica_stale_denials";
    snapshots_applied = Sim.Metrics.get m "membership.snapshots_applied";
    metrics = Sim.Metrics.snapshot m;
    trace =
      List.map
        (fun (e : Sim.Trace.entry) ->
          Printf.sprintf "%d %s %s" e.Sim.Trace.time e.Sim.Trace.actor e.Sim.Trace.event)
        (Sim.Trace.entries (Sim.Net.trace net));
  }

(* ------------------------------------------------------------------ *)
(* Lane-parallel variant: one realm per lane                          *)
(* ------------------------------------------------------------------ *)

(* Each lane owns a fully-isolated realm (its own net, KDC, directory,
   group server). The only thing that crosses lanes is what would cross
   realms in production: signed membership snapshots, travelling to the
   next realm in the ring and applied there to a Membership replica. Each
   lane also runs the forged-TGT probe against its own TGS. Because the
   snapshots are self-authenticating (the publisher's public key travels
   with the first message) and delivery order is canonical, the digest is
   byte-identical for any [domains]. *)

type lanes_outcome = {
  l_epochs_run : int;
  l_delivered : int;
  l_gates : (string * bool) list;
  l_digest : string;
}

type flane = {
  f_world : World.t;
  f_gs : Group_server.t;
  f_gs_p : Principal.t;
  f_gs_pub : string;  (* serialized public key, ready to ship *)
  f_members : Principal.t array;
  f_late : Principal.t;
  f_outsider : Principal.t;
  f_log : Buffer.t;
  mutable f_sub : Membership.t option;
  mutable f_forged_refused : bool;
  mutable f_applied : int;
  mutable f_fresh_total : int;
  mutable f_member_checks_ok : bool;
  mutable f_stale_denied : bool;
}

let logf st fmt = Printf.ksprintf (fun s -> Buffer.add_string st.f_log (s ^ "\n")) fmt

let forged_probe_lane st =
  (* Two fabricated peers trusted by this lane's KDC; a ticket sealed under
     peer-y's key naming a peer-x client must bounce with the realm
     mismatch. *)
  let w = st.f_world in
  let net = w.World.net in
  let key_y = Sim.Net.fresh_key net in
  Kdc.add_cross_realm w.World.kdc ~peer_realm:"peer-x" ~key:(Sim.Net.fresh_key net);
  Kdc.add_cross_realm w.World.kdc ~peer_realm:"peer-y" ~key:key_y;
  let mallory = Principal.make ~realm:"peer-x" "mallory" in
  let session_key = Sim.Net.fresh_key net in
  let now = Sim.Net.now net in
  let body =
    {
      Ticket.client = mallory;
      service = w.World.kdc_name;
      session_key;
      auth_time = now;
      expires = now + World.hour;
      authorization_data = [];
    }
  in
  let blob = Ticket.seal ~service_key:key_y ~nonce:(Sim.Net.fresh_nonce net) body in
  let auth = { Ticket.auth_client = mallory; timestamp = now; subkey = None; auth_data = [] } in
  let auth_blob = Ticket.seal_authenticator ~session_key ~nonce:(Sim.Net.fresh_nonce net) auth in
  let request =
    Wire.encode
      (Wire.L
         [
           Wire.S "tgs";
           Wire.S blob;
           Wire.S auth_blob;
           Principal.to_wire w.World.kdc_name;
           Wire.I 9;
         ])
  in
  let err =
    match Sim.Net.rpc net ~src:"mallory" ~dst:(Principal.to_string w.World.kdc_name) request with
    | Error e -> "transport: " ^ e
    | Ok reply -> parse_err reply
  in
  st.f_forged_refused <-
    err = "tgs: cross-realm TGT client realm peer-x does not match trusting realm peer-y";
  logf st "forged-tgt: %s" err

let snapshot_message st snap =
  Wire.encode
    (Wire.L
       [
         Principal.to_wire st.f_gs_p;
         Wire.S st.f_gs_pub;
         Membership.snapshot_to_wire snap;
       ])

let apply_message st payload =
  let open Wire in
  let parsed =
    let* v = Wire.decode payload in
    let* origin = Result.bind (field v 0) Principal.of_wire in
    let* pub_bytes = Result.bind (field v 1) to_string in
    let* snap = Result.bind (field v 2) Membership.snapshot_of_wire in
    Ok (origin, pub_bytes, snap)
  in
  match parsed with
  | Error e -> logf st "snapshot decode failed: %s" e
  | Ok (origin, pub_bytes, snap) -> (
      let sub =
        match st.f_sub with
        | Some sub -> sub
        | None ->
            let pub =
              match Crypto.Rsa.public_of_bytes pub_bytes with
              | Some pub -> pub
              | None -> failwith "Cluster.Federation lanes: bad public key bytes"
            in
            let sub =
              Membership.create ~server:origin ~server_pub:pub
                ~now:(Sim.Net.now st.f_world.World.net) ()
            in
            st.f_sub <- Some sub;
            sub
      in
      match Membership.apply sub snap with
      | Error e -> logf st "snapshot apply failed: %s" e
      | Ok Membership.Ignored -> logf st "snapshot ignored (epoch %d)" snap.Membership.s_epoch
      | Ok (Membership.Applied { fresh }) ->
          st.f_applied <- st.f_applied + 1;
          st.f_fresh_total <- st.f_fresh_total + fresh;
          (* Spot-check the replicated table against the snapshot itself,
             plus a principal that must NOT be a member. *)
          let all_in =
            List.for_all
              (fun (g, ms) -> List.for_all (fun p -> Membership.member sub ~group:g p) ms)
              snap.Membership.s_groups
          in
          let outsider_out = not (Membership.member sub ~group:"eng" st.f_outsider) in
          st.f_member_checks_ok <- all_in && outsider_out;
          logf st "snapshot applied: epoch=%d fresh=%d checks=%b" snap.Membership.s_epoch fresh
            st.f_member_checks_ok)

let run_lanes ?(lanes = 3) ~domains cfg =
  if lanes < 2 then invalid_arg "Cluster.Federation.run_lanes: need at least 2 lanes";
  let states =
    Array.init lanes (fun i ->
        let w =
          World.create
            ~seed:(Sim.Lane.seed_for ~seed:cfg.seed (string_of_int i))
            ~realm:(Printf.sprintf "realm-%d" i) ()
        in
        let members =
          Array.init cfg.members (fun j ->
              fst (World.enrol w (Printf.sprintf "user-%d-%d" i j)))
        in
        let late, _ = World.enrol w (Printf.sprintf "late-%d" i) in
        let outsider, _ = World.enrol w (Printf.sprintf "outsider-%d" i) in
        let gs_p, gs_key, gs_rsa = World.enrol_pk w "groups" in
        let gs =
          ok_or "lane group server"
            (Group_server.create w.World.net ~me:gs_p ~my_key:gs_key ~kdc:w.World.kdc_name
               ~signing_key:gs_rsa ())
        in
        Group_server.install gs;
        Array.iter (fun m -> Group_server.add_member gs ~group:"eng" m) members;
        {
          f_world = w;
          f_gs = gs;
          f_gs_p = gs_p;
          f_gs_pub = Crypto.Rsa.public_to_bytes gs_rsa.Crypto.Rsa.pub;
          f_members = members;
          f_late = late;
          f_outsider = outsider;
          f_log = Buffer.create 256;
          f_sub = None;
          f_forged_refused = false;
          f_applied = 0;
          f_fresh_total = 0;
          f_member_checks_ok = false;
          f_stale_denied = false;
        })
  in
  let step ~epoch ~lane ~inbox =
    let st = states.(lane) in
    let next = (lane + 1) mod lanes in
    List.iter (fun (_src, payload) -> apply_message st payload) inbox;
    match epoch with
    | 0 ->
        forged_probe_lane st;
        let snap = ok_or "publish 1" (Group_server.publish st.f_gs) in
        [ (next, snapshot_message st snap) ]
    | 1 ->
        (* The origin's table grows; the next publication must carry
           exactly one fresh pair to the replica downstream. *)
        Group_server.add_member st.f_gs ~group:"eng" st.f_late;
        let snap = ok_or "publish 2" (Group_server.publish st.f_gs) in
        [ (next, snapshot_message st snap) ]
    | 2 ->
        (* Nothing more arrives: push the replica past its bound and pin
           the fail-closed refusal. *)
        let net = st.f_world.World.net in
        Sim.Clock.advance (Sim.Net.clock net) (Membership.default_staleness_bound_us + minute);
        (match st.f_sub with
        | None -> logf st "no replica to staleness-check"
        | Some sub -> (
            match
              Membership.check sub ~now:(Sim.Net.now net) ~group:"eng" st.f_members.(0)
            with
            | Error e ->
                st.f_stale_denied <- true;
                logf st "stale check: %s" e
            | Ok () -> logf st "stale check unexpectedly served"));
        []
    | _ -> []
  in
  let o = Sim.Lane.run ~domains ~lanes ~min_epochs:3 ~step () in
  let all f = Array.for_all f states in
  let digest = Buffer.create 1024 in
  Array.iteri
    (fun i st ->
      Buffer.add_string digest (Printf.sprintf "== lane %d ==\n" i);
      Buffer.add_buffer digest st.f_log;
      List.iter
        (fun (k, v) -> Buffer.add_string digest (Printf.sprintf "%s=%d\n" k v))
        (Sim.Metrics.snapshot (Sim.Net.metrics st.f_world.World.net));
      List.iter
        (fun (e : Sim.Trace.entry) ->
          Buffer.add_string digest
            (Printf.sprintf "lane-%d|%d %s %s\n" i e.Sim.Trace.time e.Sim.Trace.actor
               e.Sim.Trace.event))
        (Sim.Trace.entries (Sim.Net.trace st.f_world.World.net)))
    states;
  {
    l_epochs_run = o.Sim.Lane.epochs_run;
    l_delivered = o.Sim.Lane.delivered;
    l_gates =
      [
        ("forged TGT refused on every lane", all (fun st -> st.f_forged_refused));
        ("two snapshots applied per lane", all (fun st -> st.f_applied = 2));
        ( "fresh counts: full table then one growth",
          all (fun st -> st.f_fresh_total = cfg.members + 1) );
        ("replicated tables match snapshots", all (fun st -> st.f_member_checks_ok));
        ("stale replicas fail closed", all (fun st -> st.f_stale_denied));
        ("all snapshots delivered", o.Sim.Lane.delivered = 2 * lanes && o.Sim.Lane.stranded = 0);
      ];
    l_digest = Buffer.contents digest;
  }
