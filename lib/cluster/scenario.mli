(** Cluster chaos scenario: a sharded, replicated accounting service under
    an open-loop check-clearing workload with a seeded mid-run primary
    crash.

    Deterministic end to end: the same [config] (seed included) produces
    byte-identical metrics snapshots and traces, crash, failover, and
    promotion included. *)

type crash_target =
  | No_crash
  | Shop_primary  (** crash the primary of the shard holding the shop account *)
  | Buyer_primary  (** crash the primary of buyer-0's shard (a drawee) *)

type config = {
  seed : string;
  shards : int;  (** bank shards, each a primary/standby pair *)
  ops : int;
  buyers : int;
  drop : float;
  duplicate : float;
  crash : crash_target;
  crash_after_us : int;  (** crash instant, relative to workload start *)
  retries : int;  (** client + collect retry budget *)
  timeout_us : int;
}

val default : config
(** 4 shards, 60 ops, 4 buyers, 5% drop/duplicate, shop-shard primary
    crashed permanently 30ms in, 8 retries @ 10ms. *)

type outcome = {
  shard_ids : string list;
  attempted : int;
  succeeded : int;
  failed : int;
  conserved : (unit, string) result;
      (** per-currency conservation across the {e authoritative} replica of
          every shard — the promoted standby where the primary died *)
  redemptions : (string * int) list;  (** check number -> times paid *)
  double_redemptions : int;  (** must be 0: exactly-once across failover *)
  failovers : int;
  promotions : int;
  repl_shipped : int;
  repl_failures : int;
  dedups : int;
  retries_used : int;
  gave_up : int;
  messages : int;
  p50_us : int;  (** per-op virtual latency percentiles *)
  p99_us : int;
  crashed_node : string option;
  metrics : (string * int) list;
  trace : string list;
}

val run : config -> outcome
