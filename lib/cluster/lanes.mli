(** Lane-parallel accounting cluster: one fully-isolated world per shard,
    scheduled by {!Sim.Lane} so independent shards execute on separate
    OCaml 5 domains while same-seed runs stay byte-identical — merged
    metrics snapshot, trace, and span JSONL are the same for any [domains]
    value, including the [domains = 1] inline schedule.

    Cross-shard traffic — check clearing (check / collect / advice legs),
    revocation bulletin pushes, and sequence-progress handovers — travels
    as Wire-encoded lane messages delivered at epoch boundaries in
    canonical order; everything else is ordinary in-lane secure RPC
    against the lane's replicated bank shard. *)

type flavor =
  | Checks  (** mixed workload: reads, transfers, deposits, remote purchases *)
  | Seq  (** cross-lane {!Restriction.Sequence}: fs open gates a bank debit *)
  | Load  (** skewed, read-heavy mix with pipelined shop sweeps *)

type config = {
  seed : string;
  shards : int;  (** = lanes; [Seq] needs at least 2 *)
  domains : int;
  epochs : int;  (** workload epochs; draining may add a few more *)
  ops_per_epoch : int;  (** per lane *)
  buyers : int;  (** per shard on average (ring-placed, counts vary) *)
  drop : float;
  duplicate : float;
  retries : int;
  timeout_us : int;
  flavor : flavor;
}

val default : config

type outcome = {
  epochs_run : int;
  delivered : int;  (** cross-lane messages *)
  attempted : int;
  succeeded : int;
  remote_sent : int;  (** checks mailed to another lane's shop *)
  remote_cleared : int;
  remote_bounced : int;
  double_redemptions : int;  (** must be 0: a check paid twice at a drawee *)
  bulletins_applied : int;  (** must equal [shards] for [Checks]/[Load] *)
  conserved : (unit, string) result;
  seq_gates : (string * bool) list;
      (** [Seq] flavor acceptance gates (attack_denied, open_ok,
          reopen_denied, import_ok, debit_ok, repeat_denied), each true iff
          it held on {e every} lane *)
  metrics : (string * int) list;  (** per-lane metrics merged in lane order *)
  trace : string list;  (** ["lane-<i>|time actor event"], lane-major *)
  span_jsonl : string;  (** per-lane span JSONL concatenated in lane order *)
  wall_s : float;
}

val run : config -> outcome
(** Raises [Invalid_argument] on nonsensical configs (no shards, no
    domains, [Seq] with fewer than 2 shards) and [Failure] on setup
    errors. Determinism contract: for a fixed config modulo [domains],
    [metrics], [trace], [span_jsonl], and every count above except
    [wall_s] are byte-identical. *)
