(* One bank shard: a primary/standby pair of accounting servers sharing a
   single *logical* identity.

   The sharing is the crux. Checks are drawn on, endorsed to, and
   issued-for the logical shard principal, and the guard verifies
   [Issued_for] against its own [me] — so both replicas run with the same
   [me] and the same long-term key (one directory entry), differing only in
   the physical node name each registers on the network. A ticket for the
   shard is honoured by either replica, and a client that fails over
   re-sends the *same* request bytes to the standby.

   Replication is replay-log shipping: the primary journals every ledger
   primitive its handler executes plus every check number it redeems, and
   [on_handled] — which fires after the handler and the response-cache
   insert but *before* the reply is transmitted — ships the batch, together
   with the request's authenticator digest and sealed reply, to the standby
   over an ordinary authenticated Secure_rpc exchange. Ordering gives the
   guarantee: any reply a client ever saw was already replicated, so the
   standby can answer that client's retransmission from its seeded response
   cache without executing the request a second time.

   The standby refuses fresh work ("standby: not primary") until it either
   observes the primary down or has already promoted itself; promotion is
   sticky, so a primary that flaps cannot re-split the shard's brain. *)

type replica = {
  node : string;
  server : Accounting_server.t;
  cache : Secure_rpc.cache;
}

type t = {
  net : Sim.Net.t;
  logical : Principal.t;
  key : string;
  primary : replica;
  standby : replica;
  repl_creds : Ticket.credentials;
  repl_retry : Sim.Retry.policy option;
  bulk_every : int;
  pending_ops : Ledger.op list ref;  (* newest first *)
  pending_redeems : string list ref;  (* newest first *)
  pending_seq : (string * int * int * string) list ref;
      (* unshipped sequence-progress movements (key, progress, expires,
         grantor tag), newest first *)
  pending_triples : (string * int * string) list ref;
      (* unshipped (auth_id, expires, sealed reply) triples, newest first *)
  mutable handled_since_ship : int;
  mutable promoted : bool;
}

let ( let* ) = Result.bind

let journal_fn t op = t.pending_ops := op :: !(t.pending_ops)

let create net ~me ~my_key ~kdc ~signing_key ~lookup ?collect_retry ?repl_retry
    ?(bulk_every = 1) ?revocation_authority ?staleness_bound_us ~primary_node ~standby_node
    () =
  if primary_node = standby_node then
    invalid_arg "Shard.create: replicas need distinct node names";
  if bulk_every < 1 then invalid_arg "Shard.create: bulk_every must be positive";
  let mk () =
    (* Each replica subscribes to bulletins with its *own* state: a
       partition that isolates one physical node must age that replica
       toward its staleness bound without touching the other. *)
    let revocation =
      Option.map
        (fun (authority, authority_pub) ->
          Revocation.create ~authority ~authority_pub ?staleness_bound_us
            ~now:(Sim.Net.now net) ())
        revocation_authority
    in
    Accounting_server.create net ~me ~my_key ~kdc ~signing_key ~lookup ?collect_retry
      ?revocation ()
  in
  let* primary_server = mk () in
  let* standby_server = mk () in
  (* The primary authenticates to its own logical identity for the
     replication channel: only the shard itself can feed its standby. *)
  let* repl_creds =
    Kdc.Client.authenticate net ~kdc ~client:me ~client_key:my_key ~service:me ()
  in
  let t =
    {
      net;
      logical = me;
      key = my_key;
      primary = { node = primary_node; server = primary_server;
                  cache = Secure_rpc.create_cache () };
      standby = { node = standby_node; server = standby_server;
                  cache = Secure_rpc.create_cache () };
      repl_creds;
      repl_retry;
      bulk_every;
      pending_ops = ref [];
      pending_redeems = ref [];
      pending_seq = ref [];
      pending_triples = ref [];
      handled_since_ship = 0;
      promoted = false;
    }
  in
  Ledger.set_journal (Accounting_server.ledger primary_server) (Some (journal_fn t));
  Accounting_server.set_redemption_observer primary_server
    (Some (fun n -> t.pending_redeems := n :: !(t.pending_redeems)));
  (* Sequence progress is server-side authorization state just like the
     accept-once records: every movement on the primary — a granted
     sequence step or an imported cross-server handover — journals here so
     the standby's tracker survives a failover. *)
  Guard.set_seq_observer
    (Accounting_server.guard primary_server)
    (Some
       (fun ~key ~progress ~expires ~tag ->
         t.pending_seq := (key, progress, expires, tag) :: !(t.pending_seq)));
  Ok t

let logical t = t.logical
let primary_node t = t.primary.node
let standby_node t = t.standby.node
let primary_server t = t.primary.server
let standby_server t = t.standby.server
let promoted t = t.promoted

let primary_down t = Sim.Net.is_down t.net t.primary.node

let authoritative t =
  if t.promoted || primary_down t then t.standby.server else t.primary.server

(* Ship every unshipped journal batch and reply triple in ONE replication
   exchange. On failure everything is put back so the next handled request
   re-ships it: the replication request that carries it then is a fresh
   authenticator, and the standby applies each op exactly once (a
   *retransmission* of the same bulk dedups on the standby's own response
   cache instead). *)
let ship_now t =
  let ops = List.rev !(t.pending_ops) in
  let redeems = List.rev !(t.pending_redeems) in
  let seq = List.rev !(t.pending_seq) in
  let triples = List.rev !(t.pending_triples) in
  t.pending_ops := [];
  t.pending_redeems := [];
  t.pending_seq := [];
  t.pending_triples := [];
  t.handled_since_ship <- 0;
  let payload =
    Wire.L
      ([
         Wire.S "x-replicate-bulk";
         Wire.L
           (List.map (fun (a, e, r) -> Wire.L [ Wire.S a; Wire.I e; Wire.S r ]) triples);
         Wire.L (List.map Ledger.op_to_wire ops);
         Wire.L (List.map (fun n -> Wire.S n) redeems);
       ]
      (* The sequence-progress field is optional and appended only when
         non-empty, so runs without sequences ship byte-identical bulks
         (and an older standby parses them unchanged). *)
      @
      match seq with
      | [] -> []
      | _ ->
          [ Wire.L
              (List.map
                 (fun (k, p, e, tg) -> Wire.L [ Wire.S k; Wire.I p; Wire.I e; Wire.S tg ])
                 seq) ])
  in
  let metrics = Sim.Net.metrics t.net in
  let result =
    match t.repl_retry with
    | None -> Secure_rpc.call t.net ~creds:t.repl_creds ~dst:t.standby.node payload
    | Some p ->
        Secure_rpc.call t.net ~creds:t.repl_creds ~dst:t.standby.node
          ~retries:p.Sim.Retry.retries ~timeout_us:p.Sim.Retry.timeout_us
          ~backoff:p.Sim.Retry.bo payload
  in
  match result with
  | Ok _ ->
      Sim.Metrics.incr metrics "cluster.repl_shipped";
      Sim.Metrics.add metrics "cluster.repl_ops_shipped" (List.length ops);
      Sim.Metrics.add metrics "cluster.repl_replies_shipped" (List.length triples)
  | Error _ ->
      Sim.Metrics.incr metrics "cluster.repl_failures";
      t.pending_ops := !(t.pending_ops) @ List.rev ops;
      t.pending_redeems := !(t.pending_redeems) @ List.rev redeems;
      t.pending_seq := !(t.pending_seq) @ List.rev seq;
      t.pending_triples := !(t.pending_triples) @ List.rev triples;
      (* Force the next handled request to re-ship whatever its position in
         the bulk window. *)
      t.handled_since_ship <- t.bulk_every

(* Per-handled-request replication policy, fired by [on_handled] after the
   handler ran and the reply is cached but before it is transmitted.

   Coalescing happens at three levels:

   - a request that journalled nothing (a balance read) ships nothing and
     seeds nothing: re-executing it on a failed-over retransmission is
     idempotent, so replicating its reply bought nothing
     ("cluster.repl_read_skips");
   - a pipelined [Secure_rpc.call_batch] request journals all its items'
     ops under ONE authenticator/reply, so they ride one ship instead of
     one per op — with the strict reply-after-ship ordering fully intact;
   - with [bulk_every = k > 1], mutating requests accumulate and every
     k-th one ships the combined backlog ("cluster.repl_deferred" counts
     the deferrals). The k-th request's own reply still ships before it is
     released; replies released *between* bulk ships trade the strict
     "reply seen => replicated" ordering for fewer replication round
     trips — a client must both lose its reply AND see the primary die
     before the next ship for a duplicate execution window to open. The
     default k = 1 keeps the strict ordering everywhere. *)
let ship t ~auth_id ~expires ~reply =
  let metrics = Sim.Net.metrics t.net in
  let mutating =
    !(t.pending_ops) <> [] || !(t.pending_redeems) <> [] || !(t.pending_seq) <> []
  in
  if (not mutating) && !(t.pending_triples) = [] then
    Sim.Metrics.incr metrics "cluster.repl_read_skips"
  else begin
    t.pending_triples := (auth_id, expires, reply) :: !(t.pending_triples);
    t.handled_since_ship <- t.handled_since_ship + 1;
    if t.handled_since_ship >= t.bulk_every then ship_now t
    else Sim.Metrics.incr metrics "cluster.repl_deferred"
  end

let apply_replication t ctx v =
  if not (Principal.equal ctx.Secure_rpc.rpc_client t.logical) then
    Error "replication: caller is not this shard"
  else
    let open Wire in
    let* triples_w = Result.bind (field v 1) to_list in
    let* ops_w = Result.bind (field v 2) to_list in
    let* redeems_w = Result.bind (field v 3) to_list in
    let* triples =
      List.fold_left
        (fun acc w ->
          let* acc = acc in
          let* auth_id = Result.bind (field w 0) to_string in
          let* expires = Result.bind (field w 1) to_int in
          let* reply = Result.bind (field w 2) to_string in
          Ok ((auth_id, expires, reply) :: acc))
        (Ok []) triples_w
      |> Result.map List.rev
    in
    let* ops =
      List.fold_left
        (fun acc w ->
          let* acc = acc in
          let* op = Ledger.op_of_wire w in
          Ok (op :: acc))
        (Ok []) ops_w
      |> Result.map List.rev
    in
    let* redeemed =
      List.fold_left
        (fun acc w ->
          let* acc = acc in
          let* n = to_string w in
          Ok (n :: acc))
        (Ok []) redeems_w
      |> Result.map List.rev
    in
    (* Optional trailing field: bulks from runs without sequence traffic
       (and from older primaries) simply omit it. *)
    let* seq =
      match field v 4 with
      | Error _ -> Ok []
      | Ok w ->
          let* seq_w = to_list w in
          List.fold_left
            (fun acc sw ->
              let* acc = acc in
              let* key = Result.bind (field sw 0) to_string in
              let* progress = Result.bind (field sw 1) to_int in
              let* expires = Result.bind (field sw 2) to_int in
              let* tag = Result.bind (field sw 3) to_string in
              Ok ((key, progress, expires, tag) :: acc))
            (Ok []) seq_w
          |> Result.map List.rev
    in
    let* () = Accounting_server.apply_replicated t.standby.server ~seq ~ops ~redeemed () in
    let now = Sim.Net.now t.net in
    List.iter
      (fun (auth_id, expires, reply) ->
        Secure_rpc.seed_response t.standby.cache ~now ~auth_id ~expires ~reply)
      triples;
    Sim.Metrics.incr (Sim.Net.metrics t.net) "cluster.repl_applied";
    Sim.Metrics.add (Sim.Net.metrics t.net) "cluster.repl_replies_seeded"
      (List.length triples);
    Ok (S "replicated")

let standby_handle t ctx payload =
  match payload with
  | Wire.L (Wire.S "x-replicate-bulk" :: _) -> apply_replication t ctx payload
  | Wire.L (Wire.S "apply-bulletin" :: _) ->
      (* Revocation bulletins bypass the promotion gate: a standby that
         refused them would fail open the moment it promoted. The bulletin
         is self-authenticating, so accepting it here grants nothing. *)
      Accounting_server.handle t.standby.server ctx payload
  | _ ->
      if t.promoted || primary_down t then begin
        if not t.promoted then begin
          t.promoted <- true;
          Sim.Metrics.incr (Sim.Net.metrics t.net) "cluster.promotions";
          Sim.Trace.record (Sim.Net.trace t.net) ~time:(Sim.Net.now t.net)
            ~actor:t.standby.node
            (Printf.sprintf "promoted to primary for %s"
               (Principal.to_string t.logical))
        end;
        Accounting_server.handle t.standby.server ctx payload
      end
      else Error "standby: not primary"

let install t =
  Secure_rpc.serve t.net ~me:t.logical ~my_key:t.key ~node:t.primary.node
    ~cache:t.primary.cache
    ~on_handled:(fun ~auth_id ~expires ~reply -> ship t ~auth_id ~expires ~reply)
    (Accounting_server.handle t.primary.server);
  Secure_rpc.serve t.net ~me:t.logical ~my_key:t.key ~node:t.standby.node
    ~cache:t.standby.cache (standby_handle t)

(* Provision funds on both replicas identically. The primary's journal is
   suppressed for the duration so setup minting is not double-applied when
   the first real request ships the replay log. *)
let mint t ~name ~currency amount =
  let pl = Accounting_server.ledger t.primary.server in
  Ledger.set_journal pl None;
  let r = Ledger.mint pl ~name ~currency amount in
  Ledger.set_journal pl (Some (journal_fn t));
  let* () = r in
  Ledger.mint (Accounting_server.ledger t.standby.server) ~name ~currency amount

let set_route t ~drawee ?via ~next_hop () =
  Accounting_server.set_route t.primary.server ~drawee ?via ~next_hop ();
  Accounting_server.set_route t.standby.server ~drawee ?via ~next_hop ()

let warm t ~drawee =
  let* () = Accounting_server.warm t.primary.server ~drawee in
  Accounting_server.warm t.standby.server ~drawee

let apply_bulletin t b =
  let* p = Accounting_server.apply_bulletin t.primary.server b in
  let* s = Accounting_server.apply_bulletin t.standby.server b in
  Ok (p || s)
