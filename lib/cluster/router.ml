(* Client-side shard resolution: one router per client principal.

   The router owns no authority — it just computes placement from the ring
   (the same pure function every other router computes), keeps per-shard
   credentials, and orders the physical replicas for the transport. After a
   failover it remembers which shard's standby leads and puts it first, so
   later calls do not re-pay the dead primary's retry budget. Stickiness is
   deliberate: the crash model promotes standbys permanently, and a client
   that flip-flopped between replicas would only add latency, never
   correctness — the response caches make either order exactly-once. *)

type endpoint = {
  ep_logical : Principal.t;
  ep_primary : string;
  ep_standby : string;
}

type t = {
  net : Sim.Net.t;
  ring : Ring.t;
  endpoints : (string, endpoint) Hashtbl.t;
  creds_for : Principal.t -> (Ticket.credentials, string) result;
  creds : (string, Ticket.credentials) Hashtbl.t;
  retries : int;
  timeout_us : int option;
  backoff : Sim.Retry.backoff option;
  failed_over : (string, unit) Hashtbl.t;
}

let ( let* ) = Result.bind

let create net ~ring ~endpoints ~creds_for ?(retries = 0) ?timeout_us ?backoff () =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (sid, ep) -> Hashtbl.replace tbl sid ep) endpoints;
  {
    net;
    ring;
    endpoints = tbl;
    creds_for;
    creds = Hashtbl.create 8;
    retries;
    timeout_us;
    backoff;
    failed_over = Hashtbl.create 4;
  }

let shard_of t account = Ring.lookup t.ring account

let creds t sid ep =
  match Hashtbl.find_opt t.creds sid with
  | Some c -> Ok c
  | None ->
      let* c = t.creds_for ep.ep_logical in
      Hashtbl.replace t.creds sid c;
      Ok c

(* Resolve an account to (creds, ordered physical targets, failover mark)
   and run [f] under a cluster.route span. *)
let route t account f =
  let sid = Ring.lookup t.ring account in
  match Hashtbl.find_opt t.endpoints sid with
  | None -> Error (Printf.sprintf "no endpoint for shard %S" sid)
  | Some ep ->
      let* c = creds t sid ep in
      let dst, fallback_dsts =
        if Hashtbl.mem t.failed_over sid then (ep.ep_standby, [ ep.ep_primary ])
        else (ep.ep_primary, [ ep.ep_standby ])
      in
      let on_failover ~from_:_ ~to_ =
        if to_ = ep.ep_standby then Hashtbl.replace t.failed_over sid ()
      in
      Sim.Span.with_span (Sim.Net.spans t.net)
        ~actor:(Principal.to_string c.Ticket.cred_client)
        ~kind:"cluster.route"
        ~attrs:[ ("account", account); ("shard", sid) ]
        (fun () -> f ~creds:c ~dst ~fallback_dsts ~on_failover)

let open_account t ~name =
  route t name (fun ~creds ~dst ~fallback_dsts ~on_failover ->
      Accounting_server.open_account ~retries:t.retries ?timeout_us:t.timeout_us
        ?backoff:t.backoff ~dst ~fallback_dsts ~on_failover t.net ~creds ~name)

let balance t ~name ~currency =
  route t name (fun ~creds ~dst ~fallback_dsts ~on_failover ->
      Accounting_server.balance ~retries:t.retries ?timeout_us:t.timeout_us
        ?backoff:t.backoff ~dst ~fallback_dsts ~on_failover t.net ~creds ~name ~currency)

let transfer t ~from_ ~to_ ~currency ~amount =
  let s1 = shard_of t from_ and s2 = shard_of t to_ in
  if s1 <> s2 then
    Error
      (Printf.sprintf "cross-shard transfer %S -> %S: move money by check" from_ to_)
  else
    route t from_ (fun ~creds ~dst ~fallback_dsts ~on_failover ->
        Accounting_server.transfer ~retries:t.retries ?timeout_us:t.timeout_us
          ?backoff:t.backoff ~dst ~fallback_dsts ~on_failover t.net ~creds ~from_ ~to_
          ~currency ~amount)

let deposit t ~endorser_key ~check ~to_account =
  route t to_account (fun ~creds ~dst ~fallback_dsts ~on_failover ->
      Accounting_server.deposit ~retries:t.retries ?timeout_us:t.timeout_us
        ?backoff:t.backoff ~dst ~fallback_dsts ~on_failover t.net ~creds ~endorser_key
        ~check ~to_account)

let logical_for t account =
  match Hashtbl.find_opt t.endpoints (shard_of t account) with
  | None -> None
  | Some ep -> Some ep.ep_logical
