(* Two-server sequence scenario: one Sequence restriction spans a file
   server and a sharded bank — an fs "open" step gates a bank "debit" step.

   Alice grants Bob a delegate proxy restricted to the sequence
   [open@fs:/contract; debit@bank:alice]. Bob must open the contract at
   the file server before the bank will let the same chain draw from
   Alice's account; the file server hands the earned progress to the bank
   over the "seq-advance" verb, and the bank's primary replicates it to
   its standby through the PR-5 journal path *before* releasing the
   seq-advance reply. A mid-sequence fault plan then permanently crashes
   the bank primary: the debit fails over to the standby, which promotes
   and honours the progress it was shipped — the sequence completes
   exactly once across the crash. Out-of-order, repeated and post-
   completion presentations are all denied.

   Everything is seeded; a same-seed rerun is byte-identical (metrics
   snapshot and trace). *)

type config = {
  seed : string;
  drop : float;
  duplicate : float;
  retries : int;
  timeout_us : int;
  crash_after_us : int;
}

let default =
  {
    seed = "seq";
    drop = 0.05;
    duplicate = 0.05;
    retries = 8;
    timeout_us = 10_000;
    crash_after_us = 40_000;
  }

type outcome = {
  attack_denied : bool;  (** the pre-open debit attempt bounced *)
  open_ok : bool;  (** the in-order fs open was granted *)
  reopen_denied : bool;  (** a second open bounced (step consumed) *)
  standby_progress_before_crash : int;
      (** the standby tracker's view of the sequence right after the open
          — 1 proves the journal path carried the handover pre-crash *)
  crashed_node : string;
  failover_debit_ok : bool;  (** the debit succeeded on the standby *)
  second_debit_denied : bool;  (** sequence exhausted after completion *)
  promotions : int;
  seq_advances : int;
  seq_imports : int;
  alice_available : int;
  bob_available : int;
  metrics : (string * int) list;
  trace : string list;
}

let usd = "usd"
let amount = 100

let ok_or ctx = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "Seq_scenario.run setup (%s): %s" ctx e)

let run cfg =
  let w = World.create ~seed:cfg.seed () in
  let net = w.World.net in
  let drbg = Sim.Net.drbg net in
  let m = Sim.Net.metrics net in
  let repl_retry = Sim.Retry.policy ~retries:12 ~timeout_us:cfg.timeout_us () in
  (* -- principals -- *)
  let alice, _, alice_rsa = World.enrol_pk w "alice" in
  let bob, _ = World.enrol w "bob" in
  let fs_p, fs_key = World.enrol w "seq-fs" in
  let bank_p, bank_key, bank_rsa = World.enrol_pk w "seq-bank" in
  (* -- servers -- *)
  let fs_acl = Acl.create () in
  Acl.add fs_acl ~target:"/contract"
    { Acl.subject = Acl.Principal_is alice; rights = [ "open"; "read" ]; restrictions = [] };
  let fs =
    File_server.create net ~me:fs_p ~my_key:fs_key ~lookup_pub:(World.lookup w) ~acl:fs_acl ()
  in
  File_server.install fs;
  File_server.put_direct fs ~path:"/contract" "in consideration of services rendered";
  let bank =
    ok_or "bank"
      (Shard.create net ~me:bank_p ~my_key:bank_key ~kdc:w.World.kdc_name
         ~signing_key:bank_rsa ~lookup:(World.lookup w) ~repl_retry
         ~primary_node:"seq-bank-a" ~standby_node:"seq-bank-b" ())
  in
  Shard.install bank;
  let bank_dsts = (Shard.primary_node bank, [ Shard.standby_node bank ]) in
  let call_bank f =
    let dst, fallback_dsts = bank_dsts in
    f ~dst ~fallback_dsts
      ~on_failover:(fun ~from_:_ ~to_:_ -> Sim.Metrics.incr m "cluster.failovers")
  in
  (* -- accounts and funds (before any fault plan) -- *)
  let creds_for who target = World.credentials_for w ~tgt:(World.login w who) target in
  let alice_bank = creds_for alice bank_p in
  let bob_bank = creds_for bob bank_p in
  let bob_fs = creds_for bob fs_p in
  ok_or "alice account"
    (call_bank (fun ~dst ~fallback_dsts ~on_failover ->
         Accounting_server.open_account ~retries:cfg.retries ~timeout_us:cfg.timeout_us ~dst
           ~fallback_dsts ~on_failover net ~creds:alice_bank ~name:"alice"));
  ok_or "bob account"
    (call_bank (fun ~dst ~fallback_dsts ~on_failover ->
         Accounting_server.open_account ~retries:cfg.retries ~timeout_us:cfg.timeout_us ~dst
           ~fallback_dsts ~on_failover net ~creds:bob_bank ~name:"bob"));
  ok_or "mint" (Shard.mint bank ~name:"alice" ~currency:usd 1_000);
  (* -- the sequence-restricted delegate proxy -- *)
  let steps =
    [
      { Restriction.step_op = "open"; step_server = Some fs_p; step_target = Some "/contract" };
      { Restriction.step_op = "debit"; step_server = Some bank_p; step_target = Some "alice" };
    ]
  in
  let now = World.now w in
  let proxy =
    Proxy.grant_pk ~drbg ~now ~expires:(now + (24 * World.hour)) ~grantor:alice
      ~grantor_key:alice_rsa
      ~restrictions:[ Restriction.Grantee ([ bob ], 1); Restriction.Sequence steps ]
      ()
  in
  let presented = { Guard.pres = Proxy.presentation proxy; pres_proof = None } in
  (* -- cross-server handover: fs forwards earned progress to the bank -- *)
  let fs_bank = creds_for fs_p bank_p in
  let advanced_key = ref None in
  Guard.set_seq_observer (File_server.guard fs)
    (Some (fun ~key ~progress:_ ~expires:_ ~tag:_ -> advanced_key := Some key));
  Guard.set_seq_forward (File_server.guard fs)
    (Some
       (fun ~server:_ ~key ~progress ~expires ~tag ->
         match
           call_bank (fun ~dst ~fallback_dsts ~on_failover ->
               Accounting_server.seq_advance ~retries:cfg.retries ~timeout_us:cfg.timeout_us
                 ~dst ~fallback_dsts ~on_failover net ~creds:fs_bank ~key ~progress ~expires
                 ~tag)
         with
         | Ok () -> ()
         | Error _ -> Sim.Metrics.incr m "seq_tracker.forward_failures"));
  (* -- chaos begins: message noise now, primary crash mid-sequence -- *)
  let t0 = Sim.Net.now net in
  let crash_at = t0 + cfg.crash_after_us in
  let crashed_node = Shard.primary_node bank in
  Sim.Net.install_fault_plan net
    (Sim.Fault.plan ~seed:cfg.seed
       [
         Sim.Fault.drop cfg.drop;
         Sim.Fault.duplicate cfg.duplicate;
         Sim.Fault.crash crashed_node ~at:crash_at ();
       ]);
  let transfer () =
    call_bank (fun ~dst ~fallback_dsts ~on_failover ->
        Accounting_server.proxy_transfer ~retries:cfg.retries ~timeout_us:cfg.timeout_us ~dst
          ~fallback_dsts ~on_failover net ~creds:bob_bank ~presented ~payor_account:"alice"
          ~to_account:"bob" ~currency:usd ~amount)
  in
  (* 1. Out-of-order attack: debit before open must bounce. *)
  let attack_denied = Result.is_error (transfer ()) in
  (* 2. In-order: open the contract at the fs. The granted decision
        advances the fs tracker and hands progress to the bank primary,
        whose journal ships it to the standby before the seq-advance reply
        is released. *)
  let open_ok =
    Result.is_ok
      (File_server.open_ net ~creds:bob_fs ~retries:cfg.retries ~timeout_us:cfg.timeout_us
         ~proxies:[ presented ] ~path:"/contract" ())
  in
  (* 3. The open step is consumed: presenting it again must bounce. *)
  let reopen_denied =
    Result.is_error
      (File_server.open_ net ~creds:bob_fs ~retries:cfg.retries ~timeout_us:cfg.timeout_us
         ~proxies:[ presented ] ~path:"/contract" ())
  in
  let standby_progress_before_crash =
    match !advanced_key with
    | None -> 0
    | Some key ->
        Seq_tracker.progress
          (Guard.seq_tracker (Accounting_server.guard (Shard.standby_server bank)))
          ~now:(Sim.Net.now net) key
  in
  (* 4. Let virtual time reach the crash: harmless owner reads against the
        bank until the fault plan has taken the primary down. *)
  let spins = ref 0 in
  while Sim.Net.now net < crash_at && !spins < 10_000 do
    incr spins;
    ignore
      (call_bank (fun ~dst ~fallback_dsts ~on_failover ->
           Accounting_server.balance ~retries:cfg.retries ~timeout_us:cfg.timeout_us ~dst
             ~fallback_dsts ~on_failover net ~creds:bob_bank ~name:"bob" ~currency:usd))
  done;
  (* 5. Mid-sequence failover: the debit must succeed exactly once on the
        promoted standby, which learned the progress from replication. *)
  let failover_debit_ok = match transfer () with Ok n -> n = amount | Error _ -> false in
  (* 6. The sequence is exhausted: a repeat debit must bounce. *)
  let second_debit_denied = Result.is_error (transfer ()) in
  Sim.Net.clear_fault_plan net;
  let authoritative = Shard.authoritative bank in
  let balance_of name =
    Ledger.balance (Accounting_server.ledger authoritative) ~name ~currency:usd
  in
  {
    attack_denied;
    open_ok;
    reopen_denied;
    standby_progress_before_crash;
    crashed_node;
    failover_debit_ok;
    second_debit_denied;
    promotions = Sim.Metrics.get m "cluster.promotions";
    seq_advances = Sim.Metrics.get m "seq_tracker.advances";
    seq_imports = Sim.Metrics.get m "seq_tracker.imports";
    alice_available = balance_of "alice";
    bob_available = balance_of "bob";
    metrics = Sim.Metrics.snapshot m;
    trace =
      List.map
        (fun (e : Sim.Trace.entry) ->
          Printf.sprintf "%d %s %s" e.Sim.Trace.time e.Sim.Trace.actor e.Sim.Trace.event)
        (Sim.Trace.entries (Sim.Net.trace net));
  }
