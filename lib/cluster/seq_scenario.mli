(** Two-server sequence scenario: a {!Restriction.Sequence} spanning a
    file server and a sharded bank — an fs ["open"] step gates a bank
    ["debit"] step — under message noise, retries, and a mid-sequence
    permanent crash of the bank primary.

    The file server hands earned progress to the bank over the
    ["seq-advance"] verb; the bank primary journals it to the standby
    before releasing the reply (the PR-5 replication path), so the
    sequence completes exactly once across the failover. A same-seed
    rerun is byte-identical (metrics and trace). *)

type config = {
  seed : string;
  drop : float;
  duplicate : float;
  retries : int;
  timeout_us : int;
  crash_after_us : int;  (** primary crash time, relative to chaos start *)
}

val default : config

type outcome = {
  attack_denied : bool;  (** the pre-open debit attempt bounced *)
  open_ok : bool;  (** the in-order fs open was granted *)
  reopen_denied : bool;  (** a second open bounced (step consumed) *)
  standby_progress_before_crash : int;
      (** the standby tracker's view of the sequence right after the open
          — 1 proves the journal path carried the handover pre-crash *)
  crashed_node : string;
  failover_debit_ok : bool;  (** the debit succeeded on the standby *)
  second_debit_denied : bool;  (** sequence exhausted after completion *)
  promotions : int;
  seq_advances : int;
  seq_imports : int;
  alice_available : int;
  bob_available : int;
  metrics : (string * int) list;
  trace : string list;
}

val run : config -> outcome
(** Raises [Failure] only on setup errors (before any fault goes in). *)
