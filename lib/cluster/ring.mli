(** Consistent-hash placement of account names onto bank shards.

    Deterministic: the ring is a pure function of the shard-id set and
    [vnodes], so every router in the system computes identical placement
    with no coordination — the cluster analogue of the paper's requirement
    that authorization work without talking to a central server first. *)

type t

val create : ?vnodes:int -> string list -> t
(** Build a ring over the given shard ids (de-duplicated, order
    irrelevant). [vnodes] (default 32) virtual points per shard smooth the
    key distribution. Raises [Invalid_argument] on an empty list. *)

val shards : t -> string list
(** Sorted shard ids. *)

val lookup : t -> string -> string
(** Owning shard id for a key (an account name). Total. *)

val spread : t -> string list -> (string * int) list
(** Per-shard key counts for a key set — balance diagnostics. *)
