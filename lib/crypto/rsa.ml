module N = Bignum.Nat

type public = { n : N.t; e : N.t }
type crt = { p : N.t; q : N.t; dp : N.t; dq : N.t; qinv : N.t }
type private_ = { pub : public; d : N.t; crt : crt option }

let e65537 = N.of_int 65537

let generate drbg ~bits =
  if bits < 128 then invalid_arg "Rsa.generate: modulus must be at least 128 bits";
  let half = bits / 2 in
  let rand = Drbg.rand drbg in
  let rec keypair () =
    let p = Bignum.Prime.generate rand half in
    let q = Bignum.Prime.generate rand (bits - half) in
    if N.equal p q then keypair ()
    else begin
      let n = N.mul p q in
      let phi = N.mul (N.sub p N.one) (N.sub q N.one) in
      match N.mod_inv e65537 phi with
      | None -> keypair () (* gcd(e, phi) <> 1; retry with new primes *)
      | Some d ->
          let crt =
            match N.mod_inv q p with
            | None -> None (* distinct primes, so unreachable; fall back *)
            | Some qinv ->
                Some
                  {
                    p;
                    q;
                    dp = N.rem d (N.sub p N.one);
                    dq = N.rem d (N.sub q N.one);
                    qinv;
                  }
          in
          { pub = { n; e = e65537 }; d; crt }
    end
  in
  keypair ()

(* The private exponentiation c^d mod n. With CRT parameters this is two
   half-width half-exponent powers recombined by Garner's formula — about
   4x cheaper — and is followed by a consistency check against the public
   exponent (m^e mod n = c). The check keeps a computation corrupted by a
   fault (the classic Boneh–DeMillo–Lipton CRT fault attack, which would
   let a verifier factor n from one bad signature) from ever leaving this
   module: on mismatch we recompute by the slow, uncorruptible path, so
   the output is byte-identical to the pre-CRT implementation in every
   case. *)
let priv_op key c =
  match key.crt with
  | None -> N.mod_pow c key.d key.pub.n
  | Some { p; q; dp; dq; qinv } ->
      let m1 = N.mod_pow (N.rem c p) dp p in
      let m2 = N.mod_pow (N.rem c q) dq q in
      (* h = qinv * (m1 - m2) mod p, on naturals: m1 + p - (m2 mod p). *)
      let diff = N.rem (N.add m1 (N.sub p (N.rem m2 p))) p in
      let h = N.rem (N.mul qinv diff) p in
      let m = N.add m2 (N.mul h q) in
      if N.equal (N.mod_pow m key.pub.e key.pub.n) (N.rem c key.pub.n) then m
      else N.mod_pow c key.d key.pub.n

let modulus_bytes pub = (N.bit_length pub.n + 7) / 8

(* DigestInfo prefix for SHA-256 (DER), as in PKCS#1 v1.5 signatures. *)
let sha256_prefix =
  "\x30\x31\x30\x0d\x06\x09\x60\x86\x48\x01\x65\x03\x04\x02\x01\x05\x00\x04\x20"

let emsa_encode pub msg =
  let k = modulus_bytes pub in
  let digest_info = sha256_prefix ^ Sha256.digest msg in
  let pad_len = k - String.length digest_info - 3 in
  if pad_len < 8 then None
  else Some ("\x00\x01" ^ String.make pad_len '\xff' ^ "\x00" ^ digest_info)

let sign key msg =
  match emsa_encode key.pub msg with
  | None -> invalid_arg "Rsa.sign: modulus too small for SHA-256 signature"
  | Some em ->
      let m = N.of_bytes_be em in
      let s = priv_op key m in
      N.to_bytes_be_padded (modulus_bytes key.pub) s

let sign_reference key msg =
  match emsa_encode key.pub msg with
  | None -> invalid_arg "Rsa.sign_reference: modulus too small for SHA-256 signature"
  | Some em ->
      let m = N.of_bytes_be em in
      let s = N.mod_pow_naive m key.d key.pub.n in
      N.to_bytes_be_padded (modulus_bytes key.pub) s

let verify pub ~msg ~signature =
  String.length signature = modulus_bytes pub
  && begin
       let s = N.of_bytes_be signature in
       if N.compare s pub.n >= 0 then false
       else begin
         let m = N.mod_pow s pub.e pub.n in
         match emsa_encode pub msg with
         | None -> false
         | Some em -> Ct.equal_string (N.to_bytes_be_padded (modulus_bytes pub) m) em
       end
     end

let encrypt drbg pub msg =
  let k = modulus_bytes pub in
  let mlen = String.length msg in
  if mlen > k - 11 then None
  else begin
    let pad_len = k - mlen - 3 in
    let pad =
      String.init pad_len (fun _ ->
          (* Nonzero random padding bytes. *)
          let rec nz () =
            let b = (Drbg.generate drbg 1).[0] in
            if b = '\x00' then nz () else b
          in
          nz ())
    in
    let em = "\x00\x02" ^ pad ^ "\x00" ^ msg in
    let m = N.of_bytes_be em in
    Some (N.to_bytes_be_padded k (N.mod_pow m pub.e pub.n))
  end

let decrypt key ciphertext =
  let k = modulus_bytes key.pub in
  if String.length ciphertext <> k then None
  else begin
    let c = N.of_bytes_be ciphertext in
    if N.compare c key.pub.n >= 0 then None
    else begin
      let em = N.to_bytes_be_padded k (priv_op key c) in
      if String.length em < 11 || em.[0] <> '\x00' || em.[1] <> '\x02' then None
      else begin
        match String.index_from_opt em 2 '\x00' with
        | None -> None
        | Some sep when sep < 10 -> None (* padding must be at least 8 bytes *)
        | Some sep -> Some (String.sub em (sep + 1) (String.length em - sep - 1))
      end
    end
  end

let public_to_bytes pub =
  let nb = N.to_bytes_be pub.n and eb = N.to_bytes_be pub.e in
  let len4 n = String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff)) in
  String.concat "" [ len4 (String.length nb); nb; len4 (String.length eb); eb ]

let public_of_bytes s =
  let read4 off =
    if off + 4 > String.length s then None
    else
      Some
        ((Char.code s.[off] lsl 24)
        lor (Char.code s.[off + 1] lsl 16)
        lor (Char.code s.[off + 2] lsl 8)
        lor Char.code s.[off + 3])
  in
  match read4 0 with
  | None -> None
  | Some nlen -> (
      if 4 + nlen > String.length s then None
      else
        let nb = String.sub s 4 nlen in
        match read4 (4 + nlen) with
        | None -> None
        | Some elen ->
            if 8 + nlen + elen > String.length s then None
            else
              let eb = String.sub s (8 + nlen) elen in
              Some { n = N.of_bytes_be nb; e = N.of_bytes_be eb })
