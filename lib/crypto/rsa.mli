(** RSA signatures and encryption over {!Bignum.Nat}.

    This realizes the paper's public-key proxies (Figure 6): proxy
    certificates are signed with the grantor's private key, and for the
    hybrid scheme the conventional proxy key is sealed under the end-server's
    public key. Padding follows PKCS#1 v1.5 (deterministic for signatures,
    randomized for encryption); modulus size is a parameter so benches can
    sweep it. *)

type public = { n : Bignum.Nat.t; e : Bignum.Nat.t }

type crt = {
  p : Bignum.Nat.t;
  q : Bignum.Nat.t;
  dp : Bignum.Nat.t;  (** [d mod (p-1)] *)
  dq : Bignum.Nat.t;  (** [d mod (q-1)] *)
  qinv : Bignum.Nat.t;  (** [q^-1 mod p] *)
}
(** Chinese-remainder parameters for the private operation: two half-width
    exponentiations recombined by Garner's formula, roughly 4x cheaper than
    a full [c^d mod n]. *)

type private_ = { pub : public; d : Bignum.Nat.t; crt : crt option }
(** [crt = None] (e.g. a key parsed from the wire without its factors)
    degrades gracefully to the plain [d] exponentiation. *)

val generate : Drbg.t -> bits:int -> private_
(** Generate a key pair with a modulus of [bits] bits ([bits >= 128],
    public exponent 65537). The CRT parameters are filled in. *)

val sign : private_ -> string -> string
(** [sign key msg] signs SHA-256([msg]); the signature is
    [modulus_bytes key.pub] bytes. Uses the CRT fast path when [key.crt]
    is present; every CRT result is checked against the public-exponent
    recomputation (fault-attack guard) so the output is byte-identical to
    {!sign_reference} in all cases. *)

val sign_reference : private_ -> string -> string
(** The pre-optimization signing path: plain [d] exponentiation via
    {!Bignum.Nat.mod_pow_naive}, ignoring [crt]. Kept for byte-compat
    tests and before/after benches. *)

val verify : public -> msg:string -> signature:string -> bool

val encrypt : Drbg.t -> public -> string -> string option
(** PKCS#1 v1.5 type-2 encryption. [None] if the message is too long for
    the modulus (max [modulus_bytes - 11]). *)

val decrypt : private_ -> string -> string option

val modulus_bytes : public -> int
val public_to_bytes : public -> string
val public_of_bytes : string -> public option
