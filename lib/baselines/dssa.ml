type role_cert = {
  role : Principal.t;
  role_owner : Principal.t;
  role_rights : string list;
  role_pub : Crypto.Rsa.public;
  role_sig : string;
}

type t = {
  net : Sim.Net.t;
  name : Principal.t;
  key : Crypto.Rsa.private_;
  mutable roles : int;
  bits : int;
}

let create net ~name ~drbg ~bits = { net; name; key = Crypto.Rsa.generate drbg ~bits; roles = 0; bits }
let ca_pub t = t.key.Crypto.Rsa.pub
let role_count t = t.roles

let role_cert_bytes ~role ~role_owner ~role_rights ~role_pub =
  Wire.encode
    (Wire.L
       [ Principal.to_wire role;
         Principal.to_wire role_owner;
         Wire.L (List.map (fun r -> Wire.S r) role_rights);
         Wire.S (Crypto.Rsa.public_to_bytes role_pub) ])

let handle t request =
  let open Wire in
  let parsed =
    let* v = Wire.decode request in
    let* owner = Result.bind (field v 0) Principal.of_wire in
    let* rs = Result.bind (field v 1) to_list in
    let* rights =
      List.fold_right
        (fun r acc -> Result.bind acc (fun tl -> Result.map (fun h -> h :: tl) (to_string r)))
        rs (Ok [])
    in
    Ok (owner, rights)
  in
  match parsed with
  | Error e -> Wire.encode (Wire.L [ Wire.S "err"; Wire.S e ])
  | Ok (owner, rights) ->
      (* Registering a role: mint a fresh principal with its own key pair,
         record it, and sign its certificate. This state accumulation is the
         "cumbersome" part the paper criticizes. *)
      t.roles <- t.roles + 1;
      let role =
        Principal.make ~realm:owner.Principal.realm
          (Printf.sprintf "%s-role-%d" owner.Principal.name t.roles)
      in
      let role_keypair = Crypto.Rsa.generate (Sim.Net.drbg t.net) ~bits:t.bits in
      Sim.Metrics.incr (Sim.Net.metrics t.net) "crypto.rsa_keygen";
      let role_pub = role_keypair.Crypto.Rsa.pub in
      Sim.Metrics.incr (Sim.Net.metrics t.net) "crypto.rsa_sign";
      let role_sig =
        Crypto.Rsa.sign t.key (role_cert_bytes ~role ~role_owner:owner ~role_rights:rights ~role_pub)
      in
      Wire.encode
        (Wire.L
           [ Wire.S "ok";
             Principal.to_wire role;
             Wire.S (Crypto.Rsa.public_to_bytes role_pub);
             Wire.S role_sig;
             Wire.S (Bignum.Nat.to_bytes_be role_keypair.Crypto.Rsa.d) ])

let install t = Sim.Net.register t.net ~name:(Principal.to_string t.name) (handle t)

let create_role net ~ca ~caller ~owner ~rights =
  let request =
    Wire.encode
      (Wire.L [ Principal.to_wire owner; Wire.L (List.map (fun r -> Wire.S r) rights) ])
  in
  match Sim.Net.rpc net ~src:caller ~dst:(Principal.to_string ca) request with
  | Error e -> Error e
  | Ok reply -> (
      let open Wire in
      let* v = Wire.decode reply in
      let* tag = Result.bind (field v 0) to_string in
      if tag = "err" then
        let* msg = Result.bind (field v 1) to_string in
        Error msg
      else
        let* role = Result.bind (field v 1) Principal.of_wire in
        let* pub_bytes = Result.bind (field v 2) to_string in
        let* role_sig = Result.bind (field v 3) to_string in
        let* d_bytes = Result.bind (field v 4) to_string in
        match Crypto.Rsa.public_of_bytes pub_bytes with
        | None -> Error "malformed role key"
        | Some role_pub ->
            Ok
              ( { role; role_owner = owner; role_rights = rights; role_pub; role_sig },
                { Crypto.Rsa.pub = role_pub; d = Bignum.Nat.of_bytes_be d_bytes; crt = None } ))

type delegation = { deleg_role : role_cert; deleg_to : Principal.t; deleg_sig : string }

let delegation_bytes ~role ~to_ =
  Wire.encode (Wire.L [ Principal.to_wire role; Principal.to_wire to_ ])

let delegate ~role_key ~to_ cert =
  {
    deleg_role = cert;
    deleg_to = to_;
    deleg_sig = Crypto.Rsa.sign role_key (delegation_bytes ~role:cert.role ~to_);
  }

let verify ~ca_pub ~presenter d =
  let c = d.deleg_role in
  let cert_ok =
    Crypto.Rsa.verify ca_pub
      ~msg:
        (role_cert_bytes ~role:c.role ~role_owner:c.role_owner ~role_rights:c.role_rights
           ~role_pub:c.role_pub)
      ~signature:c.role_sig
  in
  if not cert_ok then Error "bad CA signature on role certificate"
  else if
    not
      (Crypto.Rsa.verify c.role_pub
         ~msg:(delegation_bytes ~role:c.role ~to_:d.deleg_to)
         ~signature:d.deleg_sig)
  then Error "bad delegation signature"
  else if not (Principal.equal presenter d.deleg_to) then Error "delegation is for someone else"
  else Ok c.role_rights
