let log_src = Logs.Src.create "authz.guard" ~doc:"end-server authorization decisions"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  net : Sim.Net.t;
  me : Principal.t;
  my_key : string;
  lookup_pub : Principal.t -> Crypto.Rsa.public option;
  decrypt : string -> string option;
  max_skew_us : int;
  acl : Acl.t;
  replay : Replay_cache.t;
  seq : Seq_tracker.t;
  verify_cache : Verify_cache.t;
  link_cache : Link_cache.t option;
  mutable revocation : Revocation.t option;
  mutable seq_observer :
    (key:string -> progress:int -> expires:int -> tag:string -> unit) option;
  mutable seq_forward :
    (server:Principal.t -> key:string -> progress:int -> expires:int -> tag:string -> unit)
    option;
}

let create net ~me ~my_key ?(lookup_pub = fun _ -> None) ?my_rsa
    ?(max_skew_us = 5 * 60 * 1_000_000) ?verify_cache ?link_cache ?revocation ~acl () =
  let decrypt =
    match my_rsa with None -> fun _ -> None | Some key -> Crypto.Rsa.decrypt key
  in
  let incr name () = Sim.Metrics.incr (Sim.Net.metrics net) name in
  let verify_cache =
    match verify_cache with
    | Some c -> c
    | None ->
        Verify_cache.create
          ~on_evict:(incr "verify_cache.evictions")
          ~on_invalidate:(incr "verify_cache.invalidations")
          ()
  in
  {
    net;
    me;
    my_key;
    lookup_pub;
    decrypt;
    max_skew_us;
    acl;
    replay = Replay_cache.create ~on_evict:(incr "replay_cache.evictions") ();
    seq = Seq_tracker.create ~on_evict:(incr "seq_tracker.evictions") ();
    verify_cache;
    link_cache;
    revocation;
    seq_observer = None;
    seq_forward = None;
  }

let me t = t.me
let acl t = t.acl
let replay_cache t = t.replay
let seq_tracker t = t.seq
let set_seq_observer t f = t.seq_observer <- f
let set_seq_forward t f = t.seq_forward <- f
let verify_cache t = t.verify_cache
let link_cache t = t.link_cache
let revocation t = t.revocation
let set_revocation t r = t.revocation <- Some r

type presented = { pres : Proxy.presentation; pres_proof : Presentation.proof option }

let presented_to_wire p =
  let proof =
    match p.pres_proof with None -> Wire.L [] | Some pr -> Presentation.proof_to_wire pr
  in
  Wire.L [ Proxy.presentation_to_wire p.pres; proof ]

let presented_of_wire v =
  let open Wire in
  let* pw = field v 0 in
  let* pres = Proxy.presentation_of_wire pw in
  let* proof_w = field v 1 in
  match proof_w with
  | Wire.L [] -> Ok { pres; pres_proof = None }
  | _ ->
      let* proof = Presentation.proof_of_wire proof_w in
      Ok { pres; pres_proof = Some proof }

let present ~proxy ~time ~server ~operation ?(target = "") ?spend () =
  let req = Restriction.request ~server ~time ~operation ~target ?spend () in
  let proof =
    Presentation.prove ~key:proxy.Proxy.key ~time
      ~request_digest:(Presentation.digest_request req)
  in
  { pres = Proxy.presentation proxy; pres_proof = Some proof }

let restrictions_of_auth_data auth_data =
  List.map
    (fun v ->
      match Restriction.of_wire v with
      | Ok r -> r
      | Error _ -> Restriction.Unknown "malformed-authorization-data")
    auth_data

let transport_ok ~me ~now ~auth_data ~operation ?(target = "") ?spend () =
  match restrictions_of_auth_data auth_data with
  | [] -> Ok ()
  | rs ->
      let req = Restriction.request ~server:me ~time:now ~operation ~target ?spend () in
      (match Restriction.check_all rs req with
      | Ok () -> Ok ()
      | Error e -> Error (Printf.sprintf "refused by credential restriction: %s" e))

type decision = {
  granted_by : Acl.subject;
  acting_for : Principal.t list;
  via_groups : Principal.Group.t list;
  serials_used : string list;
  restrictions_used : Restriction.t list;
}

(* Everything the guard learned about one successfully verified and
   authorized proxy. *)
type usable = {
  u_grantor : Principal.t;
  u_restrictions : Restriction.t list;
  u_expires : int;
  u_serials : string list;
}

let open_base t blob =
  match Ticket.open_ ~service_key:t.my_key blob with
  | Error e -> Error e
  | Ok ticket ->
      if not (Principal.equal ticket.Ticket.service t.me) then
        Error "base ticket is for a different service"
      else
        Ok
          {
            Verifier.base_client = ticket.Ticket.client;
            base_session_key = ticket.Ticket.session_key;
            base_expires = ticket.Ticket.expires;
            base_restrictions = restrictions_of_auth_data ticket.Ticket.authorization_data;
          }

let tally t name = Sim.Metrics.incr (Sim.Net.metrics t.net) name

(* When the net is traced, hand the verifier a wrapper that opens one child
   span per certificate of the chain — each link's RSA / cache-hit cost
   lands on its own span, and resolver lookups nest underneath. *)
let span_hook t =
  match Sim.Net.spans t.net with
  | None -> None
  | Some _ as sp ->
      Some
        {
          Verifier.wrap =
            (fun ~name ~attrs f ->
              Sim.Span.with_span sp ~actor:(Principal.to_string t.me) ~kind:name ~attrs f);
        }

(* A bulletin that actually extends revocation coverage retires the whole
   verify-cache generation: the cache keys are one-way hashes, so the chains
   depending on a freshly revoked link cannot be enumerated — everything is
   invalidated in one bump and honest traffic re-verifies. A heartbeat
   bulletin (same entries, newer epoch) only refreshes the staleness
   anchor and leaves the cache warm. *)
let apply_bulletin t bulletin =
  match t.revocation with
  | None -> Error "guard has no revocation state configured"
  | Some r -> (
      match Revocation.apply r bulletin with
      | Error _ as e -> e
      | Ok Revocation.Ignored -> Ok false
      | Ok (Revocation.Applied { fresh; fresh_entries }) ->
          tally t "revocation.bulletins_applied";
          if fresh > 0 then begin
            let retired = Verify_cache.bump_generation t.verify_cache in
            Sim.Metrics.incr (Sim.Net.metrics t.net) "verify_cache.generation_bumps";
            (match t.link_cache with
            | Some lc ->
                ignore (Link_cache.bump_generation lc);
                Sim.Metrics.incr (Sim.Net.metrics t.net) "link_cache.generation_bumps"
            | None -> ());
            (* Shed the freshly killed grantors' accept-once records: their
               credentials can no longer verify, so the records only burn
               capacity — and a re-issued credential (same check number,
               fresh post-revocation grant) must not collide with the dead
               grant's entry. Entries recorded for grantors that stay valid
               (or are re-recorded after re-issue) are untouched; only the
               grantors newly covered by THIS bulletin are swept. *)
            let shed =
              List.fold_left
                (fun n -> function
                  | Revocation.By_grantor_epoch { grantor; _ } ->
                      n + Replay_cache.shed t.replay ~tag:(Principal.to_string grantor)
                  | Revocation.By_serial _ -> n)
                0 fresh_entries
            in
            if shed > 0 then
              Sim.Metrics.add (Sim.Net.metrics t.net) "replay_cache.shed" shed;
            (* Sequence progress is keyed like the accept-once records and
               dies with its grantor for the same reason: a fresh
               post-revocation grant of the same sequence must restart at
               step one, not inherit the dead grant's progress. *)
            let seq_shed =
              List.fold_left
                (fun n -> function
                  | Revocation.By_grantor_epoch { grantor; _ } ->
                      n + Seq_tracker.shed t.seq ~tag:(Principal.to_string grantor)
                  | Revocation.By_serial _ -> n)
                0 fresh_entries
            in
            if seq_shed > 0 then
              Sim.Metrics.add (Sim.Net.metrics t.net) "seq_tracker.shed" seq_shed;
            Sim.Trace.record (Sim.Net.trace t.net) ~time:(Sim.Net.now t.net)
              ~actor:(Principal.to_string t.me)
              (Printf.sprintf
                 "applied revocation bulletin epoch %d (%d new entries, %d cached chains \
                  invalidated, %d replay records shed)"
                 (Revocation.epoch r) fresh retired shed)
          end;
          Ok true)

(* Verify a presented proxy and check it authorizes [req]; [Ok usable] if it
   contributes its grantor's authority to the request. *)
let evaluate t ~req (p : presented) =
  match
    Verifier.verify ~open_base:(open_base t) ~lookup:t.lookup_pub ~decrypt:t.decrypt ~me:t.me
      ~tally:(tally t) ~cache:t.verify_cache ?link_cache:t.link_cache
      ?revocation:t.revocation ?hook:(span_hook t) ~now:req.Restriction.time p.pres
  with
  | Error e -> Error e
  | Ok verified -> (
      match
        Verifier.authorize verified ~req ~proof:p.pres_proof ~max_skew:t.max_skew_us
      with
      | Error e -> Error e
      | Ok () ->
          Ok
            {
              u_grantor = verified.Verifier.grantor;
              u_restrictions = verified.Verifier.restrictions;
              u_expires = verified.Verifier.expires;
              u_serials = verified.Verifier.serials;
            })

(* Groups named in the ACL that this group proxy could possibly assert. *)
let candidate_groups t =
  List.concat_map
    (fun target ->
      List.filter_map
        (fun (e : Acl.entry) ->
          let rec groups_of = function
            | Acl.Group g -> [ g ]
            | Acl.Compound subs -> List.concat_map groups_of subs
            | Acl.Principal_is _ | Acl.Anyone -> []
          in
          match groups_of e.Acl.subject with [] -> None | gs -> Some gs)
        (Acl.entries_for t.acl ~target)
      |> List.concat)
    (Acl.targets t.acl)

let accept_once_ids restrictions =
  List.filter_map
    (function Restriction.Accept_once id -> Some id | _ -> None)
    restrictions

(* Like accept-once consumption, sequence advancement reads only the
   chain's top-level restrictions: a limit-scoped sequence is checked by
   the servers it names but never advanced here. *)
let top_sequences restrictions =
  List.filter_map
    (function Restriction.Sequence steps -> Some steps | _ -> None)
    restrictions

(* Cross-server progress import (the receiving half of [seq_forward]): the
   key is self-describing, so we re-derive the sequence it claims to
   advance and insist the authenticated [caller] is the server the
   just-completed step named — only the server that granted step k-1 may
   attest progress k. Max-monotone storage makes retransmissions and
   replica replays harmless. *)
let import_seq_progress t ~caller ~key ~progress ~expires ~tag =
  match Restriction.seq_key_parse key with
  | Error e -> Error (Printf.sprintf "seq-advance refused: %s" e)
  | Ok (_head, steps) ->
      if progress < 1 || progress > List.length steps then
        Error "seq-advance refused: progress out of range"
      else (
        match (List.nth steps (progress - 1)).Restriction.step_server with
        | None -> Error "seq-advance refused: attested step names no server"
        | Some s when not (Principal.equal s caller) ->
            Error
              (Printf.sprintf "seq-advance refused: %s did not run step %d"
                 (Principal.to_string caller) (progress - 1))
        | Some _ ->
            Seq_tracker.set_progress t.seq ~now:(Sim.Net.now t.net) ~expires ~tag key
              progress;
            Sim.Metrics.incr (Sim.Net.metrics t.net) "seq_tracker.imports";
            (match t.seq_observer with
            | Some f -> f ~key ~progress ~expires ~tag
            | None -> ());
            Ok ())

let decide t ~operation ?(target = "") ?presenter ?(extra_presenters = []) ?(proxies = [])
    ?(group_proxies = []) ?spend () =
  let sp = Sim.Net.spans t.net in
  Sim.Span.with_span sp ~actor:(Principal.to_string t.me) ~kind:"guard.decide"
    ~attrs:[ ("operation", operation); ("target", target) ]
  @@ fun () ->
  Sim.Metrics.incr (Sim.Net.metrics t.net) "guard.decisions";
  let result =
  let now = Sim.Net.now t.net in
  let presenters = Option.to_list presenter @ extra_presenters in
  let seen id = Replay_cache.seen t.replay ~now id in
  (* Pass 1: which groups do the group proxies prove?  A group proxy is used
     with operation "assert-membership" on the group's local name. *)
  let asserted =
    List.concat_map
      (fun gp ->
        List.filter_map
          (fun (g : Principal.Group.t) ->
            let req =
              Restriction.request ~server:t.me ~time:now ~operation:"assert-membership"
                ~target:g.Principal.Group.group ~presenters
                ~claimed_memberships:[ g.Principal.Group.group ] ~accept_once_seen:seen ()
            in
            match evaluate t ~req gp with
            | Ok u when Principal.equal u.u_grantor g.Principal.Group.server -> Some (g, u)
            | Ok _ | Error _ -> None)
          (candidate_groups t))
      group_proxies
  in
  let groups_asserted = List.map fst asserted in
  (* Pass 2: which grantors do the regular proxies contribute for this
     operation? *)
  let req =
    Restriction.request ~server:t.me ~time:now ~operation ~target ~presenters ~groups_asserted
      ?spend ~accept_once_seen:seen
      ~sequence_progress:(fun key -> Seq_tracker.progress t.seq ~now key)
      ()
  in
  let contributions = List.map (fun p -> evaluate t ~req p) proxies in
  let usable = List.filter_map Result.to_option contributions in
  let facts =
    {
      Acl.principals = presenters @ List.map (fun u -> u.u_grantor) usable;
      groups = groups_asserted;
    }
  in
  match Acl.find_permitting t.acl ~target ~operation facts with
  | None ->
      Log.debug (fun m ->
          m "%s: DENY %s on %S (presenters=%d proxies=%d/%d usable groups=%d)"
            (Principal.to_string t.me) operation target (List.length presenters)
            (List.length usable) (List.length proxies) (List.length groups_asserted));
      let detail =
        match (proxies, contributions) with
        | _ :: _, _ when usable = [] ->
            let first_error =
              List.find_map (function Error e -> Some e | Ok _ -> None) contributions
            in
            Printf.sprintf " (no presented proxy was usable: %s)"
              (Option.value first_error ~default:"?")
        | _ -> ""
      in
      Error (Printf.sprintf "access denied: no ACL entry permits %s on %S%s" operation target detail)
  | Some entry -> (
      (* Enforce any restrictions recorded on the ACL entry itself. *)
      match Restriction.check_all entry.Acl.restrictions req with
      | Error e -> Error (Printf.sprintf "access denied by ACL entry restriction: %s" e)
      | Ok () ->
          (* Work out which proxies actually contributed to satisfying the
             entry, and consume their accept-once identifiers. *)
          let rec contributors subject =
            match subject with
            | Acl.Anyone -> ([], [])
            | Acl.Principal_is p ->
                if List.exists (Principal.equal p) presenters then ([], [])
                else
                  (Option.to_list (List.find_opt (fun u -> Principal.equal u.u_grantor p) usable), [])
            | Acl.Group g -> (
                match List.find_opt (fun (g', _) -> Principal.Group.equal g g') asserted with
                | Some (_, u) -> ([ u ], [ g ])
                | None -> ([], []))
            | Acl.Compound subs ->
                let parts = List.map contributors subs in
                (List.concat_map fst parts, List.concat_map snd parts)
          in
          let used, via_groups = contributors entry.Acl.subject in
          List.iter
            (fun u ->
              List.iter
                (fun id ->
                  match
                    Replay_cache.record t.replay ~now ~expires:u.u_expires
                      ~tag:(Principal.to_string u.u_grantor) id
                  with
                  | Ok () -> ()
                  | Error _ -> () (* already checked by accept_once_seen *))
                (accept_once_ids u.u_restrictions))
            used;
          (* Advance each distinct sequence a used chain carries: its check
             just matched this operation at the current step, so the step is
             consumed. Keys dedup across chains — derivations of one grant
             share a head serial and must advance once, not once per copy. *)
          let advanced = ref [] in
          List.iter
            (fun u ->
              match u.u_serials with
              | [] -> ()
              | head :: _ ->
                  List.iter
                    (fun steps ->
                      let canon = Restriction.seq_canonical steps in
                      let key = Restriction.seq_key ~head canon in
                      if not (List.mem key !advanced) then begin
                        advanced := key :: !advanced;
                        let tag = Principal.to_string u.u_grantor in
                        let k =
                          Seq_tracker.advance t.seq ~now ~expires:u.u_expires ~tag key
                        in
                        Sim.Metrics.incr (Sim.Net.metrics t.net) "seq_tracker.advances";
                        (match t.seq_observer with
                        | Some f -> f ~key ~progress:k ~expires:u.u_expires ~tag
                        | None -> ());
                        match t.seq_forward with
                        | Some f when k < List.length steps -> (
                            (* The next step belongs to another server: hand
                               the progress over so the sequence can continue
                               there. *)
                            match (List.nth steps k).Restriction.step_server with
                            | Some s when not (Principal.equal s t.me) ->
                                f ~server:s ~key ~progress:k ~expires:u.u_expires ~tag
                            | Some _ | None -> ())
                        | Some _ | None -> ()
                      end)
                    (top_sequences u.u_restrictions))
            used;
          let decision =
            {
              granted_by = entry.Acl.subject;
              acting_for = List.map (fun u -> u.u_grantor) used;
              via_groups;
              serials_used = List.concat_map (fun u -> u.u_serials) used;
              restrictions_used = List.concat_map (fun u -> u.u_restrictions) used;
            }
          in
          Log.debug (fun m ->
              m "%s: GRANT %s on %S via %s" (Principal.to_string t.me) operation target
                (Format.asprintf "%a" Acl.pp_subject entry.Acl.subject));
          Sim.Trace.record (Sim.Net.trace t.net) ~time:now ~actor:(Principal.to_string t.me)
            (Printf.sprintf "granted %s on %S to %s via [%s]%s" operation target
               (match presenter with Some p -> Principal.to_string p | None -> "<anonymous>")
               (Format.asprintf "%a" Acl.pp_subject entry.Acl.subject)
               (match decision.acting_for with
               | [] -> ""
               | ps -> " acting-for " ^ String.concat "," (List.map Principal.to_string ps)));
          Ok decision)
  in
  Sim.Span.add_attr sp "verdict" (match result with Ok _ -> "grant" | Error _ -> "deny");
  result
