let grant net ~kdc ~tgt ~restrictions () =
  let subkey = Sim.Net.fresh_key net in
  let auth_data = List.map Restriction.to_wire restrictions in
  Kdc.Client.derive net ~kdc ~tgt ~target:kdc ~subkey ~auth_data ()

let use net ~kdc ~proxy_tgt ~service = Kdc.Client.derive net ~kdc ~tgt:proxy_tgt ~target:service ()

let restrictions_of (creds : Ticket.credentials) =
  Guard.restrictions_of_auth_data creds.Ticket.cred_auth_data

(* Short-TTL companion: the grantee holds a restricted TGT that is about to
   expire; the grantor re-derives a fresh one carrying the same
   restrictions. The restrictions come from the *old* credential's
   authorization-data (fail-closed decoding), so a refresh can never widen
   what was granted. *)
let refresh net ~kdc ~tgt ~old () =
  grant net ~kdc ~tgt ~restrictions:(restrictions_of old) ()
