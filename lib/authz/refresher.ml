type t = {
  net : Sim.Net.t;
  me : Principal.t;
  my_key : string;
  signing_key : Crypto.Rsa.private_;
  lookup : Principal.t -> Crypto.Rsa.public option;
  revocation : Revocation.t option;
  lifetime_us : int;
}

let ( let* ) = Result.bind
let default_lifetime_us = 15 * 60 * 1_000_000

let create net ~me ~my_key ~signing_key ~lookup ?revocation
    ?(lifetime_us = default_lifetime_us) () =
  if lifetime_us < 1 then invalid_arg "Refresher.create: lifetime must be positive";
  { net; me; my_key; signing_key; lookup; revocation; lifetime_us }

let revocation t = t.revocation

let handle t ctx payload =
  let open Wire in
  let* tag = Result.bind (field payload 0) to_string in
  match tag with
  | "refresh" -> (
      let* pw = field payload 1 in
      let* pres = Proxy.presentation_of_wire pw in
      match pres with
      | Proxy.Conventional _ | Proxy.Hybrid _ ->
          Error "refresh: only public-key chains can be refreshed"
      | Proxy.Public_key [] -> Error "refresh: empty certificate chain"
      | Proxy.Public_key (head :: _ as certs) ->
          let now = Sim.Net.now t.net in
          let metrics = Sim.Net.metrics t.net in
          if not (Principal.equal head.Proxy_cert.pk_body.Proxy_cert.grantor t.me) then
            Error "refresh: this grantor did not issue the chain's head"
          else begin
            (* Full verification, revocation included: an expired, tampered
               or revoked chain gets no new lease, and a stale bulletin
               fails the refresh closed like any other verification. *)
            match
              Verifier.verify_pk ~lookup:t.lookup
                ~tally:(fun name -> Sim.Metrics.incr metrics name)
                ?revocation:t.revocation ~now certs
            with
            | Error e ->
                Sim.Metrics.incr metrics "refresh.refused";
                Error (Printf.sprintf "refresh refused: %s" e)
            | Ok _verified ->
                let body = head.Proxy_cert.pk_body in
                let serial =
                  Crypto.Sha256.to_hex (Crypto.Drbg.generate (Sim.Net.drbg t.net) 16)
                in
                let body' =
                  {
                    body with
                    Proxy_cert.serial;
                    issued_at = now;
                    expires = now + t.lifetime_us;
                  }
                in
                let cert' =
                  Proxy_cert.sign_pk ~key:t.signing_key ~signer:Proxy_cert.By_grantor_key
                    ~proxy_pub:head.Proxy_cert.proxy_pub body'
                in
                Sim.Metrics.incr metrics "refresh.issued";
                Sim.Trace.record (Sim.Net.trace t.net) ~time:now
                  ~actor:(Principal.to_string t.me)
                  (Printf.sprintf "refreshed proxy head for %s (expires %d)"
                     (Principal.to_string ctx.Secure_rpc.rpc_client)
                     body'.Proxy_cert.expires);
                Ok (Proxy_cert.pk_cert_to_wire cert')
          end)
  | other -> Error (Printf.sprintf "refresher: unknown operation %S" other)

let install t =
  Secure_rpc.serve t.net ~me:t.me ~my_key:t.my_key (fun ctx payload -> handle t ctx payload)

let refresh net ~creds ?(retries = 0) ?timeout_us ?backoff (proxy : Proxy.t) =
  match proxy.Proxy.flavor with
  | Proxy.Conventional _ | Proxy.Hybrid _ ->
      Error "refresh: only public-key chains can be refreshed"
  | Proxy.Public_key [] -> Error "refresh: empty certificate chain"
  | Proxy.Public_key (old_head :: tail) ->
      let* reply =
        Secure_rpc.call net ~creds ~retries ?timeout_us ?backoff
          (Wire.L
             [ Wire.S "refresh"; Proxy.presentation_to_wire (Proxy.presentation proxy) ])
      in
      let* head = Proxy_cert.pk_cert_of_wire reply in
      (* The proxy key pair is unchanged — splicing in a head bound to a
         different key would orphan both the held secret and the cascade. *)
      if
        Crypto.Rsa.public_to_bytes head.Proxy_cert.proxy_pub
        <> Crypto.Rsa.public_to_bytes old_head.Proxy_cert.proxy_pub
      then Error "refresh: returned head is bound to a different proxy key"
      else Ok { proxy with Proxy.flavor = Proxy.Public_key (head :: tail) }
