(** The end-server authorization engine (paper Section 3.5).

    Every application server bases authorization on a local ACL. The guard
    combines, for one request:

    - the caller's authenticated identity (from the secure-RPC ticket),
    - any restricted proxies presented (each contributing its grantor's
      authority, limited by its restrictions),
    - any group proxies presented (each proving membership in groups
      maintained by the granting group server),
    - compound ACL entries requiring several of the above to concur,
    - the server's accept-once replay cache, and
    - per-entry restrictions recorded in the ACL itself.

    Capabilities, centrally-administered authorization, and plain ACLs are
    all the same decision: a capability is a bearer proxy whose grantor the
    ACL names; delegating to an authorization server is one ACL entry naming
    that server. *)

type t

val create :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  ?lookup_pub:(Principal.t -> Crypto.Rsa.public option) ->
  ?my_rsa:Crypto.Rsa.private_ ->
  ?max_skew_us:int ->
  ?verify_cache:Verify_cache.t ->
  ?link_cache:Link_cache.t ->
  ?revocation:Revocation.t ->
  acl:Acl.t ->
  unit ->
  t
(** [my_rsa] enables accepting hybrid proxies (their symmetric proxy key is
    encrypted to this server's public key). [verify_cache] lets several
    guards (or a guard and a bare {!Verifier} call site) share one
    signature-verification memo cache; by default each guard gets its own,
    wired to the net's metrics ("verify_cache.hits"/"misses"/"evictions"/
    "invalidations", and "replay_cache.evictions" for the accept-once
    cache). [link_cache] additionally memoizes verified chain {e prefixes}
    for public-key cascades ({!Link_cache} — tallying "link_cache.hits"/
    "misses"); off by default. [revocation] attaches local bulletin state:
    every verification then consults it ({!Verifier.verify}), and
    {!apply_bulletin} keeps it current. Without it the guard never revokes
    (the pre-bulletin behavior). *)

val me : t -> Principal.t
val acl : t -> Acl.t
val replay_cache : t -> Replay_cache.t
val verify_cache : t -> Verify_cache.t
val link_cache : t -> Link_cache.t option
val revocation : t -> Revocation.t option
val set_revocation : t -> Revocation.t -> unit

val seq_tracker : t -> Seq_tracker.t
(** The guard's {!Restriction.Sequence} progress state, keyed per presented
    chain head ({!Restriction.seq_key}), tagged by grantor. Each granted
    decision advances every distinct sequence the contributing chains carry
    (tallying ["seq_tracker.advances"]); {!apply_bulletin} sheds a freshly
    revoked grantor's progress alongside its accept-once records (tallying
    ["seq_tracker.shed"]). *)

val set_seq_observer :
  t -> (key:string -> progress:int -> expires:int -> tag:string -> unit) option -> unit
(** Observer fired whenever sequence progress moves here — after a granted
    decision advances a step and after {!import_seq_progress} accepts a
    forwarded one. The replication feed: a cluster primary journals these
    so its standby's tracker survives a failover. *)

val set_seq_forward :
  t ->
  (server:Principal.t -> key:string -> progress:int -> expires:int -> tag:string -> unit)
  option ->
  unit
(** Hook fired after an advancement when the sequence's {e next} step names
    a different server: the glue forwards the (self-describing) key and new
    progress so the sequence can continue there — typically by calling that
    server's ["seq-advance"] verb, which lands in {!import_seq_progress}. *)

val import_seq_progress :
  t ->
  caller:Principal.t ->
  key:string ->
  progress:int ->
  expires:int ->
  tag:string ->
  (unit, string) result
(** Accept forwarded sequence progress. The key is parsed back into its
    sequence ({!Restriction.seq_key_parse}) and the authenticated [caller]
    must be the server named by the step the new progress claims was just
    completed — only the server that granted step [progress - 1] may attest
    it. Storage is max-monotone, so retransmissions and replica replays are
    harmless. Tallies ["seq_tracker.imports"] and fires the observer. *)

val apply_bulletin : t -> Revocation.bulletin -> (bool, string) result
(** Feed one signed bulletin to the guard's revocation state. [Ok true]
    means the epoch advanced; if the bulletin added coverage, the whole
    verify-cache generation is retired ({!Verify_cache.bump_generation},
    and likewise the link cache's when one is attached) so no cached chain
    sharing a revoked link can be re-hit, and the accept-once replay
    records of every grantor newly killed by a [By_grantor_epoch] entry
    are shed ({!Replay_cache.shed}) — their credentials can no longer
    verify, and a re-issued credential reusing an identifier must not
    collide with the dead grant's record. [Ok false] means a replayed or
    out-of-order old bulletin was ignored. [Error] means the bulletin
    failed authentication, or no revocation state is configured. Metrics:
    ["revocation.bulletins_applied"], ["verify_cache.generation_bumps"],
    ["link_cache.generation_bumps"], ["verify_cache.invalidations"],
    ["replay_cache.shed"]. *)

(** A proxy as it arrives at the server: certificates plus (for bearer
    proxies) a proof of possession bound to this request. *)
type presented = { pres : Proxy.presentation; pres_proof : Presentation.proof option }

val presented_to_wire : presented -> Wire.t
val presented_of_wire : Wire.t -> (presented, string) result

val present :
  proxy:Proxy.t ->
  time:int ->
  server:Principal.t ->
  operation:string ->
  ?target:string ->
  ?spend:string * int ->
  unit ->
  presented
(** Client side: build the presentation for a specific request. The proof
    binds server/operation/target/spend, so it cannot be replayed for
    anything else. *)

type decision = {
  granted_by : Acl.subject;  (** the ACL entry that matched *)
  acting_for : Principal.t list;
      (** proxy grantors whose authority contributed *)
  via_groups : Principal.Group.t list;  (** memberships that contributed *)
  serials_used : string list;  (** certificate serials (audit trail) *)
  restrictions_used : Restriction.t list;
      (** full restriction set of the proxies that contributed (e.g. for
          cumulative quota tracking by accounting servers) *)
}

val decide :
  t ->
  operation:string ->
  ?target:string ->
  ?presenter:Principal.t ->
  ?extra_presenters:Principal.t list ->
  ?proxies:presented list ->
  ?group_proxies:presented list ->
  ?spend:string * int ->
  unit ->
  (decision, string) result
(** Evaluate one request. On success, accept-once identifiers carried by
    the proxies that contributed are recorded in the replay cache (a second
    presentation of the same check bounces). *)

val restrictions_of_auth_data : Wire.t list -> Restriction.t list
(** Decode ticket/authenticator authorization-data into restrictions;
    undecodable entries become [Unknown] (fail-closed). *)

val transport_ok :
  me:Principal.t ->
  now:int ->
  auth_data:Wire.t list ->
  operation:string ->
  ?target:string ->
  ?spend:string * int ->
  unit ->
  (unit, string) result
(** Enforce the restrictions carried by the caller's own credentials (the
    ticket's authorization-data) against this request. This is what makes
    "the initial authentication ... itself the granting of a proxy"
    (Section 6.3) real: a server must refuse a request that the transport
    credentials' restrictions forbid, whoever else vouches for it. *)
