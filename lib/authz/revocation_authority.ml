type t = {
  net : Sim.Net.t;
  me : Principal.t;
  my_key : string;
  signing_key : Crypto.Rsa.private_;
  lookup : Principal.t -> Crypto.Rsa.public option;
  mutable epoch : int;
  mutable entries : Revocation.entry list;  (* cumulative, oldest first *)
  mutable current : Revocation.bulletin;
}

let ( let* ) = Result.bind

let sign_current t =
  t.current <-
    Revocation.sign ~key:t.signing_key ~authority:t.me ~epoch:t.epoch
      ~issued_at:(Sim.Net.now t.net) t.entries;
  t.current

let create net ~me ~my_key ~signing_key ?(lookup = fun _ -> None) () =
  {
    net;
    me;
    my_key;
    signing_key;
    lookup;
    epoch = 1;
    entries = [];
    current =
      Revocation.sign ~key:signing_key ~authority:me ~epoch:1 ~issued_at:(Sim.Net.now net) [];
  }

let me t = t.me
let epoch t = t.epoch
let bulletin t = t.current

let trace t fmt =
  Printf.ksprintf
    (fun msg ->
      Sim.Trace.record (Sim.Net.trace t.net) ~time:(Sim.Net.now t.net)
        ~actor:(Principal.to_string t.me) msg)
    fmt

let publish t =
  t.epoch <- t.epoch + 1;
  Sim.Metrics.incr (Sim.Net.metrics t.net) "revocation.bulletins_published";
  sign_current t

let add_entry t e =
  (* Cumulative list: duplicates add nothing, a later grantor epoch
     supersedes an earlier one for the same grantor. *)
  let covered =
    match e with
    | Revocation.By_serial s ->
        List.exists (function Revocation.By_serial s' -> s' = s | _ -> false) t.entries
    | Revocation.By_grantor_epoch { grantor; not_before } ->
        List.exists
          (function
            | Revocation.By_grantor_epoch { grantor = g; not_before = nb } ->
                Principal.equal g grantor && nb >= not_before
            | _ -> false)
          t.entries
  in
  if not covered then begin
    t.entries <- t.entries @ [ e ];
    Sim.Metrics.incr (Sim.Net.metrics t.net) "revocation.revocations"
  end;
  publish t

let revoke_serial t serial =
  trace t "revoked certificate serial %s" (String.sub serial 0 (min 8 (String.length serial)));
  add_entry t (Revocation.By_serial serial)

let revoke_grantor_epoch t ~grantor ?not_before () =
  let not_before = Option.value not_before ~default:(Sim.Net.now t.net) in
  trace t "revoked grantor %s before %d" (Principal.to_string grantor) not_before;
  add_entry t (Revocation.By_grantor_epoch { grantor; not_before })

let handle t ctx payload =
  let open Wire in
  let caller = ctx.Secure_rpc.rpc_client in
  let* tag = Result.bind (field payload 0) to_string in
  match tag with
  | "fetch" ->
      Sim.Metrics.incr (Sim.Net.metrics t.net) "revocation.fetches";
      Ok (Revocation.bulletin_to_wire t.current)
  | "revoke-cert" ->
      let* cw = field payload 1 in
      let* cert = Proxy_cert.pk_cert_of_wire cw in
      let body = cert.Proxy_cert.pk_body in
      if not (Principal.equal body.Proxy_cert.grantor caller) then
        Error
          (Printf.sprintf "revoke-cert: %s is not the grantor of this certificate"
             (Principal.to_string caller))
      else begin
        (* Only authentic certificates are listed — refusing garbage serials
           keeps the bulletin small and stops a caller poisoning the list
           with serials it never issued. *)
        let* () =
          match cert.Proxy_cert.pk_signer with
          | Proxy_cert.By_grantor_key -> Ok ()
          | _ -> Error "revoke-cert: only grantor-signed head certificates can be revoked here"
        in
        let* () =
          match t.lookup caller with
          | None -> Error "revoke-cert: no public key known for the caller"
          | Some pub -> Proxy_cert.verify_pk_signature pub cert
        in
        let b = revoke_serial t body.Proxy_cert.serial in
        Ok (Wire.I b.Revocation.b_epoch)
      end
  | "revoke-grantor" ->
      let not_before =
        match Result.bind (field payload 1) to_int with
        | Ok nb -> nb
        | Error _ -> Sim.Net.now t.net
      in
      let b = revoke_grantor_epoch t ~grantor:caller ~not_before () in
      Ok (Wire.I b.Revocation.b_epoch)
  | other -> Error (Printf.sprintf "revocation-authority: unknown operation %S" other)

let install t =
  Secure_rpc.serve t.net ~me:t.me ~my_key:t.my_key (fun ctx payload -> handle t ctx payload)

(* --- client side --- *)

let fetch net ~creds ?(retries = 0) ?timeout_us ?backoff ?dst () =
  let* reply =
    Secure_rpc.call net ~creds ~retries ?timeout_us ?backoff ?dst (Wire.L [ Wire.S "fetch" ])
  in
  Revocation.bulletin_of_wire reply

let sync net ~creds ?(retries = 0) ?timeout_us ?backoff ?dst guard =
  let* b = fetch net ~creds ~retries ?timeout_us ?backoff ?dst () in
  Guard.apply_bulletin guard b

let revoke_cert net ~creds cert =
  let* reply =
    Secure_rpc.call net ~creds
      (Wire.L [ Wire.S "revoke-cert"; Proxy_cert.pk_cert_to_wire cert ])
  in
  Wire.to_int reply

let revoke_grantor net ~creds ?not_before () =
  let payload =
    match not_before with
    | None -> Wire.L [ Wire.S "revoke-grantor" ]
    | Some nb -> Wire.L [ Wire.S "revoke-grantor"; Wire.I nb ]
  in
  let* reply = Secure_rpc.call net ~creds payload in
  Wire.to_int reply
