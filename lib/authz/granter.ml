type t = {
  net : Sim.Net.t;
  me : Principal.t;
  kdc : Principal.t;
  mutable tgt : Ticket.credentials;
  my_key : string;
  cache : (string, Ticket.credentials) Hashtbl.t;
}

let margin_us = 60 * 1_000_000

let create net ~me ~my_key ~kdc =
  match Kdc.Client.authenticate net ~kdc ~client:me ~client_key:my_key ~service:kdc () with
  | Error e -> Error (Printf.sprintf "%s: cannot obtain TGT: %s" (Principal.to_string me) e)
  | Ok tgt -> Ok { net; me; kdc; tgt; my_key; cache = Hashtbl.create 8 }

let me t = t.me

let refresh_tgt t =
  if t.tgt.Ticket.cred_expires <= Sim.Net.now t.net + margin_us then
    match
      Kdc.Client.authenticate t.net ~kdc:t.kdc ~client:t.me ~client_key:t.my_key ~service:t.kdc
        ()
    with
    | Ok tgt -> t.tgt <- tgt
    | Error _ -> () (* the stale TGT will produce a clean error downstream *)

let cached t key ~now derive =
  match Hashtbl.find_opt t.cache key with
  | Some creds when creds.Ticket.cred_expires > now + margin_us -> Ok creds
  | Some _ | None -> (
      match derive () with
      | Error e -> Error e
      | Ok creds ->
          Hashtbl.replace t.cache key creds;
          Ok creds)

let credentials_for t target =
  refresh_tgt t;
  let now = Sim.Net.now t.net in
  if target.Principal.realm = t.me.Principal.realm then
    cached t (Principal.to_string target) ~now (fun () ->
        Kdc.Client.derive t.net ~kdc:t.kdc ~tgt:t.tgt ~target ())
  else begin
    (* Foreign target: obtain a cross-realm TGT from the local KDC (cached),
       then ask the remote realm's TGS for the service ticket. The remote
       KDC is named "kdc" by convention. *)
    let remote_kdc = Principal.make ~realm:target.Principal.realm "kdc" in
    let xkey = "xrealm:" ^ target.Principal.realm in
    let attempt () =
      match
        cached t xkey ~now (fun () ->
            Kdc.Client.derive t.net ~kdc:t.kdc ~tgt:t.tgt ~target:remote_kdc ())
      with
      | Error e -> Error e
      | Ok cross_tgt ->
          cached t (Principal.to_string target) ~now (fun () ->
              Kdc.Client.derive t.net ~kdc:remote_kdc ~tgt:cross_tgt ~target ())
    in
    match attempt () with
    | Ok creds -> Ok creds
    | Error _ ->
        (* A cached cross-realm TGT can outlive the trust that minted it
           (link rekeyed, cross TGT revoked): the remote derive then fails
           even though a fresh walk would succeed. Drop the cached leg and
           retry the full path once before surfacing the error. *)
        Hashtbl.remove t.cache xkey;
        Hashtbl.remove t.cache (Principal.to_string target);
        attempt ()
  end

let grant t ~end_server ~expires ~restrictions =
  match credentials_for t end_server with
  | Error e -> Error e
  | Ok creds ->
      let now = Sim.Net.now t.net in
      let expires = min expires creds.Ticket.cred_expires in
      Ok
        (Proxy.grant_conventional ~drbg:(Sim.Net.drbg t.net) ~now ~expires ~grantor:t.me
           ~session_key:creds.Ticket.session_key ~base:creds.Ticket.ticket_blob ~restrictions)
