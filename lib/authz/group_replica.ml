type t = {
  net : Sim.Net.t;
  me : Principal.t;
  my_key : string;
  granter : Granter.t;
  proxy_lifetime_us : int;
  origin : Principal.t;
  replica : Membership.t;
}

let membership_right = "member"

let create net ~me ~my_key ~kdc ~origin ~origin_pub ?staleness_bound_us
    ?(proxy_lifetime_us = 2 * 3600 * 1_000_000) () =
  match Granter.create net ~me ~my_key ~kdc with
  | Error e -> Error e
  | Ok granter ->
      Ok
        {
          net;
          me;
          my_key;
          granter;
          proxy_lifetime_us;
          origin;
          replica =
            Membership.create ~server:origin ~server_pub:origin_pub ?staleness_bound_us
              ~now:(Sim.Net.now net) ();
        }

let me t = t.me
let origin t = t.origin
let epoch t = Membership.epoch t.replica
let stale t = Membership.stale t.replica ~now:(Sim.Net.now t.net)

let metrics_incr t name = Sim.Metrics.incr (Sim.Net.metrics t.net) name

let apply_snapshot t s =
  match Membership.apply t.replica s with
  | Error _ as e -> e
  | Ok r ->
      (match r with
      | Membership.Applied { fresh } ->
          metrics_incr t "membership.snapshots_applied";
          Sim.Trace.record (Sim.Net.trace t.net) ~time:(Sim.Net.now t.net)
            ~actor:(Principal.to_string t.me)
            (Printf.sprintf "membership snapshot applied: origin=%s epoch=%d fresh=%d"
               (Principal.to_string t.origin) s.Membership.s_epoch fresh)
      | Membership.Ignored -> ());
      Ok r

(* Pull a fresh snapshot from the origin group server. The walk is the
   ordinary cross-realm TGS path under the replica's OWN node identity —
   the origin realm never sees a forwarded end-user claim. *)
let refresh t =
  match Granter.credentials_for t.granter t.origin with
  | Error e -> Error e
  | Ok creds -> (
      match Group_server.fetch_snapshot t.net ~creds () with
      | Error e -> Error e
      | Ok s -> apply_snapshot t s)

let handle t ctx payload =
  let open Wire in
  let* tag = Result.bind (field payload 0) to_string in
  if tag <> "assert" then Error (Printf.sprintf "group-replica: unknown operation %S" tag)
  else
    let* group = Result.bind (field payload 1) to_string in
    let* end_server = Result.bind (field payload 2) Principal.of_wire in
    let client = ctx.Secure_rpc.rpc_client in
    let now = Sim.Net.now t.net in
    (* Membership is decided from the replicated table alone — nested-group
       evidence would need the origin's full database, which a replica does
       not hold. Fail closed when the snapshot is past its bound. *)
    match Membership.check t.replica ~now ~group client with
    | Error e ->
        metrics_incr t
          (if Membership.stale t.replica ~now then "membership.replica_stale_denials"
           else "membership.replica_denials");
        Error (Printf.sprintf "group-replica: %s" e)
    | Ok () ->
        metrics_incr t "membership.replica_hits";
        let inherited =
          match Guard.restrictions_of_auth_data ctx.Secure_rpc.rpc_auth_data with
          | [] -> []
          | rs -> Restriction.propagate ~issued_for:[ end_server ] rs
        in
        (* The proxy names the group under the REPLICA's identity: servers
           in this realm list [replica$group] on their ACLs, trusting their
           local replica rather than a foreign grantor (node identity). *)
        let restrictions =
          Restriction.Authorized
            [ { Restriction.target = group; ops = [ "assert-membership"; membership_right ] } ]
          :: Restriction.Group_membership [ group ]
          :: Restriction.Grantee ([ client ], 1)
          :: inherited
        in
        let expires = Sim.Net.now t.net + t.proxy_lifetime_us in
        let* proxy = Granter.grant t.granter ~end_server ~expires ~restrictions in
        Sim.Trace.record (Sim.Net.trace t.net) ~time:(Sim.Net.now t.net)
          ~actor:(Principal.to_string t.me)
          (Printf.sprintf "replica membership proxy: %s in %s for %s (epoch %d)"
             (Principal.to_string client) group
             (Principal.to_string end_server)
             (Membership.epoch t.replica));
        Ok (Proxy.transfer_to_wire proxy)

let install t =
  Secure_rpc.serve t.net ~me:t.me ~my_key:t.my_key (fun ctx payload -> handle t ctx payload)

let group_name t local = Principal.Group.make ~server:t.me local
