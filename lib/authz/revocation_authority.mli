(** The revocation authority: accumulates revocations and distributes them
    as signed epoch bulletins ({!Revocation.bulletin}) over {!Secure_rpc}.

    Grantors revoke their own authority — a certificate they signed (by
    presenting it), or their whole past output (a grantor epoch). Each
    accepted revocation advances the epoch and re-signs the cumulative
    bulletin; {!publish} alone re-signs without new entries, the heartbeat
    that keeps subscribers inside their staleness bound.

    Distribution is pull: subscribers {!fetch} (or {!sync}, which also
    applies the result to a {!Guard.t}). A partition between a subscriber
    and the authority therefore shows up as bulletin staleness at the
    subscriber, which is exactly the condition the guard's fail-closed
    policy keys on. *)

type t

val create :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  signing_key:Crypto.Rsa.private_ ->
  ?lookup:(Principal.t -> Crypto.Rsa.public option) ->
  unit ->
  t
(** Starts at epoch 1 with an empty bulletin signed at the current time.
    [lookup] resolves grantor public keys so ["revoke-cert"] can refuse
    certificates the caller never signed (without it, every revoke-cert is
    refused). *)

val install : t -> unit
(** Serve ["fetch"], ["revoke-cert"] and ["revoke-grantor"]. *)

val me : t -> Principal.t
val epoch : t -> int
val bulletin : t -> Revocation.bulletin

val publish : t -> Revocation.bulletin
(** Heartbeat: advance the epoch and re-sign the current entries at the
    current time, without adding anything. *)

(** {2 Server-side administration} (tests, benches, local setup) *)

val revoke_serial : t -> string -> Revocation.bulletin
val revoke_grantor_epoch :
  t -> grantor:Principal.t -> ?not_before:int -> unit -> Revocation.bulletin

(** {2 Client operations} *)

val fetch :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  ?retries:int ->
  ?timeout_us:int ->
  ?backoff:Sim.Retry.backoff ->
  ?dst:string ->
  unit ->
  (Revocation.bulletin, string) result

val sync :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  ?retries:int ->
  ?timeout_us:int ->
  ?backoff:Sim.Retry.backoff ->
  ?dst:string ->
  Guard.t ->
  (bool, string) result
(** Fetch the current bulletin and {!Guard.apply_bulletin} it. [Ok true]
    when the guard's epoch advanced. A transport failure (e.g. partition)
    leaves the guard's state untouched — and ageing toward its bound. *)

val revoke_cert :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  Proxy_cert.pk_cert ->
  (int, string) result
(** Revoke one certificate by presenting it; the authority accepts only
    certificates whose body names the authenticated caller as grantor.
    Returns the new epoch. *)

val revoke_grantor :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  ?not_before:int ->
  unit ->
  (int, string) result
(** Revoke every certificate the {e caller} issued before [not_before]
    (default: the authority's current time). Returns the new epoch. *)
