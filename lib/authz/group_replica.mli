(** A cross-realm replica of another realm's group server.

    The paper's Section 4 comparison to Grapevine: group membership should
    keep resolving in realm B while realm A (where the authoritative group
    server lives) is unreachable. The replica holds an epoch-stamped,
    signed {!Membership} snapshot of the origin's table and grants
    membership proxies from it under its {e own} principal — end-servers in
    realm B list [replica$group] on their ACLs, trusting their local
    replica's node identity rather than a foreign grantor.

    Refreshing walks the ordinary cross-realm TGS path under the replica's
    own identity: the origin realm authenticates the replica {e node},
    never a forwarded end-user claim. During a partition the replica keeps
    serving from the last applied snapshot; past the staleness bound it
    fails closed ({!Membership.check}). Metrics:
    ["membership.replica_hits"], ["membership.replica_denials"],
    ["membership.replica_stale_denials"], ["membership.snapshots_applied"]. *)

type t

val create :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  kdc:Principal.t ->
  origin:Principal.t ->
  origin_pub:Crypto.Rsa.public ->
  ?staleness_bound_us:int ->
  ?proxy_lifetime_us:int ->
  unit ->
  (t, string) result
(** [origin] is the authoritative group server (typically in another
    realm); [origin_pub] its snapshot-signing key. [kdc] is the {e local}
    realm's KDC — the replica reaches the origin through the federation. *)

val install : t -> unit
(** Serve the same ["assert"] verb as {!Group_server} (clients use
    {!Group_server.request_membership_proxy} unchanged), decided from the
    replicated table. Nested-group evidence is not accepted — a replica
    attests only direct memberships from the snapshot. *)

val me : t -> Principal.t
val origin : t -> Principal.t

val epoch : t -> int
(** Epoch of the last applied snapshot (0 before the first). *)

val stale : t -> bool
(** Is the replica past its staleness bound right now? *)

val apply_snapshot : t -> Membership.snapshot -> (Membership.applied, string) result
(** Apply a pushed snapshot (signature-checked; old epochs are
    [Ok Ignored]). *)

val refresh : t -> (Membership.applied, string) result
(** Pull the origin's current snapshot across the realm boundary and apply
    it. *)

val group_name : t -> string -> Principal.Group.t
(** The replica-scoped global name of a group ([replica$group]) — what
    end-server ACLs in this realm should list. *)
