(** Grantor-side online refresh for short-TTL public-key proxies.

    Aggressive revocation wants short certificate lifetimes; honest traffic
    survives them by {e refreshing}: the grantee re-presents its chain to
    the grantor's refresh service shortly before expiry and receives a
    re-signed head certificate — same grantor, same restrictions, same
    proxy public key, but a fresh serial, [issued_at = now], and a new
    short expiry. Because cascade certificates are signed with (and chain
    off) the {e proxy} keys, the rest of the chain stays valid untouched,
    and the grantee's secret key material never moves.

    Refresh is where revocation bites the honest path: the service runs
    the full chain verification {e including} its own revocation state, so
    a revoked chain is refused a new lease (and a service with stale
    bulletin state refuses all refreshes — fail closed, like any other
    verifier). A grantor-epoch revocation therefore kills outstanding
    short-TTL proxies within one TTL without listing individual serials:
    re-issued heads carry [issued_at >= not_before] and survive; the old
    ones age out. *)

type t

val default_lifetime_us : int
(** 15 simulated minutes. *)

val create :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  signing_key:Crypto.Rsa.private_ ->
  lookup:(Principal.t -> Crypto.Rsa.public option) ->
  ?revocation:Revocation.t ->
  ?lifetime_us:int ->
  unit ->
  t
(** [me]/[signing_key] must be the granting principal and its long-term
    key: only heads this key signed can be re-signed. [revocation] is the
    grantor's local bulletin state (keep it synced via
    {!Revocation_authority.sync} semantics — fetch and
    {!Revocation.apply}); without it, refresh never refuses on revocation
    grounds. *)

val install : t -> unit

val revocation : t -> Revocation.t option

val refresh :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  ?retries:int ->
  ?timeout_us:int ->
  ?backoff:Sim.Retry.backoff ->
  Proxy.t ->
  (Proxy.t, string) result
(** Grantee side: present a public-key proxy chain to the grantor's
    refresh service ([creds] names the grantor as the service) and splice
    the re-signed head into the held proxy. Fails on non-public-key
    proxies, expired or revoked chains, and stale-bulletin refusal. *)
