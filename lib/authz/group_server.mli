(** The group server of paper Section 3.3.

    Grants proxies that "delegate the right to assert membership in a
    particular group". A group's global name composes the group server's
    principal with the local group name; the same group server may maintain
    many groups. Issued proxies carry [Group_membership] (limiting which
    groups the proxy asserts), an [Authorized] entry for the
    assert-membership operation, and a [Grantee] naming the member — the
    end-server "verifies the authenticity of the proxy and the identity of
    the client".

    The membership database is the standard ACL abstraction (Section 3.5),
    so a group may contain {e other groups} — including groups on other
    group servers ("the name of a group [may] appear ... even on another
    group server"): a member of a nested group proves itself by attaching a
    membership proxy from that group's server as evidence. *)

type t

val create :
  Sim.Net.t ->
  me:Principal.t ->
  my_key:string ->
  kdc:Principal.t ->
  ?lookup_pub:(Principal.t -> Crypto.Rsa.public option) ->
  ?verify_cache:Verify_cache.t ->
  ?signing_key:Crypto.Rsa.private_ ->
  ?proxy_lifetime_us:int ->
  unit ->
  (t, string) result
(** [verify_cache] overrides the membership guard's signature-verification
    memo cache (capacity 0 disables caching). [signing_key] enables
    snapshot publication ({!publish}) for cross-realm replicas. *)

val install : t -> unit
val me : t -> Principal.t

val add_member : t -> group:string -> Principal.t -> unit
val add_group_member : t -> group:string -> Principal.Group.t -> unit
(** Nest another group (possibly maintained by a different group server). *)

val remove_member : t -> group:string -> Principal.t -> unit
val members : t -> group:string -> Principal.t list
(** Direct principal members only. *)

val group_name : t -> string -> Principal.Group.t
(** The global name of one of this server's groups. *)

val table : t -> (string * Principal.t list) list
(** The full membership table (direct principal members per group). Nested
    [Group] entries are not flattened: a snapshot attests only memberships
    this server vouches for directly. *)

val publish : t -> (Membership.snapshot, string) result
(** Sign an epoch-stamped copy of {!table} for replicas in other realms
    (Grapevine-style replication); each publication advances the epoch.
    [Error] without a [signing_key]. Also served remotely as the
    ["snapshot"] verb ({!fetch_snapshot}). *)

(** Client side. *)
val request_membership_proxy :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  group:string ->
  end_server:Principal.t ->
  ?evidence:Guard.presented list ->
  unit ->
  (Proxy.t, string) result
(** Obtain a proxy asserting membership of [group] for presentation at
    [end_server]. [evidence] carries membership proxies for nested groups,
    each presented for operation "assert-membership" at {e this} group
    server. *)

val fetch_snapshot :
  Sim.Net.t ->
  creds:Ticket.credentials ->
  unit ->
  (Membership.snapshot, string) result
(** Pull the signed membership snapshot (the replica's refresh path). *)
