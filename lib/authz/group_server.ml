type t = {
  net : Sim.Net.t;
  me : Principal.t;
  my_key : string;
  granter : Granter.t;
  proxy_lifetime_us : int;
  (* Membership database: one ACL whose targets are group names and whose
     entries are the members (principals or nested groups). *)
  guard : Guard.t;
  (* Snapshot publication (Grapevine-style replication): present when the
     server can sign epoch-stamped copies of its table for replicas. *)
  signing_key : Crypto.Rsa.private_ option;
  mutable publish_epoch : int;
}

let membership_right = "member"

let create net ~me ~my_key ~kdc ?lookup_pub ?verify_cache ?signing_key
    ?(proxy_lifetime_us = 2 * 3600 * 1_000_000) () =
  match Granter.create net ~me ~my_key ~kdc with
  | Error e -> Error e
  | Ok granter ->
      let guard =
        Guard.create net ~me ~my_key ?lookup_pub ?verify_cache ~acl:(Acl.create ()) ()
      in
      Ok { net; me; my_key; granter; proxy_lifetime_us; guard; signing_key; publish_epoch = 0 }

let me t = t.me

let add_entry t ~group subject =
  Acl.add (Guard.acl t.guard) ~target:group
    { Acl.subject; rights = [ membership_right ]; restrictions = [] }

let add_member t ~group p = add_entry t ~group (Acl.Principal_is p)
let add_group_member t ~group g = add_entry t ~group (Acl.Group g)

let remove_member t ~group p =
  Acl.remove_subject (Guard.acl t.guard) ~target:group (Acl.Principal_is p)

let members t ~group =
  List.filter_map
    (fun (e : Acl.entry) ->
      match e.Acl.subject with Acl.Principal_is p -> Some p | _ -> None)
    (Acl.entries_for (Guard.acl t.guard) ~target:group)

let group_name t local = Principal.Group.make ~server:t.me local

(* The full table of direct principal members, for snapshot publication.
   Nested Group entries are deliberately not flattened: a replica speaks
   only for memberships this server can attest directly. *)
let table t =
  List.map
    (fun g -> (g, members t ~group:g))
    (List.filter (fun g -> g <> "*") (Acl.targets (Guard.acl t.guard)))

let publish t =
  match t.signing_key with
  | None -> Error "group: no signing key; snapshot publication disabled"
  | Some key ->
      t.publish_epoch <- t.publish_epoch + 1;
      Sim.Metrics.incr (Sim.Net.metrics t.net) "membership.published";
      Ok
        (Membership.sign ~key ~server:t.me ~epoch:t.publish_epoch
           ~issued_at:(Sim.Net.now t.net) (table t))

let map_result f l =
  List.fold_right
    (fun x acc -> Result.bind acc (fun tl -> Result.map (fun h -> h :: tl) (f x)))
    l (Ok [])

let handle t ctx payload =
  let open Wire in
  let* tag = Result.bind (field payload 0) to_string in
  if tag = "snapshot" then
    (* Any authenticated principal may pull the signed table: the snapshot
       is self-authenticating, so possession discloses nothing a replica
       could not already learn by asserting memberships one by one. *)
    Result.map Membership.snapshot_to_wire (publish t)
  else if tag <> "assert" then Error (Printf.sprintf "group: unknown operation %S" tag)
  else
    let* group = Result.bind (field payload 1) to_string in
    let* end_server = Result.bind (field payload 2) Principal.of_wire in
    let* ew = Result.bind (field payload 3) to_list in
    let* evidence = map_result Guard.presented_of_wire ew in
    let client = ctx.Secure_rpc.rpc_client in
    (* Membership is an ordinary guard decision: a direct Principal_is
       entry, or a nested Group entry proven by the attached evidence. *)
    match
      Guard.decide t.guard ~operation:membership_right ~target:group ~presenter:client
        ~group_proxies:evidence ()
    with
    | Error e ->
        Error (Printf.sprintf "group: %s is not a member of %s (%s)"
             (Principal.to_string client) group e)
    | Ok _ ->
        let inherited =
          match Guard.restrictions_of_auth_data ctx.Secure_rpc.rpc_auth_data with
          | [] -> []
          | rs -> Restriction.propagate ~issued_for:[ end_server ] rs
        in
        let restrictions =
          Restriction.Authorized
            [ { Restriction.target = group; ops = [ "assert-membership"; membership_right ] } ]
          :: Restriction.Group_membership [ group ]
          :: Restriction.Grantee ([ client ], 1)
          :: inherited
        in
        let expires = Sim.Net.now t.net + t.proxy_lifetime_us in
        let* proxy = Granter.grant t.granter ~end_server ~expires ~restrictions in
        Sim.Trace.record (Sim.Net.trace t.net) ~time:(Sim.Net.now t.net)
          ~actor:(Principal.to_string t.me)
          (Printf.sprintf "membership proxy: %s in %s for %s" (Principal.to_string client) group
             (Principal.to_string end_server));
        Ok (Proxy.transfer_to_wire proxy)

let install t =
  Secure_rpc.serve t.net ~me:t.me ~my_key:t.my_key (fun ctx payload -> handle t ctx payload)

let request_membership_proxy net ~creds ~group ~end_server ?(evidence = []) () =
  let payload =
    Wire.L
      [ Wire.S "assert";
        Wire.S group;
        Principal.to_wire end_server;
        Wire.L (List.map Guard.presented_to_wire evidence) ]
  in
  match Secure_rpc.call net ~creds payload with
  | Error e -> Error e
  | Ok reply -> Proxy.transfer_of_wire reply

let fetch_snapshot net ~creds () =
  match Secure_rpc.call net ~creds (Wire.L [ Wire.S "snapshot" ]) with
  | Error e -> Error e
  | Ok reply -> Membership.snapshot_of_wire reply
