(** Proxies for the ticket-granting service (paper Section 6.3).

    A conventional proxy binds to one end-server. The paper's remedy: "it is
    possible to issue a proxy for the Kerberos ticket-granting service. Such
    a proxy allows the grantee to obtain proxies with identical restrictions
    for additional end-servers as needed."

    Concretely, the grantor derives a fresh TGT whose authorization-data
    carries the restrictions, keyed to a fresh subkey, and hands the whole
    credential (ticket + session key) to the grantee over a sealed channel.
    Every service ticket the grantee later derives carries at least those
    restrictions — the KDC only ever adds — and every guard-protected server
    enforces them through {!Guard.transport_ok}. *)

val grant :
  Sim.Net.t ->
  kdc:Principal.t ->
  tgt:Ticket.credentials ->
  restrictions:Restriction.t list ->
  unit ->
  (Ticket.credentials, string) result
(** Derive a restricted TGT suitable for handing to a grantee. The grantee
    uses it exactly like its own credentials: [Kdc.Client.derive] for each
    end-server, then ordinary authenticated requests. *)

val use :
  Sim.Net.t ->
  kdc:Principal.t ->
  proxy_tgt:Ticket.credentials ->
  service:Principal.t ->
  (Ticket.credentials, string) result
(** Grantee side: obtain restricted credentials for one more end-server. *)

val restrictions_of : Ticket.credentials -> Restriction.t list
(** The restrictions the credentials carry (fail-closed decoding). *)

val refresh :
  Sim.Net.t ->
  kdc:Principal.t ->
  tgt:Ticket.credentials ->
  old:Ticket.credentials ->
  unit ->
  (Ticket.credentials, string) result
(** Grantor side of short-TTL TGS proxies: derive a fresh restricted TGT
    carrying exactly the restrictions of [old] (read from its
    authorization-data, fail-closed). The grantor re-runs this shortly
    before each expiry and hands the result to the grantee, so aggressive
    TTLs stay survivable without ever widening the grant. *)
